(* Tests for the resource-governance layer: Budget / Cancel / Fidelity /
   Ctx semantics, governed counting (exact retry + dilation estimate),
   budget-degraded cache-model analysis (same result shape as exact,
   performance-safe OI, never cached), cancellation of a pooled
   Flow.compile (no stuck domains, no partial cache writes), corrupt
   cache-entry quarantine, and the Ctx-vs-legacy parity guarantee. *)

open Polyufc_core
module P = Engine.Pool
module R = Engine.Rcache
module B = Engine.Budget
module C = Engine.Cancel
module F = Engine.Fidelity
module Ctx = Engine.Ctx
module J = Telemetry.Json
module M = Cache_model.Model

let fresh_cache_dir () = Filename.temp_dir "polyufc_govern_test" ""

(* every file in the store's entry namespace: top-level stragglers plus
   the two-level shard dirs — but not meta/ (index, counters) or
   quarantine/, which are bookkeeping, not entries *)
let entry_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.concat_map (fun f ->
         let p = Filename.concat dir f in
         if Sys.is_directory p then
           if f = "meta" || f = "quarantine" then []
           else Sys.readdir p |> Array.to_list
         else [ f ])

(* ---------- budget ---------- *)

let test_budget_fuel () =
  let b = B.create ~fuel:100 () in
  B.spend b 40;
  B.spend b 40;
  Alcotest.(check bool) "not yet exhausted" false (B.exhausted b);
  Alcotest.(check (option int)) "20 units left" (Some 20) (B.remaining_fuel b);
  (match B.spend b 60 with
  | () -> Alcotest.fail "overdraw must raise Exhausted"
  | exception B.Exhausted _ -> ());
  Alcotest.(check bool) "exhausted sticks" true (B.exhausted b);
  Alcotest.(check (option int)) "overdrawn clamps to 0" (Some 0)
    (B.remaining_fuel b);
  (* unlimited budget never trips *)
  let free = B.create () in
  B.spend free max_int;
  B.check free;
  Alcotest.(check (option int)) "no fuel limit" None (B.remaining_fuel free)

let test_budget_deadline () =
  let b = B.create ~deadline_s:0.02 () in
  B.check b;
  Unix.sleepf 0.05;
  (match B.check b with
  | () -> Alcotest.fail "passed deadline must raise Exhausted"
  | exception B.Exhausted _ -> ());
  Alcotest.(check (option (float 1e-9))) "no time left" (Some 0.)
    (B.remaining_s b)

(* ---------- cancellation ---------- *)

let test_cancel_token () =
  let t = C.create () in
  Alcotest.(check bool) "fresh token" false (C.is_cancelled t);
  C.check t;
  C.cancel ~reason:"first" t;
  C.cancel ~reason:"second" t;
  Alcotest.(check bool) "tripped" true (C.is_cancelled t);
  Alcotest.(check (option string)) "first reason wins" (Some "first")
    (C.reason t);
  match C.check t with
  | () -> Alcotest.fail "check on a tripped token must raise"
  | exception C.Cancelled r ->
    Alcotest.(check string) "payload carries the reason" "first" r

(* ---------- fidelity lattice ---------- *)

let test_fidelity () =
  Alcotest.(check bool) "exact+degraded" true
    (F.worst F.Exact F.Degraded = F.Degraded);
  Alcotest.(check bool) "degraded+partial" true
    (F.worst F.Degraded F.Partial = F.Partial);
  Alcotest.(check bool) "exact identity" true (F.worst F.Exact F.Exact = F.Exact);
  List.iter
    (fun fd ->
      Alcotest.(check bool)
        (Printf.sprintf "wire round-trip %s" (F.to_string fd))
        true
        (F.of_string (F.to_string fd) = Some fd))
    [ F.Exact; F.Degraded; F.Partial ];
  Alcotest.(check bool) "unknown wire string rejected" true
    (F.of_string "pristine" = None)

(* ---------- ctx: checkpoints and legacy merge ---------- *)

let test_ctx_checkpoints () =
  let spent policy = B.create ~fuel:0 ~degrade:policy () in
  let ctx_of b = Ctx.create ~budget:b () in
  (* spend the fuel so both budgets are exhausted *)
  let interp = spent B.Interp and off = spent B.Off in
  (try B.spend interp 1 with B.Exhausted _ -> ());
  (try B.spend off 1 with B.Exhausted _ -> ());
  (* hard check always raises on an exhausted budget *)
  (match Ctx.check (ctx_of interp) with
  | () -> Alcotest.fail "hard check must raise under Interp too"
  | exception B.Exhausted _ -> ());
  (* soft checkpoint lets Interp pipelines continue, stops Off ones *)
  Ctx.checkpoint (ctx_of interp);
  (match Ctx.checkpoint (ctx_of off) with
  | () -> Alcotest.fail "degrade=off checkpoint must raise"
  | exception B.Exhausted _ -> ());
  Alcotest.(check bool) "degrade_allowed under Interp" true
    (Ctx.degrade_allowed (ctx_of interp));
  Alcotest.(check bool) "not under Off" false (Ctx.degrade_allowed (ctx_of off));
  Alcotest.(check bool) "not without a budget" false
    (Ctx.degrade_allowed Ctx.none);
  (* cancellation beats budget in the hard check *)
  let c = C.create () in
  C.cancel ~reason:"stop" c;
  match Ctx.check (Ctx.create ~budget:interp ~cancel:c ()) with
  | () -> Alcotest.fail "cancelled ctx must raise"
  | exception C.Cancelled _ -> ()

let test_ctx_of_legacy () =
  P.with_pool ~jobs:2 @@ fun legacy_pool ->
  P.with_pool ~jobs:2 @@ fun ctx_pool ->
  let cache = R.create ~dir:(fresh_cache_dir ()) () in
  let is_pool p = function Some q -> q == p | None -> false in
  (* no ctx: legacy arguments pass through *)
  let merged = Ctx.of_legacy ~pool:legacy_pool None in
  Alcotest.(check bool) "legacy pool kept" true
    (is_pool legacy_pool (Ctx.pool merged));
  Alcotest.(check bool) "no cache" true (Ctx.cache merged = None);
  (* ctx fields win over legacy ones; legacy fills the gaps *)
  let ctx = Ctx.create ~pool:ctx_pool () in
  let merged = Ctx.of_legacy ~pool:legacy_pool ~cache (Some ctx) in
  Alcotest.(check bool) "ctx pool wins" true
    (is_pool ctx_pool (Ctx.pool merged));
  Alcotest.(check bool) "legacy cache fills the gap" true
    (match Ctx.cache merged with Some c -> c == cache | None -> false)

(* ---------- governed counting ---------- *)

let triangle n =
  Presburger.Syntax.bset_of_string
    (Printf.sprintf "{ [i, j] : 0 <= i < %d and 0 <= j <= i }" n)

let test_card_gov_retry_exact () =
  (* a tiny caller budget trips the first count, but the bounded
     post-deadline retry still delivers the exact answer *)
  let b = triangle 200 in
  let ctx = Ctx.create ~budget:(B.create ~fuel:1 ~degrade:B.Interp ()) () in
  let n, fd = Presburger.Count.card_gov ~ctx b in
  Alcotest.(check int) "retry stays exact" 20100 n;
  Alcotest.(check bool) "fidelity exact" true (fd = F.Exact);
  (* degrade=off propagates the exhaustion instead (drop the count memo
     first: a remembered count costs no fuel) *)
  Presburger.Bset.clear_count_memo ();
  let off = Ctx.create ~budget:(B.create ~fuel:1 ~degrade:B.Off ()) () in
  match Presburger.Count.card_gov ~ctx:off b with
  | _ -> Alcotest.fail "degrade=off must raise Exhausted"
  | exception B.Exhausted _ -> ()

let test_card_estimate_accuracy () =
  (* exact |triangle n| = n(n+1)/2; the dilation fit recovers the two
     leading Ehrhart terms, so the estimate lands within O(1/r) *)
  let n = 10_000 in
  let exact = n * (n + 1) / 2 in
  let est = Presburger.Count.card_estimate (triangle n) in
  let rel = Float.abs (float_of_int (est - exact)) /. float_of_int exact in
  if rel > 0.10 then
    Alcotest.failf "estimate %d vs exact %d: relative error %.3f > 0.10" est
      exact rel

(* ---------- degraded cache-model analysis ---------- *)

let two_region_src =
  {|
program two(n) {
  arrays { A[n][n] : f64; B[n][n] : f64; x[n] : f64; y[n] : f64; }
  for (i = 0; i < n; i++) {
    for (j = 0; j < n; j++) {
      y[i] = y[i] + A[i][j] * x[j];
    }
  }
  for (k = 0; k < n; k++) {
    for (l = 0; l < n; l++) {
      B[k][l] = A[k][l] + B[k][l];
    }
  }
}
|}

let two_region_ir = lazy (Polylang.parse two_region_src)
let pv = [ ("n", 40) ]

let tiny_fuel_ctx ?cache ?(degrade = B.Interp) () =
  Ctx.create ?cache ~budget:(B.create ~fuel:64 ~degrade ()) ()

let test_degraded_shape_matches_exact () =
  let ir = Lazy.force two_region_ir in
  let exact =
    M.analyze ~machine:Hwsim.Machine.bdw ~apply_thread_heuristic:false ir
      ~param_values:pv
  in
  let before = F.degraded_count () in
  let deg =
    M.analyze_gov ~ctx:(tiny_fuel_ctx ()) ~machine:Hwsim.Machine.bdw
      ~apply_thread_heuristic:false ir ~param_values:pv
  in
  Alcotest.(check bool) "exact run is exact" true (exact.M.fidelity = F.Exact);
  Alcotest.(check bool) "governed run degraded" true
    (deg.M.fidelity = F.Degraded);
  Alcotest.(check bool) "degradation counted" true
    (F.degraded_count () > before);
  (* identical shape: same levels, same statements in the same order *)
  Alcotest.(check int) "same number of cache levels"
    (Array.length exact.M.levels)
    (Array.length deg.M.levels);
  Alcotest.(check (list string)) "same per-statement breakdown"
    (List.map fst exact.M.per_stmt)
    (List.map fst deg.M.per_stmt);
  Alcotest.(check int) "hit/miss ratio arrays per level"
    (Array.length exact.M.hit_ratios)
    (Array.length deg.M.hit_ratios);
  (* the domains are small, so the governed flop count stays exact *)
  Alcotest.(check int) "flop count preserved" exact.M.flops deg.M.flops;
  (* the documented degradation contract: the footprint estimator is
     locality-pessimistic, so degraded OI is a lower bound on exact OI
     (a cap chosen from it never caps more aggressively than warranted) *)
  Alcotest.(check bool) "degraded OI is a performance-safe lower bound" true
    (deg.M.oi <= exact.M.oi +. 1e-9);
  Alcotest.(check bool) "degraded OI still positive" true (deg.M.oi > 0.)

let test_degraded_off_raises () =
  let ir = Lazy.force two_region_ir in
  match
    M.analyze_gov
      ~ctx:(tiny_fuel_ctx ~degrade:B.Off ())
      ~machine:Hwsim.Machine.bdw ~apply_thread_heuristic:false ir
      ~param_values:pv
  with
  | _ -> Alcotest.fail "degrade=off analyze_gov must raise Exhausted"
  | exception B.Exhausted _ -> ()

let test_degraded_never_cached () =
  Engine.Faultsim.suspended @@ fun () ->
  let dir = fresh_cache_dir () in
  let cache = R.create ~dir () in
  let ir = Lazy.force two_region_ir in
  let deg =
    Analysis_cache.analyze_gov
      ~ctx:(tiny_fuel_ctx ~cache ())
      ~mode:M.Set_associative ~apply_thread_heuristic:false
      ~machine:Hwsim.Machine.bdw ir ~param_values:pv
  in
  Alcotest.(check bool) "budget produced a degraded result" true
    (deg.M.fidelity = F.Degraded);
  Alcotest.(check (list string)) "degraded result not written to the cache" []
    (entry_files dir);
  (* a later un-budgeted run must compute (and cache) the exact answer,
     not be served the degraded one *)
  let exact =
    Analysis_cache.analyze_gov
      ~ctx:(Ctx.create ~cache ())
      ~mode:M.Set_associative ~apply_thread_heuristic:false
      ~machine:Hwsim.Machine.bdw ir ~param_values:pv
  in
  Alcotest.(check bool) "exact recomputed" true (exact.M.fidelity = F.Exact);
  Alcotest.(check bool) "exact result cached" true (entry_files dir <> [])

(* ---------- flow: parity, cancellation ---------- *)

let compile_two ?pool ?cache ?ctx () =
  Flow.compile ?pool ?cache ?ctx ~tile:false ~machine:Hwsim.Machine.bdw
    ~rooflines:(Lazy.force Test_support.bdw_rooflines)
    (Lazy.force two_region_ir) ~param_values:pv

let stable_report c =
  match Report.json_of_compiled c with
  | J.Obj fields ->
    J.to_string (J.Obj (List.filter (fun (k, _) -> k <> "timing") fields))
  | j -> J.to_string j

let test_ctx_parity () =
  (* the Ctx spelling must reproduce the legacy ?pool/?cache spelling
     byte for byte (separate cache dirs so both paths compute cold) *)
  let legacy =
    P.with_pool ~jobs:3 @@ fun pool ->
    let cache = R.create ~dir:(fresh_cache_dir ()) () in
    stable_report (compile_two ~pool ~cache ())
  in
  let via_ctx =
    P.with_pool ~jobs:3 @@ fun pool ->
    let cache = R.create ~dir:(fresh_cache_dir ()) () in
    stable_report (compile_two ~ctx:(Ctx.create ~pool ~cache ()) ())
  in
  Alcotest.(check string) "ctx = legacy, byte-identical" legacy via_ctx;
  Alcotest.(check bool) "ungoverned ctx = no ctx" true
    (stable_report (compile_two ()) = stable_report (compile_two ~ctx:Ctx.none ()))

let test_cancelled_compile () =
  Engine.Faultsim.suspended @@ fun () ->
  let dir = fresh_cache_dir () in
  let cache = R.create ~dir () in
  let cancel = C.create () in
  C.cancel ~reason:"test cancellation" cancel;
  P.with_pool ~jobs:4 @@ fun pool ->
  (match compile_two ~ctx:(Ctx.create ~pool ~cache ~cancel ()) () with
  | _ -> Alcotest.fail "compile under a tripped token must raise Cancelled"
  | exception C.Cancelled r ->
    Alcotest.(check string) "reason propagates" "test cancellation" r);
  (* the pool survives: no stuck domains, later work still runs *)
  Alcotest.(check (list int)) "pool still dispatches" [ 2; 3; 4 ]
    (P.map pool (fun x -> x + 1) [ 1; 2; 3 ]);
  (* no partial cache writes: neither entries nor leftover temp files *)
  let leftovers = if Sys.file_exists dir then entry_files dir else [] in
  Alcotest.(check (list string)) "no partial cache writes" [] leftovers

(* ---------- rcache quarantine ---------- *)

let overwrite path text =
  let oc = open_out path in
  output_string oc text;
  close_out oc

let test_quarantine_corrupt_entry () =
  Engine.Faultsim.suspended @@ fun () ->
  let dir = fresh_cache_dir () in
  (* mem tier off: quarantine is a disk-tier behaviour, and the memory
     tier would legitimately keep serving the stored value *)
  let c = R.create ~dir ~mem_entries:0 () in
  let k = R.key [ ("t", "quarantine") ] in
  R.store c k (J.Int 42);
  let path = R.entry_path c k in
  overwrite path "{\"schema\":2,\"checksum\":\"trunc";
  let before = R.counts () in
  Alcotest.(check bool) "truncated entry is a miss" true (R.find c k = None);
  let after = R.counts () in
  Alcotest.(check int) "quarantine counted" (before.R.quarantined + 1)
    after.R.quarantined;
  Alcotest.(check bool) "entry removed from the cache dir" false
    (Sys.file_exists path);
  let qdir = R.quarantine_dir c in
  Alcotest.(check bool) "moved under quarantine/" true
    (Sys.file_exists qdir && Array.length (Sys.readdir qdir) > 0)

let test_quarantine_checksum_mismatch () =
  Engine.Faultsim.suspended @@ fun () ->
  (* parses fine, right schema — but the payload does not match the
     embedded checksum (a bit-flip survivor) *)
  let dir = fresh_cache_dir () in
  let c = R.create ~dir ~mem_entries:0 () in
  let k = R.key [ ("t", "bitflip") ] in
  R.store c k (J.Int 42);
  let path = R.entry_path c k in
  let ic = open_in_bin path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  (* flip the first "42" in the file — whether it lands in the payload or
     in the checksum hex, the embedded checksum no longer matches *)
  let tampered =
    let n = String.length text in
    let rec find i =
      if i + 2 > n then None
      else if text.[i] = '4' && text.[i + 1] = '2' then Some i
      else find (i + 1)
    in
    match find 0 with
    | None -> text
    | Some i -> String.sub text 0 i ^ "43" ^ String.sub text (i + 2) (n - i - 2)
  in
  Alcotest.(check bool) "test premise: payload actually changed" true
    (tampered <> text);
  overwrite path tampered;
  let before = R.counts () in
  Alcotest.(check bool) "checksum mismatch is a miss" true (R.find c k = None);
  let after = R.counts () in
  Alcotest.(check int) "quarantined, not served" (before.R.quarantined + 1)
    after.R.quarantined;
  (* store/find works again after the bad entry is out of the way *)
  R.store c k (J.Int 7);
  Alcotest.(check bool) "repaired entry readable" true (R.find c k = Some (J.Int 7))

(* ---------- search fidelity propagation ---------- *)

let test_search_fidelity () =
  let k = Lazy.force Test_support.bdw_rooflines in
  let cm =
    M.analyze ~machine:Hwsim.Machine.bdw ~apply_thread_heuristic:false
      (Poly_ir.Tiling.tile_program ~tile_size:32 (Lazy.force two_region_ir))
      ~param_values:pv
  in
  let p = Perfmodel.profile_of_cm cm in
  let exact = Search.run k p in
  Alcotest.(check bool) "default outcome fidelity exact" true
    (exact.Search.fidelity = F.Exact);
  let deg = Search.run ~fidelity:F.Degraded k p in
  Alcotest.(check bool) "degraded profile marks the outcome" true
    (deg.Search.fidelity = F.Degraded);
  Alcotest.(check (float 1e-9)) "cap itself unchanged" exact.Search.cap_ghz
    deg.Search.cap_ghz

let tests =
  [
    Alcotest.test_case "budget: fuel metering" `Quick test_budget_fuel;
    Alcotest.test_case "budget: wall-clock deadline" `Quick
      test_budget_deadline;
    Alcotest.test_case "cancel: one-shot token" `Quick test_cancel_token;
    Alcotest.test_case "fidelity: lattice and wire form" `Quick test_fidelity;
    Alcotest.test_case "ctx: hard vs soft checkpoints" `Quick
      test_ctx_checkpoints;
    Alcotest.test_case "ctx: legacy argument merge" `Quick test_ctx_of_legacy;
    Alcotest.test_case "card_gov: bounded retry stays exact" `Quick
      test_card_gov_retry_exact;
    Alcotest.test_case "card_estimate: dilation-fit accuracy" `Quick
      test_card_estimate_accuracy;
    Alcotest.test_case "degraded analysis: exact shape, safe OI" `Quick
      test_degraded_shape_matches_exact;
    Alcotest.test_case "degrade=off propagates exhaustion" `Quick
      test_degraded_off_raises;
    Alcotest.test_case "degraded results are never cached" `Quick
      test_degraded_never_cached;
    Alcotest.test_case "ctx parity with legacy flow" `Quick test_ctx_parity;
    Alcotest.test_case "cancelled pooled compile unwinds cleanly" `Quick
      test_cancelled_compile;
    Alcotest.test_case "quarantine: truncated entry" `Quick
      test_quarantine_corrupt_entry;
    Alcotest.test_case "quarantine: checksum mismatch" `Quick
      test_quarantine_checksum_mismatch;
    Alcotest.test_case "search outcome carries profile fidelity" `Quick
      test_search_fidelity;
  ]
