(* Tests for the observability layer: the structured event log (JSON-lines
   sink, level filtering, domain-safe emission), the flight-recorder ring,
   and Guard's crash dump on internal faults.  Event-log state is global
   (sink, ring), so every test re-arms it and restores the Null sink. *)

module T = Telemetry
module E = Telemetry.Event
module J = Telemetry.Json
module FS = Engine.Faultsim
module P = Engine.Pool
module G = Engine.Guard

let with_fresh_events f =
  T.reset ();
  E.clear_ring ();
  Fun.protect
    ~finally:(fun () ->
      E.close_sink ();
      E.set_level E.Info)
    f

let temp_file suffix =
  let path = Filename.temp_file "polyufc_obs" suffix in
  at_exit (fun () -> try Sys.remove path with Sys_error _ -> ());
  path

let read_lines path =
  let ic = open_in_bin path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  String.split_on_char '\n' text |> List.filter (fun l -> String.trim l <> "")

let plan_of_string s =
  match FS.parse_plan s with
  | Ok p -> p
  | Error msg -> Alcotest.fail ("bad test plan: " ^ msg)

(* ---------- event envelope ---------- *)

let test_event_envelope () =
  with_fresh_events @@ fun () ->
  T.enable ();
  Fun.protect ~finally:T.disable @@ fun () ->
  T.with_span "obs.outer" (fun () ->
      E.info ~fields:[ ("k", J.Int 7) ] "obs.test");
  match E.recent () with
  | [ doc ] ->
    Alcotest.(check bool) "ts present" true (J.member "ts" doc <> None);
    Alcotest.(check bool) "level is info" true
      (J.member "level" doc = Some (J.Str "info"));
    Alcotest.(check bool) "event name" true
      (J.member "event" doc = Some (J.Str "obs.test"));
    Alcotest.(check bool) "span context captured" true
      (J.member "span" doc = Some (J.Str "obs.outer"));
    Alcotest.(check bool) "extra field" true (J.member "k" doc = Some (J.Int 7))
  | l -> Alcotest.fail (Printf.sprintf "expected 1 event, got %d" (List.length l))

(* ---------- JSON-lines sink under concurrent pool writers ---------- *)

let test_jsonlines_concurrent_pool () =
  with_fresh_events @@ fun () ->
  let path = temp_file ".log" in
  Sys.remove path;
  (match E.set_sink_path path with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("cannot open sink: " ^ msg));
  let per_job = 50 and n_jobs = 32 in
  P.with_pool ~jobs:4 (fun pool ->
      ignore
        (P.map pool
           (fun i ->
             for k = 1 to per_job do
               E.info
                 ~fields:[ ("job", J.Int i); ("k", J.Int k) ]
                 "obs.concurrent"
             done)
           (List.init n_jobs Fun.id)));
  E.close_sink ();
  (* under a background FAULTSIM plan (the CI chaos gate) crashed jobs
     re-run — duplicating their events — and the pool logs its own
     crash/requeue events, so the properties are: every line is intact
     JSON with the envelope, and every (job, k) pair made it through *)
  let lines = read_lines path in
  Alcotest.(check bool) "at least one line per emission" true
    (List.length lines >= per_job * n_jobs);
  let seen = Hashtbl.create 64 in
  List.iter
    (fun line ->
      match J.of_string line with
      | Error msg -> Alcotest.fail ("torn or unparseable event line: " ^ msg)
      | Ok doc ->
        List.iter
          (fun key ->
            if J.member key doc = None then
              Alcotest.failf "event line missing %S" key)
          [ "ts"; "level"; "event" ];
        if J.member "event" doc = Some (J.Str "obs.concurrent") then (
          match (J.member "job" doc, J.member "k" doc) with
          | Some (J.Int j), Some (J.Int k) -> Hashtbl.replace seen (j, k) ()
          | _ -> Alcotest.fail "payload fields lost"))
    lines;
  Alcotest.(check int) "every (job, k) pair present" (per_job * n_jobs)
    (Hashtbl.length seen)

(* ---------- level filtering and the flight-recorder ring ---------- *)

let test_level_filter_and_ring () =
  with_fresh_events @@ fun () ->
  let path = temp_file ".log" in
  Sys.remove path;
  (match E.set_sink_path path with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("cannot open sink: " ^ msg));
  E.set_level E.Warn;
  E.debug "obs.dropped";
  E.info "obs.dropped";
  E.warn "obs.kept";
  E.error "obs.kept";
  E.close_sink ();
  Alcotest.(check int) "sink sees only warn+" 2 (List.length (read_lines path));
  (* the ring records everything, independent of the level filter *)
  Alcotest.(check int) "ring records all levels" 4 (List.length (E.recent ()));
  E.clear_ring ();
  for i = 1 to 300 do
    E.info ~fields:[ ("i", J.Int i) ] "obs.ring"
  done;
  let ring = E.recent () in
  Alcotest.(check int) "ring bounded at 256" 256 (List.length ring);
  (match J.member "i" (List.hd ring) with
  | Some (J.Int i) ->
    Alcotest.(check int) "oldest surviving event is #45" 45 i
  | _ -> Alcotest.fail "ring event lost its payload");
  match J.member "i" (List.nth ring 255) with
  | Some (J.Int i) -> Alcotest.(check int) "newest event is #300" 300 i
  | _ -> Alcotest.fail "ring event lost its payload"

let test_level_of_string () =
  List.iter
    (fun (s, expected) ->
      Alcotest.(check bool) ("level " ^ s) true (E.level_of_string s = expected))
    [
      ("debug", Some E.Debug);
      ("info", Some E.Info);
      ("warn", Some E.Warn);
      ("warning", Some E.Warn);
      ("error", Some E.Error);
      ("loud", None);
    ]

(* ---------- crash dump on internal faults ---------- *)

let in_temp_crash_dir f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "polyufc_crash_%d" (Unix.getpid ()))
  in
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  Unix.putenv "POLYUFC_CRASH_DIR" dir;
  Fun.protect
    ~finally:(fun () ->
      Unix.putenv "POLYUFC_CRASH_DIR" "";
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (try Sys.readdir dir with Sys_error _ -> [||]);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

(* An all-crashing pool under FAULTSIM pool.worker_crash:1.0:7 abandons
   the job, Worker_failure escapes to Guard as an internal fault (exit 5),
   and the diagnostic carries a parseable flight-recorder dump. *)
let test_crash_dump_under_faultsim () =
  with_fresh_events @@ fun () ->
  in_temp_crash_dir @@ fun _dir ->
  let d =
    FS.with_plan (plan_of_string "pool.worker_crash:1.0:7") (fun () ->
        match
          G.protect ~phase:"analyze" (fun () ->
              P.with_pool ~jobs:2 ~max_retries:1 (fun pool ->
                  ignore (P.map pool (fun x -> x + 1) [ 1; 2; 3 ])))
        with
        | Ok _ -> Alcotest.fail "expected the map to fail"
        | Error d -> d)
  in
  Alcotest.(check int) "internal fault exit code" G.exit_internal d.G.code;
  let dump_path =
    match d.G.dump with
    | Some p -> p
    | None -> Alcotest.fail "no crash dump recorded in the diagnostic"
  in
  Alcotest.(check bool) "dump file exists" true (Sys.file_exists dump_path);
  let ic = open_in_bin dump_path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match J.of_string text with
  | Error msg -> Alcotest.fail ("crash dump does not parse: " ^ msg)
  | Ok doc ->
    Alcotest.(check bool) "dump schema" true
      (J.member "schema" doc = Some (J.Str "polyufc-crash/v1"));
    Alcotest.(check bool) "dump carries run metadata" true
      (match J.member "meta" doc with
      | Some meta -> J.member "pid" meta <> None
      | None -> false);
    (match J.member "error" doc with
    | Some err ->
      Alcotest.(check bool) "dump error code 5" true
        (J.member "code" err = Some (J.Int G.exit_internal));
      Alcotest.(check bool) "dump error phase" true
        (J.member "phase" err = Some (J.Str "analyze"))
    | None -> Alcotest.fail "dump missing error object");
    let events =
      match J.member "events" doc with
      | Some (J.Arr l) -> l
      | _ -> Alcotest.fail "dump missing events array"
    in
    Alcotest.(check bool) "dump captured supervision events" true
      (List.exists
         (fun e -> J.member "event" e = Some (J.Str "pool.worker_crash"))
         events);
    Alcotest.(check bool) "dump captured the abandonment" true
      (List.exists
         (fun e -> J.member "event" e = Some (J.Str "pool.job_abandoned"))
         events);
    Alcotest.(check bool) "dump captured the guard trap" true
      (List.exists
         (fun e -> J.member "event" e = Some (J.Str "guard.trapped"))
         events)

(* Resource outcomes are cooperative shutdowns, not crashes: no dump. *)
let test_no_dump_on_budget_exhaustion () =
  with_fresh_events @@ fun () ->
  in_temp_crash_dir @@ fun dir ->
  (match G.protect (fun () -> raise (Engine.Budget.Exhausted "deadline")) with
  | Ok _ -> Alcotest.fail "expected exhaustion"
  | Error d ->
    Alcotest.(check int) "exit 4" G.exit_exhausted d.G.code;
    Alcotest.(check bool) "no dump for exit 4" true (d.G.dump = None));
  Alcotest.(check int) "crash dir stays empty" 0
    (Array.length (Sys.readdir dir))

let tests =
  [
    Alcotest.test_case "event envelope" `Quick test_event_envelope;
    Alcotest.test_case "JSON-lines sink, concurrent pool writers" `Quick
      test_jsonlines_concurrent_pool;
    Alcotest.test_case "level filter + flight-recorder ring" `Quick
      test_level_filter_and_ring;
    Alcotest.test_case "level_of_string" `Quick test_level_of_string;
    Alcotest.test_case "crash dump under pool.worker_crash:1.0" `Quick
      test_crash_dump_under_faultsim;
    Alcotest.test_case "no dump on budget exhaustion" `Quick
      test_no_dump_on_budget_exhaustion;
  ]
