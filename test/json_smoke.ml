(* Smoke checker for `polyufc ... --json` output: the file must parse as
   JSON and carry the expected top-level fields.  An argument of the form
   key=value additionally asserts the field's (stringified) value — used
   by the deadline smoke rule to pin "fidelity=degraded".  Exit 0 on
   success.

   `json_smoke --lines FILE [N] [--require=ev1,ev2,...]` instead checks
   a JSON-lines event log: every non-empty line must parse as a JSON
   object carrying the event envelope fields (ts, level, event), and
   there must be at least N lines (default 1).  With --require, each
   named event must additionally occur on at least one line — used to
   pin lifecycle sequences like serve.start/serve.drain/serve.stop. *)

let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt

let check_lines path min_count required =
  let ic = open_in_bin path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let lines =
    String.split_on_char '\n' text
    |> List.filter (fun l -> String.trim l <> "")
  in
  let seen = Hashtbl.create 16 in
  List.iteri
    (fun i line ->
      match Telemetry.Json.of_string line with
      | Error msg -> fail "%s:%d: invalid JSON line: %s" path (i + 1) msg
      | Ok (Telemetry.Json.Obj _ as doc) ->
        List.iter
          (fun key ->
            if Telemetry.Json.member key doc = None then
              fail "%s:%d: event missing %S field" path (i + 1) key)
          [ "ts"; "level"; "event" ];
        (match Telemetry.Json.member "event" doc with
        | Some (Telemetry.Json.Str name) -> Hashtbl.replace seen name ()
        | _ -> ())
      | Ok _ -> fail "%s:%d: event line is not a JSON object" path (i + 1))
    lines;
  if List.length lines < min_count then
    fail "%s: expected at least %d event line(s), found %d" path min_count
      (List.length lines);
  List.iter
    (fun name ->
      if not (Hashtbl.mem seen name) then
        fail "%s: required event %S never occurred" path name)
    required;
  Printf.printf "%s: ok (%d event lines)\n" path (List.length lines);
  exit 0

let string_of_json = function
  | Telemetry.Json.Str s -> s
  | Telemetry.Json.Int i -> string_of_int i
  | Telemetry.Json.Bool b -> string_of_bool b
  | Telemetry.Json.Float f -> string_of_float f
  | Telemetry.Json.Null -> "null"
  | j -> Telemetry.Json.to_string j

let () =
  (match Array.to_list Sys.argv with
  | _ :: "--lines" :: path :: rest ->
    let usage () =
      fail "usage: json_smoke --lines FILE [min-count] [--require=ev1,ev2,...]"
    in
    let min_count = ref 1 and required = ref [] in
    List.iter
      (fun a ->
        if String.length a > 10 && String.sub a 0 10 = "--require=" then
          required :=
            !required
            @ (String.sub a 10 (String.length a - 10)
              |> String.split_on_char ','
              |> List.filter (fun s -> s <> ""))
        else
          match int_of_string_opt a with
          | Some n when n >= 0 -> min_count := n
          | _ -> usage ())
      rest;
    check_lines path !min_count !required
  | _ -> ());
  let path, checks =
    match Array.to_list Sys.argv with
    | _ :: path :: keys -> (path, keys)
    | _ -> fail "usage: json_smoke FILE [required-key | key=value ...]"
  in
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  match Telemetry.Json.of_string text with
  | Error msg -> fail "%s: invalid JSON: %s" path msg
  | Ok doc ->
    List.iter
      (fun check ->
        let key, expected =
          match String.index_opt check '=' with
          | Some i ->
            ( String.sub check 0 i,
              Some (String.sub check (i + 1) (String.length check - i - 1)) )
          | None -> (check, None)
        in
        match (Telemetry.Json.member key doc, expected) with
        | None, _ -> fail "%s: missing required key %S" path key
        | Some _, None -> ()
        | Some v, Some expected ->
          let got = string_of_json v in
          if got <> expected then
            fail "%s: key %S is %S, expected %S" path key got expected)
      checks;
    Printf.printf "%s: ok (%d bytes)\n" path len
