(* Smoke checker for `polyufc ... --json` output: the file must parse as
   JSON and carry the expected top-level fields.  An argument of the form
   key=value additionally asserts the field's (stringified) value — used
   by the deadline smoke rule to pin "fidelity=degraded".  Exit 0 on
   success. *)

let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt

let string_of_json = function
  | Telemetry.Json.Str s -> s
  | Telemetry.Json.Int i -> string_of_int i
  | Telemetry.Json.Bool b -> string_of_bool b
  | Telemetry.Json.Float f -> string_of_float f
  | Telemetry.Json.Null -> "null"
  | j -> Telemetry.Json.to_string j

let () =
  let path, checks =
    match Array.to_list Sys.argv with
    | _ :: path :: keys -> (path, keys)
    | _ -> fail "usage: json_smoke FILE [required-key | key=value ...]"
  in
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  match Telemetry.Json.of_string text with
  | Error msg -> fail "%s: invalid JSON: %s" path msg
  | Ok doc ->
    List.iter
      (fun check ->
        let key, expected =
          match String.index_opt check '=' with
          | Some i ->
            ( String.sub check 0 i,
              Some (String.sub check (i + 1) (String.length check - i - 1)) )
          | None -> (check, None)
        in
        match (Telemetry.Json.member key doc, expected) with
        | None, _ -> fail "%s: missing required key %S" path key
        | Some _, None -> ()
        | Some v, Some expected ->
          let got = string_of_json v in
          if got <> expected then
            fail "%s: key %S is %S, expected %S" path key got expected)
      checks;
    Printf.printf "%s: ok (%d bytes)\n" path len
