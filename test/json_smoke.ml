(* Smoke checker for `polyufc ... --json` output: the file must parse as
   JSON and carry the expected top-level fields. Exit 0 on success. *)

let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 1) fmt

let () =
  let path, required_keys =
    match Array.to_list Sys.argv with
    | _ :: path :: keys -> (path, keys)
    | _ -> fail "usage: json_smoke FILE [required-key...]"
  in
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let text = really_input_string ic len in
  close_in ic;
  match Telemetry.Json.of_string text with
  | Error msg -> fail "%s: invalid JSON: %s" path msg
  | Ok doc ->
    List.iter
      (fun key ->
        if Telemetry.Json.member key doc = None then
          fail "%s: missing required key %S" path key)
      required_keys;
    Printf.printf "%s: ok (%d bytes)\n" path len
