(* Tests for the analysis-as-a-service subsystem: the length-prefixed
   frame protocol (malformed input must become structured errors, never
   exceptions), request/response JSON round-trips, QoS clamping, and an
   in-process daemon exercised by real socket clients — concurrent
   determinism, layered admission control with pinned rejection shapes,
   graceful drain via the shutdown op, and survival under serve.io
   chaos. *)

module P = Serve.Protocol
module S = Serve.Server
module C = Serve.Client
module H = Serve.Handler
module FS = Engine.Faultsim
module J = Telemetry.Json

(* ---------- framing ---------- *)

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () -> f a b)

let read_err_name = function
  | P.Eof -> "eof"
  | P.Truncated -> "truncated"
  | P.Oversized n -> Printf.sprintf "oversized(%d)" n
  | P.Corrupt m -> Printf.sprintf "corrupt(%s)" m
  | P.Bad_json m -> Printf.sprintf "bad_json(%s)" m

let expect_frame fd =
  match P.read_frame fd with
  | Ok doc -> doc
  | Error e -> Alcotest.failf "expected a frame, got %s" (read_err_name e)

let test_frame_roundtrip () =
  with_socketpair @@ fun a b ->
  let docs =
    [
      J.Obj [ ("id", J.Int 1); ("op", J.Str "ping") ];
      J.Obj
        [
          ("nested", J.Obj [ ("xs", J.Arr [ J.Int 1; J.Float 2.5; J.Null ]) ]);
          ("s", J.Str "u\ttf \"quoted\"");
        ];
      J.Arr [];
      J.Str "";
    ]
  in
  List.iter
    (fun doc ->
      P.write_frame a doc;
      let got = expect_frame b in
      Alcotest.(check string) "frame round-trips textually"
        (J.to_string doc) (J.to_string got))
    docs

let test_frame_eof_and_truncated () =
  with_socketpair (fun a b ->
      Unix.close a;
      match P.read_frame b with
      | Error P.Eof -> ()
      | r ->
        Alcotest.failf "clean close must be Eof, got %s"
          (match r with Ok _ -> "a frame" | Error e -> read_err_name e));
  with_socketpair (fun a b ->
      (* a full header promising 100 bytes, then only 3 bytes of payload *)
      let hdr = Bytes.of_string "\x00\x00\x00\x64abc" in
      ignore (Unix.write a hdr 0 (Bytes.length hdr));
      Unix.close a;
      match P.read_frame b with
      | Error P.Truncated -> ()
      | r ->
        Alcotest.failf "torn frame must be Truncated, got %s"
          (match r with Ok _ -> "a frame" | Error e -> read_err_name e));
  with_socketpair (fun a b ->
      (* half a length prefix *)
      ignore (Unix.write a (Bytes.of_string "\x00\x00") 0 2);
      Unix.close a;
      match P.read_frame b with
      | Error P.Truncated -> ()
      | r ->
        Alcotest.failf "torn header must be Truncated, got %s"
          (match r with Ok _ -> "a frame" | Error e -> read_err_name e))

let test_frame_oversized_resyncs () =
  with_socketpair @@ fun a b ->
  let big = J.Str (String.make 256 'x') in
  let small = J.Obj [ ("ok", J.Bool true) ] in
  P.write_frame a big;
  P.write_frame a small;
  (match P.read_frame ~max_frame:64 b with
  | Error (P.Oversized n) ->
    Alcotest.(check bool) "reported length is plausible" true (n > 64)
  | r ->
    Alcotest.failf "must be Oversized, got %s"
      (match r with Ok _ -> "a frame" | Error e -> read_err_name e));
  (* the oversized payload was consumed: the stream is still framed *)
  let got = P.read_frame ~max_frame:64 b in
  match got with
  | Ok doc ->
    Alcotest.(check string) "next frame survives" (J.to_string small)
      (J.to_string doc)
  | Error e -> Alcotest.failf "stream lost sync: %s" (read_err_name e)

let test_frame_corrupt_and_bad_json () =
  with_socketpair (fun a b ->
      (* an implausible length (way past hard_max_frame) is corruption *)
      ignore (Unix.write a (Bytes.of_string "\xff\xff\xff\xff") 0 4);
      match P.read_frame b with
      | Error (P.Corrupt _) -> ()
      | r ->
        Alcotest.failf "hostile length must be Corrupt, got %s"
          (match r with Ok _ -> "a frame" | Error e -> read_err_name e));
  with_socketpair (fun a b ->
      let garbage = "this is { not json" in
      let hdr = Bytes.create 4 in
      Bytes.set_uint8 hdr 0 0;
      Bytes.set_uint8 hdr 1 0;
      Bytes.set_uint8 hdr 2 0;
      Bytes.set_uint8 hdr 3 (String.length garbage);
      ignore (Unix.write a hdr 0 4);
      ignore (Unix.write_substring a garbage 0 (String.length garbage));
      P.write_frame a (J.Obj [ ("after", J.Bool true) ]);
      (match P.read_frame b with
      | Error (P.Bad_json _) -> ()
      | r ->
        Alcotest.failf "must be Bad_json, got %s"
          (match r with Ok _ -> "a frame" | Error e -> read_err_name e));
      (* bad JSON is per-frame: the connection keeps serving *)
      let doc = expect_frame b in
      Alcotest.(check string) "frame after bad JSON survives"
        {|{"after":true}|} (J.to_string doc))

(* ---------- request / response documents ---------- *)

let test_request_parsing () =
  let parse doc =
    match P.request_of_json doc with
    | Ok r -> r
    | Error m -> Alcotest.failf "request refused: %s" m
  in
  let r = parse (J.Obj [ ("id", J.Int 7); ("op", J.Str "ping") ]) in
  Alcotest.(check string) "id echoed" "7" (J.to_string r.P.id);
  Alcotest.(check string) "params default to {}" "{}" (J.to_string r.P.params);
  Alcotest.(check bool) "default qos has no deadline" true
    (r.P.qos.P.deadline_s = None);
  let r =
    parse
      (J.Obj
         [
           ("id", J.Str "a");
           ("op", J.Str "analyze");
           ("params", J.Obj [ ("workload", J.Str "gemm") ]);
           ( "qos",
             J.Obj
               [
                 ("deadline_s", J.Float 2.5);
                 ("fuel", J.Int 100);
                 ("degrade", J.Str "off");
               ] );
         ])
  in
  Alcotest.(check bool) "qos deadline parsed" true
    (r.P.qos.P.deadline_s = Some 2.5);
  Alcotest.(check bool) "qos fuel parsed" true (r.P.qos.P.fuel = Some 100);
  Alcotest.(check bool) "qos degrade parsed" true
    (r.P.qos.P.degrade = Engine.Budget.Off);
  let refused doc =
    match P.request_of_json doc with
    | Ok _ -> Alcotest.failf "request %s must be refused" (J.to_string doc)
    | Error _ -> ()
  in
  refused (J.Obj [ ("id", J.Int 1) ]);
  refused (J.Obj [ ("id", J.Int 1); ("op", J.Str "frobnicate") ]);
  refused (J.Obj [ ("id", J.Int 1); ("op", J.Int 3) ]);
  refused (J.Str "not an object");
  refused
    (J.Obj
       [
         ("id", J.Int 1);
         ("op", J.Str "ping");
         ("qos", J.Obj [ ("deadline_s", J.Float (-1.0)) ]);
       ])

let test_response_roundtrip () =
  let ok = { P.rid = J.Int 3; result = Ok (J.Obj [ ("x", J.Int 1) ]) } in
  (match P.response_of_json (P.json_of_response ok) with
  | Ok r ->
    Alcotest.(check string) "ok payload survives" {|{"x":1}|}
      (match r.P.result with
      | Ok p -> J.to_string p
      | Error _ -> "an error")
  | Error m -> Alcotest.failf "ok response refused: %s" m);
  let err =
    {
      P.rid = J.Int 4;
      result =
        Error
          { P.kind = P.Overloaded; message = "queue full"; scope = Some "queue" };
    }
  in
  let doc = P.json_of_response err in
  (* pin the wire shape admission control promises to clients *)
  let e = Option.get (J.member "error" doc) in
  Alcotest.(check string) "kind on the wire" {|"overloaded"|}
    (J.to_string (Option.get (J.member "kind" e)));
  Alcotest.(check string) "scope on the wire" {|"queue"|}
    (J.to_string (Option.get (J.member "scope" e)));
  Alcotest.(check string) "code on the wire is EX_TEMPFAIL" "75"
    (J.to_string (Option.get (J.member "code" e)));
  match P.response_of_json doc with
  | Ok { P.result = Error e; _ } ->
    Alcotest.(check bool) "kind survives" true (e.P.kind = P.Overloaded);
    Alcotest.(check bool) "scope survives" true (e.P.scope = Some "queue");
    Alcotest.(check int) "exit code mapping" 75 (P.exit_code_of_kind e.P.kind)
  | Ok _ -> Alcotest.fail "error response parsed as ok"
  | Error m -> Alcotest.failf "error response refused: %s" m

let test_qos_clamping () =
  let module Ctx = Engine.Ctx in
  Alcotest.(check bool) "no limit passes through" true
    (Ctx.clamp_deadline None = None);
  Alcotest.(check bool) "unlimited request hits the limit" true
    (Ctx.clamp_deadline ~limit:5.0 None = Some 5.0);
  Alcotest.(check bool) "modest request passes" true
    (Ctx.clamp_deadline ~limit:5.0 (Some 2.0) = Some 2.0);
  Alcotest.(check bool) "greedy request is clamped" true
    (Ctx.clamp_deadline ~limit:5.0 (Some 50.0) = Some 5.0);
  Alcotest.(check bool) "fuel: unlimited hits the limit" true
    (Ctx.clamp_fuel ~limit:100 None = Some 100);
  Alcotest.(check bool) "fuel: greedy request is clamped" true
    (Ctx.clamp_fuel ~limit:100 (Some 1000) = Some 100)

let test_handler_enforces_fuel () =
  (* a served request with degrade=off and a starvation fuel budget must
     come back as a structured `exhausted` error, never an exception *)
  let shared = H.create () in
  let r =
    {
      P.id = J.Int 1;
      version = 1;
      op = P.Analyze;
      params =
        J.Obj
          [
            ("workload", J.Str "gemm");
            ("sizes", J.Obj [ ("n", J.Int 16) ]);
          ];
      qos = { P.deadline_s = None; fuel = Some 1; degrade = Engine.Budget.Off };
    }
  in
  match (H.execute shared r).P.result with
  | Error e ->
    Alcotest.(check bool) "kind is exhausted" true (e.P.kind = P.Exhausted);
    Alcotest.(check int) "exit code 4" 4 (P.exit_code_of_kind e.P.kind)
  | Ok _ -> Alcotest.fail "fuel=1 analyze cannot succeed"

let test_handler_server_clamp () =
  (* same request, no client budget at all: the server-side max_fuel
     must clamp it down and trip the same structured error *)
  let shared = H.create ~max_fuel:1 () in
  let r =
    {
      P.id = J.Int 1;
      version = 1;
      op = P.Analyze;
      params =
        J.Obj
          [
            ("workload", J.Str "gemm");
            ("sizes", J.Obj [ ("n", J.Int 16) ]);
          ];
      qos = { P.default_qos with P.degrade = Engine.Budget.Off };
    }
  in
  match (H.execute shared r).P.result with
  | Error e ->
    Alcotest.(check bool) "server max_fuel clamps unlimited clients" true
      (e.P.kind = P.Exhausted)
  | Ok _ -> Alcotest.fail "max_fuel=1 analyze cannot succeed"

(* ---------- a live in-process daemon ---------- *)

let fresh_socket =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "polyufc-test-%d-%d.sock" (Unix.getpid ()) !n)

let with_server ?(tweak = fun c -> c) f =
  let path = fresh_socket () in
  if Sys.file_exists path then Sys.remove path;
  let cfg = tweak (S.default_config path) in
  let shared = H.create () in
  match S.create cfg shared with
  | Error m -> Alcotest.failf "server refused to bind: %s" m
  | Ok server ->
    let t = Thread.create (fun () -> S.run server) () in
    Fun.protect
      ~finally:(fun () ->
        S.begin_drain server;
        Thread.join t;
        if Sys.file_exists path then Sys.remove path)
      (fun () -> f server path)

let connect_exn path =
  match C.connect ~retry_for:5.0 path with
  | Ok c -> c
  | Error m -> Alcotest.failf "client cannot connect: %s" m

let analyze_params =
  J.Obj
    [ ("workload", J.Str "gemm"); ("sizes", J.Obj [ ("n", J.Int 8) ]) ]

let test_concurrent_clients_deterministic () =
  with_server @@ fun _server path ->
  let n_clients = 4 and per_client = 3 in
  let results = Array.make (n_clients * per_client) "" in
  let threads =
    List.init n_clients (fun ci ->
        Thread.create
          (fun () ->
            let c = connect_exn path in
            Fun.protect
              ~finally:(fun () -> C.close c)
              (fun () ->
                for i = 0 to per_client - 1 do
                  match C.request c ~op:P.Analyze ~params:analyze_params () with
                  | Ok payload ->
                    results.((ci * per_client) + i) <- J.to_string payload
                  | Error e ->
                    results.((ci * per_client) + i) <-
                      "ERROR: " ^ e.P.message
                done))
          ())
  in
  List.iter Thread.join threads;
  (* the reference: the same request through the handler directly *)
  let reference =
    let shared = H.create () in
    match
      (H.execute shared
         {
           P.id = J.Int 0;
           version = 1;
           op = P.Analyze;
           params = analyze_params;
           qos = P.default_qos;
         })
        .P.result
    with
    | Ok payload -> J.to_string payload
    | Error e -> Alcotest.failf "reference analyze failed: %s" e.P.message
  in
  Array.iteri
    (fun i got ->
      if got <> reference then
        Alcotest.failf "request %d diverged:\n%s\nvs reference\n%s" i got
          reference)
    results

let send_ping c ~id ?(delay = 0.0) () =
  let params =
    if delay > 0.0 then J.Obj [ ("delay_s", J.Float delay) ] else J.Obj []
  in
  match
    C.send c { P.id = J.Int id; version = 1; op = P.Ping; params; qos = P.default_qos }
  with
  | Ok () -> ()
  | Error e -> Alcotest.failf "send failed: %s" e.P.message

let recv_exn c =
  match C.recv c with
  | Ok r -> r
  | Error e -> Alcotest.failf "recv failed: %s" e.P.message

let expect_rejection ~kind ~scope (r : P.response) =
  match r.P.result with
  | Error e ->
    Alcotest.(check bool)
      (Printf.sprintf "kind is %s" (P.kind_name kind))
      true (e.P.kind = kind);
    Alcotest.(check bool)
      (Printf.sprintf "scope is %s" (Option.value scope ~default:"absent"))
      true (e.P.scope = scope)
  | Ok _ -> Alcotest.fail "expected a rejection, got ok"

let test_overload_queue_rejection () =
  (* queue_depth counts queued + executing, so with depth 1 the second
     pipelined request is rejected no matter how fast the executor
     picked up the first: the shape is deterministic *)
  with_server
    ~tweak:(fun c -> { c with S.workers = 1; queue_depth = 1 })
  @@ fun _server path ->
  let c = connect_exn path in
  Fun.protect
    ~finally:(fun () -> C.close c)
    (fun () ->
      send_ping c ~id:1 ~delay:0.4 ();
      send_ping c ~id:2 ();
      (* the rejection is written immediately by the session thread,
         long before the delayed ping answers *)
      let first = recv_exn c in
      Alcotest.(check string) "rejected id" "2" (J.to_string first.P.rid);
      expect_rejection ~kind:P.Overloaded ~scope:(Some "queue") first;
      let second = recv_exn c in
      Alcotest.(check string) "delayed ping id" "1"
        (J.to_string second.P.rid);
      match second.P.result with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "delayed ping failed: %s" e.P.message)

let test_overload_client_limit () =
  with_server
    ~tweak:(fun c -> { c with S.workers = 1; max_inflight = 1; queue_depth = 100 })
  @@ fun _server path ->
  let c = connect_exn path in
  Fun.protect
    ~finally:(fun () -> C.close c)
    (fun () ->
      send_ping c ~id:1 ~delay:0.4 ();
      send_ping c ~id:2 ();
      let first = recv_exn c in
      expect_rejection ~kind:P.Overloaded ~scope:(Some "client") first;
      ignore (recv_exn c))

let test_overload_server_clients () =
  with_server ~tweak:(fun c -> { c with S.max_clients = 1 })
  @@ fun _server path ->
  let a = connect_exn path in
  Fun.protect
    ~finally:(fun () -> C.close a)
    (fun () ->
      (* client A owns the one seat; B is turned away at the door with a
         structured reply, not a slammed connection *)
      (match C.request a ~op:P.Ping ~params:(J.Obj []) () with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "seated client failed: %s" e.P.message);
      let b = connect_exn path in
      Fun.protect
        ~finally:(fun () -> C.close b)
        (fun () ->
          expect_rejection ~kind:P.Overloaded ~scope:(Some "server")
            (recv_exn b)))

let test_shutdown_op_drains () =
  (* standalone server (not with_server): this test must observe run's
     own return to assert the socket file was removed by the drain *)
  let path = fresh_socket () in
  if Sys.file_exists path then Sys.remove path;
  let server =
    match S.create (S.default_config path) (H.create ()) with
    | Ok s -> s
    | Error m -> Alcotest.failf "server refused to bind: %s" m
  in
  let t = Thread.create (fun () -> S.run server) () in
  let c = connect_exn path in
  Fun.protect
    ~finally:(fun () ->
      C.close c;
      S.begin_drain server;
      Thread.join t;
      if Sys.file_exists path then Sys.remove path)
    (fun () ->
      (* a request in flight keeps the drain from completing until it
         is answered: shutdown must ack, then reject, then answer *)
      send_ping c ~id:1 ~delay:0.3 ();
      send_ping c ~id:2 ();
      (* id 2 admitted normally; its answer order vs the ack is not
         pinned, only the post-drain rejection below is *)
      let _ack_or_pong = recv_exn c in
      C.send c
        { P.id = J.Int 3; version = 1; op = P.Shutdown; params = J.Obj []; qos = P.default_qos }
      |> Result.iter_error (fun e ->
             Alcotest.failf "shutdown send failed: %s" e.P.message);
      send_ping c ~id:4 ();
      (* drain the remaining responses; exactly one must be the
         shutting_down rejection of id 4 *)
      let rejected = ref false and answered = ref 0 in
      while !answered + (if !rejected then 1 else 0) < 3 do
        let r = recv_exn c in
        match r.P.result with
        | Error e when e.P.kind = P.Shutting_down ->
          Alcotest.(check string) "rejected id" "4" (J.to_string r.P.rid);
          rejected := true
        | Error e -> Alcotest.failf "unexpected error: %s" e.P.message
        | Ok _ -> incr answered
      done;
      Alcotest.(check bool) "post-drain request was rejected" true !rejected;
      Alcotest.(check bool) "server reports draining" true
        (S.draining server));
  Thread.join t;
  Alcotest.(check bool) "socket removed after drain" false
    (Sys.file_exists path)

let test_chaos_serve_io_survival () =
  with_server @@ fun _server path ->
  let plan =
    match FS.parse_plan "serve.io:0.3:11" with
    | Ok p -> p
    | Error m -> Alcotest.failf "plan refused: %s" m
  in
  FS.with_plan plan (fun () ->
      (* torn reads and writes on both sides of the wire: requests may
         fail with transport errors, the daemon must not die *)
      for _ = 1 to 15 do
        match C.connect ~retry_for:1.0 path with
        | Error _ -> ()
        | Ok c ->
          (match C.request c ~op:P.Ping ~params:(J.Obj []) () with
          | Ok _ | Error _ -> ());
          C.close c
      done);
  (* injection disarmed: the daemon must serve cleanly again *)
  let c = connect_exn path in
  Fun.protect
    ~finally:(fun () -> C.close c)
    (fun () ->
      match C.request c ~op:P.Ping ~params:(J.Obj []) () with
      | Ok payload ->
        Alcotest.(check bool) "pong after the storm" true
          (J.member "pong" payload = Some (J.Bool true))
      | Error e -> Alcotest.failf "daemon did not survive chaos: %s" e.P.message)

let test_protocol_versioning () =
  (* absent version field means v1 — the pre-versioning wire format *)
  let parse doc =
    match P.request_of_json doc with
    | Ok r -> r
    | Error m -> Alcotest.failf "request refused: %s" m
  in
  let r = parse (J.Obj [ ("id", J.Int 1); ("op", J.Str "ping") ]) in
  Alcotest.(check int) "absent version means v1" 1 r.P.version;
  let r =
    parse
      (J.Obj [ ("id", J.Int 1); ("version", J.Int 2); ("op", J.Str "ping") ])
  in
  Alcotest.(check int) "explicit v2 parses" 2 r.P.version;
  let refused doc =
    match P.request_of_json doc with
    | Ok _ -> Alcotest.failf "request %s must be refused" (J.to_string doc)
    | Error _ -> ()
  in
  refused (J.Obj [ ("id", J.Int 1); ("version", J.Int 0); ("op", J.Str "ping") ]);
  refused (J.Obj [ ("id", J.Int 1); ("version", J.Int 3); ("op", J.Str "ping") ]);
  refused
    (J.Obj [ ("id", J.Int 1); ("version", J.Str "2"); ("op", J.Str "ping") ]);
  (* analyze_multi exists on the wire, and only at v2 *)
  let r =
    parse
      (J.Obj
         [
           ("id", J.Int 1); ("version", J.Int 2); ("op", J.Str "analyze_multi");
         ])
  in
  Alcotest.(check bool) "analyze_multi parses" true (r.P.op = P.Analyze_multi);
  Alcotest.(check int) "analyze_multi needs v2" 2 (P.op_min_version P.Analyze_multi);
  Alcotest.(check int) "analyze stays v1" 1 (P.op_min_version P.Analyze);
  Alcotest.(check bool) "capability list advertises analyze_multi" true
    (List.mem "analyze_multi" P.capabilities)

let test_v1_wire_byte_identity () =
  (* a v1 request serialized by the new code must not grow a version
     field: old daemons reject unknown shapes byte-for-byte *)
  let req version =
    {
      P.id = J.Int 9;
      version;
      op = P.Ping;
      params = J.Obj [];
      qos = P.default_qos;
    }
  in
  let v1 = J.to_string (P.json_of_request (req 1)) in
  Alcotest.(check string) "v1 wire format unchanged"
    {|{"id":9,"op":"ping","params":{},"qos":{"degrade":"interp"}}|} v1;
  let v2 = J.to_string (P.json_of_request (req 2)) in
  Alcotest.(check string) "v2 carries the version field"
    {|{"id":9,"version":2,"op":"ping","params":{},"qos":{"degrade":"interp"}}|}
    v2;
  (* and both round-trip through the parser *)
  (match P.request_of_json (P.json_of_request (req 1)) with
  | Ok r -> Alcotest.(check int) "v1 round-trips" 1 r.P.version
  | Error m -> Alcotest.failf "v1 round-trip refused: %s" m);
  match P.request_of_json (P.json_of_request (req 2)) with
  | Ok r -> Alcotest.(check int) "v2 round-trips" 2 r.P.version
  | Error m -> Alcotest.failf "v2 round-trip refused: %s" m

let test_ping_capability_report () =
  let shared = H.create () in
  let ping version =
    let r =
      {
        P.id = J.Int 1;
        version;
        op = P.Ping;
        params = J.Obj [];
        qos = P.default_qos;
      }
    in
    match (H.execute shared r).P.result with
    | Ok payload -> payload
    | Error e -> Alcotest.failf "ping refused: %s" e.P.message
  in
  let p1 = ping 1 in
  Alcotest.(check bool) "v1 pong" true (J.member "pong" p1 = Some (J.Bool true));
  Alcotest.(check bool) "v1 echoes protocol 1" true
    (J.member "protocol" p1 = Some (J.Int 1));
  Alcotest.(check bool) "v1 ping has no capabilities (byte identity)" true
    (J.member "capabilities" p1 = None);
  let p2 = ping 2 in
  Alcotest.(check bool) "v2 echoes protocol 2" true
    (J.member "protocol" p2 = Some (J.Int 2));
  Alcotest.(check bool) "v2 reports max_protocol" true
    (J.member "max_protocol" p2 = Some (J.Int P.protocol_version));
  match J.member "capabilities" p2 with
  | Some (J.Arr caps) ->
    Alcotest.(check bool) "capabilities include analyze_multi" true
      (List.mem (J.Str "analyze_multi") caps)
  | _ -> Alcotest.fail "v2 ping must carry a capability array"

let test_versioned_op_gating () =
  (* a v1 client naming the v2-only op gets a structured Bad_request
     telling it which version to speak, not a crash or a silent run *)
  let shared = H.create () in
  let r =
    {
      P.id = J.Int 1;
      version = 1;
      op = P.Analyze_multi;
      params = J.Obj [ ("tenants", J.Arr []) ];
      qos = P.default_qos;
    }
  in
  match (H.execute shared r).P.result with
  | Error e ->
    Alcotest.(check bool) "kind is bad_request" true (e.P.kind = P.Bad_request);
    Alcotest.(check bool) "message names the version requirement" true
      (let m = e.P.message in
       let has sub =
         let ls = String.length sub and lm = String.length m in
         let rec go i = i + ls <= lm && (String.sub m i ls = sub || go (i + 1)) in
         go 0
       in
       has "version" && has "analyze_multi")
  | Ok _ -> Alcotest.fail "v1 analyze_multi must be refused"

let test_analyze_multi_served () =
  (* end-to-end over a real socket: two tenants through the daemon *)
  with_server @@ fun _server path ->
  let c = connect_exn path in
  Fun.protect
    ~finally:(fun () -> C.close c)
    (fun () ->
      let tenants =
        J.Arr
          [
            J.Obj
              [
                ("workload", J.Str "gemm");
                ("name", J.Str "gemm");
                ("sizes", J.Obj [ ("n", J.Int 24) ]);
              ];
            J.Obj
              [
                ("workload", J.Str "mvt");
                ("name", J.Str "mvt");
                ("sizes", J.Obj [ ("n", J.Int 96) ]);
                ("weight", J.Float 2.0);
              ];
          ]
      in
      let params = J.Obj [ ("tenants", tenants); ("solo", J.Bool false) ] in
      match C.request c ~version:2 ~op:P.Analyze_multi ~params () with
      | Error e -> Alcotest.failf "analyze_multi refused: %s" e.P.message
      | Ok payload ->
        let arbiter = Option.get (J.member "arbiter" payload) in
        (match J.member "cap_ghz" arbiter with
        | Some (J.Float f) ->
          Alcotest.(check bool) "arbitrated cap within machine range" true
            (f >= 1.2 && f <= 2.8)
        | _ -> Alcotest.fail "arbiter decision must carry cap_ghz");
        (match J.member "tenants" payload with
        | Some (J.Arr ts) ->
          Alcotest.(check int) "both tenants reported" 2 (List.length ts)
        | _ -> Alcotest.fail "per-tenant reports missing");
        (* the scatter rows land in v2 stats *)
        (match C.request c ~version:2 ~op:P.Stats ~params:(J.Obj []) () with
        | Error e -> Alcotest.failf "stats refused: %s" e.P.message
        | Ok stats -> (
          match J.member "scatter" stats with
          | Some (J.Arr rows) ->
            Alcotest.(check bool) "scatter populated" true
              (List.length rows >= 2)
          | _ -> Alcotest.fail "v2 stats must carry scatter"));
        (* v1 stats stay scatter-free: byte identity for old clients *)
        match C.request c ~op:P.Stats ~params:(J.Obj []) () with
        | Error e -> Alcotest.failf "v1 stats refused: %s" e.P.message
        | Ok stats ->
          Alcotest.(check bool) "v1 stats unchanged" true
            (J.member "scatter" stats = None))

let tests =
  [
    Alcotest.test_case "frames round-trip byte-for-byte" `Quick
      test_frame_roundtrip;
    Alcotest.test_case "clean EOF and torn frames are structured" `Quick
      test_frame_eof_and_truncated;
    Alcotest.test_case "oversized frames are skipped, stream resyncs" `Quick
      test_frame_oversized_resyncs;
    Alcotest.test_case "hostile lengths and bad JSON never crash" `Quick
      test_frame_corrupt_and_bad_json;
    Alcotest.test_case "requests parse, malformed ones are refused" `Quick
      test_request_parsing;
    Alcotest.test_case "responses round-trip, rejection shape pinned" `Quick
      test_response_roundtrip;
    Alcotest.test_case "QoS clamping bounds client budgets" `Quick
      test_qos_clamping;
    Alcotest.test_case "client fuel budget trips a structured error" `Quick
      test_handler_enforces_fuel;
    Alcotest.test_case "server maxima clamp unlimited clients" `Quick
      test_handler_server_clamp;
    Alcotest.test_case "concurrent clients get identical bytes" `Quick
      test_concurrent_clients_deterministic;
    Alcotest.test_case "queue admission rejects deterministically" `Quick
      test_overload_queue_rejection;
    Alcotest.test_case "per-client inflight limit is enforced" `Quick
      test_overload_client_limit;
    Alcotest.test_case "client cap rejects at the door" `Quick
      test_overload_server_clients;
    Alcotest.test_case "shutdown op drains gracefully" `Quick
      test_shutdown_op_drains;
    Alcotest.test_case "daemon survives serve.io chaos" `Quick
      test_chaos_serve_io_survival;
    Alcotest.test_case "protocol versioning parses and gates" `Quick
      test_protocol_versioning;
    Alcotest.test_case "v1 wire format is byte-identical" `Quick
      test_v1_wire_byte_identity;
    Alcotest.test_case "ping reports capabilities at v2" `Quick
      test_ping_capability_report;
    Alcotest.test_case "versioned ops gate on request version" `Quick
      test_versioned_op_gating;
    Alcotest.test_case "analyze_multi served end-to-end" `Quick
      test_analyze_multi_served;
  ]
