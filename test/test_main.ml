(* Aggregated alcotest entry point for the whole PolyUFC test suite. *)

let () =
  Alcotest.run "polyufc"
    [
      ("linalg", Test_linalg.tests);
      ("presburger", Test_presburger.tests);
      ("count", Test_count.tests);
      ("poly_ir", Test_poly_ir.tests);
      ("polylang", Test_polylang.tests);
      ("hwsim", Test_hwsim.tests);
      ("hwsim_multi", Test_hwsim_multi.tests);
      ("cache_model", Test_cache_model.tests);
      ("roofline", Test_roofline.tests);
      ("perfmodel", Test_perfmodel.tests);
      ("core", Test_core.tests);
      ("mlir_lite", Test_mlir_lite.tests);
      ("workloads", Test_workloads.tests);
      ("telemetry", Test_telemetry.tests);
      ("engine", Test_engine.tests);
      ("store", Test_store.tests);
      ("govern", Test_govern.tests);
      ("fault", Test_fault.tests);
      ("observability", Test_observability.tests);
      ("serve", Test_serve.tests);
    ]
