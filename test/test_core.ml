(* Tests for POLYUFC-SEARCH and the end-to-end compilation flow. *)

open Polyufc_core

let consts = Test_support.bdw_rooflines

let gemm_src =
  {|
program gemm(n) {
  arrays { A[n][n] : f64; B[n][n] : f64; C[n][n] : f64; }
  for (i = 0; i < n; i++) {
    for (j = 0; j < n; j++) {
      C[i][j] = 0.0;
      for (k = 0; k < n; k++) {
        C[i][j] = C[i][j] + A[i][k] * B[k][j];
      }
    }
  }
}
|}

let mvt_src =
  {|
program mvt(n) {
  arrays { A[n][n] : f64; x1[n] : f64; x2[n] : f64; y1[n] : f64; y2[n] : f64; }
  for (i = 0; i < n; i++) {
    for (j = 0; j < n; j++) {
      x1[i] = x1[i] + A[i][j] * y1[j];
    }
  }
  for (i2 = 0; i2 < n; i2++) {
    for (j2 = 0; j2 < n; j2++) {
      x2[i2] = x2[i2] + A[j2][i2] * y2[j2];
    }
  }
}
|}

let profile_of src n =
  let prog = Poly_ir.Tiling.tile_program ~tile_size:32 (Polylang.parse src) in
  let cm =
    Cache_model.Model.analyze ~machine:Hwsim.Machine.bdw
      ~apply_thread_heuristic:false prog ~param_values:[ ("n", n) ]
  in
  Perfmodel.profile_of_cm cm

(* ---------- search ---------- *)

let test_search_cb_low () =
  let k = Lazy.force consts in
  let o = Search.run k (profile_of gemm_src 128) in
  Alcotest.(check bool) "CB" true (o.Search.boundedness = Roofline.CB);
  Alcotest.(check bool) "cap below 2.0" true (o.Search.cap_ghz < 2.0);
  Alcotest.(check bool) "chosen EDP <= max-freq EDP" true
    (o.Search.chosen.Perfmodel.edp <= o.Search.baseline.Perfmodel.edp +. 1e-15)

let test_search_bb_high () =
  let k = Lazy.force consts in
  let o = Search.run k (profile_of mvt_src 400) in
  Alcotest.(check bool) "BB" true (o.Search.boundedness = Roofline.BB);
  Alcotest.(check bool) "cap in upper range" true (o.Search.cap_ghz >= 2.0)

let test_search_objectives () =
  let k = Lazy.force consts in
  let p = profile_of gemm_src 128 in
  let perf = Search.run ~objective:Search.Performance k p in
  let energy = Search.run ~objective:Search.Energy k p in
  (* performance-only never caps below the energy-only choice for CB *)
  Alcotest.(check bool) "perf cap >= energy cap" true
    (perf.Search.cap_ghz >= energy.Search.cap_ghz);
  (* energy-only on CB drives to the bottom of the range *)
  Alcotest.(check (float 1e-9)) "energy cap = min" 1.2 energy.Search.cap_ghz

let test_search_step_count () =
  (* binary search: far fewer objective evaluations than the 17-entry grid *)
  let k = Lazy.force consts in
  let o = Search.run k (profile_of gemm_src 96) in
  Alcotest.(check bool) "steps <= 2·log2(grid)" true (o.Search.steps <= 12)

let test_search_epsilon_guard () =
  let k = Lazy.force consts in
  let p = profile_of mvt_src 400 in
  (* a huge ε makes every frequency admissible; a tiny one must not crash *)
  let loose = Search.run ~epsilon:10.0 k p in
  let tight = Search.run ~epsilon:1e-9 k p in
  Alcotest.(check bool) "both in range" true
    (loose.Search.cap_ghz >= 1.2 && tight.Search.cap_ghz <= 2.8)

(* ---------- flow ---------- *)

let compile_gemm n =
  Flow.compile ~machine:Hwsim.Machine.bdw ~rooflines:(Lazy.force consts)
    (Polylang.parse gemm_src) ~param_values:[ ("n", n) ]

let test_flow_gemm () =
  let c = compile_gemm 128 in
  Alcotest.(check int) "one region" 1 (List.length c.Flow.decisions);
  let d = List.hd c.Flow.decisions in
  Alcotest.(check bool) "region CB" true (d.Flow.region_bound = Roofline.CB);
  Alcotest.(check bool) "tiled program differs" true
    (c.Flow.optimized <> c.Flow.source);
  Alcotest.(check int) "one cap after dedup" 1 (List.length c.Flow.caps);
  Alcotest.(check bool) "per-stmt decisions present" true (d.Flow.stmts <> []);
  Alcotest.(check bool) "timing recorded" true (c.Flow.timing.Flow.cm_s > 0.0)

let test_flow_cap_dedup () =
  (* mvt: two BB regions with the same cap -> single cap call *)
  let c =
    Flow.compile ~machine:Hwsim.Machine.bdw ~rooflines:(Lazy.force consts)
      (Polylang.parse mvt_src) ~param_values:[ ("n", 400) ]
  in
  Alcotest.(check int) "two regions" 2 (List.length c.Flow.decisions);
  let caps = List.map (fun d -> d.Flow.cap_ghz) c.Flow.decisions in
  if List.length (List.sort_uniq compare caps) = 1 then
    Alcotest.(check int) "deduped to one cap" 1 (List.length c.Flow.caps)

let test_flow_cb_aggregation () =
  (* the region cap is the min over statement caps for a CB region *)
  let c = compile_gemm 128 in
  let d = List.hd c.Flow.decisions in
  List.iter
    (fun s ->
      Alcotest.(check bool) "region cap <= stmt cap" true
        (d.Flow.cap_ghz <= s.Flow.stmt_cap +. 1e-9))
    d.Flow.stmts

let test_flow_evaluate_gemm_gains () =
  (* PolyUFC beats the UFS-governor baseline on EDP for a CB kernel at a
     realistic runtime (the paper's headline direction) *)
  let c = compile_gemm 192 in
  let e =
    Flow.evaluate ~machine:Hwsim.Machine.bdw c ~param_values:[ ("n", 192) ]
  in
  Alcotest.(check bool)
    (Printf.sprintf "EDP gain positive (got %.1f%%)" (100. *. e.Flow.edp_gain))
    true (e.Flow.edp_gain > 0.0);
  Alcotest.(check bool) "energy gain positive" true (e.Flow.energy_gain > 0.0);
  (* minimal performance loss, as in Sec. VII: ≈7% on CB *)
  Alcotest.(check bool)
    (Printf.sprintf "perf loss < 10%% (got %.1f%%)" (-100. *. e.Flow.time_gain))
    true (e.Flow.time_gain > -0.10)

let test_flow_untiled_option () =
  let prog = Polylang.parse gemm_src in
  let pre_tiled = Poly_ir.Tiling.tile_program ~tile_size:32 prog in
  let c =
    Flow.compile ~tile:false ~machine:Hwsim.Machine.bdw
      ~rooflines:(Lazy.force consts) pre_tiled ~param_values:[ ("n", 96) ]
  in
  Alcotest.(check bool) "kept as-is" true (c.Flow.optimized == pre_tiled)

let tests =
  [
    Alcotest.test_case "search CB caps low" `Quick test_search_cb_low;
    Alcotest.test_case "search BB caps high" `Quick test_search_bb_high;
    Alcotest.test_case "search objectives" `Quick test_search_objectives;
    Alcotest.test_case "search step count" `Quick test_search_step_count;
    Alcotest.test_case "search epsilon guard" `Quick test_search_epsilon_guard;
    Alcotest.test_case "flow gemm" `Quick test_flow_gemm;
    Alcotest.test_case "flow cap dedup" `Quick test_flow_cap_dedup;
    Alcotest.test_case "flow CB aggregation" `Quick test_flow_cb_aggregation;
    Alcotest.test_case "flow evaluate gemm gains" `Slow test_flow_evaluate_gemm_gains;
    Alcotest.test_case "flow untiled option" `Quick test_flow_untiled_option;
  ]

(* ---------- joint core+uncore extension ---------- *)

let test_with_core_ghz_physics () =
  let m = Hwsim.Machine.bdw in
  let fast = Hwsim.Machine.with_core_ghz m (m.Hwsim.Machine.core_ghz *. 2.0) in
  Alcotest.(check (float 1e-9)) "flop time halves"
    (m.Hwsim.Machine.flop_ns /. 2.0) fast.Hwsim.Machine.flop_ns;
  Alcotest.(check bool) "core power superlinear" true
    (fast.Hwsim.Machine.core_w_active > 2.0 *. m.Hwsim.Machine.core_w_active);
  let l1 m = (List.hd m.Hwsim.Machine.caches).Hwsim.Machine.hit_latency_ns in
  Alcotest.(check (float 1e-9)) "hit latency halves" (l1 m /. 2.0) (l1 fast);
  (* uncore domain untouched *)
  Alcotest.(check (float 1e-9)) "uncore power unchanged"
    (Hwsim.Machine.uncore_power_w m ~f_u:2.0)
    (Hwsim.Machine.uncore_power_w fast ~f_u:2.0)

let test_joint_search () =
  let prog =
    Poly_ir.Tiling.tile_program ~tile_size:32 (Polylang.parse gemm_src)
  in
  let r =
    Core_scaling.search ~core_freqs:[ 2.8; 3.5 ] ~machine:Hwsim.Machine.bdw
      prog ~param_values:[ ("n", 96) ]
  in
  Alcotest.(check int) "two points" 2 (List.length r.Core_scaling.points);
  List.iter
    (fun p ->
      Alcotest.(check bool) "best minimal" true
        (r.Core_scaling.best.Core_scaling.est_edp
         <= p.Core_scaling.est_edp +. 1e-15))
    r.Core_scaling.points;
  (* each point carries caps for its retuned machine *)
  List.iter
    (fun p ->
      Alcotest.(check bool) "caps present" true
        (p.Core_scaling.compiled.Flow.caps <> []))
    r.Core_scaling.points

let extension_tests =
  [
    Alcotest.test_case "with_core_ghz physics" `Quick test_with_core_ghz_physics;
    Alcotest.test_case "joint core+uncore search" `Slow test_joint_search;
  ]

(* ---------- roofline scatter exporter ---------- *)

let scatter_rooflines =
  (* pin the roofs so the efficiency arithmetic below is exact *)
  lazy
    {
      (Lazy.force Test_support.bdw_rooflines) with
      Roofline.peak_gflops = 100.0;
      peak_bw_gbps = 20.0;
    }

let test_scatter_point_math () =
  (* below the ridge the roof is the bandwidth slope: ai * bw *)
  let r =
    Report.scatter_point ~rooflines:(Lazy.force scatter_rooflines) ~kernel:"mvt"
      ~ai:0.25 ~gflops:2.5 ~cap_ghz:2.8
  in
  (* roof = min(100, 0.25*20) = 5; efficiency = 2.5/5 = 0.5 *)
  Alcotest.(check (float 1e-12)) "efficiency vs bandwidth roof" 0.5
    r.Report.sc_efficiency;
  Alcotest.(check (float 1e-12)) "distance = 1 - eff" 0.5
    r.Report.sc_distance;
  (* above the ridge the compute roof binds *)
  let c =
    Report.scatter_point ~rooflines:(Lazy.force scatter_rooflines) ~kernel:"gemm"
      ~ai:50.0 ~gflops:80.0 ~cap_ghz:1.2
  in
  Alcotest.(check (float 1e-12)) "efficiency vs compute roof" 0.8
    c.Report.sc_efficiency;
  (* over-roof measurements clamp distance at zero, not negative *)
  let over =
    Report.scatter_point ~rooflines:(Lazy.force scatter_rooflines) ~kernel:"hot"
      ~ai:50.0 ~gflops:120.0 ~cap_ghz:2.0
  in
  Alcotest.(check (float 1e-12)) "distance clamped at 0" 0.0
    over.Report.sc_distance

let test_scatter_csv_roundtrip () =
  let rows =
    [
      Report.scatter_point ~rooflines:(Lazy.force scatter_rooflines) ~kernel:"gemm"
        ~ai:13.714285714285714 ~gflops:73.33333333333333 ~cap_ghz:1.2;
      Report.scatter_point ~rooflines:(Lazy.force scatter_rooflines)
        ~kernel:{|weird, "quoted" name|} ~ai:0.1 ~gflops:1e-3 ~cap_ghz:2.8;
      Report.scatter_point ~rooflines:(Lazy.force scatter_rooflines) ~kernel:""
        ~ai:1.0e22 ~gflops:4.9e-324 ~cap_ghz:2.0;
    ]
  in
  let csv = Report.csv_of_scatter rows in
  match Report.scatter_of_csv csv with
  | Error m -> Alcotest.failf "exporter's own CSV refused: %s" m
  | Ok parsed ->
    Alcotest.(check int) "row count" (List.length rows) (List.length parsed);
    List.iter2
      (fun (a : Report.scatter_row) (b : Report.scatter_row) ->
        Alcotest.(check string) "kernel exact" a.Report.sc_kernel
          b.Report.sc_kernel;
        Alcotest.(check string) "boundedness exact" a.Report.sc_bound
          b.Report.sc_bound;
        (* %.17g prints doubles losslessly: bit-exact floats back *)
        List.iter2
          (fun x y ->
            Alcotest.(check int64) "float bit-exact" (Int64.bits_of_float x)
              (Int64.bits_of_float y))
          [
            a.Report.sc_ai;
            a.Report.sc_gflops;
            a.Report.sc_efficiency;
            a.Report.sc_distance;
            a.Report.sc_cap_ghz;
          ]
          [
            b.Report.sc_ai;
            b.Report.sc_gflops;
            b.Report.sc_efficiency;
            b.Report.sc_distance;
            b.Report.sc_cap_ghz;
          ])
      rows parsed

let test_scatter_csv_rejects_malformed () =
  let refused s =
    match Report.scatter_of_csv s with
    | Ok _ -> Alcotest.failf "must refuse: %s" s
    | Error _ -> ()
  in
  refused "not,the,header\n";
  refused (Report.scatter_header ^ "\nonly,three,fields\n");
  refused (Report.scatter_header ^ "\nk,not_a_number,1,1,0,BB,2.0\n");
  refused (Report.scatter_header ^ "\n\"unterminated,1,2,3,4,BB,2.0\n");
  (* CRLF and blank lines are tolerated *)
  let ok =
    Report.scatter_header ^ "\r\n" ^ "k,1,2,0.5,0.5,BB,2.0\r\n" ^ "\n"
  in
  match Report.scatter_of_csv ok with
  | Ok [ r ] ->
    Alcotest.(check string) "CRLF row parsed" "k" r.Report.sc_kernel
  | Ok _ -> Alcotest.fail "expected exactly one row"
  | Error m -> Alcotest.failf "CRLF input refused: %s" m

let test_scatter_json_roundtrip () =
  let rows =
    [
      Report.scatter_point ~rooflines:(Lazy.force scatter_rooflines) ~kernel:"atax"
        ~ai:0.375 ~gflops:3.1 ~cap_ghz:1.6;
    ]
  in
  match Report.scatter_of_json (Report.json_of_scatter rows) with
  | Error m -> Alcotest.failf "scatter JSON refused: %s" m
  | Ok [ r ] ->
    Alcotest.(check string) "kernel survives" "atax" r.Report.sc_kernel;
    Alcotest.(check (float 1e-12)) "ai survives" 0.375 r.Report.sc_ai
  | Ok _ -> Alcotest.fail "expected one row"

let test_fleet_analyze_end_to_end () =
  (* the library path the CLI, daemon and bench all share *)
  let specs =
    [
      Fleet.spec ~sizes:[ ("n", 24) ] ~name:"gemm"
        (Workloads.program (Workloads.find "gemm"));
      Fleet.spec ~sizes:[ ("n", 96) ] ~weight:2.0 ~name:"mvt"
        (Workloads.program (Workloads.find "mvt"));
    ]
  in
  let r =
    Fleet.analyze ~solo:false ~machine:Hwsim.Machine.bdw
      ~rooflines:(Lazy.force Test_support.bdw_rooflines)
      specs
  in
  Alcotest.(check int) "two tenants" 2 (List.length r.Fleet.tenants);
  Alcotest.(check bool) "cap on the machine grid" true
    (r.Fleet.decision.Hwsim.Cap_arbiter.cap_ghz >= 1.2
    && r.Fleet.decision.Hwsim.Cap_arbiter.cap_ghz <= 2.8);
  let rows = Fleet.scatter_of_result r in
  Alcotest.(check int) "one scatter row per tenant" 2 (List.length rows);
  (* the shared exporter round-trips the fleet's own rows *)
  match Report.scatter_of_csv (Report.csv_of_scatter rows) with
  | Ok back -> Alcotest.(check int) "csv round-trip" 2 (List.length back)
  | Error m -> Alcotest.failf "fleet scatter CSV refused: %s" m

let scatter_tests =
  [
    Alcotest.test_case "scatter point math" `Quick test_scatter_point_math;
    Alcotest.test_case "scatter CSV round-trip is bit-exact" `Quick
      test_scatter_csv_roundtrip;
    Alcotest.test_case "scatter CSV rejects malformed input" `Quick
      test_scatter_csv_rejects_malformed;
    Alcotest.test_case "scatter JSON round-trip" `Quick
      test_scatter_json_roundtrip;
    Alcotest.test_case "fleet analyze end-to-end" `Quick
      test_fleet_analyze_end_to_end;
  ]

let tests = tests @ extension_tests @ scatter_tests
