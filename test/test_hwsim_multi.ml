(* Tests for the multi-tenant simulator and the cap arbiter: the
   single-tenant compat contract, conservation of per-tenant work under
   interleaving, determinism, energy-attribution closure, the 3-tenant
   arbitration example, and the QCheck cap-bounds property. *)

open Hwsim

let gemm =
  Polylang.parse
    {|
program gemm(n) {
  arrays { A[n][n] : f64; B[n][n] : f64; C[n][n] : f64; }
  for (i = 0; i < n; i++) {
    for (j = 0; j < n; j++) {
      C[i][j] = 0.0;
      for (k = 0; k < n; k++) {
        C[i][j] = C[i][j] + A[i][k] * B[k][j];
      }
    }
  }
}
|}

let stream =
  Polylang.parse
    {|
program stream(n) {
  arrays { A[n] : f64; B[n] : f64; }
  for (i = 0; i < n; i++) {
    A[i] = A[i] + 2.0 * B[i];
  }
}
|}

let triad =
  Polylang.parse
    {|
program triad(n) {
  arrays { A[n] : f64; B[n] : f64; C[n] : f64; }
  for (i = 0; i < n; i++) {
    A[i] = B[i] + 3.0 * C[i];
  }
}
|}

let cfg ?(machine = Machine.bdw) ?(uncore = `Fixed 2.0) tenants =
  Sim.config ~machine ~uncore tenants

let t ?caps ?weight ?cores ~name ~n prog =
  Sim.tenant ?caps ?weight ?cores ~param_values:[ ("n", n) ] ~name prog

(* ---------- single-tenant compat ---------- *)

let test_run_equals_one_tenant_simulate () =
  (* the deprecated Sim.run wrapper and a one-tenant config must agree
     exactly: same engine, same numbers *)
  let legacy =
    Sim.run ~machine:Machine.bdw ~uncore:(`Fixed 2.0) gemm
      ~param_values:[ ("n", 24) ]
  in
  let multi = Sim.simulate ~solo:false (cfg [ t ~name:"gemm" ~n:24 gemm ]) in
  let o = multi.Sim.combined in
  Alcotest.(check int) "one tenant" 1 multi.Sim.n_tenants;
  Alcotest.(check (float 0.0)) "identical time" legacy.Sim.time_s o.Sim.time_s;
  Alcotest.(check (float 0.0)) "identical energy" legacy.Sim.energy_j
    o.Sim.energy_j;
  Alcotest.(check int) "identical flops" legacy.Sim.flops o.Sim.flops;
  Alcotest.(check int) "identical dram lines" legacy.Sim.dram_lines
    o.Sim.dram_lines

(* ---------- conservation under interleaving ---------- *)

let test_interleaving_conserves_tenant_counts () =
  (* each tenant's instruction/byte counts are its own: co-scheduling
     changes *when* events happen, never *how many* *)
  let tenants =
    [
      t ~name:"stream" ~n:4096 stream;
      t ~name:"triad" ~n:3000 triad;
      t ~name:"gemm" ~n:20 gemm;
    ]
  in
  let multi = Sim.simulate ~solo:true (cfg tenants) in
  Alcotest.(check int) "three tenants" 3 multi.Sim.n_tenants;
  List.iter2
    (fun (tn : Sim.tenant) (o : Sim.tenant_outcome) ->
      let solo =
        Sim.run ~machine:Machine.bdw ~uncore:(`Fixed 2.0) tn.Sim.t_prog
          ~param_values:tn.Sim.t_params
      in
      Alcotest.(check int)
        (tn.Sim.t_name ^ ": flops conserved")
        solo.Sim.flops o.Sim.o_flops;
      let solo_accesses =
        let l1 = solo.Sim.cache_stats.(0) in
        l1.Cache.hits + l1.Cache.misses
      in
      Alcotest.(check int)
        (tn.Sim.t_name ^ ": accesses conserved")
        solo_accesses o.Sim.o_accesses;
      (* co-run can only be slower than solo *)
      Alcotest.(check bool)
        (tn.Sim.t_name ^ ": slowdown >= 1")
        true
        (o.Sim.o_slowdown >= 1.0 -. 1e-9))
    tenants multi.Sim.per_tenant;
  (* gemm's flop count is pinned analytically: 2n^3 *)
  let gemm_o = List.nth multi.Sim.per_tenant 2 in
  Alcotest.(check int) "gemm 2n^3 flops" (2 * 20 * 20 * 20) gemm_o.Sim.o_flops

let test_interleaving_deterministic () =
  let run () =
    Sim.simulate ~solo:false
      (cfg
         [ t ~name:"a" ~n:2048 stream; t ~name:"b" ~n:1500 triad ])
  in
  let m1 = run () and m2 = run () in
  Alcotest.(check (float 0.0)) "same wall time" m1.Sim.combined.Sim.time_s
    m2.Sim.combined.Sim.time_s;
  Alcotest.(check (float 0.0)) "same energy" m1.Sim.combined.Sim.energy_j
    m2.Sim.combined.Sim.energy_j;
  List.iter2
    (fun (a : Sim.tenant_outcome) (b : Sim.tenant_outcome) ->
      Alcotest.(check (float 0.0)) (a.Sim.o_tenant ^ " time") a.Sim.o_time_s
        b.Sim.o_time_s;
      Alcotest.(check int) (a.Sim.o_tenant ^ " dram") a.Sim.o_dram_lines
        b.Sim.o_dram_lines)
    m1.Sim.per_tenant m2.Sim.per_tenant

let test_energy_attribution_closes () =
  let multi =
    Sim.simulate ~solo:false
      (cfg
         [
           t ~name:"a" ~n:4096 stream;
           t ~name:"b" ~n:3000 triad;
           t ~name:"c" ~n:16 gemm;
         ])
  in
  let total = multi.Sim.combined.Sim.energy_j in
  let attributed =
    List.fold_left
      (fun acc (o : Sim.tenant_outcome) -> acc +. o.Sim.o_energy_j)
      0.0 multi.Sim.per_tenant
  in
  Alcotest.(check (float 1e-9)) "tenant shares sum to total" total attributed;
  let z = multi.Sim.combined.Sim.zones in
  Alcotest.(check (float 1e-9)) "zones sum to total" total
    (z.Sim.core_j +. z.Sim.uncore_j +. z.Sim.dram_j +. z.Sim.static_j)

let test_shared_llc_interference () =
  (* two streaming tenants over the one LLC must generate at least as
     much DRAM traffic as each alone, and the machine-level wall clock
     cannot beat the slower solo run *)
  let n = 4096 in
  let solo =
    Sim.run ~machine:Machine.bdw ~uncore:(`Fixed 2.0) stream
      ~param_values:[ ("n", n) ]
  in
  let multi =
    Sim.simulate ~solo:false
      (cfg [ t ~name:"a" ~n stream; t ~name:"b" ~n stream ])
  in
  Alcotest.(check bool) "dram lines >= 2x solo" true
    (multi.Sim.combined.Sim.dram_lines >= 2 * solo.Sim.dram_lines);
  Alcotest.(check bool) "wall >= solo" true
    (multi.Sim.combined.Sim.time_s >= solo.Sim.time_s)

(* ---------- cap arbitration ---------- *)

let test_arbiter_three_tenants_satisfied () =
  (* the ISSUE's 3-tenant example: demands that fit under the BDW DRAM
     roof at 2.8 GHz (18 GB/s) — the arbiter must pick a cap that is >=
     every solo cap and satisfies everyone's bandwidth demand *)
  let m = Machine.bdw in
  let demands =
    [
      Cap_arbiter.demand ~tenant:"gemm" ~solo_cap_ghz:1.4 ~bw_gbps:2.0 ();
      Cap_arbiter.demand ~weight:2.0 ~tenant:"mvt" ~solo_cap_ghz:2.8
        ~bw_gbps:9.0 ();
      Cap_arbiter.demand ~tenant:"stream" ~solo_cap_ghz:2.2 ~bw_gbps:5.0 ();
    ]
  in
  let d = Cap_arbiter.arbitrate ~machine:m demands in
  Alcotest.(check bool) "feasible" true d.Cap_arbiter.feasible;
  Alcotest.(check (float 1e-9)) "cap = max solo cap" 2.8 d.Cap_arbiter.cap_ghz;
  Alcotest.(check bool) "supply covers aggregate demand" true
    (d.Cap_arbiter.supply_gbps >= d.Cap_arbiter.agg_bw_gbps);
  List.iter2
    (fun (dm : Cap_arbiter.demand) (g : Cap_arbiter.grant) ->
      Alcotest.(check bool)
        (dm.Cap_arbiter.d_tenant ^ " satisfied")
        true g.Cap_arbiter.g_satisfied;
      Alcotest.(check (float 1e-9))
        (dm.Cap_arbiter.d_tenant ^ " full grant")
        dm.Cap_arbiter.d_bw_gbps g.Cap_arbiter.g_bw_gbps;
      Alcotest.(check (float 1e-9))
        (dm.Cap_arbiter.d_tenant ^ " no slowdown")
        1.0 g.Cap_arbiter.g_slowdown)
    demands d.Cap_arbiter.grants

let test_arbiter_raises_above_floor () =
  (* every solo cap is low but the *sum* of demands needs more bandwidth
     than the floor frequency provides: the cap must rise along the grid
     until the DRAM roof covers the sum (BDW: bw = min(18, 7 f)) *)
  let m = Machine.bdw in
  let d =
    Cap_arbiter.arbitrate ~machine:m
      [
        Cap_arbiter.demand ~tenant:"a" ~solo_cap_ghz:1.2 ~bw_gbps:6.0 ();
        Cap_arbiter.demand ~tenant:"b" ~solo_cap_ghz:1.2 ~bw_gbps:6.0 ();
      ]
  in
  Alcotest.(check bool) "feasible" true d.Cap_arbiter.feasible;
  (* 12 GB/s needs f >= 12/7 = 1.714 -> grid 1.8 *)
  Alcotest.(check (float 1e-9)) "cap raised to 1.8" 1.8 d.Cap_arbiter.cap_ghz

let test_arbiter_infeasible_waterfill () =
  let m = Machine.bdw in
  let demands =
    [
      Cap_arbiter.demand ~weight:1.0 ~tenant:"hog" ~solo_cap_ghz:2.8
        ~bw_gbps:12.0 ();
      Cap_arbiter.demand ~weight:1.0 ~tenant:"small" ~solo_cap_ghz:1.4
        ~bw_gbps:5.0 ();
      Cap_arbiter.demand ~weight:1.0 ~tenant:"mid" ~solo_cap_ghz:2.2
        ~bw_gbps:8.0 ();
    ]
  in
  let d = Cap_arbiter.arbitrate ~machine:m demands in
  Alcotest.(check bool) "infeasible" false d.Cap_arbiter.feasible;
  Alcotest.(check (float 1e-9)) "cap pinned at max" m.Machine.uncore_max_ghz
    d.Cap_arbiter.cap_ghz;
  let granted =
    List.fold_left
      (fun a (g : Cap_arbiter.grant) -> a +. g.Cap_arbiter.g_bw_gbps)
      0.0 d.Cap_arbiter.grants
  in
  Alcotest.(check (float 1e-6)) "grants exhaust the supply"
    d.Cap_arbiter.supply_gbps granted;
  (* the under-fair-share demand is granted in full; the others degrade
     with slowdown = demand / grant *)
  (match d.Cap_arbiter.grants with
  | [ hog; small; mid ] ->
    Alcotest.(check bool) "small satisfied" true small.Cap_arbiter.g_satisfied;
    Alcotest.(check bool) "hog degraded" false hog.Cap_arbiter.g_satisfied;
    Alcotest.(check (float 1e-6)) "hog slowdown = demand/grant"
      (12.0 /. hog.Cap_arbiter.g_bw_gbps)
      hog.Cap_arbiter.g_slowdown;
    Alcotest.(check bool) "mid degraded" false mid.Cap_arbiter.g_satisfied
  | _ -> Alcotest.fail "expected three grants")

(* ---------- arbitrated fleet end to end ---------- *)

let test_arbitrated_cap_runs_fleet () =
  (* run the 3-tenant fleet at the arbitrated cap: every tenant finishes
     and per-tenant boundedness-relevant counters are sane *)
  let m = Machine.bdw in
  let d =
    Cap_arbiter.arbitrate ~machine:m
      [
        Cap_arbiter.demand ~tenant:"a" ~solo_cap_ghz:1.6 ~bw_gbps:3.0 ();
        Cap_arbiter.demand ~tenant:"b" ~solo_cap_ghz:2.0 ~bw_gbps:4.0 ();
        Cap_arbiter.demand ~tenant:"c" ~solo_cap_ghz:1.2 ~bw_gbps:2.0 ();
      ]
  in
  let multi =
    Sim.simulate ~solo:false
      (cfg ~uncore:(`Fixed d.Cap_arbiter.cap_ghz)
         [
           t ~name:"a" ~n:2048 stream;
           t ~name:"b" ~n:2048 triad;
           t ~name:"c" ~n:16 gemm;
         ])
  in
  Alcotest.(check (float 1e-9)) "uncore held at arbitrated cap"
    d.Cap_arbiter.cap_ghz multi.Sim.combined.Sim.avg_uncore_ghz;
  List.iter
    (fun (o : Sim.tenant_outcome) ->
      Alcotest.(check bool) (o.Sim.o_tenant ^ " finished") true
        (o.Sim.o_time_s > 0.0);
      Alcotest.(check bool) (o.Sim.o_tenant ^ " did work") true
        (o.Sim.o_flops > 0))
    multi.Sim.per_tenant

(* ---------- QCheck: cap bounds ---------- *)

let gen_demands =
  QCheck.Gen.(
    let m = Machine.bdw in
    let demand_gen =
      map2
        (fun cap bw ->
          Cap_arbiter.demand ~tenant:"t"
            ~solo_cap_ghz:
              (m.Machine.uncore_min_ghz
              +. (float_of_int cap *. m.Machine.uncore_step_ghz))
            ~bw_gbps:(float_of_int bw /. 4.0)
            ())
        (int_range 0 16) (int_range 0 120)
    in
    list_size (int_range 1 6) demand_gen)

let arb_demands =
  QCheck.make
    ~print:(fun ds ->
      String.concat ";"
        (List.map
           (fun (d : Cap_arbiter.demand) ->
             Printf.sprintf "%.1fGHz/%.2fGB/s" d.Cap_arbiter.d_solo_cap_ghz
               d.Cap_arbiter.d_bw_gbps)
           ds))
    gen_demands

let qcheck_tests =
  [
    QCheck.Test.make
      ~name:"arbitrated cap >= every solo cap and <= uncore_max" ~count:200
      arb_demands
      (fun demands ->
        let m = Machine.bdw in
        let d = Cap_arbiter.arbitrate ~machine:m demands in
        d.Cap_arbiter.cap_ghz <= m.Machine.uncore_max_ghz +. 1e-9
        && d.Cap_arbiter.cap_ghz >= m.Machine.uncore_min_ghz -. 1e-9
        && List.for_all
             (fun (dm : Cap_arbiter.demand) ->
               d.Cap_arbiter.cap_ghz
               >= dm.Cap_arbiter.d_solo_cap_ghz -. 1e-9)
             demands);
    QCheck.Test.make ~name:"feasible iff supply covers aggregate" ~count:200
      arb_demands
      (fun demands ->
        let m = Machine.bdw in
        let d = Cap_arbiter.arbitrate ~machine:m demands in
        if d.Cap_arbiter.feasible then
          d.Cap_arbiter.supply_gbps >= d.Cap_arbiter.agg_bw_gbps -. 1e-9
        else
          Machine.dram_bw_gbps m ~f_u:m.Machine.uncore_max_ghz
          < d.Cap_arbiter.agg_bw_gbps);
  ]

let tests =
  [
    Alcotest.test_case "run == one-tenant simulate" `Quick
      test_run_equals_one_tenant_simulate;
    Alcotest.test_case "interleaving conserves counts" `Quick
      test_interleaving_conserves_tenant_counts;
    Alcotest.test_case "interleaving deterministic" `Quick
      test_interleaving_deterministic;
    Alcotest.test_case "energy attribution closes" `Quick
      test_energy_attribution_closes;
    Alcotest.test_case "shared LLC interference" `Quick
      test_shared_llc_interference;
    Alcotest.test_case "arbiter: 3-tenant all satisfied" `Quick
      test_arbiter_three_tenants_satisfied;
    Alcotest.test_case "arbiter: raises above floor" `Quick
      test_arbiter_raises_above_floor;
    Alcotest.test_case "arbiter: infeasible water-fill" `Quick
      test_arbiter_infeasible_waterfill;
    Alcotest.test_case "arbitrated cap runs fleet" `Quick
      test_arbitrated_cap_runs_fleet;
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~verbose:false) qcheck_tests
