(* Tests for the parallel analysis engine: the Domain worker pool
   (ordering, error propagation, nesting) and the persistent
   content-addressed result cache (digest stability, schema invalidation,
   corruption tolerance), plus the end-to-end guarantees the rest of the
   pipeline relies on: a cache hit reproduces a compile byte-for-byte, and
   compiles are deterministic in the number of worker domains. *)

open Polyufc_core
module P = Engine.Pool
module R = Engine.Rcache
module J = Telemetry.Json

let fresh_cache_dir () =
  Filename.temp_dir "polyufc_rcache_test" ""

(* ---------- worker pool ---------- *)

let test_map_matches_sequential () =
  let xs = List.init 101 (fun i -> i) in
  let f x = (x * x) + 1 in
  P.with_pool ~jobs:4 @@ fun pool ->
  Alcotest.(check int) "pool has 4 workers" 4 (P.jobs pool);
  Alcotest.(check (list int)) "map = List.map" (List.map f xs) (P.map pool f xs);
  Alcotest.(check (list int))
    "mapi = List.mapi"
    (List.mapi (fun i x -> (i * 1000) + x) xs)
    (P.mapi pool (fun i x -> (i * 1000) + x) xs)

let test_jobs1_runs_inline () =
  P.with_pool ~jobs:1 @@ fun pool ->
  let on_caller = ref true in
  let r =
    P.map pool
      (fun x ->
        if P.in_worker () then on_caller := false;
        x + 1)
      [ 1; 2; 3 ]
  in
  Alcotest.(check (list int)) "result" [ 2; 3; 4 ] r;
  Alcotest.(check bool) "jobs=1 stays on the caller" true !on_caller

let test_submit_await () =
  P.with_pool ~jobs:2 @@ fun pool ->
  let fut = P.submit pool (fun () -> 6 * 7) in
  (match P.await fut with
  | Ok v -> Alcotest.(check int) "future value" 42 v
  | Error _ -> Alcotest.fail "future failed");
  let boom = P.submit pool (fun () -> failwith "expected") in
  match P.await boom with
  | Ok _ -> Alcotest.fail "expected failure"
  | Error (Failure m) -> Alcotest.(check string) "error payload" "expected" m
  | Error _ -> Alcotest.fail "wrong exception"

exception Boom of int

let test_first_error_propagates () =
  P.with_pool ~jobs:4 @@ fun pool ->
  (match P.map pool (fun x -> if x = 3 then raise (Boom x) else x) [ 1; 2; 3; 4 ] with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom 3 -> ());
  (* the pool survives a failed map *)
  Alcotest.(check (list int)) "pool usable after failure" [ 2; 4 ]
    (P.map pool (fun x -> 2 * x) [ 1; 2 ])

let test_nested_map_no_deadlock () =
  (* more nested maps than workers: they must run inline on the worker
     (a blocking implementation would deadlock here, tripping the
     alcotest timeout) *)
  P.with_pool ~jobs:2 @@ fun pool ->
  let expect =
    List.map (fun x -> List.map (fun y -> x * y) [ 1; 2; 3 ]) (List.init 8 succ)
  in
  let got =
    P.map pool
      (fun x -> P.map pool (fun y -> x * y) [ 1; 2; 3 ])
      (List.init 8 succ)
  in
  Alcotest.(check (list (list int))) "nested map result" expect got

let test_shutdown_idempotent () =
  let pool = P.create ~jobs:2 () in
  Alcotest.(check (list int)) "works" [ 1 ] (P.map pool succ [ 0 ]);
  P.shutdown pool;
  P.shutdown pool;
  match P.submit pool (fun () -> ()) with
  | _ -> Alcotest.fail "submit after shutdown must raise"
  | exception Invalid_argument _ -> ()

(* ---------- result cache ---------- *)

let test_key_stability () =
  (* the canonical encoding is part of the on-disk format: a change here
     silently invalidates every existing cache, so pin it *)
  Alcotest.(check string) "pinned digest"
    "8dc154d4d973f31a5eec62b5fddf6a51"
    (R.key [ ("kernel", "gemm"); ("machine", "bdw") ]);
  Alcotest.(check string) "deterministic"
    (R.key [ ("a", "x") ])
    (R.key [ ("a", "x") ]);
  Alcotest.(check bool) "value matters" true
    (R.key [ ("a", "x") ] <> R.key [ ("a", "y") ]);
  Alcotest.(check bool) "field order matters" true
    (R.key [ ("a", "1"); ("b", "2") ] <> R.key [ ("b", "2"); ("a", "1") ]);
  Alcotest.(check bool) "length prefixing prevents boundary collisions" true
    (R.key [ ("ab", "c") ] <> R.key [ ("a", "bc") ])

let test_schema_bump_changes_key () =
  Alcotest.(check bool) "schema is part of the address" true
    (R.key [ ("a", "x") ]
    <> R.key ~schema:(R.schema_version + 1) [ ("a", "x") ])

let test_store_find_roundtrip () =
  Engine.Faultsim.suspended @@ fun () ->
  let c = R.create ~dir:(fresh_cache_dir ()) () in
  let k = R.key [ ("t", "roundtrip") ] in
  Alcotest.(check bool) "cold miss" true (R.find c k = None);
  let payload = J.Obj [ ("x", J.Int 7); ("s", J.Str "hi") ] in
  R.store c k payload;
  (match R.find c k with
  | Some p -> Alcotest.(check string) "payload" (J.to_string payload) (J.to_string p)
  | None -> Alcotest.fail "stored entry not found");
  Alcotest.(check int) "one entry on disk" 1 (R.stats c).R.entries;
  Alcotest.(check int) "clear removes it" 1 (R.clear c);
  Alcotest.(check bool) "gone" true (R.find c k = None)

let test_stale_schema_is_a_miss () =
  Engine.Faultsim.suspended @@ fun () ->
  let dir = fresh_cache_dir () in
  (* mem tier off: the point is how the disk tier treats the tampered
     file, and the memory tier would legitimately serve the old hit *)
  let c = R.create ~dir ~mem_entries:0 () in
  let k = R.key [ ("t", "stale") ] in
  R.store c k (J.Int 1);
  (* rewrite the entry as if a future version had written it *)
  let oc = open_out (R.entry_path c k) in
  output_string oc
    (J.to_string
       (J.Obj
          [ ("schema", J.Int (R.schema_version + 1)); ("payload", J.Int 1) ]));
  close_out oc;
  let before = (R.counts ()).R.corrupt in
  Alcotest.(check bool) "stale schema misses" true (R.find c k = None);
  Alcotest.(check int) "not counted as corruption" before
    (R.counts ()).R.corrupt

let test_corrupt_entry_ignored () =
  Engine.Faultsim.suspended @@ fun () ->
  let dir = fresh_cache_dir () in
  let c = R.create ~dir ~mem_entries:0 () in
  let k = R.key [ ("t", "corrupt") ] in
  R.store c k (J.Int 1);
  let oc = open_out (R.entry_path c k) in
  output_string oc "{ not json";
  close_out oc;
  let before = R.counts () in
  Alcotest.(check bool) "corrupt entry = miss, no exception" true
    (R.find c k = None);
  let after = R.counts () in
  Alcotest.(check int) "corruption counted" (before.R.corrupt + 1)
    after.R.corrupt;
  (* find_or_add falls back to computing and repairs the entry *)
  let v = R.find_or_add c ~key:k
      ~decode:(function J.Int i -> Some i | _ -> None)
      ~encode:(fun i -> J.Int i)
      (fun () -> 99)
  in
  Alcotest.(check int) "computed" 99 v;
  Alcotest.(check bool) "entry repaired" true (R.find c k = Some (J.Int 99))

let test_find_or_add_memoizes () =
  Engine.Faultsim.suspended @@ fun () ->
  let c = R.create ~dir:(fresh_cache_dir ()) () in
  let k = R.key [ ("t", "memo") ] in
  let calls = ref 0 in
  let compute () = incr calls; 5 in
  let decode = function J.Int i -> Some i | _ -> None in
  let encode i = J.Int i in
  Alcotest.(check int) "first computes" 5
    (R.find_or_add c ~key:k ~decode ~encode compute);
  Alcotest.(check int) "second hits" 5
    (R.find_or_add c ~key:k ~decode ~encode compute);
  Alcotest.(check int) "computed exactly once" 1 !calls

(* ---------- pipeline integration ---------- *)

let two_region_src =
  {|
program two(n) {
  arrays { A[n][n] : f64; B[n][n] : f64; x[n] : f64; y[n] : f64; }
  for (i = 0; i < n; i++) {
    for (j = 0; j < n; j++) {
      y[i] = y[i] + A[i][j] * x[j];
    }
  }
  for (k = 0; k < n; k++) {
    for (l = 0; l < n; l++) {
      B[k][l] = A[k][l] + B[k][l];
    }
  }
}
|}

let compile_two ?pool ?cache () =
  Flow.compile ?pool ?cache ~tile:false ~machine:Hwsim.Machine.bdw
    ~rooflines:(Lazy.force Test_support.bdw_rooflines)
    (Polylang.parse two_region_src)
    ~param_values:[ ("n", 40) ]

(* the report minus its wall-clock timing: everything that must be
   reproducible *)
let stable_report c =
  match Report.json_of_compiled c with
  | J.Obj fields ->
    J.to_string (J.Obj (List.filter (fun (k, _) -> k <> "timing") fields))
  | j -> J.to_string j

let test_flow_cache_hit_reproduces_compile () =
  Engine.Faultsim.suspended @@ fun () ->
  let cache = R.create ~dir:(fresh_cache_dir ()) () in
  let cold = compile_two ~cache () in
  let before = R.counts () in
  let warm = compile_two ~cache () in
  let after = R.counts () in
  Alcotest.(check bool) "second compile hit the cache" true
    (after.R.hits > before.R.hits);
  Alcotest.(check string) "cached report byte-identical"
    (stable_report cold) (stable_report warm)

let test_compile_deterministic_in_jobs () =
  let seq = compile_two () in
  let seq_report = stable_report seq in
  let par =
    P.with_pool ~jobs:4 @@ fun pool -> compile_two ~pool ()
  in
  Alcotest.(check string) "jobs=4 = sequential" seq_report
    (stable_report par);
  (* and through the cache, in parallel, on a batch of programs: the
     fig7-style configuration the bench relies on *)
  let dir = fresh_cache_dir () in
  let batch jobs =
    P.with_pool ~jobs @@ fun pool ->
    let cache = R.create ~dir () in
    P.map pool
      (fun n ->
        stable_report
          (Flow.compile ~pool ~cache ~tile:false ~machine:Hwsim.Machine.bdw
             ~rooflines:(Lazy.force Test_support.bdw_rooflines)
             (Polylang.parse two_region_src)
             ~param_values:[ ("n", n) ]))
      [ 24; 32; 40 ]
  in
  let r1 = batch 1 in
  let r4 = batch 4 in
  Alcotest.(check (list string)) "batch jobs=1 = jobs=4 (warm cache)" r1 r4

let tests =
  [
    Alcotest.test_case "pool map = sequential map" `Quick
      test_map_matches_sequential;
    Alcotest.test_case "jobs=1 runs inline" `Quick test_jobs1_runs_inline;
    Alcotest.test_case "submit/await" `Quick test_submit_await;
    Alcotest.test_case "first error propagates" `Quick
      test_first_error_propagates;
    Alcotest.test_case "nested map does not deadlock" `Quick
      test_nested_map_no_deadlock;
    Alcotest.test_case "shutdown is idempotent" `Quick test_shutdown_idempotent;
    Alcotest.test_case "key digest pinned and collision-free" `Quick
      test_key_stability;
    Alcotest.test_case "schema bump re-addresses" `Quick
      test_schema_bump_changes_key;
    Alcotest.test_case "store/find round trip" `Quick test_store_find_roundtrip;
    Alcotest.test_case "stale schema is a plain miss" `Quick
      test_stale_schema_is_a_miss;
    Alcotest.test_case "corrupt entry ignored and repaired" `Quick
      test_corrupt_entry_ignored;
    Alcotest.test_case "find_or_add memoizes" `Quick test_find_or_add_memoizes;
    Alcotest.test_case "flow cache hit reproduces compile" `Quick
      test_flow_cache_hit_reproduces_compile;
    Alcotest.test_case "compile deterministic in --jobs" `Quick
      test_compile_deterministic_in_jobs;
  ]
