(* Tests for the telemetry subsystem: span nesting, counter aggregation,
   disabled-mode no-op behavior, Chrome trace_event well-formedness, the
   JSON round trip, and the Flow.timing-vs-span-tree consistency
   regression. Telemetry state is global, so every test starts from
   [reset] and leaves the registry disabled. *)

open Polyufc_core
module T = Telemetry
module J = Telemetry.Json

let with_fresh_telemetry f =
  T.reset ();
  T.enable ();
  Fun.protect ~finally:(fun () -> T.disable ()) f

(* ---------- spans ---------- *)

let test_span_nesting () =
  with_fresh_telemetry @@ fun () ->
  let x =
    T.with_span "outer" (fun () ->
        T.with_span "inner_a" (fun () -> ());
        T.with_span "inner_b" (fun () -> T.with_span "leaf" (fun () -> ()));
        42)
  in
  Alcotest.(check int) "result passes through" 42 x;
  let spans = T.spans () in
  Alcotest.(check int) "four spans" 4 (List.length spans);
  let find name = List.find (fun (s : T.span) -> s.T.name = name) spans in
  let outer = find "outer" in
  let inner_a = find "inner_a" in
  let inner_b = find "inner_b" in
  let leaf = find "leaf" in
  Alcotest.(check int) "outer is a root" (-1) outer.T.parent;
  Alcotest.(check int) "outer depth" 0 outer.T.depth;
  Alcotest.(check int) "inner_a parent" outer.T.id inner_a.T.parent;
  Alcotest.(check int) "inner_b parent" outer.T.id inner_b.T.parent;
  Alcotest.(check int) "leaf parent" inner_b.T.id leaf.T.parent;
  Alcotest.(check int) "leaf depth" 2 leaf.T.depth;
  (* chronological order and containment *)
  Alcotest.(check bool) "children start after parent" true
    (inner_a.T.start_us >= outer.T.start_us);
  Alcotest.(check bool) "parent covers children" true
    (outer.T.dur_us
    >= inner_a.T.dur_us +. inner_b.T.dur_us -. 1e-6)

let test_span_exception_safety () =
  with_fresh_telemetry @@ fun () ->
  (try T.with_span "boom" (fun () -> failwith "expected") with
  | Failure _ -> ());
  T.with_span "after" (fun () -> ());
  let spans = T.spans () in
  Alcotest.(check int) "both spans recorded" 2 (List.length spans);
  List.iter
    (fun (s : T.span) ->
      Alcotest.(check int) ("root: " ^ s.T.name) (-1) s.T.parent)
    spans

let test_span_timed_agrees () =
  with_fresh_telemetry @@ fun () ->
  let (), dur_s = T.with_span_timed "timed" (fun () -> Sys.opaque_identity ()) in
  let s = List.hd (T.spans ()) in
  Alcotest.(check bool) "span dur = returned dur" true
    (Float.abs ((s.T.dur_us *. 1e-6) -. dur_s) < 1e-9)

(* ---------- counters and histograms ---------- *)

let test_counter_aggregation () =
  with_fresh_telemetry @@ fun () ->
  let c = T.counter "test.counter" in
  T.tick c;
  T.tick c;
  T.add c 40;
  T.count ~by:8 "test.counter";
  Alcotest.(check int) "aggregated" 50 (T.counter_value "test.counter");
  T.reset ();
  Alcotest.(check int) "reset zeroes in place" 0 (T.counter_value "test.counter");
  T.tick c;
  Alcotest.(check int) "handle survives reset" 1 (T.counter_value "test.counter")

let test_histograms () =
  with_fresh_telemetry @@ fun () ->
  T.observe "test.h" 2.0;
  T.observe "test.h" 6.0;
  T.observe "test.h" 4.0;
  match List.assoc_opt "test.h" (T.histograms_snapshot ()) with
  | None -> Alcotest.fail "histogram missing"
  | Some (n, sum, mn, mx) ->
    Alcotest.(check int) "count" 3 n;
    Alcotest.(check (float 1e-9)) "sum" 12.0 sum;
    Alcotest.(check (float 1e-9)) "min" 2.0 mn;
    Alcotest.(check (float 1e-9)) "max" 6.0 mx

(* log-linear buckets with 16 sub-buckets per binade: any quantile
   estimate is within half a sub-bucket of the truth, a relative error
   of at most 1/32 ~ 3.2% (we allow 3.5% for the nearest-rank off-by-one
   at small counts) *)
let test_quantile_accuracy () =
  with_fresh_telemetry @@ fun () ->
  (* deterministic log-uniform values over ~6 decades *)
  let st = Random.State.make [| 0x5eed |] in
  let n = 20_000 in
  let values =
    Array.init n (fun _ -> Float.exp (Random.State.float st 14.0 -. 4.0))
  in
  Array.iter (T.observe "test.q") values;
  Array.sort compare values;
  let h =
    match T.histogram_snapshot "test.q" with
    | Some h -> h
    | None -> Alcotest.fail "histogram missing"
  in
  List.iter
    (fun q ->
      let est = T.quantile h q in
      let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int n))) in
      let true_v = values.(rank - 1) in
      let rel = Float.abs (est -. true_v) /. true_v in
      Alcotest.(check bool)
        (Printf.sprintf "q=%g rel err %.4f <= 0.035" q rel)
        true (rel <= 0.035))
    [ 0.5; 0.9; 0.99; 0.999 ]

let test_quantile_degenerate () =
  with_fresh_telemetry @@ fun () ->
  for _ = 1 to 100 do
    T.observe "test.same" 37.25
  done;
  (* out-of-range observations land in the edge buckets but stay pinned
     to the observed min/max *)
  T.observe "test.edge" 0.0;
  T.observe "test.edge" (-3.0);
  T.observe "test.edge" 1e14;
  let h name =
    match T.histogram_snapshot name with
    | Some h -> h
    | None -> Alcotest.fail "histogram missing"
  in
  List.iter
    (fun q ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "all-equal q=%g exact" q)
        37.25
        (T.quantile (h "test.same") q))
    [ 0.0; 0.5; 0.99; 1.0 ];
  let edge = h "test.edge" in
  Alcotest.(check bool) "quantiles clamped to observed range" true
    (List.for_all
       (fun q ->
         let v = T.quantile edge q in
         v >= -3.0 && v <= 1e14)
       [ 0.001; 0.5; 0.999 ]);
  Alcotest.(check bool) "empty histogram quantile is NaN" true
    (Float.is_nan
       (T.quantile
          {
            T.hist_count = 0;
            hist_sum = 0.0;
            hist_min = Float.infinity;
            hist_max = Float.neg_infinity;
            hist_buckets = [];
          }
          0.5))

let test_stats_json_shape () =
  with_fresh_telemetry @@ fun () ->
  T.count ~by:3 "test.ticks";
  for i = 1 to 100 do
    T.observe "test.lat" (float_of_int i)
  done;
  let doc = T.stats_json () in
  Alcotest.(check bool) "meta present" true (J.member "meta" doc <> None);
  let meta = Option.get (J.member "meta" doc) in
  List.iter
    (fun k ->
      Alcotest.(check bool) ("meta has " ^ k) true (J.member k meta <> None))
    [ "timestamp"; "hostname"; "pid"; "ocaml_version" ];
  let hist =
    match J.member "histograms" doc with
    | Some hs -> (
      match J.member "test.lat" hs with
      | Some h -> h
      | None -> Alcotest.fail "test.lat histogram missing from stats_json")
    | None -> Alcotest.fail "histograms missing"
  in
  List.iter
    (fun k ->
      Alcotest.(check bool)
        ("histogram has " ^ k)
        true
        (J.member k hist <> None))
    [ "count"; "sum"; "mean"; "p50"; "p90"; "p99"; "p999"; "buckets" ];
  (* bucket counts must sum to the observation count *)
  let bucket_sum =
    match J.member "buckets" hist with
    | Some (J.Arr bs) ->
      List.fold_left
        (fun acc b ->
          match Option.bind (J.member "n" b) J.number with
          | Some n -> acc + int_of_float n
          | None -> acc)
        0 bs
    | _ -> -1
  in
  Alcotest.(check int) "bucket counts sum to count" 100 bucket_sum

(* OpenMetrics exposition sanity: parses line-by-line, `# TYPE` metadata
   precedes samples, histogram bucket series are cumulative and agree
   with _count, and the document is # EOF-terminated. *)
let test_openmetrics_exposition () =
  with_fresh_telemetry @@ fun () ->
  T.count ~by:7 "test.om_counter";
  for i = 1 to 50 do
    T.observe "test.om-lat.us" (float_of_int (i * 3))
  done;
  ignore (T.with_span "om.span" (fun () -> ()));
  let text = T.to_openmetrics () in
  let lines = String.split_on_char '\n' text in
  let non_empty = List.filter (fun l -> l <> "") lines in
  Alcotest.(check string) "EOF-terminated" "# EOF"
    (List.nth non_empty (List.length non_empty - 1));
  let typed = Hashtbl.create 16 in
  let bucket_cum = Hashtbl.create 16 in
  List.iter
    (fun line ->
      if line = "" || line = "# EOF" then ()
      else if String.length line > 7 && String.sub line 0 7 = "# TYPE " then begin
        match String.split_on_char ' ' line with
        | [ "#"; "TYPE"; name; kind ] ->
          Alcotest.(check bool)
            ("known metric kind " ^ kind)
            true
            (List.mem kind [ "counter"; "gauge"; "histogram" ]);
          Hashtbl.replace typed name kind
        | _ -> Alcotest.fail ("malformed TYPE line: " ^ line)
      end
      else begin
        (* sample line: name[{labels}] value *)
        let name_end =
          match (String.index_opt line '{', String.index_opt line ' ') with
          | Some b, Some sp when b < sp -> b
          | _, Some sp -> sp
          | _ -> Alcotest.fail ("malformed sample line: " ^ line)
        in
        let name = String.sub line 0 name_end in
        Alcotest.(check bool)
          ("metric name sanitized: " ^ name)
          true
          (String.length name > 8
          && String.sub name 0 8 = "polyufc_"
          && String.for_all
               (function
                 | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true
                 | _ -> false)
               name);
        let value =
          match String.rindex_opt line ' ' with
          | Some i ->
            float_of_string_opt
              (String.sub line (i + 1) (String.length line - i - 1))
          | None -> None
        in
        Alcotest.(check bool)
          ("sample has a numeric value: " ^ line)
          true (value <> None);
        (* every sample's base family must have a TYPE line *)
        let strip suffix n =
          if
            String.length n > String.length suffix
            && String.sub n
                 (String.length n - String.length suffix)
                 (String.length suffix)
               = suffix
          then Some (String.sub n 0 (String.length n - String.length suffix))
          else None
        in
        let family =
          List.fold_left
            (fun acc suffix ->
              match acc with
              | Some _ -> acc
              | None -> strip suffix name)
            None
            [ "_total"; "_bucket"; "_sum"; "_count" ]
          |> Option.value ~default:name
        in
        Alcotest.(check bool)
          ("TYPE declared for " ^ family)
          true
          (Hashtbl.mem typed family);
        (* cumulative bucket check *)
        match strip "_bucket" name with
        | Some fam ->
          let v = Option.get value in
          let prev = Option.value ~default:0.0 (Hashtbl.find_opt bucket_cum fam) in
          Alcotest.(check bool)
            (fam ^ " buckets cumulative")
            true (v >= prev);
          Hashtbl.replace bucket_cum fam v
        | None -> (
          match strip "_count" name with
          | Some fam when Hashtbl.mem bucket_cum fam ->
            Alcotest.(check (float 1e-9))
              (fam ^ " count = last bucket")
              (Hashtbl.find bucket_cum fam)
              (Option.get value)
          | _ -> ())
      end)
    lines;
  Alcotest.(check bool) "histogram family present" true
    (Hashtbl.fold
       (fun _ kind acc -> acc || kind = "histogram")
       typed false)

let test_openmetrics_rejects_non_object () =
  Alcotest.(check bool) "non-object stats rejected" true
    (match T.openmetrics_of_stats (J.Arr []) with
    | Error _ -> true
    | Ok _ -> false)

let test_disabled_noop () =
  T.reset ();
  T.disable ();
  let c = T.counter "test.disabled" in
  T.tick c;
  T.count "test.disabled";
  T.observe "test.disabled_h" 1.0;
  let x = T.with_span "ghost" (fun () -> 7) in
  Alcotest.(check int) "with_span still runs thunk" 7 x;
  let (), dur = T.with_span_timed "ghost2" (fun () -> ()) in
  Alcotest.(check bool) "timed still measures" true (dur >= 0.0);
  Alcotest.(check int) "no counter bump" 0 (T.counter_value "test.disabled");
  Alcotest.(check int) "no spans" 0 (List.length (T.spans ()));
  Alcotest.(check bool) "no histogram" true
    (List.assoc_opt "test.disabled_h" (T.histograms_snapshot ()) = None)

(* telemetry is shared by the engine's worker domains; concurrent ticks on
   the same counter must never be lost *)
let test_concurrent_counters () =
  with_fresh_telemetry @@ fun () ->
  let c = T.counter "test.concurrent" in
  let per_domain = 10_000 in
  let domains =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              T.tick c
            done))
  in
  List.iter Domain.join domains;
  T.add c 2;
  Alcotest.(check int) "4 domains x 10k ticks, none lost"
    ((4 * per_domain) + 2)
    (T.counter_value "test.concurrent")

(* span stacks are domain-local: concurrent spans must each nest under
   their own domain's stack, not under another domain's open span *)
let test_concurrent_spans () =
  with_fresh_telemetry @@ fun () ->
  let domains =
    List.init 3 (fun i ->
        Domain.spawn (fun () ->
            T.with_span
              (Printf.sprintf "dom%d" i)
              (fun () -> T.with_span "child" (fun () -> ()))))
  in
  List.iter Domain.join domains;
  let spans = T.spans () in
  Alcotest.(check int) "two spans per domain" 6 (List.length spans);
  let roots = List.filter (fun (s : T.span) -> s.T.parent = -1) spans in
  Alcotest.(check int) "one root per domain" 3 (List.length roots);
  List.iter
    (fun (s : T.span) ->
      if s.T.name = "child" then begin
        let parent =
          List.find (fun (p : T.span) -> p.T.id = s.T.parent) spans
        in
        Alcotest.(check bool) "child under a domain root" true
          (String.length parent.T.name = 4
          && String.sub parent.T.name 0 3 = "dom")
      end)
    spans

(* ---------- JSON ---------- *)

let test_json_roundtrip () =
  let v =
    J.Obj
      [
        ("s", J.Str "a\"b\\c\nd");
        ("i", J.Int (-42));
        ("f", J.Float 1.5);
        ("inf", J.Float Float.infinity);
        ("l", J.Arr [ J.Bool true; J.Null; J.Int 0 ]);
        ("o", J.Obj [ ("nested", J.Str "x") ]);
      ]
  in
  match J.of_string (J.to_string v) with
  | Error msg -> Alcotest.fail ("reparse failed: " ^ msg)
  | Ok v' ->
    Alcotest.(check string) "string field" "a\"b\\c\nd"
      (match J.member "s" v' with Some (J.Str s) -> s | _ -> "?");
    Alcotest.(check int) "int field" (-42)
      (match J.member "i" v' with Some (J.Int i) -> i | _ -> 0);
    Alcotest.(check bool) "infinity became null" true
      (J.member "inf" v' = Some J.Null);
    Alcotest.(check int) "array arity" 3
      (match J.member "l" v' with
      | Some (J.Arr l) -> List.length l
      | _ -> 0)

let test_json_rejects_malformed () =
  List.iter
    (fun s ->
      match J.of_string s with
      | Ok _ -> Alcotest.fail ("accepted malformed: " ^ s)
      | Error _ -> ())
    [ "{"; "[1,"; "{\"a\" 1}"; "tru"; "\"unterminated"; "{} trailing"; "" ]

let test_trace_event_well_formed () =
  with_fresh_telemetry @@ fun () ->
  T.with_span "root" ~args:[ ("k", "v") ] (fun () ->
      T.with_span "child" (fun () -> ()));
  T.count ~by:3 "test.traced";
  let text = T.trace_to_string () in
  match J.of_string text with
  | Error msg -> Alcotest.fail ("trace does not parse: " ^ msg)
  | Ok doc ->
    let events =
      match J.member "traceEvents" doc with
      | Some (J.Arr l) -> l
      | _ -> Alcotest.fail "traceEvents missing or not an array"
    in
    (* 2 spans + 1 counter event *)
    Alcotest.(check int) "event count" 3 (List.length events);
    List.iter
      (fun e ->
        let str k =
          match J.member k e with Some (J.Str s) -> Some s | _ -> None
        in
        Alcotest.(check bool) "has name" true (str "name" <> None);
        let ph =
          match str "ph" with Some p -> p | None -> Alcotest.fail "no ph"
        in
        Alcotest.(check bool) "ph is X or C" true (ph = "X" || ph = "C");
        Alcotest.(check bool) "ts is a number" true
          (match J.member "ts" e with
          | Some t -> J.number t <> None
          | None -> false);
        if ph = "X" then begin
          Alcotest.(check bool) "X has non-negative dur" true
            (match J.member "dur" e with
            | Some d -> (match J.number d with Some f -> f >= 0.0 | None -> false)
            | None -> false)
        end)
      events

(* ---------- pipeline integration ---------- *)

let small_src =
  {|
program tiny(n) {
  arrays { A[n][n] : f64; x[n] : f64; y[n] : f64; }
  for (i = 0; i < n; i++) {
    for (j = 0; j < n; j++) {
      y[i] = y[i] + A[i][j] * x[j];
    }
  }
}
|}

let compile_tiny () =
  let prog = Polylang.parse small_src in
  Flow.compile ~tile:false ~machine:Hwsim.Machine.bdw
    ~rooflines:(Lazy.force Test_support.bdw_rooflines)
    prog ~param_values:[ ("n", 40) ]

(* Flow.compile's [timing] record must stay a faithful view over the span
   tree: each phase duration equals its span, and the four phase spans are
   the children of flow.compile. *)
let test_flow_timing_consistent_with_spans () =
  with_fresh_telemetry @@ fun () ->
  let c = compile_tiny () in
  let spans = T.spans () in
  let root =
    match List.find_opt (fun (s : T.span) -> s.T.name = "flow.compile") spans with
    | Some s -> s
    | None -> Alcotest.fail "no flow.compile span"
  in
  let phase name =
    match
      List.find_opt
        (fun (s : T.span) -> s.T.name = name && s.T.parent = root.T.id)
        spans
    with
    | Some s -> s
    | None -> Alcotest.fail ("missing phase span " ^ name)
  in
  let check_phase name recorded =
    let s = phase name in
    Alcotest.(check bool)
      (name ^ " timing = span duration")
      true
      (Float.abs ((s.T.dur_us *. 1e-6) -. recorded) < 1e-9)
  in
  check_phase Flow.phase_preprocess c.Flow.timing.Flow.preprocess_s;
  check_phase Flow.phase_pluto c.Flow.timing.Flow.pluto_s;
  check_phase Flow.phase_cm c.Flow.timing.Flow.cm_s;
  check_phase Flow.phase_steps456 c.Flow.timing.Flow.steps456_s

let test_pipeline_counters_nonzero () =
  with_fresh_telemetry @@ fun () ->
  let c = compile_tiny () in
  let e =
    Flow.evaluate ~machine:Hwsim.Machine.bdw c ~param_values:[ ("n", 40) ]
  in
  Alcotest.(check bool) "simulated some time" true
    (e.Flow.baseline.Hwsim.Sim.time_s > 0.0);
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " > 0") true (T.counter_value name > 0))
    [
      "presburger.fm_project";
      "presburger.is_empty";
      "presburger.sets_built";
      "cache_model.analyze";
      "cache_model.accesses";
      "flow.compiles";
      "hwsim.runs";
    ]

let test_flow_timing_works_disabled () =
  T.reset ();
  T.disable ();
  let c = compile_tiny () in
  let t = c.Flow.timing in
  Alcotest.(check bool) "phase times measured while disabled" true
    (t.Flow.preprocess_s >= 0.0 && t.Flow.pluto_s >= 0.0
    && t.Flow.cm_s > 0.0 && t.Flow.steps456_s >= 0.0);
  Alcotest.(check int) "but no spans recorded" 0 (List.length (T.spans ()))

let tests =
  [
    Alcotest.test_case "span nesting" `Quick test_span_nesting;
    Alcotest.test_case "span exception safety" `Quick test_span_exception_safety;
    Alcotest.test_case "with_span_timed agrees with span" `Quick
      test_span_timed_agrees;
    Alcotest.test_case "counter aggregation" `Quick test_counter_aggregation;
    Alcotest.test_case "histograms" `Quick test_histograms;
    Alcotest.test_case "quantile accuracy bound" `Quick test_quantile_accuracy;
    Alcotest.test_case "quantile degenerate cases" `Quick
      test_quantile_degenerate;
    Alcotest.test_case "stats_json meta + quantiles" `Quick
      test_stats_json_shape;
    Alcotest.test_case "openmetrics exposition sanity" `Quick
      test_openmetrics_exposition;
    Alcotest.test_case "openmetrics rejects non-object" `Quick
      test_openmetrics_rejects_non_object;
    Alcotest.test_case "disabled mode is a no-op" `Quick test_disabled_noop;
    Alcotest.test_case "concurrent counters lose nothing" `Quick
      test_concurrent_counters;
    Alcotest.test_case "concurrent spans are domain-local" `Quick
      test_concurrent_spans;
    Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
    Alcotest.test_case "json rejects malformed" `Quick
      test_json_rejects_malformed;
    Alcotest.test_case "chrome trace well-formed" `Quick
      test_trace_event_well_formed;
    Alcotest.test_case "flow timing = span tree" `Quick
      test_flow_timing_consistent_with_spans;
    Alcotest.test_case "pipeline counters nonzero" `Quick
      test_pipeline_counters_nonzero;
    Alcotest.test_case "flow timing works disabled" `Quick
      test_flow_timing_works_disabled;
  ]
