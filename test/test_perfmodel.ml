(* Tests for the parametric performance/power model (Sec. V). *)

let consts = Test_support.bdw_rooflines

let gemm_src =
  {|
program gemm(n) {
  arrays { A[n][n] : f64; B[n][n] : f64; C[n][n] : f64; }
  for (i = 0; i < n; i++) {
    for (j = 0; j < n; j++) {
      C[i][j] = 0.0;
      for (k = 0; k < n; k++) {
        C[i][j] = C[i][j] + A[i][k] * B[k][j];
      }
    }
  }
}
|}

let mvt_src =
  {|
program mvt(n) {
  arrays { A[n][n] : f64; x1[n] : f64; y1[n] : f64; }
  for (i = 0; i < n; i++) {
    for (j = 0; j < n; j++) {
      x1[i] = x1[i] + A[i][j] * y1[j];
    }
  }
}
|}

let profile_of src n =
  let prog = Poly_ir.Tiling.tile_program ~tile_size:32 (Polylang.parse src) in
  let cm =
    Cache_model.Model.analyze ~machine:Hwsim.Machine.bdw
      ~apply_thread_heuristic:false prog ~param_values:[ ("n", n) ]
  in
  (prog, Perfmodel.profile_of_cm cm)

let test_gemm_estimate_accuracy () =
  (* the paper reports < 7% gap on CB kernels (Sec. VII-D) *)
  let k = Lazy.force consts in
  let prog, p = profile_of gemm_src 128 in
  List.iter
    (fun f ->
      let est = Perfmodel.estimate k p ~f_c:f in
      let hw =
        Hwsim.Sim.run_one
          (Hwsim.Sim.config ~machine:Hwsim.Machine.bdw ~uncore:(`Fixed f)
             [
               Hwsim.Sim.tenant ~param_values:[ ("n", 128) ] ~name:"gemm"
                 prog;
             ])
      in
      let err =
        Float.abs (est.Perfmodel.time_s -. hw.Hwsim.Sim.time_s) /. hw.Hwsim.Sim.time_s
      in
      Alcotest.(check bool)
        (Printf.sprintf "time error < 10%% at f=%.1f (got %.1f%%)" f (100. *. err))
        true (err < 0.10))
    [ 1.2; 2.0; 2.8 ]

let test_cb_shape () =
  let k = Lazy.force consts in
  let _, p = profile_of gemm_src 128 in
  let sweep = Perfmodel.sweep k p in
  let first = List.hd sweep and last = List.nth sweep (List.length sweep - 1) in
  Alcotest.(check bool) "classified CB" true
    (first.Perfmodel.boundedness = Roofline.CB);
  (* CB: time nearly flat, energy increasing in f_c *)
  Alcotest.(check bool) "time flat (< 6%)" true
    (Float.abs (first.Perfmodel.time_s -. last.Perfmodel.time_s)
     /. last.Perfmodel.time_s
     < 0.06);
  Alcotest.(check bool) "energy rises with f_c" true
    (last.Perfmodel.energy_j > first.Perfmodel.energy_j);
  let best = Perfmodel.best_by ~metric:`Edp sweep in
  Alcotest.(check bool) "EDP optimum well below max" true
    (best.Perfmodel.f_c < 2.0)

let test_bb_shape () =
  let k = Lazy.force consts in
  let _, p = profile_of mvt_src 400 in
  let sweep = Perfmodel.sweep k p in
  let first = List.hd sweep and last = List.nth sweep (List.length sweep - 1) in
  Alcotest.(check bool) "classified BB" true
    (first.Perfmodel.boundedness = Roofline.BB);
  Alcotest.(check bool) "time falls with f_c" true
    (first.Perfmodel.time_s > 1.2 *. last.Perfmodel.time_s);
  let best = Perfmodel.best_by ~metric:`Edp sweep in
  Alcotest.(check bool) "EDP optimum in upper half" true
    (best.Perfmodel.f_c > 2.0)

let test_perf_bw_definitions () =
  (* Eqns. 5–6: Perf·T = Ω and BW·T = Q *)
  let k = Lazy.force consts in
  let _, p = profile_of gemm_src 64 in
  let e = Perfmodel.estimate k p ~f_c:2.0 in
  Alcotest.(check (float 1.0)) "perf * time = omega" p.Perfmodel.omega
    (e.Perfmodel.perf_gflops *. 1e9 *. e.Perfmodel.time_s);
  Alcotest.(check (float 1.0)) "bw * time = q_dram" p.Perfmodel.q_dram_bytes
    (e.Perfmodel.bw_gbps *. 1e9 *. e.Perfmodel.time_s)

let test_power_split () =
  let k = Lazy.force consts in
  let _, p = profile_of mvt_src 300 in
  let lo = Perfmodel.estimate k p ~f_c:1.2 in
  let hi = Perfmodel.estimate k p ~f_c:2.8 in
  Alcotest.(check bool) "power rises with f_c" true
    (hi.Perfmodel.power_w > lo.Perfmodel.power_w);
  Alcotest.(check bool) "peak >= average shape" true
    (hi.Perfmodel.peak_power_w > 0.0);
  Alcotest.(check (float 1e-9)) "edp = e*t"
    (hi.Perfmodel.energy_j *. hi.Perfmodel.time_s)
    hi.Perfmodel.edp

let test_best_by () =
  let k = Lazy.force consts in
  let _, p = profile_of gemm_src 64 in
  let sweep = Perfmodel.sweep k p in
  let by_time = Perfmodel.best_by ~metric:`Time sweep in
  let by_energy = Perfmodel.best_by ~metric:`Energy sweep in
  List.iter
    (fun (e : Perfmodel.estimate) ->
      Alcotest.(check bool) "time minimal" true
        (by_time.Perfmodel.time_s <= e.Perfmodel.time_s +. 1e-15);
      Alcotest.(check bool) "energy minimal" true
        (by_energy.Perfmodel.energy_j <= e.Perfmodel.energy_j +. 1e-15))
    sweep

let tests =
  [
    Alcotest.test_case "gemm estimate accuracy" `Quick test_gemm_estimate_accuracy;
    Alcotest.test_case "CB sweep shape" `Quick test_cb_shape;
    Alcotest.test_case "BB sweep shape" `Quick test_bb_shape;
    Alcotest.test_case "Perf/BW definitions" `Quick test_perf_bw_definitions;
    Alcotest.test_case "power split" `Quick test_power_split;
    Alcotest.test_case "best_by" `Quick test_best_by;
  ]
