program broken(n) {
  arrays { A[n][n] : f64; }
  for (i = 0; i < n; i++ {
    A[i][i] = 1.0;
  }
}
