(* Differential tests for the closed-form counting engine: every count the
   fast path produces must be bit-identical to the naive enumeration —
   including [Unbounded] behavior and under a worker pool — on random
   polytopes mixing equalities, inequalities, empty systems, open sides,
   and modular/div constraints. *)

open Presburger
module Ints = Linalg.Ints
module Q = Linalg.Q

let parse1 = Syntax.bset_of_string
let parse = Syntax.pset_of_string

(* ---------- random polytope generator ---------- *)

type case = { poly : Poly.t; n_scan : int; label : string }

let gen_case : case QCheck.Gen.t =
  QCheck.Gen.(
    let* nvar = int_range 1 4 in
    let* n_cstr = int_range 0 5 in
    let gen_cstr =
      let* coef = array_size (return nvar) (int_range (-3) 3) in
      let* const = int_range (-9) 9 in
      let* is_eq = frequency [ (4, return false); (1, return true) ] in
      return (if is_eq then Poly.eq coef const else Poly.ge coef const)
    in
    let* random = list_size (return n_cstr) gen_cstr in
    (* window each variable so scans stay finite, occasionally leaving one
       side open to exercise Unbounded parity *)
    let gen_window i =
      let* mode = frequency [ (12, return `Both); (1, return `Lo); (1, return `Hi) ] in
      let* lo = int_range (-6) 0 in
      let* hi = int_range 0 6 in
      let lo_c =
        let coef = Array.make nvar 0 in
        coef.(i) <- 1;
        Poly.ge coef (-lo)
      in
      let hi_c =
        let coef = Array.make nvar 0 in
        coef.(i) <- -1;
        Poly.ge coef hi
      in
      return (match mode with `Both -> [ lo_c; hi_c ] | `Lo -> [ lo_c ] | `Hi -> [ hi_c ])
    in
    let* windows = flatten_l (List.init nvar gen_window) in
    let* scan_all = frequency [ (2, return true); (1, return false) ] in
    let n_scan = if scan_all then nvar else nvar - 1 in
    let poly = Poly.make nvar (List.concat windows @ random) in
    return { poly; n_scan; label = "" })

let arb_case =
  QCheck.make
    ~print:(fun c ->
      Format.asprintf "n_scan=%d %a" c.n_scan Poly.pp c.poly)
    gen_case

type outcome = Count of int | Unbounded_scan

let outcome f =
  match f () with n -> Count n | exception Poly.Unbounded -> Unbounded_scan

let pp_outcome = function
  | Count n -> Printf.sprintf "Count %d" n
  | Unbounded_scan -> "Unbounded"

let check_case ?pool c =
  let naive = outcome (fun () -> Poly.count_points_naive ~n_scan:c.n_scan c.poly) in
  let fast = outcome (fun () -> Poly.count_points ?pool ~n_scan:c.n_scan c.poly) in
  if naive <> fast then
    QCheck.Test.fail_reportf "fast %s <> naive %s on %s" (pp_outcome fast)
      (pp_outcome naive)
      (Format.asprintf "n_scan=%d %a" c.n_scan Poly.pp c.poly);
  true

let qcheck_diff =
  [
    QCheck.Test.make ~name:"count_points == naive fold count (300 random polytopes)"
      ~count:300 arb_case (fun c -> check_case c);
    QCheck.Test.make ~name:"remove_redundant preserves the integer set" ~count:150
      arb_case
      (fun c ->
        let r = Poly.remove_redundant c.poly in
        let o = outcome (fun () -> Poly.count_points_naive ~n_scan:c.n_scan c.poly) in
        let o' = outcome (fun () -> Poly.count_points_naive ~n_scan:c.n_scan r) in
        o = o');
  ]

(* pool parity gets its own sequential loop so one pool serves all cases *)
let test_pool_parity () =
  Engine.Pool.with_pool ~jobs:3 (fun pool ->
      let rand = Random.State.make [| 0xC0FFEE |] in
      let cases = QCheck.Gen.generate ~n:80 ~rand gen_case in
      List.iter (fun c -> ignore (check_case ~pool c)) cases;
      (* a scan big enough to actually chunk across workers: a triangular
         domain (collapses at level 1, iterates level 0) *)
      let tri = parse1 "{ [i, j] : 0 <= i < 200 and 0 <= j <= i }" in
      Bset.clear_count_memo ();
      Alcotest.(check int) "triangle 200 via pool" (200 * 201 / 2)
        (Bset.cardinality ~pool tri))

(* ---------- modular / div and union cases through the syntax layer ---------- *)

let bset_naive_count b = Bset.fold_points b ~init:0 ~f:(fun n _ -> n + 1)

let test_div_cases () =
  let cases =
    [
      "{ [i] : 0 <= i < 30 and i mod 2 = 0 }";
      "{ [i] : 0 <= i < 30 and i mod 7 = 3 }";
      "{ [i, j] : 0 <= i < 12 and 0 <= j < 12 and (i + j) mod 2 = 0 }";
      "{ [i, j] : 0 <= i < 12 and 0 <= j <= i and (2*i + j) mod 3 = 1 }";
      "{ [i] : 0 <= i < 40 and floor(i / 4) = 3 }";
      "{ [i, j] : 0 <= i < 9 and floor(i / 3) <= j and j < 5 }";
      "{ [i] : 0 <= i < 10 and i != 4 }";
      "{ [i] : i = 5 }";
      "{ [i] : 0 <= i and i < 0 }";
    ]
  in
  List.iter
    (fun s ->
      let p = parse s in
      List.iter
        (fun b ->
          Bset.clear_count_memo ();
          Alcotest.(check int) ("diff " ^ s) (bset_naive_count b) (Bset.cardinality b))
        (Pset.disjuncts p))
    cases

let test_pset_union_counts () =
  (* the disjointified union path must agree with dedup enumeration *)
  let pset_naive_count p = Pset.fold_points p ~init:0 ~f:(fun n _ -> n + 1) in
  let cases =
    [
      "{ [i] : 0 <= i < 6 ; [i] : 4 <= i < 8 }";
      "{ [i, j] : 0 <= i < 5 and 0 <= j < 5 ; [i, j] : 3 <= i < 9 and 2 <= j < 4 }";
      "{ [i] : (0 <= i < 3) or (10 <= i < 13) }";
      "{ [i] : 0 <= i < 10 and i != 4 }";
      "{ [i, j] : 0 <= i < 4 and 0 <= j < 4 ; [i, j] : 0 <= i < 4 and 0 <= j < 4 }";
    ]
  in
  List.iter
    (fun s ->
      let p = parse s in
      Alcotest.(check int) ("union " ^ s) (pset_naive_count p) (Pset.cardinality p))
    cases;
  (* random overlapping box pairs *)
  let rand = Random.State.make [| 0xBEEF |] in
  for _ = 1 to 40 do
    let r lo hi = lo + Random.State.int rand (hi - lo + 1) in
    let box () =
      let a = r (-6) 4 in
      let b = r a 6 in
      let c = r (-6) 4 in
      let d = r c 6 in
      Printf.sprintf "[i, j] : %d <= i <= %d and %d <= j <= %d" a b c d
    in
    let s = Printf.sprintf "{ %s ; %s ; %s }" (box ()) (box ()) (box ()) in
    let p = parse s in
    Alcotest.(check int) ("union " ^ s) (pset_naive_count p) (Pset.cardinality p)
  done

(* ---------- acceptance: the box scan is no longer O(N^3) ---------- *)

let test_box_points_scanned () =
  let n = 20 in
  let b =
    parse1
      (Printf.sprintf "{ [i, j, k] : 0 <= i < %d and 0 <= j < %d and 0 <= k < %d }" n n n)
  in
  Bset.clear_count_memo ();
  Telemetry.reset ();
  Telemetry.enable ();
  let scanned0 = Telemetry.counter_value "presburger.points_scanned" in
  let card = Bset.cardinality b in
  let scanned = Telemetry.counter_value "presburger.points_scanned" - scanned0 in
  let slices = Telemetry.counter_value "presburger.slices_closed_form" in
  Telemetry.disable ();
  Telemetry.reset ();
  Alcotest.(check int) "card N^3" (n * n * n) card;
  if scanned > n * n then
    Alcotest.failf "box N=%d scanned %d points, want <= N^2 = %d" n scanned (n * n);
  Alcotest.(check bool) "closed-form slices used" true (slices > 0)

let test_triangle_collapses () =
  (* the innermost dimension of a triangular nest must not be enumerated *)
  let n = 50 in
  let b = parse1 (Printf.sprintf "{ [i, j] : 0 <= i < %d and 0 <= j <= i }" n) in
  Bset.clear_count_memo ();
  Telemetry.reset ();
  Telemetry.enable ();
  let card = Bset.cardinality b in
  let scanned = Telemetry.counter_value "presburger.points_scanned" in
  Telemetry.disable ();
  Telemetry.reset ();
  Alcotest.(check int) "card n(n+1)/2" (n * (n + 1) / 2) card;
  if scanned > n then
    Alcotest.failf "triangle N=%d scanned %d points, want <= N" n scanned

(* ---------- constraint minimization ---------- *)

let test_remove_redundant_drops () =
  (* i <= 100 is implied by i <= 19 *)
  let p =
    Poly.make 1
      [ Poly.ge [| 1 |] 0; Poly.ge [| -1 |] 19; Poly.ge [| -1 |] 100 ]
  in
  let r = Poly.remove_redundant p in
  Alcotest.(check int) "constraint dropped" 2 (List.length (Poly.constraints r));
  Alcotest.(check int) "same count" 20 (Poly.count_points_naive r);
  (* opposite parallel pair collapses to an equality *)
  let pinned = Poly.make 1 [ Poly.ge [| 1 |] (-7); Poly.ge [| -1 |] 7 ] in
  let r = Poly.remove_redundant pinned in
  (match Poly.constraints r with
  | [ c ] -> Alcotest.(check bool) "merged to equality" true c.Poly.eq
  | cs -> Alcotest.failf "expected 1 merged constraint, got %d" (List.length cs));
  Alcotest.(check int) "pinned count" 1 (Poly.count_points_naive r)

(* ---------- count memo ---------- *)

let test_count_memo () =
  let b = parse1 "{ [i, j] : 0 <= i < 7 and 0 <= j < 11 }" in
  Bset.clear_count_memo ();
  Telemetry.reset ();
  Telemetry.enable ();
  let a = Bset.cardinality b in
  let hits0 = Telemetry.counter_value "presburger.count_memo_hits" in
  let b' = Bset.cardinality b in
  let hits1 = Telemetry.counter_value "presburger.count_memo_hits" in
  Telemetry.disable ();
  Telemetry.reset ();
  Alcotest.(check int) "same count" a b';
  Alcotest.(check int) "77" 77 a;
  Alcotest.(check int) "second count was a memo hit" (hits0 + 1) hits1

(* ---------- overflow detection (satellite) ---------- *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_q_to_int_exn_message () =
  (match Q.to_int_exn (Q.make 7 2) with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument m ->
    Alcotest.(check bool) ("message names the value: " ^ m) true (contains m "7/2"));
  (* min_int negation must not wrap silently *)
  (match Q.neg (Q.of_int min_int) with
  | _ -> Alcotest.fail "expected Overflow"
  | exception Ints.Overflow -> ());
  match Q.abs (Q.of_int min_int) with
  | _ -> Alcotest.fail "expected Overflow"
  | exception Ints.Overflow -> ()

let test_count_eval_overflow () =
  (* fit n^3 exactly, then evaluate far outside the int range *)
  match Count.interpolate ~count:(fun n -> n * n * n) () with
  | None -> Alcotest.fail "cubic fit failed"
  | Some qp ->
    Alcotest.(check int) "sane eval" 1_000_000 (Count.eval qp 100);
    (match Count.eval qp 3_000_000 with
    | v -> Alcotest.failf "expected overflow, got %d" v
    | exception Count.Overflow m ->
      Alcotest.(check bool)
        ("overflow message carries n: " ^ m)
        true
        (contains m "n=3000000"))

(* ---------- chamber-decomposed parametric counting ---------- *)

(* Random parametric domain: [np] parameter columns followed by [m]
   counting columns.  Every counting variable gets [0 <= x] and an upper
   bound coupling it to a parameter (so instances are finite at every
   sampled parameter point), plus random extra cuts — including
   equalities and inter-variable coupling — that only shrink the set. *)
type pcase = { np : int; bset : Bset.t; label : string }

let param_space np m =
  let params = List.init np (Printf.sprintf "p%d") in
  let vars = List.init m (Printf.sprintf "x%d") in
  Space.set_space ~params ~name:"S" vars

let gen_pcase : pcase QCheck.Gen.t =
  QCheck.Gen.(
    let* np = int_range 1 2 in
    let* m = int_range 1 3 in
    let nvar = np + m in
    let bound_var j =
      (* 0 <= x_j, and x_j <= a·p + c with a >= 1 on one parameter *)
      let lo = Array.make nvar 0 in
      lo.(np + j) <- 1;
      let* p = int_range 0 (np - 1) in
      let* a = int_range 1 2 in
      let* c = int_range (-2) 4 in
      let hi = Array.make nvar 0 in
      hi.(np + j) <- -1;
      hi.(p) <- a;
      return [ Poly.ge lo 0; Poly.ge hi c ]
    in
    let gen_cut =
      let* coef = array_size (return nvar) (int_range (-2) 2) in
      let* const = int_range (-4) 8 in
      let* is_eq = frequency [ (6, return false); (1, return true) ] in
      return (if is_eq then Poly.eq coef const else Poly.ge coef const)
    in
    let* bounds = flatten_l (List.init m bound_var) in
    let* n_cut = int_range 0 3 in
    let* cuts = list_size (return n_cut) gen_cut in
    let poly = Poly.make nvar (List.concat bounds @ cuts) in
    let bset = Bset.of_poly (param_space np m) ~n_div:0 poly in
    return
      { np; bset; label = Format.asprintf "np=%d %a" np Poly.pp poly })

let arb_pcase = QCheck.make ~print:(fun c -> c.label) gen_pcase

let param_samples np =
  if np = 1 then List.map (fun n -> [| n |]) [ 0; 1; 2; 3; 5; 8; 13 ]
  else
    List.concat_map
      (fun n -> List.map (fun m -> [| n; m |]) [ 0; 1; 3; 7 ])
      [ 0; 2; 5; 9 ]

let check_pcase c =
  let exact v = Bset.cardinality (Bset.fix_params c.bset v) in
  (match Count.card_param c.bset with
  | None -> ()
  | Some ch ->
    List.iter
      (fun v ->
        let e = exact v and got = Chamber.eval ch v in
        if e <> got then
          QCheck.Test.fail_reportf
            "chamber eval %d <> exact %d at %s on %s" got e
            (String.concat "," (List.map string_of_int (Array.to_list v)))
            c.label)
      (param_samples c.np));
  (* the public fallback entry point must agree whether or not the
     decomposition succeeded *)
  List.iter
    (fun v ->
      let e = exact v and got = Count.card_at c.bset v in
      if e <> got then
        QCheck.Test.fail_reportf "card_at %d <> exact %d at %s on %s" got e
          (String.concat "," (List.map string_of_int (Array.to_list v)))
          c.label)
    (param_samples c.np);
  true

(* ---------- convex hull properties ---------- *)

(* bounded random polytope: both windows on every variable plus cuts *)
let gen_bounded : Poly.t QCheck.Gen.t =
  QCheck.Gen.(
    let* nvar = int_range 1 3 in
    let window i =
      let* lo = int_range (-5) 0 in
      let* hi = int_range 0 5 in
      let lo_c = Array.make nvar 0 and hi_c = Array.make nvar 0 in
      lo_c.(i) <- 1;
      hi_c.(i) <- -1;
      return [ Poly.ge lo_c (-lo); Poly.ge hi_c hi ]
    in
    let gen_cut =
      let* coef = array_size (return nvar) (int_range (-2) 2) in
      let* const = int_range (-4) 6 in
      return (Poly.ge coef const)
    in
    let* windows = flatten_l (List.init nvar window) in
    let* n_cut = int_range 0 2 in
    let* cuts = list_size (return n_cut) gen_cut in
    return (Poly.make nvar (List.concat windows @ cuts)))

let gen_poly_pair =
  QCheck.Gen.(
    let* a = gen_bounded in
    (* second polytope in the same dimension *)
    let rec same_dim () =
      let* b = gen_bounded in
      if Poly.nvar b = Poly.nvar a then return (a, b) else same_dim ()
    in
    same_dim ())

let arb_poly_pair =
  QCheck.make
    ~print:(fun (a, b) -> Format.asprintf "A=%a@ B=%a" Poly.pp a Poly.pp b)
    gen_poly_pair

let hull_props =
  [
    QCheck.Test.make ~name:"convex_hull contains both generators" ~count:150
      arb_poly_pair
      (fun (a, b) ->
        let h = Poly.convex_hull a b in
        let sub p =
          Poly.fold_points p ~init:true ~f:(fun ok pt ->
              ok && Poly.mem h pt)
        in
        sub a && sub b);
    QCheck.Test.make ~name:"convex_hull idempotent (hull h h == h)" ~count:100
      arb_poly_pair
      (fun (a, b) ->
        let h = Poly.convex_hull a b in
        let h2 = Poly.convex_hull h h in
        Poly.count_points_naive h = Poly.count_points_naive h2
        && Poly.fold_points h ~init:true ~f:(fun ok pt -> ok && Poly.mem h2 pt)
        && Poly.fold_points h2 ~init:true ~f:(fun ok pt -> ok && Poly.mem h pt));
    QCheck.Test.make ~name:"convex_hull output is redundancy-free" ~count:100
      arb_poly_pair
      (fun (a, b) ->
        let h = Poly.convex_hull a b in
        List.length (Poly.constraints (Poly.remove_redundant h))
        = List.length (Poly.constraints h));
  ]

let qcheck_param =
  [
    QCheck.Test.make
      ~name:"chamber counts == exact scan (200 random parametric domains)"
      ~count:200 arb_pcase check_pcase;
  ]
  @ hull_props

(* ---------- symbolic cache tier ---------- *)

let tetra_b () =
  parse1
    "[n] -> { [i,j,k] : 0 <= i < n and 0 <= j < n - i and 0 <= k < n - i - \
     j }"

let fresh_cache_dir () = Filename.temp_dir "polyufc_symcache_test" ""

let symbolic_entries cache =
  match
    List.assoc_opt Engine.Rcache.kind_symbolic
      (Engine.Rcache.stats_by_kind cache)
  with
  | Some (s : Engine.Rcache.stats) -> s.Engine.Rcache.entries
  | None -> 0

let test_symbolic_cache_roundtrip () =
  let dir = fresh_cache_dir () in
  let cache = Engine.Rcache.create ~dir () in
  let ctx = Engine.Ctx.create ~cache () in
  let b = tetra_b () in
  Telemetry.reset ();
  Telemetry.enable ();
  Fun.protect ~finally:(fun () ->
      Telemetry.disable ();
      Telemetry.reset ())
  @@ fun () ->
  Chamber.clear_memo ();
  let ch =
    match Count.card_param ~ctx b with
    | Some ch -> ch
    | None -> Alcotest.fail "tetra should decompose"
  in
  Alcotest.(check int) "one symbolic/v1 entry stored" 1 (symbolic_entries cache);
  (* drop the in-process memo: the next decompose must come back from
     the persistent tier, counted as a chamber cache hit *)
  Chamber.clear_memo ();
  let hits0 = Telemetry.counter_value "presburger.chamber_cache_hits" in
  let ch' =
    match Count.card_param ~ctx b with
    | Some ch' -> ch'
    | None -> Alcotest.fail "cached tetra should decompose"
  in
  let hits1 = Telemetry.counter_value "presburger.chamber_cache_hits" in
  Alcotest.(check bool) "cache reload ticks chamber_cache_hits" true
    (hits1 > hits0);
  List.iter
    (fun n ->
      Alcotest.(check int)
        (Printf.sprintf "reloaded decomposition agrees at n=%d" n)
        (Chamber.eval ch [| n |])
        (Chamber.eval ch' [| n |]))
    [ 0; 1; 5; 17; 40 ]

let test_symbolic_cache_never_degraded () =
  let dir = fresh_cache_dir () in
  let cache = Engine.Rcache.create ~dir () in
  let budget = Engine.Budget.create ~fuel:1 ~degrade:Engine.Budget.Interp () in
  let ctx = Engine.Ctx.create ~cache ~budget () in
  let b = tetra_b () in
  Chamber.clear_memo ();
  (match Count.card_param ~ctx b with
  | exception Engine.Budget.Exhausted _ -> ()
  | Some _ -> Alcotest.fail "1 fuel unit cannot build a decomposition"
  | None -> Alcotest.fail "exhaustion must raise, not decline");
  Alcotest.(check int) "nothing stored after exhaustion" 0
    (symbolic_entries cache);
  (* and the memo was not poisoned: a generous retry builds fresh *)
  Telemetry.reset ();
  Telemetry.enable ();
  Fun.protect ~finally:(fun () ->
      Telemetry.disable ();
      Telemetry.reset ())
  @@ fun () ->
  let built0 = Telemetry.counter_value "presburger.chambers_built" in
  (match Count.card_param b with
  | Some _ -> ()
  | None -> Alcotest.fail "ungoverned retry should decompose");
  let built1 = Telemetry.counter_value "presburger.chambers_built" in
  Alcotest.(check bool) "retry built chambers fresh" true (built1 > built0)

let test_chamber_counters () =
  Chamber.clear_memo ();
  let b = parse1 "[n] -> { [i,j] : 0 <= i < n and 0 <= j <= i }" in
  Telemetry.reset ();
  Telemetry.enable ();
  Fun.protect ~finally:(fun () ->
      Telemetry.disable ();
      Telemetry.reset ())
  @@ fun () ->
  let built0 = Telemetry.counter_value "presburger.chambers_built" in
  let evals0 = Telemetry.counter_value "presburger.qpoly_evals" in
  let hits0 = Telemetry.counter_value "presburger.chamber_cache_hits" in
  let n17 = Count.card_at b [| 17 |] in
  Alcotest.(check int) "triangle count at 17" (17 * 18 / 2) n17;
  let built1 = Telemetry.counter_value "presburger.chambers_built" in
  Alcotest.(check bool) "chambers_built ticked" true (built1 > built0);
  ignore (Count.card_at b [| 23 |]);
  let evals1 = Telemetry.counter_value "presburger.qpoly_evals" in
  let hits1 = Telemetry.counter_value "presburger.chamber_cache_hits" in
  Alcotest.(check bool) "qpoly_evals ticked" true (evals1 > evals0);
  Alcotest.(check bool) "second query was a memo hit" true (hits1 > hits0)

let tests =
  [
    Alcotest.test_case "pool parity (80 random + chunked scan)" `Slow test_pool_parity;
    Alcotest.test_case "div and modular cases match naive" `Quick test_div_cases;
    Alcotest.test_case "union counting matches dedup enumeration" `Quick
      test_pset_union_counts;
    Alcotest.test_case "N^3 box scans <= N^2 points" `Quick test_box_points_scanned;
    Alcotest.test_case "triangle inner dimension collapses" `Quick
      test_triangle_collapses;
    Alcotest.test_case "remove_redundant drops and merges" `Quick
      test_remove_redundant_drops;
    Alcotest.test_case "bset count memo hits" `Quick test_count_memo;
    Alcotest.test_case "Q.to_int_exn / neg / abs overflow" `Quick
      test_q_to_int_exn_message;
    Alcotest.test_case "Count.eval overflow detection" `Quick
      test_count_eval_overflow;
    Alcotest.test_case "symbolic cache tier round-trips chambers" `Quick
      test_symbolic_cache_roundtrip;
    Alcotest.test_case "degraded decompositions are never cached" `Quick
      test_symbolic_cache_never_degraded;
    Alcotest.test_case "chamber telemetry counters tick" `Quick
      test_chamber_counters;
  ]
  @ List.map
      (QCheck_alcotest.to_alcotest ~verbose:false)
      (qcheck_diff @ qcheck_param)
