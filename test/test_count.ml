(* Differential tests for the closed-form counting engine: every count the
   fast path produces must be bit-identical to the naive enumeration —
   including [Unbounded] behavior and under a worker pool — on random
   polytopes mixing equalities, inequalities, empty systems, open sides,
   and modular/div constraints. *)

open Presburger
module Ints = Linalg.Ints
module Q = Linalg.Q

let parse1 = Syntax.bset_of_string
let parse = Syntax.pset_of_string

(* ---------- random polytope generator ---------- *)

type case = { poly : Poly.t; n_scan : int; label : string }

let gen_case : case QCheck.Gen.t =
  QCheck.Gen.(
    let* nvar = int_range 1 4 in
    let* n_cstr = int_range 0 5 in
    let gen_cstr =
      let* coef = array_size (return nvar) (int_range (-3) 3) in
      let* const = int_range (-9) 9 in
      let* is_eq = frequency [ (4, return false); (1, return true) ] in
      return (if is_eq then Poly.eq coef const else Poly.ge coef const)
    in
    let* random = list_size (return n_cstr) gen_cstr in
    (* window each variable so scans stay finite, occasionally leaving one
       side open to exercise Unbounded parity *)
    let gen_window i =
      let* mode = frequency [ (12, return `Both); (1, return `Lo); (1, return `Hi) ] in
      let* lo = int_range (-6) 0 in
      let* hi = int_range 0 6 in
      let lo_c =
        let coef = Array.make nvar 0 in
        coef.(i) <- 1;
        Poly.ge coef (-lo)
      in
      let hi_c =
        let coef = Array.make nvar 0 in
        coef.(i) <- -1;
        Poly.ge coef hi
      in
      return (match mode with `Both -> [ lo_c; hi_c ] | `Lo -> [ lo_c ] | `Hi -> [ hi_c ])
    in
    let* windows = flatten_l (List.init nvar gen_window) in
    let* scan_all = frequency [ (2, return true); (1, return false) ] in
    let n_scan = if scan_all then nvar else nvar - 1 in
    let poly = Poly.make nvar (List.concat windows @ random) in
    return { poly; n_scan; label = "" })

let arb_case =
  QCheck.make
    ~print:(fun c ->
      Format.asprintf "n_scan=%d %a" c.n_scan Poly.pp c.poly)
    gen_case

type outcome = Count of int | Unbounded_scan

let outcome f =
  match f () with n -> Count n | exception Poly.Unbounded -> Unbounded_scan

let pp_outcome = function
  | Count n -> Printf.sprintf "Count %d" n
  | Unbounded_scan -> "Unbounded"

let check_case ?pool c =
  let naive = outcome (fun () -> Poly.count_points_naive ~n_scan:c.n_scan c.poly) in
  let fast = outcome (fun () -> Poly.count_points ?pool ~n_scan:c.n_scan c.poly) in
  if naive <> fast then
    QCheck.Test.fail_reportf "fast %s <> naive %s on %s" (pp_outcome fast)
      (pp_outcome naive)
      (Format.asprintf "n_scan=%d %a" c.n_scan Poly.pp c.poly);
  true

let qcheck_diff =
  [
    QCheck.Test.make ~name:"count_points == naive fold count (300 random polytopes)"
      ~count:300 arb_case (fun c -> check_case c);
    QCheck.Test.make ~name:"remove_redundant preserves the integer set" ~count:150
      arb_case
      (fun c ->
        let r = Poly.remove_redundant c.poly in
        let o = outcome (fun () -> Poly.count_points_naive ~n_scan:c.n_scan c.poly) in
        let o' = outcome (fun () -> Poly.count_points_naive ~n_scan:c.n_scan r) in
        o = o');
  ]

(* pool parity gets its own sequential loop so one pool serves all cases *)
let test_pool_parity () =
  Engine.Pool.with_pool ~jobs:3 (fun pool ->
      let rand = Random.State.make [| 0xC0FFEE |] in
      let cases = QCheck.Gen.generate ~n:80 ~rand gen_case in
      List.iter (fun c -> ignore (check_case ~pool c)) cases;
      (* a scan big enough to actually chunk across workers: a triangular
         domain (collapses at level 1, iterates level 0) *)
      let tri = parse1 "{ [i, j] : 0 <= i < 200 and 0 <= j <= i }" in
      Bset.clear_count_memo ();
      Alcotest.(check int) "triangle 200 via pool" (200 * 201 / 2)
        (Bset.cardinality ~pool tri))

(* ---------- modular / div and union cases through the syntax layer ---------- *)

let bset_naive_count b = Bset.fold_points b ~init:0 ~f:(fun n _ -> n + 1)

let test_div_cases () =
  let cases =
    [
      "{ [i] : 0 <= i < 30 and i mod 2 = 0 }";
      "{ [i] : 0 <= i < 30 and i mod 7 = 3 }";
      "{ [i, j] : 0 <= i < 12 and 0 <= j < 12 and (i + j) mod 2 = 0 }";
      "{ [i, j] : 0 <= i < 12 and 0 <= j <= i and (2*i + j) mod 3 = 1 }";
      "{ [i] : 0 <= i < 40 and floor(i / 4) = 3 }";
      "{ [i, j] : 0 <= i < 9 and floor(i / 3) <= j and j < 5 }";
      "{ [i] : 0 <= i < 10 and i != 4 }";
      "{ [i] : i = 5 }";
      "{ [i] : 0 <= i and i < 0 }";
    ]
  in
  List.iter
    (fun s ->
      let p = parse s in
      List.iter
        (fun b ->
          Bset.clear_count_memo ();
          Alcotest.(check int) ("diff " ^ s) (bset_naive_count b) (Bset.cardinality b))
        (Pset.disjuncts p))
    cases

let test_pset_union_counts () =
  (* the disjointified union path must agree with dedup enumeration *)
  let pset_naive_count p = Pset.fold_points p ~init:0 ~f:(fun n _ -> n + 1) in
  let cases =
    [
      "{ [i] : 0 <= i < 6 ; [i] : 4 <= i < 8 }";
      "{ [i, j] : 0 <= i < 5 and 0 <= j < 5 ; [i, j] : 3 <= i < 9 and 2 <= j < 4 }";
      "{ [i] : (0 <= i < 3) or (10 <= i < 13) }";
      "{ [i] : 0 <= i < 10 and i != 4 }";
      "{ [i, j] : 0 <= i < 4 and 0 <= j < 4 ; [i, j] : 0 <= i < 4 and 0 <= j < 4 }";
    ]
  in
  List.iter
    (fun s ->
      let p = parse s in
      Alcotest.(check int) ("union " ^ s) (pset_naive_count p) (Pset.cardinality p))
    cases;
  (* random overlapping box pairs *)
  let rand = Random.State.make [| 0xBEEF |] in
  for _ = 1 to 40 do
    let r lo hi = lo + Random.State.int rand (hi - lo + 1) in
    let box () =
      let a = r (-6) 4 in
      let b = r a 6 in
      let c = r (-6) 4 in
      let d = r c 6 in
      Printf.sprintf "[i, j] : %d <= i <= %d and %d <= j <= %d" a b c d
    in
    let s = Printf.sprintf "{ %s ; %s ; %s }" (box ()) (box ()) (box ()) in
    let p = parse s in
    Alcotest.(check int) ("union " ^ s) (pset_naive_count p) (Pset.cardinality p)
  done

(* ---------- acceptance: the box scan is no longer O(N^3) ---------- *)

let test_box_points_scanned () =
  let n = 20 in
  let b =
    parse1
      (Printf.sprintf "{ [i, j, k] : 0 <= i < %d and 0 <= j < %d and 0 <= k < %d }" n n n)
  in
  Bset.clear_count_memo ();
  Telemetry.reset ();
  Telemetry.enable ();
  let scanned0 = Telemetry.counter_value "presburger.points_scanned" in
  let card = Bset.cardinality b in
  let scanned = Telemetry.counter_value "presburger.points_scanned" - scanned0 in
  let slices = Telemetry.counter_value "presburger.slices_closed_form" in
  Telemetry.disable ();
  Telemetry.reset ();
  Alcotest.(check int) "card N^3" (n * n * n) card;
  if scanned > n * n then
    Alcotest.failf "box N=%d scanned %d points, want <= N^2 = %d" n scanned (n * n);
  Alcotest.(check bool) "closed-form slices used" true (slices > 0)

let test_triangle_collapses () =
  (* the innermost dimension of a triangular nest must not be enumerated *)
  let n = 50 in
  let b = parse1 (Printf.sprintf "{ [i, j] : 0 <= i < %d and 0 <= j <= i }" n) in
  Bset.clear_count_memo ();
  Telemetry.reset ();
  Telemetry.enable ();
  let card = Bset.cardinality b in
  let scanned = Telemetry.counter_value "presburger.points_scanned" in
  Telemetry.disable ();
  Telemetry.reset ();
  Alcotest.(check int) "card n(n+1)/2" (n * (n + 1) / 2) card;
  if scanned > n then
    Alcotest.failf "triangle N=%d scanned %d points, want <= N" n scanned

(* ---------- constraint minimization ---------- *)

let test_remove_redundant_drops () =
  (* i <= 100 is implied by i <= 19 *)
  let p =
    Poly.make 1
      [ Poly.ge [| 1 |] 0; Poly.ge [| -1 |] 19; Poly.ge [| -1 |] 100 ]
  in
  let r = Poly.remove_redundant p in
  Alcotest.(check int) "constraint dropped" 2 (List.length (Poly.constraints r));
  Alcotest.(check int) "same count" 20 (Poly.count_points_naive r);
  (* opposite parallel pair collapses to an equality *)
  let pinned = Poly.make 1 [ Poly.ge [| 1 |] (-7); Poly.ge [| -1 |] 7 ] in
  let r = Poly.remove_redundant pinned in
  (match Poly.constraints r with
  | [ c ] -> Alcotest.(check bool) "merged to equality" true c.Poly.eq
  | cs -> Alcotest.failf "expected 1 merged constraint, got %d" (List.length cs));
  Alcotest.(check int) "pinned count" 1 (Poly.count_points_naive r)

(* ---------- count memo ---------- *)

let test_count_memo () =
  let b = parse1 "{ [i, j] : 0 <= i < 7 and 0 <= j < 11 }" in
  Bset.clear_count_memo ();
  Telemetry.reset ();
  Telemetry.enable ();
  let a = Bset.cardinality b in
  let hits0 = Telemetry.counter_value "presburger.count_memo_hits" in
  let b' = Bset.cardinality b in
  let hits1 = Telemetry.counter_value "presburger.count_memo_hits" in
  Telemetry.disable ();
  Telemetry.reset ();
  Alcotest.(check int) "same count" a b';
  Alcotest.(check int) "77" 77 a;
  Alcotest.(check int) "second count was a memo hit" (hits0 + 1) hits1

(* ---------- overflow detection (satellite) ---------- *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_q_to_int_exn_message () =
  (match Q.to_int_exn (Q.make 7 2) with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument m ->
    Alcotest.(check bool) ("message names the value: " ^ m) true (contains m "7/2"));
  (* min_int negation must not wrap silently *)
  (match Q.neg (Q.of_int min_int) with
  | _ -> Alcotest.fail "expected Overflow"
  | exception Ints.Overflow -> ());
  match Q.abs (Q.of_int min_int) with
  | _ -> Alcotest.fail "expected Overflow"
  | exception Ints.Overflow -> ()

let test_count_eval_overflow () =
  (* fit n^3 exactly, then evaluate far outside the int range *)
  match Count.interpolate ~count:(fun n -> n * n * n) () with
  | None -> Alcotest.fail "cubic fit failed"
  | Some qp ->
    Alcotest.(check int) "sane eval" 1_000_000 (Count.eval qp 100);
    (match Count.eval qp 3_000_000 with
    | v -> Alcotest.failf "expected overflow, got %d" v
    | exception Count.Overflow m ->
      Alcotest.(check bool)
        ("overflow message carries n: " ^ m)
        true
        (contains m "n=3000000"))

let tests =
  [
    Alcotest.test_case "pool parity (80 random + chunked scan)" `Slow test_pool_parity;
    Alcotest.test_case "div and modular cases match naive" `Quick test_div_cases;
    Alcotest.test_case "union counting matches dedup enumeration" `Quick
      test_pset_union_counts;
    Alcotest.test_case "N^3 box scans <= N^2 points" `Quick test_box_points_scanned;
    Alcotest.test_case "triangle inner dimension collapses" `Quick
      test_triangle_collapses;
    Alcotest.test_case "remove_redundant drops and merges" `Quick
      test_remove_redundant_drops;
    Alcotest.test_case "bset count memo hits" `Quick test_count_memo;
    Alcotest.test_case "Q.to_int_exn / neg / abs overflow" `Quick
      test_q_to_int_exn_message;
    Alcotest.test_case "Count.eval overflow detection" `Quick
      test_count_eval_overflow;
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~verbose:false) qcheck_diff
