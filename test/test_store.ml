(* Tests for the multi-tier result store: sharded layout + flat-layout
   migration, the in-memory LRU tier, the read-only upstream tier with
   promotion, the append-only index (load, corruption, rebuild), the
   size-bounded LRU garbage collector and its crash-consistency under
   FAULTSIM kill points, the bounded quarantine, and the per-directory
   counter sidecars. *)

module R = Engine.Rcache
module FS = Engine.Faultsim
module J = Telemetry.Json

let fresh_dir () = Filename.temp_dir "polyufc_store_test" ""

let plan_of_string s =
  match FS.parse_plan s with
  | Ok p -> p
  | Error msg -> Alcotest.failf "bad fault plan in test: %s" msg

(* payload of a tunable size so byte watermarks are easy to hit *)
let payload i = J.Obj [ ("i", J.Int i); ("pad", J.Str (String.make 64 'p')) ]

let populate ?kind c n =
  List.init n (fun i ->
      let k = R.key [ ("entry", string_of_int i) ] in
      R.store ?kind c k (payload i);
      (k, payload i))

(* ---------- sharded layout + migration ---------- *)

let test_sharded_layout () =
  FS.suspended @@ fun () ->
  let c = R.create ~dir:(fresh_dir ()) () in
  let k = R.key [ ("t", "shard") ] in
  R.store c k (J.Int 1);
  let path = R.entry_path c k in
  Alcotest.(check bool) "entry at the sharded path" true (Sys.file_exists path);
  Alcotest.(check string) "shard dir is the first two hex chars"
    (String.sub k 0 2)
    (Filename.basename (Filename.dirname path))

let test_flat_migration () =
  FS.suspended @@ fun () ->
  (* build a flat-layout store by hand: what PR <= 9 left on disk *)
  let dir = fresh_dir () in
  let entries =
    List.init 5 (fun i ->
        let k = R.key [ ("flat", string_of_int i) ] in
        let payload = payload i in
        let doc =
          J.Obj
            [
              ("schema", J.Int R.schema_version);
              ( "checksum",
                J.Str (Digest.to_hex (Digest.string (J.to_string payload))) );
              ("payload", payload);
            ]
        in
        let oc = open_out_bin (Filename.concat dir (k ^ ".json")) in
        output_string oc (J.to_string doc);
        close_out oc;
        (k, J.to_string doc))
  in
  let c = R.create ~dir () in
  Alcotest.(check int) "all flat entries migrated" 5 (R.migrate c);
  List.iter
    (fun (k, original) ->
      Alcotest.(check bool) "flat path gone" false
        (Sys.file_exists (Filename.concat dir (k ^ ".json")));
      let ic = open_in_bin (R.entry_path c k) in
      let text = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Alcotest.(check string) "migrated file byte-identical" original text;
      Alcotest.(check bool) "served after migration" true (R.find c k <> None))
    entries;
  Alcotest.(check int) "stats see every migrated entry" 5 (R.stats c).R.entries;
  (* a second open of the same dir has nothing left to migrate *)
  Alcotest.(check int) "migration is idempotent" 0
    (R.migrate (R.create ~dir ()))

(* ---------- memory tier ---------- *)

let test_mem_tier_lru () =
  FS.suspended @@ fun () ->
  let c = R.create ~dir:(fresh_dir ()) ~mem_entries:3 ~mem_bytes:max_int () in
  let stored = populate c 5 in
  (* capacity 3: only the 3 most recently stored survive in memory *)
  let m = R.mem_stats c in
  Alcotest.(check int) "mem tier holds at most 3" 3 m.R.entries;
  (* hits are served even for evicted keys (from disk), and every hit
     matches what was stored *)
  List.iter
    (fun (k, p) ->
      match R.find c k with
      | Some got ->
        Alcotest.(check string) "hit matches" (J.to_string p) (J.to_string got)
      | None -> Alcotest.fail "stored entry lost")
    stored

let test_mem_tier_serves_without_disk () =
  FS.suspended @@ fun () ->
  let dir = fresh_dir () in
  let c = R.create ~dir () in
  let k = R.key [ ("t", "memonly") ] in
  R.store c k (J.Int 9);
  (* wipe the disk behind the store's back: the mem tier still serves *)
  Sys.remove (R.entry_path c k);
  Alcotest.(check bool) "mem tier serves after disk loss" true
    (R.find c k = Some (J.Int 9))

(* ---------- upstream tier ---------- *)

let test_upstream_promotion () =
  FS.suspended @@ fun () ->
  let updir = fresh_dir () in
  let up = R.create ~dir:updir () in
  let k = R.key [ ("t", "upstream") ] in
  R.store up k (J.Int 42);
  let upstream_file = R.entry_path up k in
  let read_bytes path =
    let ic = open_in_bin path in
    let t = really_input_string ic (in_channel_length ic) in
    close_in ic;
    t
  in
  let upstream_bytes = read_bytes upstream_file in
  let local = R.create ~dir:(fresh_dir ()) ~upstream:updir () in
  let before = R.counts_for local in
  Alcotest.(check bool) "upstream hit served" true
    (R.find local k = Some (J.Int 42));
  let after = R.counts_for local in
  Alcotest.(check int) "upstream hit counted" (before.R.upstream_hits + 1)
    after.R.upstream_hits;
  Alcotest.(check int) "promotion counted" (before.R.promotions + 1)
    after.R.promotions;
  (* promoted into the local disk tier, byte-identical to the original *)
  Alcotest.(check bool) "promoted locally" true
    (Sys.file_exists (R.entry_path local k));
  Alcotest.(check string) "promoted file byte-identical" upstream_bytes
    (read_bytes (R.entry_path local k));
  (* nothing was written upstream *)
  Alcotest.(check int) "upstream untouched" 1 (R.stats up).R.entries;
  Alcotest.(check string) "upstream file unchanged" upstream_bytes
    (read_bytes upstream_file)

let test_upstream_corruption_is_a_miss () =
  FS.suspended @@ fun () ->
  let updir = fresh_dir () in
  let up = R.create ~dir:updir () in
  let k = R.key [ ("t", "upcorrupt") ] in
  R.store up k (J.Int 1);
  let oc = open_out_bin (R.entry_path up k) in
  output_string oc "{ not json";
  close_out oc;
  let local = R.create ~dir:(fresh_dir ()) ~upstream:updir () in
  Alcotest.(check bool) "corrupt upstream entry = miss" true
    (R.find local k = None);
  (* never quarantined into (or out of) someone else's store *)
  Alcotest.(check bool) "no quarantine dir upstream" false
    (Sys.file_exists (R.quarantine_dir up));
  Alcotest.(check bool) "corrupt upstream file left in place" true
    (Sys.file_exists (R.entry_path up k))

(* ---------- index ---------- *)

let test_stats_survive_reopen () =
  FS.suspended @@ fun () ->
  let dir = fresh_dir () in
  let c = R.create ~dir () in
  ignore (populate c 4);
  ignore (populate ~kind:R.kind_symbolic c 2);
  let s = R.stats c in
  (* a fresh handle loads the index and sees the same census *)
  let c2 = R.create ~dir () in
  let s2 = R.stats c2 in
  Alcotest.(check int) "entries survive reopen" s.R.entries s2.R.entries;
  Alcotest.(check int) "bytes survive reopen" s.R.bytes s2.R.bytes;
  let kinds = R.stats_by_kind c2 in
  Alcotest.(check int) "numeric census"
    (* populate 4 then 2 reuse keys 0..: the symbolic stores overwrite
       entries 0 and 1, retagging them *)
    2
    (match List.assoc_opt R.kind_numeric kinds with
    | Some ks -> ks.R.entries
    | None -> 0);
  Alcotest.(check int) "symbolic census" 2
    (match List.assoc_opt R.kind_symbolic kinds with
    | Some ks -> ks.R.entries
    | None -> 0)

let test_index_corruption_rebuilds () =
  FS.suspended @@ fun () ->
  let dir = fresh_dir () in
  let c = R.create ~dir () in
  let stored = populate c 6 in
  (* scribble over the index *)
  let index = Filename.concat (Filename.concat dir "meta") "index" in
  Alcotest.(check bool) "index exists" true (Sys.file_exists index);
  let oc = open_out_bin index in
  output_string oc "polyufc-index/v1\ngarbage line\n+ zz nope\n";
  close_out oc;
  let before = (R.counts ()).R.index_rebuilds in
  let c2 = R.create ~dir () in
  Alcotest.(check int) "census recovered by rebuild" 6 (R.stats c2).R.entries;
  Alcotest.(check bool) "rebuild counted" true
    ((R.counts ()).R.index_rebuilds > before);
  List.iter
    (fun (k, p) ->
      Alcotest.(check bool) "hits identical after rebuild" true
        (match R.find c2 k with
        | Some got -> J.to_string got = J.to_string p
        | None -> false))
    stored

let test_index_append_fault_is_survived () =
  (* every index append torn mid-line: the store must keep serving, and
     a reopen must rebuild to the true census *)
  let dir = fresh_dir () in
  let stored =
    FS.with_plan (plan_of_string "rcache.index_corrupt:1:11") (fun () ->
        let c = R.create ~dir ~mem_entries:0 () in
        let stored = populate c 5 in
        List.iter
          (fun (k, p) ->
            Alcotest.(check bool) "serves under index chaos" true
              (match R.find c k with
              | Some got -> J.to_string got = J.to_string p
              | None -> false))
          stored;
        stored)
  in
  FS.suspended @@ fun () ->
  let c2 = R.create ~dir () in
  Alcotest.(check int) "reopen rebuilds the full census" 5
    (R.stats c2).R.entries;
  List.iter
    (fun (k, p) ->
      Alcotest.(check bool) "identical hits after rebuild" true
        (match R.find c2 k with
        | Some got -> J.to_string got = J.to_string p
        | None -> false))
    stored

(* ---------- GC ---------- *)

let test_gc_to_entry_watermark () =
  FS.suspended @@ fun () ->
  let c = R.create ~dir:(fresh_dir ()) ~mem_entries:0 () in
  let stored = populate c 10 in
  (* touch entries 0..4 so 5..9 are the LRU half *)
  List.iteri (fun i (k, _) -> if i < 5 then ignore (R.find c k)) stored;
  let r = R.gc ~max_entries:5 c in
  Alcotest.(check int) "evicted down to the watermark" 5 r.R.evicted;
  Alcotest.(check int) "live entries at the watermark" 5 r.R.live_entries;
  Alcotest.(check bool) "not interrupted" false r.R.interrupted;
  (* exactly the recently-touched half survived *)
  List.iteri
    (fun i (k, _) ->
      Alcotest.(check bool)
        (Printf.sprintf "entry %d %s" i (if i < 5 then "survives" else "evicted"))
        (i < 5)
        (R.find c k <> None))
    stored

let test_gc_to_byte_watermark () =
  FS.suspended @@ fun () ->
  let dir = fresh_dir () in
  let c = R.create ~dir ~mem_entries:0 () in
  ignore (populate c 12);
  let total = (R.stats c).R.bytes in
  let watermark = total / 3 in
  let r = R.gc ~max_bytes:watermark c in
  Alcotest.(check bool) "under the byte watermark" true
    (r.R.live_bytes <= watermark);
  Alcotest.(check bool) "evicted something" true (r.R.evicted > 0);
  (* the index census agrees with the disk after the sweep *)
  let on_disk = ref 0 in
  Array.iter
    (fun d ->
      let p = Filename.concat dir d in
      if Sys.is_directory p && d <> "meta" && d <> "quarantine" then
        on_disk := !on_disk + Array.length (Sys.readdir p))
    (Sys.readdir dir);
  Alcotest.(check int) "index = disk" !on_disk (R.stats c).R.entries

let test_gc_crash_is_recoverable () =
  (* a sweep killed after each file removal (before its index record):
     reopening must rebuild and serve exactly the survivors *)
  let dir = fresh_dir () in
  FS.suspended (fun () ->
      ignore (populate (R.create ~dir ~mem_entries:0 ()) 8));
  let stored_keys = List.init 8 (fun i -> R.key [ ("entry", string_of_int i) ]) in
  FS.with_plan (plan_of_string "rcache.gc_crash:1:13") (fun () ->
      let c = R.create ~dir ~mem_entries:0 () in
      let r = R.gc ~max_entries:2 c in
      Alcotest.(check bool) "sweep reports the interruption" true
        r.R.interrupted);
  FS.suspended @@ fun () ->
  let c2 = R.create ~dir ~mem_entries:0 () in
  (* exactly one file was removed before the kill point fired *)
  Alcotest.(check int) "one victim removed before the crash" 7
    (R.stats c2).R.entries;
  let served =
    List.filter (fun k -> R.find c2 k <> None) stored_keys |> List.length
  in
  Alcotest.(check int) "every survivor still serves" 7 served;
  (* and a clean GC finishes the job *)
  let r = R.gc ~max_entries:2 c2 in
  Alcotest.(check int) "resumed sweep reaches the watermark" 2 r.R.live_entries

let test_opportunistic_gc_on_store () =
  FS.suspended @@ fun () ->
  (* watermark ~3 entries of this payload size: storing 10 must keep the
     store bounded without any explicit gc call *)
  let entry_bytes = 120 in
  let c =
    R.create ~dir:(fresh_dir ()) ~mem_entries:0
      ~max_bytes:(3 * entry_bytes) ()
  in
  ignore (populate c 10);
  let s = R.stats c in
  Alcotest.(check bool)
    (Printf.sprintf "store stays bounded (%d bytes)" s.R.bytes)
    true
    (s.R.bytes <= 3 * entry_bytes);
  Alcotest.(check bool) "evictions happened" true
    ((R.counts ()).R.evictions > 0)

(* QCheck: for random stores/touches and a random entry watermark, GC
   keeps exactly a suffix of the LRU order — no entry is evicted while a
   less recently used one survives, and the survivor count matches the
   watermark *)
let qcheck_gc_lru =
  let gen =
    QCheck.Gen.(
      let* n_entries = int_range 1 20 in
      let* touches = list_size (int_range 0 30) (int_range 0 (n_entries - 1)) in
      let* watermark = int_range 1 20 in
      return (n_entries, touches, watermark))
  in
  let arb =
    QCheck.make
      ~print:(fun (n, touches, wm) ->
        Printf.sprintf "entries=%d touches=[%s] watermark=%d" n
          (String.concat ";" (List.map string_of_int touches))
          wm)
      gen
  in
  QCheck.Test.make ~name:"gc evicts exactly an LRU prefix, never above the cut"
    ~count:60 arb
    (fun (n_entries, touches, watermark) ->
      FS.suspended @@ fun () ->
      let c = R.create ~dir:(fresh_dir ()) ~mem_entries:0 () in
      let keys =
        Array.init n_entries (fun i -> R.key [ ("e", string_of_int i) ])
      in
      Array.iteri (fun i k -> R.store c k (payload i)) keys;
      (* last-use order: store order, then the touch tape *)
      let order = ref (List.init n_entries Fun.id) in
      List.iter
        (fun i ->
          ignore (R.find c keys.(i));
          order := List.filter (fun j -> j <> i) !order @ [ i ])
        touches;
      let r = R.gc ~max_entries:watermark c in
      let expected_live = min n_entries watermark in
      if r.R.live_entries <> expected_live then
        QCheck.Test.fail_reportf "live=%d, want %d" r.R.live_entries
          expected_live;
      (* survivors must be exactly the most-recently-used suffix *)
      let expected_evicted = n_entries - expected_live in
      List.iteri
        (fun pos i ->
          let survives = R.find c keys.(i) <> None in
          let should_survive = pos >= expected_evicted in
          if survives <> should_survive then
            QCheck.Test.fail_reportf
              "entry %d at LRU position %d: survives=%b, want %b" i pos
              survives should_survive)
        !order;
      true)

(* ---------- quarantine bound ---------- *)

let test_quarantine_bounded () =
  FS.suspended @@ fun () ->
  let dir = fresh_dir () in
  let c = R.create ~dir ~mem_entries:0 ~quarantine_keep:3 () in
  let before = (R.counts ()).R.quarantine_dropped in
  (* corrupt 6 entries one by one; each find quarantines one file *)
  List.iter
    (fun i ->
      let k = R.key [ ("q", string_of_int i) ] in
      R.store c k (payload i);
      let oc = open_out_bin (R.entry_path c k) in
      output_string oc "{ not json";
      close_out oc;
      Alcotest.(check bool) "corrupt = miss" true (R.find c k = None))
    [ 0; 1; 2; 3; 4; 5 ];
  let q = Sys.readdir (R.quarantine_dir c) in
  Alcotest.(check bool)
    (Printf.sprintf "quarantine bounded (%d files)" (Array.length q))
    true
    (Array.length q <= 3);
  Alcotest.(check bool) "drops counted" true
    ((R.counts ()).R.quarantine_dropped >= before + 3)

(* ---------- per-directory counters ---------- *)

let test_flush_counters_per_dir () =
  FS.suspended @@ fun () ->
  (* two stores in one process: each directory's sidecar must get its
     own events, not the union attributed to the last-used one *)
  let dir_a = fresh_dir () and dir_b = fresh_dir () in
  let a = R.create ~dir:dir_a ~mem_entries:0 () in
  let b = R.create ~dir:dir_b ~mem_entries:0 () in
  let ka = R.key [ ("t", "a") ] in
  let kb = R.key [ ("t", "b") ] in
  R.store a ka (J.Int 1);
  ignore (R.find a ka);
  (* dir_a: 1 store, 1 hit *)
  R.store b kb (J.Int 2);
  ignore (R.find b kb);
  ignore (R.find b (R.key [ ("t", "missing") ]));
  (* dir_b: 1 store, 1 hit, 1 miss *)
  R.flush_counters ();
  (* fresh handles read only the sidecars (process counters were zeroed
     by the flush) *)
  let ca = R.cumulative (R.create ~dir:dir_a ()) in
  let cb = R.cumulative (R.create ~dir:dir_b ()) in
  Alcotest.(check int) "dir A stores" 1 ca.R.stores;
  Alcotest.(check int) "dir A hits" 1 ca.R.hits;
  Alcotest.(check int) "dir A misses" 0 ca.R.misses;
  Alcotest.(check int) "dir B stores" 1 cb.R.stores;
  Alcotest.(check int) "dir B hits" 1 cb.R.hits;
  Alcotest.(check int) "dir B misses" 1 cb.R.misses;
  (* double flush must not double count *)
  R.flush_counters ();
  let ca2 = R.cumulative (R.create ~dir:dir_a ()) in
  Alcotest.(check int) "flush is idempotent" ca.R.hits ca2.R.hits

let tests =
  [
    Alcotest.test_case "sharded entry layout" `Quick test_sharded_layout;
    Alcotest.test_case "flat layout migrated transparently" `Quick
      test_flat_migration;
    Alcotest.test_case "memory tier is a bounded LRU" `Quick test_mem_tier_lru;
    Alcotest.test_case "memory tier serves after disk loss" `Quick
      test_mem_tier_serves_without_disk;
    Alcotest.test_case "upstream hit is promoted, never written back" `Quick
      test_upstream_promotion;
    Alcotest.test_case "corrupt upstream entry is only a miss" `Quick
      test_upstream_corruption_is_a_miss;
    Alcotest.test_case "index: stats survive reopen without a scan" `Quick
      test_stats_survive_reopen;
    Alcotest.test_case "index: corruption rebuilds from the shard tree" `Quick
      test_index_corruption_rebuilds;
    Alcotest.test_case "index: torn appends survived, reopen rebuilds" `Quick
      test_index_append_fault_is_survived;
    Alcotest.test_case "gc: LRU eviction to an entry watermark" `Quick
      test_gc_to_entry_watermark;
    Alcotest.test_case "gc: eviction to a byte watermark" `Quick
      test_gc_to_byte_watermark;
    Alcotest.test_case "gc: kill -9 mid-sweep is recoverable" `Quick
      test_gc_crash_is_recoverable;
    Alcotest.test_case "gc: opportunistic trigger on store" `Quick
      test_opportunistic_gc_on_store;
    QCheck_alcotest.to_alcotest qcheck_gc_lru;
    Alcotest.test_case "quarantine keeps only the newest K" `Quick
      test_quarantine_bounded;
    Alcotest.test_case "counters flush to each directory's own sidecar" `Quick
      test_flush_counters_per_dir;
  ]
