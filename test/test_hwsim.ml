(* Tests for the hardware simulator: cache behaviour, timing/power physics,
   the UFS-like governor, and cap semantics. *)

open Hwsim

let tiny_geom =
  (* 2 sets × 2 ways × 64B = 256 B cache *)
  [
    {
      Machine.level_name = "L1";
      size_bytes = 256;
      line_bytes = 64;
      assoc = 2;
      hit_latency_ns = 1.0;
    };
  ]

let two_level_geom =
  [
    { Machine.level_name = "L1"; size_bytes = 256; line_bytes = 64; assoc = 2; hit_latency_ns = 1.0 };
    { Machine.level_name = "L2"; size_bytes = 1024; line_bytes = 64; assoc = 4; hit_latency_ns = 4.0 };
  ]

let test_cache_cold_then_hit () =
  let c = Cache.create tiny_geom in
  let o1 = Cache.access c ~addr:0 ~is_write:false in
  Alcotest.(check int) "cold miss" 1 o1.Cache.hit_level;
  Alcotest.(check bool) "fills from DRAM" true o1.Cache.dram_fill;
  let o2 = Cache.access c ~addr:8 ~is_write:false in
  Alcotest.(check int) "same line hits" 0 o2.Cache.hit_level;
  Alcotest.(check bool) "no fill" false o2.Cache.dram_fill

let test_cache_lru_eviction () =
  let c = Cache.create tiny_geom in
  (* set 0 holds lines 0, 2, 4, ... (2 sets); fill 2 ways then a third *)
  ignore (Cache.access c ~addr:0 ~is_write:false);      (* line 0 -> set 0 *)
  ignore (Cache.access c ~addr:(2 * 64) ~is_write:false); (* line 2 -> set 0 *)
  ignore (Cache.access c ~addr:(4 * 64) ~is_write:false); (* line 4 evicts line 0 *)
  let o = Cache.access c ~addr:0 ~is_write:false in
  Alcotest.(check bool) "line 0 was evicted" true o.Cache.dram_fill;
  (* LRU: after re-accessing 0, line 2 is LRU; touching 2 keeps it *)
  let o2 = Cache.access c ~addr:(4 * 64) ~is_write:false in
  Alcotest.(check int) "line 4 still resident" 0 o2.Cache.hit_level

let test_cache_other_set_isolated () =
  let c = Cache.create tiny_geom in
  ignore (Cache.access c ~addr:0 ~is_write:false);
  ignore (Cache.access c ~addr:(2 * 64) ~is_write:false);
  (* odd lines go to set 1: must not evict set 0 *)
  ignore (Cache.access c ~addr:64 ~is_write:false);
  ignore (Cache.access c ~addr:(3 * 64) ~is_write:false);
  let o = Cache.access c ~addr:0 ~is_write:false in
  Alcotest.(check int) "set 0 untouched" 0 o.Cache.hit_level

let test_cache_writeback () =
  let c = Cache.create tiny_geom in
  ignore (Cache.access c ~addr:0 ~is_write:true);
  Alcotest.(check int) "dirty resident" 1 (Cache.flush_writebacks c);
  (* evict line 0 by filling its set *)
  ignore (Cache.access c ~addr:(2 * 64) ~is_write:false);
  ignore (Cache.access c ~addr:(4 * 64) ~is_write:false);
  Alcotest.(check int) "writeback happened" 1 (Cache.dram_writebacks c);
  Alcotest.(check int) "no dirty left" 0 (Cache.flush_writebacks c)

let test_cache_inclusive_two_level () =
  let c = Cache.create two_level_geom in
  let o1 = Cache.access c ~addr:0 ~is_write:false in
  Alcotest.(check int) "cold -> DRAM" 2 o1.Cache.hit_level;
  (* thrash L1 set 0 with lines 2 and 4; line 0 falls back to L2 *)
  ignore (Cache.access c ~addr:(2 * 64) ~is_write:false);
  ignore (Cache.access c ~addr:(4 * 64) ~is_write:false);
  let o2 = Cache.access c ~addr:0 ~is_write:false in
  Alcotest.(check int) "L2 hit" 1 o2.Cache.hit_level

let test_cache_stats_consistency () =
  let c = Cache.create two_level_geom in
  let n = 100 in
  for i = 0 to n - 1 do
    ignore (Cache.access c ~addr:(i * 64 mod 2048) ~is_write:(i mod 3 = 0))
  done;
  let st = Cache.stats c in
  (* every access either hits L1 or misses it *)
  Alcotest.(check int) "L1 hits+misses = accesses" n
    (st.(0).Cache.hits + st.(0).Cache.misses);
  (* L2 sees exactly the L1 misses *)
  Alcotest.(check int) "L2 sees L1 misses" st.(0).Cache.misses
    (st.(1).Cache.hits + st.(1).Cache.misses);
  Alcotest.(check int) "DRAM reads = L2 misses" st.(1).Cache.misses
    (Cache.dram_reads c)

(* ---------- machine ---------- *)

let test_machine_freqs () =
  let fs = Machine.uncore_freqs Machine.bdw in
  Alcotest.(check int) "BDW 17 steps" 17 (List.length fs);
  Alcotest.(check (float 1e-9)) "first" 1.2 (List.hd fs);
  Alcotest.(check (float 1e-9)) "last" 2.8 (List.nth fs 16);
  let fs_rpl = Machine.uncore_freqs Machine.rpl in
  Alcotest.(check int) "RPL 39 steps" 39 (List.length fs_rpl)

let test_machine_curves () =
  let m = Machine.bdw in
  Alcotest.(check bool) "latency decreases with f_u" true
    (Machine.dram_latency_ns m ~f_u:2.8 < Machine.dram_latency_ns m ~f_u:1.2);
  Alcotest.(check bool) "bw increases with f_u" true
    (Machine.dram_bw_gbps m ~f_u:2.8 > Machine.dram_bw_gbps m ~f_u:1.2);
  Alcotest.(check bool) "bw saturates" true
    (Machine.dram_bw_gbps m ~f_u:100.0 = m.Machine.dram_bw_max_gbps);
  Alcotest.(check bool) "uncore power linear in f_u" true
    (Machine.uncore_power_w m ~f_u:2.0 -. Machine.uncore_power_w m ~f_u:1.0
     -. m.Machine.uncore_w_per_ghz
     |> Float.abs < 1e-9)

(* ---------- sim physics ---------- *)

let gemm =
  Polylang.parse
    {|
program gemm(n) {
  arrays { A[n][n] : f64; B[n][n] : f64; C[n][n] : f64; }
  for (i = 0; i < n; i++) {
    for (j = 0; j < n; j++) {
      C[i][j] = 0.0;
      for (k = 0; k < n; k++) {
        C[i][j] = C[i][j] + A[i][k] * B[k][j];
      }
    }
  }
}
|}

let stream =
  Polylang.parse
    {|
program stream(n) {
  arrays { A[n] : f64; B[n] : f64; }
  for (i = 0; i < n; i++) {
    A[i] = A[i] + 2.0 * B[i];
  }
}
|}

(* the record API; the `Governor tests below keep exercising the thin
   [Sim.run] compat wrapper *)
let run_fixed ?(caps = []) prog n f =
  Sim.run_one
    (Sim.config ~machine:Machine.bdw ~uncore:(`Fixed f)
       [ Sim.tenant ~caps ~param_values:[ ("n", n) ] ~name:"t" prog ])

let test_cb_time_flat () =
  let tiled = Poly_ir.Tiling.tile_program ~tile_size:32 gemm in
  let lo = run_fixed tiled 96 1.2 and hi = run_fixed tiled 96 2.8 in
  (* CB: < 10% time difference across the whole uncore range *)
  Alcotest.(check bool) "time flat" true
    (Float.abs (lo.Sim.time_s -. hi.Sim.time_s) /. hi.Sim.time_s < 0.10);
  Alcotest.(check bool) "energy lower at low f_u" true
    (lo.Sim.energy_j < hi.Sim.energy_j);
  Alcotest.(check bool) "EDP better at low f_u" true (lo.Sim.edp < hi.Sim.edp)

let test_bb_speeds_up () =
  let lo = run_fixed stream 300_000 1.2 and hi = run_fixed stream 300_000 2.8 in
  Alcotest.(check bool) "BB speeds up >= 1.3x" true
    (lo.Sim.time_s /. hi.Sim.time_s > 1.3);
  Alcotest.(check bool) "BB EDP better at high f_u" true (hi.Sim.edp < lo.Sim.edp)

let test_energy_conservation () =
  let o = run_fixed gemm 32 2.0 in
  let z = o.Sim.zones in
  Alcotest.(check (float 1e-9)) "zones sum to total" o.Sim.energy_j
    (z.Sim.core_j +. z.Sim.uncore_j +. z.Sim.dram_j +. z.Sim.static_j);
  Alcotest.(check bool) "positive time" true (o.Sim.time_s > 0.0);
  Alcotest.(check (float 1e-6)) "edp = e*t" (o.Sim.energy_j *. o.Sim.time_s) o.Sim.edp

let test_flop_accounting () =
  let o = run_fixed gemm 16 2.0 in
  Alcotest.(check int) "2n^3 flops" (2 * 16 * 16 * 16) o.Sim.flops

let test_governor_tracks_demand () =
  (* streaming load: governor should run the uncore near max *)
  let o =
    Sim.run ~machine:Machine.bdw ~uncore:`Governor stream
      ~param_values:[ ("n", 300_000) ]
  in
  Alcotest.(check bool) "governor near max on BB" true
    (o.Sim.avg_uncore_ghz > 2.4)

let test_caps_apply () =
  let tiled = Poly_ir.Tiling.tile_program ~tile_size:32 gemm in
  let var =
    match tiled.Poly_ir.Ir.body with
    | Poly_ir.Ir.Loop l :: _ -> l.Poly_ir.Ir.var
    | _ -> Alcotest.fail "expected loop"
  in
  (* size chosen so the run is long enough (≈1 ms) to amortize the 35 µs
     cap-switch latency, as in the paper's benchmarks *)
  let n = 144 in
  let o =
    Sim.run ~machine:Machine.bdw ~uncore:`Governor
      ~caps:[ (var, 1.2) ] tiled ~param_values:[ ("n", n) ]
  in
  Alcotest.(check int) "one cap switch" 1 o.Sim.cap_switches;
  Alcotest.(check bool) "uncore held at cap" true (o.Sim.avg_uncore_ghz < 1.4);
  (* capped CB beats the governor baseline on energy *)
  let base =
    Sim.run ~machine:Machine.bdw ~uncore:`Governor tiled
      ~param_values:[ ("n", n) ]
  in
  Alcotest.(check bool) "capped saves energy" true (o.Sim.energy_j < base.Sim.energy_j)

let test_cap_switch_costs_time () =
  let prog = stream in
  let var =
    match prog.Poly_ir.Ir.body with
    | Poly_ir.Ir.Loop l :: _ -> l.Poly_ir.Ir.var
    | _ -> Alcotest.fail "expected loop"
  in
  let without = run_fixed prog 1_000 2.8 in
  let with_cap = run_fixed ~caps:[ (var, 2.8) ] prog 1_000 2.8 in
  (* short program: the scaled 3.5 µs cap latency must be visible *)
  Alcotest.(check bool) "cap latency added" true
    (with_cap.Sim.time_s -. without.Sim.time_s > 3e-6)

let test_cap_switch_energy_accounting () =
  (* regression for the governor-window bug: after a cap switch the
     governor must restart its accounting window and the switch stall
     must be billed at the pre-switch uncore clock.  The observable
     contract: energy zones still close exactly across the switch, and
     the time-weighted uncore average sits strictly between the cap and
     the pre-switch clock. *)
  let tiled = Poly_ir.Tiling.tile_program ~tile_size:32 gemm in
  let var =
    match tiled.Poly_ir.Ir.body with
    | Poly_ir.Ir.Loop l :: _ -> l.Poly_ir.Ir.var
    | _ -> Alcotest.fail "expected loop"
  in
  let o =
    Sim.run ~machine:Machine.bdw ~uncore:`Governor ~caps:[ (var, 1.2) ] tiled
      ~param_values:[ ("n", 144) ]
  in
  Alcotest.(check int) "one cap switch" 1 o.Sim.cap_switches;
  let z = o.Sim.zones in
  Alcotest.(check (float 1e-9)) "zones close across the switch"
    o.Sim.energy_j
    (z.Sim.core_j +. z.Sim.uncore_j +. z.Sim.dram_j +. z.Sim.static_j);
  (* almost the whole run is capped at 1.2, but the pre-switch prologue
     and the stall billed at the old clock keep the average above it *)
  Alcotest.(check bool) "avg uncore > cap (pre-switch residue)" true
    (o.Sim.avg_uncore_ghz > 1.2);
  Alcotest.(check bool) "avg uncore below uncapped range" true
    (o.Sim.avg_uncore_ghz < 1.4);
  (* deterministic: the switch must not leave the accounting dependent
     on governor-window phase *)
  let o2 =
    Sim.run ~machine:Machine.bdw ~uncore:`Governor ~caps:[ (var, 1.2) ] tiled
      ~param_values:[ ("n", 144) ]
  in
  Alcotest.(check (float 0.0)) "energy reproducible" o.Sim.energy_j
    o2.Sim.energy_j;
  Alcotest.(check (float 0.0)) "avg uncore reproducible" o.Sim.avg_uncore_ghz
    o2.Sim.avg_uncore_ghz

let qcheck_tests =
  [
    QCheck.Test.make ~name:"energy monotone in f_u for CB kernel" ~count:5
      (QCheck.make QCheck.Gen.(int_range 16 48))
      (fun n ->
        let o1 = run_fixed gemm n 1.2 in
        let o2 = run_fixed gemm n 2.0 in
        let o3 = run_fixed gemm n 2.8 in
        o1.Sim.energy_j <= o2.Sim.energy_j && o2.Sim.energy_j <= o3.Sim.energy_j);
    QCheck.Test.make ~name:"time monotone (non-increasing) in f_u" ~count:5
      (QCheck.make QCheck.Gen.(int_range 5_000 50_000))
      (fun n ->
        let o1 = run_fixed stream n 1.2 in
        let o2 = run_fixed stream n 2.0 in
        let o3 = run_fixed stream n 2.8 in
        o1.Sim.time_s >= o2.Sim.time_s && o2.Sim.time_s >= o3.Sim.time_s);
  ]

let tests =
  [
    Alcotest.test_case "cache cold/hit" `Quick test_cache_cold_then_hit;
    Alcotest.test_case "cache LRU eviction" `Quick test_cache_lru_eviction;
    Alcotest.test_case "cache set isolation" `Quick test_cache_other_set_isolated;
    Alcotest.test_case "cache writeback" `Quick test_cache_writeback;
    Alcotest.test_case "cache inclusion" `Quick test_cache_inclusive_two_level;
    Alcotest.test_case "cache stats consistency" `Quick test_cache_stats_consistency;
    Alcotest.test_case "machine freq steps" `Quick test_machine_freqs;
    Alcotest.test_case "machine curves" `Quick test_machine_curves;
    Alcotest.test_case "CB time flat" `Quick test_cb_time_flat;
    Alcotest.test_case "BB speeds up" `Quick test_bb_speeds_up;
    Alcotest.test_case "energy conservation" `Quick test_energy_conservation;
    Alcotest.test_case "flop accounting" `Quick test_flop_accounting;
    Alcotest.test_case "governor tracks demand" `Quick test_governor_tracks_demand;
    Alcotest.test_case "caps apply" `Quick test_caps_apply;
    Alcotest.test_case "cap switch latency" `Quick test_cap_switch_costs_time;
    Alcotest.test_case "cap switch energy accounting" `Quick
      test_cap_switch_energy_accounting;
  ]
  @ List.map (QCheck_alcotest.to_alcotest ~verbose:false) qcheck_tests
