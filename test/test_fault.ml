(* Tests for the fault-injection framework and the recovery machinery it
   exercises: deterministic seeded fault plans, the supervised worker
   pool (crash requeue/backoff/respawn, terminal Worker_failure,
   map_partial fidelity), the fault-aware cache I/O (atomic writes with
   retry, ENOSPC read-only degradation, torn-write quarantine), the
   Guard diagnostic boundary, and a mini-fuzzer asserting that no
   mutated input can make any of the three frontends escape an
   exception past Guard.protect. *)

open Polyufc_core
module FS = Engine.Faultsim
module G = Engine.Guard
module P = Engine.Pool
module R = Engine.Rcache
module F = Engine.Fidelity
module J = Telemetry.Json

let fresh_dir () = Filename.temp_dir "polyufc_fault_test" ""

let plan_of_string s =
  match FS.parse_plan s with
  | Ok p -> p
  | Error m -> Alcotest.failf "plan %S refused: %s" s m

(* ---------- plans and streams ---------- *)

let test_plan_parse () =
  let p = plan_of_string "pool.worker_crash:0.2:7, rcache.torn_write:1:3" in
  Alcotest.(check string) "round trip"
    "pool.worker_crash:0.2:7,rcache.torn_write:1:3" (FS.plan_to_string p);
  let bad s =
    match FS.parse_plan s with
    | Ok _ -> Alcotest.failf "plan %S must be refused" s
    | Error _ -> ()
  in
  bad "";
  bad "nonsense.site:0.5:1";
  bad "pool.worker_crash:1.5:1";
  bad "pool.worker_crash:0.5:-1";
  bad "pool.worker_crash:0.5";
  List.iter
    (fun site ->
      Alcotest.(check bool)
        (FS.site_name site ^ " self-names") true
        (FS.site_of_name (FS.site_name site) = Some site))
    FS.all_sites

let test_fire_deterministic () =
  let plan = plan_of_string "io.report_write:0.5:123" in
  let sample () =
    FS.with_plan plan (fun () ->
        List.init 200 (fun _ -> FS.fire FS.Io_report_write))
  in
  let a = sample () in
  Alcotest.(check (list bool)) "same seed, same fault sequence" a (sample ());
  Alcotest.(check bool) "both outcomes occur" true
    (List.mem true a && List.mem false a);
  (* a different seed gives a different sequence *)
  let b =
    FS.with_plan
      (plan_of_string "io.report_write:0.5:124")
      (fun () -> List.init 200 (fun _ -> FS.fire FS.Io_report_write))
  in
  Alcotest.(check bool) "different seed, different sequence" true (a <> b)

let test_unarmed_is_silent () =
  FS.suspended @@ fun () ->
  Alcotest.(check bool) "inactive under the empty plan" false (FS.active ());
  let before = FS.injected_count FS.Pool_worker_crash in
  for _ = 1 to 100 do
    Alcotest.(check bool) "never fires" false (FS.fire FS.Pool_worker_crash)
  done;
  Alcotest.(check int) "nothing counted" before
    (FS.injected_count FS.Pool_worker_crash)

(* ---------- atomic report/cache writes ---------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_write_atomic_roundtrip () =
  FS.suspended @@ fun () ->
  let dir = fresh_dir () in
  let path = Filename.concat dir "report.json" in
  Engine.Io.write_atomic path "{\"v\":1}";
  Alcotest.(check string) "written" "{\"v\":1}" (read_file path);
  Engine.Io.write_atomic path "{\"v\":2}";
  Alcotest.(check string) "replaced" "{\"v\":2}" (read_file path);
  Alcotest.(check (list string)) "no temp-file litter" [ "report.json" ]
    (Array.to_list (Sys.readdir dir))

let test_write_atomic_failure_keeps_old () =
  (* a write that fails (here: the io.report_write site at prob 1, so the
     retry fails too) must raise without touching the previous contents *)
  let dir = fresh_dir () in
  let path = Filename.concat dir "report.json" in
  FS.suspended (fun () -> Engine.Io.write_atomic path "old");
  let retries = ref 0 in
  FS.with_plan (plan_of_string "io.report_write:1:1") (fun () ->
      match
        Engine.Io.write_atomic ~fault:FS.Io_report_write
          ~on_retry:(fun () -> incr retries)
          path "new"
      with
      | () -> Alcotest.fail "write under a certain fault must fail"
      | exception FS.Injected FS.Io_report_write -> ());
  Alcotest.(check int) "exactly one retry" 1 !retries;
  Alcotest.(check string) "old contents intact" "old" (read_file path)

(* ---------- guard ---------- *)

let code_of = function
  | Ok _ -> Alcotest.fail "expected a diagnostic"
  | Error d -> d.G.code

let test_guard_codes () =
  Alcotest.(check int) "parse error -> invalid input" G.exit_invalid_input
    (code_of (G.protect (fun () -> ignore (Polylang.parse "program oops ("))));
  Alcotest.(check int) "exhausted -> 4" G.exit_exhausted
    (code_of (G.protect (fun () -> raise (Engine.Budget.Exhausted "deadline"))));
  Alcotest.(check int) "cancelled -> 130" G.exit_interrupted
    (code_of (G.protect (fun () -> raise (Engine.Cancel.Cancelled "^C"))));
  Alcotest.(check int) "worker failure -> internal" G.exit_internal
    (code_of (G.protect (fun () -> raise (P.Worker_failure "gone"))));
  Alcotest.(check int) "unknown exception -> internal" G.exit_internal
    (code_of (G.protect (fun () -> raise Not_found)));
  Alcotest.(check int) "failwith -> invalid input" G.exit_invalid_input
    (code_of (G.protect (fun () -> failwith "bad manifest")))

let test_guard_phase_and_span () =
  (match G.protect (fun () -> G.phase "parse" (fun () -> ignore (Polylang.parse "program x("))) with
  | Ok _ -> Alcotest.fail "expected a diagnostic"
  | Error d ->
    Alcotest.(check string) "innermost phase attributed" "parse" d.G.phase;
    (match d.G.span with
    | Some s ->
      Alcotest.(check bool) ("span is a line ref: " ^ s) true
        (String.length s > 5 && String.sub s 0 5 = "line ")
    | None -> Alcotest.fail "polylang errors carry a line span"));
  (* a successful inner phase restores the outer label *)
  match G.protect ~phase:"outer" (fun () ->
          G.phase "inner" (fun () -> ());
          failwith "later")
  with
  | Error d -> Alcotest.(check string) "outer phase restored" "outer" d.G.phase
  | Ok _ -> Alcotest.fail "expected a diagnostic"

let test_guard_json_wellformed () =
  match G.protect (fun () -> ignore (Polylang.parse "program x(")) with
  | Ok _ -> Alcotest.fail "expected a diagnostic"
  | Error d -> (
    match J.of_string (J.to_string (G.json_of d)) with
    | Error m -> Alcotest.failf "diagnostic JSON does not re-parse: %s" m
    | Ok doc ->
      List.iter
        (fun k ->
          if J.member k doc = None then Alcotest.failf "missing %S field" k)
        [ "code"; "phase"; "message"; "span" ])

(* ---------- supervised pool ---------- *)

let with_telemetry f =
  let was = Telemetry.is_enabled () in
  Telemetry.enable ();
  Fun.protect ~finally:(fun () -> if not was then Telemetry.disable ()) f

let test_crash_map_deterministic () =
  (* acceptance: under pool.worker_crash:0.2:7 a 64-job map returns
     byte-identical results to the fault-free run, and worker crashes
     were actually injected and recovered *)
  with_telemetry @@ fun () ->
  let xs = List.init 64 (fun i -> i) in
  let f x = Printf.sprintf "%d:%d" x ((x * x * 37) mod 1009) in
  let expect = FS.suspended (fun () -> List.map f xs) in
  let crashes_before = FS.injected_count FS.Pool_worker_crash in
  let tel_before = Telemetry.counter_value "engine.worker_crashes" in
  let got =
    FS.with_plan (plan_of_string "pool.worker_crash:0.2:7") (fun () ->
        P.with_pool ~jobs:4 ~max_retries:10 (fun pool -> P.map pool f xs))
  in
  Alcotest.(check (list string)) "retries hide crashes byte-for-byte" expect
    got;
  Alcotest.(check bool) "crashes were injected" true
    (FS.injected_count FS.Pool_worker_crash > crashes_before);
  Alcotest.(check bool) "telemetry engine.worker_crashes > 0" true
    (Telemetry.counter_value "engine.worker_crashes" > tel_before)

let test_crash_terminal_is_partial () =
  (* with max_retries=0 and a certain crash, every job is abandoned on
     its first crash: map_partial completes (no raise, no hang) and
     reports Partial; plain map raises the terminal Worker_failure *)
  FS.with_plan (plan_of_string "pool.worker_crash:1:11") @@ fun () ->
  let xs = List.init 16 (fun i -> i) in
  P.with_pool ~jobs:2 ~max_retries:0 @@ fun pool ->
  let kept, fidelity = P.map_partial pool (fun x -> x + 1) xs in
  Alcotest.(check (list int)) "every slot abandoned" [] kept;
  Alcotest.(check bool) "fidelity partial" true (fidelity = F.Partial);
  match P.map pool (fun x -> x + 1) xs with
  | _ -> Alcotest.fail "map must re-raise the terminal failure"
  | exception P.Worker_failure _ -> ()

let test_crash_partial_keeps_survivors () =
  (* at a sub-certain rate with no retry budget, abandoned slots drop but
     surviving slots keep their values and order *)
  FS.with_plan (plan_of_string "pool.worker_crash:0.4:21") @@ fun () ->
  let xs = List.init 48 (fun i -> i) in
  P.with_pool ~jobs:4 ~max_retries:0 @@ fun pool ->
  let kept, fidelity = P.map_partial pool (fun x -> 3 * x) xs in
  let expect_all = List.map (fun x -> 3 * x) xs in
  Alcotest.(check bool) "survivors keep order and values" true
    (List.for_all (fun v -> List.mem v expect_all) kept
    && List.sort compare kept = kept);
  Alcotest.(check bool) "some slots lost at this rate" true
    (List.length kept < List.length xs);
  Alcotest.(check bool) "partial fidelity" true (fidelity = F.Partial)

let test_pool_survives_chaos () =
  (* after a crashy episode the pool still dispatches cleanly *)
  P.with_pool ~jobs:3 ~max_retries:10 @@ fun pool ->
  FS.with_plan (plan_of_string "pool.worker_crash:0.5:5") (fun () ->
      ignore (P.map pool succ (List.init 32 Fun.id)));
  FS.suspended (fun () ->
      Alcotest.(check (list int)) "clean map after chaos" [ 1; 2; 3 ]
        (P.map pool succ [ 0; 1; 2 ]))

let test_stall_trips_deadline () =
  (* a stalled worker must surface as deadline exhaustion (bounded
     latency), not as a hang: the job runs ~stall_seconds late, by which
     time the 50 ms budget is spent *)
  FS.with_plan (plan_of_string "pool.worker_stall:1:13") @@ fun () ->
  let budget = Engine.Budget.create ~deadline_s:0.05 ~degrade:Engine.Budget.Off () in
  P.with_pool ~jobs:2 @@ fun pool ->
  match P.map pool (fun _ -> Engine.Budget.check budget) [ 1; 2; 3; 4 ] with
  | _ -> Alcotest.fail "stalled map under a tiny deadline must exhaust"
  | exception Engine.Budget.Exhausted _ -> ()

(* ---------- flow under terminal faults ---------- *)

let two_region_src =
  {|
program two(n) {
  arrays { A[n][n] : f64; B[n][n] : f64; x[n] : f64; y[n] : f64; }
  for (i = 0; i < n; i++) {
    for (j = 0; j < n; j++) {
      y[i] = y[i] + A[i][j] * x[j];
    }
  }
  for (k = 0; k < n; k++) {
    for (l = 0; l < n; l++) {
      B[k][l] = A[k][l] + B[k][l];
    }
  }
}
|}

let compile_two ?pool () =
  Flow.compile ?pool ~tile:false ~machine:Hwsim.Machine.bdw
    ~rooflines:(Lazy.force Test_support.bdw_rooflines)
    (Polylang.parse two_region_src)
    ~param_values:[ ("n", 40) ]

let test_flow_partial_under_terminal_crash () =
  (* with injection terminal the compile must complete with
     fidelity=partial — pooled fan-outs lose their jobs, the analysis
     self-heals inline — instead of raising or hanging *)
  let c =
    FS.with_plan (plan_of_string "pool.worker_crash:1:17") (fun () ->
        P.with_pool ~jobs:3 ~max_retries:0 (fun pool -> compile_two ~pool ()))
  in
  Alcotest.(check bool) "fidelity partial" true
    (c.Flow.fidelity = F.Partial);
  (* the self-healed cache model is still the exact one *)
  let exact = FS.suspended (fun () -> compile_two ()) in
  Alcotest.(check (float 1e-9)) "cache model healed to the exact OI"
    exact.Flow.cm.Cache_model.Model.oi c.Flow.cm.Cache_model.Model.oi

let test_flow_retries_hide_crashes () =
  let exact = FS.suspended (fun () -> compile_two ()) in
  let stable c =
    match Report.json_of_compiled c with
    | J.Obj fields ->
      J.to_string (J.Obj (List.filter (fun (k, _) -> k <> "timing") fields))
    | j -> J.to_string j
  in
  let crashy =
    FS.with_plan (plan_of_string "pool.worker_crash:0.2:7") (fun () ->
        P.with_pool ~jobs:4 ~max_retries:10 (fun pool -> compile_two ~pool ()))
  in
  Alcotest.(check string) "crashy pooled compile = fault-free compile"
    (stable exact) (stable crashy)

(* ---------- fault-aware cache ---------- *)

let test_enospc_flips_readonly () =
  let dir = fresh_dir () in
  let c = R.create ~dir () in
  let k = R.key [ ("t", "enospc") ] in
  let before = R.counts () in
  FS.with_plan (plan_of_string "rcache.enospc:1:3") (fun () ->
      Alcotest.(check bool) "starts writable" false (R.read_only c);
      R.store c k (J.Int 1);
      Alcotest.(check bool) "ENOSPC flips read-only" true (R.read_only c);
      (* later stores are silent no-ops, not repeated flips or errors *)
      R.store c k (J.Int 2));
  let after = R.counts () in
  Alcotest.(check int) "flip counted once" (before.R.readonly_flips + 1)
    after.R.readonly_flips;
  Alcotest.(check int) "nothing stored on disk" before.R.stores after.R.stores;
  FS.suspended @@ fun () ->
  (* the memory tier absorbed the store anyway: this handle keeps its
     working set warm on a full disk... *)
  Alcotest.(check bool) "same handle still serves from memory" true
    (R.find c k = Some (J.Int 2));
  (* ...but nothing reached the disk: a fresh handle on the same
     directory misses *)
  let fresh = R.create ~dir () in
  Alcotest.(check bool) "fresh handle misses (disk empty)" true
    (R.find fresh k = None);
  (* the analysis above the cache still succeeds, just uncached *)
  let v =
    R.find_or_add fresh ~key:k
      ~decode:(function J.Int i -> Some i | _ -> None)
      ~encode:(fun i -> J.Int i)
      (fun () -> 99)
  in
  Alcotest.(check int) "find_or_add computes through" 99 v

let test_torn_write_quarantined () =
  let dir = fresh_dir () in
  (* mem tier off: it keeps the pre-tear payload and would (correctly)
     mask the torn on-disk entry this test is about *)
  let c = R.create ~dir ~mem_entries:0 () in
  let k = R.key [ ("t", "torn") ] in
  FS.with_plan (plan_of_string "rcache.torn_write:1:5") (fun () ->
      R.store c k (J.Obj [ ("big", J.Str (String.make 64 'x')) ]));
  let before = R.counts () in
  FS.suspended @@ fun () ->
  Alcotest.(check bool) "torn entry is a miss on next read" true
    (R.find c k = None);
  let after = R.counts () in
  Alcotest.(check int) "quarantined" (before.R.quarantined + 1)
    after.R.quarantined;
  let qdir = R.quarantine_dir c in
  Alcotest.(check bool) "moved to quarantine/" true
    (Sys.file_exists qdir && Array.length (Sys.readdir qdir) > 0);
  (* the slot is usable again *)
  R.store c k (J.Int 7);
  Alcotest.(check bool) "repaired" true (R.find c k = Some (J.Int 7))

let test_read_corrupt_retry () =
  (* a 50% flaky read medium over 20 distinct entries: hits must still be
     served (clean first read, or the one-retry path), unlucky
     double-corrupt reads quarantine, and the cache never raises *)
  let dir = fresh_dir () in
  let c = R.create ~dir () in
  let keys = List.init 20 (fun i -> R.key [ ("t", string_of_int i) ]) in
  FS.suspended (fun () -> List.iter (fun k -> R.store c k (J.Int 5)) keys);
  let served = ref 0 in
  FS.with_plan (plan_of_string "rcache.read_corrupt:0.5:9") (fun () ->
      List.iter
        (fun k ->
          match R.find c k with
          | Some (J.Int 5) -> incr served
          | Some _ -> Alcotest.fail "a served hit must be the stored value"
          | None -> () (* double-corrupt read: quarantined, a miss *)
          | exception e ->
            Alcotest.failf "flaky reads must never raise: %s"
              (Printexc.to_string e))
        keys);
  Alcotest.(check bool) "some reads served despite the flaky medium" true
    (!served > 0)

(* ---------- frontend fuzzing ---------- *)

let gemm_src =
  {|
program gemm(n) {
  arrays { A[n][n] : f64; B[n][n] : f64; C[n][n] : f64; }
  for (i = 0; i < n; i++) {
    for (j = 0; j < n; j++) {
      C[i][j] = 0.0;
      for (k = 0; k < n; k++) {
        C[i][j] = C[i][j] + A[i][k] * B[k][j];
      }
    }
  }
}
|}

let mvt_src =
  {|
program mvt(n) {
  arrays { A[n][n] : f64; x1[n] : f64; x2[n] : f64; y1[n] : f64; y2[n] : f64; }
  for (i = 0; i < n; i++) {
    for (j = 0; j < n; j++) {
      x1[i] = x1[i] + A[i][j] * y1[j];
    }
  }
  for (k = 0; k < n; k++) {
    for (l = 0; l < n; l++) {
      x2[k] = x2[k] + A[l][k] * y2[l];
    }
  }
}
|}

let isl_seeds =
  [
    "[n, m] -> { S[i, j] -> A[i + j, 2*j] : 0 <= i < n and 0 <= j < m and (i \
     + j) mod 2 = 0 }";
    "{ [i] : 0 <= i <= 10 and i != 4 ; [i] : i = 42 }";
    "[n] -> { [i, j] : 0 <= i < n and 0 <= j < i and floor(i / 2) = j }";
  ]

let tokens =
  [| "for"; "("; ")"; "{"; "}"; ";"; "mod"; "and"; "or"; "["; "]"; "->";
     "<="; "!="; "0"; "program"; "arrays"; ":"; "=" |]

let mutate st s =
  let n = String.length s in
  if n = 0 then "x"
  else
    match Random.State.int st 6 with
    | 0 ->
      let i = Random.State.int st n in
      String.sub s 0 i ^ String.sub s (i + 1) (n - i - 1)
    | 1 ->
      let i = Random.State.int st (n + 1) in
      let c = Char.chr (Random.State.int st 256) in
      String.sub s 0 i ^ String.make 1 c ^ String.sub s i (n - i)
    | 2 ->
      let b = Bytes.of_string s in
      let i = Random.State.int st n in
      Bytes.set b i
        (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl Random.State.int st 8)));
      Bytes.to_string b
    | 3 -> String.sub s 0 (Random.State.int st n)
    | 4 ->
      let i = Random.State.int st n in
      let len = min (n - i) (1 + Random.State.int st 24) in
      String.sub s 0 (i + len) ^ String.sub s i (n - i)
    | _ ->
      let i = Random.State.int st (n + 1) in
      let tok = tokens.(Random.State.int st (Array.length tokens)) in
      String.sub s 0 i ^ tok ^ String.sub s i (n - i)

let fuzz_rounds = 500

(* Run [frontend] on [fuzz_rounds] mutated inputs.  The property under
   test: Guard.protect never lets an exception escape, every failure is
   a structured diagnostic with a defined exit code, and the diagnostic
   always serializes to re-parseable JSON. *)
let fuzz ~name ~seeds frontend () =
  FS.suspended @@ fun () ->
  let st = Random.State.make [| 0x5eed; Hashtbl.hash name |] in
  let seeds = Array.of_list seeds in
  let failures = ref 0 in
  for i = 1 to fuzz_rounds do
    let s = ref seeds.(Random.State.int st (Array.length seeds)) in
    for _ = 0 to Random.State.int st 4 do
      s := mutate st !s
    done;
    match G.protect ~phase:"parse" (fun () -> frontend !s) with
    | Ok () -> ()
    | Error d ->
      incr failures;
      if
        not
          (List.mem d.G.code
             [ G.exit_invalid_input; G.exit_exhausted; G.exit_internal ])
      then
        Alcotest.failf "%s: mutant %d: undefined exit code %d" name i d.G.code;
      if d.G.message = "" then
        Alcotest.failf "%s: mutant %d: empty diagnostic" name i;
      (match J.of_string (J.to_string (G.json_of d)) with
      | Ok _ -> ()
      | Error m ->
        Alcotest.failf "%s: mutant %d: diagnostic not JSON: %s" name i m)
    | exception e ->
      Alcotest.failf "%s: mutant %d: exception escaped Guard.protect: %s" name
        i (Printexc.to_string e)
  done;
  (* sanity: the mutator actually produces plenty of invalid inputs *)
  Alcotest.(check bool) "mutants exercised the failure path" true
    (!failures > fuzz_rounds / 10)

let fuzz_polylang =
  fuzz ~name:"polylang" ~seeds:[ gemm_src; mvt_src ] (fun s ->
      ignore (Polylang.parse s))

let fuzz_isl =
  fuzz ~name:"isl-syntax" ~seeds:isl_seeds (fun s ->
      ignore (Presburger.Syntax.pset_of_string s))

(* The mlir_lite frontend has no textual surface; its untrusted input is
   the module itself.  Fuzz the lowering boundary: random torch modules
   (including degenerate shapes) through randomly truncated pipelines,
   with to_program on whatever dialect mix results. *)
let fuzz_mlir () =
  let open Mlir_lite in
  FS.suspended @@ fun () ->
  let st = Random.State.make [| 0x5eed; Hashtbl.hash "mlir" |] in
  let failures = ref 0 in
  for i = 1 to fuzz_rounds do
    let dim () = Random.State.int st 40 - 4 in
    let op =
      match Random.State.int st 4 with
      | 0 -> Dialect.T_matmul { m = dim (); k = dim (); n = dim () }
      | 1 -> Dialect.T_softmax { rows = dim (); cols = dim () }
      | 2 -> Dialect.T_relu { elems = dim () }
      | _ ->
        Dialect.T_sdpa
          { batch = dim (); heads = dim (); seq = dim (); dim = dim () }
    in
    let m =
      {
        Dialect.module_name = "fuzz";
        arrays = [];
        ops = [ Dialect.Torch_op ("t", op) ];
      }
    in
    let passes =
      List.filteri
        (fun idx _ -> idx < Random.State.int st 4)
        [
          Lower.pass_torch_to_linalg;
          Lower.pass_linalg_to_affine ~tile:false ();
          Lower.pass_affine_to_scf;
        ]
    in
    match
      G.protect ~phase:"lower" (fun () ->
          ignore (Lower.to_program (Lower.run_pipeline passes m)))
    with
    | Ok () -> ()
    | Error d ->
      incr failures;
      if
        not
          (List.mem d.G.code
             [ G.exit_invalid_input; G.exit_exhausted; G.exit_internal ])
      then Alcotest.failf "mlir: mutant %d: undefined exit code %d" i d.G.code
    | exception e ->
      Alcotest.failf "mlir: mutant %d: exception escaped Guard.protect: %s" i
        (Printexc.to_string e)
  done;
  Alcotest.(check bool) "mutants exercised the failure path" true
    (!failures > fuzz_rounds / 10)

let tests =
  [
    Alcotest.test_case "fault plans parse and round-trip" `Quick
      test_plan_parse;
    Alcotest.test_case "seeded streams are deterministic" `Quick
      test_fire_deterministic;
    Alcotest.test_case "unarmed sites are free and silent" `Quick
      test_unarmed_is_silent;
    Alcotest.test_case "atomic write round-trips, no litter" `Quick
      test_write_atomic_roundtrip;
    Alcotest.test_case "failed atomic write keeps old file" `Quick
      test_write_atomic_failure_keeps_old;
    Alcotest.test_case "guard maps exceptions to exit codes" `Quick
      test_guard_codes;
    Alcotest.test_case "guard attributes phase and span" `Quick
      test_guard_phase_and_span;
    Alcotest.test_case "guard diagnostics are well-formed JSON" `Quick
      test_guard_json_wellformed;
    Alcotest.test_case "crash-injected map is byte-identical" `Quick
      test_crash_map_deterministic;
    Alcotest.test_case "terminal crashes degrade to partial" `Quick
      test_crash_terminal_is_partial;
    Alcotest.test_case "map_partial keeps surviving slots" `Quick
      test_crash_partial_keeps_survivors;
    Alcotest.test_case "pool survives a crashy episode" `Quick
      test_pool_survives_chaos;
    Alcotest.test_case "stalled worker trips the deadline" `Quick
      test_stall_trips_deadline;
    Alcotest.test_case "flow: terminal crash = fidelity partial" `Quick
      test_flow_partial_under_terminal_crash;
    Alcotest.test_case "flow: retries hide crashes byte-for-byte" `Quick
      test_flow_retries_hide_crashes;
    Alcotest.test_case "ENOSPC flips the cache read-only" `Quick
      test_enospc_flips_readonly;
    Alcotest.test_case "torn write quarantined on next read" `Quick
      test_torn_write_quarantined;
    Alcotest.test_case "flaky reads served through the retry" `Quick
      test_read_corrupt_retry;
    Alcotest.test_case "fuzz: polylang never escapes the guard" `Slow
      fuzz_polylang;
    Alcotest.test_case "fuzz: isl syntax never escapes the guard" `Slow
      fuzz_isl;
    Alcotest.test_case "fuzz: mlir lowering never escapes the guard" `Slow
      fuzz_mlir;
  ]
