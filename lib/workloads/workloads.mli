(** The evaluation benchmark suite (Sec. VII-C, Table II).

    22 PolyBench kernels plus the vision/NLP kernels the paper draws from
    real models: [conv2d] configurations from AlexNet / ConvNeXt /
    WideResNet, [sdpa] from BERT / Gemma-2, and the language-modeling-head
    [matmul] from GPT-2 / LLaMA-2.  ML kernels are expressed as torch-level
    modules and lowered through the mlir_lite pipeline; PolyBench kernels
    are Polylang sources.

    Problem sizes are scaled together with the simulated machines' cache
    capacities (see DESIGN.md): each kernel keeps the paper's working-set /
    LLC ratio, which determines its CB/BB character. *)

type kind = Polybench | Ml_kernel

type source =
  | Lang of string  (** Polylang source text *)
  | Torch of (unit -> Mlir_lite.Dialect.t)  (** torch-level module builder *)

type t = {
  name : string;
  kind : kind;
  source : source;
  sizes : (string * int) list;  (** default (scaled) problem sizes *)
  expected : Roofline.boundedness option;
      (** the paper's classification, where it states one explicitly *)
  description : string;
}

val all : t list
val polybench : t list
val ml_kernels : t list

val find : string -> t
(** Raises [Not_found]. *)

val find_opt : string -> t option

val program : t -> Poly_ir.Ir.t
(** The kernel as an (untiled) affine program.  Torch workloads are lowered
    through torch→linalg→affine without tiling. *)

val tiled_program : ?tile_size:int -> t -> Poly_ir.Ir.t
(** The Pluto-optimized form (the paper's compiler baseline). *)

val param_values : t -> (string * int) list
(** The default sizes as interpreter bindings (empty for torch kernels,
    whose shapes are baked in). *)
