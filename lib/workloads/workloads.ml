open Mlir_lite

type kind = Polybench | Ml_kernel

type source = Lang of string | Torch of (unit -> Dialect.t)

type t = {
  name : string;
  kind : kind;
  source : source;
  sizes : (string * int) list;
  expected : Roofline.boundedness option;
  description : string;
}

let pb name src sizes ?expected description =
  { name; kind = Polybench; source = Lang src; sizes; expected; description }

let torch_module name ops () =
  { Dialect.module_name = name; arrays = []; ops }

let ml name builder ?expected description =
  {
    name;
    kind = Ml_kernel;
    source = Torch builder;
    sizes = [];
    expected;
    description;
  }

let polybench =
  [
    pb "gemm" Polybench.gemm [ ("n", 180) ] ~expected:Roofline.CB
      "general matrix multiply (blas)";
    pb "2mm" Polybench.two_mm [ ("n", 150) ] ~expected:Roofline.CB
      "two chained matrix multiplies";
    pb "3mm" Polybench.three_mm [ ("n", 130) ] "three chained matrix multiplies";
    pb "atax" Polybench.atax [ ("n", 700) ] "AᵀAx matrix-vector product";
    pb "bicg" Polybench.bicg [ ("n", 700) ] "BiCG sub-kernel (two matvecs)";
    pb "mvt" Polybench.mvt [ ("n", 700) ] ~expected:Roofline.BB
      "matrix-vector product and transpose";
    pb "gemver" Polybench.gemver [ ("n", 600) ] ~expected:Roofline.BB
      "vector multiplication and matrix addition";
    pb "gesummv" Polybench.gesummv [ ("n", 600) ]
      "scalar, vector and matrix multiplication";
    pb "trisolv" Polybench.trisolv [ ("n", 700) ] ~expected:Roofline.BB
      "triangular solver";
    pb "trmm" Polybench.trmm [ ("n", 160) ] "triangular matrix multiply";
    pb "symm" Polybench.symm [ ("n", 160) ] "symmetric matrix multiply";
    pb "syrk" Polybench.syrk [ ("n", 170) ] "symmetric rank-k update";
    pb "syr2k" Polybench.syr2k [ ("n", 150) ] "symmetric rank-2k update";
    pb "cholesky" Polybench.cholesky [ ("n", 220) ] "Cholesky decomposition";
    pb "durbin" Polybench.durbin [ ("n", 900) ] ~expected:Roofline.CB
      "Toeplitz solver (Levinson-Durbin)";
    pb "lu" Polybench.lu [ ("n", 200) ] "LU decomposition";
    pb "doitgen" Polybench.doitgen [ ("n", 48) ]
      "multi-resolution analysis kernel";
    pb "jacobi-1d" Polybench.jacobi_1d
      [ ("n", 20000); ("tsteps", 60) ]
      ~expected:Roofline.CB "1-d Jacobi stencil (low-bandwidth)";
    pb "jacobi-2d" Polybench.jacobi_2d
      [ ("n", 250); ("tsteps", 20) ]
      "2-d Jacobi stencil";
    pb "adi" Polybench.adi
      [ ("n", 200); ("tsteps", 15) ]
      ~expected:Roofline.BB "alternating-direction implicit solver";
    pb "deriche" Polybench.deriche
      [ ("w", 400); ("h", 400) ]
      ~expected:Roofline.BB "Deriche recursive edge filter";
    pb "correlation" Polybench.correlation
      [ ("n", 240); ("m", 200) ]
      ~expected:Roofline.CB "correlation matrix (data mining)";
  ]

let ml_kernels =
  [
    ml "conv2d-alexnet"
      (torch_module "conv2d_alexnet"
         [
           Dialect.Torch_op
             ("conv", Dialect.T_conv2d { n = 1; c = 3; h = 40; w = 40; k = 16; r = 7; s = 7 });
         ])
      "AlexNet first conv layer (scaled: 1x3x40x40, 16x3x7x7)";
    ml "conv2d-convnext"
      (torch_module "conv2d_convnext"
         [
           Dialect.Torch_op
             ("conv", Dialect.T_conv2d { n = 1; c = 64; h = 14; w = 14; k = 128; r = 2; s = 2 });
         ])
      ~expected:Roofline.CB
      "ConvNeXt downsampling conv (scaled: 1x64x14x14, 128x64x2x2)";
    ml "conv2d-wideresnet"
      (torch_module "conv2d_wideresnet"
         [
           Dialect.Torch_op
             ("conv", Dialect.T_conv2d { n = 2; c = 128; h = 7; w = 7; k = 256; r = 1; s = 1 });
         ])
      "WideResNet bottleneck 1x1 conv (scaled: 2x128x7x7, 256x128x1x1)";
    ml "sdpa-bert"
      (torch_module "sdpa_bert"
         [
           Dialect.Torch_op
             ("attn", Dialect.T_sdpa { batch = 1; heads = 8; seq = 96; dim = 48 });
         ])
      ~expected:Roofline.CB
      "BERT scaled dot-product attention (scaled: 1x8x96x48)";
    ml "sdpa-gemma2"
      (torch_module "sdpa_gemma2"
         [
           Dialect.Torch_op
             ("attn", Dialect.T_sdpa { batch = 1; heads = 16; seq = 32; dim = 128 });
         ])
      "Gemma-2 attention, short sequence (scaled: 1x16x32x128)";
    ml "lm-head-gpt2"
      (torch_module "lm_head_gpt2"
         [
           Dialect.Torch_op ("mm", Dialect.T_matmul { m = 4; k = 256; n = 6144 });
         ])
      "GPT-2 language-model head matmul (scaled: 4x256x6144)";
    ml "lm-head-llama2"
      (torch_module "lm_head_llama2"
         [
           Dialect.Torch_op ("mm", Dialect.T_matmul { m = 4; k = 384; n = 6144 });
         ])
      ~expected:Roofline.BB
      "LLaMA-2 language-model head matmul (scaled: 4x384x6144)";
  ]

let all = polybench @ ml_kernels

let find name = List.find (fun w -> String.equal w.name name) all
let find_opt name = List.find_opt (fun w -> String.equal w.name name) all

let lower_torch ~tile ?tile_size builder =
  let m =
    Lower.run_pipeline (Lower.default_pipeline ~tile ?tile_size ()) (builder ())
  in
  fst (Lower.to_program m)

let program w =
  match w.source with
  | Lang src -> Polylang.parse src
  | Torch b -> lower_torch ~tile:false b

let tiled_program ?tile_size w =
  match w.source with
  | Lang src ->
    Poly_ir.Tiling.tile_program ?tile_size (Polylang.parse src)
  | Torch b -> lower_torch ~tile:true ?tile_size b

let param_values w = w.sizes
