(** Arbitrates one shared uncore cap from per-tenant roofline demands.

    The uncore clock is a single machine-wide register: co-scheduled
    tenants cannot each get the cap their solo analysis chose, so the
    fleet scheduler asks this module for a cap that satisfies everyone's
    memory-bound demand when possible.  The decision is

    - the {b max} of the tenants' solo memory-bound caps (snapped up to
      the machine's cap grid) as a floor — guaranteed [>= ] every
      [d_solo_cap_ghz] and [<= uncore_max_ghz];
    - raised along the grid until the DRAM bandwidth roof at that
      frequency covers the {b sum} of the tenants' bandwidth demands;
    - when even [uncore_max_ghz] cannot carry the sum, the decision is
      {b infeasible}: the cap stays at the top of the range and the
      available bandwidth is split by weighted water-filling — demands
      that fit under their weighted fair share are granted in full, the
      rest share the remainder by QoS weight with a predicted slowdown
      of demand/grant. *)

type demand = {
  d_tenant : string;
  d_weight : float;  (** QoS weight; degradation is inversely proportional *)
  d_solo_cap_ghz : float;  (** the cap the tenant's solo analysis chose *)
  d_bw_gbps : float;  (** sustained DRAM bandwidth demand at that cap *)
  d_mem_bound : bool;  (** BB tenants degrade when starved; CB ones do not *)
}

val demand :
  ?weight:float ->
  ?mem_bound:bool ->
  tenant:string ->
  solo_cap_ghz:float ->
  bw_gbps:float ->
  unit ->
  demand
(** Smart constructor; raises [Invalid_argument] on a non-positive
    weight or negative bandwidth. *)

type grant = {
  g_tenant : string;
  g_bw_gbps : float;  (** bandwidth share granted at the chosen cap *)
  g_satisfied : bool;
  g_slowdown : float;  (** predicted, [>= 1.0]; [1.0] when satisfied *)
}

type decision = {
  cap_ghz : float;  (** within [[uncore_min_ghz, uncore_max_ghz]], on grid *)
  feasible : bool;  (** supply at [cap_ghz] covers the aggregate demand *)
  agg_bw_gbps : float;  (** sum of the tenants' demands *)
  supply_gbps : float;  (** DRAM bandwidth at [cap_ghz] *)
  grants : grant list;  (** in demand order *)
}

val arbitrate : machine:Machine.t -> demand list -> decision
(** Raises [Invalid_argument] on an empty demand list. *)

val pp_decision : Format.formatter -> decision -> unit
