(** The hardware simulator: executes program access traces against a
    {!Machine.t} and reports time, energy and EDP.

    This is the reproduction's stand-in for the paper's real testbeds
    (PAPI counters + RAPL energy + the Intel UFS / P-state drivers):

    - {b Timing}: execution time accumulates per event.  Compute time is
      [flops · flop_ns / threads_in_parallel_region]; cache-hit time is
      [hit_latency / (mlp · threads)]; a DRAM access costs
      [max(latency(f_u)/mlp, line/BW(f_u))] — the bandwidth term is shared
      across threads, which is what starves bandwidth-bound kernels.
    - {b Power/energy}: [P = p_static + core_active + (α·f_u + γ)] plus a
      per-line DRAM transfer energy; energy integrates power over simulated
      time, RAPL-style, with separate core/uncore zone accounting.
    - {b Uncore frequency}: either pinned ([`Fixed f]) or driven by a
      UFS-like governor ([`Governor]) that scales the uncore with observed
      DRAM-bandwidth demand, bounded by the currently-active cap.  Cap
      changes (from the compiled-in cap schedule) cost the machine's
      cap-switch latency and restart the governor's accounting window.

    Since the multi-tenant redesign the canonical entry point is a
    {!config} record holding one {!tenant} per co-scheduled program.  A
    single tenant runs the paper-faithful single-kernel engine (one
    inclusive hierarchy); two or more tenants are interleaved
    event-by-event over private upper cache levels, a shared LLC, a
    shared DRAM channel (equal slices of the bandwidth at the current
    clock) and one shared uncore clock — any tenant's cap schedule
    writes the one MSR everyone reads, which is the interference
    {!Cap_arbiter} exists to arbitrate away.

    Relative comparisons (capped code vs. the governor baseline on the same
    machine) are the meaningful output, as in the paper. *)

type uncore_policy =
  [ `Fixed of float  (** pin the uncore clock (cap with a saturated load) *)
  | `Governor  (** UFS-driver-like dynamic scaling, bounded by active cap *)
  ]

type zone_energy = { core_j : float; uncore_j : float; dram_j : float; static_j : float }

type outcome = {
  time_s : float;
  energy_j : float;
  edp : float;  (** energy × delay *)
  avg_power_w : float;
  avg_uncore_ghz : float;  (** time-weighted *)
  zones : zone_energy;
  flops : int;
  dram_lines : int;  (** DRAM line fills *)
  dram_bytes : int;  (** fills + writebacks, in bytes *)
  cache_stats : Cache.level_stats array;
  cap_switches : int;
  achieved_gflops : float;
  achieved_bw_gbps : float;
}

type cap_schedule = (string * float) list
(** Caps keyed by top-level loop variable: entering that loop sets the
    uncore cap (PolyUFC's inter-kernel capping, Sec. VII-A). *)

(** {1 Tenant configuration} *)

type tenant = {
  t_name : string;
  t_prog : Poly_ir.Ir.t;
  t_params : (string * int) list;
  t_cores : int;  (** cores granted in parallel regions; 0 = fair share *)
  t_weight : float;  (** QoS weight, read by {!Cap_arbiter} *)
  t_caps : cap_schedule;
}

val tenant :
  ?cores:int ->
  ?weight:float ->
  ?caps:cap_schedule ->
  ?param_values:(string * int) list ->
  name:string ->
  Poly_ir.Ir.t ->
  tenant
(** Smart constructor; raises [Invalid_argument] on a non-positive
    weight or negative core count.  [cores] defaults to [0]: an equal
    share of the machine's threads, at least one. *)

type config = {
  machine : Machine.t;
  uncore : uncore_policy;
  governor_interval_us : float;
  tenants : tenant list;
}

val config :
  machine:Machine.t ->
  uncore:uncore_policy ->
  ?governor_interval_us:float ->
  tenant list ->
  config
(** Smart constructor; [governor_interval_us] defaults to 100.  Raises
    [Invalid_argument] on an empty tenant list. *)

type tenant_outcome = {
  o_tenant : string;
  o_time_s : float;  (** this tenant's completion time *)
  o_energy_j : float;
      (** attributed share: its core + DRAM energy plus a
          residency-proportional slice of uncore + static *)
  o_flops : int;
  o_accesses : int;  (** demand accesses presented to the hierarchy *)
  o_dram_lines : int;
  o_dram_bytes : int;
  o_gflops : float;
  o_bw_gbps : float;
  o_solo_time_s : float;  (** NaN when solo baselines were not requested *)
  o_slowdown : float;  (** [o_time_s / o_solo_time_s]; NaN without solo *)
}

type multi_outcome = {
  combined : outcome;
      (** machine-level aggregate: wall time, total energy, shared-LLC
          stats in the last [cache_stats] slot *)
  per_tenant : tenant_outcome list;  (** in configuration order *)
  n_tenants : int;
}

val simulate : ?solo:bool -> config -> multi_outcome
(** Run a tenant set.  One tenant takes the exact single-kernel path
    ({!run} is byte-identical to a one-tenant [simulate]); two or more
    are interleaved over the shared LLC / DRAM / uncore clock.  With
    [solo] (default [true]) each tenant is additionally run alone under
    the same policy to report [o_slowdown]; pass [~solo:false] to skip
    those baseline runs. *)

val run_one : config -> outcome
(** [combined] of [simulate ~solo:false] — the record-API equivalent of
    {!run} for callers that want a single aggregate outcome. *)

(** {1 Legacy entry point} *)

val run :
  machine:Machine.t ->
  uncore:uncore_policy ->
  ?caps:cap_schedule ->
  ?governor_interval_us:float ->
  Poly_ir.Ir.t ->
  param_values:(string * int) list ->
  outcome
(** Deprecated compat wrapper over the single-kernel engine: equivalent
    to [run_one (config ~machine ~uncore [tenant ~caps ... prog])].
    Kept so pre-multi-tenant callers compile; new code should build a
    {!config}. *)

val pp_outcome : Format.formatter -> outcome -> unit
val pp_tenant_outcome : Format.formatter -> tenant_outcome -> unit
val pp_multi_outcome : Format.formatter -> multi_outcome -> unit
