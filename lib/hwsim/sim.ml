open Poly_ir

type uncore_policy = [ `Fixed of float | `Governor ]

type zone_energy = {
  core_j : float;
  uncore_j : float;
  dram_j : float;
  static_j : float;
}

type outcome = {
  time_s : float;
  energy_j : float;
  edp : float;
  avg_power_w : float;
  avg_uncore_ghz : float;
  zones : zone_energy;
  flops : int;
  dram_lines : int;
  dram_bytes : int;
  cache_stats : Cache.level_stats array;
  cap_switches : int;
  achieved_gflops : float;
  achieved_bw_gbps : float;
}

type cap_schedule = (string * float) list

let c_runs = Telemetry.counter "hwsim.runs"
let c_multi_runs = Telemetry.counter "hwsim.multi_runs"
let c_tenants = Telemetry.counter "hwsim.tenants_interleaved"
let c_cap_switches = Telemetry.counter "hwsim.cap_switches"
let c_gov_switches = Telemetry.counter "hwsim.governor_switches"
let c_dram_lines = Telemetry.counter "hwsim.dram_lines"

let clamp lo hi x = Float.max lo (Float.min hi x)

(* --- single-kernel engine ------------------------------------------- *)

(* The paper-faithful single-kernel walk: one inclusive cache hierarchy,
   one trace, one clock.  [Sim.run] and one-tenant [simulate] configs go
   through here, so the record API is byte-identical to the legacy
   optional-argument entry point. *)
let run_single ~machine ~uncore ~caps ~governor_interval_us prog
    ~param_values =
  Telemetry.tick c_runs;
  Telemetry.with_span "hwsim.run"
    ~args:
      [
        ("prog", prog.Ir.prog_name);
        ("machine", machine.Machine.name);
        ("uncore", match uncore with `Fixed _ -> "fixed" | `Governor -> "governor");
      ]
  @@ fun () ->
  let m = machine in
  let cache = Cache.create m.Machine.caches in
  let line = Machine.line_bytes m in
  let hit_lat =
    Array.of_list (List.map (fun g -> g.Machine.hit_latency_ns) m.Machine.caches)
  in
  let n_levels = Array.length hit_lat in
  (* simulated state; all times in nanoseconds *)
  let time_ns = ref 0.0 in
  let core_j = ref 0.0 and uncore_j = ref 0.0 and dram_j = ref 0.0 in
  let uncore_time_weighted = ref 0.0 in
  (* [cap = None]: governor free-running; [Some f]: uncore pinned at f —
     PolyUFC writes both UFS limits, pinning the clock for the region *)
  let cap = ref None in
  let f_u =
    ref
      (match uncore with
      | `Fixed f -> clamp m.Machine.uncore_min_ghz m.Machine.uncore_max_ghz f
      | `Governor -> m.Machine.uncore_min_ghz)
  in
  let parallel_depth = ref 0 in
  let cap_switches = ref 0 in
  let gov_switches = ref 0 in
  let total_flops = ref 0 in
  let dram_event_bytes = ref 0 in
  (* governor state: DRAM bytes seen since the last adjustment *)
  let gov_last_t = ref 0.0 in
  let gov_bytes = ref 0 in
  let governor_interval_ns = governor_interval_us *. 1e3 in
  (* advance simulated time, integrating power over the interval *)
  let advance dt_ns =
    if dt_ns > 0.0 then begin
      time_ns := !time_ns +. dt_ns;
      let threads =
        if !parallel_depth > 0 then float_of_int m.Machine.threads else 1.0
      in
      core_j := !core_j +. (m.Machine.core_w_active *. threads *. dt_ns *. 1e-9);
      uncore_j := !uncore_j +. (Machine.uncore_power_w m ~f_u:!f_u *. dt_ns *. 1e-9);
      uncore_time_weighted := !uncore_time_weighted +. (!f_u *. dt_ns)
    end
  in
  let governor_tick () =
    if !cap = None && !time_ns -. !gov_last_t >= governor_interval_ns then begin
      let dt = !time_ns -. !gov_last_t in
      let bw_gbps = float_of_int !gov_bytes /. dt in
      (* demand ratio against the capability at the current clock; the
         driver targets the top of the range under any sustained memory
         activity (over-provisioning CB phases, cf. Sec. I) but ramps with
         control-loop latency and decays between phases *)
      let capacity = Machine.dram_bw_gbps m ~f_u:!f_u in
      let demand = bw_gbps /. Float.max 1e-9 capacity in
      let target =
        if demand > 0.01 then m.Machine.uncore_max_ghz
        else
          m.Machine.uncore_min_ghz
          +. ((m.Machine.uncore_max_ghz -. m.Machine.uncore_min_ghz)
             *. (demand /. 0.01))
      in
      let next =
        if target > !f_u then !f_u +. ((target -. !f_u) *. 0.5)
        else !f_u -. ((!f_u -. target) *. 0.15)
      in
      let next = clamp m.Machine.uncore_min_ghz m.Machine.uncore_max_ghz next in
      if Float.abs (next -. !f_u) > 1e-9 then incr gov_switches;
      f_u := next;
      gov_last_t := !time_ns;
      gov_bytes := 0
    end
  in
  let apply_cap freq =
    incr cap_switches;
    (* the MSR write stalls the pipeline for the cap-switch latency; the
       stall is integrated at the pre-switch clock — the uncore is still
       running at the old frequency while the write retires *)
    advance (m.Machine.cap_switch_us *. 1e3);
    let f = clamp m.Machine.uncore_min_ghz m.Machine.uncore_max_ghz freq in
    cap := Some f;
    f_u := f;
    (* restart the governor's accounting window: bytes observed before
       the switch were transferred at the old clock, and a later tick
       must not evaluate them against the new clock's capacity *)
    gov_last_t := !time_ns;
    gov_bytes := 0
  in
  let thread_factor () =
    if !parallel_depth > 0 then float_of_int m.Machine.threads else 1.0
  in
  let on_access ~stmt:_ ~array:_ ~addr ~bytes:_ ~is_write =
    let o = Cache.access cache ~addr ~is_write in
    let tf = thread_factor () in
    if o.Cache.hit_level < n_levels then
      advance (hit_lat.(o.Cache.hit_level) /. m.Machine.mlp /. tf)
    else begin
      (* DRAM: latency amortized by MLP, bandwidth shared by all threads *)
      let lat = Machine.dram_latency_ns m ~f_u:!f_u /. m.Machine.mlp /. tf in
      let bw_t =
        float_of_int line /. Machine.dram_bw_gbps m ~f_u:!f_u
      in
      advance (Float.max lat bw_t);
      dram_j := !dram_j +. (m.Machine.dram_nj_per_line *. 1e-9);
      gov_bytes := !gov_bytes + line;
      dram_event_bytes := !dram_event_bytes + line
    end;
    if o.Cache.dram_writeback then begin
      (* buffered write-back: occupies bandwidth, no added latency *)
      let bw_t = float_of_int line /. Machine.dram_bw_gbps m ~f_u:!f_u in
      advance (bw_t *. 0.5);
      dram_j := !dram_j +. (m.Machine.dram_nj_per_line *. 1e-9);
      gov_bytes := !gov_bytes + line;
      dram_event_bytes := !dram_event_bytes + line
    end;
    (match uncore with `Governor -> governor_tick () | `Fixed _ -> ())
  in
  let on_stmt ~stmt:_ ~flops =
    total_flops := !total_flops + flops;
    advance (float_of_int flops *. m.Machine.flop_ns /. thread_factor ())
  in
  let on_loop_enter ~var ~depth ~parallel =
    if parallel then incr parallel_depth;
    if depth = 0 then
      match List.assoc_opt var caps with
      | Some f -> apply_cap f
      | None -> ()
  in
  (* track parallel region exit *)
  let parallel_stack = ref [] in
  let cb =
    {
      Interp.on_access;
      on_stmt;
      on_loop_enter =
        (fun ~var ~depth ~parallel ->
          parallel_stack := parallel :: !parallel_stack;
          on_loop_enter ~var ~depth ~parallel);
      on_loop_exit =
        (fun ~var:_ ~depth:_ ->
          match !parallel_stack with
          | p :: rest ->
            parallel_stack := rest;
            if p then decr parallel_depth
          | [] -> ());
    }
  in
  let _res = Interp.run ~compute:false prog ~param_values cb in
  (* final dirty lines drain to DRAM *)
  let resident_dirty = Cache.flush_writebacks cache in
  let drain_bytes = resident_dirty * line in
  let bw_t = float_of_int drain_bytes /. Machine.dram_bw_gbps m ~f_u:!f_u in
  advance (bw_t *. 0.5);
  dram_j := !dram_j +. (float_of_int resident_dirty *. m.Machine.dram_nj_per_line *. 1e-9);
  dram_event_bytes := !dram_event_bytes + drain_bytes;
  let time_s = !time_ns *. 1e-9 in
  let static_j = m.Machine.p_static_w *. time_s in
  let energy_j = !core_j +. !uncore_j +. !dram_j +. static_j in
  let dram_lines = Cache.dram_reads cache in
  (* bulk-report the event counts tracked locally during simulation; the
     per-access path stays telemetry-free *)
  if Telemetry.is_enabled () then begin
    Telemetry.add c_cap_switches !cap_switches;
    Telemetry.add c_gov_switches !gov_switches;
    Telemetry.add c_dram_lines dram_lines;
    List.iteri
      (fun i (g : Machine.cache_geometry) ->
        let st = (Cache.stats cache).(i) in
        let level = String.lowercase_ascii g.Machine.level_name in
        Telemetry.count ~by:st.Cache.hits ("hwsim." ^ level ^ "_hits");
        Telemetry.count ~by:st.Cache.misses ("hwsim." ^ level ^ "_misses"))
      m.Machine.caches;
    Telemetry.observe "hwsim.time_s" time_s;
    Telemetry.observe "hwsim.energy_j" energy_j
  end;
  {
    time_s;
    energy_j;
    edp = energy_j *. time_s;
    avg_power_w = (if time_s > 0.0 then energy_j /. time_s else 0.0);
    avg_uncore_ghz =
      (if !time_ns > 0.0 then !uncore_time_weighted /. !time_ns
       else !f_u);
    zones = { core_j = !core_j; uncore_j = !uncore_j; dram_j = !dram_j; static_j };
    flops = !total_flops;
    dram_lines;
    dram_bytes = !dram_event_bytes;
    cache_stats = Cache.stats cache;
    cap_switches = !cap_switches;
    achieved_gflops =
      (if time_s > 0.0 then float_of_int !total_flops /. time_s /. 1e9 else 0.0);
    achieved_bw_gbps =
      (if time_s > 0.0 then
         float_of_int (dram_lines * line) /. time_s /. 1e9
       else 0.0);
  }

let run ~machine ~uncore ?(caps = []) ?(governor_interval_us = 100.0)
    prog ~param_values =
  run_single ~machine ~uncore ~caps ~governor_interval_us prog ~param_values

(* --- tenant configuration ------------------------------------------- *)

type tenant = {
  t_name : string;
  t_prog : Ir.t;
  t_params : (string * int) list;
  t_cores : int;
  t_weight : float;
  t_caps : cap_schedule;
}

let tenant ?(cores = 0) ?(weight = 1.0) ?(caps = []) ?(param_values = [])
    ~name prog =
  if weight <= 0.0 then invalid_arg "Sim.tenant: weight must be positive";
  if cores < 0 then invalid_arg "Sim.tenant: cores must be non-negative";
  {
    t_name = name;
    t_prog = prog;
    t_params = param_values;
    t_cores = cores;
    t_weight = weight;
    t_caps = caps;
  }

type config = {
  machine : Machine.t;
  uncore : uncore_policy;
  governor_interval_us : float;
  tenants : tenant list;
}

let config ~machine ~uncore ?(governor_interval_us = 100.0) tenants =
  if tenants = [] then invalid_arg "Sim.config: at least one tenant";
  { machine; uncore; governor_interval_us; tenants }

type tenant_outcome = {
  o_tenant : string;
  o_time_s : float;
  o_energy_j : float;
  o_flops : int;
  o_accesses : int;
  o_dram_lines : int;
  o_dram_bytes : int;
  o_gflops : float;
  o_bw_gbps : float;
  o_solo_time_s : float;
  o_slowdown : float;
}

type multi_outcome = {
  combined : outcome;
  per_tenant : tenant_outcome list;
  n_tenants : int;
}

(* --- multi-tenant interleaving -------------------------------------- *)

(* Each tenant's trace is a coroutine: the interpreter's push callbacks
   perform a [Yield] effect per event, and the scheduler resumes the
   tenant whose local clock is furthest behind — an event-driven merge
   of N traces over one simulated timeline.  Upper cache levels are
   private per tenant; the LLC, the DRAM channel and the uncore clock
   are shared, which is where the interference this simulator exists to
   expose comes from. *)

type ev =
  | E_access of { addr : int; is_write : bool }
  | E_flops of int
  | E_enter of { var : string; depth : int; parallel : bool }
  | E_exit

type _ Effect.t += Yield : ev -> unit Effect.t

type step =
  | Pending of ev * (unit, step) Effect.Deep.continuation
  | Finished

let start_trace prog ~param_values : step =
  let open Effect.Deep in
  let cb =
    {
      Interp.on_access =
        (fun ~stmt:_ ~array:_ ~addr ~bytes:_ ~is_write ->
          Effect.perform (Yield (E_access { addr; is_write })));
      on_stmt =
        (fun ~stmt:_ ~flops -> Effect.perform (Yield (E_flops flops)));
      on_loop_enter =
        (fun ~var ~depth ~parallel ->
          Effect.perform (Yield (E_enter { var; depth; parallel })));
      on_loop_exit = (fun ~var:_ ~depth:_ -> Effect.perform (Yield E_exit));
    }
  in
  match_with
    (fun () -> ignore (Interp.run ~compute:false prog ~param_values cb))
    ()
    {
      retc = (fun () -> Finished);
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Yield ev ->
            Some
              (fun (k : (a, step) continuation) ->
                (Pending (ev, k) : step))
          | _ -> None);
    }

(* tenants live in disjoint address spaces: a process-sized stride keeps
   their lines from aliasing in the shared LLC's index function *)
let addr_stride = 1 lsl 36

type tstate = {
  s_tenant : tenant;
  s_base : int;
  s_cores : int;
  s_priv : Cache.t option;
  mutable s_next : step;
  mutable s_time : float; (* local clock, ns *)
  mutable s_pdepth : int;
  mutable s_pstack : bool list;
  mutable s_flops : int;
  mutable s_accesses : int;
  mutable s_dram_lines : int;
  mutable s_dram_bytes : int;
  mutable s_core_j : float;
  mutable s_dram_j : float;
  mutable s_done : bool;
}

let run_multi cfg ~solo =
  Telemetry.tick c_multi_runs;
  let n = List.length cfg.tenants in
  Telemetry.add c_tenants n;
  Telemetry.with_span "hwsim.simulate"
    ~args:
      [
        ("tenants", string_of_int n);
        ("machine", cfg.machine.Machine.name);
        ( "uncore",
          match cfg.uncore with `Fixed _ -> "fixed" | `Governor -> "governor" );
      ]
  @@ fun () ->
  let m = cfg.machine in
  let line = Machine.line_bytes m in
  let geoms = Array.of_list m.Machine.caches in
  let n_levels = Array.length geoms in
  let hit_lat = Array.map (fun g -> g.Machine.hit_latency_ns) geoms in
  let priv_geoms = Array.to_list (Array.sub geoms 0 (n_levels - 1)) in
  let llc = Cache.create [ geoms.(n_levels - 1) ] in
  let fair_cores = max 1 (m.Machine.threads / n) in
  let states =
    Array.of_list
      (List.mapi
         (fun i t ->
           {
             s_tenant = t;
             s_base = i * addr_stride;
             s_cores = (if t.t_cores > 0 then t.t_cores else fair_cores);
             s_priv =
               (if priv_geoms = [] then None else Some (Cache.create priv_geoms));
             s_next = start_trace t.t_prog ~param_values:t.t_params;
             s_time = 0.0;
             s_pdepth = 0;
             s_pstack = [];
             s_flops = 0;
             s_accesses = 0;
             s_dram_lines = 0;
             s_dram_bytes = 0;
             s_core_j = 0.0;
             s_dram_j = 0.0;
             s_done = false;
           })
         cfg.tenants)
  in
  let n_active = ref n in
  (* shared uncore clock + governor, as in the single-kernel engine *)
  let cap = ref None in
  let f_u =
    ref
      (match cfg.uncore with
      | `Fixed f -> clamp m.Machine.uncore_min_ghz m.Machine.uncore_max_ghz f
      | `Governor -> m.Machine.uncore_min_ghz)
  in
  let cap_switches = ref 0 in
  let gov_switches = ref 0 in
  let gov_last_g = ref 0.0 in
  let gov_bytes = ref 0 in
  let governor_interval_ns = cfg.governor_interval_us *. 1e3 in
  (* uncore energy integrates over the global timeline: the minimum of
     the unfinished tenants' clocks, which is non-decreasing because the
     scheduler always steps the tenant furthest behind *)
  let last_g = ref 0.0 in
  let uncore_j = ref 0.0 in
  let uncore_tw = ref 0.0 in
  let gmin () =
    let g = ref Float.infinity in
    Array.iter (fun ts -> if not ts.s_done && ts.s_time < !g then g := ts.s_time) states;
    if !g = Float.infinity then !last_g else !g
  in
  (* exact for piecewise-constant f_u: called right before every clock
     change, and once more at the end of the run *)
  let sync_global () =
    let g = gmin () in
    if g > !last_g then begin
      let dt = g -. !last_g in
      uncore_j := !uncore_j +. (Machine.uncore_power_w m ~f_u:!f_u *. dt *. 1e-9);
      uncore_tw := !uncore_tw +. (!f_u *. dt);
      last_g := g
    end
  in
  let governor_tick () =
    let g = gmin () in
    if !cap = None && g -. !gov_last_g >= governor_interval_ns then begin
      let dt = g -. !gov_last_g in
      let bw_gbps = float_of_int !gov_bytes /. dt in
      let capacity = Machine.dram_bw_gbps m ~f_u:!f_u in
      let demand = bw_gbps /. Float.max 1e-9 capacity in
      let target =
        if demand > 0.01 then m.Machine.uncore_max_ghz
        else
          m.Machine.uncore_min_ghz
          +. ((m.Machine.uncore_max_ghz -. m.Machine.uncore_min_ghz)
             *. (demand /. 0.01))
      in
      let next =
        if target > !f_u then !f_u +. ((target -. !f_u) *. 0.5)
        else !f_u -. ((!f_u -. target) *. 0.15)
      in
      let next = clamp m.Machine.uncore_min_ghz m.Machine.uncore_max_ghz next in
      if Float.abs (next -. !f_u) > 1e-9 then begin
        incr gov_switches;
        sync_global ();
        f_u := next
      end;
      gov_last_g := g;
      gov_bytes := 0
    end
  in
  let tf ts = if ts.s_pdepth > 0 then float_of_int ts.s_cores else 1.0 in
  let advance_t ts dt_ns =
    if dt_ns > 0.0 then begin
      ts.s_time <- ts.s_time +. dt_ns;
      ts.s_core_j <-
        ts.s_core_j +. (m.Machine.core_w_active *. tf ts *. dt_ns *. 1e-9)
    end
  in
  (* the DRAM channel is shared: each unfinished tenant gets an equal
     slice of the bandwidth available at the current uncore clock *)
  let shared_bw () =
    Machine.dram_bw_gbps m ~f_u:!f_u /. float_of_int (max 1 !n_active)
  in
  let dram_fill ts tfv =
    let lat = Machine.dram_latency_ns m ~f_u:!f_u /. m.Machine.mlp /. tfv in
    let bw_t = float_of_int line /. shared_bw () in
    advance_t ts (Float.max lat bw_t);
    ts.s_dram_lines <- ts.s_dram_lines + 1;
    ts.s_dram_bytes <- ts.s_dram_bytes + line;
    ts.s_dram_j <- ts.s_dram_j +. (m.Machine.dram_nj_per_line *. 1e-9);
    gov_bytes := !gov_bytes + line
  in
  let dram_writeback ts =
    (* buffered write-back: occupies the shared channel, no added latency *)
    let bw_t = float_of_int line /. shared_bw () in
    advance_t ts (bw_t *. 0.5);
    ts.s_dram_bytes <- ts.s_dram_bytes + line;
    ts.s_dram_j <- ts.s_dram_j +. (m.Machine.dram_nj_per_line *. 1e-9);
    gov_bytes := !gov_bytes + line
  in
  let apply_cap ts freq =
    incr cap_switches;
    sync_global ();
    (* the MSR write stalls the issuing tenant; the clock change is
       global and takes effect once the write retires *)
    advance_t ts (m.Machine.cap_switch_us *. 1e3);
    let f = clamp m.Machine.uncore_min_ghz m.Machine.uncore_max_ghz freq in
    cap := Some f;
    f_u := f;
    gov_last_g := gmin ();
    gov_bytes := 0
  in
  let llc_access ts ~addr ~is_write ~tfv =
    let o = Cache.access llc ~addr ~is_write in
    if o.Cache.hit_level < 1 then
      advance_t ts (hit_lat.(n_levels - 1) /. m.Machine.mlp /. tfv)
    else dram_fill ts tfv;
    if o.Cache.dram_writeback then dram_writeback ts
  in
  let handle_access ts ~addr:addr0 ~is_write =
    ts.s_accesses <- ts.s_accesses + 1;
    let tfv = tf ts in
    let addr = addr0 + ts.s_base in
    (match ts.s_priv with
    | Some pc ->
      let o = Cache.access pc ~addr ~is_write in
      if o.Cache.hit_level < n_levels - 1 then
        advance_t ts (hit_lat.(o.Cache.hit_level) /. m.Machine.mlp /. tfv)
      else llc_access ts ~addr ~is_write:false ~tfv;
      (* a dirty line displaced from the private hierarchy drains through
         the shared write buffer *)
      if o.Cache.dram_writeback then dram_writeback ts
    | None -> llc_access ts ~addr ~is_write ~tfv);
    match cfg.uncore with `Governor -> governor_tick () | `Fixed _ -> ()
  in
  let handle_event ts = function
    | E_access { addr; is_write } -> handle_access ts ~addr ~is_write
    | E_flops k ->
      ts.s_flops <- ts.s_flops + k;
      advance_t ts (float_of_int k *. m.Machine.flop_ns /. tf ts)
    | E_enter { var; depth; parallel } ->
      ts.s_pstack <- parallel :: ts.s_pstack;
      if parallel then ts.s_pdepth <- ts.s_pdepth + 1;
      if depth = 0 then (
        match List.assoc_opt var ts.s_tenant.t_caps with
        | Some f -> apply_cap ts f
        | None -> ())
    | E_exit -> (
      match ts.s_pstack with
      | p :: rest ->
        ts.s_pstack <- rest;
        if p then ts.s_pdepth <- ts.s_pdepth - 1
      | [] -> ())
  in
  let finish ts =
    (* the tenant's private dirty lines drain to DRAM as it retires *)
    (match ts.s_priv with
    | Some pc ->
      let dirty = Cache.flush_writebacks pc in
      if dirty > 0 then begin
        let bytes = dirty * line in
        let bw_t = float_of_int bytes /. shared_bw () in
        advance_t ts (bw_t *. 0.5);
        ts.s_dram_bytes <- ts.s_dram_bytes + bytes;
        ts.s_dram_j <-
          ts.s_dram_j
          +. (float_of_int dirty *. m.Machine.dram_nj_per_line *. 1e-9);
        gov_bytes := !gov_bytes + bytes
      end
    | None -> ());
    ts.s_done <- true;
    decr n_active
  in
  let pick () =
    let best = ref (-1) in
    Array.iteri
      (fun i ts ->
        if not ts.s_done then
          if !best < 0 || ts.s_time < states.(!best).s_time then best := i)
      states;
    states.(!best)
  in
  while !n_active > 0 do
    let ts = pick () in
    match ts.s_next with
    | Finished -> finish ts
    | Pending (ev, k) ->
      handle_event ts ev;
      ts.s_next <- Effect.Deep.continue k ()
  done;
  (* drain the shared LLC's resident dirty lines at the final clock *)
  let llc_dirty = Cache.flush_writebacks llc in
  let drain_bytes = llc_dirty * line in
  let drain_ns =
    float_of_int drain_bytes /. Machine.dram_bw_gbps m ~f_u:!f_u *. 0.5
  in
  let drain_j = float_of_int llc_dirty *. m.Machine.dram_nj_per_line *. 1e-9 in
  let wall_ns =
    Array.fold_left (fun acc ts -> Float.max acc ts.s_time) 0.0 states
    +. drain_ns
  in
  (* close the uncore integral out to the end of the run *)
  if wall_ns > !last_g then begin
    let dt = wall_ns -. !last_g in
    uncore_j := !uncore_j +. (Machine.uncore_power_w m ~f_u:!f_u *. dt *. 1e-9);
    uncore_tw := !uncore_tw +. (!f_u *. dt);
    last_g := wall_ns
  end;
  let wall_s = wall_ns *. 1e-9 in
  let static_j = m.Machine.p_static_w *. wall_s in
  let core_j = Array.fold_left (fun a ts -> a +. ts.s_core_j) 0.0 states in
  let dram_j =
    Array.fold_left (fun a ts -> a +. ts.s_dram_j) 0.0 states +. drain_j
  in
  let energy_j = core_j +. !uncore_j +. dram_j +. static_j in
  let total_flops = Array.fold_left (fun a ts -> a + ts.s_flops) 0 states in
  let dram_lines = Array.fold_left (fun a ts -> a + ts.s_dram_lines) 0 states in
  let dram_bytes =
    Array.fold_left (fun a ts -> a + ts.s_dram_bytes) 0 states + drain_bytes
  in
  let cache_stats =
    Array.init n_levels (fun i ->
        if i = n_levels - 1 then (Cache.stats llc).(0)
        else
          Array.fold_left
            (fun (acc : Cache.level_stats) ts ->
              match ts.s_priv with
              | None -> acc
              | Some pc ->
                let s = (Cache.stats pc).(i) in
                {
                  Cache.hits = acc.Cache.hits + s.Cache.hits;
                  misses = acc.Cache.misses + s.Cache.misses;
                  evictions = acc.Cache.evictions + s.Cache.evictions;
                  writebacks = acc.Cache.writebacks + s.Cache.writebacks;
                })
            { Cache.hits = 0; misses = 0; evictions = 0; writebacks = 0 }
            states)
  in
  if Telemetry.is_enabled () then begin
    Telemetry.add c_cap_switches !cap_switches;
    Telemetry.add c_gov_switches !gov_switches;
    Telemetry.add c_dram_lines dram_lines;
    Telemetry.observe "hwsim.time_s" wall_s;
    Telemetry.observe "hwsim.energy_j" energy_j
  end;
  let combined =
    {
      time_s = wall_s;
      energy_j;
      edp = energy_j *. wall_s;
      avg_power_w = (if wall_s > 0.0 then energy_j /. wall_s else 0.0);
      avg_uncore_ghz =
        (if wall_ns > 0.0 then !uncore_tw /. wall_ns else !f_u);
      zones = { core_j; uncore_j = !uncore_j; dram_j; static_j };
      flops = total_flops;
      dram_lines;
      dram_bytes;
      cache_stats;
      cap_switches = !cap_switches;
      achieved_gflops =
        (if wall_s > 0.0 then float_of_int total_flops /. wall_s /. 1e9
         else 0.0);
      achieved_bw_gbps =
        (if wall_s > 0.0 then
           float_of_int (dram_lines * line) /. wall_s /. 1e9
         else 0.0);
    }
  in
  (* shared energy (uncore + static) is attributed by residency: a
     tenant that occupies the machine longer answers for more of the
     always-on power *)
  let busy_total = Array.fold_left (fun a ts -> a +. ts.s_time) 0.0 states in
  let shared_j = !uncore_j +. static_j +. drain_j in
  let per_tenant =
    Array.to_list
      (Array.map
         (fun ts ->
           let time_s = ts.s_time *. 1e-9 in
           let share =
             if busy_total > 0.0 then ts.s_time /. busy_total
             else 1.0 /. float_of_int n
           in
           let solo_time_s =
             if solo then
               (run_single ~machine:m ~uncore:cfg.uncore
                  ~caps:ts.s_tenant.t_caps
                  ~governor_interval_us:cfg.governor_interval_us
                  ts.s_tenant.t_prog ~param_values:ts.s_tenant.t_params)
                 .time_s
             else Float.nan
           in
           {
             o_tenant = ts.s_tenant.t_name;
             o_time_s = time_s;
             o_energy_j = ts.s_core_j +. ts.s_dram_j +. (shared_j *. share);
             o_flops = ts.s_flops;
             o_accesses = ts.s_accesses;
             o_dram_lines = ts.s_dram_lines;
             o_dram_bytes = ts.s_dram_bytes;
             o_gflops =
               (if time_s > 0.0 then float_of_int ts.s_flops /. time_s /. 1e9
                else 0.0);
             o_bw_gbps =
               (if time_s > 0.0 then
                  float_of_int ts.s_dram_bytes /. time_s /. 1e9
                else 0.0);
             o_solo_time_s = solo_time_s;
             o_slowdown =
               (if solo && solo_time_s > 0.0 then time_s /. solo_time_s
                else Float.nan);
           })
         states)
  in
  { combined; per_tenant; n_tenants = n }

let simulate ?(solo = true) cfg =
  match cfg.tenants with
  | [] -> invalid_arg "Sim.simulate: empty tenant list"
  | [ t ] ->
    let o =
      run_single ~machine:cfg.machine ~uncore:cfg.uncore ~caps:t.t_caps
        ~governor_interval_us:cfg.governor_interval_us t.t_prog
        ~param_values:t.t_params
    in
    let accesses =
      if Array.length o.cache_stats > 0 then
        o.cache_stats.(0).Cache.hits + o.cache_stats.(0).Cache.misses
      else 0
    in
    {
      combined = o;
      per_tenant =
        [
          {
            o_tenant = t.t_name;
            o_time_s = o.time_s;
            o_energy_j = o.energy_j;
            o_flops = o.flops;
            o_accesses = accesses;
            o_dram_lines = o.dram_lines;
            o_dram_bytes = o.dram_bytes;
            o_gflops = o.achieved_gflops;
            o_bw_gbps = o.achieved_bw_gbps;
            o_solo_time_s = o.time_s;
            o_slowdown = 1.0;
          };
        ];
      n_tenants = 1;
    }
  | _ -> run_multi cfg ~solo

let run_one cfg = (simulate ~solo:false cfg).combined

let pp_outcome ppf o =
  Format.fprintf ppf
    "time=%.3g s energy=%.3g J edp=%.3g avg_power=%.1f W avg_uncore=%.2f GHz \
     gflops=%.2f bw=%.2f GB/s dram_lines=%d cap_switches=%d"
    o.time_s o.energy_j o.edp o.avg_power_w o.avg_uncore_ghz o.achieved_gflops
    o.achieved_bw_gbps o.dram_lines o.cap_switches

let pp_tenant_outcome ppf t =
  Format.fprintf ppf
    "%s: time=%.3g s energy=%.3g J gflops=%.2f bw=%.2f GB/s slowdown=%.2fx"
    t.o_tenant t.o_time_s t.o_energy_j t.o_gflops t.o_bw_gbps t.o_slowdown

let pp_multi_outcome ppf mo =
  Format.fprintf ppf "@[<v>%d tenants: %a" mo.n_tenants pp_outcome mo.combined;
  List.iter (fun t -> Format.fprintf ppf "@,  %a" pp_tenant_outcome t)
    mo.per_tenant;
  Format.fprintf ppf "@]"
