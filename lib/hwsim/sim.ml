open Poly_ir

type uncore_policy = [ `Fixed of float | `Governor ]

type zone_energy = {
  core_j : float;
  uncore_j : float;
  dram_j : float;
  static_j : float;
}

type outcome = {
  time_s : float;
  energy_j : float;
  edp : float;
  avg_power_w : float;
  avg_uncore_ghz : float;
  zones : zone_energy;
  flops : int;
  dram_lines : int;
  dram_bytes : int;
  cache_stats : Cache.level_stats array;
  cap_switches : int;
  achieved_gflops : float;
  achieved_bw_gbps : float;
}

type cap_schedule = (string * float) list

let c_runs = Telemetry.counter "hwsim.runs"
let c_cap_switches = Telemetry.counter "hwsim.cap_switches"
let c_gov_switches = Telemetry.counter "hwsim.governor_switches"
let c_dram_lines = Telemetry.counter "hwsim.dram_lines"

let clamp lo hi x = Float.max lo (Float.min hi x)

let run ~machine ~uncore ?(caps = []) ?(governor_interval_us = 100.0)
    prog ~param_values =
  Telemetry.tick c_runs;
  Telemetry.with_span "hwsim.run"
    ~args:
      [
        ("prog", prog.Ir.prog_name);
        ("machine", machine.Machine.name);
        ("uncore", match uncore with `Fixed _ -> "fixed" | `Governor -> "governor");
      ]
  @@ fun () ->
  let m = machine in
  let cache = Cache.create m.Machine.caches in
  let line = Machine.line_bytes m in
  let hit_lat =
    Array.of_list (List.map (fun g -> g.Machine.hit_latency_ns) m.Machine.caches)
  in
  let n_levels = Array.length hit_lat in
  (* simulated state; all times in nanoseconds *)
  let time_ns = ref 0.0 in
  let core_j = ref 0.0 and uncore_j = ref 0.0 and dram_j = ref 0.0 in
  let uncore_time_weighted = ref 0.0 in
  (* [cap = None]: governor free-running; [Some f]: uncore pinned at f —
     PolyUFC writes both UFS limits, pinning the clock for the region *)
  let cap = ref None in
  let f_u =
    ref
      (match uncore with
      | `Fixed f -> clamp m.Machine.uncore_min_ghz m.Machine.uncore_max_ghz f
      | `Governor -> m.Machine.uncore_min_ghz)
  in
  let parallel_depth = ref 0 in
  let cap_switches = ref 0 in
  let gov_switches = ref 0 in
  let total_flops = ref 0 in
  let dram_event_bytes = ref 0 in
  (* governor state: DRAM bytes seen since the last adjustment *)
  let gov_last_t = ref 0.0 in
  let gov_bytes = ref 0 in
  let governor_interval_ns = governor_interval_us *. 1e3 in
  (* advance simulated time, integrating power over the interval *)
  let advance dt_ns =
    if dt_ns > 0.0 then begin
      time_ns := !time_ns +. dt_ns;
      let threads =
        if !parallel_depth > 0 then float_of_int m.Machine.threads else 1.0
      in
      core_j := !core_j +. (m.Machine.core_w_active *. threads *. dt_ns *. 1e-9);
      uncore_j := !uncore_j +. (Machine.uncore_power_w m ~f_u:!f_u *. dt_ns *. 1e-9);
      uncore_time_weighted := !uncore_time_weighted +. (!f_u *. dt_ns)
    end
  in
  let governor_tick () =
    if !cap = None && !time_ns -. !gov_last_t >= governor_interval_ns then begin
      let dt = !time_ns -. !gov_last_t in
      let bw_gbps = float_of_int !gov_bytes /. dt in
      (* demand ratio against the capability at the current clock; the
         driver targets the top of the range under any sustained memory
         activity (over-provisioning CB phases, cf. Sec. I) but ramps with
         control-loop latency and decays between phases *)
      let capacity = Machine.dram_bw_gbps m ~f_u:!f_u in
      let demand = bw_gbps /. Float.max 1e-9 capacity in
      let target =
        if demand > 0.01 then m.Machine.uncore_max_ghz
        else
          m.Machine.uncore_min_ghz
          +. ((m.Machine.uncore_max_ghz -. m.Machine.uncore_min_ghz)
             *. (demand /. 0.01))
      in
      let next =
        if target > !f_u then !f_u +. ((target -. !f_u) *. 0.5)
        else !f_u -. ((!f_u -. target) *. 0.15)
      in
      let next = clamp m.Machine.uncore_min_ghz m.Machine.uncore_max_ghz next in
      if Float.abs (next -. !f_u) > 1e-9 then incr gov_switches;
      f_u := next;
      gov_last_t := !time_ns;
      gov_bytes := 0
    end
  in
  let apply_cap freq =
    incr cap_switches;
    (* the MSR write stalls the pipeline for the cap-switch latency *)
    advance (m.Machine.cap_switch_us *. 1e3);
    let f = clamp m.Machine.uncore_min_ghz m.Machine.uncore_max_ghz freq in
    cap := Some f;
    f_u := f
  in
  let thread_factor () =
    if !parallel_depth > 0 then float_of_int m.Machine.threads else 1.0
  in
  let on_access ~stmt:_ ~array:_ ~addr ~bytes:_ ~is_write =
    let o = Cache.access cache ~addr ~is_write in
    let tf = thread_factor () in
    if o.Cache.hit_level < n_levels then
      advance (hit_lat.(o.Cache.hit_level) /. m.Machine.mlp /. tf)
    else begin
      (* DRAM: latency amortized by MLP, bandwidth shared by all threads *)
      let lat = Machine.dram_latency_ns m ~f_u:!f_u /. m.Machine.mlp /. tf in
      let bw_t =
        float_of_int line /. Machine.dram_bw_gbps m ~f_u:!f_u
      in
      advance (Float.max lat bw_t);
      dram_j := !dram_j +. (m.Machine.dram_nj_per_line *. 1e-9);
      gov_bytes := !gov_bytes + line;
      dram_event_bytes := !dram_event_bytes + line
    end;
    if o.Cache.dram_writeback then begin
      (* buffered write-back: occupies bandwidth, no added latency *)
      let bw_t = float_of_int line /. Machine.dram_bw_gbps m ~f_u:!f_u in
      advance (bw_t *. 0.5);
      dram_j := !dram_j +. (m.Machine.dram_nj_per_line *. 1e-9);
      gov_bytes := !gov_bytes + line;
      dram_event_bytes := !dram_event_bytes + line
    end;
    (match uncore with `Governor -> governor_tick () | `Fixed _ -> ())
  in
  let on_stmt ~stmt:_ ~flops =
    total_flops := !total_flops + flops;
    advance (float_of_int flops *. m.Machine.flop_ns /. thread_factor ())
  in
  let on_loop_enter ~var ~depth ~parallel =
    if parallel then incr parallel_depth;
    if depth = 0 then
      match List.assoc_opt var caps with
      | Some f -> apply_cap f
      | None -> ()
  in
  let on_loop_exit ~var:_ ~depth:_ = () in
  let on_loop_exit_track ~var ~depth =
    ignore var;
    ignore depth
  in
  ignore on_loop_exit_track;
  (* track parallel region exit *)
  let parallel_stack = ref [] in
  let cb =
    {
      Interp.on_access;
      on_stmt;
      on_loop_enter =
        (fun ~var ~depth ~parallel ->
          parallel_stack := parallel :: !parallel_stack;
          on_loop_enter ~var ~depth ~parallel);
      on_loop_exit =
        (fun ~var ~depth ->
          (match !parallel_stack with
          | p :: rest ->
            parallel_stack := rest;
            if p then decr parallel_depth
          | [] -> ());
          on_loop_exit ~var ~depth);
    }
  in
  let _res = Interp.run ~compute:false prog ~param_values cb in
  (* final dirty lines drain to DRAM *)
  let resident_dirty = Cache.flush_writebacks cache in
  let drain_bytes = resident_dirty * line in
  let bw_t = float_of_int drain_bytes /. Machine.dram_bw_gbps m ~f_u:!f_u in
  advance (bw_t *. 0.5);
  dram_j := !dram_j +. (float_of_int resident_dirty *. m.Machine.dram_nj_per_line *. 1e-9);
  dram_event_bytes := !dram_event_bytes + drain_bytes;
  let time_s = !time_ns *. 1e-9 in
  let static_j = m.Machine.p_static_w *. time_s in
  let energy_j = !core_j +. !uncore_j +. !dram_j +. static_j in
  let dram_lines = Cache.dram_reads cache in
  (* bulk-report the event counts tracked locally during simulation; the
     per-access path stays telemetry-free *)
  if Telemetry.is_enabled () then begin
    Telemetry.add c_cap_switches !cap_switches;
    Telemetry.add c_gov_switches !gov_switches;
    Telemetry.add c_dram_lines dram_lines;
    List.iteri
      (fun i (g : Machine.cache_geometry) ->
        let st = (Cache.stats cache).(i) in
        let level = String.lowercase_ascii g.Machine.level_name in
        Telemetry.count ~by:st.Cache.hits ("hwsim." ^ level ^ "_hits");
        Telemetry.count ~by:st.Cache.misses ("hwsim." ^ level ^ "_misses"))
      m.Machine.caches;
    Telemetry.observe "hwsim.time_s" time_s;
    Telemetry.observe "hwsim.energy_j" energy_j
  end;
  {
    time_s;
    energy_j;
    edp = energy_j *. time_s;
    avg_power_w = (if time_s > 0.0 then energy_j /. time_s else 0.0);
    avg_uncore_ghz =
      (if !time_ns > 0.0 then !uncore_time_weighted /. !time_ns
       else !f_u);
    zones = { core_j = !core_j; uncore_j = !uncore_j; dram_j = !dram_j; static_j };
    flops = !total_flops;
    dram_lines;
    dram_bytes = !dram_event_bytes;
    cache_stats = Cache.stats cache;
    cap_switches = !cap_switches;
    achieved_gflops =
      (if time_s > 0.0 then float_of_int !total_flops /. time_s /. 1e9 else 0.0);
    achieved_bw_gbps =
      (if time_s > 0.0 then
         float_of_int (dram_lines * line) /. time_s /. 1e9
       else 0.0);
  }

let pp_outcome ppf o =
  Format.fprintf ppf
    "time=%.3g s energy=%.3g J edp=%.3g avg_power=%.1f W avg_uncore=%.2f GHz \
     gflops=%.2f bw=%.2f GB/s dram_lines=%d cap_switches=%d"
    o.time_s o.energy_j o.edp o.avg_power_w o.avg_uncore_ghz o.achieved_gflops
    o.achieved_bw_gbps o.dram_lines o.cap_switches
