(* Arbitrating one shared uncore cap from per-tenant roofline demands.

   Each tenant arrives with the cap its *solo* analysis chose (the
   frequency below which its memory-bound phases starve) and the DRAM
   bandwidth it sustains at that cap.  The shared cap must be at least
   the max of the solo caps — the clock is one register, so the most
   demanding tenant sets the floor — and is then raised along the
   machine's cap grid until the aggregate bandwidth demand fits under
   the DRAM roof at that frequency.  When even the top of the range
   cannot carry the sum, the run is infeasible and the remaining
   bandwidth is split by weighted water-filling: tenants whose demand
   fits under their weighted fair share are granted in full, the rest
   share what is left in proportion to their QoS weights, and their
   predicted slowdown is demand/grant. *)

type demand = {
  d_tenant : string;
  d_weight : float;
  d_solo_cap_ghz : float;
  d_bw_gbps : float;
  d_mem_bound : bool;
}

let demand ?(weight = 1.0) ?(mem_bound = true) ~tenant ~solo_cap_ghz
    ~bw_gbps () =
  if weight <= 0.0 then invalid_arg "Cap_arbiter.demand: weight must be positive";
  if bw_gbps < 0.0 then invalid_arg "Cap_arbiter.demand: bw must be non-negative";
  {
    d_tenant = tenant;
    d_weight = weight;
    d_solo_cap_ghz = solo_cap_ghz;
    d_bw_gbps = bw_gbps;
    d_mem_bound = mem_bound;
  }

type grant = {
  g_tenant : string;
  g_bw_gbps : float;  (* bandwidth share granted at the chosen cap *)
  g_satisfied : bool;
  g_slowdown : float;  (* predicted, >= 1.0; 1.0 when satisfied *)
}

type decision = {
  cap_ghz : float;
  feasible : bool;
  agg_bw_gbps : float;
  supply_gbps : float;
  grants : grant list;
}

let c_arbitrations = Telemetry.counter "hwsim.arbitrations"
let c_infeasible = Telemetry.counter "hwsim.arbitrations_infeasible"

(* snap up to the machine's cap grid so the decision is a frequency the
   UFS driver can actually program *)
let snap_up (m : Machine.t) f =
  let f = Float.max m.uncore_min_ghz (Float.min m.uncore_max_ghz f) in
  let steps =
    Float.ceil ((f -. m.uncore_min_ghz) /. m.uncore_step_ghz -. 1e-9)
  in
  Float.min m.uncore_max_ghz
    (Float.round ((m.uncore_min_ghz +. (steps *. m.uncore_step_ghz)) *. 10.)
    /. 10.)

(* weighted water-filling of [supply] over the demands: repeatedly grant
   in full everyone whose demand fits under their weighted fair share of
   what remains, then split the rest by weight *)
let water_fill supply demands =
  let rec fill granted remaining = function
    | [] -> granted
    | pending ->
      let wsum = List.fold_left (fun a d -> a +. d.d_weight) 0.0 pending in
      let sated, starved =
        List.partition
          (fun d -> d.d_bw_gbps <= remaining *. d.d_weight /. wsum +. 1e-12)
          pending
      in
      if sated = [] then
        (* everyone is starved: final weighted split *)
        granted
        @ List.map
            (fun d -> (d, remaining *. d.d_weight /. wsum))
            starved
      else
        fill
          (granted @ List.map (fun d -> (d, d.d_bw_gbps)) sated)
          (remaining
          -. List.fold_left (fun a d -> a +. d.d_bw_gbps) 0.0 sated)
          starved
  in
  fill [] supply demands

let arbitrate ~machine demands =
  if demands = [] then invalid_arg "Cap_arbiter.arbitrate: no demands";
  Telemetry.tick c_arbitrations;
  let m = machine in
  let floor_cap =
    List.fold_left
      (fun acc d -> Float.max acc (snap_up m d.d_solo_cap_ghz))
      m.Machine.uncore_min_ghz demands
  in
  let agg = List.fold_left (fun a d -> a +. d.d_bw_gbps) 0.0 demands in
  (* raise the cap along the grid until the DRAM roof covers the sum *)
  let rec raise_cap f =
    if Machine.dram_bw_gbps m ~f_u:f >= agg then (f, true)
    else if f +. 1e-9 >= m.Machine.uncore_max_ghz then
      (m.Machine.uncore_max_ghz, false)
    else raise_cap (snap_up m (f +. m.Machine.uncore_step_ghz))
  in
  let cap_ghz, feasible = raise_cap floor_cap in
  if not feasible then Telemetry.tick c_infeasible;
  let supply = Machine.dram_bw_gbps m ~f_u:cap_ghz in
  let grants =
    if feasible then
      List.map
        (fun d ->
          {
            g_tenant = d.d_tenant;
            g_bw_gbps = d.d_bw_gbps;
            g_satisfied = true;
            g_slowdown = 1.0;
          })
        demands
    else
      let filled = water_fill supply demands in
      List.map
        (fun d ->
          let granted =
            match List.assq_opt d filled with
            | Some g -> g
            | None -> 0.0
          in
          let satisfied = granted +. 1e-12 >= d.d_bw_gbps in
          {
            g_tenant = d.d_tenant;
            g_bw_gbps = granted;
            g_satisfied = satisfied;
            g_slowdown =
              (if satisfied || not d.d_mem_bound then 1.0
               else if granted > 0.0 then d.d_bw_gbps /. granted
               else Float.infinity);
          })
        demands
  in
  { cap_ghz; feasible; agg_bw_gbps = agg; supply_gbps = supply; grants }

let pp_decision ppf d =
  Format.fprintf ppf "@[<v>cap=%.1f GHz %s (demand %.1f / supply %.1f GB/s)"
    d.cap_ghz
    (if d.feasible then "feasible" else "infeasible")
    d.agg_bw_gbps d.supply_gbps;
  List.iter
    (fun g ->
      Format.fprintf ppf "@,  %s: %.2f GB/s%s" g.g_tenant g.g_bw_gbps
        (if g.g_satisfied then ""
         else Format.asprintf " (degraded %.2fx)" g.g_slowdown))
    d.grants;
  Format.fprintf ppf "@]"
