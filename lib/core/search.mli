(** POLYUFC-SEARCH (Sec. VI-C): selection of an uncore frequency cap.

    A binary search over the machine's 0.1 GHz cap grid, guided by the
    bottleneck characterization: CB kernels search the lower frequencies to
    harvest energy, BB kernels the higher frequencies to protect
    performance.  Moves are admitted by the ε rule — for CB, [f_c] may
    drop only while the predicted performance loss does not exceed the
    bandwidth-capability loss by more than ε; for BB, [f_c] may rise only
    while the performance gain tracks the bandwidth gain within ε.  The
    search terminates when the frequency stabilizes between iterations or
    the space is exhausted, optimizing EDP by default (energy-only and
    performance-only objectives are also supported). *)

type objective = Edp | Energy | Performance

type outcome = {
  cap_ghz : float;
  chosen : Perfmodel.estimate;
  baseline : Perfmodel.estimate;  (** estimate at the maximum frequency *)
  sweep : Perfmodel.estimate list;
  steps : int;  (** frequencies examined by the binary search *)
  boundedness : Roofline.boundedness;
  fidelity : Engine.Fidelity.t;
      (** fidelity of the profile the search ran on: a cap chosen from a
          degraded OI is itself degraded *)
}

val run :
  ?pool:Engine.Pool.t ->
  ?ctx:Engine.Ctx.t ->
  ?fidelity:Engine.Fidelity.t ->
  ?objective:objective ->
  ?epsilon:float ->
  Roofline.constants ->
  Perfmodel.profile ->
  outcome
(** Default [objective] is [Edp], default [epsilon] is [1e-3] (the paper's
    setting, Sec. VII-E).  With a pool (via [?pool] — deprecated — or
    [ctx]), the f_c sweep points are evaluated in parallel on the worker
    pool; the outcome is identical to the sequential one (results are
    re-ordered deterministically).  [fidelity] (default [Exact]) records
    the fidelity of the profile being searched and is copied into the
    outcome.  The search itself is closed-form and cheap: [ctx] is only
    consulted for cancellation / hard (degrade=off) deadlines at entry. *)

val pp_outcome : Format.formatter -> outcome -> unit
