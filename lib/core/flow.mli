(** The PolyUFC compilation flow (Fig. 3), end to end:

    (1) validate the input affine program; (2) Pluto-style tiling and
    parallelization; (3a/3b) PolyUFC-CM cache analysis and OI computation;
    (4) roofline characterization; (5) parametric performance/power
    estimation; (6) POLYUFC-SEARCH for the cap of every top-level loop
    nest, aggregating per-statement caps with the paper's rule ([min] of
    the statement caps for a CB region, [max] for BB), followed by
    redundant-cap removal.

    The result carries the cap schedule consumed by the hardware simulator
    and a compile-time breakdown in the shape of Table IV. *)

(** Canonical span names of the four Fig. 3 phases. [timing] below is a
    view over the telemetry span tree: when telemetry is enabled,
    [compile] records one child span per phase under a ["flow.compile"]
    root, and each [timing] field equals the duration of the
    same-named span. *)

val phase_preprocess : string
val phase_pluto : string
val phase_cm : string
val phase_steps456 : string

type timing = {
  preprocess_s : float;  (** validation + SCoP extraction (stage 2 extract) *)
  pluto_s : float;  (** tiling / parallelization (stage 2 optimizer) *)
  cm_s : float;  (** PolyUFC-CM + OI (stages 3a–3b) *)
  steps456_s : float;  (** characterization, estimation, search (4–6) *)
}

type stmt_decision = {
  stmt_name : string;
  stmt_oi : float;
  stmt_bound : Roofline.boundedness;
  stmt_cap : float;
}

type region_decision = {
  region_var : string;  (** top-level loop variable — the cap key *)
  region_oi : float;
  region_bound : Roofline.boundedness;
  cap_ghz : float;  (** aggregated over statements (min CB / max BB) *)
  search : Search.outcome;  (** region-level search outcome *)
  stmts : stmt_decision list;
}

type compiled = {
  source : Poly_ir.Ir.t;
  optimized : Poly_ir.Ir.t;  (** tiled + parallelized *)
  caps : (string * float) list;
      (** cap schedule after redundant-cap removal, in program order *)
  decisions : region_decision list;
  cm : Cache_model.Model.result;  (** whole-program PolyUFC-CM analysis *)
  profile : Perfmodel.profile;
  timing : timing;
  fidelity : Engine.Fidelity.t;
      (** [Exact] when the cache analysis ran to completion; [Degraded]
          when the budget tripped and the estimator took over *)
}

val compile :
  ?pool:Engine.Pool.t ->
  ?cache:Engine.Rcache.t ->
  ?ctx:Engine.Ctx.t ->
  ?objective:Search.objective ->
  ?epsilon:float ->
  ?tile_size:int ->
  ?tile:bool ->
  ?mode:Cache_model.Model.assoc_mode ->
  machine:Hwsim.Machine.t ->
  rooflines:Roofline.constants ->
  Poly_ir.Ir.t ->
  param_values:(string * int) list ->
  compiled
(** [tile] defaults to [true]; pass [false] when the input is already
    Pluto-optimized.

    Resources come from [ctx] ({!Engine.Ctx.t}); [?pool]/[?cache] are the
    deprecated pre-[Ctx] spellings and are merged into it ([ctx]'s fields
    win).  The pool fans the per-statement domain checks and the
    per-region characterize/estimate/search step out over the workers
    (deterministic: the result is identical to the sequential compile).
    The cache memoizes the PolyUFC-CM analysis — the dominant compile
    cost, Table IV — in the persistent result cache, keyed by (SCoP isl
    export, machine fingerprint, model parameters, schema version).

    A budget in [ctx] governs the CM phase: on exhaustion with policy
    [Interp] the degraded estimator takes over and the result carries
    [fidelity = Degraded]; with [Off] the {!Engine.Budget.Exhausted}
    exception propagates.  A cancellation token is honoured at phase
    boundaries, inside the CM enumeration, and by pooled dispatch
    (in-flight tasks abandon queued work; no partial cache writes). *)

type evaluation = {
  baseline : Hwsim.Sim.outcome;  (** UFS-governor run of the same binary *)
  capped : Hwsim.Sim.outcome;  (** run with the PolyUFC cap schedule *)
  time_gain : float;  (** (t_base − t_cap) / t_base; negative = slowdown *)
  energy_gain : float;
  edp_gain : float;
}

val evaluate :
  machine:Hwsim.Machine.t ->
  compiled ->
  param_values:(string * int) list ->
  evaluation
(** Run both the governor baseline and the capped binary on the simulated
    machine (the paper's Fig. 7 comparison). *)

val pp_compiled : Format.formatter -> compiled -> unit
val pp_evaluation : Format.formatter -> evaluation -> unit
