(* Machine-readable views of the pipeline's result records, built on the
   telemetry JSON emitter. Used by the CLI's --json mode and by the bench
   harness's report files. Non-finite floats (e.g. the OI of a kernel with
   zero DRAM traffic) serialize as null. *)

module J = Telemetry.Json

let f x = J.Float x

let boundedness_str = function Roofline.CB -> "CB" | Roofline.BB -> "BB"

let fidelity_str fd = J.Str (Engine.Fidelity.to_string fd)

let json_of_level_counts (c : Cache_model.Model.level_counts) =
  J.Obj
    [
      ("level", J.Str c.Cache_model.Model.level_name);
      ("presented", J.Int c.Cache_model.Model.presented);
      ("cold", J.Int c.Cache_model.Model.cold);
      ("capacity_conflict", J.Int c.Cache_model.Model.capacity_conflict);
      ("hits", J.Int c.Cache_model.Model.hits);
      ("demand_hits", J.Int c.Cache_model.Model.demand_hits);
      ("misses", J.Int (Cache_model.Model.total_misses c));
    ]

let json_of_cm (r : Cache_model.Model.result) =
  J.Obj
    [
      ("machine", J.Str r.Cache_model.Model.machine.Hwsim.Machine.name);
      ( "mode",
        J.Str
          (match r.Cache_model.Model.mode with
          | Cache_model.Model.Set_associative -> "set-associative"
          | Cache_model.Model.Fully_associative -> "fully-associative") );
      ( "levels",
        J.Arr
          (Array.to_list
             (Array.map json_of_level_counts r.Cache_model.Model.levels)) );
      ( "per_stmt",
        J.Obj
          (List.map
             (fun (name, (sc : Cache_model.Model.stmt_counts)) ->
               ( name,
                 J.Obj
                   [
                     ("flops", J.Int sc.Cache_model.Model.stmt_flops);
                     ("oi", f sc.Cache_model.Model.stmt_oi);
                     ( "levels",
                       J.Arr
                         (Array.to_list
                            (Array.map json_of_level_counts
                               sc.Cache_model.Model.stmt_levels)) );
                   ] ))
             r.Cache_model.Model.per_stmt) );
      ("threads_divisor", J.Int r.Cache_model.Model.threads_divisor);
      ("miss_llc", f r.Cache_model.Model.miss_llc);
      ("q_dram_bytes", f r.Cache_model.Model.q_dram_bytes);
      ("flops", J.Int r.Cache_model.Model.flops);
      ("oi", f r.Cache_model.Model.oi);
      ( "hit_ratios",
        J.Arr (Array.to_list (Array.map f r.Cache_model.Model.hit_ratios)) );
      ("fidelity", fidelity_str r.Cache_model.Model.fidelity);
    ]

let json_of_outcome (o : Hwsim.Sim.outcome) =
  J.Obj
    [
      ("time_s", f o.Hwsim.Sim.time_s);
      ("energy_j", f o.Hwsim.Sim.energy_j);
      ("edp", f o.Hwsim.Sim.edp);
      ("avg_power_w", f o.Hwsim.Sim.avg_power_w);
      ("avg_uncore_ghz", f o.Hwsim.Sim.avg_uncore_ghz);
      ( "zones",
        J.Obj
          [
            ("core_j", f o.Hwsim.Sim.zones.Hwsim.Sim.core_j);
            ("uncore_j", f o.Hwsim.Sim.zones.Hwsim.Sim.uncore_j);
            ("dram_j", f o.Hwsim.Sim.zones.Hwsim.Sim.dram_j);
            ("static_j", f o.Hwsim.Sim.zones.Hwsim.Sim.static_j);
          ] );
      ("flops", J.Int o.Hwsim.Sim.flops);
      ("dram_lines", J.Int o.Hwsim.Sim.dram_lines);
      ("dram_bytes", J.Int o.Hwsim.Sim.dram_bytes);
      ("cap_switches", J.Int o.Hwsim.Sim.cap_switches);
      ("achieved_gflops", f o.Hwsim.Sim.achieved_gflops);
      ("achieved_bw_gbps", f o.Hwsim.Sim.achieved_bw_gbps);
      ( "cache_stats",
        J.Arr
          (Array.to_list
             (Array.map
                (fun (s : Hwsim.Cache.level_stats) ->
                  J.Obj
                    [
                      ("hits", J.Int s.Hwsim.Cache.hits);
                      ("misses", J.Int s.Hwsim.Cache.misses);
                      ("evictions", J.Int s.Hwsim.Cache.evictions);
                      ("writebacks", J.Int s.Hwsim.Cache.writebacks);
                    ])
                o.Hwsim.Sim.cache_stats)) );
    ]

let json_of_timing (t : Flow.timing) =
  J.Obj
    [
      ("preprocess_s", f t.Flow.preprocess_s);
      ("pluto_s", f t.Flow.pluto_s);
      ("cm_s", f t.Flow.cm_s);
      ("steps456_s", f t.Flow.steps456_s);
    ]

let json_of_stmt_decision (d : Flow.stmt_decision) =
  J.Obj
    [
      ("stmt", J.Str d.Flow.stmt_name);
      ("oi", f d.Flow.stmt_oi);
      ("boundedness", J.Str (boundedness_str d.Flow.stmt_bound));
      ("cap_ghz", f d.Flow.stmt_cap);
    ]

let json_of_region_decision (d : Flow.region_decision) =
  J.Obj
    [
      ("region", J.Str d.Flow.region_var);
      ("oi", f d.Flow.region_oi);
      ("boundedness", J.Str (boundedness_str d.Flow.region_bound));
      ("cap_ghz", f d.Flow.cap_ghz);
      ("search_steps", J.Int d.Flow.search.Search.steps);
      ("fidelity", fidelity_str d.Flow.search.Search.fidelity);
      ("stmts", J.Arr (List.map json_of_stmt_decision d.Flow.stmts));
    ]

let json_of_compiled (c : Flow.compiled) =
  J.Obj
    [
      ("program", J.Str c.Flow.source.Poly_ir.Ir.prog_name);
      ("oi", f c.Flow.profile.Perfmodel.oi);
      ( "caps",
        J.Arr
          (List.map
             (fun (var, ghz) ->
               J.Obj [ ("region", J.Str var); ("cap_ghz", f ghz) ])
             c.Flow.caps) );
      ("decisions", J.Arr (List.map json_of_region_decision c.Flow.decisions));
      ("timing", json_of_timing c.Flow.timing);
      ("fidelity", fidelity_str c.Flow.fidelity);
    ]

let json_of_evaluation (e : Flow.evaluation) =
  J.Obj
    [
      ("baseline", json_of_outcome e.Flow.baseline);
      ("capped", json_of_outcome e.Flow.capped);
      ("time_gain", f e.Flow.time_gain);
      ("energy_gain", f e.Flow.energy_gain);
      ("edp_gain", f e.Flow.edp_gain);
    ]

(* the `polyufc run --json` payload: compile decisions + both outcomes *)
let json_of_run (c : Flow.compiled) (e : Flow.evaluation) =
  J.Obj
    [
      ("compile", json_of_compiled c); ("evaluation", json_of_evaluation e);
    ]

let print_json j = print_endline (J.to_string j)
