(* Machine-readable views of the pipeline's result records, built on the
   telemetry JSON emitter. Used by the CLI's --json mode and by the bench
   harness's report files. Non-finite floats (e.g. the OI of a kernel with
   zero DRAM traffic) serialize as null. *)

module J = Telemetry.Json

let f x = J.Float x

let boundedness_str = function Roofline.CB -> "CB" | Roofline.BB -> "BB"

let fidelity_str fd = J.Str (Engine.Fidelity.to_string fd)

let json_of_level_counts (c : Cache_model.Model.level_counts) =
  J.Obj
    [
      ("level", J.Str c.Cache_model.Model.level_name);
      ("presented", J.Int c.Cache_model.Model.presented);
      ("cold", J.Int c.Cache_model.Model.cold);
      ("capacity_conflict", J.Int c.Cache_model.Model.capacity_conflict);
      ("hits", J.Int c.Cache_model.Model.hits);
      ("demand_hits", J.Int c.Cache_model.Model.demand_hits);
      ("misses", J.Int (Cache_model.Model.total_misses c));
    ]

let json_of_cm (r : Cache_model.Model.result) =
  J.Obj
    [
      ("machine", J.Str r.Cache_model.Model.machine.Hwsim.Machine.name);
      ( "mode",
        J.Str
          (match r.Cache_model.Model.mode with
          | Cache_model.Model.Set_associative -> "set-associative"
          | Cache_model.Model.Fully_associative -> "fully-associative") );
      ( "levels",
        J.Arr
          (Array.to_list
             (Array.map json_of_level_counts r.Cache_model.Model.levels)) );
      ( "per_stmt",
        J.Obj
          (List.map
             (fun (name, (sc : Cache_model.Model.stmt_counts)) ->
               ( name,
                 J.Obj
                   [
                     ("flops", J.Int sc.Cache_model.Model.stmt_flops);
                     ("oi", f sc.Cache_model.Model.stmt_oi);
                     ( "levels",
                       J.Arr
                         (Array.to_list
                            (Array.map json_of_level_counts
                               sc.Cache_model.Model.stmt_levels)) );
                   ] ))
             r.Cache_model.Model.per_stmt) );
      ("threads_divisor", J.Int r.Cache_model.Model.threads_divisor);
      ("miss_llc", f r.Cache_model.Model.miss_llc);
      ("q_dram_bytes", f r.Cache_model.Model.q_dram_bytes);
      ("flops", J.Int r.Cache_model.Model.flops);
      ("oi", f r.Cache_model.Model.oi);
      ( "hit_ratios",
        J.Arr (Array.to_list (Array.map f r.Cache_model.Model.hit_ratios)) );
      ("fidelity", fidelity_str r.Cache_model.Model.fidelity);
    ]

let json_of_outcome (o : Hwsim.Sim.outcome) =
  J.Obj
    [
      ("time_s", f o.Hwsim.Sim.time_s);
      ("energy_j", f o.Hwsim.Sim.energy_j);
      ("edp", f o.Hwsim.Sim.edp);
      ("avg_power_w", f o.Hwsim.Sim.avg_power_w);
      ("avg_uncore_ghz", f o.Hwsim.Sim.avg_uncore_ghz);
      ( "zones",
        J.Obj
          [
            ("core_j", f o.Hwsim.Sim.zones.Hwsim.Sim.core_j);
            ("uncore_j", f o.Hwsim.Sim.zones.Hwsim.Sim.uncore_j);
            ("dram_j", f o.Hwsim.Sim.zones.Hwsim.Sim.dram_j);
            ("static_j", f o.Hwsim.Sim.zones.Hwsim.Sim.static_j);
          ] );
      ("flops", J.Int o.Hwsim.Sim.flops);
      ("dram_lines", J.Int o.Hwsim.Sim.dram_lines);
      ("dram_bytes", J.Int o.Hwsim.Sim.dram_bytes);
      ("cap_switches", J.Int o.Hwsim.Sim.cap_switches);
      ("achieved_gflops", f o.Hwsim.Sim.achieved_gflops);
      ("achieved_bw_gbps", f o.Hwsim.Sim.achieved_bw_gbps);
      ( "cache_stats",
        J.Arr
          (Array.to_list
             (Array.map
                (fun (s : Hwsim.Cache.level_stats) ->
                  J.Obj
                    [
                      ("hits", J.Int s.Hwsim.Cache.hits);
                      ("misses", J.Int s.Hwsim.Cache.misses);
                      ("evictions", J.Int s.Hwsim.Cache.evictions);
                      ("writebacks", J.Int s.Hwsim.Cache.writebacks);
                    ])
                o.Hwsim.Sim.cache_stats)) );
    ]

let json_of_timing (t : Flow.timing) =
  J.Obj
    [
      ("preprocess_s", f t.Flow.preprocess_s);
      ("pluto_s", f t.Flow.pluto_s);
      ("cm_s", f t.Flow.cm_s);
      ("steps456_s", f t.Flow.steps456_s);
    ]

let json_of_stmt_decision (d : Flow.stmt_decision) =
  J.Obj
    [
      ("stmt", J.Str d.Flow.stmt_name);
      ("oi", f d.Flow.stmt_oi);
      ("boundedness", J.Str (boundedness_str d.Flow.stmt_bound));
      ("cap_ghz", f d.Flow.stmt_cap);
    ]

let json_of_region_decision (d : Flow.region_decision) =
  J.Obj
    [
      ("region", J.Str d.Flow.region_var);
      ("oi", f d.Flow.region_oi);
      ("boundedness", J.Str (boundedness_str d.Flow.region_bound));
      ("cap_ghz", f d.Flow.cap_ghz);
      ("search_steps", J.Int d.Flow.search.Search.steps);
      ("fidelity", fidelity_str d.Flow.search.Search.fidelity);
      ("stmts", J.Arr (List.map json_of_stmt_decision d.Flow.stmts));
    ]

let json_of_compiled (c : Flow.compiled) =
  J.Obj
    [
      ("program", J.Str c.Flow.source.Poly_ir.Ir.prog_name);
      ("oi", f c.Flow.profile.Perfmodel.oi);
      ( "caps",
        J.Arr
          (List.map
             (fun (var, ghz) ->
               J.Obj [ ("region", J.Str var); ("cap_ghz", f ghz) ])
             c.Flow.caps) );
      ("decisions", J.Arr (List.map json_of_region_decision c.Flow.decisions));
      ("timing", json_of_timing c.Flow.timing);
      ("fidelity", fidelity_str c.Flow.fidelity);
    ]

let json_of_evaluation (e : Flow.evaluation) =
  J.Obj
    [
      ("baseline", json_of_outcome e.Flow.baseline);
      ("capped", json_of_outcome e.Flow.capped);
      ("time_gain", f e.Flow.time_gain);
      ("energy_gain", f e.Flow.energy_gain);
      ("edp_gain", f e.Flow.edp_gain);
    ]

(* the `polyufc run --json` payload: compile decisions + both outcomes *)
let json_of_run (c : Flow.compiled) (e : Flow.evaluation) =
  J.Obj
    [
      ("compile", json_of_compiled c); ("evaluation", json_of_evaluation e);
    ]

let print_json j = print_endline (J.to_string j)

(* --- multi-tenant views -------------------------------------------- *)

let json_of_tenant_outcome (t : Hwsim.Sim.tenant_outcome) =
  J.Obj
    [
      ("tenant", J.Str t.Hwsim.Sim.o_tenant);
      ("time_s", f t.Hwsim.Sim.o_time_s);
      ("energy_j", f t.Hwsim.Sim.o_energy_j);
      ("flops", J.Int t.Hwsim.Sim.o_flops);
      ("accesses", J.Int t.Hwsim.Sim.o_accesses);
      ("dram_lines", J.Int t.Hwsim.Sim.o_dram_lines);
      ("dram_bytes", J.Int t.Hwsim.Sim.o_dram_bytes);
      ("gflops", f t.Hwsim.Sim.o_gflops);
      ("bw_gbps", f t.Hwsim.Sim.o_bw_gbps);
      ("solo_time_s", f t.Hwsim.Sim.o_solo_time_s);
      ("slowdown", f t.Hwsim.Sim.o_slowdown);
    ]

let json_of_multi_outcome (m : Hwsim.Sim.multi_outcome) =
  J.Obj
    [
      ("n_tenants", J.Int m.Hwsim.Sim.n_tenants);
      ("combined", json_of_outcome m.Hwsim.Sim.combined);
      ( "per_tenant",
        J.Arr (List.map json_of_tenant_outcome m.Hwsim.Sim.per_tenant) );
    ]

let json_of_arbiter (d : Hwsim.Cap_arbiter.decision) =
  J.Obj
    [
      ("cap_ghz", f d.Hwsim.Cap_arbiter.cap_ghz);
      ("feasible", J.Bool d.Hwsim.Cap_arbiter.feasible);
      ("agg_bw_gbps", f d.Hwsim.Cap_arbiter.agg_bw_gbps);
      ("supply_gbps", f d.Hwsim.Cap_arbiter.supply_gbps);
      ( "grants",
        J.Arr
          (List.map
             (fun (g : Hwsim.Cap_arbiter.grant) ->
               J.Obj
                 [
                   ("tenant", J.Str g.Hwsim.Cap_arbiter.g_tenant);
                   ("bw_gbps", f g.Hwsim.Cap_arbiter.g_bw_gbps);
                   ("satisfied", J.Bool g.Hwsim.Cap_arbiter.g_satisfied);
                   ("slowdown", f g.Hwsim.Cap_arbiter.g_slowdown);
                 ])
             d.Hwsim.Cap_arbiter.grants) );
    ]

(* --- roofline scatter export --------------------------------------- *)

(* The scatter shape fleet dashboards plot (py-roofline style): one row
   per kernel placing its measured point against the machine roofline.
   [efficiency] is achieved GFLOP/s over the roof at that AI —
   min(peak_gflops, ai · peak_bw) — and [distance_to_roof] is the
   complementary gap, clamped at 0 when a point sits above the fitted
   roof.  Shared verbatim by `analyze-multi`, the traffic-replay bench
   and `client stats` so the three surfaces never drift. *)

type scatter_row = {
  sc_kernel : string;
  sc_ai : float;  (* arithmetic intensity, flops/DRAM byte *)
  sc_gflops : float;
  sc_efficiency : float;  (* achieved / roof at this AI *)
  sc_distance : float;  (* 1 - efficiency, clamped >= 0 *)
  sc_bound : string;  (* "CB" | "BB" *)
  sc_cap_ghz : float;  (* the uncore cap chosen for this kernel *)
}

let scatter_point ~(rooflines : Roofline.constants) ~kernel ~ai ~gflops
    ~cap_ghz =
  let roof =
    Float.min rooflines.Roofline.peak_gflops
      (ai *. rooflines.Roofline.peak_bw_gbps)
  in
  let eff = if roof > 0.0 then gflops /. roof else 0.0 in
  {
    sc_kernel = kernel;
    sc_ai = ai;
    sc_gflops = gflops;
    sc_efficiency = eff;
    sc_distance = Float.max 0.0 (1.0 -. eff);
    sc_bound = boundedness_str (Roofline.characterize rooflines ~oi:ai);
    sc_cap_ghz = cap_ghz;
  }

let scatter_header =
  "kernel,arithmetic_intensity,gflops,efficiency,distance_to_roof,boundedness,cap_ghz"

(* %.17g round-trips every finite float exactly through float_of_string *)
let csv_float x = Printf.sprintf "%.17g" x

let csv_escape s =
  if
    String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s
  then begin
    let b = Buffer.create (String.length s + 2) in
    Buffer.add_char b '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string b "\"\"" else Buffer.add_char b c)
      s;
    Buffer.add_char b '"';
    Buffer.contents b
  end
  else s

let csv_of_scatter rows =
  let b = Buffer.create 256 in
  Buffer.add_string b scatter_header;
  Buffer.add_char b '\n';
  List.iter
    (fun r ->
      Buffer.add_string b
        (String.concat ","
           [
             csv_escape r.sc_kernel;
             csv_float r.sc_ai;
             csv_float r.sc_gflops;
             csv_float r.sc_efficiency;
             csv_float r.sc_distance;
             r.sc_bound;
             csv_float r.sc_cap_ghz;
           ]);
      Buffer.add_char b '\n')
    rows;
  Buffer.contents b

(* split one CSV line into fields, honoring quoted fields with doubled
   quotes; returns Error on an unterminated quote *)
let csv_fields line =
  let n = String.length line in
  let fields = ref [] in
  let b = Buffer.create 32 in
  let flush_field () =
    fields := Buffer.contents b :: !fields;
    Buffer.clear b
  in
  let rec plain i =
    if i >= n then (flush_field (); Ok ())
    else
      match line.[i] with
      | ',' -> flush_field (); plain (i + 1)
      | '"' when Buffer.length b = 0 -> quoted (i + 1)
      | c -> Buffer.add_char b c; plain (i + 1)
  and quoted i =
    if i >= n then Error "unterminated quoted field"
    else
      match line.[i] with
      | '"' when i + 1 < n && line.[i + 1] = '"' ->
        Buffer.add_char b '"';
        quoted (i + 2)
      | '"' -> plain (i + 1)
      | c -> Buffer.add_char b c; quoted (i + 1)
  in
  match plain 0 with
  | Ok () -> Ok (List.rev !fields)
  | Error _ as e -> e

let scatter_of_csv text =
  let lines =
    String.split_on_char '\n' text
    |> List.map (fun l ->
           (* tolerate CRLF files *)
           if String.length l > 0 && l.[String.length l - 1] = '\r' then
             String.sub l 0 (String.length l - 1)
           else l)
    |> List.filter (fun l -> l <> "")
  in
  match lines with
  | [] -> Error "empty scatter CSV"
  | header :: body ->
    if header <> scatter_header then
      Error (Printf.sprintf "unexpected scatter header %S" header)
    else
      let parse_row lineno line =
        match csv_fields line with
        | Error e -> Error (Printf.sprintf "line %d: %s" lineno e)
        | Ok [ kernel; ai; gflops; eff; dist; bound; cap ] -> (
          let num s =
            match float_of_string_opt s with
            | Some x -> Ok x
            | None -> Error (Printf.sprintf "line %d: bad number %S" lineno s)
          in
          match (num ai, num gflops, num eff, num dist, num cap) with
          | Ok ai, Ok gflops, Ok eff, Ok dist, Ok cap ->
            Ok
              {
                sc_kernel = kernel;
                sc_ai = ai;
                sc_gflops = gflops;
                sc_efficiency = eff;
                sc_distance = dist;
                sc_bound = bound;
                sc_cap_ghz = cap;
              }
          | (Error _ as e), _, _, _, _
          | _, (Error _ as e), _, _, _
          | _, _, (Error _ as e), _, _
          | _, _, _, (Error _ as e), _
          | _, _, _, _, (Error _ as e) -> e)
        | Ok fields ->
          Error
            (Printf.sprintf "line %d: expected 7 fields, got %d" lineno
               (List.length fields))
      in
      let rec go i acc = function
        | [] -> Ok (List.rev acc)
        | line :: rest -> (
          match parse_row i line with
          | Ok row -> go (i + 1) (row :: acc) rest
          | Error _ as e -> e)
      in
      go 2 [] body

let json_of_scatter_row r =
  J.Obj
    [
      ("kernel", J.Str r.sc_kernel);
      ("arithmetic_intensity", f r.sc_ai);
      ("gflops", f r.sc_gflops);
      ("efficiency", f r.sc_efficiency);
      ("distance_to_roof", f r.sc_distance);
      ("boundedness", J.Str r.sc_bound);
      ("cap_ghz", f r.sc_cap_ghz);
    ]

let json_of_scatter rows = J.Arr (List.map json_of_scatter_row rows)

let scatter_row_of_json j =
  let num name =
    match J.member name j with
    | Some v -> (
      match J.number v with
      | Some x -> Ok x
      | None -> Error (Printf.sprintf "scatter row: %s not a number" name))
    | None ->
      (* non-finite floats serialize as null *)
      Ok Float.nan
  in
  let str name =
    match J.member name j with
    | Some (J.Str s) -> Ok s
    | _ -> Error (Printf.sprintf "scatter row: missing %s" name)
  in
  match
    ( str "kernel",
      num "arithmetic_intensity",
      num "gflops",
      num "efficiency",
      num "distance_to_roof",
      str "boundedness",
      num "cap_ghz" )
  with
  | Ok k, Ok ai, Ok g, Ok e, Ok d, Ok b, Ok c ->
    Ok
      {
        sc_kernel = k;
        sc_ai = ai;
        sc_gflops = g;
        sc_efficiency = e;
        sc_distance = d;
        sc_bound = b;
        sc_cap_ghz = c;
      }
  | (Error _ as e), _, _, _, _, _, _
  | _, (Error _ as e), _, _, _, _, _
  | _, _, (Error _ as e), _, _, _, _
  | _, _, _, (Error _ as e), _, _, _
  | _, _, _, _, (Error _ as e), _, _
  | _, _, _, _, _, (Error _ as e), _
  | _, _, _, _, _, _, (Error _ as e) -> e

let scatter_of_json = function
  | J.Arr items ->
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | j :: rest -> (
        match scatter_row_of_json j with
        | Ok r -> go (r :: acc) rest
        | Error _ as e -> e)
    in
    go [] items
  | _ -> Error "scatter must be a JSON array"
