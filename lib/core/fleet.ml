(* Fleet-level analysis: compile every tenant solo, arbitrate one shared
   uncore cap from their roofline demands, then co-simulate the tenant
   set under that cap.  This is the library behind `polyufc
   analyze-multi`, the serve daemon's `analyze_multi` op and the
   traffic-replay bench — all three call [analyze] and render the same
   [result]. *)

module Sim = Hwsim.Sim
module Arbiter = Hwsim.Cap_arbiter

type spec = {
  sp_name : string;
  sp_prog : Poly_ir.Ir.t;
  sp_sizes : (string * int) list;
  sp_weight : float;
  sp_cores : int;
}

let spec ?(sizes = []) ?(weight = 1.0) ?(cores = 0) ~name prog =
  if weight <= 0.0 then invalid_arg "Fleet.spec: weight must be positive";
  if cores < 0 then invalid_arg "Fleet.spec: cores must be non-negative";
  {
    sp_name = name;
    sp_prog = prog;
    sp_sizes = sizes;
    sp_weight = weight;
    sp_cores = cores;
  }

type tenant_report = {
  tr_spec : spec;
  tr_compiled : Flow.compiled;
  tr_demand : Arbiter.demand;
  tr_outcome : Sim.tenant_outcome;
  tr_scatter : Report.scatter_row;
}

type result = {
  machine : Hwsim.Machine.t;
  decision : Arbiter.decision;
  sim : Sim.multi_outcome;
  tenants : tenant_report list;
}

(* a tenant's solo cap is the most demanding region cap its own compile
   chose; a program whose schedule needs no cap runs happily at the
   bottom of the range *)
let solo_cap_of (m : Hwsim.Machine.t) (c : Flow.compiled) =
  List.fold_left
    (fun acc (_, ghz) -> Float.max acc ghz)
    m.Hwsim.Machine.uncore_min_ghz c.Flow.caps

let analyze ?ctx ?objective ?epsilon ?tile_size ?(solo = true) ~machine
    ~rooflines specs =
  if specs = [] then invalid_arg "Fleet.analyze: no tenants";
  let compiled =
    List.map
      (fun sp ->
        ( sp,
          Flow.compile ?ctx ?objective ?epsilon ?tile_size ~machine
            ~rooflines sp.sp_prog ~param_values:sp.sp_sizes ))
      specs
  in
  let demands =
    List.map
      (fun (sp, c) ->
        let cap = solo_cap_of machine c in
        let est = Perfmodel.estimate rooflines c.Flow.profile ~f_c:cap in
        let mem_bound =
          Roofline.characterize rooflines ~oi:c.Flow.profile.Perfmodel.oi
          = Roofline.BB
        in
        Arbiter.demand ~weight:sp.sp_weight ~mem_bound ~tenant:sp.sp_name
          ~solo_cap_ghz:cap ~bw_gbps:est.Perfmodel.bw_gbps ())
      compiled
  in
  let decision = Arbiter.arbitrate ~machine demands in
  let tenants =
    List.map
      (fun (sp, c) ->
        Sim.tenant ~cores:sp.sp_cores ~weight:sp.sp_weight
          ~param_values:sp.sp_sizes ~name:sp.sp_name c.Flow.optimized)
      compiled
  in
  let cfg =
    Sim.config ~machine ~uncore:(`Fixed decision.Arbiter.cap_ghz) tenants
  in
  let sim = Sim.simulate ~solo cfg in
  let reports =
    List.map2
      (fun (sp, c) (d, o) ->
        {
          tr_spec = sp;
          tr_compiled = c;
          tr_demand = d;
          tr_outcome = o;
          tr_scatter =
            Report.scatter_point ~rooflines ~kernel:sp.sp_name
              ~ai:c.Flow.profile.Perfmodel.oi ~gflops:o.Sim.o_gflops
              ~cap_ghz:decision.Arbiter.cap_ghz;
        })
      compiled
      (List.combine demands sim.Sim.per_tenant)
  in
  { machine; decision; sim; tenants = reports }

let scatter_of_result r = List.map (fun t -> t.tr_scatter) r.tenants

let json_of_result r =
  let module J = Telemetry.Json in
  J.Obj
    [
      ("machine", J.Str r.machine.Hwsim.Machine.name);
      ("arbiter", Report.json_of_arbiter r.decision);
      ("sim", Report.json_of_multi_outcome r.sim);
      ("scatter", Report.json_of_scatter (scatter_of_result r));
      ( "tenants",
        J.Arr
          (List.map
             (fun t ->
               J.Obj
                 [
                   ("name", J.Str t.tr_spec.sp_name);
                   ("weight", J.Float t.tr_spec.sp_weight);
                   ("cores", J.Int t.tr_spec.sp_cores);
                   ( "solo_cap_ghz",
                     J.Float t.tr_demand.Arbiter.d_solo_cap_ghz );
                   ("bw_demand_gbps", J.Float t.tr_demand.Arbiter.d_bw_gbps);
                   ("mem_bound", J.Bool t.tr_demand.Arbiter.d_mem_bound);
                   ("compile", Report.json_of_compiled t.tr_compiled);
                   ("outcome", Report.json_of_tenant_outcome t.tr_outcome);
                 ])
             r.tenants) );
    ]

let pp_result ppf r =
  Format.fprintf ppf "@[<v>fleet of %d tenant(s) on %s@,%a@,%a@]"
    r.sim.Sim.n_tenants r.machine.Hwsim.Machine.name Arbiter.pp_decision
    r.decision Sim.pp_multi_outcome r.sim
