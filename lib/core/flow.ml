open Poly_ir

(* Canonical span names of the Fig. 3 phases. The [timing] record below is
   a view over these spans: both are produced by the same
   [Telemetry.with_span_timed] measurement. *)
let phase_preprocess = "preprocess"
let phase_pluto = "pluto"
let phase_cm = "polyufc-cm"
let phase_steps456 = "steps456"

let c_compiles = Telemetry.counter "flow.compiles"
let c_empty_domains = Telemetry.counter "flow.empty_stmt_domains"

type timing = {
  preprocess_s : float;
  pluto_s : float;
  cm_s : float;
  steps456_s : float;
}

type stmt_decision = {
  stmt_name : string;
  stmt_oi : float;
  stmt_bound : Roofline.boundedness;
  stmt_cap : float;
}

type region_decision = {
  region_var : string;
  region_oi : float;
  region_bound : Roofline.boundedness;
  cap_ghz : float;
  search : Search.outcome;
  stmts : stmt_decision list;
}

type compiled = {
  source : Ir.t;
  optimized : Ir.t;
  caps : (string * float) list;
  decisions : region_decision list;
  cm : Cache_model.Model.result;
  profile : Perfmodel.profile;
  timing : timing;
  fidelity : Engine.Fidelity.t;
}

let profile_of_stmt_counts (sc : Cache_model.Model.stmt_counts) =
  {
    Perfmodel.omega = float_of_int sc.Cache_model.Model.stmt_flops;
    level_hits =
      Array.map
        (fun (c : Cache_model.Model.level_counts) ->
          float_of_int c.Cache_model.Model.demand_hits)
        sc.Cache_model.Model.stmt_levels;
    miss_llc =
      (let last =
         sc.Cache_model.Model.stmt_levels.(Array.length sc.Cache_model.Model.stmt_levels - 1)
       in
       float_of_int (Cache_model.Model.total_misses last));
    q_dram_bytes =
      (let last =
         sc.Cache_model.Model.stmt_levels.(Array.length sc.Cache_model.Model.stmt_levels - 1)
       in
       float_of_int (Cache_model.Model.total_misses last) *. 64.0);
    oi = sc.Cache_model.Model.stmt_oi;
  }

let rec stmt_names_of_item = function
  | Ir.Stmt s -> [ s.Ir.stmt_name ]
  | Ir.Loop l -> List.concat_map stmt_names_of_item l.Ir.body
  | Ir.If b ->
    List.concat_map stmt_names_of_item b.Ir.then_
    @ List.concat_map stmt_names_of_item b.Ir.else_

let compile ?pool ?cache ?ctx ?(objective = Search.Edp) ?(epsilon = 1e-3)
    ?(tile_size = 32) ?(tile = true)
    ?(mode = Cache_model.Model.Set_associative) ~machine ~rooflines prog
    ~param_values =
  let ctx = Engine.Ctx.of_legacy ?pool ?cache ctx in
  let pool = Engine.Ctx.pool ctx in
  let cancel = Engine.Ctx.cancel ctx in
  (* the per-stmt / per-region searches below may themselves run inside
     pool workers; they must not re-enter the pool *)
  let inner_ctx = { ctx with Engine.Ctx.pool = None; cache = None } in
  Telemetry.tick c_compiles;
  Telemetry.with_span "flow.compile" ~args:[ ("prog", prog.Ir.prog_name) ]
  @@ fun () ->
  (* soft phase boundary: cancellation always aborts; an expired budget
     aborts only under degrade=off — otherwise downstream phases run on
     (possibly degraded) results *)
  Engine.Ctx.checkpoint ctx;
  (* Jobs terminally abandoned by the supervised pool (Worker_failure
     after max_retries) degrade the result instead of failing it; the
     worst pool fidelity across fan-outs merges into [compiled.fidelity]. *)
  let pool_fidelity = ref Engine.Fidelity.Exact in
  let note_partial fid =
    pool_fidelity := Engine.Fidelity.worst !pool_fidelity fid
  in
  (* (1) preprocess: validation + SCoP extraction + per-statement domain
     sanity (an empty iteration domain under the given sizes means a dead
     statement and usually a sizing mistake) *)
  let (), preprocess_s =
    Telemetry.with_span_timed phase_preprocess (fun () ->
        (match Ir.validate prog with
        | Ok () -> ()
        | Error m -> invalid_arg ("Flow.compile: " ^ m));
        let scop = Scop.extract prog in
        let check_domain (info : Scop.stmt_info) =
          let sp = Presburger.Bset.space info.Scop.domain in
          let values =
            Array.map
              (fun p ->
                match List.assoc_opt p param_values with
                | Some v -> v
                | None -> 0)
              sp.Presburger.Space.params
          in
          if Presburger.Bset.is_empty (Presburger.Bset.fix_params info.Scop.domain values)
          then Telemetry.tick c_empty_domains
        in
        (* independent per-statement checks; fan them out when a pool was
           given (only the counter total is observable, order-free) *)
        match pool with
        | None -> List.iter check_domain scop.Scop.stmt_infos
        | Some pool ->
          let (_ : unit list), fid =
            Engine.Pool.map_partial ?cancel pool check_domain
              scop.Scop.stmt_infos
          in
          note_partial fid)
  in
  Engine.Ctx.checkpoint ctx;
  (* (2) Pluto *)
  let optimized, pluto_s =
    Telemetry.with_span_timed phase_pluto (fun () ->
        if tile then Tiling.tile_program ~tile_size prog else prog)
  in
  Engine.Ctx.checkpoint ctx;
  (* (3) PolyUFC-CM on the whole program, with per-statement breakdown.
     The OpenMP sharing heuristic models multiple hardware threads
     splitting the working set; our simulated testbed executes a single
     instruction stream with scaled timing, so it is disabled here (it
     remains available and tested in Cache_model). *)
  let (cm, profile), cm_s =
    Telemetry.with_span_timed phase_cm (fun () ->
        let cm =
          Analysis_cache.analyze_gov ~ctx ~mode ~apply_thread_heuristic:false
            ~machine optimized ~param_values
        in
        (cm, Perfmodel.profile_of_cm cm))
  in
  Engine.Ctx.checkpoint ctx;
  (* (4–6) characterize, estimate, search per top-level region *)
  let decide_region (l : Ir.loop) =
    let names = List.concat_map stmt_names_of_item l.Ir.body in
    let stmt_decs =
      List.filter_map
        (fun (name, sc) ->
          if List.mem name names && sc.Cache_model.Model.stmt_flops >= 0 then begin
            let p = profile_of_stmt_counts sc in
            if p.Perfmodel.miss_llc = 0.0 && p.Perfmodel.omega = 0.0 then None
            else begin
              let s =
                Search.run ~ctx:inner_ctx
                  ~fidelity:cm.Cache_model.Model.fidelity ~objective ~epsilon
                  rooflines p
              in
              Some
                {
                  stmt_name = name;
                  stmt_oi = p.Perfmodel.oi;
                  stmt_bound = s.Search.boundedness;
                  stmt_cap = s.Search.cap_ghz;
                }
            end
          end
          else None)
        cm.Cache_model.Model.per_stmt
    in
    (* region-level profile: sum of its statements *)
    let n_levels = Array.length cm.Cache_model.Model.levels in
    let region_profile =
      List.fold_left
        (fun acc (name, sc) ->
          if List.mem name names then begin
            let p = profile_of_stmt_counts sc in
            {
              Perfmodel.omega = acc.Perfmodel.omega +. p.Perfmodel.omega;
              level_hits =
                Array.init n_levels (fun i ->
                    acc.Perfmodel.level_hits.(i) +. p.Perfmodel.level_hits.(i));
              miss_llc = acc.Perfmodel.miss_llc +. p.Perfmodel.miss_llc;
              q_dram_bytes = acc.Perfmodel.q_dram_bytes +. p.Perfmodel.q_dram_bytes;
              oi = 0.0;
            }
          end
          else acc)
        {
          Perfmodel.omega = 0.0;
          level_hits = Array.make n_levels 0.0;
          miss_llc = 0.0;
          q_dram_bytes = 0.0;
          oi = 0.0;
        }
        cm.Cache_model.Model.per_stmt
    in
    let region_oi =
      if region_profile.Perfmodel.q_dram_bytes > 0.0 then
        region_profile.Perfmodel.omega /. region_profile.Perfmodel.q_dram_bytes
      else Float.infinity
    in
    let region_profile = { region_profile with Perfmodel.oi = region_oi } in
    let search =
      Search.run ~ctx:inner_ctx ~fidelity:cm.Cache_model.Model.fidelity
        ~objective ~epsilon rooflines region_profile
    in
    let region_bound = search.Search.boundedness in
    (* paper's aggregation: min of statement caps for CB, max for BB *)
    let cap_ghz =
      match stmt_decs with
      | [] -> search.Search.cap_ghz
      | ds ->
        let caps = List.map (fun d -> d.stmt_cap) ds in
        (match region_bound with
        | Roofline.CB -> List.fold_left Float.min (search.Search.cap_ghz) caps
        | Roofline.BB -> List.fold_left Float.max (search.Search.cap_ghz) caps)
    in
    {
      region_var = l.Ir.var;
      region_oi;
      region_bound;
      cap_ghz;
      search;
      stmts = stmt_decs;
    }
  in
  let (decisions, caps), steps456_s =
    Telemetry.with_span_timed phase_steps456 (fun () ->
        let regions =
          List.filter_map
            (function
              | Ir.Loop l -> Some l | Ir.Stmt _ | Ir.If _ -> None)
            optimized.Ir.body
        in
        (* regions are independent; fan them out when a pool was given
           (Pool.map keeps program order, so the cap schedule and the
           redundant-cap removal below are unaffected) *)
        let decisions =
          match pool with
          | None -> List.map decide_region regions
          | Some pool ->
            let ds, fid =
              Engine.Pool.map_partial ?cancel pool decide_region regions
            in
            note_partial fid;
            ds
        in
        (* cap schedule with redundant-cap removal (the paper's
           pattern-rewrite): a region whose cap equals the previously
           active cap needs no call *)
        let caps =
          List.rev
            (snd
               (List.fold_left
                  (fun (prev, acc) d ->
                    match prev with
                    | Some p when Float.abs (p -. d.cap_ghz) < 1e-9 ->
                      (prev, acc)
                    | _ -> (Some d.cap_ghz, (d.region_var, d.cap_ghz) :: acc))
                  (None, []) decisions))
        in
        (decisions, caps))
  in
  {
    source = prog;
    optimized;
    caps;
    decisions;
    cm;
    profile;
    timing = { preprocess_s; pluto_s; cm_s; steps456_s };
    fidelity =
      Engine.Fidelity.worst cm.Cache_model.Model.fidelity !pool_fidelity;
  }

type evaluation = {
  baseline : Hwsim.Sim.outcome;
  capped : Hwsim.Sim.outcome;
  time_gain : float;
  energy_gain : float;
  edp_gain : float;
}

let evaluate ~machine compiled ~param_values =
  let run ~caps =
    Hwsim.Sim.run_one
      (Hwsim.Sim.config ~machine ~uncore:`Governor
         [
           Hwsim.Sim.tenant ~caps ~param_values
             ~name:compiled.source.Poly_ir.Ir.prog_name compiled.optimized;
         ])
  in
  let baseline =
    Telemetry.with_span "evaluate.baseline" (fun () -> run ~caps:[])
  in
  let capped =
    Telemetry.with_span "evaluate.capped" (fun () ->
        run ~caps:compiled.caps)
  in
  let gain base v = (base -. v) /. base in
  {
    baseline;
    capped;
    time_gain = gain baseline.Hwsim.Sim.time_s capped.Hwsim.Sim.time_s;
    energy_gain = gain baseline.Hwsim.Sim.energy_j capped.Hwsim.Sim.energy_j;
    edp_gain = gain baseline.Hwsim.Sim.edp capped.Hwsim.Sim.edp;
  }

let pp_compiled ppf c =
  Format.fprintf ppf "@[<v>PolyUFC compile of %s:@," c.source.Ir.prog_name;
  if c.fidelity <> Engine.Fidelity.Exact then
    Format.fprintf ppf "  fidelity: %a@," Engine.Fidelity.pp c.fidelity;
  Format.fprintf ppf "  whole-program OI=%.3f FpB@," c.profile.Perfmodel.oi;
  List.iter
    (fun d ->
      Format.fprintf ppf "  region %s: OI=%.3f [%a] cap=%.1f GHz (%d stmts)@,"
        d.region_var d.region_oi Roofline.pp_boundedness d.region_bound
        d.cap_ghz (List.length d.stmts))
    c.decisions;
  Format.fprintf ppf "  cap schedule:";
  List.iter (fun (v, f) -> Format.fprintf ppf " %s->%.1f" v f) c.caps;
  Format.fprintf ppf "@,  compile time: pre=%.3fs pluto=%.3fs cm=%.3fs s456=%.3fs@]"
    c.timing.preprocess_s c.timing.pluto_s c.timing.cm_s c.timing.steps456_s

let pp_evaluation ppf e =
  Format.fprintf ppf
    "baseline: %a@ capped:   %a@ gains: time %+.1f%% energy %+.1f%% EDP %+.1f%%"
    Hwsim.Sim.pp_outcome e.baseline Hwsim.Sim.pp_outcome e.capped
    (100. *. e.time_gain) (100. *. e.energy_gain) (100. *. e.edp_gain)
