(* Key construction and JSON round-tripping for cached PolyUFC-CM
   results.

   Floats are encoded as hexadecimal literals ("%h") and decoded with
   [float_of_string]: the round trip is exact (including infinities, e.g.
   the OI of a kernel with no DRAM traffic), which keeps reports built
   from cache hits byte-identical to reports built from fresh analyses. *)

module J = Telemetry.Json
module M = Cache_model.Model

let hex_float x = J.Str (Printf.sprintf "%h" x)

let float_of_j = function
  | J.Str s -> float_of_string_opt s
  | J.Int i -> Some (float_of_int i)
  | J.Float f -> Some f
  | _ -> None

let mode_str = function
  | M.Set_associative -> "set-associative"
  | M.Fully_associative -> "fully-associative"

let machine_fingerprint (m : Hwsim.Machine.t) =
  let b = Buffer.create 256 in
  let f fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  f "name=%s;threads=%d;core=%h;umin=%h;umax=%h;ustep=%h;" m.Hwsim.Machine.name
    m.Hwsim.Machine.threads m.Hwsim.Machine.core_ghz
    m.Hwsim.Machine.uncore_min_ghz m.Hwsim.Machine.uncore_max_ghz
    m.Hwsim.Machine.uncore_step_ghz;
  List.iter
    (fun (c : Hwsim.Machine.cache_geometry) ->
      f "cache=%s:%d:%d:%d:%h;" c.Hwsim.Machine.level_name
        c.Hwsim.Machine.size_bytes c.Hwsim.Machine.line_bytes
        c.Hwsim.Machine.assoc c.Hwsim.Machine.hit_latency_ns)
    m.Hwsim.Machine.caches;
  f "flop=%h;mlp=%h;dlat=%h:%h;dbw=%h:%h;pstat=%h;pcore=%h;punc=%h:%h;dnj=%h;capus=%h"
    m.Hwsim.Machine.flop_ns m.Hwsim.Machine.mlp m.Hwsim.Machine.dram_lat_a_ns
    m.Hwsim.Machine.dram_lat_b_ns m.Hwsim.Machine.dram_bw_gbps_per_ghz
    m.Hwsim.Machine.dram_bw_max_gbps m.Hwsim.Machine.p_static_w
    m.Hwsim.Machine.core_w_active m.Hwsim.Machine.uncore_w_per_ghz
    m.Hwsim.Machine.uncore_w_base m.Hwsim.Machine.dram_nj_per_line
    m.Hwsim.Machine.cap_switch_us;
  Buffer.contents b

let cm_key ~machine ~mode ~apply_thread_heuristic ~param_values prog =
  let scop = Poly_ir.Scop.export_isl (Poly_ir.Scop.extract prog) in
  Engine.Rcache.key
    [
      ("kind", "polyufc-cm");
      ("scop", scop);
      ("machine", machine_fingerprint machine);
      ("mode", mode_str mode);
      ("threads", string_of_bool apply_thread_heuristic);
      ( "params",
        String.concat ","
          (List.map (fun (p, v) -> Printf.sprintf "%s=%d" p v) param_values) );
    ]

(* --- encode --- *)

let json_of_level (c : M.level_counts) =
  J.Obj
    [
      ("name", J.Str c.M.level_name);
      ("presented", J.Int c.M.presented);
      ("cold", J.Int c.M.cold);
      ("capacity_conflict", J.Int c.M.capacity_conflict);
      ("hits", J.Int c.M.hits);
      ("demand_hits", J.Int c.M.demand_hits);
    ]

let cm_to_json (r : M.result) =
  J.Obj
    [
      ("levels", J.Arr (Array.to_list (Array.map json_of_level r.M.levels)));
      ( "per_stmt",
        J.Arr
          (List.map
             (fun (name, (sc : M.stmt_counts)) ->
               J.Obj
                 [
                   ("stmt", J.Str name);
                   ( "levels",
                     J.Arr
                       (Array.to_list (Array.map json_of_level sc.M.stmt_levels))
                   );
                   ("flops", J.Int sc.M.stmt_flops);
                   ("oi", hex_float sc.M.stmt_oi);
                 ])
             r.M.per_stmt) );
      ("threads_divisor", J.Int r.M.threads_divisor);
      ("miss_llc", hex_float r.M.miss_llc);
      ("q_dram_bytes", hex_float r.M.q_dram_bytes);
      ("flops", J.Int r.M.flops);
      ("oi", hex_float r.M.oi);
      ( "hit_ratios",
        J.Arr (Array.to_list (Array.map hex_float r.M.hit_ratios)) );
      ( "miss_ratios",
        J.Arr (Array.to_list (Array.map hex_float r.M.miss_ratios)) );
      ("fidelity", J.Str (Engine.Fidelity.to_string r.M.fidelity));
    ]

(* --- decode --- *)

exception Bad_shape

let get k j = match J.member k j with Some v -> v | None -> raise Bad_shape
let int_of = function J.Int i -> i | _ -> raise Bad_shape
let str_of = function J.Str s -> s | _ -> raise Bad_shape

let flt_of j =
  match float_of_j j with Some f -> f | None -> raise Bad_shape

let arr_of = function J.Arr l -> l | _ -> raise Bad_shape

let level_of_json j =
  {
    M.level_name = str_of (get "name" j);
    presented = int_of (get "presented" j);
    cold = int_of (get "cold" j);
    capacity_conflict = int_of (get "capacity_conflict" j);
    hits = int_of (get "hits" j);
    demand_hits = int_of (get "demand_hits" j);
  }

let cm_of_json ~machine ~mode j =
  match
    {
      M.machine;
      mode;
      levels = Array.of_list (List.map level_of_json (arr_of (get "levels" j)));
      per_stmt =
        List.map
          (fun sj ->
            ( str_of (get "stmt" sj),
              {
                M.stmt_levels =
                  Array.of_list
                    (List.map level_of_json (arr_of (get "levels" sj)));
                stmt_flops = int_of (get "flops" sj);
                stmt_oi = flt_of (get "oi" sj);
              } ))
          (arr_of (get "per_stmt" j));
      threads_divisor = int_of (get "threads_divisor" j);
      miss_llc = flt_of (get "miss_llc" j);
      q_dram_bytes = flt_of (get "q_dram_bytes" j);
      flops = int_of (get "flops" j);
      oi = flt_of (get "oi" j);
      hit_ratios =
        Array.of_list (List.map flt_of (arr_of (get "hit_ratios" j)));
      miss_ratios =
        Array.of_list (List.map flt_of (arr_of (get "miss_ratios" j)));
      fidelity =
        (match Engine.Fidelity.of_string (str_of (get "fidelity" j)) with
        | Some f -> f
        | None -> raise Bad_shape);
    }
  with
  | r -> Some r
  | exception Bad_shape -> None

let analyze_gov ?(ctx = Engine.Ctx.none) ~mode ~apply_thread_heuristic ~machine
    prog ~param_values =
  let compute () =
    (* Warm the chamber memo — and, when the context carries a result
       cache, the symbolic/v1 tier — before the model runs: a parametric
       domain decomposed here answers every later counting query at any
       parameter values in O(1), and across processes via the cache.
       Domains the chamber engine declines cost one gate check each. *)
    (try
       let scop = Poly_ir.Scop.extract prog in
       List.iter
         (fun (info : Poly_ir.Scop.stmt_info) ->
           ignore (Presburger.Count.card_param ~ctx info.Poly_ir.Scop.domain))
         scop.Poly_ir.Scop.stmt_infos
     with Engine.Budget.Exhausted _ | Invalid_argument _ -> ());
    (* Self-healing: losing pool jobs inside the counting fan-outs would
       silently skew the cache-model numbers, so when the supervised pool
       gives up on a job we redo the whole analysis inline (exact, just
       not parallel) rather than accept partial counts. *)
    try
      M.analyze_gov ~ctx ~mode ~apply_thread_heuristic ~machine prog
        ~param_values
    with Engine.Pool.Worker_failure _ ->
      M.analyze_gov
        ~ctx:(Engine.Ctx.without_pool ctx)
        ~mode ~apply_thread_heuristic ~machine prog ~param_values
  in
  match Engine.Ctx.cache ctx with
  | None -> compute ()
  | Some cache -> (
    let key =
      cm_key ~machine ~mode ~apply_thread_heuristic ~param_values prog
    in
    match Option.bind (Engine.Rcache.find cache key) (cm_of_json ~machine ~mode) with
    | Some r -> r
    | None ->
      let r = compute () in
      (* a degraded result is what this budget could afford, not what the
         analysis is worth: caching it would serve estimates to future
         runs with healthy budgets, so only exact results are stored *)
      if r.M.fidelity = Engine.Fidelity.Exact then
        Engine.Rcache.store cache key (cm_to_json r);
      r)

let analyze_cached ~cache ~mode ~apply_thread_heuristic ~machine prog
    ~param_values =
  analyze_gov
    ~ctx:(Engine.Ctx.create ~cache ())
    ~mode ~apply_thread_heuristic ~machine prog ~param_values
