type objective = Edp | Energy | Performance

type outcome = {
  cap_ghz : float;
  chosen : Perfmodel.estimate;
  baseline : Perfmodel.estimate;
  sweep : Perfmodel.estimate list;
  steps : int;
  boundedness : Roofline.boundedness;
  fidelity : Engine.Fidelity.t;
}

let objective_value obj (e : Perfmodel.estimate) =
  match obj with
  | Edp -> e.Perfmodel.edp
  | Energy -> e.Perfmodel.energy_j
  | Performance -> e.Perfmodel.time_s

(* ε-admissibility of a cap relative to the max-frequency baseline *)
let admissible ~epsilon k bd ~(baseline : Perfmodel.estimate)
    ~(bottom : Perfmodel.estimate) (e : Perfmodel.estimate) =
  let bw_cap f = Roofline.dram_bw_at k ~f_u:f in
  match bd with
  | Roofline.CB ->
    (* performance loss vs the capability loss of the same frequency drop *)
    let perf_loss =
      1.0 -. (e.Perfmodel.perf_gflops /. baseline.Perfmodel.perf_gflops)
    in
    let bw_loss = 1.0 -. (bw_cap e.Perfmodel.f_c /. bw_cap baseline.Perfmodel.f_c) in
    perf_loss <= bw_loss +. epsilon
  | Roofline.BB ->
    (* rising from the bottom of the range: performance gains must track
       bandwidth-capability gains *)
    let perf_gain =
      (e.Perfmodel.perf_gflops /. bottom.Perfmodel.perf_gflops) -. 1.0
    in
    let bw_gain = (bw_cap e.Perfmodel.f_c /. bw_cap bottom.Perfmodel.f_c) -. 1.0 in
    perf_gain >= (bw_gain *. 0.5) -. epsilon

let run ?pool ?ctx ?(fidelity = Engine.Fidelity.Exact) ?(objective = Edp)
    ?(epsilon = 1e-3) (k : Roofline.constants) profile =
  let ctx = Engine.Ctx.of_legacy ?pool ctx in
  Engine.Ctx.checkpoint ctx;
  (* the sweep points are independent closed-form evaluations; with a pool
     they fan out across workers (order is preserved by Pool.map, so the
     search below sees the same frequency grid either way) *)
  let sweep =
    match Engine.Ctx.pool ctx with
    | None -> Perfmodel.sweep k profile
    | Some pool ->
      Engine.Pool.map ?cancel:(Engine.Ctx.cancel ctx) pool
        (fun f -> Perfmodel.estimate k profile ~f_c:f)
        (Hwsim.Machine.uncore_freqs k.Roofline.machine)
  in
  let arr = Array.of_list sweep in
  let n = Array.length arr in
  assert (n > 0);
  let baseline = arr.(n - 1) in
  let bottom = arr.(0) in
  let bd = Roofline.characterize k ~oi:profile.Perfmodel.oi in
  let steps = ref 0 in
  let value i =
    incr steps;
    objective_value objective arr.(i)
  in
  let ok i = admissible ~epsilon k bd ~baseline ~bottom arr.(i) in
  (* binary search for the minimum of the (near-unimodal) objective on the
     admissible range; the bottleneck characterization seeds the bracket *)
  let lo0, hi0 =
    match bd with
    | Roofline.CB -> (0, n - 1) (* favour the low end *)
    | Roofline.BB ->
      (* BB kernels never cap below the first admissible frequency *)
      let rec first i = if i >= n - 1 || ok i then i else first (i + 1) in
      (first 0, n - 1)
  in
  let rec bisect lo hi =
    if hi - lo <= 0 then lo
    else begin
      let mid = (lo + hi) / 2 in
      if value mid <= value (mid + 1) then bisect lo mid else bisect (mid + 1) hi
    end
  in
  let best = bisect lo0 hi0 in
  (* enforce ε-admissibility: walk towards the safe end if violated *)
  let rec enforce i =
    if ok i then i
    else
      match bd with
      | Roofline.CB -> if i + 1 < n then enforce (i + 1) else n - 1
      | Roofline.BB -> if i + 1 < n then enforce (i + 1) else n - 1
  in
  let chosen_i = enforce best in
  Telemetry.count "search.runs";
  Telemetry.count ~by:!steps "search.objective_evals";
  {
    cap_ghz = arr.(chosen_i).Perfmodel.f_c;
    chosen = arr.(chosen_i);
    baseline;
    sweep;
    steps = !steps;
    boundedness = bd;
    fidelity;
  }

let pp_outcome ppf o =
  Format.fprintf ppf
    "[%a] cap=%.1f GHz (%d steps): %a@ vs max-freq %a"
    Roofline.pp_boundedness o.boundedness o.cap_ghz o.steps
    Perfmodel.pp_estimate o.chosen Perfmodel.pp_estimate o.baseline;
  if o.fidelity <> Engine.Fidelity.Exact then
    Format.fprintf ppf "@ (fidelity: %a)" Engine.Fidelity.pp o.fidelity
