(** Fleet-level (multi-tenant) analysis: compile each tenant program
    solo, ask {!Hwsim.Cap_arbiter} for the one shared uncore cap that
    satisfies every tenant's memory-bound demand, then co-simulate the
    tenant set under that cap with {!Hwsim.Sim.simulate}.

    The CLI's [analyze-multi], the serve daemon's [analyze_multi] op
    and the traffic-replay bench all go through {!analyze} so the three
    surfaces report identical numbers and the same roofline scatter
    rows ({!Report.scatter_row}). *)

type spec = {
  sp_name : string;
  sp_prog : Poly_ir.Ir.t;
  sp_sizes : (string * int) list;  (** parameter bindings for this tenant *)
  sp_weight : float;  (** QoS weight fed to the arbiter *)
  sp_cores : int;  (** cores granted; 0 = equal share *)
}

val spec :
  ?sizes:(string * int) list ->
  ?weight:float ->
  ?cores:int ->
  name:string ->
  Poly_ir.Ir.t ->
  spec
(** Smart constructor; raises [Invalid_argument] on a non-positive
    weight or negative core count. *)

type tenant_report = {
  tr_spec : spec;
  tr_compiled : Flow.compiled;  (** the tenant's solo compile *)
  tr_demand : Hwsim.Cap_arbiter.demand;  (** what it asked the arbiter for *)
  tr_outcome : Hwsim.Sim.tenant_outcome;  (** what it got co-scheduled *)
  tr_scatter : Report.scatter_row;  (** its point on the shared roofline *)
}

type result = {
  machine : Hwsim.Machine.t;
  decision : Hwsim.Cap_arbiter.decision;
  sim : Hwsim.Sim.multi_outcome;
  tenants : tenant_report list;  (** in spec order *)
}

val analyze :
  ?ctx:Engine.Ctx.t ->
  ?objective:Search.objective ->
  ?epsilon:float ->
  ?tile_size:int ->
  ?solo:bool ->
  machine:Hwsim.Machine.t ->
  rooflines:Roofline.constants ->
  spec list ->
  result
(** Compile-arbitrate-cosimulate.  [solo] (default [true]) additionally
    runs each tenant alone to report slowdowns; raises
    [Invalid_argument] on an empty spec list.  Compile errors
    ({!Poly_ir} validation, budget exhaustion with [Off]) propagate
    from {!Flow.compile} unchanged. *)

val scatter_of_result : result -> Report.scatter_row list
val json_of_result : result -> Telemetry.Json.t
val pp_result : Format.formatter -> result -> unit
