(** Content-addressed persistence of PolyUFC-CM analyses.

    The cache key is a stable digest of everything the analysis depends
    on: the SCoP in isl notation ({!Poly_ir.Scop.export_isl} of the
    program handed to the model — after tiling), a full fingerprint of the
    machine description, the model parameters (associativity mode, thread
    heuristic, parameter bindings), and {!Engine.Rcache.schema_version}.
    Payloads round-trip {!Cache_model.Model.result} through JSON with
    lossless hexadecimal float encoding, so a cache hit reproduces the
    analysis bit-for-bit and downstream reports stay byte-identical. *)

val machine_fingerprint : Hwsim.Machine.t -> string
(** Every field of the machine description, canonically rendered; any
    retuning (e.g. {!Hwsim.Machine.with_core_ghz}) changes the key. *)

val cm_key :
  machine:Hwsim.Machine.t ->
  mode:Cache_model.Model.assoc_mode ->
  apply_thread_heuristic:bool ->
  param_values:(string * int) list ->
  Poly_ir.Ir.t ->
  string

val cm_to_json : Cache_model.Model.result -> Telemetry.Json.t

val cm_of_json :
  machine:Hwsim.Machine.t ->
  mode:Cache_model.Model.assoc_mode ->
  Telemetry.Json.t ->
  Cache_model.Model.result option
(** [None] when the payload does not have the expected shape (treated by
    {!Engine.Rcache.find_or_add} as a corrupt entry). *)

val analyze_gov :
  ?ctx:Engine.Ctx.t ->
  mode:Cache_model.Model.assoc_mode ->
  apply_thread_heuristic:bool ->
  machine:Hwsim.Machine.t ->
  Poly_ir.Ir.t ->
  param_values:(string * int) list ->
  Cache_model.Model.result
(** Governed analysis through the context: memoized through [ctx]'s cache
    when present, budget-metered via {!Cache_model.Model.analyze_gov}.
    Degraded results are returned but never stored — a future run with a
    healthier budget must be able to compute (and then cache) the exact
    analysis. *)

val analyze_cached :
  cache:Engine.Rcache.t ->
  mode:Cache_model.Model.assoc_mode ->
  apply_thread_heuristic:bool ->
  machine:Hwsim.Machine.t ->
  Poly_ir.Ir.t ->
  param_values:(string * int) list ->
  Cache_model.Model.result
(** {!Cache_model.Model.analyze} memoized through the result cache.
    Deprecated spelling of [analyze_gov ~ctx:(Ctx.create ~cache ())]. *)
