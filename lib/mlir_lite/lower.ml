open Poly_ir

exception Lowering_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Lowering_error s)) fmt

let cst = Ir.aff_const
let v = Ir.aff_var

(* flat 1-d buffer declaration *)
let buf name elems = { Ir.array_name = name; extents = [ cst elems ]; elem_size = 8 }

(* index expression Σ coef·var + const over flat buffers *)
let idx terms const =
  List.fold_left
    (fun acc (c, var) -> Ir.aff_add acc (Ir.aff_scale c (v var)))
    (cst const) terms

(* ---------- torch -> linalg ---------- *)

let decompose_torch prefix t =
  let b n = prefix ^ "_" ^ n in
  match t with
  | Dialect.T_sdpa { batch; heads; seq; dim } ->
    let g = batch * heads in
    let decls =
      [
        buf (b "q") (g * seq * dim);
        buf (b "k") (g * seq * dim);
        buf (b "v") (g * seq * dim);
        buf (b "att") (g * seq * seq);
        buf (b "rsum") (g * seq);
        buf (b "out") (g * seq * dim);
      ]
    in
    let ops =
      [
        Dialect.L_batch_matmul
          { g; m = seq; k = dim; n = seq; transpose_b = true;
            a = b "q"; b = b "k"; c = b "att" };
        Dialect.L_scale
          { elems = g * seq * seq; factor = 1.0 /. sqrt (float_of_int dim);
            buf = b "att" };
        Dialect.L_exp { elems = g * seq * seq; src = b "att"; dst = b "att" };
        Dialect.L_rowsum { rows = g * seq; cols = seq; src = b "att"; dst = b "rsum" };
        Dialect.L_rowdiv { rows = g * seq; cols = seq; buf = b "att"; divisor = b "rsum" };
        Dialect.L_batch_matmul
          { g; m = seq; k = seq; n = dim; transpose_b = false;
            a = b "att"; b = b "v"; c = b "out" };
      ]
    in
    (decls, ops)
  | Dialect.T_conv2d { n; c; h; w; k; r; s } ->
    let oh = h - r + 1 and ow = w - s + 1 in
    ( [
        buf (b "in") (n * c * h * w);
        buf (b "filt") (k * c * r * s);
        buf (b "out") (n * k * oh * ow);
      ],
      [
        Dialect.L_conv2d_nchw_fchw
          { n; c; h; w; k; r; s; input = b "in"; filter = b "filt"; output = b "out" };
      ] )
  | Dialect.T_matmul { m; k; n } ->
    ( [ buf (b "a") (m * k); buf (b "b") (k * n); buf (b "c") (m * n) ],
      [ Dialect.L_matmul { m; k; n; a = b "a"; b = b "b"; c = b "c" } ] )
  | Dialect.T_softmax { rows; cols } ->
    ( [ buf (b "x") (rows * cols); buf (b "rsum") rows ],
      [
        Dialect.L_exp { elems = rows * cols; src = b "x"; dst = b "x" };
        Dialect.L_rowsum { rows; cols; src = b "x"; dst = b "rsum" };
        Dialect.L_rowdiv { rows; cols; buf = b "x"; divisor = b "rsum" };
      ] )
  | Dialect.T_relu { elems } ->
    ([ buf (b "x") elems ], [ Dialect.L_relu { elems; buf = b "x" } ])
  | Dialect.T_add { elems } ->
    ( [ buf (b "a") elems; buf (b "b") elems; buf (b "c") elems ],
      [ Dialect.L_add { elems; a = b "a"; b = b "b"; dst = b "c" } ] )

let merge_decls existing fresh =
  List.fold_left
    (fun acc (d : Ir.array_decl) ->
      match
        List.find_opt (fun (e : Ir.array_decl) -> e.Ir.array_name = d.Ir.array_name) acc
      with
      | None -> acc @ [ d ]
      | Some e ->
        if not (List.for_all2 Ir.aff_equal e.Ir.extents d.Ir.extents) then
          fail "buffer %s redeclared with a different shape" d.Ir.array_name;
        acc)
    existing fresh

let torch_to_linalg (m : Dialect.t) =
  let arrays = ref m.Dialect.arrays in
  let ops =
    List.concat_map
      (function
        | Dialect.Torch_op (prefix, t) ->
          let decls, lops = decompose_torch prefix t in
          arrays := merge_decls !arrays decls;
          List.map (fun l -> Dialect.Linalg_op l) lops
        | op -> [ op ])
      m.Dialect.ops
  in
  { m with Dialect.arrays = !arrays; ops }

(* ---------- linalg -> affine ---------- *)

(* fresh names: each nest gets a unique integer suffix *)
let lower_linalg_op ~nest_id l =
  let var n = Printf.sprintf "%s%d" n nest_id in
  let stmt n = Printf.sprintf "%s_%d" n nest_id in
  let loop name ~hi body = Ir.loop (var name) ~lo:(cst 0) ~hi:(cst hi) body in
  match l with
  | Dialect.L_matmul { m; k; n; a; b; c } ->
    loop "i" ~hi:m
      [
        loop "j" ~hi:n
          [
            Ir.assign (stmt "mm_init")
              ~target:(Ir.write c [ idx [ (n, var "i"); (1, var "j") ] 0 ])
              (Ir.Const 0.0);
            loop "kk" ~hi:k
              [
                Ir.assign (stmt "mm_upd")
                  ~target:(Ir.write c [ idx [ (n, var "i"); (1, var "j") ] 0 ])
                  (Ir.Bin
                     ( Ir.Add,
                       Ir.read c [ idx [ (n, var "i"); (1, var "j") ] 0 ],
                       Ir.Bin
                         ( Ir.Mul,
                           Ir.read a [ idx [ (k, var "i"); (1, var "kk") ] 0 ],
                           Ir.read b [ idx [ (n, var "kk"); (1, var "j") ] 0 ] ) ));
              ];
          ];
      ]
  | Dialect.L_batch_matmul { g; m; k; n; transpose_b; a; b; c } ->
    let b_index =
      if transpose_b then
        (* B is [g][n][k]: element (kk, j) of group gg at gg·n·k + j·k + kk *)
        idx [ (n * k, var "g"); (k, var "j"); (1, var "kk") ] 0
      else idx [ (k * n, var "g"); (n, var "kk"); (1, var "j") ] 0
    in
    loop "g" ~hi:g
      [
        loop "i" ~hi:m
          [
            loop "j" ~hi:n
              [
                Ir.assign (stmt "bmm_init")
                  ~target:
                    (Ir.write c [ idx [ (m * n, var "g"); (n, var "i"); (1, var "j") ] 0 ])
                  (Ir.Const 0.0);
                loop "kk" ~hi:k
                  [
                    Ir.assign (stmt "bmm_upd")
                      ~target:
                        (Ir.write c
                           [ idx [ (m * n, var "g"); (n, var "i"); (1, var "j") ] 0 ])
                      (Ir.Bin
                         ( Ir.Add,
                           Ir.read c
                             [ idx [ (m * n, var "g"); (n, var "i"); (1, var "j") ] 0 ],
                           Ir.Bin
                             ( Ir.Mul,
                               Ir.read a
                                 [ idx [ (m * k, var "g"); (k, var "i"); (1, var "kk") ] 0 ],
                               Ir.read b [ b_index ] ) ));
                  ];
              ];
          ];
      ]
  | Dialect.L_conv2d_nchw_fchw { n; c; h; w; k; r; s; input; filter; output } ->
    let oh = h - r + 1 and ow = w - s + 1 in
    loop "n" ~hi:n
      [
        loop "f" ~hi:k
          [
            loop "y" ~hi:oh
              [
                loop "x" ~hi:ow
                  [
                    Ir.assign (stmt "conv_init")
                      ~target:
                        (Ir.write output
                           [ idx
                               [ (k * oh * ow, var "n"); (oh * ow, var "f");
                                 (ow, var "y"); (1, var "x") ]
                               0 ])
                      (Ir.Const 0.0);
                    loop "c" ~hi:c
                      [
                        loop "ry" ~hi:r
                          [
                            loop "rx" ~hi:s
                              [
                                Ir.assign (stmt "conv_upd")
                                  ~target:
                                    (Ir.write output
                                       [ idx
                                           [ (k * oh * ow, var "n"); (oh * ow, var "f");
                                             (ow, var "y"); (1, var "x") ]
                                           0 ])
                                  (Ir.Bin
                                     ( Ir.Add,
                                       Ir.read output
                                         [ idx
                                             [ (k * oh * ow, var "n"); (oh * ow, var "f");
                                               (ow, var "y"); (1, var "x") ]
                                             0 ],
                                       Ir.Bin
                                         ( Ir.Mul,
                                           Ir.read input
                                             [ idx
                                                 [ (c * h * w, var "n"); (h * w, var "c");
                                                   (w, var "y"); (w, var "ry");
                                                   (1, var "x"); (1, var "rx") ]
                                                 0 ],
                                           Ir.read filter
                                             [ idx
                                                 [ (c * r * s, var "f"); (r * s, var "c");
                                                   (s, var "ry"); (1, var "rx") ]
                                                 0 ] ) ));
                              ];
                          ];
                      ];
                  ];
              ];
          ];
      ]
  | Dialect.L_scale { elems; factor; buf } ->
    loop "i" ~hi:elems
      [
        Ir.assign (stmt "scale")
          ~target:(Ir.write buf [ idx [ (1, var "i") ] 0 ])
          (Ir.Bin (Ir.Mul, Ir.read buf [ idx [ (1, var "i") ] 0 ], Ir.Const factor));
      ]
  | Dialect.L_exp { elems; src; dst } ->
    loop "i" ~hi:elems
      [
        Ir.assign (stmt "exp")
          ~target:(Ir.write dst [ idx [ (1, var "i") ] 0 ])
          (Ir.Exp (Ir.read src [ idx [ (1, var "i") ] 0 ]));
      ]
  | Dialect.L_rowsum { rows; cols; src; dst } ->
    loop "r" ~hi:rows
      [
        Ir.assign (stmt "rs_init")
          ~target:(Ir.write dst [ idx [ (1, var "r") ] 0 ])
          (Ir.Const 0.0);
        loop "c" ~hi:cols
          [
            Ir.assign (stmt "rs_upd")
              ~target:(Ir.write dst [ idx [ (1, var "r") ] 0 ])
              (Ir.Bin
                 ( Ir.Add,
                   Ir.read dst [ idx [ (1, var "r") ] 0 ],
                   Ir.read src [ idx [ (cols, var "r"); (1, var "c") ] 0 ] ));
          ];
      ]
  | Dialect.L_rowdiv { rows; cols; buf; divisor } ->
    loop "r" ~hi:rows
      [
        loop "c" ~hi:cols
          [
            Ir.assign (stmt "rdiv")
              ~target:(Ir.write buf [ idx [ (cols, var "r"); (1, var "c") ] 0 ])
              (Ir.Bin
                 ( Ir.Div,
                   Ir.read buf [ idx [ (cols, var "r"); (1, var "c") ] 0 ],
                   Ir.read divisor [ idx [ (1, var "r") ] 0 ] ));
          ];
      ]
  | Dialect.L_relu { elems; buf } ->
    loop "i" ~hi:elems
      [
        Ir.assign (stmt "relu")
          ~target:(Ir.write buf [ idx [ (1, var "i") ] 0 ])
          (Ir.Bin (Ir.Max, Ir.read buf [ idx [ (1, var "i") ] 0 ], Ir.Const 0.0));
      ]
  | Dialect.L_add { elems; a; b; dst } ->
    loop "i" ~hi:elems
      [
        Ir.assign (stmt "add")
          ~target:(Ir.write dst [ idx [ (1, var "i") ] 0 ])
          (Ir.Bin
             ( Ir.Add,
               Ir.read a [ idx [ (1, var "i") ] 0 ],
               Ir.read b [ idx [ (1, var "i") ] 0 ] ));
      ]
  | Dialect.L_transpose { rows; cols; src; dst } ->
    loop "i" ~hi:rows
      [
        loop "j" ~hi:cols
          [
            Ir.assign (stmt "transp")
              ~target:(Ir.write dst [ idx [ (rows, var "j"); (1, var "i") ] 0 ])
              (Ir.read src [ idx [ (cols, var "i"); (1, var "j") ] 0 ]);
          ];
      ]

let linalg_to_affine ?(tile = true) ?(tile_size = 32) (m : Dialect.t) =
  let nest_id = ref 0 in
  let ops =
    List.map
      (function
        | Dialect.Linalg_op l ->
          incr nest_id;
          let item = lower_linalg_op ~nest_id:!nest_id l in
          let item =
            if tile then begin
              let prog =
                {
                  Ir.prog_name = "nest";
                  params = [];
                  arrays = m.Dialect.arrays;
                  body = [ item ];
                }
              in
              match (Tiling.tile ~tile_size prog).Tiling.tiled.Ir.body with
              | [ tiled ] -> tiled
              | _ -> fail "tiling changed the nest count"
            end
            else item
          in
          Dialect.Affine_nest item
        | Dialect.Torch_op (p, _) ->
          fail "linalg-to-affine: torch op '%s' not yet lowered" p
        | op -> op)
      m.Dialect.ops
  in
  { m with Dialect.ops }

let affine_to_scf (m : Dialect.t) =
  {
    m with
    Dialect.ops =
      List.map
        (function
          | Dialect.Affine_nest i -> Dialect.Scf_nest i
          | op -> op)
        m.Dialect.ops;
  }

(* ---------- pass manager ---------- *)

type pass = { pass_name : string; run : Dialect.t -> Dialect.t }

let pass_torch_to_linalg = { pass_name = "torch-to-linalg"; run = torch_to_linalg }

let pass_linalg_to_affine ?tile ?tile_size () =
  { pass_name = "linalg-to-affine"; run = linalg_to_affine ?tile ?tile_size }

let pass_affine_to_scf = { pass_name = "affine-to-scf"; run = affine_to_scf }

let run_pipeline passes m =
  List.fold_left
    (fun m p ->
      try p.run m
      with
      | Lowering_error e -> fail "pass %s: %s" p.pass_name e
      | Invalid_argument e -> fail "pass %s: %s" p.pass_name e)
    m passes

let default_pipeline ?tile ?tile_size () =
  [
    pass_torch_to_linalg;
    pass_linalg_to_affine ?tile ?tile_size ();
    pass_affine_to_scf;
  ]

(* ---------- flattening ---------- *)

let rec root_var = function
  | Ir.Loop l -> l.Ir.var
  | Ir.Stmt s -> s.Ir.stmt_name
  | Ir.If b -> (
    match b.Ir.then_ @ b.Ir.else_ with i :: _ -> root_var i | [] -> "if")

let to_program (m : Dialect.t) =
  let items = ref [] and caps = ref [] in
  let pending_cap = ref None in
  List.iter
    (function
      | Dialect.Affine_nest i | Dialect.Scf_nest i ->
        (match !pending_cap with
        | Some f ->
          caps := (root_var i, f) :: !caps;
          pending_cap := None
        | None -> ());
        items := i :: !items
      | Dialect.Set_uncore_cap f -> pending_cap := Some f
      | Dialect.Torch_op (p, _) -> fail "to_program: unlowered torch op '%s'" p
      | Dialect.Linalg_op l ->
        fail "to_program: unlowered linalg op '%s'" (Dialect.linalg_name l))
    m.Dialect.ops;
  let prog =
    {
      Ir.prog_name = m.Dialect.module_name;
      params = [];
      arrays = m.Dialect.arrays;
      body = List.rev !items;
    }
  in
  (match Ir.validate prog with
  | Ok () -> ()
  | Error e -> fail "to_program: %s" e);
  (prog, List.rev !caps)

let nest_program (m : Dialect.t) op =
  match op with
  | Dialect.Affine_nest i | Dialect.Scf_nest i ->
    {
      Ir.prog_name = m.Dialect.module_name ^ "_nest";
      params = [];
      arrays = m.Dialect.arrays;
      body = [ i ];
    }
  | _ -> fail "nest_program: not a loop nest"

(* Lowering failures reflect unsupported/malformed input IR: classify as
   invalid input (exit 3) at the Guard boundary. *)
let () =
  Engine.Guard.register_classifier (function
    | Lowering_error msg -> Some (Engine.Guard.invalid msg)
    | _ -> None)
