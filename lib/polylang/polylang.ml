open Poly_ir

exception Parse_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Parse_error s)) fmt

(* ---------- lexer ---------- *)

type token =
  | INT of int
  | FLOAT of float
  | IDENT of string
  | KW of string (* program arrays for parallel max min sqrt exp f64 f32 i64 i32 *)
  | LBRACE | RBRACE | LBRACK | RBRACK | LPAREN | RPAREN
  | SEMI | COMMA | COLON
  | ASSIGN | PLUSPLUS | PLUSEQ
  | LT | LE | GT | GE | EQEQ | AMPAMP
  | PLUS | MINUS | STAR | SLASH
  | EOF

let keywords =
  [ "program"; "arrays"; "for"; "parallel"; "if"; "else"; "max"; "min";
    "sqrt"; "exp"; "f64"; "f32"; "i64"; "i32" ]

let token_name = function
  | INT n -> string_of_int n
  | FLOAT f -> string_of_float f
  | IDENT s | KW s -> s
  | LBRACE -> "{" | RBRACE -> "}" | LBRACK -> "[" | RBRACK -> "]"
  | LPAREN -> "(" | RPAREN -> ")"
  | SEMI -> ";" | COMMA -> "," | COLON -> ":"
  | ASSIGN -> "=" | PLUSPLUS -> "++" | PLUSEQ -> "+="
  | LT -> "<" | LE -> "<=" | GT -> ">" | GE -> ">=" | EQEQ -> "=="
  | AMPAMP -> "&&"
  | PLUS -> "+" | MINUS -> "-" | STAR -> "*" | SLASH -> "/"
  | EOF -> "<eof>"

let tokenize src =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  let push t = toks := (t, !line) :: !toks in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin incr line; incr i end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '/' then begin
      while !i < n && src.[!i] <> '\n' do incr i done
    end
    else if c >= '0' && c <= '9' then begin
      let j = ref !i in
      while !j < n && src.[!j] >= '0' && src.[!j] <= '9' do incr j done;
      if !j < n && src.[!j] = '.' then begin
        incr j;
        while !j < n && src.[!j] >= '0' && src.[!j] <= '9' do incr j done;
        if !j < n && (src.[!j] = 'e' || src.[!j] = 'E') then begin
          incr j;
          if !j < n && (src.[!j] = '+' || src.[!j] = '-') then incr j;
          while !j < n && src.[!j] >= '0' && src.[!j] <= '9' do incr j done
        end;
        push (FLOAT (float_of_string (String.sub src !i (!j - !i))))
      end
      else push (INT (int_of_string (String.sub src !i (!j - !i))));
      i := !j
    end
    else if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' then begin
      let j = ref !i in
      let idc c =
        (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
        || (c >= '0' && c <= '9') || c = '_'
      in
      while !j < n && idc src.[!j] do incr j done;
      let w = String.sub src !i (!j - !i) in
      i := !j;
      push (if List.mem w keywords then KW w else IDENT w)
    end
    else begin
      let two = if !i + 1 < n then String.sub src !i 2 else "" in
      match two with
      | "++" -> push PLUSPLUS; i := !i + 2
      | "+=" -> push PLUSEQ; i := !i + 2
      | "<=" -> push LE; i := !i + 2
      | ">=" -> push GE; i := !i + 2
      | "==" -> push EQEQ; i := !i + 2
      | "&&" -> push AMPAMP; i := !i + 2
      | _ ->
        (match c with
        | '{' -> push LBRACE | '}' -> push RBRACE
        | '[' -> push LBRACK | ']' -> push RBRACK
        | '(' -> push LPAREN | ')' -> push RPAREN
        | ';' -> push SEMI | ',' -> push COMMA | ':' -> push COLON
        | '=' -> push ASSIGN | '<' -> push LT | '>' -> push GT
        | '+' -> push PLUS | '-' -> push MINUS
        | '*' -> push STAR | '/' -> push SLASH
        | c -> fail "line %d: unexpected character %C" !line c);
        incr i
    end
  done;
  push EOF;
  List.rev !toks

(* ---------- parser state ---------- *)

type st = {
  mutable toks : (token * int) list;
  mutable params : string list;
  mutable scope : string list;  (* loop variables in scope *)
  mutable stmt_counter : int;
}

let peek st = match st.toks with [] -> EOF | (t, _) :: _ -> t
let cur_line st = match st.toks with [] -> 0 | (_, l) :: _ -> l
let advance st = match st.toks with [] -> () | _ :: r -> st.toks <- r

let expect st t =
  if peek st = t then advance st
  else
    fail "line %d: expected '%s' but found '%s'" (cur_line st) (token_name t)
      (token_name (peek st))

let parse_ident st =
  match peek st with
  | IDENT s -> advance st; s
  | t -> fail "line %d: expected identifier, found '%s'" (cur_line st) (token_name t)

(* ---------- affine expressions ---------- *)

let rec parse_aff st =
  let lhs = parse_aff_term st in
  let rec loop acc =
    match peek st with
    | PLUS -> advance st; loop (Ir.aff_add acc (parse_aff_term st))
    | MINUS -> advance st; loop (Ir.aff_sub acc (parse_aff_term st))
    | _ -> acc
  in
  loop lhs

and parse_aff_term st =
  let lhs = parse_aff_factor st in
  let rec loop acc =
    match peek st with
    | STAR ->
      advance st;
      let rhs = parse_aff_factor st in
      let is_const (a : Ir.aff) = a.Ir.var_coefs = [] && a.Ir.param_coefs = [] in
      if is_const acc then loop (Ir.aff_scale acc.Ir.const rhs)
      else if is_const rhs then loop (Ir.aff_scale rhs.Ir.const acc)
      else fail "line %d: non-affine product in index/bound" (cur_line st)
    | _ -> acc
  in
  loop lhs

and parse_aff_factor st =
  match peek st with
  | INT n -> advance st; Ir.aff_const n
  | MINUS -> advance st; Ir.aff_scale (-1) (parse_aff_factor st)
  | IDENT v ->
    advance st;
    if List.mem v st.scope then Ir.aff_var v
    else if List.mem v st.params then Ir.aff_param v
    else fail "line %d: unknown variable '%s'" (cur_line st) v
  | LPAREN ->
    advance st;
    let a = parse_aff st in
    expect st RPAREN;
    a
  | t -> fail "line %d: expected affine expression, found '%s'" (cur_line st) (token_name t)

let parse_aff_list st kw =
  (* either a single aff, or kw(aff, aff, ...) *)
  match peek st with
  | KW k when k = kw ->
    advance st;
    expect st LPAREN;
    let rec loop acc =
      let a = parse_aff st in
      if peek st = COMMA then begin advance st; loop (a :: acc) end
      else List.rev (a :: acc)
    in
    let l = loop [] in
    expect st RPAREN;
    l
  | _ -> [ parse_aff st ]

(* ---------- accesses and scalar expressions ---------- *)

let parse_indices st =
  let rec loop acc =
    if peek st = LBRACK then begin
      advance st;
      let a = parse_aff st in
      expect st RBRACK;
      loop (a :: acc)
    end
    else List.rev acc
  in
  loop []

let rec parse_expr st =
  let lhs = parse_expr_term st in
  let rec loop acc =
    match peek st with
    | PLUS -> advance st; loop (Ir.Bin (Ir.Add, acc, parse_expr_term st))
    | MINUS -> advance st; loop (Ir.Bin (Ir.Sub, acc, parse_expr_term st))
    | _ -> acc
  in
  loop lhs

and parse_expr_term st =
  let lhs = parse_expr_factor st in
  let rec loop acc =
    match peek st with
    | STAR -> advance st; loop (Ir.Bin (Ir.Mul, acc, parse_expr_factor st))
    | SLASH -> advance st; loop (Ir.Bin (Ir.Div, acc, parse_expr_factor st))
    | _ -> acc
  in
  loop lhs

and parse_expr_factor st =
  match peek st with
  | FLOAT f -> advance st; Ir.Const f
  | INT n -> advance st; Ir.Const (float_of_int n)
  | MINUS -> advance st; Ir.Neg (parse_expr_factor st)
  | LPAREN ->
    advance st;
    let e = parse_expr st in
    expect st RPAREN;
    e
  | KW "sqrt" ->
    advance st;
    expect st LPAREN;
    let e = parse_expr st in
    expect st RPAREN;
    Ir.Sqrt e
  | KW "exp" ->
    advance st;
    expect st LPAREN;
    let e = parse_expr st in
    expect st RPAREN;
    Ir.Exp e
  | KW (("max" | "min") as k) ->
    advance st;
    expect st LPAREN;
    let a = parse_expr st in
    expect st COMMA;
    let b = parse_expr st in
    expect st RPAREN;
    Ir.Bin ((if k = "max" then Ir.Max else Ir.Min), a, b)
  | IDENT name ->
    advance st;
    let indices = parse_indices st in
    if indices = [] then
      fail "line %d: scalar variables are not supported; use a 0-d array access or a loop variable in an index" (cur_line st)
    else Ir.Load { Ir.array = name; indices; kind = Ir.Read }
  | t -> fail "line %d: expected expression, found '%s'" (cur_line st) (token_name t)

(* ---------- items ---------- *)

let rec parse_items st =
  let rec loop acc =
    match peek st with
    | RBRACE -> List.rev acc
    | _ -> loop (parse_item st :: acc)
  in
  loop []

and parse_cond st =
  (* conjunction of affine comparisons: a <= b && c == d && ... *)
  let one () =
    let lhs = parse_aff st in
    match peek st with
    | LE -> advance st; let r = parse_aff st in
      [ Ir.cond_ge (Ir.aff_sub r lhs) ]
    | LT -> advance st; let r = parse_aff st in
      [ Ir.cond_ge (Ir.aff_sub (Ir.aff_sub r lhs) (Ir.aff_const 1)) ]
    | GE -> advance st; let r = parse_aff st in
      [ Ir.cond_ge (Ir.aff_sub lhs r) ]
    | GT -> advance st; let r = parse_aff st in
      [ Ir.cond_ge (Ir.aff_sub (Ir.aff_sub lhs r) (Ir.aff_const 1)) ]
    | EQEQ -> advance st; let r = parse_aff st in
      [ Ir.cond_eq (Ir.aff_sub lhs r) ]
    | t ->
      fail "line %d: expected comparison in branch condition, found '%s'"
        (cur_line st) (token_name t)
  in
  let rec loop acc =
    let cs = one () in
    if peek st = AMPAMP then begin advance st; loop (acc @ cs) end
    else acc @ cs
  in
  loop []

and parse_item st =
  match peek st with
  | KW "if" ->
    advance st;
    expect st LPAREN;
    let conds = parse_cond st in
    expect st RPAREN;
    expect st LBRACE;
    let then_ = parse_items st in
    expect st RBRACE;
    let else_ =
      if peek st = KW "else" then begin
        advance st;
        expect st LBRACE;
        let e = parse_items st in
        expect st RBRACE;
        e
      end
      else []
    in
    Ir.if_ ~else_ conds then_
  | KW "parallel" ->
    advance st;
    (match parse_item st with
    | Ir.Loop l -> Ir.Loop { l with Ir.parallel = true }
    | _ -> fail "line %d: 'parallel' must precede a for loop" (cur_line st))
  | KW "for" ->
    advance st;
    expect st LPAREN;
    let var = parse_ident st in
    expect st ASSIGN;
    let lo = parse_aff_list st "max" in
    expect st SEMI;
    let v2 = parse_ident st in
    if v2 <> var then
      fail "line %d: loop condition must test '%s'" (cur_line st) var;
    expect st LT;
    let hi = parse_aff_list st "min" in
    expect st SEMI;
    let v3 = parse_ident st in
    if v3 <> var then
      fail "line %d: loop increment must update '%s'" (cur_line st) var;
    let step =
      match peek st with
      | PLUSPLUS -> advance st; 1
      | PLUSEQ -> (
        advance st;
        match peek st with
        | INT s when s > 0 -> advance st; s
        | _ -> fail "line %d: step must be a positive integer" (cur_line st))
      | t -> fail "line %d: expected '++' or '+=', found '%s'" (cur_line st) (token_name t)
    in
    expect st RPAREN;
    expect st LBRACE;
    st.scope <- var :: st.scope;
    let body = parse_items st in
    st.scope <- List.tl st.scope;
    expect st RBRACE;
    Ir.loop_minmax var ~lo ~hi ~step body
  | IDENT name ->
    advance st;
    let indices = parse_indices st in
    if indices = [] then
      fail "line %d: expected an array access on the left-hand side" (cur_line st);
    expect st ASSIGN;
    let rhs = parse_expr st in
    expect st SEMI;
    let sname = Printf.sprintf "S%d" st.stmt_counter in
    st.stmt_counter <- st.stmt_counter + 1;
    Ir.assign sname ~target:{ Ir.array = name; indices; kind = Ir.Write } rhs
  | t -> fail "line %d: expected statement or loop, found '%s'" (cur_line st) (token_name t)

let parse_array_decls st =
  expect st (KW "arrays");
  expect st LBRACE;
  let rec loop acc =
    match peek st with
    | RBRACE -> advance st; List.rev acc
    | IDENT name ->
      advance st;
      let extents = parse_indices st in
      if extents = [] then
        fail "line %d: array '%s' needs at least one dimension" (cur_line st) name;
      expect st COLON;
      let elem_size =
        match peek st with
        | KW "f64" | KW "i64" -> advance st; 8
        | KW "f32" | KW "i32" -> advance st; 4
        | t -> fail "line %d: expected element type, found '%s'" (cur_line st) (token_name t)
      in
      expect st SEMI;
      loop ({ Ir.array_name = name; extents; elem_size } :: acc)
    | t -> fail "line %d: expected array declaration, found '%s'" (cur_line st) (token_name t)
  in
  loop []

let parse src =
  let st = { toks = tokenize src; params = []; scope = []; stmt_counter = 0 } in
  expect st (KW "program");
  let prog_name = parse_ident st in
  if peek st = LPAREN then begin
    advance st;
    let rec loop acc =
      let p = parse_ident st in
      if peek st = COMMA then begin advance st; loop (p :: acc) end
      else List.rev (p :: acc)
    in
    let ps = if peek st = RPAREN then [] else loop [] in
    expect st RPAREN;
    st.params <- ps
  end;
  expect st LBRACE;
  let arrays =
    match peek st with KW "arrays" -> parse_array_decls st | _ -> []
  in
  let body = parse_items st in
  expect st RBRACE;
  expect st EOF;
  let prog = { Ir.prog_name; params = st.params; arrays; body } in
  match Ir.validate prog with
  | Ok () -> prog
  | Error m -> fail "validation: %s" m

let parse_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let src = really_input_string ic len in
  close_in ic;
  parse src

(* ---------- printing (re-parsable) ---------- *)

let to_string prog =
  let buf = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let aff_str a = Format.asprintf "%a" Ir.pp_aff a in
  let bound kw = function
    | [ a ] -> aff_str a
    | l -> Printf.sprintf "%s(%s)" kw (String.concat ", " (List.map aff_str l))
  in
  let access_str (a : Ir.access) =
    a.Ir.array
    ^ String.concat "" (List.map (fun i -> "[" ^ aff_str i ^ "]") a.Ir.indices)
  in
  let rec expr_str = function
    | Ir.Load a -> access_str a
    | Ir.Const f ->
      if Float.is_integer f && Float.abs f < 1e9 then Printf.sprintf "%.1f" f
      else Printf.sprintf "%g" f
    | Ir.Bin (Ir.Max, a, b) -> Printf.sprintf "max(%s, %s)" (expr_str a) (expr_str b)
    | Ir.Bin (Ir.Min, a, b) -> Printf.sprintf "min(%s, %s)" (expr_str a) (expr_str b)
    | Ir.Bin (op, a, b) ->
      let s = match op with
        | Ir.Add -> "+" | Ir.Sub -> "-" | Ir.Mul -> "*" | Ir.Div -> "/"
        | _ -> assert false
      in
      Printf.sprintf "(%s %s %s)" (expr_str a) s (expr_str b)
    | Ir.Neg e -> Printf.sprintf "(0.0 - %s)" (expr_str e)
    | Ir.Sqrt e -> Printf.sprintf "sqrt(%s)" (expr_str e)
    | Ir.Exp e -> Printf.sprintf "exp(%s)" (expr_str e)
  in
  let cond_str (c : Ir.cond) =
    Printf.sprintf "%s %s 0" (aff_str c.Ir.cond_aff)
      (if c.Ir.cond_eq then "==" else ">=")
  in
  let rec item ind = function
    | Ir.If b ->
      pf "%sif (%s) {\n" ind
        (String.concat " && " (List.map cond_str b.Ir.conds));
      List.iter (item (ind ^ "  ")) b.Ir.then_;
      if b.Ir.else_ = [] then pf "%s}\n" ind
      else begin
        pf "%s} else {\n" ind;
        List.iter (item (ind ^ "  ")) b.Ir.else_;
        pf "%s}\n" ind
      end
    | Ir.Stmt s ->
      pf "%s%s = %s;\n" ind (access_str s.Ir.target) (expr_str s.Ir.rhs)
    | Ir.Loop l ->
      pf "%s%sfor (%s = %s; %s < %s; %s %s) {\n" ind
        (if l.Ir.parallel then "parallel " else "")
        l.Ir.var (bound "max" l.Ir.lo) l.Ir.var (bound "min" l.Ir.hi) l.Ir.var
        (if l.Ir.step = 1 then "++" else Printf.sprintf "+= %d" l.Ir.step);
      List.iter (item (ind ^ "  ")) l.Ir.body;
      pf "%s}\n" ind
  in
  pf "program %s" prog.Ir.prog_name;
  if prog.Ir.params <> [] then pf "(%s)" (String.concat ", " prog.Ir.params);
  pf " {\n";
  if prog.Ir.arrays <> [] then begin
    pf "  arrays {\n";
    List.iter
      (fun (d : Ir.array_decl) ->
        pf "    %s%s : %s;\n" d.Ir.array_name
          (String.concat ""
             (List.map (fun e -> "[" ^ aff_str e ^ "]") d.Ir.extents))
          (if d.Ir.elem_size = 8 then "f64" else "f32"))
      prog.Ir.arrays;
    pf "  }\n"
  end;
  List.iter (item "  ") prog.Ir.body;
  pf "}\n";
  Buffer.contents buf

(* Teach the CLI's crash-proof boundary that our parse errors mean the
   *input* is bad (exit 3), not the tool; the "line N" prefix becomes the
   diagnostic span. *)
let () =
  Engine.Guard.register_classifier (function
    | Parse_error msg -> Some (Engine.Guard.invalid msg)
    | _ -> None)
