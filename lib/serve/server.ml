(* The serve daemon's connection and queue machinery.

   Invariants that keep the drain correct and the counters honest:

   - [pending] counts every admitted request until its response write
     has been attempted (queued *and* executing).  Admission rejects on
     [pending >= queue_depth], so overload behaviour is deterministic:
     it does not depend on how fast executors dequeue.
   - A connection's fd is closed by whoever brings it to rest: the
     session thread when no request of that connection is in flight,
     otherwise the executor that answers the last one.  Nobody writes to
     an fd after it is closed because writes happen under the
     connection's write mutex and [closed] is checked under the server
     mutex before the write is attempted.
   - [draining] is an atomic flag so the SIGTERM handler only does an
     atomic CAS (plus [exit 130] on the second signal); the blocked
     [accept] is woken by the signal's EINTR, or by a self-connection
     when the drain comes from a [shutdown] request on a session
     thread. *)

module J = Telemetry.Json

type config = {
  socket_path : string;
  max_clients : int;
  max_inflight : int;
  queue_depth : int;
  workers : int;
  max_frame : int;
}

let default_config socket_path =
  {
    socket_path;
    max_clients = 64;
    max_inflight = 8;
    queue_depth = 128;
    workers = 4;
    max_frame = Protocol.default_max_frame;
  }

type conn = {
  fd : Unix.file_descr;
  cid : int;
  write_mu : Mutex.t;
  mutable inflight : int;
  mutable conn_closed : bool;  (** session thread has stopped reading *)
}

type job = { conn : conn; request : Protocol.request }

type t = {
  cfg : config;
  handler : Handler.shared;
  listen_fd : Unix.file_descr;
  drain_flag : bool Atomic.t;
  mu : Mutex.t;
  cond : Condition.t;
  queue : job Queue.t;
  mutable pending : int;
  mutable clients : int;
  mutable stop_exec : bool;
  mutable sessions : (conn * Thread.t) list;
  mutable next_cid : int;
}

(* --- telemetry handles --------------------------------------------- *)

let c_connections = Telemetry.counter "serve.connections"
let c_requests = Telemetry.counter "serve.requests"
let c_responses = Telemetry.counter "serve.responses"
let c_rejected = Telemetry.counter "serve.rejected"
let c_bad_frames = Telemetry.counter "serve.bad_frames"
let c_accept_faults = Telemetry.counter "serve.accept_faults"
let c_write_failures = Telemetry.counter "serve.write_failures"
let g_clients = Telemetry.gauge "serve.active_clients"
let g_pending = Telemetry.gauge "serve.pending_requests"

(* --- lifecycle ----------------------------------------------------- *)

(* A socket file can outlive its daemon (crash, SIGKILL).  Distinguish
   stale from live by connecting: a live listener accepts, a stale file
   refuses — only the stale one may be replaced. *)
let claim_socket path =
  if Sys.file_exists path then begin
    let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let live =
      match Unix.connect probe (Unix.ADDR_UNIX path) with
      | () -> true
      | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _) ->
        false
      | exception Unix.Unix_error _ -> false
    in
    (try Unix.close probe with Unix.Unix_error _ -> ());
    if live then
      Error (Printf.sprintf "a daemon is already listening on %s" path)
    else begin
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      Ok ()
    end
  end
  else Ok ()

let create cfg handler =
  match claim_socket cfg.socket_path with
  | Error _ as e -> e
  | Ok () -> (
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match
      Unix.bind fd (Unix.ADDR_UNIX cfg.socket_path);
      Unix.listen fd (max 8 cfg.max_clients)
    with
    | () ->
      Ok
        {
          cfg;
          handler;
          listen_fd = fd;
          drain_flag = Atomic.make false;
          mu = Mutex.create ();
          cond = Condition.create ();
          queue = Queue.create ();
          pending = 0;
          clients = 0;
          stop_exec = false;
          sessions = [];
          next_cid = 0;
        }
    | exception Unix.Unix_error (err, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error
        (Printf.sprintf "cannot bind %s: %s" cfg.socket_path
           (Unix.error_message err)))

let draining t = Atomic.get t.drain_flag

(* Wake a blocked accept without signals: connect to our own socket and
   hang up.  The accept loop re-checks the drain flag on every wakeup. *)
let wake_accept t =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX t.cfg.socket_path)
   with Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

(* The signal-context half of a drain: one CAS, nothing else — no
   mutexes, no allocation-heavy work — so a SIGTERM handler can call it
   even if it interrupted a thread holding a telemetry lock.  The
   blocked accept is woken by the signal's own EINTR. *)
let signal_drain t =
  if Atomic.compare_and_set t.drain_flag false true then `Began else `Already

let begin_drain t =
  match signal_drain t with `Began -> wake_accept t | `Already -> ()

(* --- response writing ---------------------------------------------- *)

(* Returns false when the client is gone or the write failed.  A failed
   write may have torn a frame in half, leaving the peer blocked mid-read
   on bytes that will never come — the stream is unframed, so the only
   safe recovery is to shut the connection down: the peer's read returns
   EOF instead of hanging, and our own session loop wakes to clean up.
   The daemon keeps serving either way. *)
let write_response t conn response =
  let closed = Mutex.protect t.mu (fun () -> conn.conn_closed) in
  if closed then false
  else
    Mutex.protect conn.write_mu @@ fun () ->
    match Protocol.write_frame conn.fd (Protocol.json_of_response response) with
    | () -> true
    | exception (Unix.Unix_error _ | Engine.Faultsim.Injected _ | Sys_error _)
      ->
      Telemetry.tick c_write_failures;
      (try Unix.shutdown conn.fd Unix.SHUTDOWN_ALL
       with Unix.Unix_error _ -> ());
      false

let reject t conn ~id kind ~scope message =
  Telemetry.tick c_rejected;
  Telemetry.Event.warn "serve.reject"
    ~fields:
      [
        ("cid", J.Int conn.cid);
        ("kind", J.Str (Protocol.kind_name kind));
        ("scope", match scope with Some s -> J.Str s | None -> J.Null);
      ];
  ignore
    (write_response t conn
       {
         Protocol.rid = id;
         result = Error { Protocol.kind; message; scope };
       })

(* --- executors ----------------------------------------------------- *)

let finish_request t conn =
  Mutex.protect t.mu @@ fun () ->
  t.pending <- t.pending - 1;
  Telemetry.set_gauge g_pending t.pending;
  conn.inflight <- conn.inflight - 1;
  if conn.conn_closed && conn.inflight = 0 then
    (try Unix.close conn.fd with Unix.Unix_error _ -> ());
  if t.pending = 0 then Condition.broadcast t.cond

let executor_loop t () =
  let rec next () =
    Mutex.lock t.mu;
    let rec wait () =
      if not (Queue.is_empty t.queue) then Some (Queue.pop t.queue)
      else if t.stop_exec then None
      else begin
        Condition.wait t.cond t.mu;
        wait ()
      end
    in
    let job = wait () in
    Mutex.unlock t.mu;
    match job with
    | None -> ()
    | Some { conn; request } ->
      let response, dt =
        Telemetry.with_span_timed "serve.request"
          ~args:[ ("op", Protocol.op_name request.op) ]
          (fun () -> Handler.execute t.handler request)
      in
      Telemetry.observe "serve.request_s" dt;
      if write_response t conn response then Telemetry.tick c_responses;
      finish_request t conn;
      next ()
  in
  next ()

(* --- sessions ------------------------------------------------------ *)

(* Admission under the server mutex; the boolean says whether the job
   was queued (the caller already answered it otherwise). *)
let admit t conn (request : Protocol.request) =
  let verdict =
    Mutex.protect t.mu @@ fun () ->
    if Atomic.get t.drain_flag then `Drain
    else if conn.inflight >= t.cfg.max_inflight then `Client
    else if t.pending >= t.cfg.queue_depth then `Queue
    else begin
      conn.inflight <- conn.inflight + 1;
      t.pending <- t.pending + 1;
      Telemetry.set_gauge g_pending t.pending;
      Queue.push { conn; request } t.queue;
      Condition.signal t.cond;
      `Admitted
    end
  in
  match verdict with
  | `Admitted -> Telemetry.tick c_requests
  | `Drain ->
    reject t conn ~id:request.id Protocol.Shutting_down ~scope:None
      "daemon is draining; retry against a fresh instance"
  | `Client ->
    reject t conn ~id:request.id Protocol.Overloaded ~scope:(Some "client")
      (Printf.sprintf "connection exceeded max_inflight=%d unanswered requests"
         t.cfg.max_inflight)
  | `Queue ->
    reject t conn ~id:request.id Protocol.Overloaded ~scope:(Some "queue")
      (Printf.sprintf "request queue full (queue_depth=%d)" t.cfg.queue_depth)

let session_loop t conn () =
  let rec loop () =
    match Protocol.read_frame ~max_frame:t.cfg.max_frame conn.fd with
    | Ok doc -> (
      match Protocol.request_of_json doc with
      | Error msg ->
        Telemetry.tick c_bad_frames;
        ignore
          (write_response t conn
             {
               Protocol.rid =
                 Option.value (J.member "id" doc) ~default:J.Null;
               result =
                 Error
                   { Protocol.kind = Bad_request; message = msg; scope = None };
             });
        loop ()
      | Ok ({ op = Protocol.Shutdown; _ } as request) ->
        (* answer first, then drain: the requester gets its ack even
           though admission is already closed for everyone else *)
        ignore
          (write_response t conn
             {
               Protocol.rid = request.id;
               result = Ok (J.Obj [ ("draining", J.Bool true) ]);
             });
        Telemetry.tick c_requests;
        Telemetry.tick c_responses;
        begin_drain t;
        loop ()
      | Ok request ->
        admit t conn request;
        loop ())
    | Error (Protocol.Bad_json msg) ->
      Telemetry.tick c_bad_frames;
      ignore
        (write_response t conn
           {
             Protocol.rid = J.Null;
             result =
               Error
                 {
                   Protocol.kind = Bad_request;
                   message = "frame payload is not JSON: " ^ msg;
                   scope = None;
                 };
           });
      loop ()
    | Error (Protocol.Oversized len) ->
      Telemetry.tick c_bad_frames;
      ignore
        (write_response t conn
           {
             Protocol.rid = J.Null;
             result =
               Error
                 {
                   Protocol.kind = Bad_request;
                   message =
                     Printf.sprintf "frame of %d bytes exceeds max_frame=%d"
                       len t.cfg.max_frame;
                   scope = None;
                 };
           });
      loop ()
    | Error (Protocol.Eof | Protocol.Truncated | Protocol.Corrupt _) -> ()
    | exception Unix.Unix_error _ -> ()
  in
  loop ();
  Mutex.protect t.mu (fun () ->
      conn.conn_closed <- true;
      t.clients <- t.clients - 1;
      Telemetry.set_gauge g_clients t.clients;
      if conn.inflight = 0 then
        try Unix.close conn.fd with Unix.Unix_error _ -> ());
  Telemetry.Event.info "serve.close" ~fields:[ ("cid", J.Int conn.cid) ]

(* --- accept loop and drain ----------------------------------------- *)

let accept_loop t =
  while not (Atomic.get t.drain_flag) do
    match Unix.accept ~cloexec:true t.listen_fd with
    | exception
        Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED | Unix.EAGAIN), _, _)
      ->
      (* EINTR is how a SIGTERM-set drain flag wakes us; loop re-checks *)
      ()
    | exception Unix.Unix_error (_, _, _) ->
      (* a transient accept failure (possibly injected) must not take
         the daemon down; back off a beat and keep listening *)
      Telemetry.tick c_accept_faults;
      Unix.sleepf 0.01
    | fd, _ ->
      if Engine.Faultsim.fire Engine.Faultsim.Serve_accept_fail then begin
        Telemetry.tick c_accept_faults;
        Telemetry.Event.warn "serve.accept_fault";
        try Unix.close fd with Unix.Unix_error _ -> ()
      end
      else if Atomic.get t.drain_flag then (
        (* the wake-up self-connection, or a client racing the drain *)
        try Unix.close fd with Unix.Unix_error _ -> ())
      else begin
        let decision =
          Mutex.protect t.mu @@ fun () ->
          if t.clients >= t.cfg.max_clients then `Reject
          else begin
            let cid = t.next_cid in
            t.next_cid <- cid + 1;
            t.clients <- t.clients + 1;
            Telemetry.set_gauge g_clients t.clients;
            `Accept cid
          end
        in
        match decision with
        | `Reject ->
          Telemetry.tick c_rejected;
          Telemetry.Event.warn "serve.reject"
            ~fields:[ ("scope", J.Str "server") ];
          (try
             Protocol.write_frame fd
               (Protocol.json_of_response
                  {
                    Protocol.rid = J.Null;
                    result =
                      Error
                        {
                          Protocol.kind = Overloaded;
                          message =
                            Printf.sprintf "server full (max_clients=%d)"
                              t.cfg.max_clients;
                          scope = Some "server";
                        };
                  })
           with
          | Unix.Unix_error _ | Engine.Faultsim.Injected _ -> ());
          (try Unix.close fd with Unix.Unix_error _ -> ())
        | `Accept cid ->
          Telemetry.tick c_connections;
          Telemetry.Event.info "serve.accept" ~fields:[ ("cid", J.Int cid) ];
          let conn =
            {
              fd;
              cid;
              write_mu = Mutex.create ();
              inflight = 0;
              conn_closed = false;
            }
          in
          let th = Thread.create (session_loop t conn) () in
          Mutex.protect t.mu (fun () ->
              t.sessions <- (conn, th) :: t.sessions)
      end
  done

let run t =
  (* a peer hanging up mid-write must be an EPIPE error, not a fatal
     signal *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  Telemetry.Event.info "serve.start"
    ~fields:
      [
        ("socket", J.Str t.cfg.socket_path);
        ("pid", J.Int (Unix.getpid ()));
        ("workers", J.Int t.cfg.workers);
        ("queue_depth", J.Int t.cfg.queue_depth);
      ];
  let executors =
    List.init t.cfg.workers (fun _ -> Thread.create (executor_loop t) ())
  in
  accept_loop t;
  (* --- drain: stop accepting, answer what's in flight, tear down --- *)
  Telemetry.Event.info "serve.drain";
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (try Unix.unlink t.cfg.socket_path with Unix.Unix_error _ | Sys_error _ -> ());
  Mutex.protect t.mu (fun () ->
      while t.pending > 0 do
        Condition.wait t.cond t.mu
      done;
      t.stop_exec <- true;
      Condition.broadcast t.cond);
  List.iter Thread.join executors;
  (* unblock sessions still parked in read: shut the read side down; the
     session sees EOF, marks itself closed and releases the fd *)
  let sessions = Mutex.protect t.mu (fun () -> t.sessions) in
  List.iter
    (fun (conn, _) ->
      Mutex.protect t.mu (fun () ->
          if not conn.conn_closed then
            try Unix.shutdown conn.fd Unix.SHUTDOWN_RECEIVE
            with Unix.Unix_error _ -> ()))
    sessions;
  List.iter (fun (_, th) -> Thread.join th) sessions;
  (* with all sessions gone there are no concurrent readers: trim the
     store to its watermark so the next daemon starts under it *)
  (match Handler.cache t.handler with
  | Some c ->
    let r = Engine.Rcache.gc c in
    if r.Engine.Rcache.evicted > 0 then
      Telemetry.Event.info "serve.drain_gc"
        ~fields:
          [
            ("evicted", J.Int r.Engine.Rcache.evicted);
            ("evicted_bytes", J.Int r.Engine.Rcache.evicted_bytes);
            ("live_bytes", J.Int r.Engine.Rcache.live_bytes);
          ]
  | None -> ());
  Engine.Rcache.flush_counters ();
  Telemetry.Event.info "serve.stop"
    ~fields:
      [
        ("requests", J.Int (Telemetry.counter_value "serve.requests"));
        ("responses", J.Int (Telemetry.counter_value "serve.responses"));
        ("rejected", J.Int (Telemetry.counter_value "serve.rejected"));
      ]
