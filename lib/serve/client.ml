(* Thin blocking client for the serve protocol.  Nothing here is clever
   on purpose: one fd, sequential request/response, every failure folded
   into a Transport-kind Protocol.error so frontends have a single error
   path. *)

module J = Telemetry.Json

type t = { fd : Unix.file_descr; mutable next_id : int }

let transport fmt =
  Printf.ksprintf
    (fun message ->
      Error { Protocol.kind = Protocol.Transport; message; scope = None })
    fmt

let ignore_sigpipe () =
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ | Sys_error _ -> ()

let connect ?(retry_for = 0.0) path =
  ignore_sigpipe ();
  let deadline = Unix.gettimeofday () +. retry_for in
  let rec go () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> Ok { fd; next_id = 0 }
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED) as e, _, _)
      ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      if Unix.gettimeofday () < deadline then begin
        Unix.sleepf 0.05;
        go ()
      end
      else
        Error
          (Printf.sprintf "cannot connect to %s: %s" path
             (Unix.error_message e))
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error
        (Printf.sprintf "cannot connect to %s: %s" path (Unix.error_message e))
  in
  go ()

let null_fd flags = Unix.openfile "/dev/null" flags 0o644

let spawn_and_connect ?(spawn_args = []) ~exe ~socket () =
  match connect socket with
  | Ok _ as ok -> ok
  | Error _ -> (
    let argv =
      Array.of_list ((exe :: [ "serve"; "--socket"; socket ]) @ spawn_args)
    in
    match
      let devnull_in = null_fd [ Unix.O_RDONLY ] in
      let devnull_out = null_fd [ Unix.O_WRONLY ] in
      let pid =
        Unix.create_process exe argv devnull_in devnull_out devnull_out
      in
      (try Unix.close devnull_in with Unix.Unix_error _ -> ());
      (try Unix.close devnull_out with Unix.Unix_error _ -> ());
      pid
    with
    | _pid -> connect ~retry_for:10.0 socket
    | exception Unix.Unix_error (e, _, _) ->
      Error
        (Printf.sprintf "cannot spawn %s: %s" exe (Unix.error_message e)))

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let send t request =
  match Protocol.write_frame t.fd (Protocol.json_of_request request) with
  | () -> Ok ()
  | exception Unix.Unix_error (e, _, _) ->
    transport "cannot send request: %s" (Unix.error_message e)
  | exception Engine.Faultsim.Injected _ -> transport "torn write (injected)"

let recv t =
  match Protocol.read_frame t.fd with
  | Ok doc -> (
    match Protocol.response_of_json doc with
    | Ok r -> Ok r
    | Error msg -> transport "malformed response: %s" msg)
  | Error Protocol.Eof -> transport "daemon closed the connection"
  | Error Protocol.Truncated -> transport "connection truncated mid-frame"
  | Error (Protocol.Oversized n) -> transport "oversized response (%d bytes)" n
  | Error (Protocol.Corrupt msg) -> transport "corrupt stream: %s" msg
  | Error (Protocol.Bad_json msg) -> transport "response is not JSON: %s" msg
  | exception Unix.Unix_error (e, _, _) ->
    transport "cannot read response: %s" (Unix.error_message e)

let request t ?id ?(version = 1) ?(qos = Protocol.default_qos) ~op ~params () =
  let id =
    match id with
    | Some id -> id
    | None ->
      let n = t.next_id in
      t.next_id <- n + 1;
      J.Int n
  in
  match send t { Protocol.id; version; op; params; qos } with
  | Error _ as e -> e
  | Ok () -> (
    match recv t with
    | Error _ as e -> e
    | Ok { Protocol.rid; result } ->
      if rid = id then
        match result with Ok payload -> Ok payload | Error e -> Error e
      else transport "response id mismatch (pipelining on a shared connection?)")
