(** Client side of the serve protocol: connect (optionally spawning a
    daemon first), send one request, match its response.

    All failures are values: transport problems surface as a
    {!Protocol.error} of kind [Transport] so a CLI frontend has one
    error path and one exit-code mapping
    ({!Protocol.exit_code_of_kind}). *)

type t

val connect : ?retry_for:float -> string -> (t, string) result
(** Connect to a daemon's socket.  [retry_for] (seconds, default 0)
    keeps retrying on [ENOENT]/[ECONNREFUSED] — the daemon may still be
    binding its socket.  Ignores [SIGPIPE] process-wide. *)

val spawn_and_connect :
  ?spawn_args:string list -> exe:string -> socket:string -> unit -> (t, string) result
(** Try {!connect}; when no daemon answers, start one
    ([exe serve --socket=SOCKET spawn_args], stdio on [/dev/null],
    left running when this process exits) and retry-connect for up to
    10 seconds. *)

val close : t -> unit

val request :
  t ->
  ?id:Telemetry.Json.t ->
  ?version:int ->
  ?qos:Protocol.qos ->
  op:Protocol.op ->
  params:Telemetry.Json.t ->
  unit ->
  (Telemetry.Json.t, Protocol.error) result
(** Send one request and block for the response with a matching [id]
    (an auto-incremented integer when [?id] is omitted).  [version]
    defaults to [1] — the pre-versioning wire format; pass
    [~version:2] for v2-only ops like [Analyze_multi].  Responses to
    other ids — possible when callers pipeline on a shared connection —
    are not expected here and produce a [Transport] error. *)

val send : t -> Protocol.request -> (unit, Protocol.error) result
(** Fire a raw request without waiting — for pipelining tests. *)

val recv : t -> (Protocol.response, Protocol.error) result
(** Read the next response frame. *)
