(* One request, one response — the daemon-side twin of the CLI
   subcommand bodies.  The analyze/search/run pipelines here are the
   same calls bin/polyufc.ml makes, in the same order with the same
   defaults, which is what makes a served [ok] payload byte-identical to
   the corresponding [--json] stdout.

   What the daemon keeps warm between requests lives in [shared]: the
   domain pool, the result-cache handle (and through it the engine's
   count memos), and the per-machine roofline microbenchmark constants,
   which are deterministic per machine and therefore safe to memoize for
   the life of the process.  The chamber decompositions of
   {!Presburger.Chamber} are warmed too, but live in that module's
   process-wide memo rather than in [shared]: [analyze] decomposes each
   statement domain up front, so subsequent requests for the same
   program shape at any parameter value evaluate closed forms. *)

module J = Telemetry.Json
open Polyufc_core

type shared = {
  pool : Engine.Pool.t option;
  cache : Engine.Rcache.t option;
  max_deadline_s : float option;
  max_fuel : int option;
  rooflines_mu : Mutex.t;
  rooflines : (string, Roofline.constants) Hashtbl.t;
  scatter_mu : Mutex.t;
  mutable scatter : Report.scatter_row list;
      (* newest first, bounded at [scatter_cap]: the daemon's rolling
         roofline scatter, served by a v2 stats request *)
}

let scatter_cap = 256

let create ?pool ?cache ?max_deadline_s ?max_fuel () =
  {
    pool;
    cache;
    max_deadline_s;
    max_fuel;
    rooflines_mu = Mutex.create ();
    rooflines = Hashtbl.create 4;
    scatter_mu = Mutex.create ();
    scatter = [];
  }

let cache shared = shared.cache

let record_scatter shared rows =
  Mutex.protect shared.scatter_mu @@ fun () ->
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: tl -> x :: take (n - 1) tl
  in
  shared.scatter <- take scatter_cap (List.rev_append rows shared.scatter)

(* oldest first, the order the requests arrived in *)
let scatter_rows shared =
  Mutex.protect shared.scatter_mu @@ fun () -> List.rev shared.scatter

let rooflines_for shared machine =
  Mutex.protect shared.rooflines_mu @@ fun () ->
  let name = machine.Hwsim.Machine.name in
  match Hashtbl.find_opt shared.rooflines name with
  | Some k -> k
  | None ->
    let k = Roofline.microbench machine in
    Hashtbl.add shared.rooflines name k;
    k

(* --- parameter decoding -------------------------------------------- *)

(* Parameter problems are [Failure]s: Guard classifies a bare Failure as
   invalid input, but a *request-shape* problem should be bad_request —
   so those are raised as a dedicated exception caught before Guard. *)
exception Bad_params of string

let bad fmt = Printf.ksprintf (fun m -> raise (Bad_params m)) fmt

let get_string params key =
  match J.member key params with
  | Some (J.Str s) -> Some s
  | Some _ -> bad "params.%s must be a string" key
  | None -> None

let get_int ~default params key =
  match J.member key params with
  | Some (J.Int n) -> n
  | Some (J.Float f) when Float.is_integer f -> int_of_float f
  | Some _ -> bad "params.%s must be an integer" key
  | None -> default

let get_float ~default params key =
  match Option.map J.number (J.member key params) with
  | Some (Some f) -> f
  | Some None -> bad "params.%s must be a number" key
  | None -> default

let get_bool ~default params key =
  match J.member key params with
  | Some (J.Bool b) -> b
  | Some _ -> bad "params.%s must be a boolean" key
  | None -> default

let machine_of params =
  match get_string params "machine" with
  | None | Some "bdw" | Some "BDW" -> Hwsim.Machine.bdw
  | Some ("rpl" | "RPL") -> Hwsim.Machine.rpl
  | Some s -> bad "unknown machine %S (use bdw or rpl)" s

let objective_of params =
  match get_string params "objective" with
  | None | Some "edp" -> Search.Edp
  | Some "energy" -> Search.Energy
  | Some "performance" -> Search.Performance
  | Some s -> bad "unknown objective %S (use edp, energy or performance)" s

let sizes_of params =
  match J.member "sizes" params with
  | None -> []
  | Some (J.Obj kvs) ->
    List.map
      (fun (p, v) ->
        match v with
        | J.Int n -> (p, n)
        | J.Float f when Float.is_integer f -> (p, int_of_float f)
        | _ -> bad "params.sizes.%s must be an integer" p)
      kvs
  | Some _ -> bad "params.sizes must be an object of integers"

(* Mirror of the CLI's [load]: a bundled workload by name, or inline
   Polylang source text (the daemon cannot assume it shares a filesystem
   view with the client, so clients ship source, not paths). *)
let load_program params =
  Engine.Guard.phase "parse" @@ fun () ->
  let sizes = sizes_of params in
  match (get_string params "workload", get_string params "source") with
  | Some _, Some _ -> bad "give either params.workload or params.source, not both"
  | Some name, None -> (
    match Workloads.find_opt name with
    | None -> failwith (Printf.sprintf "unknown workload %S" name)
    | Some w ->
      let sizes = if sizes = [] then Workloads.param_values w else sizes in
      (Workloads.program w, sizes))
  | None, Some src -> (Polylang.parse src, sizes)
  | None, None -> bad "missing params.workload or params.source"

(* --- per-request context ------------------------------------------- *)

let ctx_of shared (qos : Protocol.qos) =
  let deadline_s =
    Engine.Ctx.clamp_deadline ?limit:shared.max_deadline_s qos.deadline_s
  in
  let fuel = Engine.Ctx.clamp_fuel ?limit:shared.max_fuel qos.fuel in
  let budget =
    if deadline_s = None && fuel = None then None
    else
      Some (Engine.Budget.create ?deadline_s ?fuel ~degrade:qos.degrade ())
  in
  Engine.Ctx.create ?pool:shared.pool ?cache:shared.cache ?budget ()

(* --- operations ---------------------------------------------------- *)

let analyze _shared ~ctx params =
  let prog, sizes = load_program params in
  let tile_size = get_int ~default:32 params "tile_size" in
  let machine = machine_of params in
  let tiled = Poly_ir.Tiling.tile_program ~tile_size prog in
  (* warm the chamber memo: decompose each statement domain once per
     program shape, so repeat queries — same program, other sizes — hit
     the process-wide memo (presburger.chamber_cache_hits) and evaluate
     closed forms instead of re-scanning.  Best-effort: shapes the
     chamber engine declines, or an exhausted budget, just skip it. *)
  (try
     let scop = Poly_ir.Scop.extract tiled in
     List.iter
       (fun (info : Poly_ir.Scop.stmt_info) ->
         ignore (Presburger.Count.card_param ~ctx info.Poly_ir.Scop.domain))
       scop.Poly_ir.Scop.stmt_infos
   with Engine.Budget.Exhausted _ | Invalid_argument _ -> ());
  let cm =
    Analysis_cache.analyze_gov ~ctx ~mode:Cache_model.Model.Set_associative
      ~apply_thread_heuristic:false ~machine tiled ~param_values:sizes
  in
  Report.json_of_cm cm

let compile shared ~ctx params =
  let prog, sizes = load_program params in
  let tile_size = get_int ~default:32 params "tile_size" in
  let epsilon = get_float ~default:1e-3 params "epsilon" in
  let machine = machine_of params in
  let objective = objective_of params in
  let k = rooflines_for shared machine in
  let c =
    Flow.compile ~ctx ~objective ~epsilon ~tile_size ~machine ~rooflines:k
      prog ~param_values:sizes
  in
  (c, machine, sizes)

let search shared ~ctx params =
  let c, _, _ = compile shared ~ctx params in
  Report.json_of_compiled c

let run shared ~ctx params =
  let c, machine, sizes = compile shared ~ctx params in
  let e = Flow.evaluate ~machine c ~param_values:sizes in
  Report.json_of_run c e

(* v2: compile every tenant, arbitrate the shared cap, co-simulate.
   params.tenants is an array of per-tenant objects, each shaped like an
   analyze request (workload|source, sizes) plus name/weight/cores. *)
let analyze_multi shared ~ctx params =
  let tile_size = get_int ~default:32 params "tile_size" in
  let epsilon = get_float ~default:1e-3 params "epsilon" in
  let solo = get_bool ~default:true params "solo" in
  let machine = machine_of params in
  let objective = objective_of params in
  let tenant_specs =
    match J.member "tenants" params with
    | Some (J.Arr (_ :: _ as items)) ->
      List.mapi
        (fun i t ->
          match t with
          | J.Obj _ ->
            let prog, sizes = load_program t in
            let name =
              match (get_string t "name", get_string t "workload") with
              | Some n, _ -> n
              | None, Some w -> w
              | None, None -> Printf.sprintf "tenant%d" i
            in
            let weight = get_float ~default:1.0 t "weight" in
            if weight <= 0.0 then
              bad "params.tenants[%d].weight must be positive" i;
            let cores = get_int ~default:0 t "cores" in
            if cores < 0 then
              bad "params.tenants[%d].cores must be non-negative" i;
            Fleet.spec ~sizes ~weight ~cores ~name prog
          | _ -> bad "params.tenants[%d] must be an object" i)
        items
    | Some (J.Arr []) -> bad "params.tenants must not be empty"
    | Some _ -> bad "params.tenants must be an array of objects"
    | None -> bad "missing params.tenants"
  in
  let rooflines = rooflines_for shared machine in
  let result =
    Fleet.analyze ~ctx ~objective ~epsilon ~tile_size ~solo ~machine
      ~rooflines tenant_specs
  in
  record_scatter shared (Fleet.scatter_of_result result);
  Fleet.json_of_result result

(* the daemon's view of its result store, for a v2 stats response: tier
   occupancy from the index and the memory tier — no entry scan *)
let cache_json shared =
  match shared.cache with
  | None -> J.Null
  | Some c ->
    let module R = Engine.Rcache in
    let s = R.stats c in
    let m = R.mem_stats c in
    let k = R.counts_for c in
    J.Obj
      [
        ("dir", J.Str (R.dir c));
        ( "upstream",
          match R.upstream c with Some u -> J.Str u | None -> J.Null );
        ("read_only", J.Bool (R.read_only c));
        ("entries", J.Int s.R.entries);
        ("bytes", J.Int s.R.bytes);
        ("mem_entries", J.Int m.R.entries);
        ("mem_bytes", J.Int m.R.bytes);
        ("hits", J.Int k.R.hits);
        ("misses", J.Int k.R.misses);
        ("mem_hits", J.Int k.R.mem_hits);
        ("disk_hits", J.Int k.R.disk_hits);
        ("upstream_hits", J.Int k.R.upstream_hits);
        ("promotions", J.Int k.R.promotions);
        ("evictions", J.Int k.R.evictions);
        ("gc_runs", J.Int k.R.gc_runs);
      ]

(* a v1 stats response is exactly the telemetry document (old scrapers
   parse it byte-for-byte); v2 appends the daemon's rolling scatter and
   its result-store tier occupancy *)
let stats shared ~version =
  let doc = Telemetry.stats_json () in
  if version < 2 then doc
  else
    match doc with
    | J.Obj fields ->
      J.Obj
        (fields
        @ [
            ("scatter", Report.json_of_scatter (scatter_rows shared));
            ("cache", cache_json shared);
          ])
    | doc -> doc

let ping ~version params =
  (* delay_s: a testing aid for deterministic overload/backpressure
     tests — a request whose execution time the test controls exactly *)
  let delay = get_float ~default:0.0 params "delay_s" in
  let delay = Float.max 0.0 (Float.min 30.0 delay) in
  if delay > 0.0 then Unix.sleepf delay;
  (* [protocol] echoes the *negotiated* version: a v1 ping answer is
     byte-identical to what pre-versioning daemons sent.  v2 pings also
     learn the daemon's ceiling and its executable ops. *)
  J.Obj
    ([
       ("pong", J.Bool true);
       ("protocol", J.Int version);
       ("pid", J.Int (Unix.getpid ()));
     ]
    @
    if version >= 2 then
      [
        ("max_protocol", J.Int Protocol.protocol_version);
        ( "capabilities",
          J.Arr (List.map (fun c -> J.Str c) Protocol.capabilities) );
      ]
    else [])

let error_of_diagnostic (d : Engine.Guard.diagnostic) : Protocol.error =
  let kind : Protocol.error_kind =
    if d.code = Engine.Guard.exit_usage then Bad_request
    else if d.code = Engine.Guard.exit_invalid_input then Invalid_input
    else if d.code = Engine.Guard.exit_exhausted then Exhausted
    else if d.code = Engine.Guard.exit_interrupted then Cancelled
    else Internal
  in
  let message =
    match d.span with
    | Some span -> Printf.sprintf "%s: %s (in %s)" span d.message d.phase
    | None -> Printf.sprintf "%s (in %s)" d.message d.phase
  in
  { kind; message; scope = None }

let execute shared (r : Protocol.request) : Protocol.response =
  let body () =
    (* request-shape problems (Bad_params) are caught here, inside the
       Guard boundary, so they surface as bad_request rather than being
       trapped as an internal fault *)
    try
      let min_v = Protocol.op_min_version r.op in
      if r.version < min_v then
        bad "op %s requires protocol version >= %d (request is v%d)"
          (Protocol.op_name r.op) min_v r.version;
      Ok
        (match r.op with
        | Protocol.Analyze -> analyze shared ~ctx:(ctx_of shared r.qos) r.params
        | Protocol.Analyze_multi ->
          analyze_multi shared ~ctx:(ctx_of shared r.qos) r.params
        | Protocol.Search -> search shared ~ctx:(ctx_of shared r.qos) r.params
        | Protocol.Run -> run shared ~ctx:(ctx_of shared r.qos) r.params
        | Protocol.Stats -> stats shared ~version:r.version
        | Protocol.Ping -> ping ~version:r.version r.params
        | Protocol.Shutdown -> J.Obj [ ("draining", J.Bool true) ])
    with Bad_params m -> Error m
  in
  let result =
    match Engine.Guard.protect ~phase:(Protocol.op_name r.op) body with
    | Ok (Ok payload) -> Ok payload
    | Ok (Error m) ->
      Error { Protocol.kind = Bad_request; message = m; scope = None }
    | Error d -> Error (error_of_diagnostic d)
  in
  { Protocol.rid = r.id; result }
