(* Length-prefixed JSON framing plus the request/response schema of the
   serve daemon.  See protocol.mli for the wire contract; the invariant
   that matters here is that no byte sequence a peer can send makes
   [read_frame] raise — malformed input is always a [read_error] value,
   so a session loop can decide per-error whether the stream is still
   usable (Bad_json, Oversized) or dead (Eof, Truncated, Corrupt). *)

module J = Telemetry.Json

(* v1: analyze/search/run/stats/ping/shutdown.  v2 adds the [version]
   request field, the [analyze_multi] op and the capability report in
   ping.  A request without a version field is a v1 request and must be
   answered with v1-shaped (byte-identical) responses. *)
let protocol_version = 2

let default_max_frame = 16 * 1024 * 1024
let hard_max_frame = 1024 * 1024 * 1024

type read_error =
  | Eof
  | Truncated
  | Oversized of int
  | Corrupt of string
  | Bad_json of string

(* --- low-level I/O ------------------------------------------------- *)

(* [read_exact fd buf pos len] returns how many bytes it read before the
   stream ended; EINTR restarts, everything else propagates. *)
let read_exact fd buf pos len =
  let rec go pos remaining =
    if remaining = 0 then len
    else
      match Unix.read fd buf pos remaining with
      | 0 -> len - remaining
      | n -> go (pos + n) (remaining - n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go pos remaining
  in
  go pos len

let write_all fd buf pos len =
  let rec go pos remaining =
    if remaining > 0 then
      match Unix.write fd buf pos remaining with
      | n -> go (pos + n) (remaining - n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go pos remaining
  in
  go pos len

(* [skip fd n]: consume and discard [n] bytes in bounded chunks, so an
   oversized frame never allocates its declared length. *)
let skip fd n =
  let chunk = Bytes.create 65536 in
  let rec go remaining =
    if remaining = 0 then true
    else
      let want = min remaining (Bytes.length chunk) in
      match read_exact fd chunk 0 want with
      | n when n = want -> go (remaining - want)
      | _ -> false
  in
  go n

(* --- framing ------------------------------------------------------- *)

let read_frame ?(max_frame = default_max_frame) fd =
  if Engine.Faultsim.fire Engine.Faultsim.Serve_io then Error Truncated
  else begin
    let header = Bytes.create 4 in
    match read_exact fd header 0 4 with
    | 0 -> Error Eof
    | n when n < 4 -> Error Truncated
    | _ ->
      let len =
        (Char.code (Bytes.get header 0) lsl 24)
        lor (Char.code (Bytes.get header 1) lsl 16)
        lor (Char.code (Bytes.get header 2) lsl 8)
        lor Char.code (Bytes.get header 3)
      in
      if len > hard_max_frame then
        (* not a frame length we would ever emit: the stream is framed
           wrong (or hostile), resynchronization is hopeless *)
        Error (Corrupt (Printf.sprintf "implausible frame length %d" len))
      else if len > max_frame then
        if skip fd len then Error (Oversized len) else Error Truncated
      else begin
        let payload = Bytes.create len in
        match read_exact fd payload 0 len with
        | n when n < len -> Error Truncated
        | _ -> (
          match J.of_string (Bytes.unsafe_to_string payload) with
          | Ok doc -> Ok doc
          | Error msg -> Error (Bad_json msg))
      end
  end

let write_frame fd doc =
  let payload = J.to_string doc in
  let len = String.length payload in
  if len > hard_max_frame then
    invalid_arg "Serve.Protocol.write_frame: frame too large";
  let buf = Bytes.create (4 + len) in
  Bytes.set buf 0 (Char.chr ((len lsr 24) land 0xff));
  Bytes.set buf 1 (Char.chr ((len lsr 16) land 0xff));
  Bytes.set buf 2 (Char.chr ((len lsr 8) land 0xff));
  Bytes.set buf 3 (Char.chr (len land 0xff));
  Bytes.blit_string payload 0 buf 4 len;
  if Engine.Faultsim.fire Engine.Faultsim.Serve_io then begin
    (* torn write: emit only half the frame, then fail — the peer reads
       a Truncated stream, exactly what a mid-write crash produces *)
    write_all fd buf 0 ((4 + len) / 2);
    raise (Engine.Faultsim.Injected Engine.Faultsim.Serve_io)
  end;
  write_all fd buf 0 (4 + len)

(* --- requests ------------------------------------------------------ *)

type op = Analyze | Analyze_multi | Search | Run | Stats | Ping | Shutdown

let op_name = function
  | Analyze -> "analyze"
  | Analyze_multi -> "analyze_multi"
  | Search -> "search"
  | Run -> "run"
  | Stats -> "stats"
  | Ping -> "ping"
  | Shutdown -> "shutdown"

let op_of_name = function
  | "analyze" -> Some Analyze
  | "analyze_multi" -> Some Analyze_multi
  | "search" | "compile" -> Some Search
  | "run" -> Some Run
  | "stats" -> Some Stats
  | "ping" -> Some Ping
  | "shutdown" -> Some Shutdown
  | _ -> None

(* the ops this build can execute, as reported by a v2 ping *)
let capabilities =
  List.map op_name
    [ Analyze; Analyze_multi; Search; Run; Stats; Ping; Shutdown ]

(* the minimum protocol version an op requires *)
let op_min_version = function Analyze_multi -> 2 | _ -> 1

type qos = {
  deadline_s : float option;
  fuel : int option;
  degrade : Engine.Budget.degrade;
}

let default_qos = { deadline_s = None; fuel = None; degrade = Engine.Budget.Interp }

type request = { id : J.t; version : int; op : op; params : J.t; qos : qos }

let qos_of_json = function
  | None -> Ok default_qos
  | Some (J.Obj _ as o) -> (
    let deadline_s = Option.bind (J.member "deadline_s" o) J.number in
    let fuel =
      match J.member "fuel" o with
      | Some (J.Int n) -> Some n
      | Some (J.Float f) when Float.is_integer f -> Some (int_of_float f)
      | _ -> None
    in
    (match deadline_s with
    | Some d when d <= 0.0 ->
      Error (Printf.sprintf "qos.deadline_s must be positive, got %g" d)
    | _ -> (
      match fuel with
      | Some n when n <= 0 ->
        Error (Printf.sprintf "qos.fuel must be positive, got %d" n)
      | _ -> (
        match J.member "degrade" o with
        | None -> Ok { deadline_s; fuel; degrade = Engine.Budget.Interp }
        | Some (J.Str "interp") ->
          Ok { deadline_s; fuel; degrade = Engine.Budget.Interp }
        | Some (J.Str "off") ->
          Ok { deadline_s; fuel; degrade = Engine.Budget.Off }
        | Some _ -> Error "qos.degrade must be \"off\" or \"interp\""))))
  | Some _ -> Error "qos must be an object"

(* absent => v1: pre-versioning clients never sent the field, and their
   requests must keep meaning exactly what they always meant *)
let version_of_json doc =
  match J.member "version" doc with
  | None -> Ok 1
  | Some (J.Int v) ->
    if v >= 1 && v <= protocol_version then Ok v
    else
      Error
        (Printf.sprintf
           "unsupported protocol version %d (this daemon speaks 1..%d)" v
           protocol_version)
  | Some _ -> Error "version must be an integer"

let request_of_json doc =
  match doc with
  | J.Obj _ -> (
    let id = Option.value (J.member "id" doc) ~default:J.Null in
    match version_of_json doc with
    | Error _ as e -> e
    | Ok version -> (
      match J.member "op" doc with
      | Some (J.Str name) -> (
        match op_of_name name with
        | None -> Error (Printf.sprintf "unknown op %S" name)
        | Some op -> (
          let params_field = J.member "params" doc in
          match params_field with
          | Some (J.Obj _) | None -> (
            let params = Option.value params_field ~default:(J.Obj []) in
            match qos_of_json (J.member "qos" doc) with
            | Error _ as e -> e
            | Ok qos -> Ok { id; version; op; params; qos })
          | Some _ -> Error "params must be an object"))
      | Some _ -> Error "op must be a string"
      | None -> Error "missing op"))
  | _ -> Error "request must be an object"

let json_of_qos q =
  let fields =
    (match q.deadline_s with
    | Some d -> [ ("deadline_s", J.Float d) ]
    | None -> [])
    @ (match q.fuel with Some n -> [ ("fuel", J.Int n) ] | None -> [])
    @ [
        ( "degrade",
          J.Str
            (match q.degrade with
            | Engine.Budget.Off -> "off"
            | Engine.Budget.Interp -> "interp") );
      ]
  in
  J.Obj fields

let json_of_request r =
  J.Obj
    (("id", r.id)
     (* emitted only when non-default so v1 requests stay byte-identical
        to what pre-versioning builds produced *)
     :: (if r.version <> 1 then [ ("version", J.Int r.version) ] else [])
    @ [
        ("op", J.Str (op_name r.op));
        ("params", r.params);
        ("qos", json_of_qos r.qos);
      ])

(* --- responses ----------------------------------------------------- *)

type error_kind =
  | Bad_request
  | Invalid_input
  | Exhausted
  | Cancelled
  | Overloaded
  | Shutting_down
  | Internal
  | Transport

let kind_name = function
  | Bad_request -> "bad_request"
  | Invalid_input -> "invalid_input"
  | Exhausted -> "exhausted"
  | Cancelled -> "cancelled"
  | Overloaded -> "overloaded"
  | Shutting_down -> "shutting_down"
  | Internal -> "internal"
  | Transport -> "transport"

let kind_of_name = function
  | "bad_request" -> Some Bad_request
  | "invalid_input" -> Some Invalid_input
  | "exhausted" -> Some Exhausted
  | "cancelled" -> Some Cancelled
  | "overloaded" -> Some Overloaded
  | "shutting_down" -> Some Shutting_down
  | "internal" -> Some Internal
  | "transport" -> Some Transport
  | _ -> None

let exit_code_of_kind = function
  | Bad_request -> Engine.Guard.exit_usage
  | Invalid_input -> Engine.Guard.exit_invalid_input
  | Exhausted -> Engine.Guard.exit_exhausted
  | Cancelled -> Engine.Guard.exit_interrupted
  | Overloaded | Shutting_down -> 75 (* EX_TEMPFAIL: retry later *)
  | Internal -> Engine.Guard.exit_internal
  | Transport -> 69 (* EX_UNAVAILABLE: no daemon to talk to *)

type error = { kind : error_kind; message : string; scope : string option }

let json_of_error e =
  J.Obj
    ([ ("kind", J.Str (kind_name e.kind)); ("message", J.Str e.message) ]
    @ (match e.scope with Some s -> [ ("scope", J.Str s) ] | None -> [])
    @ [ ("code", J.Int (exit_code_of_kind e.kind)) ])

let error_of_json doc =
  match J.member "kind" doc with
  | Some (J.Str name) -> (
    match kind_of_name name with
    | None -> Error (Printf.sprintf "unknown error kind %S" name)
    | Some kind ->
      let message =
        match J.member "message" doc with Some (J.Str m) -> m | _ -> ""
      in
      let scope =
        match J.member "scope" doc with Some (J.Str s) -> Some s | _ -> None
      in
      Ok { kind; message; scope })
  | _ -> Error "error object has no kind"

type response = { rid : J.t; result : (J.t, error) result }

let json_of_response r =
  match r.result with
  | Ok payload -> J.Obj [ ("id", r.rid); ("ok", payload) ]
  | Error e -> J.Obj [ ("id", r.rid); ("error", json_of_error e) ]

let response_of_json doc =
  match doc with
  | J.Obj _ -> (
    let rid = Option.value (J.member "id" doc) ~default:J.Null in
    match (J.member "ok" doc, J.member "error" doc) with
    | Some payload, None -> Ok { rid; result = Ok payload }
    | None, Some err -> (
      match error_of_json err with
      | Ok e -> Ok { rid; result = Error e }
      | Error _ as e -> e)
    | _ -> Error "response must have exactly one of ok/error")
  | _ -> Error "response must be an object"
