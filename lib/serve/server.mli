(** The [polyufc serve] daemon: a Unix-domain-socket server multiplexing
    analysis requests onto one shared {!Handler.shared}.

    Threading model: the calling thread owns the accept loop; each
    accepted connection gets a session thread that reads frames, runs
    admission control and enqueues jobs; a fixed pool of executor
    threads drains the queue, runs {!Handler.execute} (which fans out
    onto the shared domain {!Engine.Pool}) and writes responses under a
    per-connection write lock, so pipelined responses never interleave.

    Admission control is layered, each layer answering with a structured
    [overloaded] error naming its [scope]:

    - [server]: more than [max_clients] concurrent connections;
    - [client]: one connection with more than [max_inflight]
      unanswered requests;
    - [queue]: more than [queue_depth] requests pending (queued or
      executing) across all clients.

    Draining ({!begin_drain}, a [shutdown] request, or the frontend's
    SIGTERM handler) stops admission — new requests get
    [shutting_down] — finishes every in-flight request, flushes the
    cache counters ({!Engine.Rcache.flush_counters}) and returns from
    {!run}. *)

type config = {
  socket_path : string;
  max_clients : int;
  max_inflight : int;  (** per-connection unanswered-request cap *)
  queue_depth : int;  (** queued + executing requests, all clients *)
  workers : int;  (** executor threads *)
  max_frame : int;
}

val default_config : string -> config
(** [max_clients = 64], [max_inflight = 8], [queue_depth = 128],
    [workers = 4], [max_frame = Protocol.default_max_frame]. *)

type t

val create : config -> Handler.shared -> (t, string) result
(** Bind and listen.  A stale socket file (no listener answers) is
    replaced; a live one is an error. *)

val begin_drain : t -> unit
(** Idempotent, callable from any (non-signal) thread: flips the drain
    flag and wakes the accept loop with a self-connection. *)

val signal_drain : t -> [ `Began | `Already ]
(** The signal-handler half of {!begin_drain}: a single atomic CAS, no
    locks, no I/O — async-signal-safe by construction.  [`Already] means
    a drain was in progress before this call (a frontend maps the second
    SIGTERM/SIGINT to a force-exit 130).  The blocked accept wakes via
    the signal's own [EINTR]; from normal threads use {!begin_drain},
    which also wakes it explicitly. *)

val draining : t -> bool

val run : t -> unit
(** Serve until drained: runs the accept loop on the calling thread and
    returns once every in-flight request has been answered and every
    session closed.  The socket file is removed.  Ignores [SIGPIPE] for
    the whole process (a dying client must not kill the daemon). *)
