(** Wire protocol of the [polyufc serve] daemon.

    Frames are length-prefixed JSON: a 4-byte big-endian unsigned payload
    length followed by that many bytes of UTF-8 JSON.  The framing is
    self-synchronizing for well-behaved peers (every frame boundary is
    explicit) and defensive against hostile ones: an implausible length
    kills the connection with {!read_error.Corrupt} before any allocation,
    an oversized-but-plausible frame is skipped without buffering it
    ({!read_error.Oversized}), and a frame whose payload is not JSON is
    reported per-frame ({!read_error.Bad_json}) so the connection keeps
    serving.

    Requests and responses are JSON objects:

    {v
    {"id": <any>, "op": "analyze", "params": {...},
     "qos": {"deadline_s": 5.0, "fuel": 1000000, "degrade": "interp"}}

    {"id": <any>, "ok": <result document>}
    {"id": <any>, "error": {"kind": "overloaded", "message": "...",
                            "scope": "queue", "code": 75}}
    v}

    The [id] is echoed verbatim (clients may pipeline and match replies);
    [qos] is optional and clamped by the server's own maxima. *)

(** {1 Framing} *)

val default_max_frame : int
(** 16 MiB — generous for any analysis document. *)

val hard_max_frame : int
(** 1 GiB — a declared length beyond this (or negative) is treated as a
    corrupt stream, not a large frame. *)

type read_error =
  | Eof  (** clean end of stream at a frame boundary *)
  | Truncated  (** stream ended (or was torn) mid-frame *)
  | Oversized of int
      (** declared length exceeded [max_frame]; the payload was consumed
          so the stream is still framed — reply with an error and keep
          reading *)
  | Corrupt of string  (** implausible length prefix; close the connection *)
  | Bad_json of string
      (** a complete frame whose payload does not parse; reply with an
          error and keep reading *)

val read_frame :
  ?max_frame:int -> Unix.file_descr -> (Telemetry.Json.t, read_error) result
(** Blocking read of one frame.  Never raises on malformed input; I/O
    errors other than connection teardown do raise [Unix.Unix_error].
    An armed {!Engine.Faultsim.Serve_io} site can turn a read into
    [Error Truncated]. *)

val write_frame : Unix.file_descr -> Telemetry.Json.t -> unit
(** Blocking write of one frame.  Raises [Unix.Unix_error] on I/O errors
    and {!Engine.Faultsim.Injected} after a deliberately torn write when
    {!Engine.Faultsim.Serve_io} is armed (the peer observes
    [Truncated]). *)

(** {1 Requests} *)

type op =
  | Analyze  (** PolyUFC-CM cache analysis — the [analyze] CLI pipeline *)
  | Analyze_multi
      (** fleet analysis: arbitrated cap + co-simulation (v2 only) *)
  | Search  (** full compilation flow — the [search] CLI pipeline *)
  | Run  (** compile + simulate — the [run] CLI pipeline *)
  | Stats  (** the daemon's live telemetry stats document *)
  | Ping  (** liveness probe; params may carry a [delay_s] testing aid *)
  | Shutdown  (** begin a graceful drain *)

val op_name : op -> string
val op_of_name : string -> op option

val capabilities : string list
(** Names of every op this build executes, in a stable order — the list
    a v2 [ping] reports. *)

val op_min_version : op -> int
(** The minimum request [version] an op requires; the server rejects an
    op requested below its minimum with [bad_request]. *)

type qos = {
  deadline_s : float option;
  fuel : int option;
  degrade : Engine.Budget.degrade;
}
(** Per-request resource envelope, clamped by the server's maxima
    ({!Engine.Ctx.clamp_deadline} / {!Engine.Ctx.clamp_fuel}). *)

val default_qos : qos
(** No deadline, no fuel, [degrade = Interp] (the CLI default). *)

type request = {
  id : Telemetry.Json.t;  (** echoed verbatim in the response *)
  version : int;
      (** negotiated protocol version; a request without a [version]
          field is v1, and v1 responses are byte-identical to the
          pre-versioning wire format *)
  op : op;
  params : Telemetry.Json.t;  (** an object; [{}] when absent *)
  qos : qos;
}

val request_of_json : Telemetry.Json.t -> (request, string) result
(** Rejects a [version] outside [1..protocol_version] — the error
    message names the supported range so old daemons fail loudly when a
    newer client speaks to them. *)

val json_of_request : request -> Telemetry.Json.t
(** The [version] field is emitted only when it is not [1], so v1
    requests serialize byte-identically to pre-versioning builds. *)

(** {1 Responses} *)

type error_kind =
  | Bad_request  (** malformed request or parameters *)
  | Invalid_input  (** the submitted program is bad, not the request *)
  | Exhausted  (** QoS budget tripped with [degrade = off] *)
  | Cancelled
  | Overloaded  (** admission control rejected the request *)
  | Shutting_down  (** the daemon is draining *)
  | Internal  (** a server-side fault that survived the retries *)
  | Transport  (** client-side only: could not reach or talk to a daemon *)

val kind_name : error_kind -> string
val kind_of_name : string -> error_kind option

val exit_code_of_kind : error_kind -> int
(** The exit code a CLI frontend should terminate with when relaying the
    error: the {!Engine.Guard} codes for request-level failures (2 bad
    request, 3 invalid input, 4 exhausted, 5 internal, 130 cancelled),
    [75] ([EX_TEMPFAIL]) for [overloaded]/[shutting_down] — try again
    later — and [69] ([EX_UNAVAILABLE]) for [transport]. *)

type error = {
  kind : error_kind;
  message : string;
  scope : string option;
      (** what was saturated for [overloaded]: ["client"], ["queue"] or
          ["server"] *)
}

val json_of_error : error -> Telemetry.Json.t
(** [{"kind": .., "message": .., "scope": .., "code": ..}] — [code] is
    {!exit_code_of_kind}, [scope] is omitted when [None]. *)

val error_of_json : Telemetry.Json.t -> (error, string) result

type response = { rid : Telemetry.Json.t; result : (Telemetry.Json.t, error) result }

val json_of_response : response -> Telemetry.Json.t
val response_of_json : Telemetry.Json.t -> (response, string) result

val protocol_version : int
(** The highest protocol version this build speaks (currently 2). *)
