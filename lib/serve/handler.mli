(** Request execution for the serve daemon.

    A {!shared} value holds the state that makes a long-lived daemon
    worth running: the worker {!Engine.Pool}, the {!Engine.Rcache}
    handle, the per-machine roofline microbenchmark memo — plus the
    server-side QoS ceilings that clamp each request's envelope.

    {!execute} runs one request to a complete {!Protocol.response}: it
    builds the per-request {!Engine.Ctx} from the clamped QoS, runs the
    same pipeline the CLI subcommand runs (so [ok] payloads are
    byte-identical to [--json] output), and converts any failure into a
    structured protocol error through {!Engine.Guard.protect} — a
    request can fail, the daemon cannot. *)

type shared

val create :
  ?pool:Engine.Pool.t ->
  ?cache:Engine.Rcache.t ->
  ?max_deadline_s:float ->
  ?max_fuel:int ->
  unit ->
  shared

val execute : shared -> Protocol.request -> Protocol.response
(** Never raises. *)

val cache : shared -> Engine.Rcache.t option
(** The daemon's result-store handle (for the server's drain-time GC). *)
