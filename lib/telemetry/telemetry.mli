(** Zero-dependency instrumentation for the PolyUFC pipeline: hierarchical
    spans, monotonic counters and scalar histograms behind one global
    registry, exportable as Chrome trace_event JSON, machine-readable
    stats JSON, and pretty text. Disabled by default; disabled hot paths
    cost a single load+branch.

    The registry is domain-safe: counters are atomics, histogram and span
    recording synchronize on an internal mutex, and the open-span stack is
    domain-local, so spans recorded concurrently by {!Engine.Pool} workers
    nest within the worker's own spans (a worker's outermost span is a
    root).  [reset] zeroes shared state in place and must not race with
    concurrent recording. *)

(** Minimal JSON values: emitter with escaping, plus a strict parser used
    by tests and smoke checks. Non-finite floats serialize as [null]. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  val to_string : t -> string
  val of_string : string -> (t, string) result
  val member : string -> t -> t option
  val to_list : t -> t list option
  val number : t -> float option
end

type span = {
  id : int;
  parent : int;  (** -1 for a root span *)
  depth : int;
  name : string;
  start_us : float;  (** microseconds since the last [reset] *)
  dur_us : float;
  span_args : (string * string) list;
}

type counter

(** {1 Registry control} *)

val enable : unit -> unit
val disable : unit -> unit
val is_enabled : unit -> bool

(** Zero all counters/histograms in place (pre-registered handles stay
    valid), drop recorded spans, and restart the trace clock. *)
val reset : unit -> unit

(** {1 Counters} *)

(** Find-or-create a named monotonic counter. Hot paths should call this
    once at module initialization and bump the handle with [tick]/[add]. *)
val counter : string -> counter

val tick : counter -> unit
val add : counter -> int -> unit

(** One-shot bump by name; does a table lookup, for cold paths only. *)
val count : ?by:int -> string -> unit

val counter_value : string -> int
val counters_snapshot : unit -> (string * int) list

(** {1 Histograms} *)

val observe : string -> float -> unit

(** [(name, (count, sum, min, max))] for every histogram observed at
    least once. *)
val histograms_snapshot : unit -> (string * (int * float * float * float)) list

(** {1 Spans} *)

(** [with_span name f] runs [f], recording a span around it when
    telemetry is enabled (a plain call otherwise). Exception-safe. *)
val with_span : ?args:(string * string) list -> string -> (unit -> 'a) -> 'a

(** Like [with_span] but always measures, returning the wall-clock
    duration in {e seconds} alongside the result. The recorded span (when
    enabled) carries the same measurement. *)
val with_span_timed :
  ?args:(string * string) list -> string -> (unit -> 'a) -> 'a * float

(** Completed spans in chronological (start) order. *)
val spans : unit -> span list

(** Per-name rollup: [(name, (count, total_us))]. *)
val span_summary : unit -> (string * (int * float)) list

(** {1 Export} *)

(** Chrome trace_event JSON (load in chrome://tracing or Perfetto). *)
val trace_json : unit -> Json.t

val trace_to_string : unit -> string
val write_trace : string -> unit

(** Counters + histograms + span rollup as one JSON object. *)
val stats_json : unit -> Json.t

val pp_tree : Format.formatter -> unit -> unit
val pp_stats : Format.formatter -> unit -> unit
