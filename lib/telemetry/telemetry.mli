(** Zero-dependency instrumentation for the PolyUFC pipeline: hierarchical
    spans, monotonic counters and scalar histograms behind one global
    registry, exportable as Chrome trace_event JSON, machine-readable
    stats JSON, and pretty text. Disabled by default; disabled hot paths
    cost a single load+branch.

    The registry is domain-safe: counters are atomics, histogram and span
    recording synchronize on an internal mutex, and the open-span stack is
    domain-local, so spans recorded concurrently by {!Engine.Pool} workers
    nest within the worker's own spans (a worker's outermost span is a
    root).  [reset] zeroes shared state in place and must not race with
    concurrent recording. *)

(** Minimal JSON values: emitter with escaping, plus a strict parser used
    by tests and smoke checks. Non-finite floats serialize as [null]. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  val to_string : t -> string
  val of_string : string -> (t, string) result
  val member : string -> t -> t option
  val to_list : t -> t list option
  val number : t -> float option
end

type span = {
  id : int;
  parent : int;  (** -1 for a root span *)
  depth : int;
  name : string;
  start_us : float;  (** microseconds since the last [reset] *)
  dur_us : float;
  span_args : (string * string) list;
}

type counter
type gauge

(** {1 Registry control} *)

val enable : unit -> unit
val disable : unit -> unit
val is_enabled : unit -> bool

(** Zero all counters/histograms in place (pre-registered handles stay
    valid), drop recorded spans, and restart the trace clock. *)
val reset : unit -> unit

(** {1 Counters} *)

(** Find-or-create a named monotonic counter. Hot paths should call this
    once at module initialization and bump the handle with [tick]/[add]. *)
val counter : string -> counter

val tick : counter -> unit
val add : counter -> int -> unit

(** One-shot bump by name; does a table lookup, for cold paths only. *)
val count : ?by:int -> string -> unit

val counter_value : string -> int
val counters_snapshot : unit -> (string * int) list

(** {1 Gauges}

    A gauge is a level, not a rate: it moves both ways (in-flight
    requests, queue depth, connected clients) and exports its current
    value instead of a monotonic total — OpenMetrics type [gauge] rather
    than [counter].  Updates are atomic and domain-safe; like counters,
    a disabled update costs one load + branch, and {!reset} zeroes
    gauges in place. *)

(** Find-or-create a named gauge. *)
val gauge : string -> gauge

val set_gauge : gauge -> int -> unit
val incr_gauge : gauge -> unit
val decr_gauge : gauge -> unit
val gauge_value : string -> int
val gauges_snapshot : unit -> (string * int) list

(** {1 Histograms}

    Histograms are fixed-bucket log-linear (HDR-histogram style): each
    power-of-two binade is split into 16 equal-width sub-buckets, giving
    quantile estimates with at most ~3.1% relative error over the value
    range [2^-20, 2^40). Zero, negative and out-of-range observations
    land in underflow/overflow buckets whose estimates are pinned to the
    observed min/max, so {!quantile} is total on any non-empty
    histogram. NaN observations are dropped. *)

val observe : string -> float -> unit

(** Immutable snapshot of one histogram. [hist_buckets] lists only
    non-empty buckets as [(upper_bound, count)] in increasing bound
    order; the overflow bucket's bound is [infinity]. *)
type hist = {
  hist_count : int;
  hist_sum : float;
  hist_min : float;
  hist_max : float;
  hist_buckets : (float * int) list;
}

(** [(name, (count, sum, min, max))] for every histogram observed at
    least once. *)
val histograms_snapshot : unit -> (string * (int * float * float * float)) list

(** Full bucketed snapshots, sorted by name. *)
val histograms_detailed : unit -> (string * hist) list

val histogram_snapshot : string -> hist option

(** [quantile h q] is the nearest-rank quantile estimate for
    [q] in [0,1], clamped to the observed [min, max]. NaN when
    [h.hist_count = 0]. *)
val quantile : hist -> float -> float

(** {1 Spans} *)

(** [with_span name f] runs [f], recording a span around it when
    telemetry is enabled (a plain call otherwise). Exception-safe. *)
val with_span : ?args:(string * string) list -> string -> (unit -> 'a) -> 'a

(** Like [with_span] but always measures, returning the wall-clock
    duration in {e seconds} alongside the result. The recorded span (when
    enabled) carries the same measurement. *)
val with_span_timed :
  ?args:(string * string) list -> string -> (unit -> 'a) -> 'a * float

(** Completed spans in chronological (start) order. *)
val spans : unit -> span list

(** Per-name rollup: [(name, (count, total_us))]. *)
val span_summary : unit -> (string * (int * float)) list

(** Spans entered but not yet closed, across all domains:
    [(id, name, start_us, domain)] sorted by id. Used by the flight
    recorder to capture in-progress work at crash time. *)
val open_spans : unit -> (int * string * float * int) list

(** Name of the innermost open span on the calling domain, if any. *)
val current_span_name : unit -> string option

(** {1 Run metadata} *)

(** Attribution block stamped into {!stats_json}, bench reports and
    crash dumps: timestamp (ISO-8601 UTC), git commit (resolved by
    reading [.git], [null] outside a work tree), hostname, pid, OCaml
    version, OS type, plus any fields added with {!set_meta}. *)
val run_meta : unit -> Json.t

(** [set_meta key v] adds (or replaces) an extra field in {!run_meta},
    e.g. the frontend's job count. *)
val set_meta : string -> Json.t -> unit

(** {1 Structured event log} *)

(** Leveled JSON-lines event log with a built-in flight recorder.

    Every event is a one-line JSON object
    [{"ts": ..., "level": ..., "event": ..., "domain": ..., "span": ...,
    <extra fields>}]. Events at or above the threshold level go to the
    configured sink; {e all} events (regardless of sink or level) are
    additionally recorded in a bounded in-memory ring consulted by the
    crash dumper. Emission is domain-safe.

    The sink can be armed without code via the [POLYUFC_LOG] environment
    variable ([FILE], [-] or [stderr]) and filtered via
    [POLYUFC_LOG_LEVEL] ([debug|info|warn|error], default [info]). *)
module Event : sig
  type level = Debug | Info | Warn | Error

  val level_of_string : string -> level option
  val level_name : level -> string

  (** Set the minimum level forwarded to the sink (ring recording is
      unaffected). *)
  val set_level : level -> unit

  (** Route events to a sink: [-] or [stderr] for standard error, [""],
      [off] or [null] to disable, anything else is opened (append,
      create) as a file. Replaces and closes any previous sink. *)
  val set_sink_path : string -> (unit, string) result

  (** Close the current sink (also installed as an [at_exit] hook). *)
  val close_sink : unit -> unit

  val emit : ?fields:(string * Json.t) list -> level -> string -> unit
  val debug : ?fields:(string * Json.t) list -> string -> unit
  val info : ?fields:(string * Json.t) list -> string -> unit
  val warn : ?fields:(string * Json.t) list -> string -> unit
  val error : ?fields:(string * Json.t) list -> string -> unit

  (** Flight-recorder contents, oldest first (at most the last 256
      events). *)
  val recent : unit -> Json.t list

  val clear_ring : unit -> unit
end

(** {1 Export} *)

(** Chrome trace_event JSON (load in chrome://tracing or Perfetto). *)
val trace_json : unit -> Json.t

val trace_to_string : unit -> string
val write_trace : string -> unit

(** Counters + gauges + histograms (with buckets and p50/p90/p99/p999) +
    span rollup + {!run_meta}, as one JSON object. *)
val stats_json : unit -> Json.t

(** Render a stats document (the {!stats_json} shape) as OpenMetrics /
    Prometheus text exposition: [polyufc_]-prefixed sanitized names,
    [# TYPE] metadata, counters as [_total], histograms as cumulative
    [_bucket{le="..."}] series plus [_sum]/[_count], run metadata as a
    [polyufc_build_info] gauge, terminated by [# EOF]. Errors if the
    document is not a JSON object. *)
val openmetrics_of_stats : Json.t -> (string, string) result

(** [openmetrics_of_stats (stats_json ())], raising [Invalid_argument]
    on malformed input (cannot happen for the live registry). *)
val to_openmetrics : unit -> string

val pp_tree : Format.formatter -> unit -> unit
val pp_stats : Format.formatter -> unit -> unit
