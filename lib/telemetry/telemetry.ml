(* Zero-dependency instrumentation for the PolyUFC pipeline.

   Three primitives, all funneled through one global registry:
     - hierarchical spans   (with_span "pluto" f)
     - monotonic counters   (count "presburger.fm_project")
     - scalar histograms    (observe "ehrhart.fit_points" 12.0)

   The registry is disabled by default: a disabled [with_span] is a direct
   call of its thunk and a disabled counter bump is a single load+branch,
   so instrumented hot paths cost ~nothing when telemetry is off.  Hot
   loops should pre-register a counter handle ([counter]) once and bump it
   with [tick]/[add], or accumulate locally and bulk-[add] on exit.

   Spans export as Chrome trace_event JSON (chrome://tracing, Perfetto)
   and as a pretty text tree; counters and histograms export as a flat
   machine-readable JSON object. *)

(* ------------------------------------------------------------------ *)
(* Minimal JSON — emitter and parser                                   *)
(* ------------------------------------------------------------------ *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  let escape buf s =
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s

  (* non-finite floats have no JSON literal; emit null *)
  let add_float buf f =
    if Float.is_integer f && Float.abs f < 1e15 then
      Buffer.add_string buf (Printf.sprintf "%.1f" f)
    else if Float.is_finite f then
      Buffer.add_string buf (Printf.sprintf "%.12g" f)
    else Buffer.add_string buf "null"

  let rec add buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> add_float buf f
    | Str s ->
      Buffer.add_char buf '"';
      escape buf s;
      Buffer.add_char buf '"'
    | Arr l ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          add buf x)
        l;
      Buffer.add_char buf ']'
    | Obj l ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape buf k;
          Buffer.add_string buf "\":";
          add buf v)
        l;
      Buffer.add_char buf '}'

  let to_string t =
    let buf = Buffer.create 256 in
    add buf t;
    Buffer.contents buf

  (* accessors *)
  let member k = function
    | Obj l -> List.assoc_opt k l
    | _ -> None

  let to_list = function Arr l -> Some l | _ -> None

  let number = function
    | Int i -> Some (float_of_int i)
    | Float f -> Some f
    | _ -> None

  (* recursive-descent parser; returns [Error msg] on malformed input *)
  exception Parse_error of string

  let of_string s =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail (Printf.sprintf "expected %C" c)
    in
    let literal word v =
      let l = String.length word in
      if !pos + l <= n && String.sub s !pos l = word then begin
        pos := !pos + l;
        v
      end
      else fail (Printf.sprintf "expected %s" word)
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        match peek () with
        | None -> fail "unterminated string"
        | Some '"' -> advance ()
        | Some '\\' ->
          advance ();
          (match peek () with
          | Some '"' -> Buffer.add_char buf '"'; advance ()
          | Some '\\' -> Buffer.add_char buf '\\'; advance ()
          | Some '/' -> Buffer.add_char buf '/'; advance ()
          | Some 'n' -> Buffer.add_char buf '\n'; advance ()
          | Some 'r' -> Buffer.add_char buf '\r'; advance ()
          | Some 't' -> Buffer.add_char buf '\t'; advance ()
          | Some 'b' -> Buffer.add_char buf '\b'; advance ()
          | Some 'f' -> Buffer.add_char buf '\012'; advance ()
          | Some 'u' ->
            advance ();
            if !pos + 4 > n then fail "truncated \\u escape";
            let hex = String.sub s !pos 4 in
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> fail "bad \\u escape"
            in
            pos := !pos + 4;
            (* encode the BMP codepoint as UTF-8 *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
          | _ -> fail "bad escape");
          go ()
        | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
      in
      go ();
      Buffer.contents buf
    in
    let parse_number () =
      let start = !pos in
      let is_num_char c =
        match c with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while (match peek () with Some c when is_num_char c -> true | _ -> false) do
        advance ()
      done;
      let text = String.sub s start (!pos - start) in
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail (Printf.sprintf "bad number %S" text))
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              fields ((k, v) :: acc)
            | Some '}' ->
              advance ();
              List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (fields [])
        end
      | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              items (v :: acc)
            | Some ']' ->
              advance ();
              List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          Arr (items [])
        end
      | Some '"' -> Str (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> parse_number ()
    in
    match
      let v = parse_value () in
      skip_ws ();
      if !pos <> n then fail "trailing garbage";
      v
    with
    | v -> Ok v
    | exception Parse_error msg -> Error msg
end

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

(* Domain-safety: the registry is shared by every domain of the process.
   Counters are atomics (a disabled bump is still one load + branch); the
   counter/histogram tables and the finished-span list are guarded by one
   registry mutex; the open-span stack is domain-local (Domain.DLS), so
   spans recorded by a pool worker nest within that worker's own spans and
   surface as roots when the worker opened none.  [reset] zeroes the
   shared state in place — call it only while no other domain records. *)

type span = {
  id : int;
  parent : int; (* -1 for a root span *)
  depth : int;
  name : string;
  start_us : float; (* microseconds since the last [reset] *)
  dur_us : float;
  span_args : (string * string) list;
}

type histogram = {
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

type counter = int Atomic.t

let enabled = Atomic.make false
let registry_mutex = Mutex.create ()
let epoch = ref (Unix.gettimeofday ())
let next_id = Atomic.make 0

(* (id, depth), innermost first; one stack per domain *)
let open_stack_key : (int * int) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let open_stack () = Domain.DLS.get open_stack_key
let finished : span list ref = ref []
let counters : (string, counter) Hashtbl.t = Hashtbl.create 64
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16

let enable () = Atomic.set enabled true
let disable () = Atomic.set enabled false
let is_enabled () = Atomic.get enabled

(* [reset] zeroes values in place: counter handles pre-registered by
   instrumented modules stay valid across resets *)
let reset () =
  Mutex.protect registry_mutex @@ fun () ->
  epoch := Unix.gettimeofday ();
  Atomic.set next_id 0;
  (open_stack ()) := [];
  finished := [];
  Hashtbl.iter (fun _ r -> Atomic.set r 0) counters;
  Hashtbl.iter
    (fun _ h ->
      h.h_count <- 0;
      h.h_sum <- 0.0;
      h.h_min <- Float.infinity;
      h.h_max <- Float.neg_infinity)
    histograms

let now_us () = (Unix.gettimeofday () -. !epoch) *. 1e6

(* --- counters --- *)

let counter name =
  Mutex.protect registry_mutex @@ fun () ->
  match Hashtbl.find_opt counters name with
  | Some r -> r
  | None ->
    let r = Atomic.make 0 in
    Hashtbl.add counters name r;
    r

let add r by = if Atomic.get enabled then ignore (Atomic.fetch_and_add r by)
let tick r = add r 1
let count ?(by = 1) name = if Atomic.get enabled then add (counter name) by

let counter_value name =
  let r =
    Mutex.protect registry_mutex (fun () -> Hashtbl.find_opt counters name)
  in
  match r with Some r -> Atomic.get r | None -> 0

let counters_snapshot () =
  Mutex.protect registry_mutex (fun () ->
      Hashtbl.fold (fun name r acc -> (name, Atomic.get r) :: acc) counters [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* --- histograms --- *)

let observe name v =
  if Atomic.get enabled then
    Mutex.protect registry_mutex @@ fun () ->
    let h =
      match Hashtbl.find_opt histograms name with
      | Some h -> h
      | None ->
        let h =
          {
            h_count = 0;
            h_sum = 0.0;
            h_min = Float.infinity;
            h_max = Float.neg_infinity;
          }
        in
        Hashtbl.add histograms name h;
        h
    in
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum +. v;
    if v < h.h_min then h.h_min <- v;
    if v > h.h_max then h.h_max <- v

let histograms_snapshot () =
  Mutex.protect registry_mutex (fun () ->
      Hashtbl.fold
        (fun name h acc ->
          if h.h_count > 0 then
            (name, (h.h_count, h.h_sum, h.h_min, h.h_max)) :: acc
          else acc)
        histograms [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* --- spans --- *)

let push_span () =
  let stack = open_stack () in
  let id = Atomic.fetch_and_add next_id 1 in
  let parent, depth =
    match !stack with
    | [] -> (-1, 0)
    | (p, d) :: _ -> (p, d + 1)
  in
  stack := (id, depth) :: !stack;
  (id, parent, depth)

let pop_span ~id ~parent ~depth ~name ~args ~start_us ~dur_us =
  let stack = open_stack () in
  (match !stack with
  | (top, _) :: rest when top = id -> stack := rest
  | _ ->
    (* unbalanced nesting (an inner span escaped); drop down to [id] *)
    let rec drop = function
      | (top, _) :: rest when top <> id -> drop rest
      | (_, _) :: rest -> rest
      | [] -> []
    in
    stack := drop !stack);
  let s = { id; parent; depth; name; start_us; dur_us; span_args = args } in
  Mutex.protect registry_mutex (fun () -> finished := s :: !finished)

let with_span ?(args = []) name f =
  if not (Atomic.get enabled) then f ()
  else begin
    let id, parent, depth = push_span () in
    let start_us = now_us () in
    Fun.protect
      ~finally:(fun () ->
        let dur_us = now_us () -. start_us in
        pop_span ~id ~parent ~depth ~name ~args ~start_us ~dur_us)
      f
  end

(* Always measures wall time (cheaply, even when disabled) and returns the
   duration in seconds alongside the result; records a span only when
   enabled.  The recorded span duration and the returned duration are the
   same measurement, so views built over either agree exactly. *)
let with_span_timed ?(args = []) name f =
  if not (Atomic.get enabled) then begin
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  end
  else begin
    let id, parent, depth = push_span () in
    let start_us = now_us () in
    let finish () = now_us () -. start_us in
    match f () with
    | r ->
      let dur_us = finish () in
      pop_span ~id ~parent ~depth ~name ~args ~start_us ~dur_us;
      (r, dur_us *. 1e-6)
    | exception e ->
      let dur_us = finish () in
      pop_span ~id ~parent ~depth ~name ~args ~start_us ~dur_us;
      raise e
  end

let finished_snapshot () =
  Mutex.protect registry_mutex (fun () -> !finished)

let spans () =
  List.sort
    (fun a b ->
      match compare a.start_us b.start_us with 0 -> compare a.id b.id | c -> c)
    (List.rev (finished_snapshot ()))

(* per-name rollup: (count, total self-inclusive microseconds) *)
let span_summary () =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun s ->
      let c, t =
        match Hashtbl.find_opt tbl s.name with
        | Some (c, t) -> (c, t)
        | None -> (0, 0.0)
      in
      Hashtbl.replace tbl s.name (c + 1, t +. s.dur_us))
    (finished_snapshot ());
  Hashtbl.fold (fun name ct acc -> (name, ct) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* ------------------------------------------------------------------ *)
(* Export                                                              *)
(* ------------------------------------------------------------------ *)

(* Chrome trace_event format: complete ("X") events carry ts+dur in
   microseconds; final counter values ride along as "C" events so they
   show up as counter tracks in chrome://tracing / Perfetto. *)
let trace_json () =
  let span_events =
    List.map
      (fun s ->
        let base =
          [
            ("name", Json.Str s.name);
            ("cat", Json.Str "polyufc");
            ("ph", Json.Str "X");
            ("ts", Json.Float s.start_us);
            ("dur", Json.Float s.dur_us);
            ("pid", Json.Int 1);
            ("tid", Json.Int 1);
          ]
        in
        let args =
          match s.span_args with
          | [] -> []
          | l -> [ ("args", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) l)) ]
        in
        Json.Obj (base @ args))
      (spans ())
  in
  let end_ts =
    List.fold_left
      (fun acc s -> Float.max acc (s.start_us +. s.dur_us))
      0.0 (finished_snapshot ())
  in
  let counter_events =
    List.filter_map
      (fun (name, v) ->
        if v = 0 then None
        else
          Some
            (Json.Obj
               [
                 ("name", Json.Str name);
                 ("cat", Json.Str "polyufc");
                 ("ph", Json.Str "C");
                 ("ts", Json.Float end_ts);
                 ("pid", Json.Int 1);
                 ("args", Json.Obj [ ("value", Json.Int v) ]);
               ]))
      (counters_snapshot ())
  in
  Json.Obj
    [
      ("traceEvents", Json.Arr (span_events @ counter_events));
      ("displayTimeUnit", Json.Str "ms");
    ]

let trace_to_string () = Json.to_string (trace_json ())

let write_trace path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (trace_to_string ()))

let stats_json () =
  let counters =
    List.filter_map
      (fun (name, v) -> if v = 0 then None else Some (name, Json.Int v))
      (counters_snapshot ())
  in
  let hists =
    List.map
      (fun (name, (n, sum, mn, mx)) ->
        ( name,
          Json.Obj
            [
              ("count", Json.Int n);
              ("sum", Json.Float sum);
              ("min", Json.Float mn);
              ("max", Json.Float mx);
              ("mean", Json.Float (sum /. float_of_int n));
            ] ))
      (histograms_snapshot ())
  in
  let spans =
    List.map
      (fun (name, (n, total_us)) ->
        ( name,
          Json.Obj
            [ ("count", Json.Int n); ("total_us", Json.Float total_us) ] ))
      (span_summary ())
  in
  Json.Obj
    [
      ("counters", Json.Obj counters);
      ("histograms", Json.Obj hists);
      ("spans", Json.Obj spans);
    ]

(* --- text views --- *)

let pp_duration ppf us =
  if us >= 1e6 then Format.fprintf ppf "%.3f s" (us *. 1e-6)
  else if us >= 1e3 then Format.fprintf ppf "%.3f ms" (us *. 1e-3)
  else Format.fprintf ppf "%.1f us" us

let pp_tree ppf () =
  let all = spans () in
  let children = Hashtbl.create 64 in
  List.iter
    (fun s ->
      let l = try Hashtbl.find children s.parent with Not_found -> [] in
      Hashtbl.replace children s.parent (s :: l))
    (List.rev all);
  let rec pp_node prefix s =
    Format.fprintf ppf "%s%s  [%a]" prefix s.name pp_duration s.dur_us;
    List.iter (fun (k, v) -> Format.fprintf ppf " %s=%s" k v) s.span_args;
    Format.fprintf ppf "@,";
    let kids = try Hashtbl.find children s.id with Not_found -> [] in
    List.iter (pp_node (prefix ^ "  ")) kids
  in
  Format.fprintf ppf "@[<v>";
  List.iter (fun s -> if s.parent = -1 then pp_node "" s) all;
  Format.fprintf ppf "@]"

let pp_stats ppf () =
  Format.fprintf ppf "@[<v>telemetry counters:@,";
  List.iter
    (fun (name, v) ->
      if v <> 0 then Format.fprintf ppf "  %-36s %d@," name v)
    (counters_snapshot ());
  (match histograms_snapshot () with
  | [] -> ()
  | hs ->
    Format.fprintf ppf "telemetry histograms:@,";
    List.iter
      (fun (name, (n, sum, mn, mx)) ->
        Format.fprintf ppf "  %-36s n=%d mean=%.3g min=%.3g max=%.3g@," name n
          (sum /. float_of_int n) mn mx)
      hs);
  (match span_summary () with
  | [] -> ()
  | ss ->
    Format.fprintf ppf "telemetry spans:@,";
    List.iter
      (fun (name, (n, total_us)) ->
        Format.fprintf ppf "  %-36s n=%d total=%a@," name n pp_duration total_us)
      ss);
  Format.fprintf ppf "@]"
