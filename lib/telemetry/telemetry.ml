(* Zero-dependency instrumentation for the PolyUFC pipeline.

   Three primitives, all funneled through one global registry:
     - hierarchical spans   (with_span "pluto" f)
     - monotonic counters   (count "presburger.fm_project")
     - scalar histograms    (observe "ehrhart.fit_points" 12.0)

   The registry is disabled by default: a disabled [with_span] is a direct
   call of its thunk and a disabled counter bump is a single load+branch,
   so instrumented hot paths cost ~nothing when telemetry is off.  Hot
   loops should pre-register a counter handle ([counter]) once and bump it
   with [tick]/[add], or accumulate locally and bulk-[add] on exit.

   Spans export as Chrome trace_event JSON (chrome://tracing, Perfetto)
   and as a pretty text tree; counters and histograms export as a flat
   machine-readable JSON object. *)

(* ------------------------------------------------------------------ *)
(* Minimal JSON — emitter and parser                                   *)
(* ------------------------------------------------------------------ *)

module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  let escape buf s =
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s

  (* non-finite floats have no JSON literal; emit null *)
  let add_float buf f =
    if Float.is_integer f && Float.abs f < 1e15 then
      Buffer.add_string buf (Printf.sprintf "%.1f" f)
    else if Float.is_finite f then
      Buffer.add_string buf (Printf.sprintf "%.12g" f)
    else Buffer.add_string buf "null"

  let rec add buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> add_float buf f
    | Str s ->
      Buffer.add_char buf '"';
      escape buf s;
      Buffer.add_char buf '"'
    | Arr l ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          add buf x)
        l;
      Buffer.add_char buf ']'
    | Obj l ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape buf k;
          Buffer.add_string buf "\":";
          add buf v)
        l;
      Buffer.add_char buf '}'

  let to_string t =
    let buf = Buffer.create 256 in
    add buf t;
    Buffer.contents buf

  (* accessors *)
  let member k = function
    | Obj l -> List.assoc_opt k l
    | _ -> None

  let to_list = function Arr l -> Some l | _ -> None

  let number = function
    | Int i -> Some (float_of_int i)
    | Float f -> Some f
    | _ -> None

  (* recursive-descent parser; returns [Error msg] on malformed input *)
  exception Parse_error of string

  let of_string s =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail (Printf.sprintf "expected %C" c)
    in
    let literal word v =
      let l = String.length word in
      if !pos + l <= n && String.sub s !pos l = word then begin
        pos := !pos + l;
        v
      end
      else fail (Printf.sprintf "expected %s" word)
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec go () =
        match peek () with
        | None -> fail "unterminated string"
        | Some '"' -> advance ()
        | Some '\\' ->
          advance ();
          (match peek () with
          | Some '"' -> Buffer.add_char buf '"'; advance ()
          | Some '\\' -> Buffer.add_char buf '\\'; advance ()
          | Some '/' -> Buffer.add_char buf '/'; advance ()
          | Some 'n' -> Buffer.add_char buf '\n'; advance ()
          | Some 'r' -> Buffer.add_char buf '\r'; advance ()
          | Some 't' -> Buffer.add_char buf '\t'; advance ()
          | Some 'b' -> Buffer.add_char buf '\b'; advance ()
          | Some 'f' -> Buffer.add_char buf '\012'; advance ()
          | Some 'u' ->
            advance ();
            if !pos + 4 > n then fail "truncated \\u escape";
            let hex = String.sub s !pos 4 in
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> fail "bad \\u escape"
            in
            pos := !pos + 4;
            (* encode the BMP codepoint as UTF-8 *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
          | _ -> fail "bad escape");
          go ()
        | Some c ->
          Buffer.add_char buf c;
          advance ();
          go ()
      in
      go ();
      Buffer.contents buf
    in
    let parse_number () =
      let start = !pos in
      let is_num_char c =
        match c with
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while (match peek () with Some c when is_num_char c -> true | _ -> false) do
        advance ()
      done;
      let text = String.sub s start (!pos - start) in
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail (Printf.sprintf "bad number %S" text))
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              fields ((k, v) :: acc)
            | Some '}' ->
              advance ();
              List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (fields [])
        end
      | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
              advance ();
              items (v :: acc)
            | Some ']' ->
              advance ();
              List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          Arr (items [])
        end
      | Some '"' -> Str (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some _ -> parse_number ()
    in
    match
      let v = parse_value () in
      skip_ws ();
      if !pos <> n then fail "trailing garbage";
      v
    with
    | v -> Ok v
    | exception Parse_error msg -> Error msg
end

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

(* Domain-safety: the registry is shared by every domain of the process.
   Counters are atomics (a disabled bump is still one load + branch); the
   counter/histogram tables and the finished-span list are guarded by one
   registry mutex; the open-span stack is domain-local (Domain.DLS), so
   spans recorded by a pool worker nest within that worker's own spans and
   surface as roots when the worker opened none.  [reset] zeroes the
   shared state in place — call it only while no other domain records. *)

type span = {
  id : int;
  parent : int; (* -1 for a root span *)
  depth : int;
  name : string;
  start_us : float; (* microseconds since the last [reset] *)
  dur_us : float;
  span_args : (string * string) list;
}

(* Log-linear bucketed histogram (HDR-histogram style): each power-of-two
   binade [2^e, 2^(e+1)) is split into [hist_sub] equal-width sub-buckets,
   so any estimate read off a bucket is within half a sub-bucket of the
   true value — a relative error of at most 1/(2*hist_sub) ~ 3.1%.
   Values outside [2^hist_min_exp, 2^hist_max_exp) (including zero and
   negatives) land in the underflow/overflow buckets, whose estimates
   are pinned to the observed min/max, so quantile estimation is total
   and domain-safe for any float input (NaN observations are dropped). *)
let hist_sub = 16
let hist_min_exp = -20 (* 2^-20 ~ 1e-6: below timer/counter resolution *)
let hist_max_exp = 40 (* 2^40 ~ 1e12: above any count/µs we record *)
let hist_n_buckets = ((hist_max_exp - hist_min_exp) * hist_sub) + 2

(* index 0 = underflow, 1 .. n-2 = log-linear, n-1 = overflow *)
let bucket_index v =
  if not (Float.is_finite v) || v < Float.pow 2.0 (float_of_int hist_min_exp)
  then 0
  else if v >= Float.pow 2.0 (float_of_int hist_max_exp) then
    hist_n_buckets - 1
  else begin
    let m, e = Float.frexp v in
    (* v = m * 2^e with m in [0.5, 1): binade exponent is e - 1 and the
       position within the binade is 2m - 1 in [0, 1) *)
    let binade = e - 1 in
    let sub = int_of_float (((2.0 *. m) -. 1.0) *. float_of_int hist_sub) in
    let sub = max 0 (min (hist_sub - 1) sub) in
    1 + ((binade - hist_min_exp) * hist_sub) + sub
  end

(* inclusive-exclusive bounds of a log-linear bucket *)
let bucket_bounds i =
  if i <= 0 then (Float.neg_infinity, Float.pow 2.0 (float_of_int hist_min_exp))
  else if i >= hist_n_buckets - 1 then
    (Float.pow 2.0 (float_of_int hist_max_exp), Float.infinity)
  else begin
    let k = i - 1 in
    let binade = hist_min_exp + (k / hist_sub) in
    let sub = k mod hist_sub in
    let base = Float.pow 2.0 (float_of_int binade) in
    ( base *. (1.0 +. (float_of_int sub /. float_of_int hist_sub)),
      base *. (1.0 +. (float_of_int (sub + 1) /. float_of_int hist_sub)) )
  end

type histogram = {
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  h_buckets : int array; (* length hist_n_buckets *)
}

type hist = {
  hist_count : int;
  hist_sum : float;
  hist_min : float;
  hist_max : float;
  hist_buckets : (float * int) list;
}

type counter = int Atomic.t
type gauge = int Atomic.t

let enabled = Atomic.make false
let registry_mutex = Mutex.create ()
let epoch = ref (Unix.gettimeofday ())
let next_id = Atomic.make 0

(* (id, depth), innermost first; one stack per domain *)
let open_stack_key : (int * int) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let open_stack () = Domain.DLS.get open_stack_key
let finished : span list ref = ref []
let counters : (string, counter) Hashtbl.t = Hashtbl.create 64
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 16
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16

(* id -> (name, start_us, domain) for every span currently open in any
   domain; the flight recorder dumps this on a crash, where the DLS
   stacks of other domains are unreachable *)
let open_span_names : (int, string * float * int) Hashtbl.t = Hashtbl.create 16

let enable () = Atomic.set enabled true
let disable () = Atomic.set enabled false
let is_enabled () = Atomic.get enabled

(* [reset] zeroes values in place: counter handles pre-registered by
   instrumented modules stay valid across resets *)
let reset () =
  Mutex.protect registry_mutex @@ fun () ->
  epoch := Unix.gettimeofday ();
  Atomic.set next_id 0;
  (open_stack ()) := [];
  finished := [];
  Hashtbl.reset open_span_names;
  Hashtbl.iter (fun _ r -> Atomic.set r 0) counters;
  Hashtbl.iter (fun _ r -> Atomic.set r 0) gauges;
  Hashtbl.iter
    (fun _ h ->
      h.h_count <- 0;
      h.h_sum <- 0.0;
      h.h_min <- Float.infinity;
      h.h_max <- Float.neg_infinity;
      Array.fill h.h_buckets 0 hist_n_buckets 0)
    histograms

let now_us () = (Unix.gettimeofday () -. !epoch) *. 1e6

(* --- counters --- *)

let counter name =
  Mutex.protect registry_mutex @@ fun () ->
  match Hashtbl.find_opt counters name with
  | Some r -> r
  | None ->
    let r = Atomic.make 0 in
    Hashtbl.add counters name r;
    r

let add r by = if Atomic.get enabled then ignore (Atomic.fetch_and_add r by)
let tick r = add r 1
let count ?(by = 1) name = if Atomic.get enabled then add (counter name) by

let counter_value name =
  let r =
    Mutex.protect registry_mutex (fun () -> Hashtbl.find_opt counters name)
  in
  match r with Some r -> Atomic.get r | None -> 0

let counters_snapshot () =
  Mutex.protect registry_mutex (fun () ->
      Hashtbl.fold (fun name r acc -> (name, Atomic.get r) :: acc) counters [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* --- gauges --- *)

(* A gauge is a level, not a rate: it goes up and down (in-flight
   requests, queue depth, connected clients) and exports its *current*
   value rather than a monotonic total.  Same cost model as counters:
   atomics behind the registry mutex only at find-or-create time, and a
   disabled update is one load + branch. *)

let gauge name =
  Mutex.protect registry_mutex @@ fun () ->
  match Hashtbl.find_opt gauges name with
  | Some r -> r
  | None ->
    let r = Atomic.make 0 in
    Hashtbl.add gauges name r;
    r

let set_gauge g v = if Atomic.get enabled then Atomic.set g v
let incr_gauge g = if Atomic.get enabled then ignore (Atomic.fetch_and_add g 1)

let decr_gauge g =
  if Atomic.get enabled then ignore (Atomic.fetch_and_add g (-1))

let gauge_value name =
  let r =
    Mutex.protect registry_mutex (fun () -> Hashtbl.find_opt gauges name)
  in
  match r with Some r -> Atomic.get r | None -> 0

let gauges_snapshot () =
  Mutex.protect registry_mutex (fun () ->
      Hashtbl.fold (fun name r acc -> (name, Atomic.get r) :: acc) gauges [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* --- histograms --- *)

let observe name v =
  if Atomic.get enabled && not (Float.is_nan v) then
    Mutex.protect registry_mutex @@ fun () ->
    let h =
      match Hashtbl.find_opt histograms name with
      | Some h -> h
      | None ->
        let h =
          {
            h_count = 0;
            h_sum = 0.0;
            h_min = Float.infinity;
            h_max = Float.neg_infinity;
            h_buckets = Array.make hist_n_buckets 0;
          }
        in
        Hashtbl.add histograms name h;
        h
    in
    h.h_count <- h.h_count + 1;
    h.h_sum <- h.h_sum +. v;
    if v < h.h_min then h.h_min <- v;
    if v > h.h_max then h.h_max <- v;
    let i = bucket_index v in
    h.h_buckets.(i) <- h.h_buckets.(i) + 1

let snapshot_of_histogram h =
  let buckets = ref [] in
  for i = hist_n_buckets - 1 downto 0 do
    if h.h_buckets.(i) > 0 then
      buckets := (snd (bucket_bounds i), h.h_buckets.(i)) :: !buckets
  done;
  {
    hist_count = h.h_count;
    hist_sum = h.h_sum;
    hist_min = h.h_min;
    hist_max = h.h_max;
    hist_buckets = !buckets;
  }

let histograms_detailed () =
  Mutex.protect registry_mutex (fun () ->
      Hashtbl.fold
        (fun name h acc ->
          if h.h_count > 0 then (name, snapshot_of_histogram h) :: acc else acc)
        histograms [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let histogram_snapshot name =
  Mutex.protect registry_mutex (fun () ->
      match Hashtbl.find_opt histograms name with
      | Some h when h.h_count > 0 -> Some (snapshot_of_histogram h)
      | _ -> None)

let histograms_snapshot () =
  List.map
    (fun (name, h) ->
      (name, (h.hist_count, h.hist_sum, h.hist_min, h.hist_max)))
    (histograms_detailed ())

(* Nearest-rank quantile over the bucket cumulative counts.  The estimate
   for an interior bucket is its midpoint, clamped to the observed
   [min, max]; the boundary buckets are pinned to min/max exactly, so a
   degenerate histogram (all observations equal) reports every quantile
   exactly and no estimate ever leaves the observed range. *)
let quantile h q =
  if h.hist_count = 0 then Float.nan
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let target =
      max 1 (int_of_float (Float.ceil (q *. float_of_int h.hist_count)))
    in
    let rec walk cum = function
      | [] -> h.hist_max
      | (ub, n) :: rest ->
        if cum + n >= target then begin
          (* recover the bucket's lower bound from its upper bound *)
          let est =
            if ub <= Float.pow 2.0 (float_of_int hist_min_exp) then h.hist_min
            else if Float.is_finite ub then begin
              let i = bucket_index (ub *. (1.0 -. (0.5 /. float_of_int hist_sub))) in
              let lb, ub' = bucket_bounds i in
              if Float.is_finite lb then (lb +. ub') /. 2.0 else h.hist_min
            end
            else h.hist_max
          in
          Float.max h.hist_min (Float.min h.hist_max est)
        end
        else walk (cum + n) rest
    in
    walk 0 h.hist_buckets
  end

(* --- spans --- *)

let push_span name start_us =
  let stack = open_stack () in
  let id = Atomic.fetch_and_add next_id 1 in
  let parent, depth =
    match !stack with
    | [] -> (-1, 0)
    | (p, d) :: _ -> (p, d + 1)
  in
  stack := (id, depth) :: !stack;
  Mutex.protect registry_mutex (fun () ->
      Hashtbl.replace open_span_names id
        (name, start_us, (Domain.self () :> int)));
  (id, parent, depth)

let pop_span ~id ~parent ~depth ~name ~args ~start_us ~dur_us =
  let stack = open_stack () in
  (match !stack with
  | (top, _) :: rest when top = id -> stack := rest
  | _ ->
    (* unbalanced nesting (an inner span escaped); drop down to [id] *)
    let rec drop = function
      | (top, _) :: rest when top <> id -> drop rest
      | (_, _) :: rest -> rest
      | [] -> []
    in
    stack := drop !stack);
  let s = { id; parent; depth; name; start_us; dur_us; span_args = args } in
  Mutex.protect registry_mutex (fun () ->
      Hashtbl.remove open_span_names id;
      finished := s :: !finished)

(* spans currently open across every domain, outermost-first per id *)
let open_spans () =
  Mutex.protect registry_mutex (fun () ->
      Hashtbl.fold
        (fun id (name, start_us, dom) acc -> (id, name, start_us, dom) :: acc)
        open_span_names [])
  |> List.sort (fun (a, _, _, _) (b, _, _, _) -> compare a b)

(* the innermost span open on *this* domain, for event-log context *)
let current_span_name () =
  match !(open_stack ()) with
  | [] -> None
  | (id, _) :: _ ->
    Mutex.protect registry_mutex (fun () ->
        Option.map
          (fun (name, _, _) -> name)
          (Hashtbl.find_opt open_span_names id))

let with_span ?(args = []) name f =
  if not (Atomic.get enabled) then f ()
  else begin
    let start_us = now_us () in
    let id, parent, depth = push_span name start_us in
    Fun.protect
      ~finally:(fun () ->
        let dur_us = now_us () -. start_us in
        pop_span ~id ~parent ~depth ~name ~args ~start_us ~dur_us)
      f
  end

(* Always measures wall time (cheaply, even when disabled) and returns the
   duration in seconds alongside the result; records a span only when
   enabled.  The recorded span duration and the returned duration are the
   same measurement, so views built over either agree exactly. *)
let with_span_timed ?(args = []) name f =
  if not (Atomic.get enabled) then begin
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  end
  else begin
    let start_us = now_us () in
    let id, parent, depth = push_span name start_us in
    let finish () = now_us () -. start_us in
    match f () with
    | r ->
      let dur_us = finish () in
      pop_span ~id ~parent ~depth ~name ~args ~start_us ~dur_us;
      (r, dur_us *. 1e-6)
    | exception e ->
      let dur_us = finish () in
      pop_span ~id ~parent ~depth ~name ~args ~start_us ~dur_us;
      raise e
  end

let finished_snapshot () =
  Mutex.protect registry_mutex (fun () -> !finished)

let spans () =
  List.sort
    (fun a b ->
      match compare a.start_us b.start_us with 0 -> compare a.id b.id | c -> c)
    (List.rev (finished_snapshot ()))

(* per-name rollup: (count, total self-inclusive microseconds) *)
let span_summary () =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun s ->
      let c, t =
        match Hashtbl.find_opt tbl s.name with
        | Some (c, t) -> (c, t)
        | None -> (0, 0.0)
      in
      Hashtbl.replace tbl s.name (c + 1, t +. s.dur_us))
    (finished_snapshot ());
  Hashtbl.fold (fun name ct acc -> (name, ct) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* ------------------------------------------------------------------ *)
(* Run metadata                                                        *)
(* ------------------------------------------------------------------ *)

(* Who/when/what produced this output: stamped into stats JSON, bench
   reports and crash dumps so baselines and forensic artifacts are
   attributable.  The git commit is resolved by reading .git/HEAD (and
   the ref or packed-refs file it points to) — no subprocess, and a
   plain "unknown" outside a work tree. *)

let read_file_opt path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match really_input_string ic (in_channel_length ic) with
        | s -> Some s
        | exception _ -> None)

let is_hex40 s =
  String.length s >= 40
  && String.for_all
       (fun c -> (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))
       (String.sub s 0 40)

let git_commit () =
  let rec find_git_dir dir depth =
    if depth > 16 then None
    else
      let dotgit = Filename.concat dir ".git" in
      if Sys.file_exists dotgit then
        if Sys.is_directory dotgit then Some dotgit
        else
          (* worktree: .git is a file "gitdir: <path>" *)
          Option.bind (read_file_opt dotgit) (fun text ->
              match String.split_on_char ':' (String.trim text) with
              | "gitdir" :: rest ->
                Some (String.trim (String.concat ":" rest))
              | _ -> None)
      else
        let parent = Filename.dirname dir in
        if parent = dir then None else find_git_dir parent (depth + 1)
  in
  let resolve_ref git_dir ref_name =
    match read_file_opt (Filename.concat git_dir ref_name) with
    | Some sha when is_hex40 (String.trim sha) ->
      Some (String.sub (String.trim sha) 0 40)
    | _ -> (
      (* fall back to packed-refs: "<sha> <ref>" lines *)
      match read_file_opt (Filename.concat git_dir "packed-refs") with
      | None -> None
      | Some text ->
        String.split_on_char '\n' text
        |> List.find_map (fun line ->
               match String.index_opt line ' ' with
               | Some i
                 when String.sub line (i + 1) (String.length line - i - 1)
                      = ref_name
                      && is_hex40 line ->
                 Some (String.sub line 0 40)
               | _ -> None))
  in
  match find_git_dir (Sys.getcwd ()) 0 with
  | None -> None
  | Some git_dir -> (
    match read_file_opt (Filename.concat git_dir "HEAD") with
    | None -> None
    | Some head ->
      let head = String.trim head in
      if is_hex40 head then Some (String.sub head 0 40)
      else if String.length head > 5 && String.sub head 0 5 = "ref: " then
        resolve_ref git_dir
          (String.trim (String.sub head 5 (String.length head - 5)))
      else None)

let iso8601 t =
  let tm = Unix.gmtime t in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

(* extra fields (e.g. "jobs") contributed by the frontends *)
let meta_extra : (string * Json.t) list ref = ref []
let meta_mutex = Mutex.create ()

let set_meta key v =
  Mutex.protect meta_mutex (fun () ->
      meta_extra := (key, v) :: List.remove_assoc key !meta_extra)

let run_meta () =
  let extra = Mutex.protect meta_mutex (fun () -> List.rev !meta_extra) in
  Json.Obj
    ([
       ("timestamp", Json.Str (iso8601 (Unix.gettimeofday ())));
       ( "git_commit",
         match git_commit () with Some c -> Json.Str c | None -> Json.Null );
       ( "hostname",
         Json.Str (try Unix.gethostname () with Unix.Unix_error _ -> "unknown")
       );
       ("pid", Json.Int (Unix.getpid ()));
       ("ocaml_version", Json.Str Sys.ocaml_version);
       ("os_type", Json.Str Sys.os_type);
     ]
    @ extra)

(* ------------------------------------------------------------------ *)
(* Structured event log + flight-recorder ring                         *)
(* ------------------------------------------------------------------ *)

module Event = struct
  type level = Debug | Info | Warn | Error

  let level_rank = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

  let level_name = function
    | Debug -> "debug"
    | Info -> "info"
    | Warn -> "warn"
    | Error -> "error"

  let level_of_string = function
    | "debug" -> Some Debug
    | "info" -> Some Info
    | "warn" | "warning" -> Some Warn
    | "error" -> Some Error
    | _ -> None

  type sink = Null | Stderr | Chan of out_channel

  let log_mutex = Mutex.create ()
  let sink = ref Null
  let threshold = ref Info

  (* Flight-recorder ring: the last [ring_capacity] events, recorded
     unconditionally (independent of sink and level filter) so a crash
     dump has forensics even when no --log was given.  Bounded, so the
     steady-state cost is one array store per event. *)
  let ring_capacity = 256
  let ring : Json.t array = Array.make ring_capacity Json.Null
  let ring_next = ref 0
  let ring_len = ref 0

  let set_level l = Mutex.protect log_mutex (fun () -> threshold := l)

  let close_sink_locked () =
    match !sink with
    | Chan oc ->
      (try close_out_noerr oc with _ -> ());
      sink := Null
    | _ -> sink := Null

  let set_sink_path path =
    Mutex.protect log_mutex @@ fun () ->
    close_sink_locked ();
    match path with
    | "" | "off" | "null" -> Ok ()
    | "-" | "stderr" ->
      sink := Stderr;
      Ok ()
    | path -> (
      match open_out_gen [ Open_append; Open_creat ] 0o644 path with
      | oc ->
        sink := Chan oc;
        Ok ()
      | exception Sys_error msg -> Error msg)

  let close_sink () = Mutex.protect log_mutex close_sink_locked
  let () = at_exit close_sink

  let clear_ring () =
    Mutex.protect log_mutex (fun () ->
        ring_next := 0;
        ring_len := 0;
        Array.fill ring 0 ring_capacity Json.Null)

  let recent () =
    Mutex.protect log_mutex (fun () ->
        List.init !ring_len (fun i ->
            ring.((!ring_next - !ring_len + i + ring_capacity) mod ring_capacity)))

  let emit ?(fields = []) level event =
    (* span context first: current_span_name takes the registry mutex,
       never while holding the log mutex *)
    let span = current_span_name () in
    let doc =
      Json.Obj
        ([
           ("ts", Json.Float (Unix.gettimeofday ()));
           ("level", Json.Str (level_name level));
           ("event", Json.Str event);
           ("domain", Json.Int (Domain.self () :> int));
           ("span", match span with Some s -> Json.Str s | None -> Json.Null);
         ]
        @ fields)
    in
    Mutex.protect log_mutex @@ fun () ->
    ring.(!ring_next) <- doc;
    ring_next := (!ring_next + 1) mod ring_capacity;
    ring_len := min ring_capacity (!ring_len + 1);
    if level_rank level >= level_rank !threshold then begin
      match !sink with
      | Null -> ()
      | Stderr ->
        (try
           output_string stderr (Json.to_string doc);
           output_char stderr '\n';
           flush stderr
         with Sys_error _ -> ())
      | Chan oc -> (
        try
          output_string oc (Json.to_string doc);
          output_char oc '\n';
          flush oc
        with Sys_error _ -> close_sink_locked ())
    end

  let debug ?fields event = emit ?fields Debug event
  let info ?fields event = emit ?fields Info event
  let warn ?fields event = emit ?fields Warn event
  let error ?fields event = emit ?fields Error event

  (* POLYUFC_LOG=FILE|-|stderr arms the sink for every entry point (CLI,
     bench, tests) without plumbing; POLYUFC_LOG_LEVEL filters. *)
  let () =
    (match Sys.getenv_opt "POLYUFC_LOG_LEVEL" with
    | Some s -> (
      match level_of_string (String.lowercase_ascii (String.trim s)) with
      | Some l -> threshold := l
      | None ->
        Printf.eprintf "polyufc: warning: ignoring POLYUFC_LOG_LEVEL=%S\n%!" s)
    | None -> ());
    match Sys.getenv_opt "POLYUFC_LOG" with
    | None | Some "" -> ()
    | Some path -> (
      match set_sink_path path with
      | Ok () -> ()
      | Error msg ->
        Printf.eprintf "polyufc: warning: cannot open POLYUFC_LOG sink: %s\n%!"
          msg)
end

(* ------------------------------------------------------------------ *)
(* Export                                                              *)
(* ------------------------------------------------------------------ *)

(* Chrome trace_event format: complete ("X") events carry ts+dur in
   microseconds; final counter values ride along as "C" events so they
   show up as counter tracks in chrome://tracing / Perfetto. *)
let trace_json () =
  let span_events =
    List.map
      (fun s ->
        let base =
          [
            ("name", Json.Str s.name);
            ("cat", Json.Str "polyufc");
            ("ph", Json.Str "X");
            ("ts", Json.Float s.start_us);
            ("dur", Json.Float s.dur_us);
            ("pid", Json.Int 1);
            ("tid", Json.Int 1);
          ]
        in
        let args =
          match s.span_args with
          | [] -> []
          | l -> [ ("args", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) l)) ]
        in
        Json.Obj (base @ args))
      (spans ())
  in
  let end_ts =
    List.fold_left
      (fun acc s -> Float.max acc (s.start_us +. s.dur_us))
      0.0 (finished_snapshot ())
  in
  let counter_events =
    List.filter_map
      (fun (name, v) ->
        if v = 0 then None
        else
          Some
            (Json.Obj
               [
                 ("name", Json.Str name);
                 ("cat", Json.Str "polyufc");
                 ("ph", Json.Str "C");
                 ("ts", Json.Float end_ts);
                 ("pid", Json.Int 1);
                 ("args", Json.Obj [ ("value", Json.Int v) ]);
               ]))
      (counters_snapshot ())
  in
  Json.Obj
    [
      ("traceEvents", Json.Arr (span_events @ counter_events));
      ("displayTimeUnit", Json.Str "ms");
    ]

let trace_to_string () = Json.to_string (trace_json ())

let write_trace path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (trace_to_string ()))

let quantile_points =
  [ ("p50", 0.5); ("p90", 0.9); ("p99", 0.99); ("p999", 0.999) ]

let json_of_hist h =
  let buckets =
    List.map
      (fun (ub, n) ->
        Json.Obj
          [
            ( "le",
              if Float.is_finite ub then Json.Float ub else Json.Str "+Inf" );
            ("n", Json.Int n);
          ])
      h.hist_buckets
  in
  Json.Obj
    ([
       ("count", Json.Int h.hist_count);
       ("sum", Json.Float h.hist_sum);
       ("min", Json.Float h.hist_min);
       ("max", Json.Float h.hist_max);
       ("mean", Json.Float (h.hist_sum /. float_of_int h.hist_count));
     ]
    @ List.map (fun (k, q) -> (k, Json.Float (quantile h q))) quantile_points
    @ [ ("buckets", Json.Arr buckets) ])

let stats_json () =
  let counters =
    List.filter_map
      (fun (name, v) -> if v = 0 then None else Some (name, Json.Int v))
      (counters_snapshot ())
  in
  let gauges =
    List.filter_map
      (fun (name, v) -> if v = 0 then None else Some (name, Json.Int v))
      (gauges_snapshot ())
  in
  let hists =
    List.map
      (fun (name, h) -> (name, json_of_hist h))
      (histograms_detailed ())
  in
  let spans =
    List.map
      (fun (name, (n, total_us)) ->
        ( name,
          Json.Obj
            [ ("count", Json.Int n); ("total_us", Json.Float total_us) ] ))
      (span_summary ())
  in
  Json.Obj
    [
      ("meta", run_meta ());
      ("counters", Json.Obj counters);
      ("gauges", Json.Obj gauges);
      ("histograms", Json.Obj hists);
      ("spans", Json.Obj spans);
    ]

(* --- OpenMetrics text exposition --- *)

(* https://prometheus.io/docs/instrumenting/exposition_formats/ — the
   subset a Prometheus/OpenMetrics scraper needs: [# TYPE] metadata,
   counters as [_total], histograms as cumulative [_bucket{le=...}] plus
   [_sum]/[_count], and a trailing [# EOF].  Metric names are sanitized
   (dots become underscores) and prefixed [polyufc_]. *)

let om_name name =
  let b = Buffer.create (String.length name + 8) in
  Buffer.add_string b "polyufc_";
  String.iteri
    (fun i c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '_' -> Buffer.add_char b c
      | '0' .. '9' when i > 0 -> Buffer.add_char b c
      | _ -> Buffer.add_char b '_')
    name;
  Buffer.contents b

let om_label_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let om_float v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

let openmetrics_of_stats stats =
  let b = Buffer.create 4096 in
  let meta_line () =
    match Json.member "meta" stats with
    | Some (Json.Obj fields) ->
      let labels =
        List.filter_map
          (fun (k, v) ->
            match v with
            | Json.Str s ->
              Some (Printf.sprintf "%s=\"%s\"" k (om_label_escape s))
            | Json.Int n -> Some (Printf.sprintf "%s=\"%d\"" k n)
            | _ -> None)
          fields
      in
      if labels <> [] then begin
        Buffer.add_string b "# TYPE polyufc_build_info gauge\n";
        Buffer.add_string b
          (Printf.sprintf "polyufc_build_info{%s} 1\n"
             (String.concat "," labels))
      end
    | _ -> ()
  in
  let counters () =
    match Json.member "counters" stats with
    | Some (Json.Obj cs) ->
      List.iter
        (fun (name, v) ->
          match Json.number v with
          | Some n ->
            let m = om_name name in
            Buffer.add_string b (Printf.sprintf "# TYPE %s counter\n" m);
            Buffer.add_string b
              (Printf.sprintf "%s_total %s\n" m (om_float n))
          | None -> ())
        cs
    | _ -> ()
  in
  let gauges () =
    match Json.member "gauges" stats with
    | Some (Json.Obj gs) ->
      List.iter
        (fun (name, v) ->
          match Json.number v with
          | Some n ->
            let m = om_name name in
            Buffer.add_string b (Printf.sprintf "# TYPE %s gauge\n" m);
            Buffer.add_string b (Printf.sprintf "%s %s\n" m (om_float n))
          | None -> ())
        gs
    | _ -> ()
  in
  let histogram name h =
    let m = om_name name in
    Buffer.add_string b (Printf.sprintf "# TYPE %s histogram\n" m);
    let cum = ref 0 in
    (match Json.member "buckets" h with
    | Some (Json.Arr buckets) ->
      List.iter
        (fun bkt ->
          let le =
            match Json.member "le" bkt with
            | Some (Json.Str "+Inf") -> "+Inf"
            | Some v -> (
              match Json.number v with
              | Some f -> om_float f
              | None -> "+Inf")
            | None -> "+Inf"
          in
          let n =
            match Option.bind (Json.member "n" bkt) Json.number with
            | Some f -> int_of_float f
            | None -> 0
          in
          cum := !cum + n;
          Buffer.add_string b
            (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" m le !cum))
        buckets
    | _ -> ());
    let count =
      match Option.bind (Json.member "count" h) Json.number with
      | Some f -> int_of_float f
      | None -> !cum
    in
    if count > !cum then
      (* buckets list omits empty buckets but must end cumulative-complete *)
      Buffer.add_string b
        (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" m count)
    else if
      (match Json.member "buckets" h with
      | Some (Json.Arr []) | None -> true
      | Some (Json.Arr l) -> (
        match List.rev l with
        | last :: _ -> Json.member "le" last <> Some (Json.Str "+Inf")
        | [] -> true)
      | _ -> true)
    then
      Buffer.add_string b
        (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" m count);
    (match Option.bind (Json.member "sum" h) Json.number with
    | Some s -> Buffer.add_string b (Printf.sprintf "%s_sum %s\n" m (om_float s))
    | None -> ());
    Buffer.add_string b (Printf.sprintf "%s_count %d\n" m count)
  in
  let histograms () =
    match Json.member "histograms" stats with
    | Some (Json.Obj hs) -> List.iter (fun (name, h) -> histogram name h) hs
    | _ -> ()
  in
  let spans () =
    match Json.member "spans" stats with
    | Some (Json.Obj ss) ->
      List.iter
        (fun (name, s) ->
          let m = om_name ("span_" ^ name) in
          (match Option.bind (Json.member "count" s) Json.number with
          | Some n ->
            Buffer.add_string b (Printf.sprintf "# TYPE %s counter\n" m);
            Buffer.add_string b
              (Printf.sprintf "%s_total %s\n" m (om_float n))
          | None -> ());
          match Option.bind (Json.member "total_us" s) Json.number with
          | Some us ->
            Buffer.add_string b
              (Printf.sprintf "# TYPE %s_seconds counter\n" m);
            Buffer.add_string b
              (Printf.sprintf "%s_seconds_total %s\n" m (om_float (us *. 1e-6)))
          | None -> ())
        ss
    | _ -> ()
  in
  match stats with
  | Json.Obj _ ->
    meta_line ();
    counters ();
    gauges ();
    histograms ();
    spans ();
    Buffer.add_string b "# EOF\n";
    Ok (Buffer.contents b)
  | _ -> Error "stats document is not a JSON object"

let to_openmetrics () =
  match openmetrics_of_stats (stats_json ()) with
  | Ok s -> s
  | Error msg -> invalid_arg ("Telemetry.to_openmetrics: " ^ msg)

(* --- text views --- *)

let pp_duration ppf us =
  if us >= 1e6 then Format.fprintf ppf "%.3f s" (us *. 1e-6)
  else if us >= 1e3 then Format.fprintf ppf "%.3f ms" (us *. 1e-3)
  else Format.fprintf ppf "%.1f us" us

let pp_tree ppf () =
  let all = spans () in
  let children = Hashtbl.create 64 in
  List.iter
    (fun s ->
      let l = try Hashtbl.find children s.parent with Not_found -> [] in
      Hashtbl.replace children s.parent (s :: l))
    (List.rev all);
  let rec pp_node prefix s =
    Format.fprintf ppf "%s%s  [%a]" prefix s.name pp_duration s.dur_us;
    List.iter (fun (k, v) -> Format.fprintf ppf " %s=%s" k v) s.span_args;
    Format.fprintf ppf "@,";
    let kids = try Hashtbl.find children s.id with Not_found -> [] in
    List.iter (pp_node (prefix ^ "  ")) kids
  in
  Format.fprintf ppf "@[<v>";
  List.iter (fun s -> if s.parent = -1 then pp_node "" s) all;
  Format.fprintf ppf "@]"

let pp_stats ppf () =
  Format.fprintf ppf "@[<v>telemetry counters:@,";
  List.iter
    (fun (name, v) ->
      if v <> 0 then Format.fprintf ppf "  %-36s %d@," name v)
    (counters_snapshot ());
  (match List.filter (fun (_, v) -> v <> 0) (gauges_snapshot ()) with
  | [] -> ()
  | gs ->
    Format.fprintf ppf "telemetry gauges:@,";
    List.iter (fun (name, v) -> Format.fprintf ppf "  %-36s %d@," name v) gs);
  (match histograms_detailed () with
  | [] -> ()
  | hs ->
    Format.fprintf ppf "telemetry histograms:@,";
    List.iter
      (fun (name, h) ->
        Format.fprintf ppf
          "  %-36s n=%d mean=%.3g min=%.3g max=%.3g p50=%.3g p90=%.3g \
           p99=%.3g p999=%.3g@,"
          name h.hist_count
          (h.hist_sum /. float_of_int h.hist_count)
          h.hist_min h.hist_max (quantile h 0.5) (quantile h 0.9)
          (quantile h 0.99) (quantile h 0.999))
      hs);
  (match span_summary () with
  | [] -> ()
  | ss ->
    Format.fprintf ppf "telemetry spans:@,";
    List.iter
      (fun (name, (n, total_us)) ->
        Format.fprintf ppf "  %-36s n=%d total=%a@," name n pp_duration total_us)
      ss);
  Format.fprintf ppf "@]"
