open Linalg

type cstr = { coef : int array; const : int; eq : bool }
type t = { nvar : int; cstrs : cstr list }

(* operation-level telemetry: exact-arithmetic blowup in the Presburger
   layer shows up here first (cf. PPL experience) *)
let c_fm_project = Telemetry.counter "presburger.fm_project"
let c_is_empty = Telemetry.counter "presburger.is_empty"
let c_lexmin = Telemetry.counter "presburger.lexmin"
let c_points = Telemetry.counter "presburger.points_scanned"
let c_slices = Telemetry.counter "presburger.slices_closed_form"
let c_redundant = Telemetry.counter "presburger.redundant_dropped"

exception Infeasible
exception Unbounded

let ge coef const = { coef = Array.copy coef; const; eq = false }
let eq coef const = { coef = Array.copy coef; const; eq = true }
let false_cstr nvar = { coef = Array.make nvar 0; const = -1; eq = false }
let coef_gcd c = Array.fold_left (fun g a -> Ints.gcd g a) 0 c.coef

let is_trivial c =
  Array.for_all (fun a -> a = 0) c.coef
  && if c.eq then c.const = 0 else c.const >= 0

(* gcd reduction; inequalities get integer tightening of the constant.
   Raises [Infeasible] on a constantly-false constraint, returns [None] for
   a constantly-true one. *)
let normalize c =
  let g = coef_gcd c in
  if g = 0 then
    if (c.eq && c.const <> 0) || ((not c.eq) && c.const < 0) then
      raise Infeasible
    else None
  else if c.eq then
    if c.const mod g <> 0 then raise Infeasible
    else begin
      (* canonical sign: first non-zero coefficient positive *)
      let coef = Array.map (fun a -> a / g) c.coef in
      let const = c.const / g in
      let flip =
        match Array.find_opt (fun a -> a <> 0) coef with
        | Some a -> a < 0
        | None -> false
      in
      let coef = if flip then Array.map (fun a -> -a) coef else coef in
      let const = if flip then -const else const in
      Some { coef; const; eq = true }
    end
  else
    Some { coef = Array.map (fun a -> a / g) c.coef; const = Ints.fdiv c.const g; eq = false }

(* deduplicate: same coefficient vector keeps the strongest form *)
let dedup cstrs =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun c ->
      let key = (Array.to_list c.coef, c.eq) in
      match Hashtbl.find_opt tbl key with
      | None -> Hashtbl.add tbl key c
      | Some c' ->
        if c.eq then begin
          if c.const <> c'.const then raise Infeasible
        end
        else if c.const < c'.const then Hashtbl.replace tbl key c)
    cstrs;
  Hashtbl.fold (fun _ c acc -> c :: acc) tbl []

let normalize_all cstrs = dedup (List.filter_map normalize cstrs)

let make nvar cstrs =
  List.iter
    (fun c ->
      if Array.length c.coef <> nvar then
        invalid_arg "Poly.make: constraint arity mismatch")
    cstrs;
  match normalize_all cstrs with
  | cstrs -> { nvar; cstrs }
  | exception Infeasible -> { nvar; cstrs = [ false_cstr nvar ] }

let universe nvar = { nvar; cstrs = [] }
let nvar t = t.nvar
let constraints t = t.cstrs
let add_constraints t cs = make t.nvar (cs @ t.cstrs)

let append a b =
  if a.nvar <> b.nvar then invalid_arg "Poly.append: arity mismatch";
  make a.nvar (a.cstrs @ b.cstrs)

let eval c point =
  let acc = ref c.const in
  for i = 0 to Array.length c.coef - 1 do
    acc := Ints.add !acc (Ints.mul c.coef.(i) point.(i))
  done;
  !acc

let sat c point =
  let v = eval c point in
  if c.eq then v = 0 else v >= 0

let mem t point =
  Array.length point = t.nvar && List.for_all (fun c -> sat c point) t.cstrs

let insert_vars t ~at ~count =
  let shift c =
    let coef = Array.make (t.nvar + count) 0 in
    Array.iteri
      (fun i a -> coef.(if i < at then i else i + count) <- a)
      c.coef;
    { c with coef }
  in
  { nvar = t.nvar + count; cstrs = List.map shift t.cstrs }

let remap t nvar' perm =
  let move c =
    let coef = Array.make nvar' 0 in
    Array.iteri (fun i a -> if a <> 0 then coef.(perm i) <- a) c.coef;
    { c with coef }
  in
  make nvar' (List.map move t.cstrs)

let fix_vars t value =
  let kept = ref [] in
  for i = t.nvar - 1 downto 0 do
    if value i = None then kept := i :: !kept
  done;
  let kept = Array.of_list !kept in
  let nvar' = Array.length kept in
  let convert c =
    let coef = Array.make nvar' 0 in
    Array.iteri (fun j i -> coef.(j) <- c.coef.(i)) kept;
    let const = ref c.const in
    Array.iteri
      (fun i a ->
        match value i with
        | Some v when a <> 0 -> const := Ints.add !const (Ints.mul a v)
        | _ -> ())
      c.coef;
    { coef; const = !const; eq = c.eq }
  in
  make nvar' (List.map convert t.cstrs)

(* --- Fourier–Motzkin --- *)

(* [combine a ca b cb] is [ca·a + cb·b] (both inequalities, [ca, cb > 0]) *)
let combine a ca b cb =
  {
    coef =
      Array.init (Array.length a.coef) (fun i ->
          Ints.add (Ints.mul ca a.coef.(i)) (Ints.mul cb b.coef.(i)));
    const = Ints.add (Ints.mul ca a.const) (Ints.mul cb b.const);
    eq = false;
  }

(* substitute using equality [e] (with [e.coef.(v) <> 0]) into [c] *)
let substitute_eq v e c =
  let a = e.coef.(v) in
  let b = c.coef.(v) in
  if b = 0 then c
  else begin
    let s = if a > 0 then 1 else -1 in
    let coef =
      Array.init (Array.length c.coef) (fun i ->
          Ints.sub (Ints.mul (abs a) c.coef.(i)) (Ints.mul (Ints.mul b s) e.coef.(i)))
    in
    let const =
      Ints.sub (Ints.mul (abs a) c.const) (Ints.mul (Ints.mul b s) e.const)
    in
    { coef; const; eq = c.eq }
  end

let eliminate_var_exn t v =
  Telemetry.tick c_fm_project;
  let has c = c.coef.(v) <> 0 in
  let eqs = List.filter (fun c -> c.eq && has c) t.cstrs in
  let cstrs =
    match eqs with
    | e :: _ ->
      (* pivot on an equality: exact substitution *)
      List.filter_map
        (fun c -> if c == e then None else Some (substitute_eq v e c))
        t.cstrs
    | [] ->
      let lowers, uppers, rest =
        List.fold_left
          (fun (lo, up, rest) c ->
            if not (has c) then (lo, up, c :: rest)
            else if c.coef.(v) > 0 then (c :: lo, up, rest)
            else (lo, c :: up, rest))
          ([], [], []) t.cstrs
      in
      let pairs =
        List.concat_map
          (fun l ->
            List.map (fun u -> combine l (-u.coef.(v)) u l.coef.(v)) uppers)
          lowers
      in
      pairs @ rest
  in
  { nvar = t.nvar; cstrs = normalize_all cstrs }

let eliminate_var t v =
  match eliminate_var_exn t v with
  | t' -> t'
  | exception Infeasible -> { nvar = t.nvar; cstrs = [ false_cstr t.nvar ] }

let eliminate_from t k =
  let r = ref t in
  for v = t.nvar - 1 downto k do
    r := eliminate_var !r v
  done;
  !r

let rational_feasible t =
  match
    let r = ref t in
    for v = t.nvar - 1 downto 0 do
      r := eliminate_var_exn !r v
    done;
    !r
  with
  | r -> List.for_all is_trivial r.cstrs
  | exception Infeasible -> false

let definitely_false t =
  List.exists
    (fun c ->
      Array.for_all (fun a -> a = 0) c.coef
      && if c.eq then c.const <> 0 else c.const < 0)
    t.cstrs

(* --- Constraint-system minimization ---

   Smaller descriptions are the prerequisite for every fast polyhedral
   operation (cf. the PPL experience): the elimination towers below grow
   with the number of constraints, and the closed-form counting path
   benefits directly from tight, irredundant bounds. *)

(* Merge opposite parallel inequalities [v·x >= l] and [v·x <= h] into the
   equality [v·x = l] when [l = h], and detect [l > h] as infeasibility.
   The result describes the same rational (hence integer) set; equalities
   make elimination cheaper because they pivot exactly instead of
   multiplying lower×upper constraint pairs. *)
let merge_parallel t =
  let eqs, ineqs = List.partition (fun c -> c.eq) t.cstrs in
  (* canonical coefficient vector (first non-zero positive) -> tightest
     lower/upper bound on [v·x] seen so far *)
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun c ->
      let flip =
        match Array.find_opt (fun a -> a <> 0) c.coef with
        | Some a -> a < 0
        | None -> false
      in
      let key =
        Array.to_list (if flip then Array.map (fun a -> Ints.sub 0 a) c.coef else c.coef)
      in
      let lo, hi =
        match Hashtbl.find_opt tbl key with Some b -> b | None -> (None, None)
      in
      let b =
        if flip then
          (* -v·x + const >= 0, i.e. v·x <= const *)
          let h = c.const in
          (lo, match hi with Some h' when h' <= h -> hi | _ -> Some h)
        else
          (* v·x + const >= 0, i.e. v·x >= -const *)
          let l = Ints.sub 0 c.const in
          ((match lo with Some l' when l' >= l -> lo | _ -> Some l), hi)
      in
      Hashtbl.replace tbl key b)
    ineqs;
  let infeasible = ref false in
  let merged =
    Hashtbl.fold
      (fun key b acc ->
        let v = Array.of_list key in
        match b with
        | Some l, Some h when l > h ->
          infeasible := true;
          acc
        | Some l, Some h when l = h ->
          { coef = v; const = Ints.sub 0 l; eq = true } :: acc
        | lo, hi ->
          let acc =
            match lo with
            | Some l -> { coef = v; const = Ints.sub 0 l; eq = false } :: acc
            | None -> acc
          in
          (match hi with
          | Some h ->
            { coef = Array.map (fun a -> Ints.sub 0 a) v; const = h; eq = false } :: acc
          | None -> acc))
      tbl []
  in
  if !infeasible then { nvar = t.nvar; cstrs = [ false_cstr t.nvar ] }
  else { nvar = t.nvar; cstrs = eqs @ merged }

(* Integer-set-preserving redundancy elimination.  An inequality [c] can be
   dropped when [rest ∧ ¬c] is rationally infeasible, where over the
   integers [¬(coef·x + const >= 0)] is [-coef·x - const - 1 >= 0]: no
   integer point of [rest] then violates [c], so the integer set — and
   every count derived from it — is unchanged.  On rationally nonempty
   systems the recession cone is preserved as well (a recession direction
   escaping a dropped constraint would eventually violate it by >= 1), so
   scanning raises [Unbounded] exactly as before; rationally empty systems
   are returned untouched. *)
let remove_redundant t =
  if definitely_false t then t
  else if not (rational_feasible t) then t
  else begin
    let t = merge_parallel t in
    let negate c =
      {
        coef = Array.map (fun a -> Ints.sub 0 a) c.coef;
        const = Ints.sub (-1) c.const;
        eq = false;
      }
    in
    let rec drop kept = function
      | [] -> List.rev kept
      | c :: rest ->
        if c.eq then drop (c :: kept) rest
        else begin
          let others = List.rev_append kept rest in
          if rational_feasible { nvar = t.nvar; cstrs = negate c :: others } then
            drop (c :: kept) rest
          else begin
            Telemetry.tick c_redundant;
            drop kept rest
          end
        end
    in
    { t with cstrs = drop [] t.cstrs }
  end

(* --- Lexicographic scanning --- *)

(* elim.(k): system with variables [k .. nvar-1] eliminated, so that the
   constraints mentioning variable [k] in elim.(k+1) give its bounds as a
   function of variables [< k]. *)
let elimination_tower t =
  let n = t.nvar in
  let tower = Array.make (n + 1) t in
  for k = n - 1 downto 0 do
    tower.(k) <- eliminate_var tower.(k + 1) k
  done;
  tower

(* bounds on variable [k] given the partial assignment [x] of vars [< k] *)
let level_bounds tower k x =
  let lo = ref None and hi = ref None in
  let tighten_lo v = match !lo with None -> lo := Some v | Some w -> if v > w then lo := Some v in
  let tighten_hi v = match !hi with None -> hi := Some v | Some w -> if v < w then hi := Some v in
  let feasible = ref true in
  List.iter
    (fun c ->
      let a = c.coef.(k) in
      if a <> 0 then begin
        (* value of the constraint restricted to assigned variables *)
        let v = ref c.const in
        for j = 0 to k - 1 do
          if c.coef.(j) <> 0 then v := Ints.add !v (Ints.mul c.coef.(j) x.(j))
        done;
        (* a·x_k + v {>=,=} 0 *)
        if c.eq then
          if !v mod a <> 0 then feasible := false
          else begin
            let e = - !v / a in
            tighten_lo e;
            tighten_hi e
          end
        else if a > 0 then tighten_lo (Ints.cdiv (- !v) a)
        else tighten_hi (Ints.fdiv !v (-a))
      end
      else if c.eq || k = 0 then begin
        (* ground-level constraints with no scanned variable must hold *)
        let relevant = ref true in
        for j = k to Array.length c.coef - 1 do
          if c.coef.(j) <> 0 then relevant := false
        done;
        if !relevant then begin
          let v = ref c.const in
          for j = 0 to k - 1 do
            if c.coef.(j) <> 0 then v := Ints.add !v (Ints.mul c.coef.(j) x.(j))
          done;
          if (c.eq && !v <> 0) || ((not c.eq) && !v < 0) then feasible := false
        end
      end)
    tower.(k + 1).cstrs;
  if !feasible then Some (!lo, !hi) else None

(* Bounds on variable [j] from its bounding constraints only — the
   ground-constraint checks of [level_bounds] are skipped.  Used by the
   closed-form counting path, where those checks are provably redundant:
   every surviving ground equality of a deeper tower level reappears as a
   bound constraint at the level of its own deepest variable, where it is
   enforced (see the decoupling argument at [count_points]). *)
let bound_only tower j x =
  let lo = ref None and hi = ref None in
  let tighten_lo v = match !lo with None -> lo := Some v | Some w -> if v > w then lo := Some v in
  let tighten_hi v = match !hi with None -> hi := Some v | Some w -> if v < w then hi := Some v in
  let feasible = ref true in
  List.iter
    (fun c ->
      let a = c.coef.(j) in
      if a <> 0 then begin
        let v = ref c.const in
        for i = 0 to j - 1 do
          if c.coef.(i) <> 0 then v := Ints.add !v (Ints.mul c.coef.(i) x.(i))
        done;
        if c.eq then
          if !v mod a <> 0 then feasible := false
          else begin
            let e = - !v / a in
            tighten_lo e;
            tighten_hi e
          end
        else if a > 0 then tighten_lo (Ints.cdiv (- !v) a)
        else tighten_hi (Ints.fdiv !v (-a))
      end)
    tower.(j + 1).cstrs;
  if !feasible then Some (!lo, !hi) else None

(* existence of a completion of [x] over variables [k .. nvar-1] *)
let rec exists_from tower x nvar k =
  if k = nvar then true
  else
    match level_bounds tower k x with
    | None -> false
    | Some (Some lo, Some hi) ->
      let rec try_val v =
        if v > hi then false
        else begin
          x.(k) <- v;
          exists_from tower x nvar (k + 1) || try_val (v + 1)
        end
      in
      try_val lo
    | Some _ -> raise Unbounded

let fold_points ?n_scan t ~init ~f =
  let s = match n_scan with None -> t.nvar | Some s -> s in
  assert (s >= 0 && s <= t.nvar);
  if definitely_false t then init
  else begin
    (* count enumerated points locally, bulk-report on exit: the scan is a
       hot path and must pay neither a registry lookup per point nor, when
       telemetry is off, the wrapper closure and [visited] allocations *)
    let visited = if Telemetry.is_enabled () then Some (ref 0) else None in
    let f =
      match visited with
      | None -> f
      | Some v ->
        fun acc p ->
          incr v;
          f acc p
    in
    let tower = elimination_tower t in
    let x = Array.make t.nvar 0 in
    let prefix = Array.sub x 0 s in
    let rec scan k acc =
      if k = s then
        if s = t.nvar || exists_from tower x t.nvar s then begin
          Array.blit x 0 prefix 0 s;
          f acc prefix
        end
        else acc
      else
        match level_bounds tower k x with
        | None -> acc
        | Some (lo, hi) ->
          (match (lo, hi) with
          | Some lo, Some hi ->
            let acc = ref acc in
            for v = lo to hi do
              x.(k) <- v;
              acc := scan (k + 1) !acc
            done;
            !acc
          | _ -> raise Unbounded)
    in
    (* an empty scan prefix degenerates to a single existence test *)
    let result =
      if s = 0 then if exists_from tower x t.nvar 0 then f init prefix else init
      else scan 0 init
    in
    (match visited with None -> () | Some v -> Telemetry.add c_points !v);
    result
  end

let iter_points ?n_scan t ~f = fold_points ?n_scan t ~init:() ~f:(fun () p -> f p)

let count_points_naive ?n_scan t =
  fold_points ?n_scan t ~init:0 ~f:(fun n _ -> n + 1)

(* --- Closed-form slice counting ---

   Counting should cost polynomially in the description, not the volume
   (the reason barvinok exists).  We stay within the elimination-tower
   machinery but detect, statically, the deepest scan level [k] from which
   the rest of the nest is *decoupled*: every bound of every deeper level
   only mentions variables [< k].  Below such a level the slice lengths
   are independent of each other's values, so the subtree count is the
   product of closed-form interval lengths [hi - lo + 1] — no iteration.

   [collapse.(k)] is true when, for every level j in (k, s) — and for the
   existential suffix when s < nvar — the constraints of [tower.(j + 1)]
   that bound variable j (and, for the suffix, all its constraints) only
   mention variables < k.  The property is monotone in [k]: once true it
   stays true deeper, so a box collapses at level 0 and a triangular
   domain at level 1 — exactly the kernel classes the paper evaluates. *)
let collapse_levels tower s nvar =
  let max_dep = Array.make (s + 1) (-1) in
  for j = 0 to s - 1 do
    List.iter
      (fun c ->
        if c.coef.(j) <> 0 then
          for i = 0 to j - 1 do
            if c.coef.(i) <> 0 && i > max_dep.(j) then max_dep.(j) <- i
          done)
      tower.(j + 1).cstrs
  done;
  let suffix_dep = ref (-1) in
  for k = s to nvar - 1 do
    List.iter
      (fun c ->
        for i = 0 to s - 1 do
          if c.coef.(i) <> 0 && i > !suffix_dep then suffix_dep := i
        done)
      tower.(k + 1).cstrs
  done;
  let collapse = Array.make (s + 1) true in
  (* deepest-first sweep: [m] is the max dependency of all levels > k *)
  let m = ref (if s < nvar then !suffix_dep else -1) in
  for k = s - 1 downto 0 do
    collapse.(k) <- !m < k;
    if max_dep.(k) > !m then m := max_dep.(k)
  done;
  collapse

let count_points ?pool ?budget ?cancel ?n_scan t =
  let s = match n_scan with None -> t.nvar | Some s -> s in
  assert (s >= 0 && s <= t.nvar);
  (* resource governance: the enumeration below is the pipeline's one
     potentially-unbounded loop, so this is where deadlines, fuel and
     cancellation are polled — in batches of [meter_batch] work units
     (points + slices) to keep the hot path at an increment per unit *)
  let governed = budget <> None || cancel <> None in
  let guard () =
    Option.iter Engine.Cancel.check cancel;
    Option.iter Engine.Budget.check budget
  in
  let flush pending =
    if !pending > 0 then begin
      Option.iter Engine.Cancel.check cancel;
      Option.iter (fun b -> Engine.Budget.spend b !pending) budget;
      pending := 0
    end
  in
  let meter_batch = 1024 in
  if definitely_false t then 0
  else begin
    if governed then guard ();
    (* minimize first: smaller towers, tighter bounds, same integer set *)
    let t = remove_redundant t in
    let tower = elimination_tower t in
    if governed then guard ();
    let collapse = collapse_levels tower s t.nvar in
    (* one counting job over levels [k0 .. s), with x.(0 .. k0-1) assigned;
       telemetry is accumulated locally and bulk-reported on exit *)
    let count_from x k0 =
      let scanned = ref 0 and slices = ref 0 in
      let pending = ref 0 in
      let meter () =
        if governed then begin
          incr pending;
          if !pending >= meter_batch then flush pending
        end
      in
      let rec count k =
        if k = s then begin
          incr scanned;
          meter ();
          if s = t.nvar || exists_from tower x t.nvar s then 1 else 0
        end
        else if collapse.(k) then begin
          incr slices;
          meter ();
          (* product of decoupled slice lengths, shallowest first, stopping
             at the first empty level — exactly the set of levels the naive
             scan would have reached, so [Unbounded] behavior matches.
             Level [k] keeps the full [level_bounds] (its ground checks may
             genuinely cut); deeper levels use bound constraints only. *)
          let rec product j acc =
            if j = s then
              if s = t.nvar || exists_from tower x t.nvar s then acc else 0
            else begin
              match
                if j = k then level_bounds tower j x else bound_only tower j x
              with
              | None -> 0
              | Some (Some lo, Some hi) ->
                if hi < lo then 0
                else product (j + 1) (Ints.mul acc (Ints.range_count lo hi))
              | Some _ -> raise Unbounded
            end
          in
          product k 1
        end
        else
          match level_bounds tower k x with
          | None -> 0
          | Some (Some lo, Some hi) ->
            let acc = ref 0 in
            for v = lo to hi do
              x.(k) <- v;
              acc := Ints.add !acc (count (k + 1))
            done;
            !acc
          | Some _ -> raise Unbounded
      in
      let r =
        Fun.protect
          ~finally:(fun () ->
            Telemetry.add c_points !scanned;
            Telemetry.add c_slices !slices)
          (fun () -> count k0)
      in
      if governed then flush pending;
      r
    in
    let seq () = count_from (Array.make (max t.nvar 1) 0) 0 in
    (* parallel path: chunk the outermost scanned dimension over the pool.
       Workers share the (immutable) tower and sum independent subtree
       counts, so the total is identical to the sequential result. *)
    match pool with
    | Some pool when Engine.Pool.jobs pool > 1 && s > 0 && not collapse.(0) -> begin
      match level_bounds tower 0 (Array.make (max t.nvar 1) 0) with
      | None -> 0
      | Some (Some lo, Some hi) ->
        if hi < lo then 0
        else begin
          let n = Ints.range_count lo hi in
          let nchunks = min n (Engine.Pool.jobs pool * 4) in
          if nchunks < 2 then seq ()
          else begin
            let base = n / nchunks and extra = n mod nchunks in
            let ranges =
              List.init nchunks (fun i ->
                  let a = lo + (base * i) + min i extra in
                  let b = a + base - 1 + (if i < extra then 1 else 0) in
                  (a, b))
            in
            Engine.Pool.map ?cancel pool
              (fun (a, b) ->
                let x = Array.make (max t.nvar 1) 0 in
                let acc = ref 0 in
                for v = a to b do
                  x.(0) <- v;
                  acc := Ints.add !acc (count_from x 1)
                done;
                !acc)
              ranges
            |> List.fold_left Ints.add 0
          end
        end
      | Some _ -> raise Unbounded
    end
    | _ -> seq ()
  end

exception Found of int array

let first_point ?n_scan t =
  match
    fold_points ?n_scan t ~init:() ~f:(fun () p -> raise (Found (Array.copy p)))
  with
  | () -> None
  | exception Found p -> Some p

let sample t = first_point t

let is_empty t =
  Telemetry.tick c_is_empty;
  if definitely_false t then true
  else if not (rational_feasible t) then true
  else sample t = None

let lexmin ?n_scan t =
  Telemetry.tick c_lexmin;
  first_point ?n_scan t

(* lexmax: scan with all variables negated *)
let negate_vars t =
  { nvar = t.nvar; cstrs = List.map (fun c -> { c with coef = Array.map (fun a -> -a) c.coef }) t.cstrs }

let lexmax ?n_scan t =
  Telemetry.tick c_lexmin;
  match first_point ?n_scan (negate_vars t) with
  | None -> None
  | Some p -> Some (Array.map (fun v -> -v) p)

let var_bounds t v =
  (* eliminate every variable except [v], then read the bounds *)
  let r = ref t in
  for j = t.nvar - 1 downto 0 do
    if j <> v then r := eliminate_var !r j
  done;
  let lo = ref None and hi = ref None in
  List.iter
    (fun c ->
      let a = c.coef.(v) in
      if a <> 0 then begin
        if c.eq || a > 0 then begin
          let b = Ints.cdiv (-c.const) a in
          match !lo with None -> lo := Some b | Some w -> if b > w then lo := Some b
        end;
        if c.eq || a < 0 then begin
          let b = if c.eq then Ints.fdiv (-c.const) a else Ints.fdiv c.const (-a) in
          match !hi with None -> hi := Some b | Some w -> if b < w then hi := Some b
        end
      end)
    !r.cstrs;
  (!lo, !hi)

let pp_cstr ppf c =
  let first = ref true in
  Array.iteri
    (fun i a ->
      if a <> 0 then begin
        if !first then begin
          if a = 1 then Format.fprintf ppf "x%d" i
          else if a = -1 then Format.fprintf ppf "-x%d" i
          else Format.fprintf ppf "%dx%d" a i;
          first := false
        end
        else if a > 0 then
          if a = 1 then Format.fprintf ppf " + x%d" i
          else Format.fprintf ppf " + %dx%d" a i
        else if a = -1 then Format.fprintf ppf " - x%d" i
        else Format.fprintf ppf " - %dx%d" (-a) i
      end)
    c.coef;
  if !first then Format.fprintf ppf "%d" c.const
  else if c.const > 0 then Format.fprintf ppf " + %d" c.const
  else if c.const < 0 then Format.fprintf ppf " - %d" (-c.const);
  Format.fprintf ppf (if c.eq then " = 0" else " >= 0")

let pp ppf t =
  Format.fprintf ppf "@[<v>{nvar=%d;@ %a}@]" t.nvar
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f " and@ ") pp_cstr)
    t.cstrs

(* Convex hull of two systems over the same variables, via the lifted
   system of Benoy-King ("Computing Convex Hulls with a Linear Solver"):
   x lies in the hull iff x = y + z with y in s.A, z in (1-s).B for some
   s in [0,1], where s.A is A's homogenization {y : a.y + c.s >= 0}.
   Eliminating the y and s columns with Fourier-Motzkin leaves exactly
   the (closed, rational) hull constraints over x - a sound superset of
   the integer union, used by the footprint estimator and the chamber
   engine.  Exact over the rationals; gcd tightening by [make] keeps
   every integer point of either argument. *)
let convex_hull a b =
  if a.nvar <> b.nvar then invalid_arg "Poly.convex_hull: arity mismatch";
  if definitely_false a || not (rational_feasible a) then remove_redundant b
  else if definitely_false b || not (rational_feasible b) then
    remove_redundant a
  else if
    (* identical descriptions: the hull is the set itself.  This also
       makes [convex_hull h h] return [h] exactly instead of a
       re-projected (possibly boxed) superset. *)
    let canon p =
      List.sort compare
        (List.map (fun c -> (c.eq, Array.to_list c.coef, c.const)) p.cstrs)
    in
    canon a = canon b
  then remove_redundant a
  else begin
    let n = a.nvar in
    let total = (2 * n) + 1 in
    (* columns: x (0..n-1) | y (n..2n-1) | s (2n) *)
    let scol = 2 * n in
    let lift_a (c : cstr) =
      let co = Array.make total 0 in
      Array.iteri (fun i v -> co.(n + i) <- v) c.coef;
      co.(scol) <- c.const;
      { coef = co; const = 0; eq = c.eq }
    in
    let lift_b (c : cstr) =
      let co = Array.make total 0 in
      Array.iteri
        (fun i v ->
          co.(i) <- v;
          co.(n + i) <- -v)
        c.coef;
      co.(scol) <- -c.const;
      { coef = co; const = c.const; eq = c.eq }
    in
    let s_lo = Array.make total 0 and s_hi = Array.make total 0 in
    s_lo.(scol) <- 1;
    s_hi.(scol) <- -1;
    let lifted =
      make total
        ({ coef = s_lo; const = 0; eq = false }
        :: { coef = s_hi; const = 1; eq = false }
        :: (List.map lift_a a.cstrs @ List.map lift_b b.cstrs))
    in
    (* sound fallback: the bounding box of the union, a (looser) convex
       superset — used when the lifted projection explodes (each FM step
       can square the constraint count) or its arithmetic overflows *)
    let box_hull () =
      let cs = ref [] in
      for v = 0 to n - 1 do
        let lo_a, hi_a = var_bounds a v and lo_b, hi_b = var_bounds b v in
        (match (lo_a, lo_b) with
        | Some x, Some y ->
          let co = Array.make n 0 in
          co.(v) <- 1;
          cs := { coef = co; const = -min x y; eq = false } :: !cs
        | _ -> ());
        match (hi_a, hi_b) with
        | Some x, Some y ->
          let co = Array.make n 0 in
          co.(v) <- -1;
          cs := { coef = co; const = max x y; eq = false } :: !cs
        | _ -> ()
      done;
      remove_redundant (make n !cs)
    in
    (* growth caps: FM can square the constraint count per eliminated
       column, and the LP-based [remove_redundant] is itself built on an
       unbounded elimination tower — so between steps we only apply the
       cheap syntactic [merge_parallel] prune and give up (soundly, to
       the box) past the cap *)
    let step_cap = 192 and final_cap = (2 * n) + 12 in
    match
      let r = ref lifted in
      let ok = ref true in
      for v = total - 1 downto n do
        if !ok then begin
          r := merge_parallel (eliminate_var !r v);
          if List.length (!r).cstrs > step_cap then ok := false
        end
      done;
      if not !ok then None
      else begin
        let hull = fix_vars !r (fun i -> if i >= n then Some 0 else None) in
        if List.length hull.cstrs > final_cap then None
        else Some (remove_redundant hull)
      end
    with
    | Some hull -> hull
    | None -> box_hull ()
    | exception Ints.Overflow -> box_hull ()
  end
