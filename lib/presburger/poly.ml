open Linalg

type cstr = { coef : int array; const : int; eq : bool }
type t = { nvar : int; cstrs : cstr list }

(* operation-level telemetry: exact-arithmetic blowup in the Presburger
   layer shows up here first (cf. PPL experience) *)
let c_fm_project = Telemetry.counter "presburger.fm_project"
let c_is_empty = Telemetry.counter "presburger.is_empty"
let c_lexmin = Telemetry.counter "presburger.lexmin"
let c_points = Telemetry.counter "presburger.points_scanned"

exception Infeasible
exception Unbounded

let ge coef const = { coef = Array.copy coef; const; eq = false }
let eq coef const = { coef = Array.copy coef; const; eq = true }
let false_cstr nvar = { coef = Array.make nvar 0; const = -1; eq = false }
let coef_gcd c = Array.fold_left (fun g a -> Ints.gcd g a) 0 c.coef

let is_trivial c =
  Array.for_all (fun a -> a = 0) c.coef
  && if c.eq then c.const = 0 else c.const >= 0

(* gcd reduction; inequalities get integer tightening of the constant.
   Raises [Infeasible] on a constantly-false constraint, returns [None] for
   a constantly-true one. *)
let normalize c =
  let g = coef_gcd c in
  if g = 0 then
    if (c.eq && c.const <> 0) || ((not c.eq) && c.const < 0) then
      raise Infeasible
    else None
  else if c.eq then
    if c.const mod g <> 0 then raise Infeasible
    else begin
      (* canonical sign: first non-zero coefficient positive *)
      let coef = Array.map (fun a -> a / g) c.coef in
      let const = c.const / g in
      let flip =
        match Array.find_opt (fun a -> a <> 0) coef with
        | Some a -> a < 0
        | None -> false
      in
      let coef = if flip then Array.map (fun a -> -a) coef else coef in
      let const = if flip then -const else const in
      Some { coef; const; eq = true }
    end
  else
    Some { coef = Array.map (fun a -> a / g) c.coef; const = Ints.fdiv c.const g; eq = false }

(* deduplicate: same coefficient vector keeps the strongest form *)
let dedup cstrs =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun c ->
      let key = (Array.to_list c.coef, c.eq) in
      match Hashtbl.find_opt tbl key with
      | None -> Hashtbl.add tbl key c
      | Some c' ->
        if c.eq then begin
          if c.const <> c'.const then raise Infeasible
        end
        else if c.const < c'.const then Hashtbl.replace tbl key c)
    cstrs;
  Hashtbl.fold (fun _ c acc -> c :: acc) tbl []

let normalize_all cstrs = dedup (List.filter_map normalize cstrs)

let make nvar cstrs =
  List.iter
    (fun c ->
      if Array.length c.coef <> nvar then
        invalid_arg "Poly.make: constraint arity mismatch")
    cstrs;
  match normalize_all cstrs with
  | cstrs -> { nvar; cstrs }
  | exception Infeasible -> { nvar; cstrs = [ false_cstr nvar ] }

let universe nvar = { nvar; cstrs = [] }
let nvar t = t.nvar
let constraints t = t.cstrs
let add_constraints t cs = make t.nvar (cs @ t.cstrs)

let append a b =
  if a.nvar <> b.nvar then invalid_arg "Poly.append: arity mismatch";
  make a.nvar (a.cstrs @ b.cstrs)

let eval c point =
  let acc = ref c.const in
  for i = 0 to Array.length c.coef - 1 do
    acc := Ints.add !acc (Ints.mul c.coef.(i) point.(i))
  done;
  !acc

let sat c point =
  let v = eval c point in
  if c.eq then v = 0 else v >= 0

let mem t point =
  Array.length point = t.nvar && List.for_all (fun c -> sat c point) t.cstrs

let insert_vars t ~at ~count =
  let shift c =
    let coef = Array.make (t.nvar + count) 0 in
    Array.iteri
      (fun i a -> coef.(if i < at then i else i + count) <- a)
      c.coef;
    { c with coef }
  in
  { nvar = t.nvar + count; cstrs = List.map shift t.cstrs }

let remap t nvar' perm =
  let move c =
    let coef = Array.make nvar' 0 in
    Array.iteri (fun i a -> if a <> 0 then coef.(perm i) <- a) c.coef;
    { c with coef }
  in
  make nvar' (List.map move t.cstrs)

let fix_vars t value =
  let kept = ref [] in
  for i = t.nvar - 1 downto 0 do
    if value i = None then kept := i :: !kept
  done;
  let kept = Array.of_list !kept in
  let nvar' = Array.length kept in
  let convert c =
    let coef = Array.make nvar' 0 in
    Array.iteri (fun j i -> coef.(j) <- c.coef.(i)) kept;
    let const = ref c.const in
    Array.iteri
      (fun i a ->
        match value i with
        | Some v when a <> 0 -> const := Ints.add !const (Ints.mul a v)
        | _ -> ())
      c.coef;
    { coef; const = !const; eq = c.eq }
  in
  make nvar' (List.map convert t.cstrs)

(* --- Fourier–Motzkin --- *)

(* [combine a ca b cb] is [ca·a + cb·b] (both inequalities, [ca, cb > 0]) *)
let combine a ca b cb =
  {
    coef =
      Array.init (Array.length a.coef) (fun i ->
          Ints.add (Ints.mul ca a.coef.(i)) (Ints.mul cb b.coef.(i)));
    const = Ints.add (Ints.mul ca a.const) (Ints.mul cb b.const);
    eq = false;
  }

(* substitute using equality [e] (with [e.coef.(v) <> 0]) into [c] *)
let substitute_eq v e c =
  let a = e.coef.(v) in
  let b = c.coef.(v) in
  if b = 0 then c
  else begin
    let s = if a > 0 then 1 else -1 in
    let coef =
      Array.init (Array.length c.coef) (fun i ->
          Ints.sub (Ints.mul (abs a) c.coef.(i)) (Ints.mul (Ints.mul b s) e.coef.(i)))
    in
    let const =
      Ints.sub (Ints.mul (abs a) c.const) (Ints.mul (Ints.mul b s) e.const)
    in
    { coef; const; eq = c.eq }
  end

let eliminate_var_exn t v =
  Telemetry.tick c_fm_project;
  let has c = c.coef.(v) <> 0 in
  let eqs = List.filter (fun c -> c.eq && has c) t.cstrs in
  let cstrs =
    match eqs with
    | e :: _ ->
      (* pivot on an equality: exact substitution *)
      List.filter_map
        (fun c -> if c == e then None else Some (substitute_eq v e c))
        t.cstrs
    | [] ->
      let lowers, uppers, rest =
        List.fold_left
          (fun (lo, up, rest) c ->
            if not (has c) then (lo, up, c :: rest)
            else if c.coef.(v) > 0 then (c :: lo, up, rest)
            else (lo, c :: up, rest))
          ([], [], []) t.cstrs
      in
      let pairs =
        List.concat_map
          (fun l ->
            List.map (fun u -> combine l (-u.coef.(v)) u l.coef.(v)) uppers)
          lowers
      in
      pairs @ rest
  in
  { nvar = t.nvar; cstrs = normalize_all cstrs }

let eliminate_var t v =
  match eliminate_var_exn t v with
  | t' -> t'
  | exception Infeasible -> { nvar = t.nvar; cstrs = [ false_cstr t.nvar ] }

let eliminate_from t k =
  let r = ref t in
  for v = t.nvar - 1 downto k do
    r := eliminate_var !r v
  done;
  !r

let rational_feasible t =
  match
    let r = ref t in
    for v = t.nvar - 1 downto 0 do
      r := eliminate_var_exn !r v
    done;
    !r
  with
  | r -> List.for_all is_trivial r.cstrs
  | exception Infeasible -> false

(* --- Lexicographic scanning --- *)

(* elim.(k): system with variables [k .. nvar-1] eliminated, so that the
   constraints mentioning variable [k] in elim.(k+1) give its bounds as a
   function of variables [< k]. *)
let elimination_tower t =
  let n = t.nvar in
  let tower = Array.make (n + 1) t in
  for k = n - 1 downto 0 do
    tower.(k) <- eliminate_var tower.(k + 1) k
  done;
  tower

(* bounds on variable [k] given the partial assignment [x] of vars [< k] *)
let level_bounds tower k x =
  let lo = ref None and hi = ref None in
  let tighten_lo v = match !lo with None -> lo := Some v | Some w -> if v > w then lo := Some v in
  let tighten_hi v = match !hi with None -> hi := Some v | Some w -> if v < w then hi := Some v in
  let feasible = ref true in
  List.iter
    (fun c ->
      let a = c.coef.(k) in
      if a <> 0 then begin
        (* value of the constraint restricted to assigned variables *)
        let v = ref c.const in
        for j = 0 to k - 1 do
          if c.coef.(j) <> 0 then v := Ints.add !v (Ints.mul c.coef.(j) x.(j))
        done;
        (* a·x_k + v {>=,=} 0 *)
        if c.eq then
          if !v mod a <> 0 then feasible := false
          else begin
            let e = - !v / a in
            tighten_lo e;
            tighten_hi e
          end
        else if a > 0 then tighten_lo (Ints.cdiv (- !v) a)
        else tighten_hi (Ints.fdiv !v (-a))
      end
      else if c.eq || k = 0 then begin
        (* ground-level constraints with no scanned variable must hold *)
        let relevant = ref true in
        for j = k to Array.length c.coef - 1 do
          if c.coef.(j) <> 0 then relevant := false
        done;
        if !relevant then begin
          let v = ref c.const in
          for j = 0 to k - 1 do
            if c.coef.(j) <> 0 then v := Ints.add !v (Ints.mul c.coef.(j) x.(j))
          done;
          if (c.eq && !v <> 0) || ((not c.eq) && !v < 0) then feasible := false
        end
      end)
    tower.(k + 1).cstrs;
  if !feasible then Some (!lo, !hi) else None

let definitely_false t =
  List.exists
    (fun c ->
      Array.for_all (fun a -> a = 0) c.coef
      && if c.eq then c.const <> 0 else c.const < 0)
    t.cstrs

let fold_points ?n_scan t ~init ~f =
  let s = match n_scan with None -> t.nvar | Some s -> s in
  assert (s >= 0 && s <= t.nvar);
  if definitely_false t then init
  else begin
    (* count enumerated points locally, bulk-report on exit: the scan is a
       hot path and must not pay a registry lookup per point *)
    let visited = ref 0 in
    let f =
      if Telemetry.is_enabled () then (fun acc p ->
          incr visited;
          f acc p)
      else f
    in
    let tower = elimination_tower t in
    let x = Array.make t.nvar 0 in
    (* existence check over the suffix [k .. nvar-1] *)
    let rec exists_suffix k =
      if k = t.nvar then true
      else
        match level_bounds tower k x with
        | None -> false
        | Some (lo, hi) ->
          (match (lo, hi) with
          | Some lo, Some hi ->
            let rec try_val v =
              if v > hi then false
              else begin
                x.(k) <- v;
                exists_suffix (k + 1) || try_val (v + 1)
              end
            in
            try_val lo
          | _ -> raise Unbounded)
    in
    let prefix = Array.sub x 0 s in
    let rec scan k acc =
      if k = s then
        if s = t.nvar || exists_suffix s then begin
          Array.blit x 0 prefix 0 s;
          f acc prefix
        end
        else acc
      else
        match level_bounds tower k x with
        | None -> acc
        | Some (lo, hi) ->
          (match (lo, hi) with
          | Some lo, Some hi ->
            let acc = ref acc in
            for v = lo to hi do
              x.(k) <- v;
              acc := scan (k + 1) !acc
            done;
            !acc
          | _ -> raise Unbounded)
    in
    (* an empty scan prefix degenerates to a single existence test *)
    let result =
      if s = 0 then if exists_suffix 0 then f init prefix else init
      else scan 0 init
    in
    Telemetry.add c_points !visited;
    result
  end

let iter_points ?n_scan t ~f = fold_points ?n_scan t ~init:() ~f:(fun () p -> f p)

let count_points ?n_scan t =
  fold_points ?n_scan t ~init:0 ~f:(fun n _ -> n + 1)

exception Found of int array

let first_point ?n_scan t =
  match
    fold_points ?n_scan t ~init:() ~f:(fun () p -> raise (Found (Array.copy p)))
  with
  | () -> None
  | exception Found p -> Some p

let sample t = first_point t

let is_empty t =
  Telemetry.tick c_is_empty;
  if definitely_false t then true
  else if not (rational_feasible t) then true
  else sample t = None

let lexmin ?n_scan t =
  Telemetry.tick c_lexmin;
  first_point ?n_scan t

(* lexmax: scan with all variables negated *)
let negate_vars t =
  { nvar = t.nvar; cstrs = List.map (fun c -> { c with coef = Array.map (fun a -> -a) c.coef }) t.cstrs }

let lexmax ?n_scan t =
  Telemetry.tick c_lexmin;
  match first_point ?n_scan (negate_vars t) with
  | None -> None
  | Some p -> Some (Array.map (fun v -> -v) p)

let var_bounds t v =
  (* eliminate every variable except [v], then read the bounds *)
  let r = ref t in
  for j = t.nvar - 1 downto 0 do
    if j <> v then r := eliminate_var !r j
  done;
  let lo = ref None and hi = ref None in
  List.iter
    (fun c ->
      let a = c.coef.(v) in
      if a <> 0 then begin
        if c.eq || a > 0 then begin
          let b = Ints.cdiv (-c.const) a in
          match !lo with None -> lo := Some b | Some w -> if b > w then lo := Some b
        end;
        if c.eq || a < 0 then begin
          let b = if c.eq then Ints.fdiv (-c.const) a else Ints.fdiv c.const (-a) in
          match !hi with None -> hi := Some b | Some w -> if b < w then hi := Some b
        end
      end)
    !r.cstrs;
  (!lo, !hi)

let pp_cstr ppf c =
  let first = ref true in
  Array.iteri
    (fun i a ->
      if a <> 0 then begin
        if !first then begin
          if a = 1 then Format.fprintf ppf "x%d" i
          else if a = -1 then Format.fprintf ppf "-x%d" i
          else Format.fprintf ppf "%dx%d" a i;
          first := false
        end
        else if a > 0 then
          if a = 1 then Format.fprintf ppf " + x%d" i
          else Format.fprintf ppf " + %dx%d" a i
        else if a = -1 then Format.fprintf ppf " - x%d" i
        else Format.fprintf ppf " - %dx%d" (-a) i
      end)
    c.coef;
  if !first then Format.fprintf ppf "%d" c.const
  else if c.const > 0 then Format.fprintf ppf " + %d" c.const
  else if c.const < 0 then Format.fprintf ppf " - %d" (-c.const);
  Format.fprintf ppf (if c.eq then " = 0" else " >= 0")

let pp ppf t =
  Format.fprintf ppf "@[<v>{nvar=%d;@ %a}@]" t.nvar
    (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f " and@ ") pp_cstr)
    t.cstrs
