exception Parse_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Parse_error s)) fmt

(* ---------- tokens ---------- *)

type token =
  | INT of int
  | IDENT of string
  | LBRACK | RBRACK | LBRACE | RBRACE | LPAREN | RPAREN
  | COMMA | SEMI | COLON | ARROW
  | LE | LT | GE | GT | EQ | NE
  | PLUS | MINUS | STAR | SLASH
  | AND | OR | MOD | FLOOR | EXISTS
  | EOF

let token_name = function
  | INT n -> string_of_int n
  | IDENT s -> s
  | LBRACK -> "[" | RBRACK -> "]" | LBRACE -> "{" | RBRACE -> "}"
  | LPAREN -> "(" | RPAREN -> ")"
  | COMMA -> "," | SEMI -> ";" | COLON -> ":" | ARROW -> "->"
  | LE -> "<=" | LT -> "<" | GE -> ">=" | GT -> ">" | EQ -> "=" | NE -> "!="
  | PLUS -> "+" | MINUS -> "-" | STAR -> "*" | SLASH -> "/"
  | AND -> "and" | OR -> "or" | MOD -> "mod" | FLOOR -> "floor"
  | EXISTS -> "exists"
  | EOF -> "<eof>"

let tokenize s =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  let push t = toks := t :: !toks in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c >= '0' && c <= '9' then begin
      let j = ref !i in
      while !j < n && s.[!j] >= '0' && s.[!j] <= '9' do incr j done;
      push (INT (int_of_string (String.sub s !i (!j - !i))));
      i := !j
    end
    else if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' then begin
      let j = ref !i in
      let idc c =
        (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
        || (c >= '0' && c <= '9') || c = '_' || c = '\''
      in
      while !j < n && idc s.[!j] do incr j done;
      let word = String.sub s !i (!j - !i) in
      i := !j;
      push
        (match word with
        | "and" -> AND
        | "or" -> OR
        | "mod" -> MOD
        | "floor" -> FLOOR
        | "exists" -> EXISTS
        | w -> IDENT w)
    end
    else begin
      let two = if !i + 1 < n then String.sub s !i 2 else "" in
      match two with
      | "->" -> push ARROW; i := !i + 2
      | "<=" -> push LE; i := !i + 2
      | ">=" -> push GE; i := !i + 2
      | "!=" -> push NE; i := !i + 2
      | _ ->
        (match c with
        | '[' -> push LBRACK | ']' -> push RBRACK
        | '{' -> push LBRACE | '}' -> push RBRACE
        | '(' -> push LPAREN | ')' -> push RPAREN
        | ',' -> push COMMA | ';' -> push SEMI | ':' -> push COLON
        | '<' -> push LT | '>' -> push GT | '=' -> push EQ
        | '+' -> push PLUS | '-' -> push MINUS
        | '*' -> push STAR | '/' -> push SLASH
        | c -> fail "unexpected character %C" c);
        incr i
    end
  done;
  push EOF;
  List.rev !toks

(* ---------- AST ---------- *)

type expr =
  | E_int of int
  | E_var of string
  | E_add of expr * expr
  | E_sub of expr * expr
  | E_neg of expr
  | E_mul of expr * expr
  | E_floordiv of expr * expr
  | E_mod of expr * expr

type rel = R_le | R_lt | R_ge | R_gt | R_eq | R_ne

type cond =
  | C_chain of expr * (rel * expr) list
  | C_and of cond * cond
  | C_or of cond * cond

type tuple = { t_name : string; t_args : expr list }

type disjunct = { d_in : tuple option; d_out : tuple; d_cond : cond option }

type ast = { a_params : string list; a_disjuncts : disjunct list }

(* ---------- parser (recursive descent over a token stream) ---------- *)

type stream = { mutable toks : token list }

let peek st = match st.toks with [] -> EOF | t :: _ -> t
let advance st = match st.toks with [] -> () | _ :: r -> st.toks <- r

let expect st t =
  if peek st = t then advance st
  else fail "expected '%s' but found '%s'" (token_name t) (token_name (peek st))

let parse_ident st =
  match peek st with
  | IDENT s -> advance st; s
  | t -> fail "expected identifier, found '%s'" (token_name t)

let rec parse_expr st =
  let lhs = parse_term st in
  let rec loop acc =
    match peek st with
    | PLUS -> advance st; loop (E_add (acc, parse_term st))
    | MINUS -> advance st; loop (E_sub (acc, parse_term st))
    | _ -> acc
  in
  loop lhs

and parse_term st =
  let lhs = parse_factor st in
  let rec loop acc =
    match peek st with
    | STAR -> advance st; loop (E_mul (acc, parse_factor st))
    | MOD -> advance st; loop (E_mod (acc, parse_factor st))
    | _ -> acc
  in
  loop lhs

and parse_factor st =
  match peek st with
  | INT n -> advance st; E_int n
  | IDENT s -> advance st; E_var s
  | MINUS -> advance st; E_neg (parse_factor st)
  | LPAREN ->
    advance st;
    let e = parse_expr st in
    expect st RPAREN;
    e
  | FLOOR ->
    advance st;
    expect st LPAREN;
    let num = parse_expr st in
    expect st SLASH;
    let den = parse_expr st in
    expect st RPAREN;
    E_floordiv (num, den)
  | t -> fail "expected expression, found '%s'" (token_name t)

let parse_rel st =
  match peek st with
  | LE -> advance st; Some R_le
  | LT -> advance st; Some R_lt
  | GE -> advance st; Some R_ge
  | GT -> advance st; Some R_gt
  | EQ -> advance st; Some R_eq
  | NE -> advance st; Some R_ne
  | _ -> None

let rec parse_cond st = parse_or st

and parse_or st =
  let lhs = parse_and st in
  if peek st = OR then begin
    advance st;
    C_or (lhs, parse_or st)
  end
  else lhs

and parse_and st =
  let lhs = parse_atom st in
  if peek st = AND then begin
    advance st;
    C_and (lhs, parse_and st)
  end
  else lhs

and parse_atom st =
  (* a parenthesized condition vs a parenthesized expression starting a
     chain: parse as condition tentatively by lookahead on the token after
     the matching paren is hard; instead try condition first only when the
     paren directly encloses a condition.  We resolve by attempting to
     parse an expression chain, falling back to a grouped condition. *)
  match peek st with
  | LPAREN ->
    let saved = st.toks in
    (try
       let e = parse_expr st in
       match parse_rel st with
       | Some r ->
         let e2 = parse_expr st in
         let rec more acc =
           match parse_rel st with
           | Some r -> more ((r, parse_expr st) :: acc)
           | None -> List.rev acc
         in
         C_chain (e, (r, e2) :: more [])
       | None -> fail "not a chain"
     with Parse_error _ ->
       st.toks <- saved;
       advance st;
       let c = parse_cond st in
       expect st RPAREN;
       c)
  | _ ->
    let e = parse_expr st in
    (match parse_rel st with
    | None -> fail "expected comparison after expression"
    | Some r ->
      let e2 = parse_expr st in
      let rec more acc =
        match parse_rel st with
        | Some r -> more ((r, parse_expr st) :: acc)
        | None -> List.rev acc
      in
      C_chain (e, (r, e2) :: more []))

let parse_tuple st =
  let name = match peek st with IDENT s -> advance st; s | _ -> "" in
  expect st LBRACK;
  let args =
    if peek st = RBRACK then []
    else begin
      let rec loop acc =
        let e = parse_expr st in
        if peek st = COMMA then begin
          advance st;
          loop (e :: acc)
        end
        else List.rev (e :: acc)
      in
      loop []
    end
  in
  expect st RBRACK;
  { t_name = name; t_args = args }

let parse_disjunct st =
  let t1 = parse_tuple st in
  let d_in, d_out =
    if peek st = ARROW then begin
      advance st;
      (Some t1, parse_tuple st)
    end
    else (None, t1)
  in
  let d_cond =
    if peek st = COLON then begin
      advance st;
      Some (parse_cond st)
    end
    else None
  in
  { d_in; d_out; d_cond }

let parse_ast s =
  let st = { toks = tokenize s } in
  let a_params =
    if peek st = LBRACK then begin
      advance st;
      let rec loop acc =
        let id = parse_ident st in
        if peek st = COMMA then begin
          advance st;
          loop (id :: acc)
        end
        else List.rev (id :: acc)
      in
      let ps = if peek st = RBRACK then [] else loop [] in
      expect st RBRACK;
      expect st ARROW;
      ps
    end
    else []
  in
  expect st LBRACE;
  let a_disjuncts =
    if peek st = RBRACE then []
    else begin
      let rec loop acc =
        let d = parse_disjunct st in
        if peek st = SEMI then begin
          advance st;
          loop (d :: acc)
        end
        else List.rev (d :: acc)
      in
      loop []
    end
  in
  expect st RBRACE;
  expect st EOF;
  { a_params; a_disjuncts }

(* ---------- elaboration into Bset ---------- *)

(* linear form over named variables, before column resolution *)
module Env = Map.Make (String)

(* an affine value during elaboration: coefficient per column + constant;
   elaboration may extend the bset with divs, so it threads the bset *)
let rec elab_expr env b e =
  match e with
  | E_int n -> (b, { Bset.coefs = []; const = n })
  | E_var v -> (
    match Env.find_opt v env with
    | Some col -> (b, { Bset.coefs = [ (1, col) ]; const = 0 })
    | None -> fail "unbound variable '%s'" v)
  | E_add (x, y) ->
    let b, ax = elab_expr env b x in
    let b, ay = elab_expr env b y in
    (b, { Bset.coefs = ax.Bset.coefs @ ay.Bset.coefs; const = ax.Bset.const + ay.Bset.const })
  | E_sub (x, y) ->
    let b, ax = elab_expr env b x in
    let b, ay = elab_expr env b y in
    ( b,
      {
        Bset.coefs = ax.Bset.coefs @ List.map (fun (c, v) -> (-c, v)) ay.Bset.coefs;
        const = ax.Bset.const - ay.Bset.const;
      } )
  | E_neg x ->
    let b, ax = elab_expr env b x in
    (b, { Bset.coefs = List.map (fun (c, v) -> (-c, v)) ax.Bset.coefs; const = -ax.Bset.const })
  | E_mul (x, y) ->
    let b, ax = elab_expr env b x in
    let b, ay = elab_expr env b y in
    let scale k a =
      { Bset.coefs = List.map (fun (c, v) -> (k * c, v)) a.Bset.coefs; const = k * a.Bset.const }
    in
    if ax.Bset.coefs = [] then (b, scale ax.Bset.const ay)
    else if ay.Bset.coefs = [] then (b, scale ay.Bset.const ax)
    else fail "non-affine product"
  | E_floordiv (num, den) ->
    let b, anum = elab_expr env b num in
    let b, aden = elab_expr env b den in
    if aden.Bset.coefs <> [] || aden.Bset.const <= 0 then
      fail "floor denominator must be a positive constant";
    let b, q = Bset.add_div b ~num:anum ~den:aden.Bset.const in
    (b, { Bset.coefs = [ (1, q) ]; const = 0 })
  | E_mod (x, m) ->
    let b, ax = elab_expr env b x in
    let b, am = elab_expr env b m in
    if am.Bset.coefs <> [] || am.Bset.const <= 0 then
      fail "mod divisor must be a positive constant";
    let d = am.Bset.const in
    let b, q = Bset.add_div b ~num:ax ~den:d in
    (* x mod d = x - d*q *)
    (b, { Bset.coefs = ax.Bset.coefs @ [ (-d, q) ]; const = ax.Bset.const })

let aff_sub a1 a2 =
  {
    Bset.coefs = a1.Bset.coefs @ List.map (fun (c, v) -> (-c, v)) a2.Bset.coefs;
    const = a1.Bset.const - a2.Bset.const;
  }

(* apply one comparison; returns the list of alternative bsets (NE splits) *)
let apply_rel env b r e1 e2 =
  let b, a1 = elab_expr env b e1 in
  let b, a2 = elab_expr env b e2 in
  match r with
  | R_le -> [ Bset.add_ge b (aff_sub a2 a1) ]
  | R_ge -> [ Bset.add_ge b (aff_sub a1 a2) ]
  | R_lt -> [ Bset.add_ge b { (aff_sub a2 a1) with Bset.const = (aff_sub a2 a1).Bset.const - 1 } ]
  | R_gt -> [ Bset.add_ge b { (aff_sub a1 a2) with Bset.const = (aff_sub a1 a2).Bset.const - 1 } ]
  | R_eq -> [ Bset.add_eq b (aff_sub a1 a2) ]
  | R_ne ->
    let d12 = aff_sub a1 a2 in
    let d21 = aff_sub a2 a1 in
    [
      Bset.add_ge b { d12 with Bset.const = d12.Bset.const - 1 };
      Bset.add_ge b { d21 with Bset.const = d21.Bset.const - 1 };
    ]

let rec elab_cond env bs c =
  match c with
  | C_and (x, y) -> elab_cond env (elab_cond env bs x) y
  | C_or (x, y) -> elab_cond env bs x @ elab_cond env bs y
  | C_chain (e0, links) ->
    let apply_chain b =
      let rec go b lhs links acc =
        match links with
        | [] -> acc
        | (r, rhs) :: rest ->
          let alts = apply_rel env b r lhs rhs in
          (match rest with
          | [] -> List.concat_map (fun b -> [ b ]) alts @ acc
          | _ ->
            List.concat_map (fun b -> go b rhs rest []) alts @ acc)
      in
      go b e0 links []
    in
    List.concat_map apply_chain bs

let elab_disjunct params d =
  let in_args = match d.d_in with None -> [] | Some t -> t.t_args in
  let out_args = d.d_out.t_args in
  let fresh_dim_names prefix args =
    List.mapi
      (fun i e -> match e with E_var v -> v | _ -> Printf.sprintf "%s%d" prefix i)
      args
  in
  let in_dims = fresh_dim_names "i" in_args in
  let out_dims = fresh_dim_names "o" out_args in
  let space =
    match d.d_in with
    | None ->
      Space.set_space ~params ~name:d.d_out.t_name out_dims
    | Some t ->
      Space.map_space ~params ~in_name:t.t_name ~out_name:d.d_out.t_name
        in_dims out_dims
  in
  let b = Bset.universe space in
  (* environment: params, then tuple dims; a plain variable in a tuple
     position binds the dimension; repeated names or complex expressions
     generate equality constraints *)
  let env = ref Env.empty in
  List.iteri (fun i p -> env := Env.add p (Bset.param_pos b i) !env) params;
  let bind_args b args pos =
    List.fold_left
      (fun (b, i) e ->
        let col = pos b i in
        match e with
        | E_var v when not (Env.mem v !env) ->
          env := Env.add v col !env;
          (b, i + 1)
        | _ ->
          (* dim = expr *)
          let b, a = elab_expr !env b e in
          let b =
            Bset.add_eq b
              { Bset.coefs = (1, col) :: List.map (fun (c, v) -> (-c, v)) a.Bset.coefs;
                const = -a.Bset.const }
          in
          (b, i + 1))
      (b, 0) args
    |> fst
  in
  let b = bind_args b in_args Bset.in_pos in
  let b = bind_args b out_args Bset.out_pos in
  match d.d_cond with
  | None -> [ b ]
  | Some c -> elab_cond !env [ b ] c

let pset_of_string s =
  let ast = parse_ast s in
  match ast.a_disjuncts with
  | [] -> fail "empty braces: cannot infer the space"
  | ds ->
    let bsets = List.concat_map (elab_disjunct ast.a_params) ds in
    (match bsets with
    | [] -> fail "no disjuncts"
    | b :: _ -> Pset.of_bsets (Bset.space b) bsets)

let bset_of_string s =
  match Pset.disjuncts (pset_of_string s) with
  | [ b ] -> b
  | l -> fail "expected a single basic set, got %d disjuncts" (List.length l)

(* ---------- printing ---------- *)

let var_name sp nd i =
  let np = Space.n_params sp in
  let ni = Space.n_ins sp in
  let no = Space.n_outs sp in
  if i < np then sp.Space.params.(i)
  else if i < np + ni then sp.Space.ins.(i - np)
  else if i < np + ni + no then sp.Space.outs.(i - np - ni)
  else begin
    assert (i < np + ni + no + nd);
    Printf.sprintf "e%d" (i - np - ni - no)
  end

let pp_linear ppf (sp, nd, coef, const) =
  let printed = ref false in
  Array.iteri
    (fun i c ->
      if c <> 0 then begin
        let name = var_name sp nd i in
        if !printed then
          if c > 0 then Format.fprintf ppf " + " else Format.fprintf ppf " - "
        else if c < 0 then Format.fprintf ppf "-";
        let a = abs c in
        if a = 1 then Format.fprintf ppf "%s" name
        else Format.fprintf ppf "%d%s" a name;
        printed := true
      end)
    coef;
  if const <> 0 || not !printed then begin
    if !printed then
      if const > 0 then Format.fprintf ppf " + %d" const
      else Format.fprintf ppf " - %d" (-const)
    else Format.fprintf ppf "%d" const
  end

let pp_bset ppf b =
  let sp = Bset.space b in
  let nd = Bset.n_div b in
  let pp_tuple ppf (name, dims) =
    Format.fprintf ppf "%s[%s]" name (String.concat ", " (Array.to_list dims))
  in
  if Space.n_params sp > 0 then
    Format.fprintf ppf "[%s] -> "
      (String.concat ", " (Array.to_list sp.Space.params));
  Format.fprintf ppf "{ ";
  if not (Space.is_set sp) then
    Format.fprintf ppf "%a -> " pp_tuple (sp.Space.in_name, sp.Space.ins);
  pp_tuple ppf (sp.Space.out_name, sp.Space.outs);
  let cstrs = Poly.constraints b.Bset.poly in
  if cstrs <> [] || nd > 0 then begin
    Format.fprintf ppf " : ";
    if nd > 0 then
      Format.fprintf ppf "exists (%s : "
        (String.concat ", " (List.init nd (Printf.sprintf "e%d")));
    let first = ref true in
    List.iter
      (fun (c : Poly.cstr) ->
        if not !first then Format.fprintf ppf " and ";
        first := false;
        pp_linear ppf (sp, nd, c.Poly.coef, c.Poly.const);
        Format.fprintf ppf (if c.Poly.eq then " = 0" else " >= 0"))
      cstrs;
    if !first then Format.fprintf ppf "true";
    if nd > 0 then Format.fprintf ppf ")"
  end;
  Format.fprintf ppf " }"

let pp_pset ppf p =
  match Pset.disjuncts p with
  | [] -> Format.fprintf ppf "{ }"
  | ds ->
    Format.pp_print_list
      ~pp_sep:(fun f () -> Format.fprintf f ";@ ")
      pp_bset ppf ds

let to_string p = Format.asprintf "%a" pp_pset p
let bset_to_string b = Format.asprintf "%a" pp_bset b

(* isl-syntax errors are invalid input (exit 3) at the Guard boundary. *)
let () =
  Engine.Guard.register_classifier (function
    | Parse_error msg -> Some (Engine.Guard.invalid msg)
    | _ -> None)
