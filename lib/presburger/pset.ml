type t = { space : Space.t; disjuncts : Bset.t list }

let of_bset b = { space = Bset.space b; disjuncts = [ b ] }

let of_bsets space disjuncts =
  List.iter
    (fun b ->
      if not (Space.equal (Bset.space b) space) then
        invalid_arg "Pset.of_bsets: space mismatch")
    disjuncts;
  { space; disjuncts }

let universe space = of_bset (Bset.universe space)
let empty space = { space; disjuncts = [] }
let space t = t.space
let disjuncts t = t.disjuncts
let n_disjuncts t = List.length t.disjuncts

let union a b =
  if not (Space.equal a.space b.space) then
    invalid_arg "Pset.union: space mismatch";
  { space = a.space; disjuncts = a.disjuncts @ b.disjuncts }

let drop_empty t =
  { t with disjuncts = List.filter (fun b -> not (Bset.is_empty b)) t.disjuncts }

let intersect a b =
  if not (Space.equal a.space b.space) then
    invalid_arg "Pset.intersect: space mismatch";
  drop_empty
    {
      space = a.space;
      disjuncts =
        List.concat_map
          (fun da -> List.map (fun db -> Bset.intersect da db) b.disjuncts)
          a.disjuncts;
    }

let subtract a b =
  let sub_one bs bsub = List.concat_map (fun d -> Bset.subtract d bsub) bs in
  let disjuncts = List.fold_left sub_one a.disjuncts b.disjuncts in
  drop_empty { space = a.space; disjuncts }

let lift1 fspace f t =
  { space = fspace t.space; disjuncts = List.map f t.disjuncts }

let lift2 fspace f a b =
  drop_empty
    {
      space = fspace a.space b.space;
      disjuncts =
        List.concat_map
          (fun da -> List.map (fun db -> f da db) b.disjuncts)
          a.disjuncts;
    }

let compose a b = lift2 Space.compose Bset.compose a b
let product_domain a b =
  lift2
    (fun sa sb ->
      Space.map_space
        ~params:(Array.to_list sa.Space.params)
        ~in_name:sa.Space.in_name
        ~out_name:(sa.Space.out_name ^ "_" ^ sb.Space.out_name)
        (Array.to_list sa.Space.ins)
        (Array.to_list sa.Space.outs @ Array.to_list sb.Space.outs))
    Bset.product_domain a b

let inverse t = lift1 Space.reverse Bset.inverse t
let domain t = lift1 Space.domain Bset.domain t
let range t = lift1 Space.range Bset.range t

let deltas t =
  lift1
    (fun sp ->
      Space.set_space
        ~params:(Array.to_list sp.Space.params)
        ~name:"delta"
        (Array.to_list sp.Space.ins))
    Bset.deltas t

let to_set t =
  match t.disjuncts with
  | [] ->
    let sp = t.space in
    let dims = Array.to_list sp.Space.ins @ Array.to_list sp.Space.outs in
    empty (Space.set_space ~params:(Array.to_list sp.Space.params) dims)
  | ds ->
    let ds = List.map Bset.to_set ds in
    { space = Bset.space (List.hd ds); disjuncts = ds }

let fix_params t values =
  match t.disjuncts with
  | [] ->
    let sp = t.space in
    empty
      (Space.map_space ~in_name:sp.Space.in_name ~out_name:sp.Space.out_name
         (Array.to_list sp.Space.ins)
         (Array.to_list sp.Space.outs))
  | ds ->
    let ds = List.map (fun b -> Bset.fix_params b values) ds in
    { space = Bset.space (List.hd ds); disjuncts = ds }

(* {[x] -> [y] : x ≺ y} = ⋃_k { x_0..x_{k-1} = y_0..y_{k-1}, x_k < y_k } *)
let lex_map ~strict n =
  let dims prefix = List.init n (fun i -> Printf.sprintf "%s%d" prefix i) in
  let sp = Space.map_space (dims "i") (dims "o") in
  let disjunct k =
    let b = Bset.universe sp in
    let b =
      List.fold_left
        (fun b j ->
          Bset.add_eq b
            { Bset.coefs = [ (1, Bset.out_pos b j); (-1, Bset.in_pos b j) ]; const = 0 })
        b
        (List.init k Fun.id)
    in
    Bset.add_ge b
      {
        Bset.coefs = [ (1, Bset.out_pos b k); (-1, Bset.in_pos b k) ];
        const = -1;
      }
  in
  let strict_disjuncts = List.init n disjunct in
  let all =
    if strict then strict_disjuncts
    else begin
      (* add the identity relation for ⪯ *)
      let b = Bset.universe sp in
      let ident =
        List.fold_left
          (fun b j ->
            Bset.add_eq b
              { Bset.coefs = [ (1, Bset.out_pos b j); (-1, Bset.in_pos b j) ]; const = 0 })
          b
          (List.init n Fun.id)
      in
      ident :: strict_disjuncts
    end
  in
  { space = sp; disjuncts = all }

let lex_lt n = lex_map ~strict:true n
let lex_le n = lex_map ~strict:false n

(* a ∪ b is convex iff the "common hull" (constraints of a satisfied by b
   and vice versa — approximated here by the pairwise-implied subsets)
   contains nothing outside a ∪ b *)
let try_coalesce a b =
  if Bset.n_div a > 0 || Bset.n_div b > 0 then None
  else begin
    (* does every point of [other] satisfy constraint [c]? *)
    let implied ~other (c : Poly.cstr) =
      let aff_of coef const =
        let coefs = ref [] in
        Array.iteri (fun i x -> if x <> 0 then coefs := (x, i) :: !coefs) coef;
        { Bset.coefs = !coefs; const }
      in
      let holds coef const =
        (* other ∧ ¬(coef·x + const >= 0) empty *)
        Bset.is_empty
          (Bset.add_ge other
             (aff_of (Array.map (fun x -> -x) coef) (-const - 1)))
      in
      if c.Poly.eq then
        holds c.Poly.coef c.Poly.const
        && holds (Array.map (fun x -> -x) c.Poly.coef) (-c.Poly.const)
      else holds c.Poly.coef c.Poly.const
    in
    (* candidate hull: constraints of a implied by b plus constraints of b
       implied by a *)
    let kept_of x ~other =
      List.filter (implied ~other) (Poly.constraints x.Bset.poly)
    in
    let ca = kept_of a ~other:b and cb = kept_of b ~other:a in
    let space = Bset.space a in
    let candidate =
      Bset.of_poly space ~n_div:0
        (Poly.make (Space.n_vars space) (ca @ cb))
    in
    (* valid iff candidate \ a \ b is empty *)
    let leftovers =
      List.concat_map (fun d -> Bset.subtract d b) (Bset.subtract candidate a)
    in
    if List.for_all Bset.is_empty leftovers then Some candidate else None
  end

let coalesce t =
  let rec pass acc = function
    | [] -> List.rev acc
    | d :: rest ->
      let rec merge_into d before = function
        | [] -> (d, List.rev before)
        | e :: after -> (
          match try_coalesce d e with
          | Some m -> merge_into m before after
          | None -> merge_into d (e :: before) after)
      in
      let d', rest' = merge_into d [] rest in
      pass (d' :: acc) rest'
  in
  let once = pass [] t.disjuncts in
  { t with disjuncts = once }

let is_empty t = List.for_all Bset.is_empty t.disjuncts

let sample t =
  List.find_map Bset.sample t.disjuncts

let mem t point = List.exists (fun b -> Bset.mem b point) t.disjuncts

let is_subset a b =
  is_empty (subtract a b)

let is_equal a b = is_subset a b && is_subset b a

let lex_compare a b =
  let n = min (Array.length a) (Array.length b) in
  let rec go i =
    if i = n then compare (Array.length a) (Array.length b)
    else if a.(i) <> b.(i) then compare a.(i) b.(i)
    else go (i + 1)
  in
  go 0

let lexmin_point t =
  List.fold_left
    (fun best b ->
      match (best, Bset.lexmin b) with
      | None, m -> m
      | m, None -> m
      | Some x, Some y -> if lex_compare y x < 0 then Some y else Some x)
    None t.disjuncts

let lexmax_point t =
  List.fold_left
    (fun best b ->
      match (best, Bset.lexmax b) with
      | None, m -> m
      | m, None -> m
      | Some x, Some y -> if lex_compare y x > 0 then Some y else Some x)
    None t.disjuncts

let fold_points t ~init ~f =
  match t.disjuncts with
  | [] -> init
  | [ b ] -> Bset.fold_points b ~init ~f
  | ds ->
    (* deduplicate points shared between overlapping disjuncts *)
    let seen = Hashtbl.create 1024 in
    List.fold_left
      (fun acc b ->
        Bset.fold_points b ~init:acc ~f:(fun acc p ->
            let key = Array.to_list p in
            if Hashtbl.mem seen key then acc
            else begin
              Hashtbl.add seen key ();
              f acc p
            end))
      init ds

(* Counting a union without enumerating it: disjointify by inclusion-
   exclusion-free subtraction — |∪ᵢ dᵢ| = Σᵢ |dᵢ \ d₀ \ … \ dᵢ₋₁| — and
   count each disjoint piece through the closed-form path.  Only applies
   to small div-free unions (subtraction requires a div-free subtrahend
   and its piece count grows with the constraint count); everything else
   falls back to the enumerating dedup. *)
let cardinality ?pool ?ctx t =
  let ctx = Engine.Ctx.of_legacy ?pool ctx in
  match t.disjuncts with
  | [] -> 0
  | [ b ] -> Bset.cardinality ~ctx b
  | ds
    when List.length ds <= 8
         && List.for_all (fun b -> Bset.n_div b = 0) ds ->
    let rec go acc prev = function
      | [] -> acc
      | d :: rest ->
        let pieces =
          List.fold_left
            (fun pieces p ->
              List.concat_map (fun piece -> Bset.subtract piece p) pieces)
            [ d ] prev
        in
        let acc =
          List.fold_left
            (fun acc piece -> Linalg.Ints.add acc (Bset.cardinality ~ctx piece))
            acc pieces
        in
        go acc (d :: prev) rest
    in
    go 0 [] ds
  | _ ->
    (* enumerating dedup fallback: meter each deduplicated point so the
       budget bounds this path too *)
    let pending = ref 0 in
    let n =
      fold_points t ~init:0 ~f:(fun n _ ->
          incr pending;
          if !pending >= 1024 then begin
            Engine.Ctx.spend ctx !pending;
            pending := 0
          end;
          n + 1)
    in
    Engine.Ctx.spend ctx !pending;
    n

let card = cardinality

let pp ppf t =
  Format.fprintf ppf "@[<v>union of %d disjunct(s):@,%a@]"
    (List.length t.disjuncts)
    (Format.pp_print_list Bset.pp)
    t.disjuncts
