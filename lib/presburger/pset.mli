(** Finite unions of basic sets / basic maps.

    This is the user-facing level, mirroring isl's [isl_set] / [isl_map]:
    most operations distribute over the disjuncts.  Disjuncts are not kept
    disjoint in general; operations that require disjointness
    (exact counting) disjointify on the fly when possible. *)

type t = private { space : Space.t; disjuncts : Bset.t list }

val of_bset : Bset.t -> t
val of_bsets : Space.t -> Bset.t list -> t
val universe : Space.t -> t
val empty : Space.t -> t
val space : t -> Space.t
val disjuncts : t -> Bset.t list
val n_disjuncts : t -> int

val union : t -> t -> t
val intersect : t -> t -> t
val subtract : t -> t -> t
(** Set difference.  Raises [Invalid_argument] if the subtrahend carries
    division variables (see {!Bset.subtract}). *)

val compose : t -> t -> t
(** [compose a b] = [b ∘ a] pointwise over disjuncts. *)

val inverse : t -> t
val domain : t -> t
val range : t -> t
val deltas : t -> t
val product_domain : t -> t -> t
val to_set : t -> t
val fix_params : t -> int array -> t

val lex_lt : int -> t
(** [lex_lt n]: the map [{ [x] -> [y] : x ≺ y }] on n-tuples, as a union of
    [n] basic maps. *)

val lex_le : int -> t
(** [lex_le n]: [{ [x] -> [y] : x ⪯ y }]. *)

val is_empty : t -> bool
val sample : t -> int array option
val mem : t -> int array -> bool

val is_subset : t -> t -> bool
(** [is_subset a b]; requires [b] free of division variables. *)

val is_equal : t -> t -> bool
(** Mutual inclusion; both sides must be free of division variables. *)

val lexmin_point : t -> int array option
(** Lexicographically smallest tuple point across all disjuncts
    (params must be fixed). *)

val lexmax_point : t -> int array option

val coalesce : t -> t
(** Merge pairs of quantifier-free disjuncts whose union is itself a basic
    set (isl's coalesce): e.g. [{[i]: 0<=i<5} ∪ {[i]: 5<=i<10}] becomes
    [{[i]: 0<=i<10}].  Disjuncts with division variables are left alone. *)

val cardinality : ?pool:Engine.Pool.t -> ?ctx:Engine.Ctx.t -> t -> int
(** Exact number of distinct tuple points (params fixed).  Works with
    overlapping disjuncts: small div-free unions are disjointified by
    subtraction and counted through the closed-form path; anything else is
    enumerated with deduplication.  Governed by [ctx]'s budget and
    cancellation token (see {!Bset.cardinality}). *)

val card : ?pool:Engine.Pool.t -> ?ctx:Engine.Ctx.t -> t -> int
(** Alias for {!cardinality}. *)

val fold_points : t -> init:'a -> f:('a -> int array -> 'a) -> 'a
(** Fold over distinct points of the union, in lexicographic order when
    there is a single disjunct (unordered otherwise). *)

val pp : Format.formatter -> t -> unit
