open Linalg

type quasi_poly = { period : int; polys : Q.t array array }

let degree qp =
  Array.fold_left
    (fun d poly ->
      let rec top i = if i < 0 then -1 else if Q.is_zero poly.(i) then top (i - 1) else i in
      max d (top (Array.length poly - 1)))
    0 qp.polys

exception Overflow of string

let eval qp n =
  let r = Ints.fmod n qp.period in
  match Fit.eval_exact_poly qp.polys.(r) (Q.of_int n) with
  | v ->
    if not (Q.is_integer v) then
      invalid_arg "Count.eval: non-integer value (inconsistent fit)";
    Q.to_int_exn v
  | exception Ints.Overflow ->
    (* surface the overflow instead of a bare exception (the old native-int
       path would have wrapped silently): the value does not fit an int *)
    raise
      (Overflow
         (Printf.sprintf
            "Count.eval: integer overflow evaluating degree-%d Ehrhart \
             quasi-polynomial at n=%d"
            (degree qp) n))

let pp ppf qp =
  let pp_poly ppf poly =
    let printed = ref false in
    Array.iteri
      (fun i c ->
        if not (Q.is_zero c) then begin
          if !printed then Format.fprintf ppf " + ";
          (match i with
          | 0 -> Format.fprintf ppf "%a" Q.pp c
          | 1 -> Format.fprintf ppf "%a·n" Q.pp c
          | _ -> Format.fprintf ppf "%a·n^%d" Q.pp c i);
          printed := true
        end)
      poly;
    if not !printed then Format.fprintf ppf "0"
  in
  if qp.period = 1 then pp_poly ppf qp.polys.(0)
  else begin
    Format.fprintf ppf "@[<v>";
    Array.iteri
      (fun r poly ->
        Format.fprintf ppf "[n ≡ %d mod %d] %a@," r qp.period pp_poly poly)
      qp.polys;
    Format.fprintf ppf "@]"
  end

let c_ehrhart_fit = Telemetry.counter "presburger.ehrhart_fit"
let c_ehrhart_ok = Telemetry.counter "presburger.ehrhart_fit_ok"

let interpolate ?pool ?(max_degree = 6) ?(max_period = 8) ?(base = 4) ~count () =
  Telemetry.tick c_ehrhart_fit;
  (* memoize the (possibly expensive) counts *)
  let raw_count = count in
  let cache = Hashtbl.create 32 in
  let count n =
    match Hashtbl.find_opt cache n with
    | Some c -> c
    | None ->
      let c = count n in
      Hashtbl.add cache n c;
      c
  in
  (* sample positions a (degree, period) candidate will need: degree+1
     fitting points plus validation points per residue class *)
  let ks_of degree =
    List.init (degree + 3) Fun.id @ [ 2 * (degree + 3); (4 * (degree + 3)) + 1 ]
  in
  let first_of r period = base + Ints.fmod (r - base) period in
  (* fan the not-yet-cached sample counts over the pool; the cache itself
     is only touched from this (the submitting) thread, so the memo state
     after prefetching is identical to the sequential run's *)
  let prefetch degree period =
    match pool with
    | None -> ()
    | Some pool ->
      let needed =
        List.concat_map
          (fun r ->
            let first = first_of r period in
            List.map (fun k -> first + (k * period)) (ks_of degree))
          (List.init period Fun.id)
      in
      let missing =
        List.filter
          (fun n -> not (Hashtbl.mem cache n))
          (List.sort_uniq Stdlib.compare needed)
      in
      if List.compare_length_with missing 2 >= 0 then
        List.iter2
          (fun n c -> Hashtbl.add cache n c)
          missing
          (Engine.Pool.map pool raw_count missing)
  in
  let try_fit degree period =
    prefetch degree period;
    let fit_class r =
      (* parameter values >= base congruent to r mod period; fit on
         degree+1 consecutive class members, then validate on two adjacent
         and two far-out samples — far samples reject low-degree /
         low-period fits that merely match a locally flat region *)
      let first = first_of r period in
      let pts =
        List.map
          (fun k ->
            let n = first + (k * period) in
            (Q.of_int n, Q.of_int (count n)))
          (ks_of degree)
      in
      Fit.exact_polynomial ~degree pts
    in
    let classes = List.init period fit_class in
    if List.for_all Option.is_some classes then
      Some
        {
          period;
          polys = Array.of_list (List.map Option.get classes);
        }
    else None
  in
  let rec search degree period =
    if degree > max_degree then None
    else if period > max_period then search (degree + 1) 1
    else
      match try_fit degree period with
      | Some qp -> Some qp
      | None -> search degree (period + 1)
  in
  let result = search 0 1 in
  (* how many distinct parameter points the fit had to evaluate *)
  Telemetry.observe "ehrhart.fit_points" (float_of_int (Hashtbl.length cache));
  if result <> None then Telemetry.tick c_ehrhart_ok;
  result

let card_poly ?pool ?max_degree ?max_period ?base instance =
  interpolate ?pool ?max_degree ?max_period ?base
    ~count:(fun n -> Bset.cardinality ?pool (instance n))
    ()
