open Linalg

type quasi_poly = { period : int; polys : Q.t array array }

let degree qp =
  Array.fold_left
    (fun d poly ->
      let rec top i = if i < 0 then -1 else if Q.is_zero poly.(i) then top (i - 1) else i in
      max d (top (Array.length poly - 1)))
    0 qp.polys

exception Overflow of string

let eval qp n =
  let r = Ints.fmod n qp.period in
  match Fit.eval_exact_poly qp.polys.(r) (Q.of_int n) with
  | v ->
    if not (Q.is_integer v) then
      invalid_arg "Count.eval: non-integer value (inconsistent fit)";
    Q.to_int_exn v
  | exception Ints.Overflow ->
    (* surface the overflow instead of a bare exception (the old native-int
       path would have wrapped silently): the value does not fit an int *)
    raise
      (Overflow
         (Printf.sprintf
            "Count.eval: integer overflow evaluating degree-%d Ehrhart \
             quasi-polynomial at n=%d"
            (degree qp) n))

let pp ppf qp =
  let pp_poly ppf poly =
    let printed = ref false in
    Array.iteri
      (fun i c ->
        if not (Q.is_zero c) then begin
          if !printed then Format.fprintf ppf " + ";
          (match i with
          | 0 -> Format.fprintf ppf "%a" Q.pp c
          | 1 -> Format.fprintf ppf "%a·n" Q.pp c
          | _ -> Format.fprintf ppf "%a·n^%d" Q.pp c i);
          printed := true
        end)
      poly;
    if not !printed then Format.fprintf ppf "0"
  in
  if qp.period = 1 then pp_poly ppf qp.polys.(0)
  else begin
    Format.fprintf ppf "@[<v>";
    Array.iteri
      (fun r poly ->
        Format.fprintf ppf "[n ≡ %d mod %d] %a@," r qp.period pp_poly poly)
      qp.polys;
    Format.fprintf ppf "@]"
  end

let c_ehrhart_fit = Telemetry.counter "presburger.ehrhart_fit"
let c_ehrhart_ok = Telemetry.counter "presburger.ehrhart_fit_ok"

let interpolate ?pool ?ctx ?(max_degree = 6) ?(max_period = 8) ?(base = 4)
    ~count () =
  Telemetry.tick c_ehrhart_fit;
  let ctx = Engine.Ctx.of_legacy ?pool ctx in
  let pool = Engine.Ctx.pool ctx in
  (* memoize the (possibly expensive) counts *)
  let raw_count = count in
  let cache = Hashtbl.create 32 in
  let count n =
    match Hashtbl.find_opt cache n with
    | Some c -> c
    | None ->
      let c = count n in
      Hashtbl.add cache n c;
      c
  in
  (* sample positions a (degree, period) candidate will need: degree+1
     fitting points plus validation points per residue class *)
  let ks_of degree =
    List.init (degree + 3) Fun.id @ [ 2 * (degree + 3); (4 * (degree + 3)) + 1 ]
  in
  let first_of r period = base + Ints.fmod (r - base) period in
  (* fan the not-yet-cached sample counts over the pool; the cache itself
     is only touched from this (the submitting) thread, so the memo state
     after prefetching is identical to the sequential run's *)
  let prefetch degree period =
    match pool with
    | None -> ()
    | Some pool ->
      let needed =
        List.concat_map
          (fun r ->
            let first = first_of r period in
            List.map (fun k -> first + (k * period)) (ks_of degree))
          (List.init period Fun.id)
      in
      let missing =
        List.filter
          (fun n -> not (Hashtbl.mem cache n))
          (List.sort_uniq Stdlib.compare needed)
      in
      if List.compare_length_with missing 2 >= 0 then
        List.iter2
          (fun n c -> Hashtbl.add cache n c)
          missing
          (Engine.Pool.map ?cancel:(Engine.Ctx.cancel ctx) pool raw_count
             missing)
  in
  let try_fit degree period =
    (* governance: a (degree, period) candidate needs a bounded batch of
       sample counts, so candidates are natural cancellation points *)
    Engine.Ctx.check ctx;
    prefetch degree period;
    let fit_class r =
      (* parameter values >= base congruent to r mod period; fit on
         degree+1 consecutive class members, then validate on two adjacent
         and two far-out samples — far samples reject low-degree /
         low-period fits that merely match a locally flat region *)
      let first = first_of r period in
      let pts =
        List.map
          (fun k ->
            let n = first + (k * period) in
            (Q.of_int n, Q.of_int (count n)))
          (ks_of degree)
      in
      Fit.exact_polynomial ~degree pts
    in
    let classes = List.init period fit_class in
    if List.for_all Option.is_some classes then
      Some
        {
          period;
          polys = Array.of_list (List.map Option.get classes);
        }
    else None
  in
  let rec search degree period =
    if degree > max_degree then None
    else if period > max_period then search (degree + 1) 1
    else
      match try_fit degree period with
      | Some qp -> Some qp
      | None -> search degree (period + 1)
  in
  let result = search 0 1 in
  (* how many distinct parameter points the fit had to evaluate *)
  Telemetry.observe "ehrhart.fit_points" (float_of_int (Hashtbl.length cache));
  if result <> None then Telemetry.tick c_ehrhart_ok;
  result

let card_poly ?pool ?ctx ?max_degree ?max_period ?base instance =
  let ctx = Engine.Ctx.of_legacy ?pool ctx in
  interpolate ~ctx ?max_degree ?max_period ?base
    ~count:(fun n -> Bset.cardinality ~ctx (instance n))
    ()

(* --- Degraded cardinality: dilation extrapolation ---

   When the exact count of a ground polytope P = {x : a·x + c >= 0}
   exceeds its budget, we estimate |P| from cheap shrunken copies.  The
   r-fold shrink (1/r)·P is, after clearing denominators, the integer
   polytope {x : r·(a·x) + c >= 0}; by Ehrhart theory |t·P| is (quasi-)
   polynomial of degree d in the dilation t, so with samples at t = 1/r
   and t = 1/(2r) we fit the two leading terms A·t^d + B·t^(d-1) and
   extrapolate to t = 1.  The surface term B absorbs the O(t^(d-1))
   boundary contribution, leaving a relative error of O(1/r) from the
   dropped lower orders and the quasi-periodic wobble — the tolerance
   documented in DESIGN.md.  Divisions and equalities do not survive
   constant scaling (their lattice structure changes), so those fall
   back to the bounding-box product, an upper estimate. *)

let c_estimate = Telemetry.counter "presburger.card_estimates"

(* per-sample point cap for the shrunken counts, and the fuel of the
   fresh post-deadline budget each sample runs under (the caller's
   deadline is deliberately NOT consulted here: the whole point of the
   estimator is to produce a number with a bounded amount of
   post-deadline work) *)
let sample_cap = 50_000
let sample_fuel = 16 * sample_cap

let fresh_sample_ctx ctx =
  {
    ctx with
    Engine.Ctx.cache = None;
    budget =
      Some (Engine.Budget.create ~fuel:sample_fuel ~degrade:Engine.Budget.Off ());
  }

let card_estimate ?(ctx = Engine.Ctx.none) b =
  Telemetry.tick c_estimate;
  let box = Bset.bounding_box b in
  let d = Array.length box in
  let box_lengths =
    Array.map
      (function
        | Some lo, Some hi -> Some (float_of_int (max 0 (hi - lo + 1)))
        | _ -> None)
      box
  in
  let box_volume =
    Array.fold_left
      (fun acc l ->
        match (acc, l) with Some a, Some l -> Some (a *. l) | _ -> None)
      (Some 1.) box_lengths
  in
  let saturate f =
    if f >= float_of_int max_int then max_int else max 0 (int_of_float (f +. 0.5))
  in
  let cstrs = Poly.constraints b.Bset.poly in
  let box_product () =
    match box_volume with
    | Some v -> saturate v
    | None -> raise Poly.Unbounded
  in
  if d = 0 then if Bset.is_empty b then 0 else 1
  else if b.Bset.n_div > 0 || List.exists (fun c -> c.Poly.eq) cstrs then
    box_product ()
  else
    match box_volume with
    | None -> raise Poly.Unbounded
    | Some vol ->
      (* smallest power-of-two shrink whose sample fits the cap *)
      let r = ref 1 in
      while vol /. (float_of_int !r ** float_of_int d) > float_of_int sample_cap
      do
        r := !r * 2
      done;
      let r = !r in
      let shrink_count r =
        let scaled =
          List.map
            (fun (c : Poly.cstr) ->
              { c with Poly.coef = Array.map (fun a -> r * a) c.Poly.coef })
            cstrs
        in
        let sctx = fresh_sample_ctx ctx in
        Poly.count_points
          ?pool:(Engine.Ctx.pool sctx)
          ?budget:(Engine.Ctx.budget sctx)
          ?cancel:(Engine.Ctx.cancel sctx)
          ~n_scan:d
          (Poly.make (Poly.nvar b.Bset.poly) scaled)
      in
      if r = 1 then
        (* the whole polytope fits the sample cap: count it outright
           (the caller still records the result as degraded — the
           budget it was given did run out) *)
        match shrink_count 1 with
        | n -> n
        | exception Engine.Budget.Exhausted _ -> box_product ()
      else begin
        match (shrink_count r, shrink_count (2 * r)) with
        | exception Engine.Budget.Exhausted _ -> box_product ()
        | n1, n2 ->
          (* |t·P| ~ A·t^d + B·t^(d-1); samples at t=1/r, t=1/(2r) *)
          let t1 = 1. /. float_of_int r and t2 = 1. /. float_of_int (2 * r) in
          let df = float_of_int d in
          let f1 = float_of_int n1 /. (t1 ** (df -. 1.)) in
          let f2 = float_of_int n2 /. (t2 ** (df -. 1.)) in
          let a = (f1 -. f2) /. (t1 -. t2) in
          let bterm = f1 -. (a *. t1) in
          let extrapolated = a +. bterm in
          if Float.is_finite extrapolated && extrapolated >= 0. then
            saturate extrapolated
          else
            (* degenerate fit (e.g. empty samples): pure volume scaling *)
            saturate (float_of_int n1 /. (t1 ** df))
      end

let retry_fuel = 1_000_000

let card_gov ?(ctx = Engine.Ctx.none) b =
  match Bset.cardinality ~ctx b with
  | n -> (n, Engine.Fidelity.Exact)
  | exception Engine.Budget.Exhausted _
    when Engine.Ctx.degrade_allowed ctx -> (
    (* bounded post-deadline retry under a fresh fuel-only budget: small
       domains still count exactly even after the request deadline *)
    let retry_ctx =
      {
        ctx with
        Engine.Ctx.cache = None;
        budget =
          Some
            (Engine.Budget.create ~fuel:retry_fuel ~degrade:Engine.Budget.Off
               ());
      }
    in
    match Bset.cardinality ~ctx:retry_ctx b with
    | n -> (n, Engine.Fidelity.Exact)
    | exception Engine.Budget.Exhausted _ ->
      Engine.Fidelity.note_degraded ();
      (card_estimate ~ctx b, Engine.Fidelity.Degraded))

(* ---- chamber-decomposed parametric counting ---- *)

let card_param ?(ctx = Engine.Ctx.none) b = Chamber.decompose ~ctx b

let card_at ?pool ?ctx b values =
  let ctx = Engine.Ctx.of_legacy ?pool ctx in
  let np = Space.n_params (Bset.space b) in
  if Array.length values <> np then invalid_arg "Count.card_at: arity";
  if np = 0 then Bset.cardinality ~ctx b
  else begin
    (* a decomposition cut short by the budget is not an error: fall
       back to the exact ground scan, whose own metering re-raises
       promptly if the budget really is spent (callers with a
       degradation policy then substitute an estimate, cf. card_gov) *)
    let chambers =
      try Chamber.decompose ~ctx b with Engine.Budget.Exhausted _ -> None
    in
    match chambers with
    | Some ch -> (
      try Chamber.eval ch values
      with Linalg.Ints.Overflow ->
        raise (Overflow "Count.card_at: chamber evaluation overflowed"))
    | None -> Bset.cardinality ~ctx (Bset.fix_params b values)
  end

let card_pset_at ?pool ?ctx ps values =
  let ctx = Engine.Ctx.of_legacy ?pool ctx in
  match Pset.disjuncts ps with
  | [ b ] -> card_at ~ctx b values
  | _ -> Pset.cardinality ~ctx (Pset.fix_params ps values)
