open Linalg

type quasi_poly = { period : int; polys : Q.t array array }

let degree qp =
  Array.fold_left
    (fun d poly ->
      let rec top i = if i < 0 then -1 else if Q.is_zero poly.(i) then top (i - 1) else i in
      max d (top (Array.length poly - 1)))
    0 qp.polys

let eval qp n =
  let r = Ints.fmod n qp.period in
  let v = Fit.eval_exact_poly qp.polys.(r) (Q.of_int n) in
  if not (Q.is_integer v) then
    invalid_arg "Count.eval: non-integer value (inconsistent fit)";
  Q.to_int_exn v

let pp ppf qp =
  let pp_poly ppf poly =
    let printed = ref false in
    Array.iteri
      (fun i c ->
        if not (Q.is_zero c) then begin
          if !printed then Format.fprintf ppf " + ";
          (match i with
          | 0 -> Format.fprintf ppf "%a" Q.pp c
          | 1 -> Format.fprintf ppf "%a·n" Q.pp c
          | _ -> Format.fprintf ppf "%a·n^%d" Q.pp c i);
          printed := true
        end)
      poly;
    if not !printed then Format.fprintf ppf "0"
  in
  if qp.period = 1 then pp_poly ppf qp.polys.(0)
  else begin
    Format.fprintf ppf "@[<v>";
    Array.iteri
      (fun r poly ->
        Format.fprintf ppf "[n ≡ %d mod %d] %a@," r qp.period pp_poly poly)
      qp.polys;
    Format.fprintf ppf "@]"
  end

let c_ehrhart_fit = Telemetry.counter "presburger.ehrhart_fit"
let c_ehrhart_ok = Telemetry.counter "presburger.ehrhart_fit_ok"

let interpolate ?(max_degree = 6) ?(max_period = 8) ?(base = 4) ~count () =
  Telemetry.tick c_ehrhart_fit;
  (* memoize the (possibly expensive) counts *)
  let cache = Hashtbl.create 32 in
  let count n =
    match Hashtbl.find_opt cache n with
    | Some c -> c
    | None ->
      let c = count n in
      Hashtbl.add cache n c;
      c
  in
  let try_fit degree period =
    (* for each residue class we need degree+1 fitting points plus
       2 validation points *)
    let fit_class r =
      (* parameter values >= base congruent to r mod period *)
      let first = base + Ints.fmod (r - base) period in
      (* fit on degree+1 consecutive class members, then validate on two
         adjacent and two far-out samples — far samples reject low-degree /
         low-period fits that merely match a locally flat region *)
      let ks =
        List.init (degree + 3) Fun.id
        @ [ 2 * (degree + 3); (4 * (degree + 3)) + 1 ]
      in
      let pts =
        List.map
          (fun k ->
            let n = first + (k * period) in
            (Q.of_int n, Q.of_int (count n)))
          ks
      in
      Fit.exact_polynomial ~degree pts
    in
    let classes = List.init period fit_class in
    if List.for_all Option.is_some classes then
      Some
        {
          period;
          polys = Array.of_list (List.map Option.get classes);
        }
    else None
  in
  let rec search degree period =
    if degree > max_degree then None
    else if period > max_period then search (degree + 1) 1
    else
      match try_fit degree period with
      | Some qp -> Some qp
      | None -> search degree (period + 1)
  in
  let result = search 0 1 in
  (* how many distinct parameter points the fit had to evaluate *)
  Telemetry.observe "ehrhart.fit_points" (float_of_int (Hashtbl.length cache));
  if result <> None then Telemetry.tick c_ehrhart_ok;
  result

let card_poly ?max_degree ?max_period ?base instance =
  interpolate ?max_degree ?max_period ?base
    ~count:(fun n -> Bset.cardinality (instance n))
    ()
