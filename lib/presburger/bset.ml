type t = { space : Space.t; n_div : int; poly : Poly.t }
type aff = { coefs : (int * int) list; const : int }

let c_sets_built = Telemetry.counter "presburger.sets_built"

let n_total t = Space.n_vars t.space + t.n_div

let of_poly space ~n_div poly =
  assert (Poly.nvar poly = Space.n_vars space + n_div);
  Telemetry.tick c_sets_built;
  { space; n_div; poly }

let universe space =
  Telemetry.tick c_sets_built;
  { space; n_div = 0; poly = Poly.universe (Space.n_vars space) }

let space t = t.space
let n_div t = t.n_div
let param_pos _ i = i
let in_pos t i = Space.n_params t.space + i
let out_pos t i = Space.n_params t.space + Space.n_ins t.space + i
let div_pos t i = Space.n_vars t.space + i

let cstr_of_aff t a ~eq =
  let coef = Array.make (n_total t) 0 in
  List.iter
    (fun (c, v) ->
      assert (v >= 0 && v < n_total t);
      coef.(v) <- coef.(v) + c)
    a.coefs;
  if eq then Poly.eq coef a.const else Poly.ge coef a.const

let add_eq t a =
  { t with poly = Poly.add_constraints t.poly [ cstr_of_aff t a ~eq:true ] }

let add_ge t a =
  { t with poly = Poly.add_constraints t.poly [ cstr_of_aff t a ~eq:false ] }

let add_div t ~num ~den =
  assert (den > 0);
  let q = n_total t in
  let poly = Poly.insert_vars t.poly ~at:q ~count:1 in
  let t' = { t with n_div = t.n_div + 1; poly } in
  (* den·q <= num <= den·q + den - 1 *)
  let lower = { coefs = (-den, q) :: num.coefs; const = num.const } in
  let upper =
    {
      coefs = (den, q) :: List.map (fun (c, v) -> (-c, v)) num.coefs;
      const = den - 1 - num.const;
    }
  in
  (add_ge (add_ge t' lower) upper, q)

(* pad both arguments to a common div count, [a]'s divs first *)
let align_divs a b =
  let na = a.n_div and nb = b.n_div in
  let base = Space.n_vars a.space in
  let pa = Poly.insert_vars a.poly ~at:(base + na) ~count:nb in
  let pb = Poly.insert_vars b.poly ~at:base ~count:na in
  (pa, pb, na + nb)

let intersect a b =
  if not (Space.equal a.space b.space) then
    invalid_arg "Bset.intersect: space mismatch";
  let pa, pb, nd = align_divs a b in
  { space = a.space; n_div = nd; poly = Poly.append pa pb }

let fix_params t values =
  let np = Space.n_params t.space in
  assert (Array.length values = np);
  let poly = Poly.fix_vars t.poly (fun i -> if i < np then Some values.(i) else None) in
  let sp = t.space in
  let space =
    Space.map_space ~in_name:sp.Space.in_name ~out_name:sp.Space.out_name
      (Array.to_list sp.Space.ins) (Array.to_list sp.Space.outs)
  in
  { space; n_div = t.n_div; poly }

let inverse t =
  let np = Space.n_params t.space in
  let ni = Space.n_ins t.space and no = Space.n_outs t.space in
  let perm i =
    if i < np then i
    else if i < np + ni then i + no (* old in -> new out *)
    else if i < np + ni + no then i - ni (* old out -> new in *)
    else i
  in
  {
    space = Space.reverse t.space;
    n_div = t.n_div;
    poly = Poly.remap t.poly (n_total t) perm;
  }

(* turn the given tuple block into extra divs *)
let existentialize t ~drop_ins =
  let np = Space.n_params t.space in
  let ni = Space.n_ins t.space and no = Space.n_outs t.space in
  let dropped, kept_ofs, new_space =
    if drop_ins then
      ( (np, ni),
        np + ni,
        Space.set_space
          ~params:(Array.to_list t.space.Space.params)
          ~name:t.space.Space.out_name
          (Array.to_list t.space.Space.outs) )
    else
      ( (np + ni, no),
        np,
        Space.set_space
          ~params:(Array.to_list t.space.Space.params)
          ~name:t.space.Space.in_name
          (Array.to_list t.space.Space.ins) )
  in
  let d_start, d_count = dropped in
  let kept_count = ni + no - d_count in
  let perm i =
    if i < d_start then i
    else if i < d_start + d_count then
      (* dropped tuple dim -> first div block *)
      np + kept_count + (i - d_start)
    else if i < np + ni + no then
      (* remaining tuple dims shift down when the dropped block precedes *)
      if i >= kept_ofs && d_start < kept_ofs then i - d_count else i
    else (* old divs go after the new ones *) i
  in
  {
    space = new_space;
    n_div = t.n_div + d_count;
    poly = Poly.remap t.poly (n_total t) perm;
  }

let domain t = existentialize t ~drop_ins:false
let range t = existentialize t ~drop_ins:true

let compose a b =
  let space = Space.compose a.space b.space in
  let np = Space.n_params space in
  let nx = Space.n_ins a.space in
  let ny = Space.n_outs a.space in
  let nz = Space.n_outs b.space in
  let nd = ny + a.n_div + b.n_div in
  let total = np + nx + nz + nd in
  let perm_a i =
    if i < np + nx then i
    else if i < np + nx + ny then i + nz (* Y -> div block head *)
    else i + nz (* a's divs follow Y *)
  in
  let perm_b i =
    if i < np then i
    else if i < np + ny then np + nx + nz + (i - np) (* Y *)
    else if i < np + ny + nz then np + nx + (i - np - ny) (* Z *)
    else np + nx + nz + ny + a.n_div + (i - np - ny - nz)
  in
  let pa = Poly.remap a.poly total perm_a in
  let pb = Poly.remap b.poly total perm_b in
  { space; n_div = nd; poly = Poly.append pa pb }

let product_domain a b =
  if Space.n_ins a.space <> Space.n_ins b.space then
    invalid_arg "Bset.product_domain: domain arity mismatch";
  let np = Space.n_params a.space in
  let nx = Space.n_ins a.space in
  let ny = Space.n_outs a.space and nz = Space.n_outs b.space in
  let space =
    Space.map_space
      ~params:(Array.to_list a.space.Space.params)
      ~in_name:a.space.Space.in_name
      ~out_name:(a.space.Space.out_name ^ "_" ^ b.space.Space.out_name)
      (Array.to_list a.space.Space.ins)
      (Array.to_list a.space.Space.outs @ Array.to_list b.space.Space.outs)
  in
  let total = np + nx + ny + nz + a.n_div + b.n_div in
  let perm_a i = if i < np + nx + ny then i else i + nz in
  let perm_b i =
    if i < np + nx then i
    else if i < np + nx + nz then i + ny
    else i + ny + a.n_div
  in
  let pa = Poly.remap a.poly total perm_a in
  let pb = Poly.remap b.poly total perm_b in
  { space; n_div = a.n_div + b.n_div; poly = Poly.append pa pb }

let deltas t =
  let np = Space.n_params t.space in
  let n = Space.n_ins t.space in
  if Space.n_outs t.space <> n then
    invalid_arg "Bset.deltas: input/output arity mismatch";
  let space =
    Space.set_space
      ~params:(Array.to_list t.space.Space.params)
      ~name:"delta"
      (Array.to_list t.space.Space.ins)
  in
  (* layout: params, delta(n), divs = x(n) @ y(n) @ old divs *)
  let total = np + n + (2 * n) + t.n_div in
  let perm i =
    if i < np then i
    else if i < np + n then i + n (* x -> first div block *)
    else if i < np + (2 * n) then i + n (* y -> second div block *)
    else i + n
  in
  let poly = Poly.remap t.poly total perm in
  let base = { space; n_div = (2 * n) + t.n_div; poly } in
  (* δ_k = y_k - x_k *)
  let rec add k acc =
    if k = n then acc
    else
      add (k + 1)
        (add_eq acc
           {
             coefs =
               [ (1, np + n + n + k); (-1, np + n + k); (-1, np + k) ];
             const = 0;
           })
  in
  add 0 base

let to_set t =
  let sp = t.space in
  let dims = Array.to_list sp.Space.ins @ Array.to_list sp.Space.outs in
  let name =
    if sp.Space.in_name = "" then sp.Space.out_name
    else sp.Space.in_name ^ "_" ^ sp.Space.out_name
  in
  let space =
    Space.set_space ~params:(Array.to_list sp.Space.params) ~name dims
  in
  { space; n_div = t.n_div; poly = t.poly }

let tuple_dims t = Space.n_ins t.space + Space.n_outs t.space

let require_ground t op =
  if Space.n_params t.space > 0 then
    invalid_arg (op ^ ": parameters must be fixed first")

let is_empty t =
  match Poly.is_empty t.poly with
  | b -> b
  | exception Poly.Unbounded -> not (Poly.rational_feasible t.poly)

let sample t =
  require_ground t "Bset.sample";
  Poly.lexmin ~n_scan:(tuple_dims t) t.poly

let mem t point =
  require_ground t "Bset.mem";
  let nd = tuple_dims t in
  if Array.length point <> nd then invalid_arg "Bset.mem: arity";
  let fixed =
    Poly.fix_vars t.poly (fun i -> if i < nd then Some point.(i) else None)
  in
  not (Poly.is_empty fixed)

let lexmin t =
  require_ground t "Bset.lexmin";
  Poly.lexmin ~n_scan:(tuple_dims t) t.poly

let lexmax t =
  require_ground t "Bset.lexmax";
  Poly.lexmax ~n_scan:(tuple_dims t) t.poly

let fold_points t ~init ~f =
  require_ground t "Bset.fold_points";
  Poly.fold_points ~n_scan:(tuple_dims t) t.poly ~init ~f

(* Count memo: repeated counts of the same reuse polytope inside one
   analysis (the common case in PolyUFC-CM: the same miss polytope shows up
   per level, per parameter sample) are answered from a canonical-form
   table.  Keys are the full normalized constraint system, so a hit is
   exact by construction.  Mutex-guarded: counts may be issued from pool
   workers. *)
let c_memo_hit = Telemetry.counter "presburger.count_memo_hits"
let count_memo : (string, int) Hashtbl.t = Hashtbl.create 256
let count_memo_mutex = Mutex.create ()
let count_memo_cap = 8192

let clear_count_memo () =
  Mutex.protect count_memo_mutex (fun () -> Hashtbl.reset count_memo)

let memo_key t n_scan =
  let b = Buffer.create 128 in
  Buffer.add_string b (string_of_int (Poly.nvar t.poly));
  Buffer.add_char b '/';
  Buffer.add_string b (string_of_int n_scan);
  let lines =
    List.map
      (fun (c : Poly.cstr) ->
        let l = Buffer.create 32 in
        Buffer.add_char l (if c.Poly.eq then 'e' else 'i');
        Array.iter
          (fun a ->
            Buffer.add_char l ',';
            Buffer.add_string l (string_of_int a))
          c.Poly.coef;
        Buffer.add_char l ':';
        Buffer.add_string l (string_of_int c.Poly.const);
        Buffer.contents l)
      (Poly.constraints t.poly)
  in
  List.iter
    (fun line ->
      Buffer.add_char b ';';
      Buffer.add_string b line)
    (List.sort String.compare lines);
  Buffer.contents b

let cardinality ?pool ?ctx t =
  require_ground t "Bset.cardinality";
  let ctx = Engine.Ctx.of_legacy ?pool ctx in
  let n_scan = tuple_dims t in
  let key = memo_key t n_scan in
  match
    Mutex.protect count_memo_mutex (fun () -> Hashtbl.find_opt count_memo key)
  with
  | Some n ->
    Telemetry.tick c_memo_hit;
    n
  | None ->
    (* governance: an exhausted budget raises out of [count_points]
       before the memo-add below, so only exact counts are ever
       memoized (degraded estimates never pollute the table) *)
    let n =
      Poly.count_points ?pool:(Engine.Ctx.pool ctx)
        ?budget:(Engine.Ctx.budget ctx) ?cancel:(Engine.Ctx.cancel ctx)
        ~n_scan t.poly
    in
    Mutex.protect count_memo_mutex (fun () ->
        if Hashtbl.length count_memo >= count_memo_cap then
          Hashtbl.reset count_memo;
        if not (Hashtbl.mem count_memo key) then Hashtbl.add count_memo key n);
    n

let card = cardinality

let negate_cstr (c : Poly.cstr) : Poly.cstr list =
  (* ¬(coef·x + const >= 0)  ≡  -coef·x - const - 1 >= 0 *)
  assert (not c.Poly.eq);
  [ Poly.ge (Array.map (fun a -> -a) c.Poly.coef) (-c.Poly.const - 1) ]

let subtract a b =
  if not (Space.equal a.space b.space) then
    invalid_arg "Bset.subtract: space mismatch";
  if b.n_div > 0 then
    invalid_arg "Bset.subtract: subtrahend has division variables";
  (* expand equalities of b into pairs of inequalities *)
  let ineqs =
    List.concat_map
      (fun (c : Poly.cstr) ->
        if c.Poly.eq then
          [
            Poly.ge c.Poly.coef c.Poly.const;
            Poly.ge (Array.map (fun x -> -x) c.Poly.coef) (-c.Poly.const);
          ]
        else [ c ])
      (Poly.constraints b.poly)
  in
  (* pad b's constraints with zero columns for a's divs *)
  let pad (c : Poly.cstr) : Poly.cstr =
    let coef = Array.make (n_total a) 0 in
    Array.blit c.Poly.coef 0 coef 0 (Array.length c.Poly.coef);
    { c with Poly.coef }
  in
  let ineqs = List.map pad ineqs in
  let rec go kept acc = function
    | [] -> List.rev acc
    | c :: rest ->
      let disjunct =
        {
          a with
          poly = Poly.add_constraints a.poly (negate_cstr c @ kept);
        }
      in
      let acc = if is_empty disjunct then acc else disjunct :: acc in
      go (c :: kept) acc rest
  in
  go [] [] ineqs

let gist_trivial t = { t with poly = Poly.make (Poly.nvar t.poly) (Poly.constraints t.poly) }

let gist t ~context =
  if not (Space.equal t.space context.space) then
    invalid_arg "Bset.gist: space mismatch";
  (* common layout: [vars, t's divs, context's divs] *)
  let pt, pc, _nd = align_divs t context in
  ignore pt;
  let nvar_t = n_total t in
  let nvar_all = Poly.nvar pc in
  let widen coef =
    let w = Array.make nvar_all 0 in
    Array.blit coef 0 w 0 (min nvar_t (Array.length coef));
    w
  in
  let has_div_coef (c : Poly.cstr) =
    let rec go i =
      i < Array.length c.Poly.coef
      && (i >= Space.n_vars t.space && c.Poly.coef.(i) <> 0 || go (i + 1))
    in
    go (Space.n_vars t.space)
  in
  let keep (c : Poly.cstr) =
    (* constraints referencing division variables are kept conservatively:
       their negation would need the div-defining constraints *)
    if has_div_coef c then true
    else begin
      (* implied by the context iff context ∧ ¬c is empty *)
      let negations =
        if c.Poly.eq then
          [ Poly.ge (widen (Array.map (fun a -> -a) c.Poly.coef)) (-c.Poly.const - 1);
            Poly.ge (widen c.Poly.coef) (c.Poly.const - 1) ]
        else
          [ Poly.ge (widen (Array.map (fun a -> -a) c.Poly.coef)) (-c.Poly.const - 1) ]
      in
      not
        (List.for_all
           (fun neg ->
             let sys = Poly.add_constraints pc [ neg ] in
             match Poly.is_empty sys with
             | b -> b
             | exception Poly.Unbounded -> not (Poly.rational_feasible sys))
           negations)
    end
  in
  let cstrs = List.filter keep (Poly.constraints t.poly) in
  { t with poly = Poly.make (Poly.nvar t.poly) cstrs }

let bounding_box t =
  require_ground t "Bset.bounding_box";
  Array.init (tuple_dims t) (fun i -> Poly.var_bounds t.poly i)

let rename_tuples ?in_name ?out_name t =
  let sp = t.space in
  let in_name = Option.value in_name ~default:sp.Space.in_name in
  let out_name = Option.value out_name ~default:sp.Space.out_name in
  let space =
    if Space.is_set sp && in_name = "" then
      Space.set_space
        ~params:(Array.to_list sp.Space.params)
        ~name:out_name
        (Array.to_list sp.Space.outs)
    else
      Space.map_space
        ~params:(Array.to_list sp.Space.params)
        ~in_name ~out_name
        (Array.to_list sp.Space.ins)
        (Array.to_list sp.Space.outs)
  in
  { t with space }

let pp ppf t =
  Format.fprintf ppf "@[<v>%a (divs=%d)@,%a@]" Space.pp t.space t.n_div
    Poly.pp t.poly
