(* Chamber decomposition: split the parameter space into polyhedra on
   which the count is one quasi-polynomial, fit each by exact
   interpolation, validate against the exact enumerator.

   The wall heuristic follows the classical parametric-programming
   observation: the closed form changes where the *binding* bound of
   some counting level changes, i.e. across resultants of same-side
   bound pairs.  We only keep walls that are parameter-only after
   Fourier-Motzkin projection; shapes whose walls involve inner
   counting variables either still validate on each chamber (the count
   happens to stay quasi-polynomial) or fail validation and bail to the
   exact-scan path.  Soundness never depends on the heuristic. *)

module Q = Linalg.Q
module Ints = Linalg.Ints
module Ctx = Engine.Ctx
module J = Telemetry.Json

type chamber = { guard : Poly.t; count : Qpoly.t }
type t = { np : int; chambers : chamber list }

let c_built = Telemetry.counter "presburger.chambers_built"
let c_hits = Telemetry.counter "presburger.chamber_cache_hits"

let n_chambers t = List.length t.chambers

let eval t values =
  if Array.length values <> t.np then invalid_arg "Chamber.eval: arity";
  match
    List.find_opt (fun c -> Poly.mem c.guard values) t.chambers
  with
  | Some c -> Qpoly.eval c.count values
  | None -> 0

(* ---- canonical key (cf. Bset's counting memo) ---- *)

let canonical_key ~np ~m p =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf "%d/%d/%d" (Poly.nvar p) np m);
  let lines =
    List.map
      (fun (c : Poly.cstr) ->
        let b = Buffer.create 32 in
        Buffer.add_char b (if c.eq then 'e' else 'i');
        Array.iter (fun x -> Buffer.add_string b ("," ^ string_of_int x)) c.coef;
        Buffer.add_string b (":" ^ string_of_int c.const);
        Buffer.contents b)
      (Poly.constraints p)
  in
  List.iter
    (fun l ->
      Buffer.add_char buf ';';
      Buffer.add_string buf l)
    (List.sort compare lines);
  Buffer.contents buf

(* ---- process-wide memo (shared across daemon requests) ---- *)

let memo : (string, t option) Hashtbl.t = Hashtbl.create 64
let memo_mu = Mutex.create ()
let memo_cap = 1024

let memo_find key =
  Mutex.lock memo_mu;
  let r = Hashtbl.find_opt memo key in
  Mutex.unlock memo_mu;
  r

let memo_add key v =
  Mutex.lock memo_mu;
  if Hashtbl.length memo >= memo_cap then Hashtbl.reset memo;
  Hashtbl.replace memo key v;
  Mutex.unlock memo_mu

let clear_memo () =
  Mutex.lock memo_mu;
  Hashtbl.reset memo;
  Mutex.unlock memo_mu

(* ---- serialization (symbolic/v1 result-cache entries) ---- *)

let cstr_to_json (c : Poly.cstr) =
  J.Obj
    [
      ("eq", J.Bool c.eq);
      ("coef", J.Arr (Array.to_list (Array.map (fun x -> J.Int x) c.coef)));
      ("const", J.Int c.const);
    ]

let cstr_of_json ~nvar j =
  let ( let* ) = Option.bind in
  let int_of = function J.Int i -> Some i | _ -> None in
  let* eq = J.member "eq" j in
  let* eq = match eq with J.Bool b -> Some b | _ -> None in
  let* const = Option.bind (J.member "const" j) int_of in
  let* coef_l = Option.bind (J.member "coef" j) J.to_list in
  let* coef =
    List.fold_left
      (fun acc c ->
        let* acc = acc in
        let* c = int_of c in
        Some (c :: acc))
      (Some []) coef_l
  in
  let coef = Array.of_list (List.rev coef) in
  if Array.length coef <> nvar then None
  else Some (if eq then Poly.eq coef const else Poly.ge coef const)

let guard_to_json g =
  J.Arr (List.map cstr_to_json (Poly.constraints g))

let guard_of_json ~np j =
  let ( let* ) = Option.bind in
  let* cstrs_l = J.to_list j in
  let* cstrs =
    List.fold_left
      (fun acc cj ->
        let* acc = acc in
        let* c = cstr_of_json ~nvar:np cj in
        Some (c :: acc))
      (Some []) cstrs_l
  in
  match Poly.make np (List.rev cstrs) with
  | g -> Some g
  | exception _ -> None

let to_json t =
  J.Obj
    [
      ("np", J.Int t.np);
      ( "chambers",
        J.Arr
          (List.map
             (fun c ->
               J.Obj
                 [
                   ("guard", guard_to_json c.guard);
                   ("count", Qpoly.to_json c.count);
                 ])
             t.chambers) );
    ]

let of_json j =
  let ( let* ) = Option.bind in
  let* np = Option.bind (J.member "np" j) (function J.Int i -> Some i | _ -> None) in
  if np < 0 then None
  else
    let* chambers_l = Option.bind (J.member "chambers" j) J.to_list in
    let* chambers =
      List.fold_left
        (fun acc cj ->
          let* acc = acc in
          let* gj = J.member "guard" cj in
          let* guard = guard_of_json ~np gj in
          let* qj = J.member "count" cj in
          let* count = Qpoly.of_json qj in
          if Qpoly.np count <> np then None
          else Some ({ guard; count } :: acc))
        (Some []) chambers_l
    in
    Some { np; chambers = List.rev chambers }

(* ---- symbolic result-cache tier ---- *)

let cache_key key_str =
  Engine.Rcache.key [ ("kind", "polyufc-symbolic-chambers"); ("set", key_str) ]

let cache_find ctx key_str =
  match Ctx.cache ctx with
  | None -> None
  | Some rc -> (
      match Engine.Rcache.find rc (cache_key key_str) with
      | Some payload -> of_json payload
      | None -> None)

let cache_store ctx key_str t =
  match Ctx.cache ctx with
  | None -> ()
  | Some rc ->
      Engine.Rcache.store ~kind:Engine.Rcache.kind_symbolic rc
        (cache_key key_str) (to_json t)

(* ---- decomposition ---- *)

(* candidate chamber walls: for each counting level, resultants of
   same-side bound pairs (where the binding bound changes, the closed
   form changes).  A resultant that still mentions inner counting
   variables is projected onto the parameters by substituting, one
   column at a time, the bounds of the outermost counting variable it
   mentions — the wall crosses the domain where the inner wall meets an
   extreme of that variable's range. *)
let split_forms ~np ~nvar tw dpoly =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  let consider coefs const =
    if Array.exists (fun x -> x <> 0) coefs then begin
      let g =
        Array.fold_left (fun g c -> Ints.gcd g (abs c)) (abs const) coefs
      in
      let g = if g = 0 then 1 else g in
      let coefs = Array.map (fun x -> x / g) coefs in
      let const = const / g in
      (* canonical sign: first non-zero coefficient positive *)
      let flip =
        let rec first i =
          if i >= np then 1 else if coefs.(i) <> 0 then coefs.(i) else first (i + 1)
        in
        first 0 < 0
      in
      let coefs = if flip then Array.map (fun x -> -x) coefs else coefs in
      let const = if flip then -const else const in
      let key = (Array.to_list coefs, const) in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        (* drop walls whose sign is fixed on D: no split there *)
        let pos = Poly.add_constraints dpoly [ Poly.ge coefs const ] in
        let neg =
          Poly.add_constraints dpoly
            [ Poly.ge (Array.map (fun x -> -x) coefs) (-const - 1) ]
        in
        if Poly.rational_feasible pos && Poly.rational_feasible neg then
          out := (coefs, const) :: !out
      end
    end
  in
  (* raw same-side resultants over the full column space *)
  let raw = ref [] in
  for j = np to nvar - 1 do
    let cstrs =
      List.filter
        (fun (c : Poly.cstr) -> c.coef.(j) <> 0)
        (Poly.constraints tw.(j + 1))
    in
    (* orient every constraint usable as a lower (coef_j > 0) and as an
       upper (coef_j < 0) bound; equalities serve both roles *)
    let oriented want_pos (c : Poly.cstr) =
      let a = c.coef.(j) in
      if (a > 0) = want_pos then Some (c.coef, c.const)
      else if c.eq then Some (Array.map (fun x -> -x) c.coef, -c.const)
      else None
    in
    let resultants want_pos =
      let side = List.filter_map (oriented want_pos) cstrs in
      let rec pairs = function
        | [] -> ()
        | (co1, k1) :: rest ->
            List.iter
              (fun (co2, k2) ->
                let a1 = co1.(j) and a2 = co2.(j) in
                let h = Array.make nvar 0 in
                for i = 0 to nvar - 1 do
                  if i <> j then h.(i) <- (a1 * co2.(i)) - (a2 * co1.(i))
                done;
                raw := (h, (a1 * k2) - (a2 * k1)) :: !raw)
              rest;
            pairs rest
      in
      pairs side
    in
    resultants true;
    resultants false
  done;
  (* project each wall onto the parameters: substitute the bounds of the
     outermost counting column it mentions, bounded work *)
  let budget = ref 192 in
  let rec project (h, k) =
    if !budget > 0 then begin
      decr budget;
      let c = ref (-1) in
      for i = np to nvar - 1 do
        if h.(i) <> 0 then c := i
      done;
      if !c < 0 then consider (Array.sub h 0 np) k
      else begin
        let c = !c in
        List.iter
          (fun (b : Poly.cstr) ->
            if b.coef.(c) <> 0 then begin
              let h' = Array.make nvar 0 in
              for i = 0 to nvar - 1 do
                if i <> c then
                  h'.(i) <- (b.coef.(c) * h.(i)) - (h.(c) * b.coef.(i))
              done;
              project (h', (b.coef.(c) * k) - (h.(c) * b.const))
            end)
          (Poly.constraints tw.(c + 1))
      end
    end
  in
  List.iter project (List.rev !raw);
  (* deterministic order, bounded count: at most 6 walls = 64 chambers *)
  let forms = List.rev !out in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: r -> x :: take (n - 1) r
  in
  take 6 forms

let enumerate_chambers ~ctx dpoly forms =
  let rec enum guard = function
    | [] -> [ Poly.remove_redundant guard ]
    | (coefs, const) :: rest ->
        Ctx.check ctx;
        let pos = Poly.add_constraints guard [ Poly.ge coefs const ] in
        let neg =
          Poly.add_constraints guard
            [ Poly.ge (Array.map (fun x -> -x) coefs) (-const - 1) ]
        in
        (if Poly.rational_feasible pos then enum pos rest else [])
        @ (if Poly.rational_feasible neg then enum neg rest else [])
  in
  enum dpoly forms

(* shrink a guard so a sample box of side [ext] starting at any of its
   points stays inside; None when the guard carries a non-trivial
   equality (no full-dimensional box fits) *)
let tighten guard ext =
  let ok = ref true in
  let cstrs =
    List.map
      (fun (c : Poly.cstr) ->
        if c.eq then begin
          if Array.exists (fun x -> x <> 0) c.coef then ok := false;
          c
        end
        else begin
          let slack =
            Array.fold_left
              (fun acc a -> acc + (Stdlib.min 0 a * ext))
              0 c.coef
          in
          Poly.ge c.coef (c.const + slack)
        end)
      (Poly.constraints guard)
  in
  if not !ok then None else Some (Poly.make (Poly.nvar guard) cstrs)

(* lexicographically-small integer point of a possibly unbounded
   polyhedron: parameter domains are usually unbounded above, where
   {!Poly.lexmin}'s scan raises [Unbounded], so clamp every axis to a
   window above its rational lower bound first and widen on demand *)
let small_point p =
  let np = Poly.nvar p in
  let rec with_window k =
    if k > 256 then None
    else begin
      let cstrs = ref [] and ok = ref true in
      for i = 0 to np - 1 do
        match Poly.var_bounds p i with
        | Some lo, _ ->
            let coef = Array.make np 0 in
            coef.(i) <- -1;
            cstrs := Poly.ge coef (lo + k) :: !cstrs
        | None, _ -> ok := false
      done;
      if not !ok then None
      else
        let boxed = Poly.add_constraints p !cstrs in
        match (try Poly.lexmin boxed with Poly.Unbounded -> None) with
        | Some pt -> Some pt
        | None -> with_window (k * 4)
    end
  in
  with_window 16

let anchor_of tight =
  match small_point tight with
  | Some p when Array.for_all (fun x -> abs x <= 100_000) p -> Some p
  | _ -> None

(* validate the fitted form on the chamber's boundary: the fit samples
   live in a box interior to the guard, but evaluation happens on the
   whole (closed) chamber *)
let boundary_ok ~f guard q =
  let np = Poly.nvar guard in
  let check w =
    match Qpoly.eval q w with
    | v -> v = f w
    | exception Invalid_argument _ -> false
    | exception Ints.Overflow -> false
  in
  match small_point guard with
  | None -> true
  | Some w ->
      check w
      && (let ok = ref true in
          for i = 0 to np - 1 do
            if !ok then begin
              let w' = Array.copy w in
              w'.(i) <- w'.(i) + 1;
              if Poly.mem guard w' then ok := check w'
            end
          done;
          !ok)

let fit_chamber ~ctx ~np ~m b guard =
  let degree = m in
  let f v = Bset.cardinality ~ctx (Bset.fix_params b v) in
  let candidates =
    match np with 1 -> [ 1; 2; 3; 4; 6 ] | 2 -> [ 1; 2; 3; 4 ] | _ -> [ 1; 2 ]
  in
  let rec try_periods = function
    | [] -> None
    | period :: rest -> (
        Ctx.spend ctx 32;
        let ext = Qpoly.extent ~degree ~period in
        match tighten guard ext with
        | None -> None (* equality guard: no box fits, go thin *)
        | Some tight ->
            if not (Poly.rational_feasible tight) then try_periods rest
            else (
              match anchor_of tight with
              | None -> try_periods rest
              | Some anchor -> (
                  match
                    Qpoly.fit ~degree ~periods:(Array.make np period) ~anchor
                      ~f ()
                  with
                  | Some q when boundary_ok ~f guard q -> Some q
                  | _ -> try_periods rest)))
  in
  try_periods candidates

(* last resort for thin / low-dimensional chambers: enumerate their few
   parameter points as degree-0 single-point chambers *)
let thin_chambers ~ctx ~np b guard =
  let f v = Bset.cardinality ~ctx (Bset.fix_params b v) in
  let bounded = ref true in
  let total = ref 1 in
  for i = 0 to np - 1 do
    match Poly.var_bounds guard i with
    | Some lo, Some hi ->
        total := !total * Stdlib.max 0 (hi - lo + 1)
    | _ -> bounded := false
  done;
  if (not !bounded) || !total > 64 then None
  else
    Some
      (Poly.fold_points guard ~init:[] ~f:(fun acc v ->
           Ctx.spend ctx 4;
           let v = Array.copy v in
           let pins =
             List.init np (fun i ->
                 let coef = Array.make np 0 in
                 coef.(i) <- 1;
                 Poly.eq coef (-v.(i)))
           in
           { guard = Poly.make np pins; count = Qpoly.const ~np (f v) }
           :: acc))

let build ~ctx ~np ~m b p =
  let nvar = Poly.nvar p in
  Ctx.spend ctx 16;
  (* Fourier-Motzkin tower over the counting columns: tw.(k) has every
     column >= k eliminated (defined for k in np..nvar) *)
  let tw = Array.make (nvar + 1) p in
  for k = nvar - 1 downto np do
    tw.(k) <- Poly.eliminate_var tw.(k + 1) k
  done;
  (* static boundedness gate: every counting level needs a lower and an
     upper bound once deeper levels are eliminated *)
  let bounded = ref true in
  for j = np to nvar - 1 do
    let lower = ref false and upper = ref false in
    List.iter
      (fun (c : Poly.cstr) ->
        let a = c.coef.(j) in
        if a <> 0 then
          if c.eq then begin
            lower := true;
            upper := true
          end
          else if a > 0 then lower := true
          else upper := true)
      (Poly.constraints tw.(j + 1));
    if not (!lower && !upper) then bounded := false
  done;
  if not !bounded then None
  else begin
    let dpoly =
      Poly.remove_redundant
        (Poly.fix_vars tw.(np) (fun i -> if i >= np then Some 0 else None))
    in
    if not (Poly.rational_feasible dpoly) then Some { np; chambers = [] }
    else begin
      let forms = split_forms ~np ~nvar tw dpoly in
      let guards = enumerate_chambers ~ctx dpoly forms in
      let chambers =
        List.fold_left
          (fun acc guard ->
            match acc with
            | None -> None
            | Some acc -> (
                Ctx.check ctx;
                match fit_chamber ~ctx ~np ~m b guard with
                | Some q -> Some ({ guard; count = q } :: acc)
                | None -> (
                    match thin_chambers ~ctx ~np b guard with
                    | Some cs -> Some (cs @ acc)
                    | None -> None)))
          (Some []) guards
      in
      match chambers with
      | None -> None
      | Some cs -> Some { np; chambers = List.rev cs }
    end
  end

let decompose ?ctx b =
  let ctx = match ctx with Some c -> c | None -> Ctx.none in
  let sp = Bset.space b in
  let np = Space.n_params sp in
  let m = Space.n_ins sp + Space.n_outs sp in
  if np < 1 || np > 3 || m < 1 || m > 6 || Bset.n_div b > 0 then None
  else begin
    let p = Poly.remove_redundant b.Bset.poly in
    let key = canonical_key ~np ~m p in
    match memo_find key with
    | Some res ->
        if Option.is_some res then Telemetry.tick c_hits;
        res
    | None -> (
        match cache_find ctx key with
        | Some ch ->
            Telemetry.tick c_hits;
            memo_add key (Some ch);
            Some ch
        | None ->
            (* Budget exhaustion / cancellation raises out of [build]
               before the memo or the cache is touched: degraded state
               is never stored *)
            let res = build ~ctx ~np ~m b p in
            (match res with
            | Some ch ->
                Telemetry.add c_built (List.length ch.chambers);
                cache_store ctx key ch
            | None -> ());
            memo_add key res;
            res)
  end

let pp fmt t =
  Format.fprintf fmt "@[<v>%d chamber(s) over %d parameter(s)" (n_chambers t)
    t.np;
  List.iter
    (fun c ->
      Format.fprintf fmt "@,  guard %a -> %a" Poly.pp c.guard Qpoly.pp c.count)
    t.chambers;
  Format.fprintf fmt "@]"
