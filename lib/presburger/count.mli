(** Symbolic counting of parametric integer sets — the barvinok substitute.

    For an affine set parametric in one size parameter [n], the number of
    integer points is an {e Ehrhart quasi-polynomial}: a polynomial in [n]
    whose coefficients depend periodically on [n mod p] for some period [p].
    We recover it by counting concrete instances at sampled parameter values
    (using the exact enumerator of {!Bset}) and interpolating with exact
    rational arithmetic, validating the fit on held-out samples. *)

type quasi_poly = private {
  period : int;
  polys : Linalg.Q.t array array;
      (** [polys.(r)] are the coefficients (low degree first) applying when
          [n mod period = r]. *)
}

exception Overflow of string
(** Raised by {!eval} when the exact value does not fit a native [int]. *)

val eval : quasi_poly -> int -> int
(** Value at a concrete parameter; raises [Invalid_argument] if the
    quasi-polynomial yields a non-integer there (a fit bug) and
    {!Overflow} when the exact value overflows a native [int]. *)

val degree : quasi_poly -> int

val pp : Format.formatter -> quasi_poly -> unit

val interpolate :
  ?pool:Engine.Pool.t ->
  ?max_degree:int ->
  ?max_period:int ->
  ?base:int ->
  count:(int -> int) ->
  unit ->
  quasi_poly option
(** [interpolate ~count ()] samples [count n] at parameter values
    [base, base+1, ...] and returns the smallest-degree, smallest-period
    quasi-polynomial consistent with all samples (degrees up to
    [max_degree], default 6; periods up to [max_period], default 8; [base]
    default 4).  Each candidate is validated on extra held-out samples.
    [None] if nothing fits.  When [pool] is given, the not-yet-memoized
    samples of each candidate are counted in parallel ([count] must then be
    safe to call from several domains); the result is unchanged. *)

val card_poly :
  ?pool:Engine.Pool.t ->
  ?max_degree:int ->
  ?max_period:int ->
  ?base:int ->
  (int -> Bset.t) ->
  quasi_poly option
(** [card_poly instance] interpolates the cardinality of the family
    [instance n] (each instance must have its parameters already fixed). *)
