(** Symbolic counting of parametric integer sets — the barvinok substitute.

    For an affine set parametric in one size parameter [n], the number of
    integer points is an {e Ehrhart quasi-polynomial}: a polynomial in [n]
    whose coefficients depend periodically on [n mod p] for some period [p].
    We recover it by counting concrete instances at sampled parameter values
    (using the exact enumerator of {!Bset}) and interpolating with exact
    rational arithmetic, validating the fit on held-out samples. *)

type quasi_poly = private {
  period : int;
  polys : Linalg.Q.t array array;
      (** [polys.(r)] are the coefficients (low degree first) applying when
          [n mod period = r]. *)
}

exception Overflow of string
(** Raised by {!eval} when the exact value does not fit a native [int]. *)

val eval : quasi_poly -> int -> int
(** Value at a concrete parameter; raises [Invalid_argument] if the
    quasi-polynomial yields a non-integer there (a fit bug) and
    {!Overflow} when the exact value overflows a native [int]. *)

val degree : quasi_poly -> int

val pp : Format.formatter -> quasi_poly -> unit

val interpolate :
  ?pool:Engine.Pool.t ->
  ?ctx:Engine.Ctx.t ->
  ?max_degree:int ->
  ?max_period:int ->
  ?base:int ->
  count:(int -> int) ->
  unit ->
  quasi_poly option
(** [interpolate ~count ()] samples [count n] at parameter values
    [base, base+1, ...] and returns the smallest-degree, smallest-period
    quasi-polynomial consistent with all samples (degrees up to
    [max_degree], default 6; periods up to [max_period], default 8; [base]
    default 4).  Each candidate is validated on extra held-out samples.
    [None] if nothing fits.  When a pool is available (via [?pool] —
    deprecated — or [ctx]), the not-yet-memoized samples of each candidate
    are counted in parallel ([count] must then be safe to call from
    several domains); the result is unchanged.  [ctx]'s cancellation and
    budget are polled between candidate fits. *)

val card_poly :
  ?pool:Engine.Pool.t ->
  ?ctx:Engine.Ctx.t ->
  ?max_degree:int ->
  ?max_period:int ->
  ?base:int ->
  (int -> Bset.t) ->
  quasi_poly option
(** [card_poly instance] interpolates the cardinality of the family
    [instance n] (each instance must have its parameters already fixed). *)

val card_estimate : ?ctx:Engine.Ctx.t -> Bset.t -> int
(** Cheap cardinality estimate of a ground basic set, for use after an
    exact count exhausted its budget: counts two shrunken copies
    ((1/r)·P and (1/2r)·P, each within a fixed ≈50k-point cap under a
    fresh fuel-only budget) and extrapolates the two leading Ehrhart
    terms to the full dilation — relative error O(1/r), see DESIGN.md.
    Sets with division variables or equality constraints (whose lattice
    structure does not survive scaling) fall back to the bounding-box
    product, an upper estimate.  The caller's deadline is deliberately
    ignored — only its cancellation token is honored — so a just-expired
    deadline still yields a number after a bounded amount of work.
    Raises {!Poly.Unbounded} when the set has no finite bounding box. *)

val card_gov : ?ctx:Engine.Ctx.t -> Bset.t -> int * Engine.Fidelity.t
(** Governed cardinality: exact {!Bset.cardinality} under [ctx]; when the
    budget runs out and its policy allows degradation, retry once under a
    small fresh fuel-only budget (small sets stay exact even after the
    deadline) and otherwise fall back to {!card_estimate}, recording the
    degradation ({!Engine.Fidelity.note_degraded}).  With [degrade = Off]
    the {!Engine.Budget.Exhausted} exception propagates. *)

(** {1 Chamber-decomposed parametric counting}

    The scan-free path: decompose the parameter space into validity
    chambers once ({!Chamber}), then answer every concrete query by a
    quasi-polynomial evaluation.  See DESIGN.md, "Counting engine". *)

val card_param : ?ctx:Engine.Ctx.t -> Bset.t -> Chamber.t option
(** Chamber decomposition of a parametric basic set; [None] when the
    set is out of scope of the chamber engine (the caller should scan).
    Memoized process-wide and, with a [ctx] cache, persisted as a
    [symbolic/v1] entry.  Budget exhaustion propagates
    ({!Engine.Budget.Exhausted}) before anything is stored. *)

val card_at : ?pool:Engine.Pool.t -> ?ctx:Engine.Ctx.t -> Bset.t -> int array -> int
(** [card_at b values] is the cardinality of [b] at the given parameter
    values (length = number of parameters).  Evaluates the chamber
    decomposition in O(1) when one exists; falls back to the exact
    ground count of {!Bset.cardinality} otherwise (including when the
    budget expired mid-decomposition — the fallback's own metering
    re-raises if the budget really is spent).  Raises {!Overflow} when
    the exact value does not fit a native [int]. *)

val card_pset_at :
  ?pool:Engine.Pool.t -> ?ctx:Engine.Ctx.t -> Pset.t -> int array -> int
(** Parametric cardinality of a disjoint union: chamber path for a
    single disjunct, ground {!Pset.cardinality} otherwise. *)
