(** Chamber decomposition of parametric counting problems.

    For a basic set over parameters [p ∈ Z^np] and tuple dimensions
    [x ∈ Z^m], the counting function [p ↦ #{x : (p, x) ∈ S}] is
    piecewise quasi-polynomial: the parameter space splits into
    {e validity chambers} — polyhedra on which a single Ehrhart
    quasi-polynomial gives the count.  This module computes such a
    decomposition heuristically:

    - project the set onto the parameters with the Fourier–Motzkin
      tower (the rational shadow of the parameter domain [D]);
    - derive candidate chamber walls as resultants of same-side bound
      pairs of each counting level (where the binding lower/upper bound
      changes, the closed form changes);
    - split [D] along the walls and fit one {!Qpoly} per chamber by
      exact interpolation, validating every fit against the exact
      enumerator ({!Bset.cardinality}) at held-out and boundary points.

    The construction is {e sound by validation}: any shape the
    heuristics cannot certify returns [None] and callers fall back to
    the exact scan, so a successful decomposition is always safe to
    evaluate.  Results are memoized process-wide (shared across daemon
    requests) and persisted to the result cache as [symbolic/v1]
    entries when the context carries one; budget exhaustion raises
    {e before} the memo and the cache are updated, so degraded results
    are never stored. *)

type chamber = private { guard : Poly.t; count : Qpoly.t }
(** [guard] is a polyhedron over the [np] parameter columns; [count]
    gives the cardinality on parameter points inside it. *)

type t = private { np : int; chambers : chamber list }
(** Chambers are pairwise disjoint and cover the integer projection of
    the set onto its parameters; parameter points outside every guard
    have an empty instance (count 0). *)

val decompose : ?ctx:Engine.Ctx.t -> Bset.t -> t option
(** [decompose b] builds the chamber decomposition of [b], or [None]
    when the set is out of scope (division variables, no parameters,
    unbounded or too-high-dimensional tuples) or a fit cannot be
    validated.  The result is memoized on the canonical constraint
    system; memo hits tick [presburger.chamber_cache_hits], fresh
    builds add to [presburger.chambers_built].  With [ctx]: sampling
    and enumeration are metered against its budget
    ({!Engine.Budget.Exhausted} propagates, nothing is stored), and a
    result cache is consulted/populated with [symbolic/v1] entries. *)

val eval : t -> int array -> int
(** Count at a concrete parameter point (length [np]).  O(1): one
    guard lookup plus one quasi-polynomial evaluation.  Raises
    {!Linalg.Ints.Overflow} when the exact value overflows. *)

val n_chambers : t -> int

val clear_memo : unit -> unit
(** Drop the process-wide decomposition memo (tests and benchmarks). *)

val to_json : t -> Telemetry.Json.t
val of_json : Telemetry.Json.t -> t option

val pp : Format.formatter -> t -> unit
