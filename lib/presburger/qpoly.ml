(* Multivariate quasi-polynomials with periodic coefficients.

   Representation: one flat row-major coefficient tensor of size
   (degree+1)^np per residue class of the variables modulo the per-axis
   periods.  Fitting is tensor-product interpolation: sample f on the
   grid [class_anchor + p .* k], then interpolate axis by axis with the
   exact Vandermonde solver of {!Linalg.Fit} (interpolation is linear,
   so the axes commute).  A grid fit alone cannot reject a period that
   is too small — the samples of one class then mix several true
   residue classes and the Vandermonde system still "fits" them — so
   candidates are validated on held-out points beyond the grid. *)

module Q = Linalg.Q
module Ints = Linalg.Ints

type t = {
  np : int;
  degree : int;
  periods : int array;
  tables : Q.t array array;
}

let c_evals = Telemetry.counter "presburger.qpoly_evals"

let np t = t.np
let degree t = t.degree

let n_classes periods = Array.fold_left (fun acc p -> acc * p) 1 periods

let pow_int b e =
  let r = ref 1 in
  for _ = 1 to e do
    r := !r * b
  done;
  !r

let class_index periods residues =
  let idx = ref 0 in
  Array.iteri (fun i p -> idx := (!idx * p) + residues.(i)) periods;
  !idx

let const ~np c =
  {
    np;
    degree = 0;
    periods = Array.make np 1;
    tables = [| [| Q.of_int c |] |];
  }

let eval_q t v =
  if Array.length v <> t.np then invalid_arg "Qpoly.eval: arity mismatch";
  let d1 = t.degree + 1 in
  let residues = Array.mapi (fun i x -> Ints.fmod x t.periods.(i)) v in
  let tbl = t.tables.(class_index t.periods residues) in
  (* Horner along axis 0, recursing into sub-tensors for deeper axes *)
  let rec ev off len axis =
    if axis = t.np then tbl.(off)
    else begin
      let sub = len / d1 in
      let x = Q.of_int v.(axis) in
      let acc = ref (ev (off + (t.degree * sub)) sub (axis + 1)) in
      for k = t.degree - 1 downto 0 do
        acc := Q.add (Q.mul !acc x) (ev (off + (k * sub)) sub (axis + 1))
      done;
      !acc
    end
  in
  ev 0 (Array.length tbl) 0

let eval t v =
  Telemetry.tick c_evals;
  let q = eval_q t v in
  if not (Q.is_integer q) then
    invalid_arg
      (Format.asprintf "Qpoly.eval: non-integer value %a (fit bug)" Q.pp q);
  Q.to_int_exn q

let extent ~degree ~period = (period - 1) + (period * (degree + 3))

(* iterate over all tuples in Π [0 .. dims.(i)-1] *)
let iter_tuples dims f =
  let n = Array.length dims in
  let cur = Array.make n 0 in
  let rec go i = if i = n then f cur
    else
      for k = 0 to dims.(i) - 1 do
        cur.(i) <- k;
        go (i + 1)
      done
  in
  if Array.for_all (fun d -> d > 0) dims then go 0

(* interpolate one axis of a flat tensor in place: each line along
   [axis] holds d+1 values of a univariate polynomial at abscissae
   xs.(k); replace them with its coefficients (low degree first). *)
let interpolate_axis tbl ~np ~degree ~axis ~xs =
  let d1 = degree + 1 in
  let stride = ref 1 in
  for _ = axis + 1 to np - 1 do
    stride := !stride * d1
  done;
  let stride = !stride in
  let len = Array.length tbl in
  let ok = ref true in
  let base = ref 0 in
  while !ok && !base < len do
    if !base / stride mod d1 = 0 then begin
      let pts =
        List.init d1 (fun k -> (xs.(k), tbl.(!base + (k * stride))))
      in
      match Linalg.Fit.exact_polynomial ~degree pts with
      | None -> ok := false
      | Some coeffs ->
          for k = 0 to degree do
            tbl.(!base + (k * stride)) <- coeffs.(k)
          done
    end;
    incr base
  done;
  !ok

let fit ~degree ~periods ~anchor ~f () =
  let np = Array.length periods in
  if Array.length anchor <> np then invalid_arg "Qpoly.fit: arity mismatch";
  if degree < 0 || Array.exists (fun p -> p < 1) periods then
    invalid_arg "Qpoly.fit: bad degree or period";
  let d1 = degree + 1 in
  let classes = n_classes periods in
  let tables = Array.make classes [||] in
  let residues = Array.make np 0 in
  let class_ok = ref true in
  iter_tuples periods (fun r ->
      if !class_ok then begin
        Array.blit r 0 residues 0 np;
        (* smallest point >= anchor congruent to r modulo the periods *)
        let ca =
          Array.mapi
            (fun i a -> a + Ints.fmod (r.(i) - a) periods.(i))
            anchor
        in
        let tbl_len = pow_int d1 np in
        let tbl = Array.make tbl_len Q.zero in
        let pt = Array.make np 0 in
        iter_tuples (Array.make np d1) (fun k ->
            Array.iteri (fun i ki -> pt.(i) <- ca.(i) + (periods.(i) * ki)) k;
            let pos = ref 0 in
            Array.iter (fun ki -> pos := (!pos * d1) + ki) k;
            tbl.(!pos) <- Q.of_int (f pt));
        let axes_ok = ref true in
        for axis = 0 to np - 1 do
          if !axes_ok then begin
            let xs =
              Array.init d1 (fun k ->
                  Q.of_int (ca.(axis) + (periods.(axis) * k)))
            in
            if not (interpolate_axis tbl ~np ~degree ~axis ~xs) then
              axes_ok := false
          end
        done;
        if !axes_ok then tables.(class_index periods r) <- tbl
        else class_ok := false
      end);
  if not !class_ok then None
  else begin
    let cand = { np; degree; periods; tables } in
    (* held-out validation: per-axis extension past the grid, a diagonal
       corner, and two deterministic interior probes per class anchor.
       Points beyond the grid are what detect an under-estimated period. *)
    let check pt =
      match eval_q cand pt with
      | q -> Q.is_integer q && Q.to_int_exn q = f pt
      | exception Ints.Overflow -> false
    in
    let ok = ref true in
    iter_tuples periods (fun r ->
        if !ok then begin
          let ca =
            Array.mapi
              (fun i a -> a + Ints.fmod (r.(i) - a) periods.(i))
              anchor
          in
          let probe ks =
            let pt =
              Array.mapi (fun i ki -> ca.(i) + (periods.(i) * ki)) ks
            in
            if not (check pt) then ok := false
          in
          for axis = 0 to np - 1 do
            if !ok then begin
              let ks = Array.make np 0 in
              ks.(axis) <- degree + 1;
              probe ks;
              if !ok then begin
                ks.(axis) <- degree + 2;
                probe ks
              end
            end
          done;
          if !ok then probe (Array.make np (degree + 1));
          (* deterministic mixed probe: staggered offsets *)
          if !ok && np > 1 then
            probe (Array.init np (fun i -> (i + degree + 1) mod (degree + 3)))
        end);
    if !ok then Some cand else None
  end

(* ---- serialization (symbolic result-cache tier) ---- *)

module J = Telemetry.Json

let q_to_json q = J.Str (Printf.sprintf "%d/%d" (Q.num q) (Q.den q))

let q_of_json = function
  | J.Str s -> (
      match String.index_opt s '/' with
      | Some i -> (
          try
            Some
              (Q.make
                 (int_of_string (String.sub s 0 i))
                 (int_of_string
                    (String.sub s (i + 1) (String.length s - i - 1))))
          with _ -> None)
      | None -> ( try Some (Q.of_int (int_of_string s)) with _ -> None))
  | _ -> None

let to_json t =
  J.Obj
    [
      ("np", J.Int t.np);
      ("degree", J.Int t.degree);
      ("periods", J.Arr (Array.to_list (Array.map (fun p -> J.Int p) t.periods)));
      ( "tables",
        J.Arr
          (Array.to_list
             (Array.map
                (fun tbl ->
                  J.Arr (Array.to_list (Array.map q_to_json tbl)))
                t.tables)) );
    ]

let of_json j =
  let ( let* ) = Option.bind in
  let int_of = function J.Int i -> Some i | _ -> None in
  let* np = Option.bind (J.member "np" j) int_of in
  let* degree = Option.bind (J.member "degree" j) int_of in
  let* periods_l = Option.bind (J.member "periods" j) J.to_list in
  let* periods =
    List.fold_left
      (fun acc p ->
        let* acc = acc in
        let* p = int_of p in
        if p < 1 then None else Some (p :: acc))
      (Some []) periods_l
  in
  let periods = Array.of_list (List.rev periods) in
  let* tables_l = Option.bind (J.member "tables" j) J.to_list in
  let* tables =
    List.fold_left
      (fun acc tj ->
        let* acc = acc in
        let* cells = J.to_list tj in
        let* qs =
          List.fold_left
            (fun acc c ->
              let* acc = acc in
              let* q = q_of_json c in
              Some (q :: acc))
            (Some []) cells
        in
        Some (Array.of_list (List.rev qs) :: acc))
      (Some []) tables_l
  in
  let tables = Array.of_list (List.rev tables) in
  if
    np >= 0 && degree >= 0
    && Array.length periods = np
    && Array.length tables = n_classes periods
    && Array.for_all
         (fun tbl -> Array.length tbl = pow_int (degree + 1) np)
         tables
  then Some { np; degree; periods; tables }
  else None

let pp fmt t =
  Format.fprintf fmt "@[<hv>qpoly[np=%d deg=%d periods=%s classes=%d]@]" t.np
    t.degree
    (String.concat ","
       (Array.to_list (Array.map string_of_int t.periods)))
    (Array.length t.tables)
