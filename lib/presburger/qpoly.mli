(** Multivariate quasi-polynomials with periodic coefficients.

    A quasi-polynomial in [np] integer variables is a polynomial whose
    coefficients depend periodically on the variables: for each residue
    class [r] of the variables modulo per-axis periods [p_i], a single
    coefficient tensor applies.  Chamber-decomposed Ehrhart counting
    ({!Chamber}) produces one of these per validity chamber; evaluation
    is O((degree+1)^np) exact rational arithmetic — no scanning.

    Coefficients are exact rationals ({!Linalg.Q}); every evaluation at
    an integer point of the fitting domain yields an integer. *)

type t = private {
  np : int;  (** number of variables *)
  degree : int;  (** per-axis degree bound *)
  periods : int array;  (** per-axis periods, each >= 1; length [np] *)
  tables : Linalg.Q.t array array;
      (** one flat row-major coefficient tensor of size [(degree+1)^np]
          per residue class; class index is mixed-radix over [periods]
          with axis 0 most significant. *)
}

val np : t -> int
val degree : t -> int

val const : np:int -> int -> t
(** The constant quasi-polynomial (degree 0, all periods 1). *)

val eval_q : t -> int array -> Linalg.Q.t
(** Exact value at an integer point (length [np]).  Raises
    {!Linalg.Ints.Overflow} if the exact arithmetic overflows. *)

val eval : t -> int array -> int
(** Integer value at a point; ticks the [presburger.qpoly_evals]
    counter.  Raises [Invalid_argument] if the value is not an integer
    there (a fit bug) and {!Linalg.Ints.Overflow} on overflow. *)

val fit :
  degree:int ->
  periods:int array ->
  anchor:int array ->
  f:(int array -> int) ->
  unit ->
  t option
(** [fit ~degree ~periods ~anchor ~f ()] interpolates [f] on the sample
    grid [class_anchor + periods .* k], [k ∈ {0..degree}^np], one grid
    per residue class ([class_anchor] is the smallest point [>= anchor]
    in the class), then validates the candidate against [f] at held-out
    points beyond the grid (per-axis extensions, a diagonal, and
    deterministic interior probes — these catch an under-estimated
    period, which a Vandermonde fit on the grid alone cannot).  All
    probed points lie within [anchor + extent] per axis (see {!extent}).
    [None] when validation fails; exceptions from [f] propagate. *)

val extent : degree:int -> period:int -> int
(** Upper bound on the per-axis offset from [anchor] of any point
    sampled by {!fit} with these settings.  Callers use it to pick an
    anchor whose sample box lies inside a chamber. *)

val to_json : t -> Telemetry.Json.t
val of_json : Telemetry.Json.t -> t option
(** Serialization for the symbolic result-cache tier; [of_json] returns
    [None] on any shape mismatch (never raises). *)

val pp : Format.formatter -> t -> unit
