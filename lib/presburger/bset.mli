(** Basic integer sets and relations (single conjunction of constraints).

    A basic set is a conjunction of affine constraints over
    [params @ ins @ outs @ divs].  Division variables are existentially
    quantified; they are introduced by {!add_div} with their defining
    constraints, so projection onto the tuple dimensions is always exact.

    A basic {e map} is a basic set whose space has a non-empty input tuple.
    The same type covers both, as in isl. *)

type t = private { space : Space.t; n_div : int; poly : Poly.t }

type aff = { coefs : (int * int) list; const : int }
(** An affine expression [Σ c·x_i + const]; the [int] pairs are
    [(coefficient, variable index)] in the basic set's variable order
    (params, ins, outs, divs). *)

val universe : Space.t -> t
val of_poly : Space.t -> n_div:int -> Poly.t -> t

val space : t -> Space.t
val n_div : t -> int
val n_total : t -> int
(** All columns: [Space.n_vars space + n_div]. *)

val param_pos : t -> int -> int
val in_pos : t -> int -> int
val out_pos : t -> int -> int
val div_pos : t -> int -> int
(** Column index of the given parameter / input / output / div variable. *)

val add_eq : t -> aff -> t
(** Constrain [aff = 0]. *)

val add_ge : t -> aff -> t
(** Constrain [aff >= 0]. *)

val add_div : t -> num:aff -> den:int -> t * int
(** [add_div t ~num ~den] introduces a fresh existential [q = ⌊num/den⌋]
    (with [den > 0]) and returns its column index. *)

val intersect : t -> t -> t
(** Conjunction; spaces must agree in shape. *)

val fix_params : t -> int array -> t
(** Substitute concrete values for all parameters. *)

val inverse : t -> t
(** Swap input and output tuples of a map. *)

val domain : t -> t
(** Domain of a map, as a set (outputs become existential). *)

val range : t -> t
(** Range of a map, as a set (inputs become existential). *)

val compose : t -> t -> t
(** [compose a b] is [b ∘ a]: [{x -> z : ∃y. (x,y) ∈ a ∧ (y,z) ∈ b}]. *)

val product_domain : t -> t -> t
(** [product_domain a b] for maps [a : X -> Y], [b : X -> Z] is the map
    [X -> (Y,Z)] relating [x] to the concatenation of its images. *)

val deltas : t -> t
(** For a map with equal input/output arity: the set [{ y - x }]. *)

val to_set : t -> t
(** Forget the input tuple of a map by wrapping ins and outs into a single
    set tuple (the "flattened wrap" of isl). *)

val is_empty : t -> bool
val sample : t -> int array option
(** A point over the tuple dimensions (ins then outs), parameters must have
    been fixed. *)

val mem : t -> int array -> bool
(** Membership of a tuple-dimension point (params fixed, divs solved). *)

val lexmin : t -> int array option
val lexmax : t -> int array option
(** Lexicographic extrema of the tuple dimensions (params fixed). *)

val fold_points : t -> init:'a -> f:('a -> int array -> 'a) -> 'a
(** Enumerate tuple-dimension points in lexicographic order; params must be
    fixed.  The visited array is reused — copy if retained. *)

val cardinality : ?pool:Engine.Pool.t -> ?ctx:Engine.Ctx.t -> t -> int
(** Number of tuple-dimension points (params fixed; divs existential).
    Uses the closed-form counting path of {!Poly.count_points} and a
    process-wide memo keyed by the canonical constraint system, so
    repeated counts of the same polytope are free.  When a pool is
    available (via [?pool] — deprecated — or [ctx]), large scans are
    chunked across its workers; the result is identical either way.

    With a [ctx] carrying a budget or cancellation token the count is
    governed (see {!Poly.count_points}); exhaustion raises before the
    memo is updated, so the memo only ever holds exact counts. *)

val card : ?pool:Engine.Pool.t -> ?ctx:Engine.Ctx.t -> t -> int
(** Alias for {!cardinality}. *)

val clear_count_memo : unit -> unit
(** Drop all memoized cardinalities (mainly for tests and benchmarks). *)

val subtract : t -> t -> t list
(** [subtract a b]: the difference as a disjoint union of basic sets.
    Raises [Invalid_argument] if [b] has division variables (quantifier
    elimination is out of scope, as in the paper's PolyUFC-CM which removes
    redundant reuse polytopes before counting). *)

val gist_trivial : t -> t
(** Cheap cleanup: drop duplicate and trivially-true constraints. *)

val gist : t -> context:t -> t
(** [gist b ~context] drops every constraint of [b] that is implied by
    [context] (isl's gist): the result equals [b] on points of [context].
    Constraints whose negation requires quantifier elimination (i.e. when
    [b] carries division variables referenced by the constraint) are kept
    conservatively. *)

val bounding_box : t -> ((int option * int option) array) 
(** Per tuple dimension, the tightest rational-implied integer bounds
    ([None] = unbounded); parameters must be fixed. *)

val rename_tuples : ?in_name:string -> ?out_name:string -> t -> t

val pp : Format.formatter -> t -> unit
