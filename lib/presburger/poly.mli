(** Raw constraint systems over integer variables.

    A value of type {!t} represents the integer points [x ∈ Zⁿ] satisfying a
    conjunction of affine constraints [coef·x + const {=, >=} 0].  This is
    the computational core under {!Bset}: Fourier–Motzkin elimination,
    feasibility, lexicographic scanning, sampling, and lexmin/lexmax by
    branch and bound.

    Variables are identified by position [0 .. nvar-1]; the enclosing layer
    fixes their meaning (parameters first, then tuple dimensions, then
    existential division variables). *)

type cstr = { coef : int array; const : int; eq : bool }
(** [coef·x + const >= 0], or [= 0] when [eq]. [Array.length coef = nvar]. *)

type t = private { nvar : int; cstrs : cstr list }

exception Infeasible
(** Raised internally when constraint normalization proves emptiness. *)

exception Unbounded
(** Raised by scanning operations when a variable has no finite bound. *)

val make : int -> cstr list -> t
(** [make nvar cstrs] normalizes each constraint (gcd reduction with integer
    tightening of inequalities).  A constraint proving emptiness is kept in
    an always-false canonical form rather than raising. *)

val universe : int -> t
val nvar : t -> int
val constraints : t -> cstr list
val ge : int array -> int -> cstr
(** [ge coef const] is the inequality [coef·x + const >= 0]. *)

val eq : int array -> int -> cstr
(** [eq coef const] is the equality [coef·x + const = 0]. *)

val add_constraints : t -> cstr list -> t
val append : t -> t -> t
(** Conjunction of two systems over the same variables. *)

val mem : t -> int array -> bool
(** Point membership. *)

val insert_vars : t -> at:int -> count:int -> t
(** Insert [count] fresh unconstrained variables at position [at],
    shifting existing columns. *)

val remap : t -> int -> (int -> int) -> t
(** [remap t nvar' perm] rebuilds the system over [nvar'] variables where the
    old variable [i] becomes the new variable [perm i]. [perm] must be
    injective. *)

val fix_vars : t -> (int -> int option) -> t
(** [fix_vars t value] substitutes the constant [v] for every variable [i]
    with [value i = Some v] and drops those columns; the remaining variables
    keep their relative order. *)

val eliminate_var : t -> int -> t
(** Fourier–Motzkin elimination of one variable (the column remains but is
    unconstrained).  Exact over the rationals; a superset over the
    integers. *)

val eliminate_from : t -> int -> t
(** [eliminate_from t k] eliminates all variables with index [>= k]. *)

val rational_feasible : t -> bool
(** Sound emptiness check over the rationals: [false] means definitely
    empty; [true] means rationally feasible (integers may still be empty). *)

val remove_redundant : t -> t
(** Constraint-system minimization: merges opposite parallel inequalities
    (into an equality when they pin the affine form), then drops every
    inequality [c] such that [rest ∧ ¬c] is rationally infeasible over the
    integers ([¬c] being [coef·x + const <= -1]).  The integer point set is
    unchanged; rationally empty systems are returned untouched. *)

val fold_points :
  ?n_scan:int -> t -> init:'a -> f:('a -> int array -> 'a) -> 'a
(** Fold over integer points in lexicographic order of variables
    [0 .. n_scan-1] (default all).  When [n_scan < nvar], the remaining
    variables are treated existentially: each scanned prefix is visited at
    most once, if some completion satisfies the system.  The array passed to
    [f] has length [n_scan] and is reused between calls — copy it if
    retained.  Raises {!Unbounded} if a scanned variable has no finite
    bounds. *)

val iter_points : ?n_scan:int -> t -> f:(int array -> unit) -> unit

val count_points :
  ?pool:Engine.Pool.t ->
  ?budget:Engine.Budget.t ->
  ?cancel:Engine.Cancel.t ->
  ?n_scan:int ->
  t ->
  int
(** Number of points (of scanned-prefix projections when [n_scan] is
    given).  Unlike {!fold_points} this does not enumerate every point:
    after constraint minimization ({!remove_redundant}) it detects scan
    levels whose deeper bounds are decoupled from them and multiplies
    closed-form interval lengths instead of iterating (a box costs O(1),
    a triangular domain O(N)).  The result — including {!Unbounded}
    behavior — is identical to [count_points_naive].  When [pool] is given
    the outermost scanned dimension is chunked across its workers.

    Resource governance: with [budget]/[cancel], the slice loops meter
    one work unit per scanned point or counted slice (polled in batches
    of 1024) and raise {!Engine.Budget.Exhausted} /
    {!Engine.Cancel.Cancelled} — the count is then abandoned; callers
    with a degradation policy substitute an estimate
    ({!Count.card_gov}). *)

val count_points_naive : ?n_scan:int -> t -> int
(** Reference implementation: enumerate with {!fold_points} and count.
    Kept as the differential-testing and benchmarking baseline. *)

val is_empty : t -> bool
(** Exact integer emptiness (rational pre-check, then bounded search). *)

val sample : t -> int array option
(** Some integer point of the system, or [None]. *)

val lexmin : ?n_scan:int -> t -> int array option
(** Lexicographically smallest point of the projection onto the first
    [n_scan] variables (default all, treating none existentially). *)

val lexmax : ?n_scan:int -> t -> int array option

val var_bounds : t -> int -> (int option * int option)
(** [var_bounds t v] is [(lo, hi)]: the tightest integer bounds on variable
    [v] implied over the rationals after eliminating every other variable.
    [None] means unbounded in that direction. *)

val pp : Format.formatter -> t -> unit

val convex_hull : t -> t -> t
(** Closed convex hull of the union of the two systems (same [nvar]),
    over the rationals: every point of either argument satisfies the
    result, which is the tightest such polyhedron up to integer gcd
    tightening.  Computed by Fourier–Motzkin elimination of the
    Benoy–King lifted system (no vertex enumeration); the result is
    passed through {!remove_redundant}.  A rationally empty argument is
    absorbed ([convex_hull a empty = a]). *)
