exception Overflow

let add a b =
  let s = a + b in
  if (a >= 0) = (b >= 0) && (s >= 0) <> (a >= 0) then raise Overflow;
  s

let sub a b =
  let d = a - b in
  if (a >= 0) <> (b >= 0) && (d >= 0) <> (a >= 0) then raise Overflow;
  d

let mul a b =
  if a = 0 || b = 0 then 0
  else begin
    let p = a * b in
    if p / b <> a then raise Overflow;
    p
  end

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

let lcm a b = if a = 0 || b = 0 then 0 else abs (mul (a / gcd a b) b)

let fdiv a b =
  assert (b <> 0);
  let q = a / b and r = a mod b in
  if r <> 0 && (r < 0) <> (b < 0) then q - 1 else q

let cdiv a b =
  assert (b <> 0);
  let q = a / b and r = a mod b in
  if r <> 0 && (r < 0) = (b < 0) then q + 1 else q

let fmod a b = a - mul b (fdiv a b)

let range_count lo hi = if hi < lo then 0 else add (sub hi lo) 1

let pow b e =
  assert (e >= 0);
  (* check [e <= 1] before squaring, so a representable result never
     triggers a spurious overflow from one squaring step past the end *)
  let rec go acc b e =
    if e = 0 then acc
    else if e = 1 then mul acc b
    else if e land 1 = 1 then go (mul acc b) (mul b b) (e asr 1)
    else go acc (mul b b) (e asr 1)
  in
  go 1 b e

let binom n k =
  if k < 0 || k > n then 0
  else begin
    let k = min k (n - k) in
    let num = ref 1 in
    for i = 1 to k do
      num := mul !num (n - k + i) / i
    done;
    !num
  end
