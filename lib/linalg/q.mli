(** Exact rational numbers over native integers.

    Values are kept in canonical form: the denominator is strictly positive
    and [gcd num den = 1].  All operations are exact; overflow in the
    underlying integer arithmetic raises {!Ints.Overflow}. *)

type t = private { num : int; den : int }

val make : int -> int -> t
(** [make num den] is the canonical rational [num/den].
    Raises [Invalid_argument] if [den = 0] and {!Ints.Overflow} when
    canonicalization would negate [min_int]. *)

val of_int : int -> t
val zero : t
val one : t
val minus_one : t

val num : t -> int
val den : t -> int

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** [div a b] raises [Division_by_zero] if [b] is zero. *)

val neg : t -> t
val inv : t -> t
val abs : t -> t
val min : t -> t -> t
val max : t -> t -> t

val compare : t -> t -> int
val equal : t -> t -> bool
val sign : t -> int
val is_zero : t -> bool
val is_integer : t -> bool

val floor : t -> int
(** Greatest integer [<=] the rational. *)

val ceil : t -> int
(** Least integer [>=] the rational. *)

val to_int_exn : t -> int
(** The integer value; raises [Invalid_argument] naming the offending
    rational if it is not an integer. *)

val to_float : t -> float
val of_float_approx : ?max_den:int -> float -> t
(** Best rational approximation by continued fractions, denominator bounded
    by [max_den] (default [1_000_000]). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t
val ( ~- ) : t -> t
val ( = ) : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool
