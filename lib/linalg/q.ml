type t = { num : int; den : int }

(* [-min_int] is not representable: negating it would silently wrap *)
let checked_neg n = if n = min_int then raise Ints.Overflow else -n

let make num den =
  if den = 0 then invalid_arg "Q.make: zero denominator";
  let num, den = if den < 0 then (checked_neg num, checked_neg den) else (num, den) in
  let g = Ints.gcd num den in
  if g = 0 then { num = 0; den = 1 } else { num = num / g; den = den / g }

let of_int n = { num = n; den = 1 }
let zero = of_int 0
let one = of_int 1
let minus_one = of_int (-1)
let num q = q.num
let den q = q.den

(* reduce cross factors before multiplying to delay overflow *)
let add a b =
  let g = Ints.gcd a.den b.den in
  let da = a.den / g and db = b.den / g in
  let n = Ints.add (Ints.mul a.num db) (Ints.mul b.num da) in
  make n (Ints.mul a.den db)

let neg a = { a with num = checked_neg a.num }
let sub a b = add a (neg b)

let mul a b =
  let g1 = Ints.gcd a.num b.den and g2 = Ints.gcd b.num a.den in
  let n = Ints.mul (a.num / g1) (b.num / g2) in
  let d = Ints.mul (a.den / g2) (b.den / g1) in
  make n d

let inv a =
  if a.num = 0 then raise Division_by_zero;
  make a.den a.num

let div a b = mul a (inv b)
let abs a = if a.num < 0 then { a with num = checked_neg a.num } else a
let sign a = compare a.num 0
let is_zero a = a.num = 0
let is_integer a = a.den = 1

let compare a b =
  (* compare a.num * b.den with b.num * a.den without overflow via
     floating point guard then exact fallback *)
  match Ints.mul a.num b.den, Ints.mul b.num a.den with
  | x, y -> Stdlib.compare x y
  | exception Ints.Overflow ->
    Stdlib.compare (float_of_int a.num /. float_of_int a.den)
      (float_of_int b.num /. float_of_int b.den)

let equal a b = a.num = b.num && a.den = b.den
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b
let floor a = Ints.fdiv a.num a.den
let ceil a = Ints.cdiv a.num a.den

let to_int_exn a =
  if a.den <> 1 then
    invalid_arg (Printf.sprintf "Q.to_int_exn: %d/%d is not an integer" a.num a.den);
  a.num

let to_float a = float_of_int a.num /. float_of_int a.den

let of_float_approx ?(max_den = 1_000_000) x =
  if Float.is_nan x || Float.is_integer x then of_int (int_of_float x)
  else begin
    (* continued-fraction expansion with convergents p/q *)
    let neg = Stdlib.( < ) x 0.0 in
    let x = Float.abs x in
    let rec go x p0 q0 p1 q1 =
      let a = int_of_float (Float.floor x) in
      let p2 = Stdlib.( + ) (a * p1) p0 and q2 = Stdlib.( + ) (a * q1) q0 in
      if q2 > max_den then (p1, q1)
      else begin
        let frac = x -. Float.floor x in
        if Stdlib.( < ) frac 1e-12 then (p2, q2)
        else go (1.0 /. frac) p1 q1 p2 q2
      end
    in
    let p, q = go x 0 1 1 0 in
    let q = if q = 0 then 1 else q in
    make (if neg then -p else p) q
  end

let pp ppf a =
  if a.den = 1 then Format.fprintf ppf "%d" a.num
  else Format.fprintf ppf "%d/%d" a.num a.den

let to_string a = Format.asprintf "%a" pp a
let ( + ) = add
let ( - ) = sub
let ( * ) = mul
let ( / ) = div
let ( ~- ) = neg
let ( = ) = equal
let ( < ) a b = compare a b < 0
let ( <= ) a b = compare a b <= 0
let ( > ) a b = compare a b > 0
let ( >= ) a b = compare a b >= 0
