(** Integer utilities used throughout the polyhedral machinery.

    All functions operate on OCaml's native [int] (63-bit on 64-bit
    platforms).  Arithmetic that could overflow silently is provided in
    checked form and raises {!Overflow} instead of wrapping. *)

exception Overflow

val add : int -> int -> int
(** [add a b] is [a + b]; raises {!Overflow} on overflow. *)

val sub : int -> int -> int
(** [sub a b] is [a - b]; raises {!Overflow} on overflow. *)

val mul : int -> int -> int
(** [mul a b] is [a * b]; raises {!Overflow} on overflow. *)

val gcd : int -> int -> int
(** [gcd a b] is the non-negative greatest common divisor; [gcd 0 0 = 0]. *)

val lcm : int -> int -> int
(** Least common multiple, non-negative. Raises {!Overflow} if too large. *)

val fdiv : int -> int -> int
(** [fdiv a b] is the floor division [⌊a/b⌋]; requires [b <> 0]. *)

val cdiv : int -> int -> int
(** [cdiv a b] is the ceiling division [⌈a/b⌉]; requires [b <> 0]. *)

val fmod : int -> int -> int
(** [fmod a b] is [a - b * fdiv a b]; result has the sign of [b] or zero. *)

val range_count : int -> int -> int
(** [range_count lo hi] is the number of integers in [\[lo, hi\]]: [hi - lo
    + 1], or [0] when [hi < lo]; checked. *)

val pow : int -> int -> int
(** [pow b e] is [b{^e}] for [e >= 0]; checked. *)

val binom : int -> int -> int
(** [binom n k] is the binomial coefficient [C(n, k)]; 0 when [k < 0] or
    [k > n]. *)
