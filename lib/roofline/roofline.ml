open Poly_ir

type constants = {
  machine : Hwsim.Machine.t;
  t_fpu_ns : float;
  e_fpu_nj : float;
  p_fpu_hat_w : float;
  p_con_w : float;
  peak_gflops : float;
  peak_bw_gbps : float;
  b_dram_t : float;
  hit_cost_ns : float array;
  miss_lat_a : float;
  miss_lat_b : float;
  alpha_p : float;
  gamma_p : float;
  bw_per_ghz : float;
  bw_sat_gbps : float;
  dram_w_per_gbps : float;
}

type boundedness = CB | BB

let v = Ir.aff_var
let c = Ir.aff_const

let f64 name extent =
  { Ir.array_name = name; extents = [ c extent ]; elem_size = 8 }

(* A[i] = ((A[i] * 1.0001 + 0.25) * 0.9999 + ...): [flops_per_elem] ops *)
let flop_chain depth load =
  let rec build d acc =
    if d = 0 then acc
    else if d mod 2 = 0 then build (d - 1) (Ir.Bin (Ir.Mul, acc, Ir.Const 1.0001))
    else build (d - 1) (Ir.Bin (Ir.Add, acc, Ir.Const 0.25))
  in
  build depth load

(* repeated parallel sweeps over an array with [flops] ops per element *)
let sweep_kernel ~name ~elems ~reps ~flops =
  {
    Ir.prog_name = name;
    params = [];
    arrays = [ f64 "A" elems ];
    body =
      [
        Ir.loop ~parallel:true "r" ~lo:(c 0) ~hi:(c reps)
          [
            Ir.loop "i" ~lo:(c 0) ~hi:(c elems)
              [
                Ir.assign "s"
                  ~target:(Ir.write "A" [ v "i" ])
                  (flop_chain flops (Ir.read "A" [ v "i" ]));
              ];
          ];
      ];
  }

(* streaming triad over arrays far larger than the LLC *)
let triad_kernel ~elems ~reps =
  {
    Ir.prog_name = "triad";
    params = [];
    arrays = [ f64 "A" elems; f64 "B" elems; f64 "C" elems ];
    body =
      [
        Ir.loop ~parallel:true "r" ~lo:(c 0) ~hi:(c reps)
          [
            Ir.loop "i" ~lo:(c 0) ~hi:(c elems)
              [
                Ir.assign "s"
                  ~target:(Ir.write "A" [ v "i" ])
                  (Ir.Bin
                     ( Ir.Add,
                       Ir.read "B" [ v "i" ],
                       Ir.Bin (Ir.Mul, Ir.Const 3.0, Ir.read "C" [ v "i" ]) ));
              ];
          ];
      ];
  }

(* line-strided walk: every access is an LLC miss (array >> LLC) *)
let chase_kernel ~lines ~reps ~line_elems =
  {
    Ir.prog_name = "chase";
    params = [];
    arrays = [ f64 "A" (lines * line_elems) ];
    body =
      [
        Ir.loop ~parallel:true "r" ~lo:(c 0) ~hi:(c reps)
          [
            Ir.loop "i" ~lo:(c 0) ~hi:(c lines)
              [
                Ir.assign "s"
                  ~target:(Ir.write "A" [ Ir.aff_scale line_elems (v "i") ])
                  (Ir.Bin
                     ( Ir.Add,
                       Ir.read "A" [ Ir.aff_scale line_elems (v "i") ],
                       Ir.Const 1.0 ));
              ];
          ];
      ];
  }

let run m ~f_u prog =
  Hwsim.Sim.run_one
    (Hwsim.Sim.config ~machine:m ~uncore:(`Fixed f_u)
       [ Hwsim.Sim.tenant ~name:"microbench" prog ])

let microbench (m : Hwsim.Machine.t) =
  let fmax = m.Hwsim.Machine.uncore_max_ghz in
  let line = Hwsim.Machine.line_bytes m in
  let line_elems = line / 8 in
  let caches = Array.of_list m.Hwsim.Machine.caches in
  let n_levels = Array.length caches in
  let llc_bytes = caches.(n_levels - 1).Hwsim.Machine.size_bytes in
  (* --- flop kernel: tiny footprint, deep flop chains --- *)
  let flop_prog =
    sweep_kernel ~name:"flops" ~elems:(caches.(0).Hwsim.Machine.size_bytes / 16)
      ~reps:512 ~flops:16
  in
  let fo = run m ~f_u:fmax flop_prog in
  let omega = float_of_int fo.Hwsim.Sim.flops in
  let t_fpu_ns = fo.Hwsim.Sim.time_s *. 1e9 /. omega in
  let e_fpu_nj = fo.Hwsim.Sim.energy_j *. 1e9 /. omega in
  let p_con_w = fo.Hwsim.Sim.zones.Hwsim.Sim.static_j /. fo.Hwsim.Sim.time_s in
  let p_fpu_hat_w = fo.Hwsim.Sim.avg_power_w -. p_con_w in
  let peak_gflops = fo.Hwsim.Sim.achieved_gflops in
  (* --- streaming kernel swept over uncore frequencies --- *)
  let triad =
    triad_kernel ~elems:(4 * llc_bytes / 8) ~reps:2
  in
  let freqs = Hwsim.Machine.uncore_freqs m in
  let sweep =
    List.map
      (fun f ->
        let o = run m ~f_u:f triad in
        (f, o))
      freqs
  in
  let bws = List.map (fun (f, o) -> (f, o.Hwsim.Sim.achieved_bw_gbps)) sweep in
  let peak_bw_gbps =
    List.fold_left (fun acc (_, bw) -> Float.max acc bw) 0.0 bws
  in
  (* bandwidth curve: slope from the sub-saturation region *)
  let knee = 0.9 *. peak_bw_gbps in
  let low_pts =
    List.filter_map (fun (f, bw) -> if bw < knee then Some (f, bw) else None) bws
  in
  let bw_per_ghz, _ =
    match low_pts with
    | _ :: _ :: _ -> Linalg.Fit.linear low_pts
    | _ -> (peak_bw_gbps /. fmax, 0.0)
  in
  let bw_sat_gbps = peak_bw_gbps in
  (* DRAM transfer power per achieved GB/s (RAPL dram zone on the triad) *)
  let dram_w_per_gbps, _ =
    Linalg.Fit.linear
      (List.map
         (fun (_f, o) ->
           ( o.Hwsim.Sim.achieved_bw_gbps,
             o.Hwsim.Sim.zones.Hwsim.Sim.dram_j /. o.Hwsim.Sim.time_s ))
         sweep)
  in
  (* uncore power fit (RAPL uncore zone) *)
  let alpha_p, gamma_p =
    Linalg.Fit.linear
      (List.map
         (fun (f, o) ->
           (f, o.Hwsim.Sim.zones.Hwsim.Sim.uncore_j /. o.Hwsim.Sim.time_s))
         sweep)
  in
  (* --- miss penalty curve M^t(f) = a/f + b from the line chase --- *)
  let chase = chase_kernel ~lines:(4 * llc_bytes / line) ~reps:2 ~line_elems in
  let chase_pts =
    List.filter_map
      (fun f ->
        let o = run m ~f_u:f chase in
        let misses = float_of_int o.Hwsim.Sim.dram_lines in
        if misses > 0.0 then
          (* remove the compute component *)
          let per_miss =
            ((o.Hwsim.Sim.time_s *. 1e9)
            -. (float_of_int o.Hwsim.Sim.flops *. t_fpu_ns))
            /. misses
          in
          Some (f, per_miss)
        else None)
      [ m.Hwsim.Machine.uncore_min_ghz;
        (m.Hwsim.Machine.uncore_min_ghz +. fmax) /. 2.0;
        fmax ]
  in
  let miss_lat_a, miss_lat_b = Linalg.Fit.inverse_plus_const chase_pts in
  (* --- per-level hit costs ---
     Line-strided sweep over a footprint resident in the target level,
     accumulating into a scalar: per iteration the accesses are
     read S (L1), read A[line·i] (target level), write S (L1), so the
     measured per-access cost m_i satisfies m_i = (2·t_L1 + t_i) / 3 and
     the chain is solved level by level. *)
  let level_sweep ~lines ~reps =
    {
      Ir.prog_name = "hitcost";
      params = [];
      arrays = [ f64 "A" (lines * line_elems); f64 "S" 1 ];
      body =
        [
          Ir.loop ~parallel:true "r" ~lo:(c 0) ~hi:(c reps)
            [
              Ir.loop "i" ~lo:(c 0) ~hi:(c lines)
                [
                  Ir.assign "s"
                    ~target:(Ir.write "S" [ c 0 ])
                    (Ir.Bin
                       ( Ir.Add,
                         Ir.read "S" [ c 0 ],
                         Ir.read "A" [ Ir.aff_scale line_elems (v "i") ] ));
                ];
            ];
        ];
    }
  in
  let measured =
    Array.init n_levels (fun i ->
        let level_lines g = g.Hwsim.Machine.size_bytes / line in
        let lines =
          if i = 0 then max 4 (level_lines caches.(0) / 2)
          else
            min (level_lines caches.(i) / 2) (2 * level_lines caches.(i - 1))
        in
        let reps = max 4 (400_000 / lines) in
        let o = run m ~f_u:fmax (level_sweep ~lines ~reps) in
        let accesses = float_of_int (3 * reps * lines) in
        let t_mem =
          (o.Hwsim.Sim.time_s *. 1e9)
          -. (float_of_int o.Hwsim.Sim.flops *. t_fpu_ns)
        in
        t_mem /. accesses)
  in
  let hit_cost_ns = Array.make n_levels 0.0 in
  let t_l1 = measured.(0) in
  hit_cost_ns.(0) <- Float.max 0.005 t_l1;
  for i = 1 to n_levels - 1 do
    hit_cost_ns.(i) <-
      Float.max hit_cost_ns.(i - 1) ((3.0 *. measured.(i)) -. (2.0 *. t_l1))
  done;
  let b_dram_t = peak_gflops /. peak_bw_gbps in
  {
    machine = m;
    t_fpu_ns;
    e_fpu_nj;
    p_fpu_hat_w;
    p_con_w;
    peak_gflops;
    peak_bw_gbps;
    b_dram_t;
    hit_cost_ns;
    miss_lat_a;
    miss_lat_b;
    alpha_p;
    gamma_p;
    bw_per_ghz;
    bw_sat_gbps;
    dram_w_per_gbps;
  }

let characterize consts ~oi = if oi >= consts.b_dram_t then CB else BB

let dram_bw_at consts ~f_u =
  Float.min consts.bw_sat_gbps (consts.bw_per_ghz *. f_u)

let miss_latency_ns consts ~f_u = (consts.miss_lat_a /. f_u) +. consts.miss_lat_b
let uncore_power_at consts ~f_u = (consts.alpha_p *. f_u) +. consts.gamma_p

let pp_boundedness ppf = function
  | CB -> Format.fprintf ppf "CB"
  | BB -> Format.fprintf ppf "BB"

let pp ppf k =
  Format.fprintf ppf
    "@[<v>rooflines for %s:@,\
     t_FPU=%.4f ns  e_FPU=%.3f nJ  p̂_FPU=%.2f W  p_con=%.2f W@,\
     peak=%.2f GFLOP/s  peak BW=%.2f GB/s  B^t_DRAM=%.3f FpB@,\
     M^t(f)=%.1f/f+%.1f ns  P_unc(f)=%.2f·f+%.2f W  BW(f)=min(%.2f·f, %.2f)@,\
     hit costs: %a ns@]"
    k.machine.Hwsim.Machine.name k.t_fpu_ns k.e_fpu_nj k.p_fpu_hat_w k.p_con_w
    k.peak_gflops k.peak_bw_gbps k.b_dram_t k.miss_lat_a k.miss_lat_b
    k.alpha_p k.gamma_p k.bw_per_ghz k.bw_sat_gbps
    (Format.pp_print_array
       ~pp_sep:(fun f () -> Format.fprintf f ", ")
       (fun f x -> Format.fprintf f "%.2f" x))
    k.hit_cost_ns
