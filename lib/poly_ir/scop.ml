open Presburger

type stmt_info = {
  stmt : Ir.stmt;
  iter_vars : string list;
  domain : Bset.t;
  beta : int list;
  access_maps : (Ir.access * Bset.t) list;
  parallel_flags : bool list;
}

type t = { prog : Ir.t; stmt_infos : stmt_info list }

(* convert an Ir.aff to a Bset.aff given name->column environments *)
let bset_aff b ~vars ~params (a : Ir.aff) =
  let col_of_var v =
    match List.assoc_opt v vars with
    | Some c -> c
    | None -> invalid_arg ("Scop: unbound loop variable " ^ v)
  in
  let col_of_param p =
    match List.assoc_opt p params with
    | Some c -> c
    | None -> invalid_arg ("Scop: unbound parameter " ^ p)
  in
  ignore b;
  {
    Bset.coefs =
      List.map (fun (v, c) -> (c, col_of_var v)) a.Ir.var_coefs
      @ List.map (fun (p, c) -> (c, col_of_param p)) a.Ir.param_coefs;
    const = a.Ir.const;
  }

(* iteration domain of a statement under the given loop stack
   (innermost first in [stack]); [conds] carries the affine guards of the
   enclosing branches (negated guards for else branches are restricted to
   single-condition branches, cf. [extract]) *)
let domain_of_stack prog stack conds =
  let stack = List.rev stack in
  (* outermost first *)
  let iter_vars = List.map (fun (l : Ir.loop) -> l.Ir.var) stack in
  let space =
    Space.set_space ~params:prog.Ir.params ~name:"S" iter_vars
  in
  let b = Bset.universe space in
  let params = List.mapi (fun i p -> (p, Bset.param_pos b i)) prog.Ir.params in
  let vars = List.mapi (fun i v -> (v, Bset.out_pos b i)) iter_vars in
  let add_bounds b (l : Ir.loop) =
    let vcol = List.assoc l.Ir.var vars in
    (* v >= each lower bound *)
    let b =
      List.fold_left
        (fun b lo ->
          let a = bset_aff b ~vars ~params lo in
          Bset.add_ge b
            { Bset.coefs = (1, vcol) :: List.map (fun (c, v) -> (-c, v)) a.Bset.coefs;
              const = -a.Bset.const })
        b l.Ir.lo
    in
    (* v <= each upper bound - 1 *)
    let b =
      List.fold_left
        (fun b hi ->
          let a = bset_aff b ~vars ~params hi in
          Bset.add_ge b
            { Bset.coefs = (-1, vcol) :: a.Bset.coefs;
              const = a.Bset.const - 1 })
        b l.Ir.hi
    in
    (* stride: exists k >= 0 with v = lo + step·k, i.e. (v - lo) mod step = 0 *)
    if l.Ir.step = 1 then b
    else begin
      let lo = List.hd l.Ir.lo in
      let alo = bset_aff b ~vars ~params lo in
      let diff =
        { Bset.coefs = (1, vcol) :: List.map (fun (c, v) -> (-c, v)) alo.Bset.coefs;
          const = -alo.Bset.const }
      in
      let b, q = Bset.add_div b ~num:diff ~den:l.Ir.step in
      (* v - lo = step·q exactly *)
      Bset.add_eq b
        { Bset.coefs = (-l.Ir.step, q) :: diff.Bset.coefs; const = diff.Bset.const }
    end
  in
  let b = List.fold_left add_bounds b stack in
  (* enclosing branch guards *)
  let b =
    List.fold_left
      (fun b (c : Ir.cond) ->
        let a = bset_aff b ~vars ~params c.Ir.cond_aff in
        if c.Ir.cond_eq then Bset.add_eq b a else Bset.add_ge b a)
      b conds
  in
  (iter_vars, b)

let access_map prog iter_vars (a : Ir.access) =
  let out_dims = List.mapi (fun i _ -> Printf.sprintf "a%d" i) a.Ir.indices in
  let space =
    Space.map_space ~params:prog.Ir.params ~in_name:"S" ~out_name:a.Ir.array
      iter_vars out_dims
  in
  let b = Bset.universe space in
  let params = List.mapi (fun i p -> (p, Bset.param_pos b i)) prog.Ir.params in
  let vars = List.mapi (fun i v -> (v, Bset.in_pos b i)) iter_vars in
  List.fold_left
    (fun (b, k) idx ->
      let av = bset_aff b ~vars ~params idx in
      let b =
        Bset.add_eq b
          { Bset.coefs = (1, Bset.out_pos b k) :: List.map (fun (c, v) -> (-c, v)) av.Bset.coefs;
            const = -av.Bset.const }
      in
      (b, k + 1))
    (b, 0) a.Ir.indices
  |> fst

let extract prog =
  (match Ir.validate prog with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Scop.extract: " ^ msg));
  let infos = ref [] in
  (* branches are transparent to the 2d+1 beta numbering: their children
     take consecutive positions at the enclosing depth (a branch adds no
     iteration dimension), while contributing their guards to the domain *)
  let rec walk stack beta_rev pflags conds counter items =
    List.iter
      (fun item ->
        match item with
        | Ir.Stmt s ->
          let pos = !counter in
          incr counter;
          let iter_vars, domain = domain_of_stack prog stack conds in
          let access_maps =
            List.map
              (fun a -> (a, access_map prog iter_vars a))
              (Ir.accesses_of_stmt s)
          in
          infos :=
            {
              stmt = s;
              iter_vars;
              domain;
              beta = List.rev (pos :: beta_rev);
              access_maps;
              parallel_flags = List.rev pflags;
            }
            :: !infos
        | Ir.Loop l ->
          let pos = !counter in
          incr counter;
          walk (l :: stack) (pos :: beta_rev) (l.Ir.parallel :: pflags) conds
            (ref 0) l.Ir.body
        | Ir.If b ->
          walk stack beta_rev pflags (conds @ b.Ir.conds) counter b.Ir.then_;
          (* the else branch needs the negated guard; exact negation of a
             conjunction is a disjunction, so we support the common
             single-condition case and over-approximate otherwise *)
          (match (b.Ir.conds, b.Ir.else_) with
          | _, [] -> ()
          | [ c ], _ when not c.Ir.cond_eq ->
            let neg =
              {
                Ir.cond_aff =
                  Ir.aff_sub (Ir.aff_const (-1)) c.Ir.cond_aff;
                cond_eq = false;
              }
            in
            walk stack beta_rev pflags (conds @ [ neg ]) counter b.Ir.else_
          | _, _ ->
            (* over-approximate: else statements keep the outer domain *)
            walk stack beta_rev pflags conds counter b.Ir.else_))
      items
  in
  walk [] [] [] [] (ref 0) prog.Ir.body;
  { prog; stmt_infos = List.rev !infos }

let find_stmt t name =
  match
    List.find_opt (fun i -> i.stmt.Ir.stmt_name = name) t.stmt_infos
  with
  | Some i -> i
  | None -> raise Not_found

let common_depth a b =
  let rec go ba bb k =
    match (ba, bb) with
    | ca :: ra, cb :: rb when ca = cb && ra <> [] && rb <> [] ->
      go ra rb (k + 1)
    | _ -> k
  in
  go a.beta b.beta 0

let max_depth t =
  List.fold_left
    (fun acc i -> max acc (List.length i.iter_vars))
    0 t.stmt_infos

let schedule_map t info =
  let d = List.length info.iter_vars in
  let dmax = max_depth t in
  let time_dims = (2 * dmax) + 1 in
  let out_dims = List.init time_dims (Printf.sprintf "t%d") in
  let space =
    Space.map_space ~params:t.prog.Ir.params ~in_name:"S" ~out_name:"T"
      info.iter_vars out_dims
  in
  let b = Bset.universe space in
  let beta = Array.of_list info.beta in
  let rec constrain b k =
    if k >= time_dims then b
    else begin
      let tcol = Bset.out_pos b k in
      let b =
        if k mod 2 = 0 then begin
          (* constant position; past the statement depth pad with 0 *)
          let level = k / 2 in
          let c = if level <= d then beta.(level) else 0 in
          Bset.add_eq b { Bset.coefs = [ (1, tcol) ]; const = -c }
        end
        else begin
          let level = (k - 1) / 2 in
          if level < d then
            Bset.add_eq b
              { Bset.coefs = [ (1, tcol); (-1, Bset.in_pos b level) ]; const = 0 }
          else Bset.add_eq b { Bset.coefs = [ (1, tcol) ]; const = 0 }
        end
      in
      constrain b (k + 1)
    end
  in
  constrain b 0

let param_values_array info ~param_values =
  let prog_params = Space.((Bset.space info.domain).params) in
  Array.map
    (fun p ->
      match List.assoc_opt p param_values with
      | Some v -> v
      | None -> invalid_arg ("Scop: missing value for parameter " ^ p))
    prog_params

let domain_cardinality ?pool ?ctx _t info ~param_values =
  let ctx = Engine.Ctx.of_legacy ?pool ctx in
  (* chamber-decomposed counting: O(1) quasi-polynomial evaluation when
     the parametric domain admits chambers, exact ground scan otherwise *)
  Count.card_at ~ctx info.domain (param_values_array info ~param_values)

let flop_count ?pool ?ctx t ~param_values =
  let ctx = Engine.Ctx.of_legacy ?pool ctx in
  List.fold_left
    (fun acc info ->
      let card = domain_cardinality ~ctx t info ~param_values in
      acc + (Ir.flops_of_expr info.stmt.Ir.rhs * card))
    0 t.stmt_infos

let pp_isl ppf t =
  Format.fprintf ppf "@[<v># SCoP of %s@," t.prog.Ir.prog_name;
  if t.prog.Ir.params <> [] then
    Format.fprintf ppf "# parameters: %s@," (String.concat ", " t.prog.Ir.params);
  List.iter
    (fun info ->
      Format.fprintf ppf "@,statement %s:@," info.stmt.Ir.stmt_name;
      Format.fprintf ppf "  domain   : %s@,"
        (Presburger.Syntax.bset_to_string info.domain);
      List.iter
        (fun ((a : Ir.access), m) ->
          Format.fprintf ppf "  access %s: %s@,"
            (match a.Ir.kind with Ir.Read -> "R" | Ir.Write -> "W")
            (Presburger.Syntax.bset_to_string m))
        info.access_maps;
      Format.fprintf ppf "  schedule : %s@,"
        (Presburger.Syntax.bset_to_string (schedule_map t info)))
    t.stmt_infos;
  Format.fprintf ppf "@]"

let export_isl t = Format.asprintf "%a" pp_isl t

let flop_count_sym ?pool ?ctx t =
  let ctx = Engine.Ctx.of_legacy ?pool ctx in
  match t.prog.Ir.params with
  | [ p ] ->
    Count.interpolate ~ctx
      ~count:(fun n -> flop_count ~ctx t ~param_values:[ (p, n) ])
      ()
  | _ -> None
