(** Extraction of the polyhedral representation from the loop AST.

    This is the PET / OpenSCoP substitute (step 2 of Fig. 3): every
    statement gets an iteration domain (a {!Presburger.Bset.t}), affine
    access relations, and a "2d+1" schedule that encodes the AST position.
    The paper's cache model and dependence analysis consume this form. *)

open Presburger

type stmt_info = {
  stmt : Ir.stmt;
  iter_vars : string list;  (** enclosing loop variables, outermost first *)
  domain : Bset.t;
      (** set over [iter_vars], parametric in the program parameters *)
  beta : int list;
      (** the "2d+1" schedule constants [c₀; c₁; …; c_d]: [c_k] is the
          statement's sequential position among the items at depth [k] *)
  access_maps : (Ir.access * Bset.t) list;
      (** one map [iteration -> array indices] per access, in
          {!Ir.accesses_of_stmt} order *)
  parallel_flags : bool list;
      (** per enclosing loop: was it marked parallel *)
}

type t = {
  prog : Ir.t;
  stmt_infos : stmt_info list;  (** in program (textual) order *)
}

val extract : Ir.t -> t
(** Raises [Invalid_argument] if the program does not validate. *)

val find_stmt : t -> string -> stmt_info

val common_depth : stmt_info -> stmt_info -> int
(** Number of loops shared by the two statements (length of the common
    prefix of their AST paths, judged by the beta constants). *)

val schedule_map : t -> stmt_info -> Bset.t
(** The 2d+1 schedule as an explicit relation
    [iteration -> time], time dimensions interleaving position constants
    and iteration variables, padded to the program's maximal depth. *)

val flop_count :
  ?pool:Engine.Pool.t ->
  ?ctx:Engine.Ctx.t ->
  t ->
  param_values:(string * int) list ->
  int
(** Total arithmetic operations [Ω = Σ_s ω_s · |D_s|] (Sec. IV-C), counting
    domain cardinalities with the exact (closed-form) counter.  Governed
    by [ctx]'s budget/cancellation (see {!Presburger.Bset.cardinality});
    [?pool] is the deprecated pre-[Ctx] spelling. *)

val flop_count_sym :
  ?pool:Engine.Pool.t -> ?ctx:Engine.Ctx.t -> t -> Count.quasi_poly option
(** Symbolic flop count for single-parameter programs, via Ehrhart
    interpolation (the barvinok path). [None] if the program has more or
    fewer than one parameter or interpolation fails. *)

val domain_cardinality :
  ?pool:Engine.Pool.t ->
  ?ctx:Engine.Ctx.t ->
  t ->
  stmt_info ->
  param_values:(string * int) list ->
  int
(** Exact iteration count of one statement's domain at concrete parameter
    values.  Backed by the chamber decomposition ({!Presburger.Count.card_at}):
    when the parametric domain admits chambers the answer is an O(1)
    quasi-polynomial evaluation off the warm memo (or the [symbolic/v1]
    result-cache tier when [ctx] carries a cache); otherwise an exact
    governed scan. *)

val pp_isl : Format.formatter -> t -> unit
(** Dump the SCoP in isl notation (the OpenSCoP-exchange substitute): per
    statement its iteration domain, every access relation tagged R/W, and
    the 2d+1 schedule map.  The output's sets and maps re-parse with
    {!Presburger.Syntax}. *)

val export_isl : t -> string
