(** PolyUFC-CM: the approximate set-associative cache model (Sec. IV).

    For each cache level independently (write-allocate, write-through:
    level [i+1] sees level [i]'s misses plus all writes), the model
    classifies every statically-enumerated access as a {e compulsory/cold}
    miss (first touch of the line — the cardinality of the paper's
    [COLDMISS = lexmin(A⁻¹ ∘ S) ∘ S⁻¹] relation), a {e capacity/conflict}
    miss (per-set reuse distance ≥ associativity [k], the paper's
    [M = {RD > k·ℓ/e}] count), or a hit.

    The instance stream is enumerated from the polyhedral representation in
    schedule order; the symbolic counting the paper delegates to barvinok
    is performed by exact enumeration here, with Ehrhart interpolation
    available for the polynomial quantities (flop count Ω, cold misses).

    Paper assumptions kept: no prefetching, cold initial caches,
    homogeneous associativity per level, and the OpenMP heuristic that
    divides sequential miss counts by the thread count for loop-parallel
    programs (Sec. IV-B). *)

type assoc_mode =
  | Set_associative  (** per-set LRU with the level's true associativity *)
  | Fully_associative  (** one LRU over the level's full line capacity *)

type level_counts = {
  level_name : string;
  presented : int;  (** accesses seen by this level (write-through) *)
  cold : int;
  capacity_conflict : int;
  hits : int;
  demand_hits : int;
      (** hits on the demand (miss-refill) path — excludes write-through
          forwards, which are buffered and cost no latency; this is the hit
          count the timing model (Eqn. 4) consumes *)
}

type stmt_counts = {
  stmt_levels : level_counts array;
  stmt_flops : int;
  stmt_oi : float;  (** per-statement operational intensity *)
}

type result = {
  machine : Hwsim.Machine.t;
  mode : assoc_mode;
  levels : level_counts array;
  per_stmt : (string * stmt_counts) list;
      (** per-statement breakdown, in program order — used for the paper's
          min/max cap aggregation over the statements of a top-level op *)
  threads_divisor : int;  (** OpenMP heuristic divisor applied *)
  miss_llc : float;  (** total LLC misses after the thread heuristic *)
  q_dram_bytes : float;  (** Q_DRAM = Miss_LLC · ℓ (Sec. IV-C) *)
  flops : int;  (** Ω *)
  oi : float;  (** I = Ω / Q_DRAM, FLOP per byte (Eqn. 1) *)
  hit_ratios : float array;  (** ρ^h per level *)
  miss_ratios : float array;  (** ρ^m per level *)
  fidelity : Engine.Fidelity.t;
      (** [Exact] from {!analyze}; [Degraded] from {!analyze_approx} (and
          from {!analyze_gov} after a budget-triggered fallback) *)
}

val analyze :
  ?ctx:Engine.Ctx.t ->
  ?mode:assoc_mode ->
  ?apply_thread_heuristic:bool ->
  ?set_sampling:int ->
  machine:Hwsim.Machine.t ->
  Poly_ir.Ir.t ->
  param_values:(string * int) list ->
  result
(** Run the model.  The thread heuristic applies only when the program
    contains a loop marked [parallel] (default on).

    With a [ctx] carrying a budget or cancellation token, every simulated
    access is metered (in batches of 8192) and the analysis raises
    {!Engine.Budget.Exhausted} / {!Engine.Cancel.Cancelled} when the
    budget trips — use {!analyze_gov} to fall back to the degraded
    estimator instead.

    [set_sampling] (default 1 = exact) enables Bullseye-style set sampling
    (Shah et al., TACO 2022 — the paper's scalability companion) at the
    {e last} cache level: only LLC sets whose index is divisible by the
    factor are simulated, and LLC counters are extrapolated by the same
    factor (shallower levels stay exact so the write-through presentation
    chain is unbiased).  Miss behaviour is near-uniform across sets for
    affine programs, so accuracy degrades gracefully while LLC model cost
    drops by roughly the factor.  [Fully_associative] mode ignores the
    option. *)

val analyze_approx :
  ?ctx:Engine.Ctx.t ->
  ?mode:assoc_mode ->
  ?apply_thread_heuristic:bool ->
  machine:Hwsim.Machine.t ->
  Poly_ir.Ir.t ->
  param_values:(string * int) list ->
  result
(** Degraded static estimator: the same [result] shape as {!analyze}, but
    computed from polyhedral footprints (governed domain/range
    cardinalities, contiguous-line cold estimates, a capacity heuristic
    from footprint vs. level capacity) instead of enumerating the access
    stream.  Bounded work even after the caller's deadline: each
    cardinality runs under a small fresh fuel-only budget (only [ctx]'s
    cancellation token is inherited).  Always returns
    [fidelity = Degraded]; accuracy tolerances are documented in
    DESIGN.md. *)

val analyze_gov :
  ?ctx:Engine.Ctx.t ->
  ?mode:assoc_mode ->
  ?apply_thread_heuristic:bool ->
  ?set_sampling:int ->
  machine:Hwsim.Machine.t ->
  Poly_ir.Ir.t ->
  param_values:(string * int) list ->
  result
(** Governed analysis: {!analyze} under [ctx]; on budget exhaustion with
    a degradation policy of [Interp], falls back to {!analyze_approx}.
    With [degrade = Off] the exception propagates. *)

val total_misses : level_counts -> int

val cold_misses_symbolic :
  ?pool:Engine.Pool.t ->
  ?ctx:Engine.Ctx.t ->
  machine:Hwsim.Machine.t ->
  level:int ->
  Poly_ir.Ir.t ->
  Presburger.Count.quasi_poly option
(** Ehrhart quasi-polynomial for the level's cold misses as a function of a
    single program parameter (cold misses = distinct lines touched, an
    Ehrhart-countable quantity).  [None] for multi-parameter programs or
    failed fits.  When a pool is available (via [?pool] — deprecated — or
    [ctx]), sample instances are analyzed in parallel. *)

val access_map_with_cache_dims :
  machine:Hwsim.Machine.t ->
  level:int ->
  Poly_ir.Scop.stmt_info ->
  Poly_ir.Ir.access ->
  layout:Poly_ir.Layout.t ->
  param_values:(string * int) list ->
  Presburger.Bset.t
(** The paper's [A_c]: the symbolic access relation extended with [line]
    and [set] output dimensions
    ([line = ⌊(base + linear·e)/ℓ⌋], [set = line mod N_sets]), built with
    existential division variables.  Parameters must be fixed in [layout];
    the resulting map has no parameters. *)

val pp_result : Format.formatter -> result -> unit
