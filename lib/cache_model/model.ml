open Poly_ir
open Presburger

type assoc_mode = Set_associative | Fully_associative

let c_analyze = Telemetry.counter "cache_model.analyze"
let c_analyze_approx = Telemetry.counter "cache_model.analyze_approx"
let c_accesses = Telemetry.counter "cache_model.accesses"
let c_llc_misses = Telemetry.counter "cache_model.llc_misses"

type level_counts = {
  level_name : string;
  presented : int;
  cold : int;
  capacity_conflict : int;
  hits : int;
  demand_hits : int;
}

type stmt_counts = {
  stmt_levels : level_counts array;
  stmt_flops : int;
  stmt_oi : float;
}

type result = {
  machine : Hwsim.Machine.t;
  mode : assoc_mode;
  levels : level_counts array;
  per_stmt : (string * stmt_counts) list;
  threads_divisor : int;
  miss_llc : float;
  q_dram_bytes : float;
  flops : int;
  oi : float;
  hit_ratios : float array;
  miss_ratios : float array;
  fidelity : Engine.Fidelity.t;
}

let total_misses lc = lc.cold + lc.capacity_conflict

(* mutable per-level model state *)
type level_state = {
  geom : Hwsim.Machine.cache_geometry;
  sets : Lru.t array;  (* one per set; a single entry in fully-assoc mode *)
  n_sets : int;
  seen : (int, unit) Hashtbl.t;  (* lines ever touched: cold classification *)
  mutable c_presented : int;
  mutable c_cold : int;
  mutable c_capconf : int;
  mutable c_hits : int;
  mutable c_demand_hits : int;
}

let make_level mode (geom : Hwsim.Machine.cache_geometry) =
  let lines_total = geom.Hwsim.Machine.size_bytes / geom.Hwsim.Machine.line_bytes in
  let n_sets, cap =
    match mode with
    | Set_associative -> (lines_total / geom.Hwsim.Machine.assoc, geom.Hwsim.Machine.assoc)
    | Fully_associative -> (1, lines_total)
  in
  {
    geom;
    sets = Array.init n_sets (fun _ -> Lru.create ~capacity:cap);
    n_sets;
    seen = Hashtbl.create 4096;
    c_presented = 0;
    c_cold = 0;
    c_capconf = 0;
    c_hits = 0;
    c_demand_hits = 0;
  }

let rec has_parallel_loop = function
  | Ir.Stmt _ -> false
  | Ir.Loop l -> l.Ir.parallel || List.exists has_parallel_loop l.Ir.body
  | Ir.If b ->
    List.exists has_parallel_loop b.Ir.then_
    || List.exists has_parallel_loop b.Ir.else_

type stmt_state = {
  ss_presented : int array;
  ss_cold : int array;
  ss_capconf : int array;
  ss_hits : int array;
  ss_demand_hits : int array;
  mutable ss_flops : int;
}

let analyze ?(ctx = Engine.Ctx.none) ?(mode = Set_associative)
    ?(apply_thread_heuristic = true) ?(set_sampling = 1) ~machine prog
    ~param_values =
  Telemetry.tick c_analyze;
  Telemetry.with_span "cache_model.analyze"
    ~args:[ ("prog", prog.Ir.prog_name) ]
  @@ fun () ->
  if set_sampling < 1 then invalid_arg "Model.analyze: set_sampling < 1";
  (* resource governance: the access-stream enumeration below is the
     dominant compile cost (Table IV), so each simulated access is
     metered against the context's budget/cancellation in batches *)
  let governed = ctx.Engine.Ctx.budget <> None || ctx.Engine.Ctx.cancel <> None in
  let gov_pending = ref 0 in
  let gov_meter () =
    if governed then begin
      incr gov_pending;
      if !gov_pending >= 8192 then begin
        Engine.Ctx.spend ctx !gov_pending;
        gov_pending := 0
      end
    end
  in
  let sampling = match mode with Fully_associative -> 1 | Set_associative -> set_sampling in
  let levels =
    Array.of_list (List.map (make_level mode) machine.Hwsim.Machine.caches)
  in
  let n_levels = Array.length levels in
  let stmt_tbl : (string, stmt_state) Hashtbl.t = Hashtbl.create 16 in
  let stmt_order = ref [] in
  let stmt_state name =
    match Hashtbl.find_opt stmt_tbl name with
    | Some s -> s
    | None ->
      let s =
        {
          ss_presented = Array.make n_levels 0;
          ss_cold = Array.make n_levels 0;
          ss_capconf = Array.make n_levels 0;
          ss_hits = Array.make n_levels 0;
          ss_demand_hits = Array.make n_levels 0;
          ss_flops = 0;
        }
      in
      Hashtbl.add stmt_tbl name s;
      stmt_order := name :: !stmt_order;
      s
  in
  let on_access ~stmt ~array:_ ~addr ~bytes:_ ~is_write =
    gov_meter ();
    let ss = stmt_state stmt in
    (* write-through: level i+1 sees level i's misses and all writes *)
    let rec level i missed_above =
      if i < n_levels && (i = 0 || missed_above || is_write) then begin
        let demand = i = 0 || missed_above in
        let st = levels.(i) in
        let line = addr / st.geom.Hwsim.Machine.line_bytes in
        let set = if st.n_sets = 1 then 0 else line mod st.n_sets in
        (* Bullseye-style sampling applies to the last level only: the
           shallower levels keep exact state so the write-through
           presentation chain stays unbiased *)
        if sampling > 1 && i = n_levels - 1 && set mod sampling <> 0 then ()
        else begin
        st.c_presented <- st.c_presented + 1;
        ss.ss_presented.(i) <- ss.ss_presented.(i) + 1;
        let in_lru = Lru.touch st.sets.(set) line in
        let missed =
          if in_lru then begin
            st.c_hits <- st.c_hits + 1;
            ss.ss_hits.(i) <- ss.ss_hits.(i) + 1;
            if demand then begin
              st.c_demand_hits <- st.c_demand_hits + 1;
              ss.ss_demand_hits.(i) <- ss.ss_demand_hits.(i) + 1
            end;
            false
          end
          else begin
            if Hashtbl.mem st.seen line then begin
              st.c_capconf <- st.c_capconf + 1;
              ss.ss_capconf.(i) <- ss.ss_capconf.(i) + 1
            end
            else begin
              Hashtbl.add st.seen line ();
              st.c_cold <- st.c_cold + 1;
              ss.ss_cold.(i) <- ss.ss_cold.(i) + 1
            end;
            true
          end
        in
        level (i + 1) missed
        end
      end
    in
    level 0 false
  in
  (* only last-level counters are scaled back up *)
  let scale_at i x = if i = n_levels - 1 then x * sampling else x in
  let cb =
    {
      (Interp.with_access on_access) with
      Interp.on_stmt =
        (fun ~stmt ~flops ->
          let ss = stmt_state stmt in
          ss.ss_flops <- ss.ss_flops + flops);
    }
  in
  let res = Interp.run ~compute:false prog ~param_values cb in
  if governed then Engine.Ctx.spend ctx !gov_pending;
  let counts =
    Array.mapi
      (fun i st ->
        {
          level_name = st.geom.Hwsim.Machine.level_name;
          presented = scale_at i st.c_presented;
          cold = scale_at i st.c_cold;
          capacity_conflict = scale_at i st.c_capconf;
          hits = scale_at i st.c_hits;
          demand_hits = scale_at i st.c_demand_hits;
        })
      levels
  in
  let divisor =
    if
      apply_thread_heuristic
      && List.exists has_parallel_loop prog.Ir.body
      && machine.Hwsim.Machine.threads > 1
    then machine.Hwsim.Machine.threads
    else 1
  in
  let llc = counts.(n_levels - 1) in
  let miss_llc = float_of_int (total_misses llc) /. float_of_int divisor in
  let line = (Hwsim.Machine.llc machine).Hwsim.Machine.line_bytes in
  let per_stmt =
    List.rev_map
      (fun name ->
        let ss = Hashtbl.find stmt_tbl name in
        let stmt_levels =
          Array.init n_levels (fun i ->
              {
                level_name = counts.(i).level_name;
                presented = scale_at i ss.ss_presented.(i);
                cold = scale_at i ss.ss_cold.(i);
                capacity_conflict = scale_at i ss.ss_capconf.(i);
                hits = scale_at i ss.ss_hits.(i);
                demand_hits = scale_at i ss.ss_demand_hits.(i);
              })
        in
        let m_llc =
          float_of_int (total_misses stmt_levels.(n_levels - 1))
          /. float_of_int divisor
        in
        let q = m_llc *. float_of_int line in
        ( name,
          {
            stmt_levels;
            stmt_flops = ss.ss_flops;
            stmt_oi =
              (if q > 0.0 then float_of_int ss.ss_flops /. q
               else Float.infinity);
          } ))
      !stmt_order
  in
  let q_dram = miss_llc *. float_of_int line in
  let hit_ratios =
    Array.map
      (fun c ->
        if c.presented = 0 then 1.0
        else float_of_int c.hits /. float_of_int c.presented)
      counts
  in
  (* bulk-report: the access loop itself stays telemetry-free *)
  Telemetry.add c_accesses counts.(0).presented;
  Telemetry.add c_llc_misses (total_misses llc);
  {
    machine;
    mode;
    levels = counts;
    per_stmt;
    threads_divisor = divisor;
    miss_llc;
    q_dram_bytes = q_dram;
    flops = res.Interp.flops;
    oi =
      (if q_dram > 0.0 then float_of_int res.Interp.flops /. q_dram
       else Float.infinity);
    hit_ratios;
    miss_ratios = Array.map (fun h -> 1.0 -. h) hit_ratios;
    fidelity = Engine.Fidelity.Exact;
  }

(* --- Degraded static estimator ---

   When the exact access-stream simulation above exhausts its budget, we
   estimate the same counters from polyhedral footprints instead of
   enumerating the stream:

   - presented accesses  = (#read + #write refs)  × |domain| per stmt;
   - cold lines          = distinct touched elements (cardinality of the
     access-relation ranges, unioned per array) × elem bytes ÷ line
     bytes, assuming contiguous placement;
   - capacity/conflict   = the fraction of reuse accesses lost when the
     per-level footprint exceeds the level's capacity (1 − cap/footprint);
   - the write-through presentation chain mirrors the exact model:
     level i+1 sees level i's misses plus the writes that hit at i.

   Every cardinality runs through {!Count.card_gov} under a small fresh
   fuel-only budget, so the estimator does a bounded amount of work even
   when the caller's deadline has already expired (only the cancellation
   token is inherited).  The result is marked [Degraded]; tolerances are
   documented in DESIGN.md. *)

let estimate_fuel = 1_000_000

let analyze_approx ?(ctx = Engine.Ctx.none) ?(mode = Set_associative)
    ?(apply_thread_heuristic = true) ~machine prog ~param_values =
  Telemetry.tick c_analyze_approx;
  Telemetry.with_span "cache_model.analyze_approx"
    ~args:[ ("prog", prog.Ir.prog_name) ]
  @@ fun () ->
  let scop = Scop.extract prog in
  let layout = Layout.of_program prog ~param_values in
  let count_ctx () =
    {
      ctx with
      Engine.Ctx.cache = None;
      budget = Some (Engine.Budget.create ~fuel:estimate_fuel ());
    }
  in
  let gov_card b = fst (Count.card_gov ~ctx:(count_ctx ()) b) in
  let values_of sp =
    Array.map
      (fun p ->
        match List.assoc_opt p param_values with
        | Some v -> v
        | None -> invalid_arg ("Model: missing parameter " ^ p))
      sp.Space.params
  in
  let bind b = Bset.fix_params b (values_of (Bset.space b)) in
  (* parametric counts go through the chamber decomposition when one is
     available (exact, O(1) on the warm memo shared with the daemon);
     shapes the chamber engine declines fall back to the governed scan *)
  let chamber_card b dom_b =
    match Count.card_param ~ctx:(count_ctx ()) b with
    | Some ch -> (
      match Chamber.eval ch (values_of (Bset.space b)) with
      | n -> n
      | exception Linalg.Ints.Overflow -> gov_card dom_b)
    | None -> gov_card dom_b
    | exception Engine.Budget.Exhausted _ -> gov_card dom_b
  in
  let geoms = Array.of_list machine.Hwsim.Machine.caches in
  let n_levels = Array.length geoms in
  let lines_of_elems elems elem_bytes line_bytes =
    if elems <= 0 then 0
    else max 1 (((elems * elem_bytes) + line_bytes - 1) / line_bytes)
  in
  (* per statement: iteration count, reference counts, per-array distinct
     elements (per-(stmt,array) range unions) *)
  let stmts =
    List.map
      (fun (info : Scop.stmt_info) ->
        let dom_b = bind info.Scop.domain in
        let n_iter = chamber_card info.Scop.domain dom_b in
        let reads, writes =
          List.fold_left
            (fun (r, w) ((a : Ir.access), _) ->
              match a.Ir.kind with Ir.Read -> (r + 1, w) | Ir.Write -> (r, w + 1))
            (0, 0) info.Scop.access_maps
        in
        (* the raw access maps carry only the index equalities; the image
           (the set of touched elements) is the range of the map
           restricted to the statement's iteration domain *)
        let image (m : Bset.t) =
          let m = bind m in
          let spm = Bset.space m in
          let ndim = Space.n_ins spm in
          let nout = Space.n_outs spm in
          let nd_dom = Bset.n_div dom_b in
          let nd_m = Bset.n_div m in
          let total = ndim + nout + nd_dom + nd_m in
          (* domain vars (set dims) line up with the map's input dims;
             domain divs go in front of the map's own divs *)
          let pdom =
            Poly.remap dom_b.Bset.poly total (fun i ->
                if i < ndim then i else i + nout)
          in
          let pm =
            Poly.remap m.Bset.poly total (fun i ->
                if i < ndim + nout then i else i + nd_dom)
          in
          Bset.range
            (Bset.of_poly spm ~n_div:(nd_dom + nd_m) (Poly.append pdom pm))
        in
        let ranges_by_array = Hashtbl.create 8 in
        List.iter
          (fun ((a : Ir.access), m) ->
            let range = image m in
            Hashtbl.replace ranges_by_array a.Ir.array
              (range
              :: Option.value
                   (Hashtbl.find_opt ranges_by_array a.Ir.array)
                   ~default:[]))
          info.Scop.access_maps;
        let union_card ranges =
          match ranges with
          | [ r ] -> gov_card r
          | rs -> (
            match
              Pset.cardinality ~ctx:(count_ctx ())
                (Pset.of_bsets (Bset.space (List.hd rs)) rs)
            with
            | n -> n
            | exception Engine.Budget.Exhausted _ -> (
              (* union too hard under the sample budget: bound it by the
                 convex hull of the members' rational shadows (divs
                 projected away) — a superset of the union, so the
                 footprint is never under-estimated, and exact for the
                 common case of adjacent/overlapping contiguous ranges *)
              let shadow (r : Bset.t) =
                let p = r.Bset.poly in
                let keep = Poly.nvar p - Bset.n_div r in
                Poly.remove_redundant
                  (Poly.fix_vars (Poly.eliminate_from p keep) (fun i ->
                       if i >= keep then Some 0 else None))
              in
              match
                let hull =
                  match rs with
                  | [] -> assert false
                  | r0 :: rest ->
                    List.fold_left
                      (fun acc r -> Poly.convex_hull acc (shadow r))
                      (shadow r0) rest
                in
                gov_card (Bset.of_poly (Bset.space (List.hd rs)) ~n_div:0 hull)
              with
              | n -> n
              | exception Linalg.Ints.Overflow ->
                (* hull arithmetic overflowed: fall back to the largest
                   member as a lower bound *)
                List.fold_left (fun acc r -> max acc (gov_card r)) 0 rs))
        in
        let elems_by_array =
          Hashtbl.fold
            (fun array ranges acc -> (array, union_card ranges) :: acc)
            ranges_by_array []
        in
        ( info, n_iter, reads, writes, elems_by_array ))
      scop.Scop.stmt_infos
  in
  (* program-level distinct elements per array: max over statements of the
     per-statement unions (arrays are shared; summing would double-count
     the common case of every statement sweeping the same array) *)
  let program_elems = Hashtbl.create 8 in
  List.iter
    (fun (_, _, _, _, elems_by_array) ->
      List.iter
        (fun (array, elems) ->
          let prev =
            Option.value (Hashtbl.find_opt program_elems array) ~default:0
          in
          Hashtbl.replace program_elems array (max prev elems))
        elems_by_array)
    stmts;
  let elem_bytes array = (Layout.find layout array).Layout.decl.Ir.elem_size in
  let footprint_lines =
    Array.map
      (fun (g : Hwsim.Machine.cache_geometry) ->
        Hashtbl.fold
          (fun array elems acc ->
            acc + lines_of_elems elems (elem_bytes array) g.Hwsim.Machine.line_bytes)
          program_elems 0)
      geoms
  in
  (* the write-through presentation chain of the exact model, driven by
     footprint-derived cold/capacity estimates for one scope (a statement
     or the whole program) *)
  let chain ~cold_lines ~p0 ~writes =
    let counts = Array.make n_levels None in
    let presented = ref p0 and demand = ref p0 in
    for i = 0 to n_levels - 1 do
      let g = geoms.(i) in
      let cold = min cold_lines.(i) !presented in
      let reuse = max 0 (!presented - cold) in
      let fp_bytes = footprint_lines.(i) * g.Hwsim.Machine.line_bytes in
      let capconf =
        if fp_bytes <= g.Hwsim.Machine.size_bytes || fp_bytes = 0 then 0
        else
          min reuse
            (int_of_float
               (float_of_int reuse
               *. (1.
                  -. float_of_int g.Hwsim.Machine.size_bytes
                     /. float_of_int fp_bytes)))
      in
      let hits = max 0 (!presented - cold - capconf) in
      let demand_hits = min hits (max 0 (!demand - cold - capconf)) in
      let misses = cold + capconf in
      counts.(i) <-
        Some
          {
            level_name = g.Hwsim.Machine.level_name;
            presented = !presented;
            cold;
            capacity_conflict = capconf;
            hits;
            demand_hits;
          };
      (* level i+1 sees the misses plus the writes that hit here *)
      let write_hits =
        if !presented = 0 then 0 else writes * hits / !presented
      in
      demand := misses;
      presented := misses + write_hits
    done;
    Array.map Option.get counts
  in
  let per_stmt =
    List.map
      (fun ((info : Scop.stmt_info), n_iter, reads, writes, elems_by_array) ->
        let p0 = (reads + writes) * n_iter in
        let w = writes * n_iter in
        let cold_lines =
          Array.map
            (fun (g : Hwsim.Machine.cache_geometry) ->
              List.fold_left
                (fun acc (array, elems) ->
                  acc
                  + lines_of_elems elems (elem_bytes array)
                      g.Hwsim.Machine.line_bytes)
                0 elems_by_array)
            geoms
        in
        (info, n_iter, w, chain ~cold_lines ~p0 ~writes:w))
      stmts
  in
  let divisor =
    if
      apply_thread_heuristic
      && List.exists has_parallel_loop prog.Ir.body
      && machine.Hwsim.Machine.threads > 1
    then machine.Hwsim.Machine.threads
    else 1
  in
  let line = (Hwsim.Machine.llc machine).Hwsim.Machine.line_bytes in
  let per_stmt_counts =
    List.map
      (fun ((info : Scop.stmt_info), n_iter, _w, stmt_levels) ->
        let flops = Ir.flops_of_expr info.Scop.stmt.Ir.rhs * n_iter in
        let m_llc =
          float_of_int (total_misses stmt_levels.(n_levels - 1))
          /. float_of_int divisor
        in
        let q = m_llc *. float_of_int line in
        ( info.Scop.stmt.Ir.stmt_name,
          {
            stmt_levels;
            stmt_flops = flops;
            stmt_oi =
              (if q > 0.0 then float_of_int flops /. q else Float.infinity);
          } ))
      per_stmt
  in
  (* program-level chain from the global footprint *)
  let program_cold =
    Array.map
      (fun (g : Hwsim.Machine.cache_geometry) ->
        Hashtbl.fold
          (fun array elems acc ->
            acc + lines_of_elems elems (elem_bytes array) g.Hwsim.Machine.line_bytes)
          program_elems 0)
      geoms
  in
  let p0_total, writes_total =
    List.fold_left
      (fun (p, w) (_, n_iter, reads, writes, _) ->
        (p + ((reads + writes) * n_iter), w + (writes * n_iter)))
      (0, 0) stmts
  in
  let counts = chain ~cold_lines:program_cold ~p0:p0_total ~writes:writes_total in
  let llc = counts.(n_levels - 1) in
  let miss_llc = float_of_int (total_misses llc) /. float_of_int divisor in
  let q_dram = miss_llc *. float_of_int line in
  let flops =
    List.fold_left (fun acc (_, sc) -> acc + sc.stmt_flops) 0 per_stmt_counts
  in
  let hit_ratios =
    Array.map
      (fun c ->
        if c.presented = 0 then 1.0
        else float_of_int c.hits /. float_of_int c.presented)
      counts
  in
  Engine.Fidelity.note_degraded ();
  {
    machine;
    mode;
    levels = counts;
    per_stmt = per_stmt_counts;
    threads_divisor = divisor;
    miss_llc;
    q_dram_bytes = q_dram;
    flops;
    oi = (if q_dram > 0.0 then float_of_int flops /. q_dram else Float.infinity);
    hit_ratios;
    miss_ratios = Array.map (fun h -> 1.0 -. h) hit_ratios;
    fidelity = Engine.Fidelity.Degraded;
  }

let analyze_gov ?(ctx = Engine.Ctx.none) ?mode ?apply_thread_heuristic
    ?set_sampling ~machine prog ~param_values =
  match
    analyze ~ctx ?mode ?apply_thread_heuristic ?set_sampling ~machine prog
      ~param_values
  with
  | r -> r
  | exception Engine.Budget.Exhausted _ when Engine.Ctx.degrade_allowed ctx ->
    analyze_approx ~ctx ?mode ?apply_thread_heuristic ~machine prog
      ~param_values

let cold_misses_symbolic ?pool ?ctx ~machine ~level prog =
  let ctx = Engine.Ctx.of_legacy ?pool ctx in
  match prog.Ir.params with
  | [ p ] ->
    (* [analyze] is self-contained, so sample instances may be counted from
       pool workers; the fitted quasi-polynomial is identical either way *)
    Count.interpolate ~ctx
      ~count:(fun n ->
        let r =
          analyze ~ctx:{ ctx with Engine.Ctx.pool = None; cache = None }
            ~machine ~apply_thread_heuristic:false prog
            ~param_values:[ (p, n) ]
        in
        r.levels.(level).cold)
      ()
  | _ -> None

let access_map_with_cache_dims ~machine ~level (info : Scop.stmt_info)
    (acc : Ir.access) ~layout ~param_values =
  let geom = List.nth machine.Hwsim.Machine.caches level in
  let line_bytes = geom.Hwsim.Machine.line_bytes in
  let n_sets =
    geom.Hwsim.Machine.size_bytes / line_bytes / geom.Hwsim.Machine.assoc
  in
  let al = Layout.find layout acc.Ir.array in
  let e = al.Layout.decl.Ir.elem_size in
  let space =
    Space.map_space ~in_name:"S" ~out_name:acc.Ir.array
      info.Scop.iter_vars [ "line"; "set" ]
  in
  let b = Bset.universe space in
  (* domain constraints on the input tuple *)
  let dom =
    let sp = Bset.space info.Scop.domain in
    let values =
      Array.map
        (fun p ->
          match List.assoc_opt p param_values with
          | Some v -> v
          | None -> invalid_arg ("Model: missing parameter " ^ p))
        sp.Space.params
    in
    Bset.fix_params info.Scop.domain values
  in
  let nd_dom = Bset.n_div dom in
  let ndim = List.length info.Scop.iter_vars in
  (* combine: ins = iter dims, outs = line/set, divs = dom divs (then ours) *)
  let total = ndim + 2 + nd_dom in
  let pdom =
    Poly.remap dom.Bset.poly total (fun i ->
        if i < ndim then i else ndim + 2 + (i - ndim))
  in
  let b =
    Bset.of_poly (Bset.space b) ~n_div:nd_dom
      (Poly.append pdom (Poly.insert_vars b.Bset.poly ~at:(ndim + 2) ~count:nd_dom))
  in
  (* byte address as an affine form over the input dims *)
  let var_col v =
    let rec idx k = function
      | [] -> invalid_arg ("Model: unbound variable " ^ v)
      | w :: _ when String.equal w v -> k
      | _ :: r -> idx (k + 1) r
    in
    Bset.in_pos b (idx 0 info.Scop.iter_vars)
  in
  let param_val p =
    match List.assoc_opt p param_values with
    | Some v -> v
    | None -> invalid_arg ("Model: missing parameter " ^ p)
  in
  let addr_aff =
    List.fold_left
      (fun (k, aff) idx ->
        let stride = al.Layout.strides.(k) * e in
        let const =
          List.fold_left
            (fun acc (p, c) -> acc + (c * param_val p * stride))
            (idx.Ir.const * stride) idx.Ir.param_coefs
        in
        ( k + 1,
          {
            Bset.coefs =
              aff.Bset.coefs
              @ List.map (fun (v, c) -> (c * stride, var_col v)) idx.Ir.var_coefs;
            const = aff.Bset.const + const;
          } ))
      (0, { Bset.coefs = []; const = al.Layout.base })
      acc.Ir.indices
    |> snd
  in
  (* line = floor(addr / ℓ), set = line mod N_sets *)
  let b, qline = Bset.add_div b ~num:addr_aff ~den:line_bytes in
  let b =
    Bset.add_eq b
      { Bset.coefs = [ (1, Bset.out_pos b 0); (-1, qline) ]; const = 0 }
  in
  let b, qset =
    Bset.add_div b ~num:{ Bset.coefs = [ (1, qline) ]; const = 0 } ~den:n_sets
  in
  Bset.add_eq b
    {
      Bset.coefs = [ (1, Bset.out_pos b 1); (-1, qline); (n_sets, qset) ];
      const = 0;
    }

let pp_result ppf r =
  Format.fprintf ppf "@[<v>PolyUFC-CM (%s, %s):@,"
    r.machine.Hwsim.Machine.name
    (match r.mode with
    | Set_associative -> "set-assoc"
    | Fully_associative -> "fully-assoc");
  Array.iter
    (fun c ->
      Format.fprintf ppf
        "  %s: presented=%d cold=%d cap/conf=%d hits=%d (hit ratio %.3f)@,"
        c.level_name c.presented c.cold c.capacity_conflict c.hits
        (if c.presented = 0 then 1.0
         else float_of_int c.hits /. float_of_int c.presented))
    r.levels;
  Format.fprintf ppf
    "  Miss_LLC=%.0f (÷%d threads) Q_DRAM=%.3g bytes Ω=%d flops OI=%.3f FpB"
    r.miss_llc r.threads_divisor r.q_dram_bytes r.flops r.oi;
  if r.fidelity <> Engine.Fidelity.Exact then
    Format.fprintf ppf "@,  fidelity: %a" Engine.Fidelity.pp r.fidelity;
  Format.fprintf ppf "@]"
