(** Resource budgets: wall-clock deadlines, counting fuel, and the
    degradation policy applied when either runs out.

    A budget is shared by every computation of one analysis request.
    Work loops meter themselves through {!spend} (fuel is a global
    [Atomic], so domains racing on the same budget account correctly);
    phase boundaries poll {!check}.  When the budget is exhausted,
    governed computations raise {!Exhausted}; callers that declared a
    degradation policy of {!Interp} catch it and substitute a cheaper
    estimate (recording the result as [Degraded] — see {!Fidelity}).

    Deadlines are absolute wall-clock instants ([Unix.gettimeofday]),
    so a budget created at the top of a request bounds the whole
    request, not each sub-computation separately. *)

type degrade =
  | Off  (** exhaustion is an error: {!Exhausted} propagates to the caller *)
  | Interp
      (** fall back to Ehrhart-style interpolation / footprint estimates *)

type t

exception Exhausted of string
(** Raised by {!spend}/{!check} when the deadline has passed or the fuel
    counter has gone negative.  The payload says which limit tripped. *)

val create : ?deadline_s:float -> ?fuel:int -> ?degrade:degrade -> unit -> t
(** [create ?deadline_s ?fuel ?degrade ()] — [deadline_s] is a relative
    number of seconds from now (the absolute instant is captured here);
    [fuel] is a number of abstract work units (one unit ≈ one scanned
    lattice point, one counted slice, or one simulated cache access).
    Omitted limits are unlimited.  [degrade] defaults to {!Interp}. *)

val degrade : t -> degrade

val spend : t -> int -> unit
(** Consume [n] work units and poll the deadline.  Raises {!Exhausted}
    when either limit trips.  Call in batches (e.g. every 1024 points):
    one atomic add + one clock read per call. *)

val check : t -> unit
(** Poll deadline and fuel without consuming anything. *)

val exhausted : t -> bool
(** [true] iff a deadline/fuel limit has tripped (never raises). *)

val remaining_fuel : t -> int option
(** Fuel left, if fuel-limited ([Some 0] when overdrawn). *)

val remaining_s : t -> float option
(** Seconds until the deadline, if deadline-limited (0. when passed). *)
