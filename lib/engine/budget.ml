type degrade = Off | Interp

type t = {
  deadline : float option; (* absolute Unix.gettimeofday instant *)
  fuel : int Atomic.t option; (* shared across domains; < 0 = overdrawn *)
  policy : degrade;
}

exception Exhausted of string

let c_exhausted = Telemetry.counter "engine.budget_exhausted"

let create ?deadline_s ?fuel ?(degrade = Interp) () =
  {
    deadline = Option.map (fun s -> Unix.gettimeofday () +. s) deadline_s;
    fuel = Option.map Atomic.make fuel;
    policy = degrade;
  }

let degrade t = t.policy

let trip msg =
  Telemetry.tick c_exhausted;
  Telemetry.Event.warn "budget.exhausted"
    ~fields:[ ("why", Telemetry.Json.Str msg) ];
  raise (Exhausted msg)

let check_deadline t =
  match t.deadline with
  | Some d when Unix.gettimeofday () > d -> trip "deadline exceeded"
  | _ -> ()

let spend t n =
  (match t.fuel with
  | Some f ->
    if Atomic.fetch_and_add f (-n) - n < 0 then trip "fuel exhausted"
  | None -> ());
  check_deadline t

let check t =
  (match t.fuel with
  | Some f when Atomic.get f < 0 -> trip "fuel exhausted"
  | _ -> ());
  check_deadline t

let exhausted t =
  (match t.fuel with Some f -> Atomic.get f < 0 | None -> false)
  || match t.deadline with
     | Some d -> Unix.gettimeofday () > d
     | None -> false

let remaining_fuel t = Option.map (fun f -> max 0 (Atomic.get f)) t.fuel

let remaining_s t =
  Option.map (fun d -> Float.max 0. (d -. Unix.gettimeofday ())) t.deadline
