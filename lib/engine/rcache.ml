(* Content-addressed on-disk memoization store.

   Layout: one file per entry, [<dir>/<digest>.json], containing
   {"schema": V, "payload": <value>}.  The digest covers a canonical,
   length-prefixed encoding of the key parts plus the schema version, so
   collisions between fields ("ab"+"c" vs "a"+"bc") are impossible and a
   version bump re-addresses everything. *)

module J = Telemetry.Json

type t = { cache_dir : string }

let schema_version = 1

let c_hit = Telemetry.counter "engine.cache.hit"
let c_miss = Telemetry.counter "engine.cache.miss"
let c_store = Telemetry.counter "engine.cache.store"
let c_corrupt = Telemetry.counter "engine.cache.corrupt"

(* always-on process counters: the CLI's `cache stats` and the tests must
   see hit/miss activity even when the telemetry registry is disabled *)
let n_hit = Atomic.make 0
let n_miss = Atomic.make 0
let n_store = Atomic.make 0
let n_corrupt = Atomic.make 0

let bump telemetry_c process_c =
  Telemetry.tick telemetry_c;
  ignore (Atomic.fetch_and_add process_c 1)

let default_dir () =
  match Sys.getenv_opt "POLYUFC_CACHE_DIR" with
  | Some d when d <> "" -> d
  | _ -> "_polyufc_cache"

let create ?dir () =
  { cache_dir = (match dir with Some d -> d | None -> default_dir ()) }

let dir t = t.cache_dir

let key ?(schema = schema_version) parts =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "polyufc-rcache/%d\n" schema);
  List.iter
    (fun (field, value) ->
      Buffer.add_string buf
        (Printf.sprintf "%d:%s=%d:" (String.length field) field
           (String.length value));
      Buffer.add_string buf value;
      Buffer.add_char buf '\n')
    parts;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let entry_path t key = Filename.concat t.cache_dir (key ^ ".json")

let warn fmt =
  Format.eprintf ("polyufc cache warning: " ^^ fmt ^^ "@.")

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let find t key =
  let path = entry_path t key in
  if not (Sys.file_exists path) then begin
    bump c_miss n_miss;
    None
  end
  else
    let corrupt why =
      bump c_corrupt n_corrupt;
      bump c_miss n_miss;
      warn "ignoring unreadable entry %s (%s)" path why;
      None
    in
    match read_file path with
    | exception Sys_error msg -> corrupt msg
    | text -> (
      match J.of_string text with
      | Error msg -> corrupt msg
      | Ok doc -> (
        match (J.member "schema" doc, J.member "payload" doc) with
        | Some (J.Int v), Some payload when v = schema_version ->
          bump c_hit n_hit;
          Some payload
        | Some (J.Int _), Some _ ->
          (* stale schema: a plain miss, not corruption *)
          bump c_miss n_miss;
          None
        | _ -> corrupt "missing schema/payload fields"))

let store t key payload =
  let doc =
    J.Obj [ ("schema", J.Int schema_version); ("payload", payload) ]
  in
  try
    if not (Sys.file_exists t.cache_dir) then Unix.mkdir t.cache_dir 0o755;
    let tmp =
      Filename.temp_file ~temp_dir:t.cache_dir "entry" ".tmp"
    in
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_string oc (J.to_string doc));
    Sys.rename tmp (entry_path t key);
    bump c_store n_store
  with Sys_error msg | Unix.Unix_error (_, msg, _) ->
    warn "cannot store entry %s (%s)" key msg

let find_or_add t ~key ~decode ~encode f =
  match find t key with
  | Some payload -> (
    match decode payload with
    | Some v -> v
    | None ->
      (* decodable JSON but not the expected shape *)
      bump c_corrupt n_corrupt;
      warn "ignoring undecodable entry %s" key;
      let v = f () in
      store t key (encode v);
      v)
  | None ->
    let v = f () in
    store t key (encode v);
    v

type stats = { entries : int; bytes : int }

let stats t =
  match Sys.readdir t.cache_dir with
  | exception Sys_error _ -> { entries = 0; bytes = 0 }
  | files ->
    Array.fold_left
      (fun acc f ->
        if Filename.check_suffix f ".json" then
          let bytes =
            try (Unix.stat (Filename.concat t.cache_dir f)).Unix.st_size
            with Unix.Unix_error _ -> 0
          in
          { entries = acc.entries + 1; bytes = acc.bytes + bytes }
        else acc)
      { entries = 0; bytes = 0 }
      files

let clear t =
  match Sys.readdir t.cache_dir with
  | exception Sys_error _ -> 0
  | files ->
    Array.fold_left
      (fun n f ->
        if Filename.check_suffix f ".json" then (
          (try Sys.remove (Filename.concat t.cache_dir f)
           with Sys_error _ -> ());
          n + 1)
        else n)
      0 files

type counts = { hits : int; misses : int; stores : int; corrupt : int }

let counts () =
  {
    hits = Atomic.get n_hit;
    misses = Atomic.get n_miss;
    stores = Atomic.get n_store;
    corrupt = Atomic.get n_corrupt;
  }
