(* Multi-tier, content-addressed result store.

   Three tiers front the same key space:

     1. an in-memory LRU (entry- and byte-bounded, shared by every
        request of a long-lived daemon),
     2. a two-level sharded on-disk tier — [<dir>/ab/<digest>.json],
        where [ab] is the first two hex characters of the digest, so no
        single directory ever accumulates millions of entries — with
        transparent migration from the pre-sharding flat layout on
        first open,
     3. an optional *read-only* upstream store ([POLYUFC_CACHE_UPSTREAM]
        or [--cache-upstream]): a pre-warmed store shipped with releases.
        Upstream hits are promoted into the local tiers; writes never go
        upstream.

   Entry files are unchanged from the flat era: {"schema": V,
   "checksum": <hex digest of payload>, "payload": <value>} — the file
   name addresses the key material, the embedded checksum detects
   truncated or bit-flipped payloads that still parse as JSON.

   A compact append-only index at [<dir>/meta/index] tracks every live
   entry (kind, bytes, and an atime-ish last-use sequence number) so
   [stats], [stats_by_kind] and the garbage collector never re-scan the
   entry tree.  Every index line carries its own checksum; a missing,
   torn or checksum-failing index — or one whose live count disagrees
   with the shard tree (the fingerprint of a crash between a file
   operation and its index record) — is rebuilt from the shard tree:
   counted, never fatal.  The index is an accelerator like everything
   else here; the shard tree is the truth.

   Garbage collection evicts least-recently-used entries until the
   store fits under [--cache-max-bytes] / [--cache-max-entries].  It
   runs when asked ([polyufc cache gc]), at daemon start, and
   opportunistically after a store that pushes the index totals over a
   watermark.  GC removes the entry file *before* appending the removal
   record, so a kill -9 mid-sweep leaves at worst a stale index — which
   the count check above repairs on the next open.

   A read that fails (I/O error, bad JSON, bad checksum) is retried once
   — a concurrent writer's rename can race the first read — and then the
   entry is quarantined to [<dir>/quarantine/] for post-mortem instead of
   being re-read forever or failing the analysis.  The quarantine keeps
   only the newest [quarantine_keep] files; older evidence is dropped
   and counted.

   Writes go through [Io.write_atomic] (tmp + fsync + rename, one retry
   on transient errors).  ENOSPC is not transient: it flips the disk
   tier to a degraded read-only mode — hits keep being served (and the
   memory tier keeps absorbing stores), on-disk stores become no-ops —
   because retrying writes on a full disk only burns time and log
   lines.  The flip is counted and warned once, never fatal. *)

module J = Telemetry.Json

(* 2: payload checksum added (PR 4); 1: initial layout.  The sharded
   directory layout (PR 10) does not touch the entry document, so the
   schema — and with it every existing key — survives the migration. *)
let schema_version = 2

let c_hit = Telemetry.counter "engine.cache.hit"
let c_miss = Telemetry.counter "engine.cache.miss"
let c_store = Telemetry.counter "engine.cache.store"
let c_corrupt = Telemetry.counter "engine.cache.corrupt"
let c_quarantined = Telemetry.counter "engine.cache.quarantined"
let c_quarantine_dropped = Telemetry.counter "engine.cache.quarantine_dropped"
let c_write_retry = Telemetry.counter "engine.cache_write_retries"
let c_readonly_flip = Telemetry.counter "engine.cache_readonly_flips"
let c_mem_hit = Telemetry.counter "engine.cache.mem.hit"
let c_mem_miss = Telemetry.counter "engine.cache.mem.miss"
let c_mem_evict = Telemetry.counter "engine.cache.mem.evict"
let c_disk_hit = Telemetry.counter "engine.cache.disk.hit"
let c_disk_miss = Telemetry.counter "engine.cache.disk.miss"
let c_upstream_hit = Telemetry.counter "engine.cache.upstream.hit"
let c_upstream_miss = Telemetry.counter "engine.cache.upstream.miss"
let c_promotion = Telemetry.counter "engine.cache.promotion"
let c_eviction = Telemetry.counter "engine.cache.eviction"
let c_gc_run = Telemetry.counter "engine.cache.gc_runs"
let c_gc_crash = Telemetry.counter "engine.cache.gc_crashes"
let c_migrated = Telemetry.counter "engine.cache.migrated"
let c_index_rebuild = Telemetry.counter "engine.cache.index_rebuilds"
let c_index_bad_line = Telemetry.counter "engine.cache.index_bad_lines"

type counts = {
  hits : int;
  misses : int;
  stores : int;
  corrupt : int;
  quarantined : int;
  write_retries : int;
  readonly_flips : int;
  mem_hits : int;
  disk_hits : int;
  upstream_hits : int;
  promotions : int;
  evictions : int;
  mem_evictions : int;
  gc_runs : int;
  gc_crashes : int;
  migrated : int;
  index_rebuilds : int;
  index_bad_lines : int;
  quarantine_dropped : int;
}

(* Always-on per-directory counters: the CLI's `cache stats` and the
   tests must see hit/miss activity even when the telemetry registry is
   disabled, and a process touching two stores (a local tier promoting
   from an upstream, a test suite over many temp dirs) must attribute
   each event to the directory it happened in — not to whichever cache
   was created last. *)
type live = {
  l_hits : int Atomic.t;
  l_misses : int Atomic.t;
  l_stores : int Atomic.t;
  l_corrupt : int Atomic.t;
  l_quarantined : int Atomic.t;
  l_write_retries : int Atomic.t;
  l_readonly_flips : int Atomic.t;
  l_mem_hits : int Atomic.t;
  l_disk_hits : int Atomic.t;
  l_upstream_hits : int Atomic.t;
  l_promotions : int Atomic.t;
  l_evictions : int Atomic.t;
  l_mem_evictions : int Atomic.t;
  l_gc_runs : int Atomic.t;
  l_gc_crashes : int Atomic.t;
  l_migrated : int Atomic.t;
  l_index_rebuilds : int Atomic.t;
  l_index_bad_lines : int Atomic.t;
  l_quarantine_dropped : int Atomic.t;
}

let fresh_live () =
  {
    l_hits = Atomic.make 0;
    l_misses = Atomic.make 0;
    l_stores = Atomic.make 0;
    l_corrupt = Atomic.make 0;
    l_quarantined = Atomic.make 0;
    l_write_retries = Atomic.make 0;
    l_readonly_flips = Atomic.make 0;
    l_mem_hits = Atomic.make 0;
    l_disk_hits = Atomic.make 0;
    l_upstream_hits = Atomic.make 0;
    l_promotions = Atomic.make 0;
    l_evictions = Atomic.make 0;
    l_mem_evictions = Atomic.make 0;
    l_gc_runs = Atomic.make 0;
    l_gc_crashes = Atomic.make 0;
    l_migrated = Atomic.make 0;
    l_index_rebuilds = Atomic.make 0;
    l_index_bad_lines = Atomic.make 0;
    l_quarantine_dropped = Atomic.make 0;
  }

(* dir -> live counters, one record per cache directory per process *)
let registry : (string, live) Hashtbl.t = Hashtbl.create 4
let registry_mutex = Mutex.create ()

let live_for dir =
  Mutex.protect registry_mutex (fun () ->
      match Hashtbl.find_opt registry dir with
      | Some l -> l
      | None ->
        let l = fresh_live () in
        Hashtbl.add registry dir l;
        l)

let bump telemetry_c process_c =
  Telemetry.tick telemetry_c;
  ignore (Atomic.fetch_and_add process_c 1)

(* ------------------------------------------------------------------ *)
(* In-memory LRU tier                                                  *)
(* ------------------------------------------------------------------ *)

module Mem = struct
  type node = {
    nkey : string;
    npayload : J.t;
    nbytes : int;
    mutable prev : node option; (* toward MRU *)
    mutable next : node option; (* toward LRU *)
  }

  type t = {
    mu : Mutex.t;
    tbl : (string, node) Hashtbl.t;
    mutable head : node option; (* MRU *)
    mutable tail : node option; (* LRU *)
    mutable bytes : int;
    max_entries : int;
    max_bytes : int;
  }

  let create ~max_entries ~max_bytes =
    if max_entries <= 0 || max_bytes <= 0 then None
    else
      Some
        {
          mu = Mutex.create ();
          tbl = Hashtbl.create 64;
          head = None;
          tail = None;
          bytes = 0;
          max_entries;
          max_bytes;
        }

  let unlink m n =
    (match n.prev with
    | Some p -> p.next <- n.next
    | None -> m.head <- n.next);
    (match n.next with
    | Some s -> s.prev <- n.prev
    | None -> m.tail <- n.prev);
    n.prev <- None;
    n.next <- None

  let push_front m n =
    n.next <- m.head;
    (match m.head with Some h -> h.prev <- Some n | None -> m.tail <- Some n);
    m.head <- Some n

  let drop m n =
    unlink m n;
    Hashtbl.remove m.tbl n.nkey;
    m.bytes <- m.bytes - n.nbytes

  let find m key =
    Mutex.protect m.mu (fun () ->
        match Hashtbl.find_opt m.tbl key with
        | None -> None
        | Some n ->
          unlink m n;
          push_front m n;
          Some n.npayload)

  (* evict from the LRU end until within bounds; an oversized payload
     can evict itself, which is the correct way to decline to cache it *)
  let put ~on_evict m key payload =
    let nbytes = String.length (J.to_string payload) in
    Mutex.protect m.mu (fun () ->
        (match Hashtbl.find_opt m.tbl key with Some n -> drop m n | None -> ());
        let n = { nkey = key; npayload = payload; nbytes; prev = None; next = None } in
        Hashtbl.replace m.tbl key n;
        push_front m n;
        m.bytes <- m.bytes + nbytes;
        while
          Hashtbl.length m.tbl > m.max_entries || m.bytes > m.max_bytes
        do
          match m.tail with
          | Some victim ->
            drop m victim;
            on_evict ()
          | None -> assert false
        done)

  let remove m key =
    Mutex.protect m.mu (fun () ->
        match Hashtbl.find_opt m.tbl key with
        | Some n -> drop m n
        | None -> ())

  let clear m =
    Mutex.protect m.mu (fun () ->
        Hashtbl.reset m.tbl;
        m.head <- None;
        m.tail <- None;
        m.bytes <- 0)

  let stats m =
    Mutex.protect m.mu (fun () -> (Hashtbl.length m.tbl, m.bytes))
end

(* ------------------------------------------------------------------ *)
(* The store                                                           *)
(* ------------------------------------------------------------------ *)

(* entry kinds: plain analysis results carry no marker and count as
   [kind_numeric]; symbolic chamber decompositions are tagged so
   `cache stats` can report the tiers separately. *)
let kind_numeric = "numeric/v2"
let kind_symbolic = "symbolic/v1"

type ixent = {
  mutable x_kind : string;
  mutable x_bytes : int;
  mutable x_seq : int; (* atime-ish: the logical clock of the last use *)
}

type index = {
  ix_mu : Mutex.t;
  ix_tbl : (string, ixent) Hashtbl.t;
  mutable ix_bytes : int; (* sum of live entry bytes *)
  mutable ix_seq : int; (* logical clock, monotonic per store *)
  mutable ix_records : int; (* records appended since the last snapshot *)
  mutable ix_fd : Unix.file_descr option;
}

type t = {
  cache_dir : string;
  upstream : string option;
  read_only : bool Atomic.t;
  mem : Mem.t option;
  max_bytes : int option;
  max_entries : int option;
  quarantine_keep : int;
  ix : index;
  opened : bool Atomic.t;
  open_mu : Mutex.t;
  live : live;
  mutable last_migrated : int; (* entries moved by this handle's open *)
}

let default_dir () =
  match Sys.getenv_opt "POLYUFC_CACHE_DIR" with
  | Some d when d <> "" -> d
  | _ -> "_polyufc_cache"

(* sizes in the environment and on the CLI accept k/M/G suffixes *)
let parse_size s =
  let s = String.trim s in
  let n = String.length s in
  if n = 0 then None
  else
    let scale, digits =
      match s.[n - 1] with
      | 'k' | 'K' -> (1024, String.sub s 0 (n - 1))
      | 'm' | 'M' -> (1024 * 1024, String.sub s 0 (n - 1))
      | 'g' | 'G' -> (1024 * 1024 * 1024, String.sub s 0 (n - 1))
      | _ -> (1, s)
    in
    match int_of_string_opt (String.trim digits) with
    | Some v when v > 0 -> Some (v * scale)
    | _ -> None

let env_size name =
  Option.bind (Sys.getenv_opt name) parse_size

let default_upstream () =
  match Sys.getenv_opt "POLYUFC_CACHE_UPSTREAM" with
  | Some d when d <> "" -> Some d
  | _ -> None

let default_mem_entries = 512
let default_mem_bytes = 32 * 1024 * 1024
let default_quarantine_keep = 32

let create ?dir ?upstream ?(mem_entries = default_mem_entries)
    ?(mem_bytes = default_mem_bytes) ?max_bytes ?max_entries
    ?(quarantine_keep = default_quarantine_keep) () =
  let cache_dir = match dir with Some d -> d | None -> default_dir () in
  let upstream =
    match upstream with
    | Some u -> if u = cache_dir || u = "" then None else Some u
    | None -> (
      match default_upstream () with
      | Some u when u <> cache_dir -> Some u
      | _ -> None)
  in
  let max_bytes =
    match max_bytes with
    | Some _ -> max_bytes
    | None -> env_size "POLYUFC_CACHE_MAX_BYTES"
  in
  let max_entries =
    match max_entries with
    | Some _ -> max_entries
    | None -> env_size "POLYUFC_CACHE_MAX_ENTRIES"
  in
  {
    cache_dir;
    upstream;
    read_only = Atomic.make false;
    mem = Mem.create ~max_entries:mem_entries ~max_bytes:mem_bytes;
    max_bytes;
    max_entries;
    quarantine_keep = max 0 quarantine_keep;
    ix =
      {
        ix_mu = Mutex.create ();
        ix_tbl = Hashtbl.create 64;
        ix_bytes = 0;
        ix_seq = 0;
        ix_records = 0;
        ix_fd = None;
      };
    opened = Atomic.make false;
    open_mu = Mutex.create ();
    live = live_for cache_dir;
    last_migrated = 0;
  }

let dir t = t.cache_dir
let upstream t = t.upstream
let read_only t = Atomic.get t.read_only

let key ?(schema = schema_version) parts =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "polyufc-rcache/%d\n" schema);
  List.iter
    (fun (field, value) ->
      Buffer.add_string buf
        (Printf.sprintf "%d:%s=%d:" (String.length field) field
           (String.length value));
      Buffer.add_string buf value;
      Buffer.add_char buf '\n')
    parts;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let is_hex_name name =
  String.length name > 0
  && String.for_all
       (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false)
       name

let is_entry_name f =
  Filename.check_suffix f ".json"
  && is_hex_name (Filename.chop_suffix f ".json")

let shard_of key = String.sub key 0 (min 2 (String.length key))

let entry_path_in dir key =
  Filename.concat (Filename.concat dir (shard_of key)) (key ^ ".json")

let flat_path_in dir key = Filename.concat dir (key ^ ".json")
let entry_path t key = entry_path_in t.cache_dir key
let quarantine_dir t = Filename.concat t.cache_dir "quarantine"
let meta_dir_of dir = Filename.concat dir "meta"
let index_path_of dir = Filename.concat (meta_dir_of dir) "index"

let warn fmt = Format.eprintf ("polyufc cache warning: " ^^ fmt ^^ "@.")

let mkdir_p dir =
  let rec go d =
    if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Unix.mkdir d 0o755
      with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go dir

let read_file path =
  let ic = open_in_bin path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  (* simulate a bad read (flaky medium, bit rot in the page cache): the
     on-disk entry may be fine, but this read of it is not *)
  if Faultsim.fire Faultsim.Rcache_read_corrupt && String.length text > 0 then begin
    let b = Bytes.of_string text in
    Bytes.set b (String.length text / 2)
      (Char.chr (Char.code (Bytes.get b (String.length text / 2)) lxor 0x20));
    Bytes.to_string b
  end
  else text

let payload_checksum payload = Digest.to_hex (Digest.string (J.to_string payload))

(* ------------------------------------------------------------------ *)
(* Index: append-only log with per-line checksums                      *)
(* ------------------------------------------------------------------ *)

(* Format (text lines):

     polyufc-index/v1
     + <key> <kind> <bytes> <seq>#<crc>
     ~ <key> <seq>#<crc>
     - <key>#<crc>

   <crc> is the first 8 hex chars of the MD5 of the line body.  Appends
   are a single write(2) on an O_APPEND descriptor, so concurrent
   writers interleave whole lines; a torn trailing line from a crash
   fails its checksum and is skipped (counted). *)

let index_header = "polyufc-index/v1"
let line_crc body = String.sub (Digest.to_hex (Digest.string body)) 0 8

(* --- unlocked internals: callers hold ix_mu ----------------------- *)

let ix_close ix =
  match ix.ix_fd with
  | Some fd ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    ix.ix_fd <- None
  | None -> ()

let ix_fd t =
  match t.ix.ix_fd with
  | Some fd -> fd
  | None ->
    mkdir_p (meta_dir_of t.cache_dir);
    let fd =
      Unix.openfile (index_path_of t.cache_dir)
        [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ]
        0o644
    in
    (* a fresh index file needs its header before any record *)
    (if (Unix.fstat fd).Unix.st_size = 0 then
       let h = index_header ^ "\n" in
       ignore (Unix.write_substring fd h 0 (String.length h)));
    t.ix.ix_fd <- Some fd;
    fd

(* apply a record to the in-memory table *)
let ix_apply ix op =
  match op with
  | `Add (key, kind, bytes, seq) ->
    (match Hashtbl.find_opt ix.ix_tbl key with
    | Some e ->
      ix.ix_bytes <- ix.ix_bytes - e.x_bytes + bytes;
      e.x_kind <- kind;
      e.x_bytes <- bytes;
      e.x_seq <- seq
    | None ->
      Hashtbl.replace ix.ix_tbl key { x_kind = kind; x_bytes = bytes; x_seq = seq };
      ix.ix_bytes <- ix.ix_bytes + bytes);
    if seq > ix.ix_seq then ix.ix_seq <- seq
  | `Touch (key, seq) ->
    (match Hashtbl.find_opt ix.ix_tbl key with
    | Some e -> e.x_seq <- seq
    | None -> ());
    if seq > ix.ix_seq then ix.ix_seq <- seq
  | `Del key -> (
    match Hashtbl.find_opt ix.ix_tbl key with
    | Some e ->
      ix.ix_bytes <- ix.ix_bytes - e.x_bytes;
      Hashtbl.remove ix.ix_tbl key
    | None -> ())

let record_body = function
  | `Add (key, kind, bytes, seq) ->
    Printf.sprintf "+ %s %s %d %d" key kind bytes seq
  | `Touch (key, seq) -> Printf.sprintf "~ %s %d" key seq
  | `Del key -> Printf.sprintf "- %s" key

(* write one checksummed record; [Rcache_index_corrupt] simulates a
   crash mid-append by tearing the line in half *)
let ix_append_unlocked t op =
  ix_apply t.ix op;
  t.ix.ix_records <- t.ix.ix_records + 1;
  try
    let body = record_body op in
    let line = body ^ "#" ^ line_crc body ^ "\n" in
    let line =
      if Faultsim.fire Faultsim.Rcache_index_corrupt then
        String.sub line 0 (String.length line / 2)
      else line
    in
    let fd = ix_fd t in
    ignore (Unix.write_substring fd line 0 (String.length line))
  with Unix.Unix_error _ | Sys_error _ ->
    (* the index is advisory: a failed append leaves it stale, and the
       count check on the next open rebuilds it *)
    ()

(* rewrite the log as one record per live entry (compaction), atomically *)
let ix_snapshot_unlocked t =
  let ix = t.ix in
  let entries =
    Hashtbl.fold (fun k e acc -> (k, e) :: acc) ix.ix_tbl []
    |> List.sort (fun (_, a) (_, b) -> compare a.x_seq b.x_seq)
  in
  let buf = Buffer.create (256 + (64 * List.length entries)) in
  Buffer.add_string buf (index_header ^ "\n");
  List.iter
    (fun (k, e) ->
      let body = record_body (`Add (k, e.x_kind, e.x_bytes, e.x_seq)) in
      Buffer.add_string buf body;
      Buffer.add_char buf '#';
      Buffer.add_string buf (line_crc body);
      Buffer.add_char buf '\n')
    entries;
  try
    mkdir_p (meta_dir_of t.cache_dir);
    ix_close ix;
    Io.write_atomic ~fsync:false (index_path_of t.cache_dir)
      (Buffer.contents buf);
    ix.ix_records <- 0
  with Unix.Unix_error _ | Sys_error _ -> ()

(* every entry file under the shard tree (and any flat stragglers),
   with its path — the ground truth the index approximates *)
let scan_entries dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
    Array.fold_left
      (fun acc name ->
        let path = Filename.concat dir name in
        if String.length name = 2 && is_hex_name name && Sys.is_directory path
        then
          match Sys.readdir path with
          | exception Sys_error _ -> acc
          | files ->
            Array.fold_left
              (fun acc f ->
                if is_entry_name f then
                  (Filename.chop_suffix f ".json", Filename.concat path f)
                  :: acc
                else acc)
              acc files
        else if is_entry_name name then
          (Filename.chop_suffix name ".json", path) :: acc
        else acc)
      [] names

(* full rebuild: stat + parse every entry to recover kind/bytes, order
   last-use by mtime so GC age survives the rebuild *)
let ix_rebuild_unlocked t =
  bump c_index_rebuild t.live.l_index_rebuilds;
  Telemetry.Event.warn "rcache.index_rebuild"
    ~fields:[ ("dir", J.Str t.cache_dir) ];
  let ix = t.ix in
  Hashtbl.reset ix.ix_tbl;
  ix.ix_bytes <- 0;
  ix.ix_seq <- 0;
  let entries =
    List.filter_map
      (fun (key, path) ->
        match Unix.stat path with
        | exception Unix.Unix_error _ -> None
        | st ->
          let kind =
            match read_file path with
            | exception (Sys_error _ | Unix.Unix_error _) -> "unreadable"
            | text -> (
              match J.of_string text with
              | Error _ -> "unreadable"
              | Ok doc -> (
                match J.member "kind" doc with
                | Some (J.Str k) -> k
                | _ -> kind_numeric))
          in
          Some (key, kind, st.Unix.st_size, st.Unix.st_mtime))
      (scan_entries t.cache_dir)
    |> List.sort (fun (_, _, _, a) (_, _, _, b) -> compare a b)
  in
  List.iter
    (fun (key, kind, bytes, _) ->
      ix.ix_seq <- ix.ix_seq + 1;
      ix_apply ix (`Add (key, kind, bytes, ix.ix_seq)))
    entries;
  ix_snapshot_unlocked t

let ix_load_unlocked t =
  let ix = t.ix in
  let path = index_path_of t.cache_dir in
  let corrupt = ref (Faultsim.fire Faultsim.Rcache_index_corrupt) in
  (if not !corrupt then
     match open_in_bin path with
     | exception Sys_error _ -> corrupt := true (* missing: rebuild below *)
     | ic ->
       Fun.protect
         ~finally:(fun () -> close_in_noerr ic)
         (fun () ->
           match input_line ic with
           | exception End_of_file -> corrupt := true
           | header when header <> index_header -> corrupt := true
           | _ -> (
             try
               while true do
                 let line = input_line ic in
                 match String.rindex_opt line '#' with
                 | None ->
                   if String.trim line <> "" then
                     bump c_index_bad_line t.live.l_index_bad_lines
                 | Some i ->
                   let body = String.sub line 0 i in
                   let crc = String.sub line (i + 1) (String.length line - i - 1) in
                   if crc <> line_crc body then
                     bump c_index_bad_line t.live.l_index_bad_lines
                   else begin
                     match String.split_on_char ' ' body with
                     | [ "+"; key; kind; bytes; seq ] -> (
                       match (int_of_string_opt bytes, int_of_string_opt seq) with
                       | Some b, Some s when b >= 0 ->
                         ix_apply ix (`Add (key, kind, b, s))
                       | _ -> bump c_index_bad_line t.live.l_index_bad_lines)
                     | [ "~"; key; seq ] -> (
                       match int_of_string_opt seq with
                       | Some s -> ix_apply ix (`Touch (key, s))
                       | None -> bump c_index_bad_line t.live.l_index_bad_lines)
                     | [ "-"; key ] -> ix_apply ix (`Del key)
                     | _ -> bump c_index_bad_line t.live.l_index_bad_lines
                   end
               done
             with End_of_file -> ())));
  (* cross-check against the shard tree: a crash between a file
     operation and its index record leaves the counts disagreeing *)
  let on_disk = List.length (scan_entries t.cache_dir) in
  if !corrupt || Hashtbl.length ix.ix_tbl <> on_disk then begin
    Hashtbl.reset ix.ix_tbl;
    ix.ix_bytes <- 0;
    (* a fresh store (no index file, no entries) is not a rebuild *)
    if on_disk > 0 || (not !corrupt) || Sys.file_exists path then
      ix_rebuild_unlocked t
  end

(* ------------------------------------------------------------------ *)
(* Open: flat -> sharded migration, then index load                    *)
(* ------------------------------------------------------------------ *)

let migrate_flat_unlocked t =
  match Sys.readdir t.cache_dir with
  | exception Sys_error _ -> 0
  | names ->
    Array.fold_left
      (fun n f ->
        if is_entry_name f then begin
          let key = Filename.chop_suffix f ".json" in
          let src = Filename.concat t.cache_dir f in
          let dst = entry_path_in t.cache_dir key in
          match
            mkdir_p (Filename.dirname dst);
            Sys.rename src dst
          with
          | () ->
            bump c_migrated t.live.l_migrated;
            n + 1
          | exception (Sys_error _ | Unix.Unix_error _) ->
            (* e.g. a concurrent migrator won the rename: if the entry
               now exists sharded, drop the flat duplicate *)
            if Sys.file_exists dst then (try Sys.remove src with Sys_error _ -> ());
            n
        end
        else n)
      0 names

let open_store t =
  if not (Atomic.get t.opened) then
    Mutex.protect t.open_mu (fun () ->
        if not (Atomic.get t.opened) then begin
          Mutex.protect t.ix.ix_mu (fun () ->
              let migrated = migrate_flat_unlocked t in
              t.last_migrated <- migrated;
              if migrated > 0 then
                Telemetry.Event.info "rcache.migrated"
                  ~fields:
                    [
                      ("dir", J.Str t.cache_dir); ("entries", J.Int migrated);
                    ];
              ix_load_unlocked t);
          Atomic.set t.opened true
        end)

(* ------------------------------------------------------------------ *)
(* Quarantine (bounded)                                                *)
(* ------------------------------------------------------------------ *)

(* keep only the newest [quarantine_keep] quarantined files: the
   quarantine is post-mortem evidence, not an archive, and an unbounded
   one fills the disk exactly when the store is already struggling *)
let prune_quarantine t =
  let qdir = quarantine_dir t in
  match Sys.readdir qdir with
  | exception Sys_error _ -> ()
  | files when Array.length files <= t.quarantine_keep -> ()
  | files ->
    let dated =
      Array.to_list files
      |> List.filter_map (fun f ->
             let p = Filename.concat qdir f in
             match Unix.stat p with
             | exception Unix.Unix_error _ -> None
             | st -> Some (st.Unix.st_mtime, f, p))
      |> List.sort compare (* oldest first; name breaks mtime ties *)
    in
    let excess = List.length dated - t.quarantine_keep in
    List.iteri
      (fun i (_, _, p) ->
        if i < excess then begin
          (try Sys.remove p with Sys_error _ -> ());
          bump c_quarantine_dropped t.live.l_quarantine_dropped
        end)
      dated

(* move a corrupt entry out of the addressable namespace so it can be
   inspected post-mortem and is never re-read; fall back to deleting it
   when the move itself fails (read-only quarantine dir, cross-device) *)
let quarantine t path why =
  bump c_corrupt t.live.l_corrupt;
  bump c_quarantined t.live.l_quarantined;
  Telemetry.Event.warn "rcache.quarantine"
    ~fields:[ ("entry", J.Str (Filename.basename path)); ("why", J.Str why) ];
  let qdir = quarantine_dir t in
  (match
     if not (Sys.file_exists qdir) then Unix.mkdir qdir 0o755;
     Sys.rename path (Filename.concat qdir (Filename.basename path))
   with
  | () -> warn "quarantined corrupt entry %s (%s)" path why
  | exception (Sys_error _ | Unix.Unix_error _) ->
    (try Sys.remove path with Sys_error _ -> ());
    warn "removed corrupt entry %s (%s; quarantine unavailable)" path why);
  prune_quarantine t;
  (* the slot is gone from disk; keep the index in agreement *)
  let key = Filename.chop_suffix (Filename.basename path) ".json" in
  Mutex.protect t.ix.ix_mu (fun () ->
      if Hashtbl.mem t.ix.ix_tbl key then ix_append_unlocked t (`Del key))

(* ------------------------------------------------------------------ *)
(* Entry parsing                                                       *)
(* ------------------------------------------------------------------ *)

type parsed = Good of J.t * string | Stale | Bad of string

let parse_entry text =
  match J.of_string text with
  | Error msg -> Bad msg
  | Ok doc -> (
    match J.member "schema" doc with
    | Some (J.Int v) when v <> schema_version -> Stale
    | Some (J.Int _) -> (
      match (J.member "payload" doc, J.member "checksum" doc) with
      | Some payload, Some (J.Str sum) ->
        if String.equal (payload_checksum payload) sum then
          let kind =
            match J.member "kind" doc with
            | Some (J.Str k) -> k
            | _ -> kind_numeric
          in
          Good (payload, kind)
        else Bad "checksum mismatch"
      | Some _, _ -> Bad "missing checksum field"
      | None, _ -> Bad "missing payload field")
    | _ -> Bad "missing schema field")

(* one read of [path], with the one-retry-then-done policy *)
let read_entry path =
  if not (Sys.file_exists path) then None
  else
    let attempt () =
      match read_file path with
      | exception Sys_error msg -> Bad msg
      | text -> parse_entry text
    in
    Some
      (match attempt () with
      | Bad _ -> attempt () (* one retry: short read racing a writer *)
      | ok -> ok)

(* ------------------------------------------------------------------ *)
(* Store                                                               *)
(* ------------------------------------------------------------------ *)

(* ENOSPC means every further write will fail too: stop trying, keep
   serving hits.  One warning, one counted flip; stores become no-ops. *)
let flip_read_only t =
  if Atomic.compare_and_set t.read_only false true then begin
    bump c_readonly_flip t.live.l_readonly_flips;
    Telemetry.Event.warn "rcache.readonly_flip"
      ~fields:[ ("dir", J.Str t.cache_dir) ];
    warn "disk full: cache %s now read-only (existing entries still served)"
      t.cache_dir
  end

let compaction_due ix = ix.ix_records > 64 + (4 * Hashtbl.length ix.ix_tbl)

(* forward declaration to let [store] trigger the opportunistic GC *)
let rec_gc = ref (fun ?float_goal:(_ : float option) (_ : t) -> ())

let over_watermark t =
  Mutex.protect t.ix.ix_mu (fun () ->
      (match t.max_bytes with
      | Some wm -> t.ix.ix_bytes > wm
      | None -> false)
      ||
      match t.max_entries with
      | Some wm -> Hashtbl.length t.ix.ix_tbl > wm
      | None -> false)

let store ?kind t key payload =
  open_store t;
  (* the memory tier takes every store, even when the disk is full or
     gone: a daemon on a dead disk keeps its working set warm *)
  (match t.mem with
  | Some m ->
    Mem.put m key payload ~on_evict:(fun () ->
        bump c_mem_evict t.live.l_mem_evictions)
  | None -> ());
  if not (Atomic.get t.read_only) then begin
    let doc =
      J.Obj
        ([
           ("schema", J.Int schema_version);
           ("checksum", J.Str (payload_checksum payload));
           ("payload", payload);
         ]
        @ match kind with Some k -> [ ("kind", J.Str k) ] | None -> [])
    in
    let text = J.to_string doc in
    (* a torn write lands a prefix of the entry: the atomic rename makes
       this impossible for real, so simulate the *outcome* (truncated
       bytes at the final path) to exercise detection + quarantine *)
    let text =
      if Faultsim.fire Faultsim.Rcache_torn_write then
        String.sub text 0 (String.length text / 2)
      else text
    in
    let path = entry_path t key in
    match
      mkdir_p (Filename.dirname path);
      if Faultsim.fire Faultsim.Rcache_enospc then
        raise (Unix.Unix_error (Unix.ENOSPC, "write", path));
      Io.write_atomic
        ~on_retry:(fun () ->
          bump c_write_retry t.live.l_write_retries;
          Telemetry.Event.info "rcache.write_retry"
            ~fields:[ ("entry", J.Str key) ])
        path text
    with
    | () ->
      bump c_store t.live.l_stores;
      let kind = Option.value kind ~default:kind_numeric in
      Mutex.protect t.ix.ix_mu (fun () ->
          t.ix.ix_seq <- t.ix.ix_seq + 1;
          ix_append_unlocked t (`Add (key, kind, String.length text, t.ix.ix_seq));
          if compaction_due t.ix then ix_snapshot_unlocked t);
      if over_watermark t then !rec_gc ~float_goal:0.875 t
    | exception Unix.Unix_error (Unix.ENOSPC, _, _) -> flip_read_only t
    | exception (Sys_error msg | Unix.Unix_error (_, msg, _)) ->
      Telemetry.Event.warn "rcache.store_failed"
        ~fields:[ ("entry", J.Str key); ("why", J.Str msg) ];
      warn "cannot store entry %s (%s)" key msg
  end

(* ------------------------------------------------------------------ *)
(* Find: mem -> local disk -> upstream (with promotion)                *)
(* ------------------------------------------------------------------ *)

let touch t key =
  Mutex.protect t.ix.ix_mu (fun () ->
      if Hashtbl.mem t.ix.ix_tbl key then begin
        t.ix.ix_seq <- t.ix.ix_seq + 1;
        ix_append_unlocked t (`Touch (key, t.ix.ix_seq));
        if compaction_due t.ix then ix_snapshot_unlocked t
      end)

let mem_put t key payload =
  match t.mem with
  | Some m ->
    Mem.put m key payload ~on_evict:(fun () ->
        bump c_mem_evict t.live.l_mem_evictions)
  | None -> ()

(* the local disk tier: sharded path first, flat path as a fallback for
   stores whose migration could not run (read-only filesystem) *)
let disk_find t key =
  let try_path path =
    match read_entry path with
    | None -> `Absent
    | Some (Good (payload, kind)) -> `Good (payload, kind)
    | Some Stale -> `Stale
    | Some (Bad why) -> `Bad (path, why)
  in
  match try_path (entry_path t key) with
  | `Absent -> try_path (flat_path_in t.cache_dir key)
  | r -> r

(* upstream is someone else's store: never write to it, never
   quarantine into it — corruption there is just a miss here *)
let upstream_find t up key =
  let try_path path =
    match read_entry path with
    | Some (Good (payload, kind)) -> Some (payload, kind)
    | Some (Bad why) ->
      bump c_corrupt t.live.l_corrupt;
      warn "ignoring corrupt upstream entry %s (%s)" path why;
      None
    | Some Stale | None -> None
  in
  match try_path (entry_path_in up key) with
  | Some r -> Some r
  | None -> try_path (flat_path_in up key)

let find t key =
  open_store t;
  match t.mem with
  | Some m when Mem.find m key <> None ->
    bump c_mem_hit t.live.l_mem_hits;
    bump c_hit t.live.l_hits;
    Mem.find m key
  | _ -> (
    Telemetry.tick c_mem_miss;
    match disk_find t key with
    | `Good (payload, _kind) ->
      bump c_disk_hit t.live.l_disk_hits;
      bump c_hit t.live.l_hits;
      mem_put t key payload;
      touch t key;
      Some payload
    | (`Absent | `Stale | `Bad _) as local -> (
      (match local with
      | `Bad (path, why) -> quarantine t path why
      | _ -> ());
      Telemetry.tick c_disk_miss;
      match t.upstream with
      | None ->
        bump c_miss t.live.l_misses;
        None
      | Some up -> (
        match upstream_find t up key with
        | Some (payload, kind) ->
          bump c_upstream_hit t.live.l_upstream_hits;
          bump c_hit t.live.l_hits;
          bump c_promotion t.live.l_promotions;
          Telemetry.Event.debug "rcache.promote"
            ~fields:[ ("entry", J.Str key) ];
          (* promotion: replay the upstream entry into the local tiers
             (kind preserved; the numeric default stays untagged so the
             promoted file is byte-identical to the upstream original)
             so the next lookup never leaves this box *)
          store ?kind:(if kind = kind_numeric then None else Some kind) t key
            payload;
          Some payload
        | None ->
          Telemetry.tick c_upstream_miss;
          bump c_miss t.live.l_misses;
          None)))

let find_or_add t ~key ~decode ~encode f =
  match find t key with
  | Some payload -> (
    match decode payload with
    | Some v -> v
    | None ->
      (* decodable JSON but not the expected shape; the store below
         overwrites (= repairs) the entry, no quarantine needed *)
      bump c_corrupt t.live.l_corrupt;
      (match t.mem with Some m -> Mem.remove m key | None -> ());
      warn "ignoring undecodable entry %s" key;
      let v = f () in
      store t key (encode v);
      v)
  | None ->
    let v = f () in
    store t key (encode v);
    v

(* ------------------------------------------------------------------ *)
(* Stats (index-sourced: no entry scan)                                *)
(* ------------------------------------------------------------------ *)

type stats = { entries : int; bytes : int }

let stats t =
  open_store t;
  Mutex.protect t.ix.ix_mu (fun () ->
      { entries = Hashtbl.length t.ix.ix_tbl; bytes = t.ix.ix_bytes })

let stats_by_kind t =
  open_store t;
  Mutex.protect t.ix.ix_mu (fun () ->
      let tbl = Hashtbl.create 4 in
      Hashtbl.iter
        (fun _ e ->
          let prev =
            Option.value
              (Hashtbl.find_opt tbl e.x_kind)
              ~default:{ entries = 0; bytes = 0 }
          in
          Hashtbl.replace tbl e.x_kind
            { entries = prev.entries + 1; bytes = prev.bytes + e.x_bytes })
        t.ix.ix_tbl;
      List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []))

let mem_stats t =
  match t.mem with
  | None -> { entries = 0; bytes = 0 }
  | Some m ->
    let entries, bytes = Mem.stats m in
    { entries; bytes }

type index_health = {
  indexed_entries : int;
  indexed_bytes : int;
  log_records : int;  (* appended since the last snapshot *)
  migrated : int;  (* flat entries moved by this handle's open *)
}

let index_health t =
  open_store t;
  Mutex.protect t.ix.ix_mu (fun () ->
      {
        indexed_entries = Hashtbl.length t.ix.ix_tbl;
        indexed_bytes = t.ix.ix_bytes;
        log_records = t.ix.ix_records;
        migrated = t.last_migrated;
      })

let migrate t =
  open_store t;
  t.last_migrated

let clear t =
  open_store t;
  (match t.mem with Some m -> Mem.clear m | None -> ());
  Mutex.protect t.ix.ix_mu (fun () ->
      let removed =
        List.fold_left
          (fun n (_, path) ->
            try
              Sys.remove path;
              n + 1
            with Sys_error _ -> n)
          0 (scan_entries t.cache_dir)
      in
      Hashtbl.reset t.ix.ix_tbl;
      t.ix.ix_bytes <- 0;
      if Sys.file_exists (index_path_of t.cache_dir) then
        ix_snapshot_unlocked t;
      removed)

(* ------------------------------------------------------------------ *)
(* Garbage collection                                                  *)
(* ------------------------------------------------------------------ *)

type gc_report = {
  examined : int;
  evicted : int;
  evicted_bytes : int;
  live_entries : int;
  live_bytes : int;
  interrupted : bool;  (* an injected gc_crash stopped the sweep *)
}

(* Evict least-recently-used entries until the store fits under the
   watermarks.  [goal] scales the targets (opportunistic GC under-shoots
   to 7/8 so the very next store does not immediately re-trigger).

   Crash ordering: the entry file is removed *before* the `-` record is
   appended.  A crash in between leaves a stale index row for a file
   that no longer exists — a miss if probed, and repaired wholesale by
   the open-time count check.  The opposite order could record a
   removal that never happened, silently hiding a live entry. *)
let gc_with ?(goal = 1.0) ?max_bytes ?max_entries t =
  open_store t;
  let wm_bytes = match max_bytes with Some _ -> max_bytes | None -> t.max_bytes in
  let wm_entries =
    match max_entries with Some _ -> max_entries | None -> t.max_entries
  in
  let scale wm = int_of_float (goal *. float_of_int wm) in
  Mutex.protect t.ix.ix_mu (fun () ->
      let live_entries () = Hashtbl.length t.ix.ix_tbl in
      let over () =
        (match wm_bytes with
        | Some wm -> t.ix.ix_bytes > scale wm
        | None -> false)
        ||
        match wm_entries with
        | Some wm -> live_entries () > scale wm
        | None -> false
      in
      if (wm_bytes = None && wm_entries = None) || not (over ()) then
        {
          examined = live_entries ();
          evicted = 0;
          evicted_bytes = 0;
          live_entries = live_entries ();
          live_bytes = t.ix.ix_bytes;
          interrupted = false;
        }
      else begin
        bump c_gc_run t.live.l_gc_runs;
        let victims =
          Hashtbl.fold (fun k e acc -> (k, e) :: acc) t.ix.ix_tbl []
          |> List.sort (fun (_, a) (_, b) -> compare a.x_seq b.x_seq)
        in
        let examined = List.length victims in
        let evicted = ref 0 and evicted_bytes = ref 0 in
        let interrupted = ref false in
        (try
           List.iter
             (fun (key, e) ->
               if not (over ()) then raise Exit;
               (try Sys.remove (entry_path t key) with Sys_error _ -> ());
               (try Sys.remove (flat_path_in t.cache_dir key)
                with Sys_error _ -> ());
               (* kill -9 lands here: file gone, removal unrecorded *)
               if Faultsim.fire Faultsim.Rcache_gc_crash then begin
                 bump c_gc_crash t.live.l_gc_crashes;
                 Telemetry.Event.warn "rcache.gc_crash"
                   ~fields:[ ("dir", J.Str t.cache_dir) ];
                 interrupted := true;
                 raise Exit
               end;
               ix_append_unlocked t (`Del key);
               (match t.mem with Some m -> Mem.remove m key | None -> ());
               bump c_eviction t.live.l_evictions;
               incr evicted;
               evicted_bytes := !evicted_bytes + e.x_bytes)
             victims
         with Exit -> ());
        if (not !interrupted) && compaction_due t.ix then ix_snapshot_unlocked t;
        Telemetry.Event.info "rcache.gc"
          ~fields:
            [
              ("dir", J.Str t.cache_dir);
              ("evicted", J.Int !evicted);
              ("evicted_bytes", J.Int !evicted_bytes);
              ("live_bytes", J.Int t.ix.ix_bytes);
            ];
        {
          examined;
          evicted = !evicted;
          evicted_bytes = !evicted_bytes;
          live_entries = live_entries ();
          live_bytes = t.ix.ix_bytes;
          interrupted = !interrupted;
        }
      end)

let gc ?max_bytes ?max_entries t = gc_with ?max_bytes ?max_entries t

let () =
  rec_gc :=
    fun ?float_goal t ->
      ignore (gc_with ?goal:float_goal t)

(* ------------------------------------------------------------------ *)
(* Cumulative counters across processes                                *)
(* ------------------------------------------------------------------ *)

(* The process counters die with the process, so a later
   [polyufc cache stats] would always report zeros.  On exit, a process
   that touched a cache merges each directory's counters into that
   directory's sidecar at [<dir>/meta/counters.json].  [cumulative] =
   sidecar + the current process, giving hit-rate numbers that survive
   restarts. *)

let counters_sidecar dir = Filename.concat (meta_dir_of dir) "counters.json"

let count_fields =
  [
    ("hits", (fun c -> c.hits), fun c v -> { c with hits = v });
    ("misses", (fun c -> c.misses), fun c v -> { c with misses = v });
    ("stores", (fun c -> c.stores), fun c v -> { c with stores = v });
    ("corrupt", (fun c -> c.corrupt), fun c v -> { c with corrupt = v });
    ( "quarantined",
      (fun c -> c.quarantined),
      fun c v -> { c with quarantined = v } );
    ( "write_retries",
      (fun c -> c.write_retries),
      fun c v -> { c with write_retries = v } );
    ( "readonly_flips",
      (fun c -> c.readonly_flips),
      fun c v -> { c with readonly_flips = v } );
    ("mem_hits", (fun c -> c.mem_hits), fun c v -> { c with mem_hits = v });
    ("disk_hits", (fun c -> c.disk_hits), fun c v -> { c with disk_hits = v });
    ( "upstream_hits",
      (fun c -> c.upstream_hits),
      fun c v -> { c with upstream_hits = v } );
    ("promotions", (fun c -> c.promotions), fun c v -> { c with promotions = v });
    ("evictions", (fun c -> c.evictions), fun c v -> { c with evictions = v });
    ( "mem_evictions",
      (fun c -> c.mem_evictions),
      fun c v -> { c with mem_evictions = v } );
    ("gc_runs", (fun c -> c.gc_runs), fun c v -> { c with gc_runs = v });
    ("gc_crashes", (fun c -> c.gc_crashes), fun c v -> { c with gc_crashes = v });
    ("migrated", (fun c -> c.migrated), fun c v -> { c with migrated = v });
    ( "index_rebuilds",
      (fun c -> c.index_rebuilds),
      fun c v -> { c with index_rebuilds = v } );
    ( "index_bad_lines",
      (fun c -> c.index_bad_lines),
      fun c v -> { c with index_bad_lines = v } );
    ( "quarantine_dropped",
      (fun c -> c.quarantine_dropped),
      fun c v -> { c with quarantine_dropped = v } );
  ]

let zero_counts =
  {
    hits = 0;
    misses = 0;
    stores = 0;
    corrupt = 0;
    quarantined = 0;
    write_retries = 0;
    readonly_flips = 0;
    mem_hits = 0;
    disk_hits = 0;
    upstream_hits = 0;
    promotions = 0;
    evictions = 0;
    mem_evictions = 0;
    gc_runs = 0;
    gc_crashes = 0;
    migrated = 0;
    index_rebuilds = 0;
    index_bad_lines = 0;
    quarantine_dropped = 0;
  }

let live_pairs l =
  [
    ((fun c v -> { c with hits = v }), l.l_hits);
    ((fun c v -> { c with misses = v }), l.l_misses);
    ((fun c v -> { c with stores = v }), l.l_stores);
    ((fun c v -> { c with corrupt = v }), l.l_corrupt);
    ((fun c v -> { c with quarantined = v }), l.l_quarantined);
    ((fun c v -> { c with write_retries = v }), l.l_write_retries);
    ((fun c v -> { c with readonly_flips = v }), l.l_readonly_flips);
    ((fun c v -> { c with mem_hits = v }), l.l_mem_hits);
    ((fun c v -> { c with disk_hits = v }), l.l_disk_hits);
    ((fun c v -> { c with upstream_hits = v }), l.l_upstream_hits);
    ((fun c v -> { c with promotions = v }), l.l_promotions);
    ((fun c v -> { c with evictions = v }), l.l_evictions);
    ((fun c v -> { c with mem_evictions = v }), l.l_mem_evictions);
    ((fun c v -> { c with gc_runs = v }), l.l_gc_runs);
    ((fun c v -> { c with gc_crashes = v }), l.l_gc_crashes);
    ((fun c v -> { c with migrated = v }), l.l_migrated);
    ((fun c v -> { c with index_rebuilds = v }), l.l_index_rebuilds);
    ((fun c v -> { c with index_bad_lines = v }), l.l_index_bad_lines);
    ((fun c v -> { c with quarantine_dropped = v }), l.l_quarantine_dropped);
  ]

let snapshot_live l =
  List.fold_left (fun c (set, a) -> set c (Atomic.get a)) zero_counts
    (live_pairs l)

let add_counts a b =
  List.fold_left
    (fun c (_, get, set) -> set c (get a + get b))
    zero_counts count_fields

let counts_for t = snapshot_live t.live

let counts () =
  Mutex.protect registry_mutex (fun () ->
      Hashtbl.fold (fun _ l acc -> add_counts acc (snapshot_live l)) registry
        zero_counts)

let json_of_counts c =
  J.Obj
    (("schema", J.Str "polyufc-cache-counters/v2")
    :: List.map (fun (name, get, _) -> (name, J.Int (get c))) count_fields)

(* v1 sidecars (pre-tiering) simply lack the new fields; folding over
   whatever fields are present reads both versions *)
let counts_of_json doc =
  List.fold_left
    (fun c (name, _, set) ->
      match J.member name doc with
      | Some (J.Int v) when v >= 0 -> set c v
      | _ -> c)
    zero_counts count_fields

let saved_counts dir =
  match read_file (counters_sidecar dir) with
  | exception (Sys_error _ | Unix.Unix_error _) -> zero_counts
  | text -> (
    match J.of_string text with
    | Ok doc -> counts_of_json doc
    | Error _ -> zero_counts)

let cumulative t = add_counts (saved_counts t.cache_dir) (counts_for t)

let persist_mutex = Mutex.create ()

(* Counters accumulated since the last flush are merged into each
   directory's own sidecar and then subtracted from that directory's
   atomics, so flushing is safe to do repeatedly (a long-lived daemon
   flushes on drain; at_exit then only persists whatever arrived after
   that) without double counting — and a process that touched several
   stores attributes each event to the directory it happened in. *)
let flush_counters () =
  Mutex.protect persist_mutex @@ fun () ->
  let dirs =
    Mutex.protect registry_mutex (fun () ->
        Hashtbl.fold (fun dir l acc -> (dir, l) :: acc) registry [])
  in
  List.iter
    (fun (dir, l) ->
      let now = snapshot_live l in
      if now <> zero_counts then begin
        (try
           mkdir_p (meta_dir_of dir);
           Io.write_atomic ~fsync:false (counters_sidecar dir)
             (J.to_string (json_of_counts (add_counts (saved_counts dir) now))
             ^ "\n")
         with Sys_error _ | Unix.Unix_error _ -> ());
        (* subtract exactly what was persisted; increments racing this
           flush survive in the atomics for the next one *)
        List.iter2
          (fun (_, get, _) (_, a) -> ignore (Atomic.fetch_and_add a (- get now)))
          count_fields (live_pairs l)
      end)
    dirs

let () = at_exit flush_counters
