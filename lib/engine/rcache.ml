(* Content-addressed on-disk memoization store.

   Layout: one file per entry, [<dir>/<digest>.json], containing
   {"schema": V, "checksum": <hex digest of payload>, "payload": <value>}.
   The file-name digest covers a canonical, length-prefixed encoding of
   the key parts plus the schema version, so collisions between fields
   ("ab"+"c" vs "a"+"bc") are impossible and a version bump re-addresses
   everything.  The embedded checksum covers the payload *contents*,
   which the file name cannot: a truncated or bit-flipped entry that
   still parses as JSON is detected here.

   A read that fails (I/O error, bad JSON, bad checksum) is retried once
   — a concurrent writer's rename can race the first read — and then the
   entry is quarantined to [<dir>/quarantine/] for post-mortem instead of
   being re-read forever or failing the analysis.

   Writes go through [Io.write_atomic] (tmp + fsync + rename, one retry
   on transient errors).  ENOSPC is not transient: it flips the cache to
   a degraded read-only mode — hits keep being served, stores become
   no-ops — because retrying writes on a full disk only burns time and
   log lines.  The flip is counted and warned once, never fatal. *)

module J = Telemetry.Json

type t = { cache_dir : string; read_only : bool Atomic.t }

(* 2: payload checksum added (PR 4); 1: initial layout *)
let schema_version = 2

let c_hit = Telemetry.counter "engine.cache.hit"
let c_miss = Telemetry.counter "engine.cache.miss"
let c_store = Telemetry.counter "engine.cache.store"
let c_corrupt = Telemetry.counter "engine.cache.corrupt"
let c_quarantined = Telemetry.counter "engine.cache.quarantined"
let c_write_retry = Telemetry.counter "engine.cache_write_retries"
let c_readonly_flip = Telemetry.counter "engine.cache_readonly_flips"

(* always-on process counters: the CLI's `cache stats` and the tests must
   see hit/miss activity even when the telemetry registry is disabled *)
let n_hit = Atomic.make 0
let n_miss = Atomic.make 0
let n_store = Atomic.make 0
let n_corrupt = Atomic.make 0
let n_quarantined = Atomic.make 0
let n_write_retry = Atomic.make 0
let n_readonly_flip = Atomic.make 0

let bump telemetry_c process_c =
  Telemetry.tick telemetry_c;
  ignore (Atomic.fetch_and_add process_c 1)

let default_dir () =
  match Sys.getenv_opt "POLYUFC_CACHE_DIR" with
  | Some d when d <> "" -> d
  | _ -> "_polyufc_cache"

(* forward declaration: [create] below registers the cache directory as
   the process's counter-persistence target (see "Cumulative counters") *)
let register_persist_dir = ref (fun (_ : string) -> ())

let create ?dir () =
  let cache_dir = match dir with Some d -> d | None -> default_dir () in
  !register_persist_dir cache_dir;
  { cache_dir; read_only = Atomic.make false }

let dir t = t.cache_dir
let read_only t = Atomic.get t.read_only

let key ?(schema = schema_version) parts =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "polyufc-rcache/%d\n" schema);
  List.iter
    (fun (field, value) ->
      Buffer.add_string buf
        (Printf.sprintf "%d:%s=%d:" (String.length field) field
           (String.length value));
      Buffer.add_string buf value;
      Buffer.add_char buf '\n')
    parts;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let entry_path t key = Filename.concat t.cache_dir (key ^ ".json")
let quarantine_dir t = Filename.concat t.cache_dir "quarantine"

let warn fmt =
  Format.eprintf ("polyufc cache warning: " ^^ fmt ^^ "@.")

let read_file path =
  let ic = open_in_bin path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  (* simulate a bad read (flaky medium, bit rot in the page cache): the
     on-disk entry may be fine, but this read of it is not *)
  if Faultsim.fire Faultsim.Rcache_read_corrupt && String.length text > 0 then begin
    let b = Bytes.of_string text in
    Bytes.set b (String.length text / 2)
      (Char.chr (Char.code (Bytes.get b (String.length text / 2)) lxor 0x20));
    Bytes.to_string b
  end
  else text

let payload_checksum payload = Digest.to_hex (Digest.string (J.to_string payload))

(* move a corrupt entry out of the addressable namespace so it can be
   inspected post-mortem and is never re-read; fall back to deleting it
   when the move itself fails (read-only quarantine dir, cross-device) *)
let quarantine t path why =
  bump c_corrupt n_corrupt;
  bump c_quarantined n_quarantined;
  Telemetry.Event.warn "rcache.quarantine"
    ~fields:[ ("entry", J.Str (Filename.basename path)); ("why", J.Str why) ];
  let qdir = quarantine_dir t in
  match
    if not (Sys.file_exists qdir) then Unix.mkdir qdir 0o755;
    Sys.rename path (Filename.concat qdir (Filename.basename path))
  with
  | () -> warn "quarantined corrupt entry %s (%s)" path why
  | exception (Sys_error _ | Unix.Unix_error _) ->
    (try Sys.remove path with Sys_error _ -> ());
    warn "removed corrupt entry %s (%s; quarantine unavailable)" path why

type parsed = Good of J.t | Stale | Bad of string

let parse_entry text =
  match J.of_string text with
  | Error msg -> Bad msg
  | Ok doc -> (
    match J.member "schema" doc with
    | Some (J.Int v) when v <> schema_version -> Stale
    | Some (J.Int _) -> (
      match (J.member "payload" doc, J.member "checksum" doc) with
      | Some payload, Some (J.Str sum) ->
        if String.equal (payload_checksum payload) sum then Good payload
        else Bad "checksum mismatch"
      | Some _, _ -> Bad "missing checksum field"
      | None, _ -> Bad "missing payload field")
    | _ -> Bad "missing schema field")

let find t key =
  let path = entry_path t key in
  if not (Sys.file_exists path) then begin
    bump c_miss n_miss;
    None
  end
  else begin
    let attempt () =
      match read_file path with
      | exception Sys_error msg -> Bad msg
      | text -> parse_entry text
    in
    let parsed =
      match attempt () with
      | Bad _ -> attempt () (* one retry: short read racing a writer *)
      | ok -> ok
    in
    match parsed with
    | Good payload ->
      bump c_hit n_hit;
      Some payload
    | Stale ->
      (* a well-formed entry from another schema version: a plain miss,
         not corruption (left in place for the version that owns it) *)
      bump c_miss n_miss;
      None
    | Bad why ->
      quarantine t path why;
      bump c_miss n_miss;
      None
  end

(* ENOSPC means every further write will fail too: stop trying, keep
   serving hits.  One warning, one counted flip; stores become no-ops. *)
let flip_read_only t =
  if Atomic.compare_and_set t.read_only false true then begin
    bump c_readonly_flip n_readonly_flip;
    Telemetry.Event.warn "rcache.readonly_flip"
      ~fields:[ ("dir", J.Str t.cache_dir) ];
    warn "disk full: cache %s now read-only (existing entries still served)"
      t.cache_dir
  end

(* entry kinds: plain analysis results carry no marker and count as
   [kind_numeric]; symbolic chamber decompositions are tagged so
   `cache stats` can report the tiers separately.  The field rides in
   the v2 document — [parse_entry] ignores unknown fields, so old
   readers still accept tagged entries and untagged entries still
   parse here. *)
let kind_numeric = "numeric/v2"
let kind_symbolic = "symbolic/v1"

let store ?kind t key payload =
  if not (Atomic.get t.read_only) then begin
    let doc =
      J.Obj
        ([
           ("schema", J.Int schema_version);
           ("checksum", J.Str (payload_checksum payload));
           ("payload", payload);
         ]
        @ match kind with Some k -> [ ("kind", J.Str k) ] | None -> [])
    in
    let text = J.to_string doc in
    (* a torn write lands a prefix of the entry: the atomic rename makes
       this impossible for real, so simulate the *outcome* (truncated
       bytes at the final path) to exercise detection + quarantine *)
    let text =
      if Faultsim.fire Faultsim.Rcache_torn_write then
        String.sub text 0 (String.length text / 2)
      else text
    in
    try
      if not (Sys.file_exists t.cache_dir) then Unix.mkdir t.cache_dir 0o755;
      if Faultsim.fire Faultsim.Rcache_enospc then
        raise (Unix.Unix_error (Unix.ENOSPC, "write", entry_path t key));
      Io.write_atomic
        ~on_retry:(fun () ->
          bump c_write_retry n_write_retry;
          Telemetry.Event.info "rcache.write_retry"
            ~fields:[ ("entry", J.Str key) ])
        (entry_path t key) text;
      bump c_store n_store
    with
    | Unix.Unix_error (Unix.ENOSPC, _, _) -> flip_read_only t
    | Sys_error msg | Unix.Unix_error (_, msg, _) ->
      Telemetry.Event.warn "rcache.store_failed"
        ~fields:[ ("entry", J.Str key); ("why", J.Str msg) ];
      warn "cannot store entry %s (%s)" key msg
  end

let find_or_add t ~key ~decode ~encode f =
  match find t key with
  | Some payload -> (
    match decode payload with
    | Some v -> v
    | None ->
      (* decodable JSON but not the expected shape; the store below
         overwrites (= repairs) the entry, no quarantine needed *)
      bump c_corrupt n_corrupt;
      warn "ignoring undecodable entry %s" key;
      let v = f () in
      store t key (encode v);
      v)
  | None ->
    let v = f () in
    store t key (encode v);
    v

type stats = { entries : int; bytes : int }

let stats t =
  match Sys.readdir t.cache_dir with
  | exception Sys_error _ -> { entries = 0; bytes = 0 }
  | files ->
    Array.fold_left
      (fun acc f ->
        if Filename.check_suffix f ".json" then
          let bytes =
            try (Unix.stat (Filename.concat t.cache_dir f)).Unix.st_size
            with Unix.Unix_error _ -> 0
          in
          { entries = acc.entries + 1; bytes = acc.bytes + bytes }
        else acc)
      { entries = 0; bytes = 0 }
      files

(* per-kind entry census: parses each entry to read its [kind] tag
   (absent = numeric).  Cold path — used by `cache stats` only. *)
let stats_by_kind t =
  match Sys.readdir t.cache_dir with
  | exception Sys_error _ -> []
  | files ->
    let tbl = Hashtbl.create 4 in
    Array.iter
      (fun f ->
        if Filename.check_suffix f ".json" then begin
          let path = Filename.concat t.cache_dir f in
          let kind =
            match read_file path with
            | exception (Sys_error _ | Unix.Unix_error _) -> "unreadable"
            | text -> (
              match J.of_string text with
              | Error _ -> "unreadable"
              | Ok doc -> (
                match J.member "kind" doc with
                | Some (J.Str k) -> k
                | _ -> kind_numeric))
          in
          let bytes =
            try (Unix.stat path).Unix.st_size with Unix.Unix_error _ -> 0
          in
          let prev =
            Option.value
              (Hashtbl.find_opt tbl kind)
              ~default:{ entries = 0; bytes = 0 }
          in
          Hashtbl.replace tbl kind
            { entries = prev.entries + 1; bytes = prev.bytes + bytes }
        end)
      files;
    List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let clear t =
  match Sys.readdir t.cache_dir with
  | exception Sys_error _ -> 0
  | files ->
    Array.fold_left
      (fun n f ->
        if Filename.check_suffix f ".json" then (
          (try Sys.remove (Filename.concat t.cache_dir f)
           with Sys_error _ -> ());
          n + 1)
        else n)
      0 files

type counts = {
  hits : int;
  misses : int;
  stores : int;
  corrupt : int;
  quarantined : int;
  write_retries : int;
  readonly_flips : int;
}

let counts () =
  {
    hits = Atomic.get n_hit;
    misses = Atomic.get n_miss;
    stores = Atomic.get n_store;
    corrupt = Atomic.get n_corrupt;
    quarantined = Atomic.get n_quarantined;
    write_retries = Atomic.get n_write_retry;
    readonly_flips = Atomic.get n_readonly_flip;
  }

(* ------------------------------------------------------------------ *)
(* Cumulative counters across processes                                *)
(* ------------------------------------------------------------------ *)

(* The process counters die with the process, so a later
   [polyufc cache stats] would always report zeros.  On exit, a process
   that touched a cache merges its counters into a sidecar at
   [<dir>/meta/counters.json] (outside the entry namespace: [stats] and
   [clear] only look at top-level [*.json] entries, and the digest keys
   never collide with a subdirectory).  [cumulative] = sidecar + the
   current process, giving hit-rate numbers that survive restarts. *)

let counters_sidecar dir = Filename.concat (Filename.concat dir "meta") "counters.json"

let count_fields =
  [
    ("hits", (fun c -> c.hits), fun c v -> { c with hits = v });
    ("misses", (fun c -> c.misses), fun c v -> { c with misses = v });
    ("stores", (fun c -> c.stores), fun c v -> { c with stores = v });
    ("corrupt", (fun c -> c.corrupt), fun c v -> { c with corrupt = v });
    ( "quarantined",
      (fun c -> c.quarantined),
      fun c v -> { c with quarantined = v } );
    ( "write_retries",
      (fun c -> c.write_retries),
      fun c v -> { c with write_retries = v } );
    ( "readonly_flips",
      (fun c -> c.readonly_flips),
      fun c v -> { c with readonly_flips = v } );
  ]

let zero_counts =
  {
    hits = 0;
    misses = 0;
    stores = 0;
    corrupt = 0;
    quarantined = 0;
    write_retries = 0;
    readonly_flips = 0;
  }

let json_of_counts c =
  J.Obj
    (("schema", J.Str "polyufc-cache-counters/v1")
    :: List.map (fun (name, get, _) -> (name, J.Int (get c))) count_fields)

let counts_of_json doc =
  List.fold_left
    (fun c (name, _, set) ->
      match J.member name doc with
      | Some (J.Int v) when v >= 0 -> set c v
      | _ -> c)
    zero_counts count_fields

let saved_counts dir =
  match read_file (counters_sidecar dir) with
  | exception (Sys_error _ | Unix.Unix_error _) -> zero_counts
  | text -> (
    match J.of_string text with
    | Ok doc -> counts_of_json doc
    | Error _ -> zero_counts)

let add_counts a b =
  List.fold_left
    (fun c (_, get, set) -> set c (get a + get b))
    zero_counts count_fields

let cumulative t = add_counts (saved_counts t.cache_dir) (counts ())

(* One sidecar per process: counters are process-wide, so they are
   persisted to the most recently created cache's directory (in practice
   there is exactly one cache per process). *)
let persist_to = ref None
let persist_mutex = Mutex.create ()

let () =
  register_persist_dir :=
    fun dir -> Mutex.protect persist_mutex (fun () -> persist_to := Some dir)

(* Counters accumulated since the last flush are merged into the sidecar
   and then subtracted from the process-wide atomics, so flushing is safe
   to do repeatedly (a long-lived daemon flushes on drain; at_exit then
   only persists whatever arrived after that) without double counting. *)
let flush_counters () =
  let dir = Mutex.protect persist_mutex (fun () -> !persist_to) in
  match dir with
  | None -> ()
  | Some dir ->
    let now = counts () in
    if now <> zero_counts then begin
      (try
         let meta_dir = Filename.concat dir "meta" in
         if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
         if not (Sys.file_exists meta_dir) then Unix.mkdir meta_dir 0o755;
         Io.write_atomic ~fsync:false (counters_sidecar dir)
           (J.to_string (json_of_counts (add_counts (saved_counts dir) now))
           ^ "\n")
       with Sys_error _ | Unix.Unix_error _ -> ());
      (* subtract exactly what was persisted; increments racing this
         flush survive in the atomics for the next one *)
      let sub a v = ignore (Atomic.fetch_and_add a (-v)) in
      sub n_hit now.hits;
      sub n_miss now.misses;
      sub n_store now.stores;
      sub n_corrupt now.corrupt;
      sub n_quarantined now.quarantined;
      sub n_write_retry now.write_retries;
      sub n_readonly_flip now.readonly_flips
    end

let () = at_exit flush_counters
