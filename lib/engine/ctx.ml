type t = {
  pool : Pool.t option;
  cache : Rcache.t option;
  budget : Budget.t option;
  cancel : Cancel.t option;
}

let none = { pool = None; cache = None; budget = None; cancel = None }

let create ?pool ?cache ?budget ?cancel () = { pool; cache; budget; cancel }

let or_else a b = match a with Some _ -> a | None -> b

let of_legacy ?pool ?cache ctx =
  let c = Option.value ctx ~default:none in
  { c with pool = or_else c.pool pool; cache = or_else c.cache cache }

let pool t = t.pool
let cache t = t.cache
let budget t = t.budget
let cancel t = t.cancel

let check t =
  Option.iter Cancel.check t.cancel;
  Option.iter Budget.check t.budget

let checkpoint t =
  Option.iter Cancel.check t.cancel;
  match t.budget with
  | Some b when Budget.degrade b = Budget.Off -> Budget.check b
  | _ -> ()

let spend t n =
  Option.iter Cancel.check t.cancel;
  Option.iter (fun b -> Budget.spend b n) t.budget

let degrade_allowed t =
  match t.budget with
  | Some b -> Budget.degrade b = Budget.Interp
  | None -> false

let without_pool t = { t with pool = None }

let clamp_deadline ?limit requested =
  match (limit, requested) with
  | None, r -> r
  | Some l, None -> Some l
  | Some l, Some r -> Some (Float.min l r)

let clamp_fuel ?limit requested =
  match (limit, requested) with
  | None, r -> r
  | Some l, None -> Some l
  | Some l, Some r -> Some (min l r)
