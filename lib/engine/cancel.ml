exception Cancelled of string

(* [None] = live, [Some reason] = cancelled.  A single atomic cell keeps
   flag and reason consistent without a lock, so [cancel] is safe from
   signal handlers (no allocation beyond the [Some]). *)
type t = string option Atomic.t

let c_cancelled = Telemetry.counter "engine.cancelled"

let create () : t = Atomic.make None

let cancel ?(reason = "cancelled") t =
  if Atomic.compare_and_set t None (Some reason) then Telemetry.tick c_cancelled

let is_cancelled t = Atomic.get t <> None
let reason t = Atomic.get t

let check t =
  match Atomic.get t with None -> () | Some r -> raise (Cancelled r)
