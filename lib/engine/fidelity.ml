type t = Exact | Degraded | Partial

let rank = function Exact -> 0 | Degraded -> 1 | Partial -> 2
let worst a b = if rank a >= rank b then a else b

let to_string = function
  | Exact -> "exact"
  | Degraded -> "degraded"
  | Partial -> "partial"

let of_string = function
  | "exact" -> Some Exact
  | "degraded" -> Some Degraded
  | "partial" -> Some Partial
  | _ -> None

let pp ppf t = Format.pp_print_string ppf (to_string t)

let c_degraded = Telemetry.counter "engine.degraded"
let n_degraded = Atomic.make 0

let note_degraded () =
  Telemetry.tick c_degraded;
  ignore (Atomic.fetch_and_add n_degraded 1)

let degraded_count () = Atomic.get n_degraded
