(** Durable single-file writes shared by the result cache and report
    emitters: temp file in the destination directory, flush + [fsync],
    atomic rename.  A reader can never observe a half-written file. *)

val write_atomic :
  ?fsync:bool ->
  ?fault:Faultsim.site ->
  ?on_retry:(unit -> unit) ->
  string ->
  string ->
  unit
(** [write_atomic path contents] writes [contents] to [path] atomically.

    [?fsync] (default [true]) syncs the temp file before the rename so
    the rename never publishes data the kernel has not persisted; fsync
    errors on exotic filesystems are ignored (the rename still gives
    atomicity).

    [?fault] names a {!Faultsim} site to probe before writing — if the
    site fires, the write fails with {!Faultsim.Injected} as if the OS
    had failed it.

    Transient failures ([Sys_error], non-[ENOSPC] [Unix.Unix_error],
    injected faults) are retried once, calling [?on_retry] in between;
    the temp file is removed on every failure path.  [ENOSPC] is not
    transient and is re-raised immediately so callers can degrade
    (e.g. {!Rcache} flips to read-only). *)
