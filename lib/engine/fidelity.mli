(** Result fidelity: what a resource-governed analysis actually delivered.

    Every result record of the pipeline (cache-model analyses, search
    outcomes, compiled programs, CLI/bench JSON) carries one of these so
    callers can tell an exact answer from a budget-degraded estimate.

    - [Exact]: the documented exact semantics; byte-identical to an
      ungoverned run.
    - [Degraded]: the analysis hit its resource budget and fell back to a
      cheaper estimator (Ehrhart-style interpolation, footprint
      heuristics); values are within the tolerance documented in
      DESIGN.md.
    - [Partial]: some components are missing entirely (reserved for batch
      entries whose siblings failed; stricter than [Degraded]). *)

type t = Exact | Degraded | Partial

val worst : t -> t -> t
(** Pessimistic merge: [Exact < Degraded < Partial]. *)

val to_string : t -> string
(** ["exact" | "degraded" | "partial"] — the wire form used in JSON. *)

val of_string : string -> t option

val pp : Format.formatter -> t -> unit

val note_degraded : unit -> unit
(** Bump the process-wide degradation counter (and the
    [engine.degraded] telemetry counter when enabled).  Called by every
    fallback path that substitutes an estimate for an exact value. *)

val degraded_count : unit -> int
(** Process-wide number of degradation events since startup, independent
    of telemetry enablement (mirrors {!Rcache.counts}). *)
