(** Deterministic, seeded fault injection for the analysis engine.

    Every failure mode the engine claims to survive — a worker domain
    dying mid-job, a stalled worker, a torn or [ENOSPC]-interrupted cache
    write, a corrupted cache read, a failing report write — has a named
    {e injection site} here.  A {e fault plan} arms sites with a firing
    probability and a seed; the per-site pseudo-random stream is derived
    only from the seed, so a given plan reproduces the same fault
    sequence in every run of a deterministic program.  With no plan
    installed (the default), every [fire] is a single array load — the
    production hot paths stay effectively free.

    Plans come from the [FAULTSIM] environment variable (read once at
    startup) or the hidden [--fault-plan] CLI flag, both in the syntax
    accepted by {!parse_plan}: [site:prob:seed] triplets separated by
    commas, e.g. [pool.worker_crash:0.05:42,rcache.torn_write:0.05:42]. *)

type site =
  | Pool_worker_crash  (** a pool worker domain dies with a job in flight *)
  | Pool_worker_stall  (** a pool worker sleeps {!stall_seconds} before a job *)
  | Rcache_torn_write  (** a cache store writes only half its payload *)
  | Rcache_enospc  (** a cache store hits [ENOSPC] *)
  | Rcache_read_corrupt  (** a cache read returns flipped bytes *)
  | Rcache_index_corrupt
      (** the result-store index is read back corrupt, or an index
          append is torn mid-line (simulating a crash mid-append) *)
  | Rcache_gc_crash
      (** the store's garbage collector dies mid-sweep — after removing
          an entry file but before recording the removal in the index *)
  | Io_report_write  (** an atomic report write fails *)
  | Serve_accept_fail  (** the daemon's [accept] fails transiently *)
  | Serve_io  (** a torn/short socket read or write in the serve protocol *)

val all_sites : site list

val site_name : site -> string
(** The wire name used in plans and telemetry ([pool.worker_crash], …). *)

val site_of_name : string -> site option

exception Injected of site
(** Raised by {!raise_if} (and by {!Io.write_atomic} under an armed
    [?fault] site) where an injected failure is simulated as an
    exception. *)

type plan

val empty_plan : plan
(** Arms nothing; {!install}ing it disables injection. *)

val parse_plan : string -> (plan, string) result
(** Parse [site:prob:seed,...].  [prob] is a float in [\[0, 1\]], [seed]
    a non-negative integer.  Unknown sites, malformed triplets and
    out-of-range probabilities are errors. *)

val plan_to_string : plan -> string

val install : plan -> unit
(** Replace the process-wide plan (per-site streams restart from their
    seeds).  Installing {!empty_plan} disarms every site. *)

val installed : unit -> plan
(** The currently armed plan (for save/restore). *)

val active : unit -> bool
(** True iff at least one site is armed. *)

val with_plan : plan -> (unit -> 'a) -> 'a
(** [install] the plan, run, restore the previous plan (also on
    exceptions).  Process-global: not for use from concurrent domains. *)

val suspended : (unit -> 'a) -> 'a
(** [with_plan empty_plan] — run with injection disabled.  For tests that
    pin exact non-faulty behaviour while a global chaos plan is armed. *)

val fire : site -> bool
(** Advance the site's seeded stream and report whether the fault fires
    this time.  Always [false] for an unarmed site (without touching any
    stream).  Domain-safe; each firing is counted (telemetry counter
    [engine.fault.<site>] and {!injected_count}). *)

val raise_if : site -> unit
(** [if fire site then raise (Injected site)]. *)

val injected_count : site -> int
(** Process-wide firings of the site since startup (across plans). *)

val stall_seconds : unit -> float
(** How long {!Pool_worker_stall} sleeps (default 0.2 s; override with
    the [FAULTSIM_STALL_S] environment variable). *)
