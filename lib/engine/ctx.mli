(** The unified resource context threaded through the analysis pipeline.

    [Ctx.t] bundles the four concerns every governed entry point used to
    take (or not take) as separate optional arguments:

    - [pool]: worker pool for parallel fan-out ({!Pool});
    - [cache]: persistent result cache ({!Rcache});
    - [budget]: deadline / fuel / degradation policy ({!Budget});
    - [cancel]: cooperative cancellation token ({!Cancel}).

    Entry points take a single [?ctx:Ctx.t]; the per-function
    [?pool]/[?cache] optional arguments remain as thin deprecated
    wrappers for one PR (see DESIGN.md, "Migrating to Ctx").  Passing no
    context (or {!none}) reproduces the ungoverned, sequential,
    uncached behaviour bit-for-bit. *)

type t = {
  pool : Pool.t option;
  cache : Rcache.t option;
  budget : Budget.t option;
  cancel : Cancel.t option;
}

val none : t
(** No pool, no cache, no budget, no cancellation: the legacy default. *)

val create :
  ?pool:Pool.t -> ?cache:Rcache.t -> ?budget:Budget.t -> ?cancel:Cancel.t ->
  unit -> t

val of_legacy : ?pool:Pool.t -> ?cache:Rcache.t -> t option -> t
(** Merge a [?ctx] argument with legacy [?pool]/[?cache] arguments:
    explicit context fields win, legacy arguments fill the gaps.  This
    is what the deprecated wrappers call so both calling styles meet the
    same code path. *)

val pool : t -> Pool.t option
val cache : t -> Rcache.t option
val budget : t -> Budget.t option
val cancel : t -> Cancel.t option

val check : t -> unit
(** Hard checkpoint: raises {!Cancel.Cancelled} if cancelled, then
    {!Budget.Exhausted} if the budget is spent.  Use inside governed
    computations that have a degradation fallback upstream. *)

val checkpoint : t -> unit
(** Soft phase-boundary checkpoint: cancellation always raises; budget
    exhaustion raises only under [degrade = Off].  Under [Interp] an
    expired budget must not abort the pipeline between phases — the
    remaining phases run degraded instead (bounded, closed-form work). *)

val spend : t -> int -> unit
(** Meter [n] work units: cancellation check + {!Budget.spend}. *)

val degrade_allowed : t -> bool
(** [true] iff there is a budget whose policy is [Interp]. *)

val without_pool : t -> t
(** The same context with parallel fan-out disabled.  Self-healing
    fallbacks use this to re-run a computation inline after a pooled
    attempt lost jobs to {!Pool.Worker_failure}. *)

(** {1 QoS clamping}

    Serving frontends let clients request their own resource budget
    (deadline / fuel) per request, bounded by server-side maxima: a
    client may always ask for {e less} than the server allows, never
    more.  [None] on the request side means "unlimited", which a
    [Some]-limit clamps down to the limit itself. *)

val clamp_deadline : ?limit:float -> float option -> float option
(** [clamp_deadline ?limit requested] is [requested] bounded above by
    [limit].  No limit: the request passes through unchanged. *)

val clamp_fuel : ?limit:int -> int option -> int option
(** Same clamping rule for the work-unit budget. *)
