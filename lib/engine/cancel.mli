(** Cooperative cancellation tokens.

    A token is a domain-safe flag that long-running analyses poll at
    loop/phase boundaries ({!Poly.count_points} slice loops, {!Pool}
    dispatch, [Flow.compile] phase boundaries).  Cancellation is
    cooperative: setting the flag never interrupts a running
    computation; the computation notices at its next checkpoint and
    unwinds by raising {!Cancelled}.

    Tokens are one-shot: once cancelled they stay cancelled. *)

type t

exception Cancelled of string
(** Raised by {!check} (and by governed computations) once the token has
    been cancelled.  The payload is the reason passed to {!cancel}. *)

val create : unit -> t
(** A fresh, un-cancelled token. *)

val cancel : ?reason:string -> t -> unit
(** Trip the token.  Idempotent; the first reason wins.  Safe to call
    from any domain or from a signal handler. *)

val is_cancelled : t -> bool

val reason : t -> string option
(** The reason recorded by the first {!cancel}, if any. *)

val check : t -> unit
(** Raise [Cancelled reason] if the token has been tripped; otherwise a
    single atomic load. *)
