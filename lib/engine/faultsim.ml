(* Deterministic, seeded fault injection.

   Each armed site owns a splitmix64 stream seeded only by the plan, so a
   given plan replays the same fault sequence on every run of a
   deterministic program.  Streams advance by CAS so concurrent domains
   never observe the same draw twice; the *set* of firings is then
   deterministic even if their assignment to domains is not. *)

type site =
  | Pool_worker_crash
  | Pool_worker_stall
  | Rcache_torn_write
  | Rcache_enospc
  | Rcache_read_corrupt
  | Rcache_index_corrupt
  | Rcache_gc_crash
  | Io_report_write
  | Serve_accept_fail
  | Serve_io

let all_sites =
  [
    Pool_worker_crash;
    Pool_worker_stall;
    Rcache_torn_write;
    Rcache_enospc;
    Rcache_read_corrupt;
    Rcache_index_corrupt;
    Rcache_gc_crash;
    Io_report_write;
    Serve_accept_fail;
    Serve_io;
  ]

let site_index = function
  | Pool_worker_crash -> 0
  | Pool_worker_stall -> 1
  | Rcache_torn_write -> 2
  | Rcache_enospc -> 3
  | Rcache_read_corrupt -> 4
  | Rcache_index_corrupt -> 5
  | Rcache_gc_crash -> 6
  | Io_report_write -> 7
  | Serve_accept_fail -> 8
  | Serve_io -> 9

let n_sites = List.length all_sites

let site_name = function
  | Pool_worker_crash -> "pool.worker_crash"
  | Pool_worker_stall -> "pool.worker_stall"
  | Rcache_torn_write -> "rcache.torn_write"
  | Rcache_enospc -> "rcache.enospc"
  | Rcache_read_corrupt -> "rcache.read_corrupt"
  | Rcache_index_corrupt -> "rcache.index_corrupt"
  | Rcache_gc_crash -> "rcache.gc_crash"
  | Io_report_write -> "io.report_write"
  | Serve_accept_fail -> "serve.accept_fail"
  | Serve_io -> "serve.io"

let site_of_name s =
  List.find_opt (fun site -> String.equal (site_name site) s) all_sites

exception Injected of site

let () =
  Printexc.register_printer (function
    | Injected site ->
        Some (Printf.sprintf "Engine.Faultsim.Injected(%s)" (site_name site))
    | _ -> None)

type arm = { prob : float; seed : int }
type plan = arm option array (* indexed by site_index; length n_sites *)

let empty_plan : plan = Array.make n_sites None

(* splitmix64 — tiny, high-quality, and trivially seedable. *)
let splitmix64_next state =
  let z = Int64.add state 0x9E3779B97F4A7C15L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  (z, Int64.logxor z (Int64.shift_right_logical z 31))

(* Map a draw to a float in [0, 1) using the top 53 bits. *)
let u01_of_bits bits =
  Int64.to_float (Int64.shift_right_logical bits 11) *. (1.0 /. 9007199254740992.0)

type stream = { arm : arm; state : int64 Atomic.t }

(* The armed runtime: one optional stream per site.  Replaced wholesale by
   [install]; [fire] reads it through a single Atomic.get. *)
let streams : stream option array Atomic.t =
  Atomic.make (Array.make n_sites None)

let fired : int Atomic.t array = Array.init n_sites (fun _ -> Atomic.make 0)

let fault_counters =
  let by_index = Array.make n_sites (Telemetry.counter "engine.fault.none") in
  List.iter
    (fun site ->
      by_index.(site_index site) <-
        Telemetry.counter ("engine.fault." ^ site_name site))
    all_sites;
  by_index

let parse_arm s =
  match String.split_on_char ':' s with
  | [ name; prob; seed ] -> (
      match site_of_name (String.trim name) with
      | None -> Error (Printf.sprintf "unknown fault site %S" (String.trim name))
      | Some site -> (
          match (float_of_string_opt (String.trim prob), int_of_string_opt (String.trim seed)) with
          | Some p, Some sd when p >= 0.0 && p <= 1.0 && sd >= 0 ->
              Ok (site, { prob = p; seed = sd })
          | Some p, _ when p < 0.0 || p > 1.0 ->
              Error (Printf.sprintf "fault probability %g out of [0,1] for %s" p (String.trim name))
          | _ -> Error (Printf.sprintf "malformed fault entry %S (want site:prob:seed)" s)))
  | _ -> Error (Printf.sprintf "malformed fault entry %S (want site:prob:seed)" s)

let parse_plan s =
  let entries =
    String.split_on_char ',' s |> List.map String.trim
    |> List.filter (fun e -> e <> "")
  in
  if entries = [] then Error "empty fault plan"
  else
    let plan = Array.make n_sites None in
    let rec go = function
      | [] -> Ok plan
      | e :: rest -> (
          match parse_arm e with
          | Error _ as err -> err
          | Ok (site, arm) ->
              plan.(site_index site) <- Some arm;
              go rest)
    in
    go entries

let plan_to_string (plan : plan) =
  List.filter_map
    (fun site ->
      match plan.(site_index site) with
      | None -> None
      | Some { prob; seed } ->
          Some (Printf.sprintf "%s:%g:%d" (site_name site) prob seed))
    all_sites
  |> String.concat ","

let installed_plan : plan Atomic.t = Atomic.make empty_plan

let install (plan : plan) =
  Atomic.set installed_plan plan;
  Atomic.set streams
    (Array.map
       (function
         | None -> None
         | Some arm ->
             (* Mix the seed through one splitmix step so seed 0 does not
                yield the all-zero state. *)
             let state, _ = splitmix64_next (Int64.of_int arm.seed) in
             Some { arm; state = Atomic.make state })
       plan)

let installed () = Atomic.get installed_plan

let active () =
  Array.exists (function Some _ -> true | None -> false) (Atomic.get streams)

let with_plan plan f =
  let prev = installed () in
  install plan;
  Fun.protect ~finally:(fun () -> install prev) f

let suspended f = with_plan empty_plan f

let fire site =
  match (Atomic.get streams).(site_index site) with
  | None -> false
  | Some { arm; state } ->
      if arm.prob <= 0.0 then false
      else
        (* Advance the stream with CAS so each draw is consumed once. *)
        let rec draw () =
          let cur = Atomic.get state in
          let next, bits = splitmix64_next cur in
          if Atomic.compare_and_set state cur next then bits else draw ()
        in
        let hit = arm.prob >= 1.0 || u01_of_bits (draw ()) < arm.prob in
        if hit then begin
          Atomic.incr fired.(site_index site);
          Telemetry.tick fault_counters.(site_index site);
          Telemetry.Event.debug "faultsim.injected"
            ~fields:[ ("site", Telemetry.Json.Str (site_name site)) ]
        end;
        hit

let raise_if site = if fire site then raise (Injected site)
let injected_count site = Atomic.get fired.(site_index site)

let stall_seconds () =
  match Sys.getenv_opt "FAULTSIM_STALL_S" with
  | Some s -> ( match float_of_string_opt s with Some f when f >= 0.0 -> f | _ -> 0.2)
  | None -> 0.2

(* Arm from the environment at startup so FAULTSIM=... reaches every
   entry point (CLI, bench, tests) without plumbing. *)
let () =
  match Sys.getenv_opt "FAULTSIM" with
  | None | Some "" -> ()
  | Some s -> (
      match parse_plan s with
      | Ok plan -> install plan
      | Error msg ->
          Printf.eprintf "polyufc: warning: ignoring FAULTSIM (%s)\n%!" msg)
