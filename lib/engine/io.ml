let enospc = function
  | Unix.Unix_error (Unix.ENOSPC, _, _) -> true
  | _ -> false

let write_once ?(fsync = true) ?fault path contents =
  (match fault with Some site -> Faultsim.raise_if site | None -> ());
  let dir = Filename.dirname path in
  let tmp = Filename.temp_file ~temp_dir:dir (Filename.basename path) ".tmp" in
  match
    let oc = open_out_bin tmp in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc contents;
        flush oc;
        if fsync then
          try Unix.fsync (Unix.descr_of_out_channel oc) with _ -> ());
    Sys.rename tmp path
  with
  | () -> ()
  | exception e ->
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e

let write_atomic ?fsync ?fault ?(on_retry = ignore) path contents =
  try write_once ?fsync ?fault path contents with
  | Unix.Unix_error _ as e when enospc e -> raise e
  | Sys_error _ | Unix.Unix_error _ | Faultsim.Injected _ ->
      (* One retry on transient failure; a second failure propagates. *)
      on_retry ();
      write_once ?fsync ?fault path contents
