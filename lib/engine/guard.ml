let exit_ok = 0
let exit_usage = 2
let exit_invalid_input = 3
let exit_exhausted = 4
let exit_internal = 5
let exit_interrupted = 130

type diagnostic = {
  code : int;
  phase : string;
  message : string;
  span : string option;
  dump : string option;
}

let json_of d =
  let open Telemetry.Json in
  Obj
    [
      ("code", Int d.code);
      ("phase", Str d.phase);
      ("message", Str d.message);
      ("span", match d.span with Some s -> Str s | None -> Null);
      ("dump", match d.dump with Some p -> Str p | None -> Null);
    ]

let pp ppf d =
  Format.fprintf ppf "error [%s%s]: %s%s" d.phase
    (match d.span with Some s -> ", " ^ s | None -> "")
    d.message
    (match d.dump with
    | Some p -> Printf.sprintf " (flight recorder: %s)" p
    | None -> "")

type verdict = Invalid_input of { message : string; span : string option }

let classifiers : (exn -> verdict option) list ref = ref []
let classifiers_mutex = Mutex.create ()

let register_classifier c =
  Mutex.protect classifiers_mutex (fun () -> classifiers := !classifiers @ [ c ])

let classify e =
  List.find_map (fun c -> try c e with _ -> None) !classifiers

(* Frontend errors conventionally read "line N: <what>"; lift the
   location prefix into the span field so machine consumers need not
   re-parse the message. *)
let invalid msg =
  let is_digits s = s <> "" && String.for_all (fun c -> c >= '0' && c <= '9') s in
  match String.index_opt msg ':' with
  | Some i
    when i > 5
         && String.sub msg 0 5 = "line "
         && is_digits (String.sub msg 5 (i - 5)) ->
      let rest = String.sub msg (i + 1) (String.length msg - i - 1) in
      Invalid_input
        { message = String.trim rest; span = Some (String.sub msg 0 i) }
  | _ -> Invalid_input { message = msg; span = None }

(* The innermost phase label is deliberately *not* restored when [f]
   raises: the enclosing [protect] reads it to attribute the failure. *)
let current_phase = ref "run"

let phase name f =
  let prev = !current_phase in
  current_phase := name;
  let r = f () in
  current_phase := prev;
  r

let trapped = Telemetry.counter "engine.guard_trapped"

(* Flight-recorder dump: on an internal fault (exit 5) write the last
   ring of events, the spans still open, and the diagnostic itself to
   [polyufc-crash-<pid>.json] so a chaos-CI failure leaves an attachable
   artifact.  The directory defaults to the CWD and is overridable with
   POLYUFC_CRASH_DIR (tests point it at a tmpdir); the dump is written
   without fsync — it must never slow down or block dying. *)
let crash_dump_doc d =
  let open Telemetry.Json in
  let open_spans =
    List.map
      (fun (id, name, start_us, domain) ->
        Obj
          [
            ("id", Int id);
            ("name", Str name);
            ("start_us", Float start_us);
            ("domain", Int domain);
          ])
      (Telemetry.open_spans ())
  in
  Obj
    [
      ("schema", Str "polyufc-crash/v1");
      ("meta", Telemetry.run_meta ());
      ("error", json_of d);
      ("open_spans", Arr open_spans);
      ("events", Arr (Telemetry.Event.recent ()));
    ]

let write_crash_dump d =
  let dir =
    match Sys.getenv_opt "POLYUFC_CRASH_DIR" with
    | Some "" | None -> Filename.current_dir_name
    | Some d -> d
  in
  let path =
    Filename.concat dir (Printf.sprintf "polyufc-crash-%d.json" (Unix.getpid ()))
  in
  match
    Io.write_atomic ~fsync:false path
      (Telemetry.Json.to_string (crash_dump_doc d) ^ "\n")
  with
  | () -> Some path
  | exception _ -> None

let protect ?phase:(label = "run") f =
  let prev = !current_phase in
  current_phase := label;
  let finish r =
    current_phase := prev;
    r
  in
  match f () with
  | v -> finish (Ok v)
  | exception e ->
      let at = !current_phase in
      let mk code message span =
        { code; phase = at; message; span; dump = None }
      in
      let diag =
        match e with
        | Budget.Exhausted msg -> mk exit_exhausted msg None
        | Cancel.Cancelled reason -> mk exit_interrupted reason None
        | e -> (
            match classify e with
            | Some (Invalid_input { message; span }) ->
                Telemetry.tick trapped;
                mk exit_invalid_input message span
            | None -> (
                Telemetry.tick trapped;
                match e with
                | Invalid_argument m | Failure m | Sys_error m ->
                    mk exit_invalid_input m None
                | e -> mk exit_internal (Printexc.to_string e) None))
      in
      let diag =
        if diag.code = exit_internal then begin
          Telemetry.Event.error "guard.trapped"
            ~fields:
              [
                ("phase", Telemetry.Json.Str diag.phase);
                ("message", Telemetry.Json.Str diag.message);
              ];
          { diag with dump = write_crash_dump diag }
        end
        else diag
      in
      finish (Error diag)
