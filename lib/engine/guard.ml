let exit_ok = 0
let exit_usage = 2
let exit_invalid_input = 3
let exit_exhausted = 4
let exit_internal = 5
let exit_interrupted = 130

type diagnostic = {
  code : int;
  phase : string;
  message : string;
  span : string option;
}

let json_of d =
  let open Telemetry.Json in
  Obj
    [
      ("code", Int d.code);
      ("phase", Str d.phase);
      ("message", Str d.message);
      ("span", match d.span with Some s -> Str s | None -> Null);
    ]

let pp ppf d =
  Format.fprintf ppf "error [%s%s]: %s" d.phase
    (match d.span with Some s -> ", " ^ s | None -> "")
    d.message

type verdict = Invalid_input of { message : string; span : string option }

let classifiers : (exn -> verdict option) list ref = ref []
let classifiers_mutex = Mutex.create ()

let register_classifier c =
  Mutex.protect classifiers_mutex (fun () -> classifiers := !classifiers @ [ c ])

let classify e =
  List.find_map (fun c -> try c e with _ -> None) !classifiers

(* Frontend errors conventionally read "line N: <what>"; lift the
   location prefix into the span field so machine consumers need not
   re-parse the message. *)
let invalid msg =
  let is_digits s = s <> "" && String.for_all (fun c -> c >= '0' && c <= '9') s in
  match String.index_opt msg ':' with
  | Some i
    when i > 5
         && String.sub msg 0 5 = "line "
         && is_digits (String.sub msg 5 (i - 5)) ->
      let rest = String.sub msg (i + 1) (String.length msg - i - 1) in
      Invalid_input
        { message = String.trim rest; span = Some (String.sub msg 0 i) }
  | _ -> Invalid_input { message = msg; span = None }

(* The innermost phase label is deliberately *not* restored when [f]
   raises: the enclosing [protect] reads it to attribute the failure. *)
let current_phase = ref "run"

let phase name f =
  let prev = !current_phase in
  current_phase := name;
  let r = f () in
  current_phase := prev;
  r

let trapped = Telemetry.counter "engine.guard_trapped"

let protect ?phase:(label = "run") f =
  let prev = !current_phase in
  current_phase := label;
  let finish r =
    current_phase := prev;
    r
  in
  match f () with
  | v -> finish (Ok v)
  | exception e ->
      let at = !current_phase in
      let diag =
        match e with
        | Budget.Exhausted msg ->
            { code = exit_exhausted; phase = at; message = msg; span = None }
        | Cancel.Cancelled reason ->
            { code = exit_interrupted; phase = at; message = reason; span = None }
        | e -> (
            match classify e with
            | Some (Invalid_input { message; span }) ->
                Telemetry.tick trapped;
                { code = exit_invalid_input; phase = at; message; span }
            | None -> (
                Telemetry.tick trapped;
                match e with
                | Invalid_argument m | Failure m | Sys_error m ->
                    { code = exit_invalid_input; phase = at; message = m; span = None }
                | e ->
                    {
                      code = exit_internal;
                      phase = at;
                      message = Printexc.to_string e;
                      span = None;
                    }))
      in
      finish (Error diag)
