(** A [Domain]-based worker pool for the embarrassingly-parallel parts of
    the PolyUFC pipeline (per-kernel analyses, f_c sweeps, the bench
    suites).

    Work items go through a bounded queue to [jobs] worker domains.
    Results always come back in submission order, independent of
    completion order, so any computation that is deterministic under
    [map ~jobs:1] stays byte-identical under [~jobs:N].  The first
    exception raised by a job cancels the not-yet-started jobs of the same
    [map] and is re-raised to the caller after every worker has quiesced.

    Nesting is safe: a [map] issued from inside a pool worker runs inline
    on that worker (no deadlock, no oversubscription).  With [jobs = 1] no
    domain is spawned and everything runs on the caller.

    Workers are supervised: a worker domain that dies (exercised through
    the [pool.worker_crash] {!Faultsim} site; ordinary job exceptions are
    caught into futures and cannot kill a worker) is counted in telemetry
    ([engine.worker_crashes]), its in-flight job is requeued with capped
    exponential backoff ([engine.job_retries]), and a replacement domain
    is spawned.  A job that crashes its worker more than [max_retries]
    times is abandoned with {!Worker_failure} — its future fails, but the
    pool and its sibling jobs keep running. *)

type t

type 'a future

exception Cancelled
(** Raised inside jobs that were skipped because an earlier job of the
    same [map] failed; never escapes to the caller ([map] re-raises the
    original failure instead). *)

exception Worker_failure of string
(** A single job's terminal failure after exhausting its crash-requeue
    budget.  {!map} re-raises it; {!map_partial} absorbs it into a
    [Fidelity.Partial] result. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val default_max_retries : int
(** Crash-requeue budget per job when [?max_retries] is omitted (5). *)

val create : ?jobs:int -> ?max_retries:int -> unit -> t
(** Spawn a pool of [jobs] workers (default {!default_jobs}, clamped to at
    least 1).  [jobs = 1] spawns no domains.  [max_retries] (default
    {!default_max_retries}, clamped to at least 0) bounds how many times a
    single job is requeued after killing its worker; [0] abandons a job on
    its first crash. *)

val jobs : t -> int

val max_retries : t -> int

val shutdown : t -> unit
(** Drain the queue, join every worker (including respawned
    replacements).  Idempotent.  Submitting to a shut-down pool raises
    [Invalid_argument]. *)

val with_pool : ?jobs:int -> ?max_retries:int -> (t -> 'a) -> 'a
(** [create], run, [shutdown] (also on exceptions). *)

val submit : ?cancel:Cancel.t -> t -> (unit -> 'a) -> 'a future
(** Enqueue one job; blocks while the queue is full.  With [?cancel],
    the job re-checks the token when a worker dequeues it, so work that
    was queued but not yet started is abandoned (its future fails with
    {!Cancel.Cancelled}) once the token trips. *)

val await : 'a future -> ('a, exn) result

val map : ?cancel:Cancel.t -> t -> ('a -> 'b) -> 'a list -> 'b list
(** Parallel [List.map] with deterministic result ordering and
    first-error cancellation.  On failure, re-raises the failed job's
    exception (the lowest-index failure when several raced).  With
    [?cancel], tripping the token abandons queued-but-unstarted jobs and
    makes the call raise {!Cancel.Cancelled} after every in-flight job
    has quiesced — no domain outlives the call. *)

val mapi : ?cancel:Cancel.t -> t -> (int -> 'a -> 'b) -> 'a list -> 'b list

val map_partial :
  ?cancel:Cancel.t -> t -> ('a -> 'b) -> 'a list -> 'b list * Fidelity.t
(** Like {!map}, but a job abandoned with {!Worker_failure} drops its
    slot (order among survivors is preserved) and degrades the fidelity
    to [Partial] instead of failing the call.  Any other job failure —
    including {!Cancel.Cancelled} — keeps {!map}'s raising semantics.
    Inline execution (no workers) cannot lose slots and is always
    [Exact]. *)

val in_worker : unit -> bool
(** True when called from inside a pool worker domain. *)
