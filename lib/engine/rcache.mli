(** A persistent, content-addressed result cache for PolyUFC analyses.

    Entries are JSON values stored one-per-file under a cache directory
    (default [_polyufc_cache/], overridable with the [POLYUFC_CACHE_DIR]
    environment variable).  Keys are hex digests of a canonical encoding
    of caller-supplied [(field, value)] parts plus the store's
    {!schema_version}, so a schema bump — or any change to the SCoP
    export, machine description or model parameters that feed the parts —
    addresses different entries.

    Robustness: entries are written atomically (temp file + fsync +
    rename, with one retry on transient I/O errors) and embed a payload
    checksum, so truncated or bit-flipped files are detected even when
    they still parse as JSON.  A failing read is retried once (a
    concurrent writer's rename can race it); an entry that is still
    unreadable is moved to [<cache-dir>/quarantine/] for post-mortem and
    treated as a miss (warned on stderr, counted) — never an error.
    [ENOSPC] on a store flips the cache to a degraded {!read_only} mode:
    hits keep being served, further stores are silently skipped.
    Lookups and stores are safe from concurrent pool workers.

    Hits/misses/stores/corruption/quarantines are mirrored into
    telemetry counters ([engine.cache.hit] etc., recorded when telemetry
    is enabled) and into always-on process-local counters exposed by
    {!counts}. *)

type t

val schema_version : int
(** Bump when the cached payload layout changes; invalidates every
    existing entry (old files fail the embedded version check and old
    keys are never derived again). *)

val default_dir : unit -> string
(** [$POLYUFC_CACHE_DIR] or ["_polyufc_cache"]. *)

val create : ?dir:string -> unit -> t
(** No I/O happens until the first [store]. *)

val dir : t -> string

val read_only : t -> bool
(** True once a store hit [ENOSPC]; the cache then serves hits but skips
    every further store. *)

val key : ?schema:int -> (string * string) list -> string
(** Content address of the given parts (field order is significant; pass
    a fixed field layout).  [schema] defaults to {!schema_version} and is
    part of the digested content. *)

val quarantine_dir : t -> string
(** [<cache-dir>/quarantine], where corrupt entries are moved. *)

val find : t -> string -> Telemetry.Json.t option
(** [None] on absence, corruption, or schema mismatch.  Corrupt entries
    (unparsable, missing fields, checksum mismatch) are quarantined
    after one failed retry. *)

val store : ?kind:string -> t -> string -> Telemetry.Json.t -> unit
(** Atomic; creates the cache directory on first use.  Transient I/O
    failures are retried once, persistent ones are warnings, [ENOSPC]
    flips {!read_only} (the cache is an accelerator, never a correctness
    dependency).  [kind] tags the entry document for {!stats_by_kind}
    (untagged = {!kind_numeric}). *)

val find_or_add :
  t ->
  key:string ->
  decode:(Telemetry.Json.t -> 'a option) ->
  encode:('a -> Telemetry.Json.t) ->
  (unit -> 'a) ->
  'a
(** Memoize [f] under [key]; a [decode] returning [None] counts as a
    corrupt entry and falls back to computing. *)

type stats = { entries : int; bytes : int }

val stats : t -> stats

val kind_numeric : string
(** ["numeric/v2"]: the implicit kind of untagged analysis entries. *)

val kind_symbolic : string
(** ["symbolic/v1"]: chamber-decomposition entries ({!Presburger.Chamber});
    checksummed exactly like numeric entries and subject to the same
    quarantine machinery. *)

val stats_by_kind : t -> (string * stats) list
(** Entry census per kind tag (untagged entries count as
    {!kind_numeric}; unparsable files as ["unreadable"]).  Reads every
    entry — cold path, for [cache stats]. *)

val clear : t -> int
(** Remove every entry; returns how many were removed.  Quarantined
    files are kept (they are post-mortem evidence, not entries). *)

type counts = {
  hits : int;
  misses : int;
  stores : int;
  corrupt : int;
  quarantined : int;
  write_retries : int;  (** transient store failures that were retried *)
  readonly_flips : int;  (** caches flipped read-only by [ENOSPC] *)
}

val counts : unit -> counts
(** Process-wide counters since startup (independent of telemetry
    enablement). *)

val flush_counters : unit -> unit
(** Merge the process counters accumulated since the last flush into the
    persisted sidecar of the most recently used cache directory, then
    zero them — so flushing repeatedly (or flushing and then exiting,
    where an [at_exit] flush also runs) never double-counts.  The serve
    daemon calls this when a drain completes so cumulative hit rates
    survive even an unclean exit afterwards.  No-op when no cache
    directory has been touched. *)

val cumulative : t -> counts
(** {!counts} plus the counters persisted by previous processes that
    used the same cache directory.  A process that touched a cache
    merges its counters into [<dir>/meta/counters.json] at exit (the
    sidecar lives outside the entry namespace, so {!stats} and {!clear}
    ignore it), which is what lets [polyufc cache stats] report hit
    rates without having run the analysis itself. *)
