(** A persistent, content-addressed, multi-tier result store for PolyUFC
    analyses.

    Three tiers front one key space:

    + an in-memory LRU (entry- and byte-bounded; a long-lived daemon
      serves its working set without touching disk),
    + a two-level sharded on-disk tier — entries live at
      [<dir>/ab/<digest>.json] where [ab] is the digest's first two hex
      characters, so no directory ever holds millions of files.  A
      pre-sharding flat layout is migrated transparently on first open.
    + an optional {e read-only} upstream store ([POLYUFC_CACHE_UPSTREAM]
      or [--cache-upstream]): hits found there are promoted into the
      local tiers; writes never go upstream.

    Keys are hex digests of a canonical encoding of caller-supplied
    [(field, value)] parts plus the store's {!schema_version}, so a
    schema bump — or any change to the SCoP export, machine description
    or model parameters that feed the parts — addresses different
    entries.

    A compact append-only index at [<dir>/meta/index] tracks every live
    entry (kind, size, last-use order), so {!stats}, {!stats_by_kind}
    and the garbage collector never re-scan the entry tree.  Every index
    line carries a checksum; a missing, torn or corrupt index — or one
    that disagrees with the shard tree after a crash — is rebuilt from
    the tree: counted, never fatal.  The index is an accelerator; the
    shard tree is the truth.

    {!gc} evicts least-recently-used entries until the store fits under
    [--cache-max-bytes] / [--cache-max-entries] (also read from
    [POLYUFC_CACHE_MAX_BYTES] / [POLYUFC_CACHE_MAX_ENTRIES]; sizes
    accept [k]/[M]/[G] suffixes).  GC runs when asked
    ([polyufc cache gc]), at daemon start, and opportunistically after a
    store crosses the watermark.  It removes entry files before
    recording the removal, so a kill -9 mid-sweep leaves at worst a
    stale index that the next open repairs.

    Robustness: entries are written atomically (temp file + fsync +
    rename, with one retry on transient I/O errors) and embed a payload
    checksum, so truncated or bit-flipped files are detected even when
    they still parse as JSON.  A failing read is retried once (a
    concurrent writer's rename can race it); an entry that is still
    unreadable is moved to [<cache-dir>/quarantine/] for post-mortem and
    treated as a miss (warned on stderr, counted) — never an error.  The
    quarantine keeps only the newest entries (default 32); older
    evidence is dropped and counted.  [ENOSPC] on a store flips the disk
    tier to a degraded {!read_only} mode: hits keep being served (and
    the memory tier keeps absorbing stores), further on-disk stores are
    silently skipped.  Lookups and stores are safe from concurrent pool
    workers and serve sessions.

    Per-tier hits/misses/evictions/promotions are mirrored into
    telemetry counters ([engine.cache.mem.hit], [engine.cache.disk.hit],
    [engine.cache.upstream.hit], [engine.cache.eviction], … — recorded
    when telemetry is enabled) and into always-on process-local counters
    exposed by {!counts}. *)

type t

val schema_version : int
(** Bump when the cached payload layout changes; invalidates every
    existing entry (old files fail the embedded version check and old
    keys are never derived again).  The sharded layout did {e not} bump
    it: entry documents are unchanged, so migration preserves every
    key. *)

val default_dir : unit -> string
(** [$POLYUFC_CACHE_DIR] or ["_polyufc_cache"]. *)

val parse_size : string -> int option
(** Parse a byte count with an optional [k]/[M]/[G] suffix
    (["64M"] → [67108864]).  [None] on anything else. *)

val create :
  ?dir:string ->
  ?upstream:string ->
  ?mem_entries:int ->
  ?mem_bytes:int ->
  ?max_bytes:int ->
  ?max_entries:int ->
  ?quarantine_keep:int ->
  unit ->
  t
(** No I/O happens until the first use.  [upstream] defaults to
    [POLYUFC_CACHE_UPSTREAM] (ignored if equal to the local dir);
    [max_bytes]/[max_entries] default to [POLYUFC_CACHE_MAX_BYTES] /
    [POLYUFC_CACHE_MAX_ENTRIES] (unset = unbounded); the memory tier
    defaults to 512 entries / 32 MiB ([mem_entries]/[mem_bytes] [<= 0]
    disables it); [quarantine_keep] defaults to 32. *)

val dir : t -> string

val upstream : t -> string option
(** The read-only upstream directory, if one is configured. *)

val read_only : t -> bool
(** True once a store hit [ENOSPC]; the disk tier then serves hits but
    skips every further store (the memory tier still absorbs them). *)

val key : ?schema:int -> (string * string) list -> string
(** Content address of the given parts (field order is significant; pass
    a fixed field layout).  [schema] defaults to {!schema_version} and is
    part of the digested content. *)

val entry_path : t -> string -> string
(** Where the entry for this key lives (or would live) in the sharded
    on-disk tier: [<dir>/<first-2-hex>/<key>.json]. *)

val quarantine_dir : t -> string
(** [<cache-dir>/quarantine], where corrupt entries are moved. *)

val find : t -> string -> Telemetry.Json.t option
(** Memory, then local disk, then upstream.  [None] on absence,
    corruption, or schema mismatch.  Corrupt local entries (unparsable,
    missing fields, checksum mismatch) are quarantined after one failed
    retry; corrupt upstream entries are just misses.  An upstream hit is
    promoted into the local tiers. *)

val store : ?kind:string -> t -> string -> Telemetry.Json.t -> unit
(** Atomic; creates the cache directory on first use.  The memory tier
    takes every store; the disk tier is skipped in {!read_only} mode.
    Transient I/O failures are retried once, persistent ones are
    warnings, [ENOSPC] flips {!read_only} (the cache is an accelerator,
    never a correctness dependency).  [kind] tags the entry document for
    {!stats_by_kind} (untagged = {!kind_numeric}).  May trigger an
    opportunistic {!gc} when the store crosses the watermark. *)

val find_or_add :
  t ->
  key:string ->
  decode:(Telemetry.Json.t -> 'a option) ->
  encode:('a -> Telemetry.Json.t) ->
  (unit -> 'a) ->
  'a
(** Memoize [f] under [key]; a [decode] returning [None] counts as a
    corrupt entry and falls back to computing. *)

type stats = { entries : int; bytes : int }

val stats : t -> stats
(** Live entries and bytes in the on-disk tier, from the index — no
    entry scan. *)

val kind_numeric : string
(** ["numeric/v2"]: the implicit kind of untagged analysis entries. *)

val kind_symbolic : string
(** ["symbolic/v1"]: chamber-decomposition entries ({!Presburger.Chamber});
    checksummed exactly like numeric entries and subject to the same
    quarantine machinery. *)

val stats_by_kind : t -> (string * stats) list
(** Entry census per kind tag, from the index (untagged entries count as
    {!kind_numeric}; files that were unreadable when indexed as
    ["unreadable"]). *)

val mem_stats : t -> stats
(** Occupancy of the in-memory tier ([{entries = 0; bytes = 0}] when the
    tier is disabled). *)

type index_health = {
  indexed_entries : int;
  indexed_bytes : int;
  log_records : int;  (** index records appended since the last snapshot *)
  migrated : int;  (** flat entries sharded by this handle's open *)
}

val index_health : t -> index_health
(** For [cache stats]: how big the index log has grown and whether this
    open migrated a flat layout. *)

val migrate : t -> int
(** Force the open (and with it the flat→sharded migration) now; returns
    how many flat entries were moved by this handle.  Opening is
    idempotent: a second call returns the same number without I/O. *)

type gc_report = {
  examined : int;  (** live entries considered *)
  evicted : int;
  evicted_bytes : int;
  live_entries : int;  (** after the sweep *)
  live_bytes : int;
  interrupted : bool;  (** an injected [rcache.gc_crash] stopped the sweep *)
}

val gc : ?max_bytes:int -> ?max_entries:int -> t -> gc_report
(** Evict least-recently-used entries until the store fits under the
    given watermarks (defaulting to the store's configured ones; both
    unset = no-op).  Crash-consistent: entry files are removed before
    their index records, so an interrupted sweep leaves a store that
    reopens, rebuilds its index, and keeps serving the survivors. *)

val clear : t -> int
(** Remove every entry; returns how many were removed.  Quarantined
    files are kept (they are post-mortem evidence, not entries). *)

type counts = {
  hits : int;  (** total across tiers *)
  misses : int;
  stores : int;
  corrupt : int;
  quarantined : int;
  write_retries : int;  (** transient store failures that were retried *)
  readonly_flips : int;  (** caches flipped read-only by [ENOSPC] *)
  mem_hits : int;
  disk_hits : int;
  upstream_hits : int;
  promotions : int;  (** upstream hits replayed into the local tiers *)
  evictions : int;  (** on-disk entries removed by {!gc} *)
  mem_evictions : int;
  gc_runs : int;
  gc_crashes : int;  (** injected [rcache.gc_crash] firings honoured *)
  migrated : int;  (** flat entries moved to the sharded layout *)
  index_rebuilds : int;
  index_bad_lines : int;  (** index lines skipped for a bad checksum *)
  quarantine_dropped : int;  (** old quarantine files pruned *)
}

val counts : unit -> counts
(** Process-wide counters since startup, summed over every cache
    directory this process touched (independent of telemetry
    enablement). *)

val counts_for : t -> counts
(** Like {!counts}, but only the events attributed to this store's
    directory. *)

val flush_counters : unit -> unit
(** Merge the process counters accumulated since the last flush into
    each touched cache directory's own persisted sidecar, then zero them
    — so flushing repeatedly (or flushing and then exiting, where an
    [at_exit] flush also runs) never double-counts, and a process that
    touched several stores attributes each event to the directory it
    happened in.  The serve daemon calls this when a drain completes so
    cumulative hit rates survive even an unclean exit afterwards.
    No-op when no cache directory has been touched. *)

val cumulative : t -> counts
(** This directory's counters from the current process plus those
    persisted by previous processes that used the same cache directory.
    A process that touched a cache merges its counters into
    [<dir>/meta/counters.json] at exit (the sidecar lives under [meta/],
    outside the entry namespace, so {!stats} and {!clear} ignore it),
    which is what lets [polyufc cache stats] report hit rates without
    having run the analysis itself. *)
