(** Crash-proof boundary for the CLI and other frontends: run a
    computation and convert any escaped exception into a structured
    diagnostic with a defined exit code, so callers always terminate
    cleanly and [--json] output always stays well-formed.

    Frontend libraries register {e classifiers} that recognise their own
    exception types (parse errors, lowering errors) as invalid input;
    everything unclassified is an internal fault. *)

(** {1 Exit codes} *)

val exit_ok : int (* 0  — success *)
val exit_usage : int (* 2  — bad command line *)
val exit_invalid_input : int (* 3  — malformed input program *)
val exit_exhausted : int (* 4  — deadline/fuel exhausted, no degrade *)
val exit_internal : int (* 5  — internal fault that survived retries *)
val exit_interrupted : int (* 130 — cancelled by SIGINT *)

(** {1 Diagnostics} *)

type diagnostic = {
  code : int;  (** process exit code, one of the values above *)
  phase : string;  (** innermost {!phase} active when the exception escaped *)
  message : string;
  span : string option;  (** input location such as ["line 3"], when known *)
  dump : string option;
      (** path of the flight-recorder crash dump, for internal faults *)
}

val json_of : diagnostic -> Telemetry.Json.t
(** [{"code": .., "phase": .., "message": .., "span": .., "dump": ..}] —
    the object emitted under the top-level ["error"] key in [--json]
    mode. *)

val pp : Format.formatter -> diagnostic -> unit
(** One-line human rendering for stderr. *)

(** {1 Classification} *)

type verdict =
  | Invalid_input of { message : string; span : string option }
      (** the exception means the {e input} is bad (exit 3), not the tool *)

val register_classifier : (exn -> verdict option) -> unit
(** Called by frontend libraries at module initialization.  Classifiers
    are consulted in registration order; the first [Some] wins. *)

val invalid : string -> verdict
(** Build an [Invalid_input] verdict from a frontend message, lifting a
    leading ["line N"] prefix (the frontends' conventional location
    format) into the span. *)

(** {1 Protection} *)

val phase : string -> (unit -> 'a) -> 'a
(** Label the current pipeline phase ("parse", "lower", "analyze", …) for
    diagnostics.  Nests; an exception escaping [f] leaves the innermost
    label visible to the enclosing {!protect}. *)

val protect : ?phase:string -> (unit -> 'a) -> ('a, diagnostic) result
(** Run [f], trapping every exception:

    - {!Budget.Exhausted} → {!exit_exhausted}
    - {!Cancel.Cancelled} → {!exit_interrupted}
    - a registered classifier's [Invalid_input], or a bare
      [Invalid_argument] / [Failure] / [Sys_error] → {!exit_invalid_input}
    - anything else (including {!Pool.Worker_failure} and
      {!Faultsim.Injected}) → {!exit_internal}

    Invalid-input and internal traps tick the [engine.guard_trapped]
    counter; resource outcomes (4/130) do not — they are cooperative
    shutdowns, not trapped crashes.

    An internal fault (exit 5) additionally emits a [guard.trapped]
    error event and dumps the flight recorder — the last ring of events,
    open spans, run metadata and the diagnostic — to
    [polyufc-crash-<pid>.json] in the current directory (or
    [POLYUFC_CRASH_DIR]), recording the path in [diagnostic.dump].
    Dump-write failures are swallowed: forensics must never mask the
    original fault. *)
