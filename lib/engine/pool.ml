(* Domain-based worker pool: a bounded work queue drained by [jobs]
   worker domains, futures for completion, deterministic result ordering
   (slots are indexed by submission order), and first-error cancellation
   within a [map].

   A domain-local flag marks pool workers so that a nested [map] issued
   from inside a job runs inline on that worker instead of deadlocking on
   the queue it is itself supposed to drain.

   Workers are *supervised*: a worker domain that dies (in practice via
   the [pool.worker_crash] fault-injection site — job exceptions proper
   are caught into futures and cannot kill a worker) requeues its
   in-flight job with capped exponential backoff, spawns its own
   replacement, and only then exits.  A job that keeps landing on dying
   workers is abandoned after [max_retries] requeues with
   {!Worker_failure}, turning unbounded bad luck into a bounded, counted
   per-job failure instead of a hang or a poisoned pool. *)

exception Cancelled

exception Worker_failure of string

type job = {
  mutable attempts : int;  (* completed crash-requeue cycles *)
  run : unit -> unit;
  abandon : exn -> unit;  (* fail the job's future without running it *)
}

(* Simulated worker death carrying the in-flight job out of the worker
   loop to the supervisor.  Never escapes the domain body. *)
exception Crashed of job

type t = {
  n_jobs : int;
  max_retries : int;
  queue : job Queue.t;
  capacity : int;
  mutex : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
  mutable closed : bool;
  mutable workers : unit Domain.t list;
}

type 'a state = Pending | Done of 'a | Failed of exn

type 'a future = {
  f_mutex : Mutex.t;
  f_cond : Condition.t;
  mutable f_state : 'a state;
}

let c_submitted = Telemetry.counter "engine.pool.submitted"
let c_completed = Telemetry.counter "engine.pool.completed"
let c_failed = Telemetry.counter "engine.pool.failed"
let c_cancelled = Telemetry.counter "engine.pool.cancelled"
let c_worker_crashes = Telemetry.counter "engine.worker_crashes"
let c_job_retries = Telemetry.counter "engine.job_retries"

let worker_key : bool ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref false)

let in_worker () = !(Domain.DLS.get worker_key)

let default_jobs () = Domain.recommended_domain_count ()

let default_max_retries = 5

let worker_loop t =
  Domain.DLS.get worker_key := true;
  let rec loop () =
    Mutex.lock t.mutex;
    while Queue.is_empty t.queue && not t.closed do
      Condition.wait t.not_empty t.mutex
    done;
    if Queue.is_empty t.queue then Mutex.unlock t.mutex (* closed: exit *)
    else begin
      let job = Queue.pop t.queue in
      Condition.signal t.not_full;
      Mutex.unlock t.mutex;
      if Faultsim.fire Faultsim.Pool_worker_stall then
        Unix.sleepf (Faultsim.stall_seconds ());
      if Faultsim.fire Faultsim.Pool_worker_crash then raise (Crashed job);
      job.run ();
      loop ()
    end
  in
  loop ()

(* Delay before the [attempts]-th requeue: 1ms doubling, capped at 100ms,
   so a crashy site neither spins nor stalls the pipeline. *)
let backoff_delay attempts =
  Float.min 0.1 (0.001 *. Float.pow 2.0 (float_of_int (attempts - 1)))

let requeue_crashed t job =
  job.attempts <- job.attempts + 1;
  if job.attempts > t.max_retries then begin
    Telemetry.Event.error "pool.job_abandoned"
      ~fields:
        [
          ("attempts", Telemetry.Json.Int job.attempts);
          ("max_retries", Telemetry.Json.Int t.max_retries);
        ];
    job.abandon
      (Worker_failure
         (Printf.sprintf
            "job abandoned after %d worker crash%s (max_retries=%d)"
            job.attempts
            (if job.attempts = 1 then "" else "es")
            t.max_retries))
  end
  else begin
    Telemetry.tick c_job_retries;
    Telemetry.Event.info "pool.job_requeued"
      ~fields:
        [
          ("attempt", Telemetry.Json.Int job.attempts);
          ("backoff_s", Telemetry.Json.Float (backoff_delay job.attempts));
        ];
    Unix.sleepf (backoff_delay job.attempts);
    Mutex.lock t.mutex;
    (* bypass the capacity gate: a dying domain must never block *)
    Queue.push job t.queue;
    Condition.signal t.not_empty;
    Mutex.unlock t.mutex
  end

(* The domain body.  [worker_loop] only returns on orderly shutdown; any
   exception means this domain is dying, so recover its in-flight job,
   spawn a replacement while the pool still needs one, and exit normally
   (an exception escaping the body would poison [Domain.join]). *)
let rec supervised t () =
  try worker_loop t
  with e ->
    Telemetry.tick c_worker_crashes;
    Telemetry.Event.warn "pool.worker_crash"
      ~fields:
        [
          ( "exn",
            Telemetry.Json.Str
              (match e with
              | Crashed _ -> "injected crash"
              | e -> Printexc.to_string e) );
        ];
    (match e with Crashed job -> requeue_crashed t job | _ -> ());
    Mutex.lock t.mutex;
    if (not t.closed) || not (Queue.is_empty t.queue) then begin
      Telemetry.Event.info "pool.worker_respawn";
      t.workers <- Domain.spawn (supervised t) :: t.workers
    end;
    Mutex.unlock t.mutex

let create ?jobs ?(max_retries = default_max_retries) () =
  let n_jobs =
    match jobs with Some n -> max 1 n | None -> default_jobs ()
  in
  let t =
    {
      n_jobs;
      max_retries = max 0 max_retries;
      queue = Queue.create ();
      capacity = max 16 (4 * n_jobs);
      mutex = Mutex.create ();
      not_empty = Condition.create ();
      not_full = Condition.create ();
      closed = false;
      workers = [];
    }
  in
  if n_jobs > 1 then
    t.workers <- List.init n_jobs (fun _ -> Domain.spawn (supervised t));
  t

let jobs t = t.n_jobs
let max_retries t = t.max_retries

(* A crashed worker may respawn a replacement (and requeue its job) while
   we are joining the previous generation, so drain generations until the
   worker list stays empty.  Joining the dying domain happens-before its
   replacement appears in [t.workers], so no domain is orphaned. *)
let shutdown t =
  Mutex.lock t.mutex;
  t.closed <- true;
  Condition.broadcast t.not_empty;
  Mutex.unlock t.mutex;
  let rec drain () =
    Mutex.lock t.mutex;
    let workers = t.workers in
    t.workers <- [];
    Mutex.unlock t.mutex;
    if workers <> [] then begin
      List.iter Domain.join workers;
      drain ()
    end
  in
  drain ()

let with_pool ?jobs ?max_retries f =
  let t = create ?jobs ?max_retries () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let fulfill fut st =
  Mutex.lock fut.f_mutex;
  fut.f_state <- st;
  Condition.broadcast fut.f_cond;
  Mutex.unlock fut.f_mutex

let await fut =
  Mutex.lock fut.f_mutex;
  while fut.f_state = Pending do
    Condition.wait fut.f_cond fut.f_mutex
  done;
  let st = fut.f_state in
  Mutex.unlock fut.f_mutex;
  match st with
  | Done v -> Ok v
  | Failed e -> Error e
  | Pending -> assert false

let run_job f fut () =
  match f () with
  | v ->
    Telemetry.tick c_completed;
    fulfill fut (Done v)
  | exception Cancelled ->
    Telemetry.tick c_cancelled;
    fulfill fut (Failed Cancelled)
  | exception e ->
    Telemetry.tick c_failed;
    fulfill fut (Failed e)

let submit ?cancel t f =
  (* a job enqueued under a cancellation token re-checks the token when a
     worker picks it up, so queued-but-unstarted work is abandoned the
     moment the token trips (in-flight jobs poll cooperatively instead) *)
  let f =
    match cancel with
    | None -> f
    | Some c ->
      fun () ->
        Cancel.check c;
        f ()
  in
  let fut = { f_mutex = Mutex.create (); f_cond = Condition.create (); f_state = Pending } in
  if t.n_jobs <= 1 || in_worker () then run_job f fut ()
  else begin
    let job =
      {
        attempts = 0;
        run = run_job f fut;
        abandon =
          (fun e ->
            Telemetry.tick c_failed;
            fulfill fut (Failed e));
      }
    in
    Mutex.lock t.mutex;
    while Queue.length t.queue >= t.capacity && not t.closed do
      Condition.wait t.not_full t.mutex
    done;
    if t.closed then begin
      Mutex.unlock t.mutex;
      invalid_arg "Engine.Pool.submit: pool is shut down"
    end;
    Queue.push job t.queue;
    Condition.signal t.not_empty;
    Mutex.unlock t.mutex
  end;
  Telemetry.tick c_submitted;
  fut

let mapi ?cancel t f xs =
  if t.n_jobs <= 1 || in_worker () then
    List.mapi
      (fun i x ->
        Option.iter Cancel.check cancel;
        f i x)
      xs
  else begin
    let xs = Array.of_list xs in
    (* first failure flips the token; queued-but-unstarted siblings then
       bail out as [Cancelled] instead of doing their work.  An external
       [?cancel] token additionally aborts the whole map: its
       [Cancel.Cancelled] is a real error (re-raised below), unlike the
       internal first-error token. *)
    let first_error_token = Atomic.make false in
    let futures =
      Array.mapi
        (fun i x ->
          submit ?cancel t (fun () ->
              if Atomic.get first_error_token then raise Cancelled
              else
                try f i x
                with e ->
                  Atomic.set first_error_token true;
                  raise e))
        xs
    in
    (* await everything before raising so no job outlives the call *)
    let results = Array.map await futures in
    let first_error =
      Array.to_seq results
      |> Seq.filter_map (function
           | Error Cancelled | Ok _ -> None
           | Error e -> Some e)
      |> Seq.uncons
    in
    (match first_error with
    | Some (e, _) -> raise e
    | None -> ());
    Array.to_list
      (Array.map (function Ok v -> v | Error e -> raise e) results)
  end

let map ?cancel t f xs = mapi ?cancel t (fun _ x -> f x) xs

let map_partial ?cancel t f xs =
  if t.n_jobs <= 1 || in_worker () then
    ( List.map
        (fun x ->
          Option.iter Cancel.check cancel;
          f x)
        xs,
      Fidelity.Exact )
  else begin
    let xs = Array.of_list xs in
    let first_error_token = Atomic.make false in
    let futures =
      Array.map
        (fun x ->
          submit ?cancel t (fun () ->
              if Atomic.get first_error_token then raise Cancelled
              else
                try f x
                with e ->
                  Atomic.set first_error_token true;
                  raise e))
        xs
    in
    let results = Array.map await futures in
    (* Abandoned jobs ([Worker_failure]) degrade the result instead of
       failing it; any other failure keeps [map]'s raising semantics.
       [Error Cancelled] implies such a real failure exists in [results]
       (abandonment never trips the first-error token). *)
    let first_error =
      Array.to_seq results
      |> Seq.filter_map (function
           | Error Cancelled | Error (Worker_failure _) | Ok _ -> None
           | Error e -> Some e)
      |> Seq.uncons
    in
    (match first_error with
    | Some (e, _) -> raise e
    | None -> ());
    let kept =
      Array.to_seq results
      |> Seq.filter_map (function Ok v -> Some v | Error _ -> None)
      |> List.of_seq
    in
    let fidelity =
      if List.length kept = Array.length results then Fidelity.Exact
      else Fidelity.Partial
    in
    (kept, fidelity)
  end
