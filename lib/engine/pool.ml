(* Domain-based worker pool: a bounded work queue drained by [jobs]
   worker domains, futures for completion, deterministic result ordering
   (slots are indexed by submission order), and first-error cancellation
   within a [map].

   A domain-local flag marks pool workers so that a nested [map] issued
   from inside a job runs inline on that worker instead of deadlocking on
   the queue it is itself supposed to drain. *)

exception Cancelled

type job = unit -> unit

type t = {
  n_jobs : int;
  queue : job Queue.t;
  capacity : int;
  mutex : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
  mutable closed : bool;
  mutable workers : unit Domain.t list;
}

type 'a state = Pending | Done of 'a | Failed of exn

type 'a future = {
  f_mutex : Mutex.t;
  f_cond : Condition.t;
  mutable f_state : 'a state;
}

let c_submitted = Telemetry.counter "engine.pool.submitted"
let c_completed = Telemetry.counter "engine.pool.completed"
let c_failed = Telemetry.counter "engine.pool.failed"
let c_cancelled = Telemetry.counter "engine.pool.cancelled"

let worker_key : bool ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref false)

let in_worker () = !(Domain.DLS.get worker_key)

let default_jobs () = Domain.recommended_domain_count ()

let worker_loop t =
  Domain.DLS.get worker_key := true;
  let rec loop () =
    Mutex.lock t.mutex;
    while Queue.is_empty t.queue && not t.closed do
      Condition.wait t.not_empty t.mutex
    done;
    if Queue.is_empty t.queue then Mutex.unlock t.mutex (* closed: exit *)
    else begin
      let job = Queue.pop t.queue in
      Condition.signal t.not_full;
      Mutex.unlock t.mutex;
      job ();
      loop ()
    end
  in
  loop ()

let create ?jobs () =
  let n_jobs =
    match jobs with Some n -> max 1 n | None -> default_jobs ()
  in
  let t =
    {
      n_jobs;
      queue = Queue.create ();
      capacity = max 16 (4 * n_jobs);
      mutex = Mutex.create ();
      not_empty = Condition.create ();
      not_full = Condition.create ();
      closed = false;
      workers = [];
    }
  in
  if n_jobs > 1 then
    t.workers <- List.init n_jobs (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let jobs t = t.n_jobs

let shutdown t =
  Mutex.lock t.mutex;
  t.closed <- true;
  Condition.broadcast t.not_empty;
  Mutex.unlock t.mutex;
  let workers = t.workers in
  t.workers <- [];
  List.iter Domain.join workers

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let fulfill fut st =
  Mutex.lock fut.f_mutex;
  fut.f_state <- st;
  Condition.broadcast fut.f_cond;
  Mutex.unlock fut.f_mutex

let await fut =
  Mutex.lock fut.f_mutex;
  while fut.f_state = Pending do
    Condition.wait fut.f_cond fut.f_mutex
  done;
  let st = fut.f_state in
  Mutex.unlock fut.f_mutex;
  match st with
  | Done v -> Ok v
  | Failed e -> Error e
  | Pending -> assert false

let run_job f fut () =
  match f () with
  | v ->
    Telemetry.tick c_completed;
    fulfill fut (Done v)
  | exception Cancelled ->
    Telemetry.tick c_cancelled;
    fulfill fut (Failed Cancelled)
  | exception e ->
    Telemetry.tick c_failed;
    fulfill fut (Failed e)

let submit ?cancel t f =
  (* a job enqueued under a cancellation token re-checks the token when a
     worker picks it up, so queued-but-unstarted work is abandoned the
     moment the token trips (in-flight jobs poll cooperatively instead) *)
  let f =
    match cancel with
    | None -> f
    | Some c ->
      fun () ->
        Cancel.check c;
        f ()
  in
  let fut = { f_mutex = Mutex.create (); f_cond = Condition.create (); f_state = Pending } in
  if t.n_jobs <= 1 || in_worker () then run_job f fut ()
  else begin
    Mutex.lock t.mutex;
    while Queue.length t.queue >= t.capacity && not t.closed do
      Condition.wait t.not_full t.mutex
    done;
    if t.closed then begin
      Mutex.unlock t.mutex;
      invalid_arg "Engine.Pool.submit: pool is shut down"
    end;
    Queue.push (run_job f fut) t.queue;
    Condition.signal t.not_empty;
    Mutex.unlock t.mutex
  end;
  Telemetry.tick c_submitted;
  fut

let mapi ?cancel t f xs =
  if t.n_jobs <= 1 || in_worker () then
    List.mapi
      (fun i x ->
        Option.iter Cancel.check cancel;
        f i x)
      xs
  else begin
    let xs = Array.of_list xs in
    (* first failure flips the token; queued-but-unstarted siblings then
       bail out as [Cancelled] instead of doing their work.  An external
       [?cancel] token additionally aborts the whole map: its
       [Cancel.Cancelled] is a real error (re-raised below), unlike the
       internal first-error token. *)
    let first_error_token = Atomic.make false in
    let futures =
      Array.mapi
        (fun i x ->
          submit ?cancel t (fun () ->
              if Atomic.get first_error_token then raise Cancelled
              else
                try f i x
                with e ->
                  Atomic.set first_error_token true;
                  raise e))
        xs
    in
    (* await everything before raising so no job outlives the call *)
    let results = Array.map await futures in
    let first_error =
      Array.to_seq results
      |> Seq.filter_map (function
           | Error Cancelled | Ok _ -> None
           | Error e -> Some e)
      |> Seq.uncons
    in
    (match first_error with
    | Some (e, _) -> raise e
    | None -> ());
    Array.to_list
      (Array.map (function Ok v -> v | Error e -> raise e) results)
  end

let map ?cancel t f xs = mapi ?cancel t (fun _ x -> f x) xs
