(** Trace-driven, inclusive, multi-level, set-associative cache simulator.

    Each level is set-associative with true LRU replacement.  The hierarchy
    is inclusive: a fill at level [i] also fills all deeper levels; an
    eviction from a deeper level back-invalidates shallower ones.  Writes
    are write-allocate and write-back (dirty lines produce DRAM traffic on
    eviction) — this is the "real hardware" reference against which the
    paper-faithful write-through analytical model (PolyUFC-CM) is
    validated. *)

type level_stats = {
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable writebacks : int;  (** dirty evictions leaving this level *)
}

type t

type outcome = {
  hit_level : int;
      (** 0-based level that served the access; [n_levels] means DRAM *)
  dram_fill : bool;  (** a line was brought from DRAM *)
  dram_writeback : bool;  (** a dirty line was written back to DRAM *)
}

val create : Machine.cache_geometry list -> t
val n_levels : t -> int
val access : t -> addr:int -> is_write:bool -> outcome
val stats : t -> level_stats array
val dram_reads : t -> int
val dram_writebacks : t -> int
val reset : t -> unit
val flush_writebacks : t -> int
(** Number of dirty lines still resident (would be written back at program
    end); does not change state. *)
