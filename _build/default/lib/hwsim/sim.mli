(** The hardware simulator: executes a program's access trace against a
    {!Machine.t} and reports time, energy and EDP.

    This is the reproduction's stand-in for the paper's real testbeds
    (PAPI counters + RAPL energy + the Intel UFS / P-state drivers):

    - {b Timing}: execution time accumulates per event.  Compute time is
      [flops · flop_ns / threads_in_parallel_region]; cache-hit time is
      [hit_latency / (mlp · threads)]; a DRAM access costs
      [max(latency(f_u)/mlp, line/BW(f_u))] — the bandwidth term is shared
      across threads, which is what starves bandwidth-bound kernels.
    - {b Power/energy}: [P = p_static + core_active + (α·f_u + γ)] plus a
      per-line DRAM transfer energy; energy integrates power over simulated
      time, RAPL-style, with separate core/uncore zone accounting.
    - {b Uncore frequency}: either pinned ([`Fixed f]) or driven by a
      UFS-like governor ([`Governor]) that scales the uncore with observed
      DRAM-bandwidth demand, bounded by the currently-active cap.  Cap
      changes (from the compiled-in cap schedule) cost the machine's
      cap-switch latency.

    Relative comparisons (capped code vs. the governor baseline on the same
    machine) are the meaningful output, as in the paper. *)

type uncore_policy =
  [ `Fixed of float  (** pin the uncore clock (cap with a saturated load) *)
  | `Governor  (** UFS-driver-like dynamic scaling, bounded by active cap *)
  ]

type zone_energy = { core_j : float; uncore_j : float; dram_j : float; static_j : float }

type outcome = {
  time_s : float;
  energy_j : float;
  edp : float;  (** energy × delay *)
  avg_power_w : float;
  avg_uncore_ghz : float;  (** time-weighted *)
  zones : zone_energy;
  flops : int;
  dram_lines : int;  (** DRAM line fills *)
  dram_bytes : int;  (** fills + writebacks, in bytes *)
  cache_stats : Cache.level_stats array;
  cap_switches : int;
  achieved_gflops : float;
  achieved_bw_gbps : float;
}

type cap_schedule = (string * float) list
(** Caps keyed by top-level loop variable: entering that loop sets the
    uncore cap (PolyUFC's inter-kernel capping, Sec. VII-A). *)

val run :
  machine:Machine.t ->
  uncore:uncore_policy ->
  ?caps:cap_schedule ->
  ?governor_interval_us:float ->
  Poly_ir.Ir.t ->
  param_values:(string * int) list ->
  outcome

val pp_outcome : Format.formatter -> outcome -> unit
