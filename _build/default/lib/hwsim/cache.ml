type level_stats = {
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable writebacks : int;
}

(* one cache level: per-set arrays of tags with LRU order; slot 0 = MRU.
   tags store the line address (addr / line_bytes); -1 = invalid. *)
type level = {
  geom : Machine.cache_geometry;
  n_sets : int;
  tags : int array;  (* n_sets * assoc *)
  dirty : bool array;
  stats : level_stats;
}

type t = { levels : level array; mutable dram_reads : int; mutable dram_wb : int }

type outcome = { hit_level : int; dram_fill : bool; dram_writeback : bool }

let make_level geom =
  let n_sets = geom.Machine.size_bytes / geom.Machine.line_bytes / geom.Machine.assoc in
  assert (n_sets > 0);
  {
    geom;
    n_sets;
    tags = Array.make (n_sets * geom.Machine.assoc) (-1);
    dirty = Array.make (n_sets * geom.Machine.assoc) false;
    stats = { hits = 0; misses = 0; evictions = 0; writebacks = 0 };
  }

let create geoms =
  assert (geoms <> []);
  let line = (List.hd geoms).Machine.line_bytes in
  List.iter (fun g -> assert (g.Machine.line_bytes = line)) geoms;
  { levels = Array.of_list (List.map make_level geoms); dram_reads = 0; dram_wb = 0 }

let n_levels t = Array.length t.levels

(* set index: XOR-fold the upper line bits into the index, as real LLC
   designs do, so that power-of-two strides do not resonate with a
   power-of-two set count (cf. Intel's complex addressing); inner levels keep plain modulo indexing *)
let set_of lvl line =
  if lvl.n_sets < 512 then line mod lvl.n_sets
  else begin
    let h = line lxor (line / lvl.n_sets) lxor (line / (lvl.n_sets * lvl.n_sets)) in
    ((h mod lvl.n_sets) + lvl.n_sets) mod lvl.n_sets
  end

(* look up a line in a level; on hit, move to MRU and return true.
   [set_dirty] marks the line dirty on hit. *)
let probe lvl line ~set_dirty =
  let assoc = lvl.geom.Machine.assoc in
  let set = set_of lvl line in
  let base = set * assoc in
  let rec find i =
    if i = assoc then -1
    else if lvl.tags.(base + i) = line then i
    else find (i + 1)
  in
  let i = find 0 in
  if i < 0 then false
  else begin
    (* move to front, preserving order of the others *)
    let d = lvl.dirty.(base + i) in
    for k = i downto 1 do
      lvl.tags.(base + k) <- lvl.tags.(base + k - 1);
      lvl.dirty.(base + k) <- lvl.dirty.(base + k - 1)
    done;
    lvl.tags.(base) <- line;
    lvl.dirty.(base) <- (d || set_dirty);
    true
  end

(* insert a line at MRU; returns the victim (tag, dirty) if one was evicted *)
let insert lvl line ~dirty =
  let assoc = lvl.geom.Machine.assoc in
  let set = set_of lvl line in
  let base = set * assoc in
  let victim_tag = lvl.tags.(base + assoc - 1) in
  let victim_dirty = lvl.dirty.(base + assoc - 1) in
  for k = assoc - 1 downto 1 do
    lvl.tags.(base + k) <- lvl.tags.(base + k - 1);
    lvl.dirty.(base + k) <- lvl.dirty.(base + k - 1)
  done;
  lvl.tags.(base) <- line;
  lvl.dirty.(base) <- dirty;
  if victim_tag >= 0 then Some (victim_tag, victim_dirty) else None

(* invalidate a line in a level (inclusion back-invalidation); a dirty
   shallow copy is merged into the return value *)
let invalidate lvl line =
  let assoc = lvl.geom.Machine.assoc in
  let set = set_of lvl line in
  let base = set * assoc in
  let rec find i =
    if i = assoc then false
    else if lvl.tags.(base + i) = line then begin
      let d = lvl.dirty.(base + i) in
      (* compact: shift the rest up *)
      for k = i to assoc - 2 do
        lvl.tags.(base + k) <- lvl.tags.(base + k + 1);
        lvl.dirty.(base + k) <- lvl.dirty.(base + k + 1)
      done;
      lvl.tags.(base + assoc - 1) <- -1;
      lvl.dirty.(base + assoc - 1) <- false;
      d
    end
    else find (i + 1)
  in
  find 0

let access t ~addr ~is_write =
  let line = addr / t.levels.(0).geom.Machine.line_bytes in
  let n = Array.length t.levels in
  (* search; a write hit marks the line dirty at the level that serves it *)
  let rec search i =
    if i = n then n
    else if probe t.levels.(i) line ~set_dirty:is_write then i
    else begin
      t.levels.(i).stats.misses <- t.levels.(i).stats.misses + 1;
      search (i + 1)
    end
  in
  let hit_level = search 0 in
  if hit_level < n then
    t.levels.(hit_level).stats.hits <- t.levels.(hit_level).stats.hits + 1;
  let dram_fill = hit_level = n in
  if dram_fill then t.dram_reads <- t.dram_reads + 1;
  let dram_writeback = ref false in
  (* writeback of a dirty victim evicted from level [i]: dirtiness flows to
     the next level (which holds the line by inclusion) or to DRAM *)
  let writeback i victim =
    t.levels.(i).stats.writebacks <- t.levels.(i).stats.writebacks + 1;
    if i + 1 < n && probe t.levels.(i + 1) victim ~set_dirty:true then ()
    else begin
      t.dram_wb <- t.dram_wb + 1;
      dram_writeback := true
    end
  in
  (* fill every level above the one that served the access, deepest first;
     evictions back-invalidate shallower copies to preserve inclusion *)
  for i = min hit_level n - 1 downto 0 do
    let dirty = is_write && i = 0 in
    match insert t.levels.(i) line ~dirty with
    | None -> ()
    | Some (victim, victim_dirty) ->
      t.levels.(i).stats.evictions <- t.levels.(i).stats.evictions + 1;
      let merged_dirty = ref victim_dirty in
      for j = 0 to i - 1 do
        if invalidate t.levels.(j) victim then merged_dirty := true
      done;
      if !merged_dirty then writeback i victim
  done;
  { hit_level; dram_fill; dram_writeback = !dram_writeback }

let stats t = Array.map (fun l -> l.stats) t.levels

let dram_reads t = t.dram_reads
let dram_writebacks t = t.dram_wb

let reset t =
  Array.iter
    (fun l ->
      Array.fill l.tags 0 (Array.length l.tags) (-1);
      Array.fill l.dirty 0 (Array.length l.dirty) false;
      l.stats.hits <- 0;
      l.stats.misses <- 0;
      l.stats.evictions <- 0;
      l.stats.writebacks <- 0)
    t.levels;
  t.dram_reads <- 0;
  t.dram_wb <- 0

let flush_writebacks t =
  let last = t.levels.(Array.length t.levels - 1) in
  Array.fold_left
    (fun acc d -> if d then acc + 1 else acc)
    0 last.dirty
