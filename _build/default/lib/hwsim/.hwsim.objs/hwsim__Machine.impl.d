lib/hwsim/machine.ml: Float Format List
