lib/hwsim/sim.mli: Cache Format Machine Poly_ir
