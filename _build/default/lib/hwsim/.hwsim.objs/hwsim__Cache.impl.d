lib/hwsim/cache.ml: Array List Machine
