lib/hwsim/cache.mli: Machine
