lib/hwsim/sim.ml: Array Cache Float Format Interp List Machine Poly_ir
