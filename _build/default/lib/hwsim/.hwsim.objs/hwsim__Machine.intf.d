lib/hwsim/machine.mli: Format
