(** Machine descriptions for the simulated platforms.

    The paper evaluates on Intel Broadwell (Xeon 1650-v4) and Raptor Lake
    (i5-13600) testbeds (Table III).  We model scaled-down analogues —
    cache capacities and problem sizes are shrunk together so that
    trace-driven simulation stays tractable while preserving each kernel's
    working-set-to-LLC ratio, which is what determines CB/BB character.
    Frequency ranges, relative bandwidths, cap-switch latencies and the
    uncore power share (~30 % of package, Sec. I) follow the paper. *)

type cache_geometry = {
  level_name : string;
  size_bytes : int;
  line_bytes : int;
  assoc : int;
  hit_latency_ns : float;  (** load-to-use at base core frequency *)
}

type t = {
  name : string;
  threads : int;  (** OpenMP threads used for parallel loops *)
  core_ghz : float;  (** base (non-turbo) core frequency, P-state managed *)
  uncore_min_ghz : float;
  uncore_max_ghz : float;
  uncore_step_ghz : float;  (** cap search granularity, 0.1 GHz *)
  caches : cache_geometry list;  (** L1 → LLC, inclusive hierarchy *)
  flop_ns : float;  (** time per flop per thread (pipelined FPU) *)
  mlp : float;  (** memory-level parallelism amortizing hit latency *)
  dram_lat_a_ns : float;
      (** DRAM miss latency: [a / f_u + b] (the paper's M{^t} curve) *)
  dram_lat_b_ns : float;
  dram_bw_gbps_per_ghz : float;  (** bandwidth slope in uncore frequency *)
  dram_bw_max_gbps : float;  (** saturation bandwidth *)
  p_static_w : float;  (** constant (package idle) power p_con *)
  core_w_active : float;  (** dynamic core power while executing, per thread *)
  uncore_w_per_ghz : float;  (** uncore dynamic power slope α *)
  uncore_w_base : float;  (** uncore power intercept γ *)
  dram_nj_per_line : float;  (** energy per DRAM line transfer *)
  cap_switch_us : float;
      (** uncore cap write latency.  The paper measures 35 µs (BDW) and
          21 µs (RPL) against kernels running for seconds; our kernels are
          scaled ~10× smaller, so the latency is scaled to 3.5 / 2.1 µs to
          preserve the paper's overhead-to-runtime ratio (cf. DESIGN.md). *)
}

val bdw : t
(** Broadwell-class analogue: 6 threads, uncore 1.2–2.8 GHz. *)

val rpl : t
(** Raptor-Lake-class analogue: larger LLC, higher bandwidth,
    uncore 0.8–4.6 GHz. *)

val llc : t -> cache_geometry
val line_bytes : t -> int
val dram_latency_ns : t -> f_u:float -> float
val dram_bw_gbps : t -> f_u:float -> float
val uncore_power_w : t -> f_u:float -> float
val uncore_freqs : t -> float list
(** All cap candidates from min to max at step granularity. *)

val with_core_ghz : t -> float -> t
(** Retune the machine description to a different core (P-state) frequency:
    per-flop time and cache hit latencies scale inversely with the clock,
    dynamic core power scales ≈ f^2.2 (frequency × supply-voltage²) — the
    core-DVFS extension of Sec. VII-F.  The uncore domain is untouched. *)

val time_balance_fpb : t -> f_u:float -> float
(** B{^t}_DRAM: peak flops / peak DRAM bandwidth (FLOP per byte) with all
    threads active. *)

val pp : Format.formatter -> t -> unit
