type cache_geometry = {
  level_name : string;
  size_bytes : int;
  line_bytes : int;
  assoc : int;
  hit_latency_ns : float;
}

type t = {
  name : string;
  threads : int;
  core_ghz : float;
  uncore_min_ghz : float;
  uncore_max_ghz : float;
  uncore_step_ghz : float;
  caches : cache_geometry list;
  flop_ns : float;
  mlp : float;
  dram_lat_a_ns : float;
  dram_lat_b_ns : float;
  dram_bw_gbps_per_ghz : float;
  dram_bw_max_gbps : float;
  p_static_w : float;
  core_w_active : float;
  uncore_w_per_ghz : float;
  uncore_w_base : float;
  dram_nj_per_line : float;
  cap_switch_us : float;
}

let bdw =
  {
    name = "BDW";
    threads = 6;
    core_ghz = 3.5;
    uncore_min_ghz = 1.2;
    uncore_max_ghz = 2.8;
    uncore_step_ghz = 0.1;
    caches =
      [
        { level_name = "L1"; size_bytes = 16 * 1024; line_bytes = 64; assoc = 8; hit_latency_ns = 1.2 };
        { level_name = "L2"; size_bytes = 128 * 1024; line_bytes = 64; assoc = 8; hit_latency_ns = 3.5 };
        { level_name = "LLC"; size_bytes = 512 * 1024; line_bytes = 64; assoc = 12; hit_latency_ns = 12.0 };
      ];
    flop_ns = 0.10;
    mlp = 4.0;
    dram_lat_a_ns = 80.0;
    dram_lat_b_ns = 35.0;
    dram_bw_gbps_per_ghz = 7.0;
    dram_bw_max_gbps = 18.0;
    p_static_w = 12.0;
    core_w_active = 5.0;
    uncore_w_per_ghz = 11.0;
    uncore_w_base = 3.0;
    dram_nj_per_line = 20.0;
    cap_switch_us = 3.5;
  }

let rpl =
  {
    name = "RPL";
    threads = 8;
    core_ghz = 3.9;
    uncore_min_ghz = 0.8;
    uncore_max_ghz = 4.6;
    uncore_step_ghz = 0.1;
    caches =
      [
        { level_name = "L1"; size_bytes = 24 * 1024; line_bytes = 64; assoc = 12; hit_latency_ns = 1.0 };
        { level_name = "L2"; size_bytes = 256 * 1024; line_bytes = 64; assoc = 10; hit_latency_ns = 3.0 };
        { level_name = "LLC"; size_bytes = 1024 * 1024; line_bytes = 64; assoc = 16; hit_latency_ns = 10.0 };
      ];
    flop_ns = 0.05;
    mlp = 6.0;
    dram_lat_a_ns = 60.0;
    dram_lat_b_ns = 28.0;
    dram_bw_gbps_per_ghz = 9.0;
    dram_bw_max_gbps = 36.0;
    p_static_w = 10.0;
    core_w_active = 5.5;
    uncore_w_per_ghz = 7.0;
    uncore_w_base = 2.0;
    dram_nj_per_line = 16.0;
    cap_switch_us = 2.1;
  }

let llc m = List.nth m.caches (List.length m.caches - 1)
let line_bytes m = (llc m).line_bytes

let dram_latency_ns m ~f_u = (m.dram_lat_a_ns /. f_u) +. m.dram_lat_b_ns

let dram_bw_gbps m ~f_u =
  Float.min m.dram_bw_max_gbps (m.dram_bw_gbps_per_ghz *. f_u)

let uncore_power_w m ~f_u = (m.uncore_w_per_ghz *. f_u) +. m.uncore_w_base

let uncore_freqs m =
  let n =
    int_of_float
      (Float.round ((m.uncore_max_ghz -. m.uncore_min_ghz) /. m.uncore_step_ghz))
  in
  List.init (n + 1) (fun i ->
      Float.round ((m.uncore_min_ghz +. (float_of_int i *. m.uncore_step_ghz)) *. 10.)
      /. 10.)

let with_core_ghz m f =
  assert (f > 0.0);
  let r = f /. m.core_ghz in
  {
    m with
    core_ghz = f;
    flop_ns = m.flop_ns /. r;
    caches =
      List.map
        (fun g -> { g with hit_latency_ns = g.hit_latency_ns /. r })
        m.caches;
    core_w_active = m.core_w_active *. (r ** 2.2);
  }

let time_balance_fpb m ~f_u =
  let peak_flops = float_of_int m.threads /. m.flop_ns in
  (* flops per ns *)
  let bw_bytes_per_ns = dram_bw_gbps m ~f_u in
  (* GB/s = bytes/ns *)
  peak_flops /. bw_bytes_per_ns

let pp ppf m =
  Format.fprintf ppf
    "%s: %d threads @ %.1f GHz core, uncore %.1f-%.1f GHz, LLC %d KiB %d-way"
    m.name m.threads m.core_ghz m.uncore_min_ghz m.uncore_max_ghz
    ((llc m).size_bytes / 1024)
    (llc m).assoc
