(** The parametric performance / power / energy model of Sec. V.

    Inputs: the roofline constants (Table I, fitted by
    {!Roofline.microbench}) and a program profile from PolyUFC-CM
    (hit counts per level, LLC misses, Q_DRAM, Ω, OI).  Everything is then
    a closed-form function of the uncore frequency cap [f_c]:

    - execution time (Eqns. 2–4): [T = Ω·t_FPU + Σ_i hits_i·H_i +
      Miss_LLC · M{^t}(f_c)], with [M{^t}(f) = a/f + b];
    - performance and bandwidth (Eqns. 5–6);
    - total average power (Eqn. 10), specialized by boundedness:
      CB: [p_con + U(f_c)·(B{^t}/I) + p̂_FPU],
      BB: [p_con + U(f_c) + p̂_FPU·(I/B{^t})], with [U(f) = α_P·f + γ_P]
      the uncore power under full memory load;
    - peak power ceiling (Eqn. 8);
    - energy (Eqn. 11): [E = Ω·e_FPU + T{^Q}·P(f_c, I)]; and EDP. *)

type profile = {
  omega : float;  (** Ω: total flops *)
  level_hits : float array;  (** demand hits per cache level (Eqn. 4) *)
  miss_llc : float;
  q_dram_bytes : float;
  oi : float;
}

val profile_of_cm : Cache_model.Model.result -> profile
(** Extract the model inputs from a PolyUFC-CM analysis. *)

type estimate = {
  f_c : float;
  time_s : float;
  t_comp_s : float;
  t_mem_s : float;
  perf_gflops : float;  (** Eqn. 5 *)
  bw_gbps : float;  (** Eqn. 6 *)
  power_w : float;  (** Eqn. 10 *)
  peak_power_w : float;  (** Eqn. 8 *)
  energy_j : float;  (** Eqn. 11 *)
  edp : float;
  boundedness : Roofline.boundedness;
}

val estimate : Roofline.constants -> profile -> f_c:float -> estimate

val sweep : Roofline.constants -> profile -> estimate list
(** One estimate per admissible cap frequency of the machine. *)

val best_by :
  metric:[ `Edp | `Energy | `Time ] -> estimate list -> estimate
(** The estimate minimising the metric; raises [Invalid_argument] on []. *)

val pp_estimate : Format.formatter -> estimate -> unit
