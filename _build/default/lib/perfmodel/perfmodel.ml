type profile = {
  omega : float;
  level_hits : float array;
  miss_llc : float;
  q_dram_bytes : float;
  oi : float;
}

let profile_of_cm (r : Cache_model.Model.result) =
  {
    omega = float_of_int r.Cache_model.Model.flops;
    level_hits =
      Array.map
        (fun (c : Cache_model.Model.level_counts) ->
          float_of_int c.Cache_model.Model.demand_hits)
        r.Cache_model.Model.levels;
    miss_llc = r.Cache_model.Model.miss_llc;
    q_dram_bytes = r.Cache_model.Model.q_dram_bytes;
    oi = r.Cache_model.Model.oi;
  }

type estimate = {
  f_c : float;
  time_s : float;
  t_comp_s : float;
  t_mem_s : float;
  perf_gflops : float;
  bw_gbps : float;
  power_w : float;
  peak_power_w : float;
  energy_j : float;
  edp : float;
  boundedness : Roofline.boundedness;
}

let estimate (k : Roofline.constants) p ~f_c =
  let open Roofline in
  (* Eqn. 3: computation time *)
  let t_comp_ns = p.omega *. k.t_fpu_ns in
  (* Eqn. 4: memory time — hit terms plus the f_c-dependent DRAM term *)
  let hit_ns = ref 0.0 in
  Array.iteri
    (fun i h -> hit_ns := !hit_ns +. (h *. k.hit_cost_ns.(i)))
    p.level_hits;
  let miss_ns = p.miss_llc *. miss_latency_ns k ~f_u:f_c in
  let t_mem_ns = !hit_ns +. miss_ns in
  let time_ns = t_comp_ns +. t_mem_ns in
  let time_s = time_ns *. 1e-9 in
  (* Eqns. 5–6 *)
  let perf_gflops = if time_ns > 0.0 then p.omega /. time_ns else 0.0 in
  let bw_gbps = if time_ns > 0.0 then p.q_dram_bytes /. time_ns else 0.0 in
  let bd = characterize k ~oi:p.oi in
  (* Eqn. 10: total average power with the CB/BB split.  The uncore power
     has a clock component U(f) = α_P·f + γ_P (paid regardless of
     activity — the source of the CB over-provisioning waste) and a memory
     activity component proportional to achieved bandwidth; the paper's
     (B^t/I) scaling of the CB branch appears here through
     BW = Q/T ∝ 1/I.  The core component is p̂_FPU, scaled by compute
     utilization I/B^t in the BB branch as in Eqn. 10. *)
  let u_clk = uncore_power_at k ~f_u:f_c in
  let ratio = p.oi /. k.b_dram_t in
  let mem_activity_w = bw_gbps *. k.dram_w_per_gbps in
  let power_w =
    match bd with
    | CB -> k.p_con_w +. u_clk +. mem_activity_w +. k.p_fpu_hat_w
    | BB ->
      k.p_con_w +. u_clk +. mem_activity_w
      +. (k.p_fpu_hat_w *. Float.min 1.0 ratio)
  in
  (* Eqn. 8: peak power ceiling — replaces achieved bandwidth by the
     capability P̂_DRAM(f) = U(f) + BW(f)·w_per_GBps, scaled by B^t/I for
     CB kernels as I grows beyond B^t *)
  let p_dram_hat =
    u_clk +. (dram_bw_at k ~f_u:f_c *. k.dram_w_per_gbps)
  in
  let peak_power_w =
    match bd with
    | CB -> k.p_con_w +. (p_dram_hat /. Float.max 1.0 ratio) +. k.p_fpu_hat_w
    | BB -> k.p_con_w +. p_dram_hat +. (k.p_fpu_hat_w *. Float.min 1.0 ratio)
  in
  (* Eqn. 11 in integrated form (cf. footnote 6: the classic energy
     roofline): E = T · P(f_c, I) *)
  let energy_j = time_s *. power_w in
  {
    f_c;
    time_s;
    t_comp_s = t_comp_ns *. 1e-9;
    t_mem_s = t_mem_ns *. 1e-9;
    perf_gflops;
    bw_gbps;
    power_w;
    peak_power_w;
    energy_j;
    edp = energy_j *. time_s;
    boundedness = bd;
  }

let sweep k p =
  List.map (fun f -> estimate k p ~f_c:f)
    (Hwsim.Machine.uncore_freqs k.Roofline.machine)

let metric_value m e =
  match m with `Edp -> e.edp | `Energy -> e.energy_j | `Time -> e.time_s

let best_by ~metric = function
  | [] -> invalid_arg "Perfmodel.best_by: empty sweep"
  | e :: rest ->
    List.fold_left
      (fun best x ->
        if metric_value metric x < metric_value metric best then x else best)
      e rest

let pp_estimate ppf e =
  Format.fprintf ppf
    "f_c=%.1f GHz: T=%.4g s (comp %.3g + mem %.3g) perf=%.2f GF/s bw=%.2f \
     GB/s P=%.1f W (peak %.1f) E=%.4g J EDP=%.4g [%a]"
    e.f_c e.time_s e.t_comp_s e.t_mem_s e.perf_gflops e.bw_gbps e.power_w
    e.peak_power_w e.energy_j e.edp Roofline.pp_boundedness e.boundedness
