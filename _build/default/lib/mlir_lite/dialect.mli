(** A miniature multi-dialect IR — the MLIR substitute.

    The paper's ML-PolyUFC (Sec. VI) studies where to {e analyze} and where
    to {e apply} uncore caps across the [torch] → [linalg] → [affine] →
    [scf] lowering chain.  This module gives that chain a concrete shape:

    - {b torch}: whole-network named ops with tensor shapes
      ([sdpa], [conv2d], [matmul], [softmax], …);
    - {b linalg}: structured ops over named buffers — one torch op
      decomposes into several ([sdpa] becomes two matmuls, a scale and the
      three softmax generics, cf. Fig. 5);
    - {b affine}: loop nests (the {!Poly_ir.Ir} form) — the analysis level;
    - {b scf}: affine nests plus explicit [set_uncore_cap] calls, the
      codegen level fed to the simulator.

    Ops of different dialects may coexist in a module during progressive
    lowering, exactly as in MLIR. *)

type dialect = Torch | Linalg | Affine | Scf

type torch_op =
  | T_sdpa of { batch : int; heads : int; seq : int; dim : int }
  | T_conv2d of {
      n : int; c : int; h : int; w : int;  (** input NCHW *)
      k : int; r : int; s : int;  (** filters KC RS, stride 1, no pad *)
    }
  | T_matmul of { m : int; k : int; n : int }
  | T_softmax of { rows : int; cols : int }
  | T_relu of { elems : int }
  | T_add of { elems : int }

type linalg_op =
  | L_matmul of { m : int; k : int; n : int; a : string; b : string; c : string }
  | L_batch_matmul of {
      g : int;  (** batch (groups) *)
      m : int; k : int; n : int;
      transpose_b : bool;  (** contract against Bᵀ (the QKᵀ pattern) *)
      a : string; b : string; c : string;
    }
  | L_conv2d_nchw_fchw of {
      n : int; c : int; h : int; w : int; k : int; r : int; s : int;
      input : string; filter : string; output : string;
    }
  | L_scale of { elems : int; factor : float; buf : string }
  | L_exp of { elems : int; src : string; dst : string }
  | L_rowsum of { rows : int; cols : int; src : string; dst : string }
  | L_rowdiv of { rows : int; cols : int; buf : string; divisor : string }
  | L_relu of { elems : int; buf : string }
  | L_add of { elems : int; a : string; b : string; dst : string }
  | L_transpose of { rows : int; cols : int; src : string; dst : string }

type op =
  | Torch_op of string * torch_op  (** carries a result-buffer prefix *)
  | Linalg_op of linalg_op
  | Affine_nest of Poly_ir.Ir.item
  | Scf_nest of Poly_ir.Ir.item
  | Set_uncore_cap of float  (** the inserted frequency-cap func call *)

type t = {
  module_name : string;
  arrays : Poly_ir.Ir.array_decl list;  (** buffers, accumulated by lowering *)
  ops : op list;
}

val dialect_of_op : op -> dialect
(** [Set_uncore_cap] belongs to [Scf]. *)

val lowest_dialect : t -> dialect
(** The deepest dialect present ([Torch] < [Linalg] < [Affine] < [Scf]). *)

val torch_flops : torch_op -> int
(** Nominal flop count of a torch op under the unitary model. *)

val linalg_name : linalg_op -> string
val torch_name : torch_op -> string
val op_name : op -> string
val pp_op : Format.formatter -> op -> unit
val pp : Format.formatter -> t -> unit
