(** Progressive lowering between dialects, and the pass manager.

    Mirrors the paper's pipeline (Fig. 2/3): [torch-to-linalg] decomposes
    named network ops into structured ops, [linalg-to-affine] emits loop
    nests (optionally Pluto-tiled and parallelized, the polygeist-opt +
    Pluto stage), [affine-to-scf] finalizes for codegen.  {!to_program}
    flattens a fully-lowered module into a {!Poly_ir.Ir.t} program plus the
    cap schedule read off the inserted [set_uncore_cap] calls. *)

exception Lowering_error of string

val torch_to_linalg : Dialect.t -> Dialect.t
(** Decompose every torch op; other ops pass through unchanged.
    [sdpa] becomes batch_matmul(QKᵀ) · scale · exp · rowsum · rowdiv ·
    batch_matmul(PV) — the CB → BB* → CB phase chain of Fig. 5. *)

val linalg_to_affine : ?tile:bool -> ?tile_size:int -> Dialect.t -> Dialect.t
(** Emit one affine loop nest per linalg op, registering its buffers in the
    module's array table.  With [tile] (default true), each nest is run
    through the Pluto-style tiler. *)

val affine_to_scf : Dialect.t -> Dialect.t
(** Convert affine nests to scf nests (the final codegen dialect). *)

type pass = { pass_name : string; run : Dialect.t -> Dialect.t }

val pass_torch_to_linalg : pass
val pass_linalg_to_affine : ?tile:bool -> ?tile_size:int -> unit -> pass
val pass_affine_to_scf : pass

val run_pipeline : pass list -> Dialect.t -> Dialect.t
(** Apply passes in order; raises {!Lowering_error} with the failing pass
    name on error. *)

val default_pipeline : ?tile:bool -> ?tile_size:int -> unit -> pass list
(** torch→linalg→affine→scf. *)

val to_program : Dialect.t -> Poly_ir.Ir.t * (string * float) list
(** Flatten a fully-lowered module (affine/scf ops only).  Returns the
    program and the cap schedule: each [set_uncore_cap f] applies to the
    next loop nest (keyed by its outermost loop variable).
    Raises {!Lowering_error} if torch or linalg ops remain. *)

val nest_program : Dialect.t -> Dialect.op -> Poly_ir.Ir.t
(** Wrap a single affine/scf nest as a standalone program over the
    module's arrays (used for per-op characterization).
    Raises {!Lowering_error} on other op kinds. *)
