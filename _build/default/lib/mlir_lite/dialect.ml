type dialect = Torch | Linalg | Affine | Scf

type torch_op =
  | T_sdpa of { batch : int; heads : int; seq : int; dim : int }
  | T_conv2d of {
      n : int; c : int; h : int; w : int;
      k : int; r : int; s : int;
    }
  | T_matmul of { m : int; k : int; n : int }
  | T_softmax of { rows : int; cols : int }
  | T_relu of { elems : int }
  | T_add of { elems : int }

type linalg_op =
  | L_matmul of { m : int; k : int; n : int; a : string; b : string; c : string }
  | L_batch_matmul of {
      g : int;  (** batch (groups) *)
      m : int; k : int; n : int;
      transpose_b : bool;  (** contract against Bᵀ (the QKᵀ pattern) *)
      a : string; b : string; c : string;
    }
  | L_conv2d_nchw_fchw of {
      n : int; c : int; h : int; w : int; k : int; r : int; s : int;
      input : string; filter : string; output : string;
    }
  | L_scale of { elems : int; factor : float; buf : string }
  | L_exp of { elems : int; src : string; dst : string }
  | L_rowsum of { rows : int; cols : int; src : string; dst : string }
  | L_rowdiv of { rows : int; cols : int; buf : string; divisor : string }
  | L_relu of { elems : int; buf : string }
  | L_add of { elems : int; a : string; b : string; dst : string }
  | L_transpose of { rows : int; cols : int; src : string; dst : string }

type op =
  | Torch_op of string * torch_op
  | Linalg_op of linalg_op
  | Affine_nest of Poly_ir.Ir.item
  | Scf_nest of Poly_ir.Ir.item
  | Set_uncore_cap of float

type t = {
  module_name : string;
  arrays : Poly_ir.Ir.array_decl list;
  ops : op list;
}

let dialect_of_op = function
  | Torch_op _ -> Torch
  | Linalg_op _ -> Linalg
  | Affine_nest _ -> Affine
  | Scf_nest _ | Set_uncore_cap _ -> Scf

let dialect_rank = function Torch -> 0 | Linalg -> 1 | Affine -> 2 | Scf -> 3

let lowest_dialect t =
  List.fold_left
    (fun acc op ->
      let d = dialect_of_op op in
      if dialect_rank d > dialect_rank acc then d else acc)
    Torch t.ops

let torch_flops = function
  | T_sdpa { batch; heads; seq; dim } ->
    let b = batch * heads in
    (* QK^T + scale + softmax (3 passes) + AV *)
    (2 * b * seq * seq * dim) + (b * seq * seq * 5) + (2 * b * seq * seq * dim)
  | T_conv2d { n; c; h; w = _; k; r; s; _ } ->
    (* output spatial dims shrink by the filter *)
    2 * n * k * c * r * s * (h - r + 1) * (h - r + 1)
  | T_matmul { m; k; n } -> 2 * m * k * n
  | T_softmax { rows; cols } -> 5 * rows * cols
  | T_relu { elems } -> elems
  | T_add { elems } -> elems

let linalg_name = function
  | L_matmul _ -> "linalg.matmul"
  | L_batch_matmul _ -> "linalg.batch_matmul"
  | L_conv2d_nchw_fchw _ -> "linalg.conv_2d_nchw_fchw"
  | L_scale _ -> "linalg.generic(scale)"
  | L_exp _ -> "linalg.generic(exp)"
  | L_rowsum _ -> "linalg.generic(rowsum)"
  | L_rowdiv _ -> "linalg.generic(rowdiv)"
  | L_relu _ -> "linalg.generic(relu)"
  | L_add _ -> "linalg.generic(add)"
  | L_transpose _ -> "linalg.transpose"

let torch_name = function
  | T_sdpa _ -> "torch.sdpa"
  | T_conv2d _ -> "torch.conv2d"
  | T_matmul _ -> "torch.matmul"
  | T_softmax _ -> "torch.softmax"
  | T_relu _ -> "torch.relu"
  | T_add _ -> "torch.add"

let rec root_var = function
  | Poly_ir.Ir.Loop l -> l.Poly_ir.Ir.var
  | Poly_ir.Ir.Stmt s -> s.Poly_ir.Ir.stmt_name
  | Poly_ir.Ir.If b -> (
    match b.Poly_ir.Ir.then_ @ b.Poly_ir.Ir.else_ with
    | i :: _ -> root_var i
    | [] -> "if")

and op_name = function
  | Torch_op (_, t) -> torch_name t
  | Linalg_op l -> linalg_name l
  | Affine_nest i -> "affine.for @" ^ root_var i
  | Scf_nest i -> "scf.for @" ^ root_var i
  | Set_uncore_cap f -> Printf.sprintf "func.call @set_uncore_cap(%.1f)" f

let pp_op ppf op =
  match op with
  | Torch_op (pfx, t) -> Format.fprintf ppf "%s = %s" pfx (torch_name t)
  | Linalg_op l -> Format.fprintf ppf "%s" (linalg_name l)
  | Affine_nest i | Scf_nest i ->
    Format.fprintf ppf "%s {@[<v>%a@]}" (op_name op) Poly_ir.Ir.pp_item i
  | Set_uncore_cap f -> Format.fprintf ppf "func.call @set_uncore_cap(%.1f)" f

let pp ppf t =
  Format.fprintf ppf "@[<v>module @%s {@," t.module_name;
  List.iter (fun op -> Format.fprintf ppf "  %s@," (op_name op)) t.ops;
  Format.fprintf ppf "}@]"
