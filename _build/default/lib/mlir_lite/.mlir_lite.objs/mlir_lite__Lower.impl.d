lib/mlir_lite/lower.ml: Dialect Format Ir List Poly_ir Printf Tiling
