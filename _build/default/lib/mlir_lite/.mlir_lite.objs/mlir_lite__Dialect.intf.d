lib/mlir_lite/dialect.mli: Format Poly_ir
