lib/mlir_lite/lower.mli: Dialect Poly_ir
