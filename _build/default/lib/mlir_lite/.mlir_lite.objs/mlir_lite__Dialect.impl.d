lib/mlir_lite/dialect.ml: Format List Poly_ir Printf
