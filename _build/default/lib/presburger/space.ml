type t = {
  params : string array;
  in_name : string;
  ins : string array;
  out_name : string;
  outs : string array;
}

let set_space ?(params = []) ?(name = "") dims =
  {
    params = Array.of_list params;
    in_name = "";
    ins = [||];
    out_name = name;
    outs = Array.of_list dims;
  }

let map_space ?(params = []) ?(in_name = "") ?(out_name = "") ins outs =
  {
    params = Array.of_list params;
    in_name;
    ins = Array.of_list ins;
    out_name;
    outs = Array.of_list outs;
  }

let n_params s = Array.length s.params
let n_ins s = Array.length s.ins
let n_outs s = Array.length s.outs
let n_vars s = n_params s + n_ins s + n_outs s
let is_set s = n_ins s = 0 && s.in_name = ""

let domain s =
  { s with in_name = ""; ins = [||]; out_name = s.in_name; outs = s.ins }

let range s = { s with in_name = ""; ins = [||] }

let reverse s =
  {
    s with
    in_name = s.out_name;
    ins = s.outs;
    out_name = s.in_name;
    outs = s.ins;
  }

let compose a b =
  if n_outs a <> n_ins b then
    invalid_arg "Space.compose: intermediate arity mismatch";
  if not (Array.for_all2 String.equal a.params b.params) then
    invalid_arg "Space.compose: parameter mismatch";
  {
    params = a.params;
    in_name = a.in_name;
    ins = a.ins;
    out_name = b.out_name;
    outs = b.outs;
  }

let same_params a b =
  Array.length a.params = Array.length b.params
  && Array.for_all2 String.equal a.params b.params

let equal a b =
  same_params a b && n_ins a = n_ins b && n_outs a = n_outs b

let pp_tuple ppf (name, dims) =
  Format.fprintf ppf "%s[%s]" name (String.concat ", " (Array.to_list dims))

let pp ppf s =
  if n_params s > 0 then
    Format.fprintf ppf "[%s] -> " (String.concat ", " (Array.to_list s.params));
  Format.fprintf ppf "{ ";
  if not (is_set s) then
    Format.fprintf ppf "%a -> " pp_tuple (s.in_name, s.ins);
  Format.fprintf ppf "%a }" pp_tuple (s.out_name, s.outs)
