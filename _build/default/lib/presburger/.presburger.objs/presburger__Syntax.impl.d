lib/presburger/syntax.ml: Array Bset Format List Map Poly Printf Pset Space String
