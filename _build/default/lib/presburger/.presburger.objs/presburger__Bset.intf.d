lib/presburger/bset.mli: Format Poly Space
