lib/presburger/count.mli: Bset Format Linalg
