lib/presburger/pset.ml: Array Bset Format Fun Hashtbl List Poly Printf Space
