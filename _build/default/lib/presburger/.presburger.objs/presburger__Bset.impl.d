lib/presburger/bset.ml: Array Format List Option Poly Space
