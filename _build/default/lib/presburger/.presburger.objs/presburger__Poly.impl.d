lib/presburger/poly.ml: Array Format Hashtbl Ints Linalg List
