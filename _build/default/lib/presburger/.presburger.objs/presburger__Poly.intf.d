lib/presburger/poly.mli: Format
