lib/presburger/pset.mli: Bset Format Space
