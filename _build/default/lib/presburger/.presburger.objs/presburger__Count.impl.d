lib/presburger/count.ml: Array Bset Fit Format Fun Hashtbl Ints Linalg List Option Q
