lib/presburger/space.mli: Format
