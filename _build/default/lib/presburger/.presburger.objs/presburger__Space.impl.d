lib/presburger/space.ml: Array Format String
