lib/presburger/syntax.mli: Bset Format Pset
