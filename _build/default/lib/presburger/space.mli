(** Variable spaces for Presburger sets and relations.

    A space fixes the parameter names and the named input/output tuples.
    Sets use only the output tuple (input tuple empty); relations (maps) use
    both.  The variable order in every constraint vector of this library is
    [params @ ins @ outs @ divs], with existentially-quantified division
    variables last. *)

type t = private {
  params : string array;
  in_name : string;
  ins : string array;
  out_name : string;
  outs : string array;
}

val set_space : ?params:string list -> ?name:string -> string list -> t
(** [set_space ~params ~name dims] is the space of a set with tuple [name]
    and dimensions [dims]. *)

val map_space :
  ?params:string list ->
  ?in_name:string ->
  ?out_name:string ->
  string list ->
  string list ->
  t
(** [map_space ins outs] is the space of a relation. *)

val n_params : t -> int
val n_ins : t -> int
val n_outs : t -> int
val n_vars : t -> int
(** Parameters + ins + outs (no divs: those belong to each basic set). *)

val is_set : t -> bool

val domain : t -> t
(** Space of the domain of a map (a set space over the input tuple). *)

val range : t -> t
(** Space of the range of a map. *)

val reverse : t -> t
(** Swap input and output tuples. *)

val compose : t -> t -> t
(** [compose a b] for [a : X -> Y] and [b : Y -> Z] is [X -> Z].
    Raises [Invalid_argument] if arities disagree. *)

val equal : t -> t -> bool
(** Structural equality on dimensions and parameter count (names of tuple
    dims are not significant, parameter names are). *)

val same_params : t -> t -> bool
val pp : Format.formatter -> t -> unit
