(** Parser and printer for the isl-like textual notation.

    Supported input syntax (a practical subset of isl's):

    {v
      [n, m] -> { S[i, j] -> A[i + j, 2*j] :
                  0 <= i < n and 0 <= j < m and (i + j) mod 2 = 0 }
      { [i] : 0 <= i <= 10 and i != 4 ; [i] : i = 42 }
    v}

    - parameters in a leading [\[..\] ->] block;
    - an optional input tuple makes the object a map;
    - conditions combine chained comparisons ([0 <= i < n]) with [and] /
      [or], parentheses, [e mod k] and [floor(e / k)] (introducing
      existential division variables), and [!=] (expanded to a
      disjunction);
    - [;] separates top-level disjuncts. *)

exception Parse_error of string

val pset_of_string : string -> Pset.t
(** Parse a set or map.  Raises {!Parse_error} with a message pointing at
    the offending token. *)

val bset_of_string : string -> Bset.t
(** Like {!pset_of_string} but requires the result to be a single basic
    set/map. *)

val to_string : Pset.t -> string
val bset_to_string : Bset.t -> string
val pp_pset : Format.formatter -> Pset.t -> unit
val pp_bset : Format.formatter -> Bset.t -> unit
