(** ML-PolyUFC: multi-level application of uncore frequency caps (Sec. VI).

    Analysis always happens at the affine level (the polyhedral tools live
    there, Sec. VI-B); results are then propagated to the granularity at
    which caps are applied:

    - {e torch level}: one cap per original network op — coarse, hides the
      CB/BB phase changes inside e.g. [sdpa] (Fig. 5);
    - {e linalg level}: one cap per structured op (= per loop nest) — the
      paper's recommended trade-off;
    - {e module level}: a single cap for the whole module.

    Redundant caps (equal to the previously active one) are removed by the
    pattern rewrite, and the remaining switch count × the machine's
    cap-switch latency gives the overhead the paper reports (35 µs BDW /
    21 µs RPL per switch, ≈1 ms for the 28-kernel sdpa of Sec. VII-F). *)

type phase = {
  op_label : string;
  oi : float;
  bound : Roofline.boundedness;
  cap_ghz : float;  (** the cap POLYUFC-SEARCH selects for this unit *)
}

val characterize_nests :
  ?objective:Search.objective ->
  ?epsilon:float ->
  machine:Hwsim.Machine.t ->
  rooflines:Roofline.constants ->
  Mlir_lite.Dialect.t ->
  phase list
(** One phase per loop nest of a fully-lowered (affine/scf) module —
    the linalg-granularity view. *)

val characterize_torch_ops :
  ?objective:Search.objective ->
  ?epsilon:float ->
  ?tile:bool ->
  machine:Hwsim.Machine.t ->
  rooflines:Roofline.constants ->
  Mlir_lite.Dialect.t ->
  phase list
(** One phase per torch op of a torch-level module (each op is lowered in
    isolation and its nests' profiles aggregated). *)

val phase_pattern : phase list -> string
(** Kleene-star summary of a phase sequence, e.g. ["CB -> BB* -> CB"]
    (Sec. VI-A). *)

type granularity =
  | Per_nest  (** linalg level: one cap per loop nest *)
  | Grouped of int list
      (** torch level: consecutive nest-group sizes (must sum to the nest
          count); each group gets one aggregated cap (min CB / max BB) *)
  | Whole_module

val insert_caps :
  ?objective:Search.objective ->
  ?epsilon:float ->
  granularity:granularity ->
  machine:Hwsim.Machine.t ->
  rooflines:Roofline.constants ->
  Mlir_lite.Dialect.t ->
  Mlir_lite.Dialect.t * int
(** Insert [set_uncore_cap] calls into a fully-lowered module at the given
    granularity (with redundant-cap removal); returns the rewritten module
    and the number of remaining cap switches. *)

val switch_overhead_us : Hwsim.Machine.t -> int -> float
(** Cumulative cap-switch overhead (Sec. VII-F). *)
