open Mlir_lite

type phase = {
  op_label : string;
  oi : float;
  bound : Roofline.boundedness;
  cap_ghz : float;
}

let profile_of_nest ~machine module_ op =
  let prog = Lower.nest_program module_ op in
  let cm =
    Cache_model.Model.analyze ~machine ~apply_thread_heuristic:false prog
      ~param_values:[]
  in
  Perfmodel.profile_of_cm cm

let phase_of_profile ?objective ?epsilon ~rooflines label p =
  let s = Search.run ?objective ?epsilon rooflines p in
  {
    op_label = label;
    oi = p.Perfmodel.oi;
    bound = s.Search.boundedness;
    cap_ghz = s.Search.cap_ghz;
  }

let characterize_nests ?objective ?epsilon ~machine ~rooflines m =
  List.filter_map
    (fun op ->
      match op with
      | Dialect.Affine_nest _ | Dialect.Scf_nest _ ->
        let p = profile_of_nest ~machine m op in
        Some
          (phase_of_profile ?objective ?epsilon ~rooflines
             (Dialect.op_name op) p)
      | _ -> None)
    m.Dialect.ops

let sum_profiles n_levels ps =
  List.fold_left
    (fun acc p ->
      {
        Perfmodel.omega = acc.Perfmodel.omega +. p.Perfmodel.omega;
        level_hits =
          Array.init n_levels (fun i ->
              acc.Perfmodel.level_hits.(i) +. p.Perfmodel.level_hits.(i));
        miss_llc = acc.Perfmodel.miss_llc +. p.Perfmodel.miss_llc;
        q_dram_bytes = acc.Perfmodel.q_dram_bytes +. p.Perfmodel.q_dram_bytes;
        oi = 0.0;
      })
    {
      Perfmodel.omega = 0.0;
      level_hits = Array.make n_levels 0.0;
      miss_llc = 0.0;
      q_dram_bytes = 0.0;
      oi = 0.0;
    }
    ps

let finish_profile p =
  {
    p with
    Perfmodel.oi =
      (if p.Perfmodel.q_dram_bytes > 0.0 then
         p.Perfmodel.omega /. p.Perfmodel.q_dram_bytes
       else Float.infinity);
  }

let characterize_torch_ops ?objective ?epsilon ?tile ~machine ~rooflines m =
  let n_levels = List.length machine.Hwsim.Machine.caches in
  List.filter_map
    (fun op ->
      match op with
      | Dialect.Torch_op (prefix, t) ->
        (* lower this op in isolation; aggregate its nests' profiles *)
        let solo =
          {
            Dialect.module_name = prefix;
            arrays = [];
            ops = [ Dialect.Torch_op (prefix, t) ];
          }
        in
        let lowered =
          Lower.run_pipeline (Lower.default_pipeline ?tile ()) solo
        in
        let ps =
          List.filter_map
            (fun o ->
              match o with
              | Dialect.Affine_nest _ | Dialect.Scf_nest _ ->
                Some (profile_of_nest ~machine lowered o)
              | _ -> None)
            lowered.Dialect.ops
        in
        let p = finish_profile (sum_profiles n_levels ps) in
        Some
          (phase_of_profile ?objective ?epsilon ~rooflines
             (Dialect.op_name op) p)
      | _ -> None)
    m.Dialect.ops

let phase_pattern phases =
  let labels =
    List.map
      (fun p ->
        match p.bound with Roofline.CB -> "CB" | Roofline.BB -> "BB")
      phases
  in
  (* collapse runs with a Kleene star *)
  let rec collapse = function
    | [] -> []
    | x :: rest ->
      let run, rest' =
        let rec take n = function
          | y :: r when String.equal y x -> take (n + 1) r
          | r -> (n, r)
        in
        take 1 rest
      in
      ignore run;
      let count = 1 + (List.length rest - List.length rest') in
      (if count > 1 then x ^ "*" else x) :: collapse rest'
  in
  String.concat " -> " (collapse labels)

type granularity = Per_nest | Grouped of int list | Whole_module

let aggregate_caps bound phases =
  match phases with
  | [] -> invalid_arg "Ml_polyufc: empty group"
  | p :: rest ->
    List.fold_left
      (fun acc q ->
        match bound with
        | Roofline.CB -> Float.min acc q.cap_ghz
        | Roofline.BB -> Float.max acc q.cap_ghz)
      p.cap_ghz rest

let insert_caps ?objective ?epsilon ~granularity ~machine ~rooflines m =
  let n_levels = List.length machine.Hwsim.Machine.caches in
  let nests =
    List.filter
      (function
        | Dialect.Affine_nest _ | Dialect.Scf_nest _ -> true | _ -> false)
      m.Dialect.ops
  in
  let nest_phases =
    List.map
      (fun op ->
        let p = profile_of_nest ~machine m op in
        (op, p, phase_of_profile ?objective ?epsilon ~rooflines (Dialect.op_name op) p))
      nests
  in
  (* cap per nest according to the granularity *)
  let caps_per_nest =
    match granularity with
    | Per_nest -> List.map (fun (_, _, ph) -> ph.cap_ghz) nest_phases
    | Whole_module ->
      let profiles = List.map (fun (_, p, _) -> p) nest_phases in
      let agg = finish_profile (sum_profiles n_levels profiles) in
      let ph = phase_of_profile ?objective ?epsilon ~rooflines "module" agg in
      let bound = ph.bound in
      let cap =
        aggregate_caps bound (List.map (fun (_, _, ph) -> ph) nest_phases)
      in
      List.map (fun _ -> cap) nest_phases
    | Grouped sizes ->
      if List.fold_left ( + ) 0 sizes <> List.length nest_phases then
        invalid_arg "Ml_polyufc.insert_caps: group sizes do not sum to nest count";
      let arr = Array.of_list nest_phases in
      let caps = ref [] in
      let pos = ref 0 in
      List.iter
        (fun size ->
          let group = Array.to_list (Array.sub arr !pos size) in
          let profiles = List.map (fun (_, p, _) -> p) group in
          let agg = finish_profile (sum_profiles n_levels profiles) in
          let gph = phase_of_profile ?objective ?epsilon ~rooflines "group" agg in
          let cap = aggregate_caps gph.bound (List.map (fun (_, _, ph) -> ph) group) in
          List.iter (fun _ -> caps := cap :: !caps) group;
          pos := !pos + size)
        sizes;
      List.rev !caps
  in
  (* rebuild the op list, inserting caps before nests with redundant-cap
     removal (skip a cap equal to the currently active one) *)
  let caps_q = ref caps_per_nest in
  let active = ref None in
  let switches = ref 0 in
  let ops =
    List.concat_map
      (fun op ->
        match op with
        | Dialect.Affine_nest _ | Dialect.Scf_nest _ ->
          let cap =
            match !caps_q with
            | c :: rest ->
              caps_q := rest;
              c
            | [] -> invalid_arg "Ml_polyufc: cap bookkeeping error"
          in
          (match !active with
          | Some a when Float.abs (a -. cap) < 1e-9 -> [ op ]
          | _ ->
            active := Some cap;
            incr switches;
            [ Dialect.Set_uncore_cap cap; op ])
        | Dialect.Set_uncore_cap _ -> [] (* drop pre-existing caps *)
        | op -> [ op ])
      m.Dialect.ops
  in
  ({ m with Dialect.ops }, !switches)

let switch_overhead_us machine n = float_of_int n *. machine.Hwsim.Machine.cap_switch_us
