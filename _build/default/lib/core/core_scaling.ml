type point = {
  core_ghz : float;
  rooflines : Roofline.constants;
  compiled : Flow.compiled;
  est_edp : float;
  est_time_s : float;
  est_energy_j : float;
}

type t = { best : point; points : point list }

let objective_value obj (p : point) =
  match obj with
  | Search.Edp -> p.est_edp
  | Search.Energy -> p.est_energy_j
  | Search.Performance -> p.est_time_s

let search ?(objective = Search.Edp) ?epsilon ?core_freqs ~machine prog
    ~param_values =
  let base = machine.Hwsim.Machine.core_ghz in
  let freqs =
    match core_freqs with
    | Some fs -> List.sort compare fs
    | None ->
      List.map (fun r -> Float.round (base *. r *. 10.) /. 10.)
        [ 2. /. 3.; 5. /. 6.; 1.0; 7. /. 6. ]
  in
  let points =
    List.map
      (fun f ->
        let m = Hwsim.Machine.with_core_ghz machine f in
        let rooflines = Roofline.microbench m in
        let compiled =
          Flow.compile ~objective ?epsilon ~tile:false ~machine:m ~rooflines
            prog ~param_values
        in
        (* model estimate of the whole program at the per-region caps:
           sum the chosen estimates over the regions *)
        let time, energy =
          List.fold_left
            (fun (t, e) (d : Flow.region_decision) ->
              let est = d.Flow.search.Search.chosen in
              (t +. est.Perfmodel.time_s, e +. est.Perfmodel.energy_j))
            (0.0, 0.0) compiled.Flow.decisions
        in
        {
          core_ghz = f;
          rooflines;
          compiled;
          est_edp = energy *. time;
          est_time_s = time;
          est_energy_j = energy;
        })
      freqs
  in
  let best =
    match points with
    | [] -> invalid_arg "Core_scaling.search: empty frequency list"
    | p :: rest ->
      List.fold_left
        (fun acc q ->
          if objective_value objective q < objective_value objective acc then q
          else acc)
        p rest
  in
  { best; points }

let evaluate_best t ~param_values =
  Flow.evaluate
    ~machine:t.best.rooflines.Roofline.machine t.best.compiled ~param_values

let pp ppf t =
  Format.fprintf ppf "@[<v>joint core+uncore search:@,";
  List.iter
    (fun p ->
      let caps =
        String.concat " "
          (List.map (fun (_, f) -> Printf.sprintf "%.1f" f) p.compiled.Flow.caps)
      in
      Format.fprintf ppf "  core %.1f GHz: caps [%s] est T=%.4g s E=%.4g J EDP=%.4g%s@,"
        p.core_ghz caps p.est_time_s p.est_energy_j p.est_edp
        (if p == t.best then "  <- best" else ""))
    t.points;
  Format.fprintf ppf "@]"
