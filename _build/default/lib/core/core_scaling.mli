(** Joint core + uncore frequency selection — the core-DVFS extension.

    The paper leaves the core domain to the hardware P-state driver but
    notes that "PolyUFC remains adaptable and can be used to manage the
    core frequency domain" (Sec. VII-F).  This module realizes that
    extension: for each candidate core frequency the machine description is
    retuned ({!Hwsim.Machine.with_core_ghz}), the rooflines are refit from
    scratch (one micro-benchmark campaign per point — exactly the
    retargetability story of Sec. I), the flow recompiled, and the
    (core, uncore-cap) pair with the best model objective selected.

    The expected physics: CB kernels keep the core high (compute is the
    bottleneck) while capping the uncore low; BB kernels can often lower
    the {e core} too — compute finishes early against the memory wall
    anyway — compounding the uncore savings. *)

type point = {
  core_ghz : float;
  rooflines : Roofline.constants;
  compiled : Flow.compiled;
  est_edp : float;  (** model EDP of the whole program at the chosen caps *)
  est_time_s : float;
  est_energy_j : float;
}

type t = {
  best : point;
  points : point list;  (** one per candidate core frequency, ascending *)
}

val search :
  ?objective:Search.objective ->
  ?epsilon:float ->
  ?core_freqs:float list ->
  machine:Hwsim.Machine.t ->
  Poly_ir.Ir.t ->
  param_values:(string * int) list ->
  t
(** [core_freqs] defaults to {2/3, 5/6, 1, 7/6} × the machine's base core
    clock.  The input program should already be Pluto-optimized (the flow
    is invoked with [tile:false]). *)

val evaluate_best :
  t -> param_values:(string * int) list -> Flow.evaluation
(** Simulate the best point's capped binary against the UFS baseline on
    its retuned machine. *)

val pp : Format.formatter -> t -> unit
