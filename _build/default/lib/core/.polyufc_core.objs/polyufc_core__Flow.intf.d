lib/core/flow.mli: Cache_model Format Hwsim Perfmodel Poly_ir Roofline Search
