lib/core/search.mli: Format Perfmodel Roofline
