lib/core/ml_polyufc.mli: Hwsim Mlir_lite Roofline Search
