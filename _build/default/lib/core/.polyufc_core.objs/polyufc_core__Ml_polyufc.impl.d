lib/core/ml_polyufc.ml: Array Cache_model Dialect Float Hwsim List Lower Mlir_lite Perfmodel Roofline Search String
