lib/core/core_scaling.ml: Float Flow Format Hwsim List Perfmodel Printf Roofline Search String
