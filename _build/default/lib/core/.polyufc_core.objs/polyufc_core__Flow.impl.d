lib/core/flow.ml: Array Cache_model Float Format Hwsim Ir List Perfmodel Poly_ir Roofline Scop Search Tiling Unix
