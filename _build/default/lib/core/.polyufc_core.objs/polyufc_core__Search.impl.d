lib/core/search.ml: Array Format Perfmodel Roofline
