lib/core/core_scaling.mli: Flow Format Hwsim Poly_ir Roofline Search
