(** Curve fitting used by the roofline and power models.

    The paper fits DRAM miss penalty as [a/f + b] (Sec. V-A), peak power per
    byte as a linear function [α·f + γ] (Eqn. 8), and applies polynomial
    fitting to EDP medians (Fig. 1).  All fits here are float-based
    least-squares; exact-rational fitting (for Ehrhart interpolation) solves
    a Vandermonde system with {!Mat.solve}. *)

val linear : (float * float) list -> float * float
(** [linear pts] is [(slope, intercept)] minimising squared error.
    Requires at least two points with distinct abscissae. *)

val polynomial : degree:int -> (float * float) list -> float array
(** Least-squares polynomial fit; result [c] satisfies
    [p(x) = Σ c.(i) · xⁱ].  Requires [List.length pts > degree]. *)

val eval_poly : float array -> float -> float
(** Horner evaluation of a coefficient array as produced by {!polynomial}. *)

val inverse_plus_const : (float * float) list -> float * float
(** Fit [y = a/x + b] by linear regression on [1/x]; returns [(a, b)].
    Used for the DRAM miss-penalty curve M{^t}(f_c) = a/f_c + b. *)

val exact_polynomial : degree:int -> (Q.t * Q.t) list -> Q.t array option
(** Exact polynomial interpolation through [degree + 1] (or more, consistent)
    points, via a Vandermonde solve.  [None] if the points are inconsistent
    with a polynomial of the given degree.  This is the Ehrhart
    interpolation backend. *)

val eval_exact_poly : Q.t array -> Q.t -> Q.t
