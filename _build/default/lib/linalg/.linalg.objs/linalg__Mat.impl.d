lib/linalg/mat.ml: Array Format Fun List Q Vec
