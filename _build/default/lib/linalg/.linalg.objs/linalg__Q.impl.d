lib/linalg/q.ml: Float Format Ints Stdlib
