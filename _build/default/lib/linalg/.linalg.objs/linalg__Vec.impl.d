lib/linalg/vec.ml: Array Format List Q
