lib/linalg/mat.mli: Format Q Vec
