lib/linalg/ints.mli:
