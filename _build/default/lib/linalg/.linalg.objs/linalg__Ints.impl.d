lib/linalg/ints.ml:
