lib/linalg/fit.mli: Q
