lib/linalg/q.mli: Format
