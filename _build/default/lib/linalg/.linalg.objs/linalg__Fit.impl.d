lib/linalg/fit.ml: Array Float List Mat Q Vec
