lib/linalg/vec.mli: Format Q
