(** Immutable vectors of exact rationals. *)

type t

val of_array : Q.t array -> t
val of_list : Q.t list -> t
val of_ints : int list -> t
val make : int -> Q.t -> t
val zero : int -> t
val unit : int -> int -> t
(** [unit n i] is the [n]-dimensional standard basis vector [e_i]. *)

val dim : t -> int
val get : t -> int -> Q.t
val to_array : t -> Q.t array
val to_list : t -> Q.t list

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val scale : Q.t -> t -> t
val dot : t -> t -> Q.t
val map : (Q.t -> Q.t) -> t -> t
val equal : t -> t -> bool
val is_zero : t -> bool

val concat : t -> t -> t
val slice : t -> int -> int -> t
(** [slice v pos len] is the sub-vector of [len] entries starting at [pos]. *)

val pp : Format.formatter -> t -> unit
