type t = Q.t array array (* row-major; invariant: rectangular, never aliased *)

let make r c q = Array.init r (fun _ -> Array.make c q)
let zero r c = make r c Q.zero

let identity n =
  Array.init n (fun i ->
      Array.init n (fun j -> if i = j then Q.one else Q.zero))

let of_rows rows =
  let m = Array.map Array.copy rows in
  let c = if Array.length m = 0 then 0 else Array.length m.(0) in
  Array.iter (fun r -> assert (Array.length r = c)) m;
  m

let of_int_rows rows =
  of_rows
    (Array.of_list
       (List.map (fun r -> Array.of_list (List.map Q.of_int r)) rows))

let of_vec_rows rows =
  of_rows (Array.of_list (List.map Vec.to_array rows))

let rows m = Array.length m
let cols m = if Array.length m = 0 then 0 else Array.length m.(0)
let get m i j = m.(i).(j)
let row m i = Vec.of_array m.(i)
let col m j = Vec.of_array (Array.init (rows m) (fun i -> m.(i).(j)))

let transpose m =
  let r = rows m and c = cols m in
  Array.init c (fun j -> Array.init r (fun i -> m.(i).(j)))

let mul a b =
  assert (cols a = rows b);
  let n = cols a in
  Array.init (rows a) (fun i ->
      Array.init (cols b) (fun j ->
          let acc = ref Q.zero in
          for k = 0 to n - 1 do
            acc := Q.add !acc (Q.mul a.(i).(k) b.(k).(j))
          done;
          !acc))

let mul_vec m v =
  assert (cols m = Vec.dim v);
  Vec.of_array (Array.map (fun r -> Vec.dot (Vec.of_array r) v) m)

let equal a b =
  rows a = rows b && cols a = cols b
  && Array.for_all2 (fun ra rb -> Array.for_all2 Q.equal ra rb) a b

let copy m = Array.map Array.copy m

(* Gauss–Jordan elimination in place; returns the list of pivot columns. *)
let eliminate m =
  let r = Array.length m and c = if Array.length m = 0 then 0 else Array.length m.(0) in
  let pivots = ref [] in
  let pr = ref 0 in
  let j = ref 0 in
  while !pr < r && !j < c do
    (* choose a pivot row with a non-zero entry in column !j *)
    let pi = ref (-1) in
    (try
       for i = !pr to r - 1 do
         if not (Q.is_zero m.(i).(!j)) then begin
           pi := i;
           raise Exit
         end
       done
     with Exit -> ());
    if !pi >= 0 then begin
      let tmp = m.(!pr) in
      m.(!pr) <- m.(!pi);
      m.(!pi) <- tmp;
      let inv = Q.inv m.(!pr).(!j) in
      for k = 0 to c - 1 do
        m.(!pr).(k) <- Q.mul inv m.(!pr).(k)
      done;
      for i = 0 to r - 1 do
        if i <> !pr && not (Q.is_zero m.(i).(!j)) then begin
          let f = m.(i).(!j) in
          for k = 0 to c - 1 do
            m.(i).(k) <- Q.sub m.(i).(k) (Q.mul f m.(!pr).(k))
          done
        end
      done;
      pivots := (!pr, !j) :: !pivots;
      incr pr
    end;
    incr j
  done;
  List.rev !pivots

let rref m =
  let m = copy m in
  ignore (eliminate m);
  m

let rank m =
  let m = copy m in
  List.length (eliminate m)

let solve a b =
  assert (rows a = Vec.dim b);
  let r = rows a and c = cols a in
  (* eliminate the augmented matrix [a | b] *)
  let aug =
    Array.init r (fun i ->
        Array.init (c + 1) (fun j -> if j < c then a.(i).(j) else Vec.get b i))
  in
  let pivots = eliminate aug in
  (* inconsistent iff a pivot lands in the augmented column *)
  if List.exists (fun (_, j) -> j = c) pivots then None
  else begin
    let x = Array.make c Q.zero in
    List.iter (fun (i, j) -> x.(j) <- aug.(i).(c)) pivots;
    Some (Vec.of_array x)
  end

let inverse m =
  let n = rows m in
  assert (cols m = n);
  let aug =
    Array.init n (fun i ->
        Array.init (2 * n) (fun j ->
            if j < n then m.(i).(j)
            else if j - n = i then Q.one
            else Q.zero))
  in
  let pivots = eliminate aug in
  (* singular iff fewer than [n] pivots land in the left block *)
  let left_pivots = List.filter (fun (_, j) -> j < n) pivots in
  if List.length left_pivots < n then None
  else Some (Array.init n (fun i -> Array.init n (fun j -> aug.(i).(n + j))))

let nullspace m =
  let c = cols m in
  let red = copy m in
  let pivots = eliminate red in
  let pivot_cols = List.map snd pivots in
  let free_cols =
    List.filter (fun j -> not (List.mem j pivot_cols)) (List.init c Fun.id)
  in
  let basis_for jf =
    let v = Array.make c Q.zero in
    v.(jf) <- Q.one;
    List.iter (fun (i, j) -> v.(j) <- Q.neg red.(i).(jf)) pivots;
    Vec.of_array v
  in
  List.map basis_for free_cols

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  Array.iter (fun r -> Format.fprintf ppf "%a@," Vec.pp (Vec.of_array r)) m;
  Format.fprintf ppf "@]"
