(* Float least-squares via normal equations solved with exact rationals
   (converting the float inputs through Q.of_float_approx would lose
   precision, so we solve the normal equations in floats with partial
   pivoting instead). *)

let solve_normal design target =
  (* design : n×m float matrix; target : n vector; returns m vector *)
  let n = Array.length design in
  let m = if n = 0 then 0 else Array.length design.(0) in
  (* a = designᵀ design (m×m), b = designᵀ target *)
  let a = Array.make_matrix m m 0.0 and b = Array.make m 0.0 in
  for i = 0 to m - 1 do
    for j = 0 to m - 1 do
      for k = 0 to n - 1 do
        a.(i).(j) <- a.(i).(j) +. (design.(k).(i) *. design.(k).(j))
      done
    done;
    for k = 0 to n - 1 do
      b.(i) <- b.(i) +. (design.(k).(i) *. target.(k))
    done
  done;
  (* Gaussian elimination with partial pivoting *)
  for col = 0 to m - 1 do
    let piv = ref col in
    for i = col + 1 to m - 1 do
      if Float.abs a.(i).(col) > Float.abs a.(!piv).(col) then piv := i
    done;
    let tmp = a.(col) in
    a.(col) <- a.(!piv);
    a.(!piv) <- tmp;
    let tb = b.(col) in
    b.(col) <- b.(!piv);
    b.(!piv) <- tb;
    let d = a.(col).(col) in
    if Float.abs d > 1e-14 then
      for i = col + 1 to m - 1 do
        let f = a.(i).(col) /. d in
        for j = col to m - 1 do
          a.(i).(j) <- a.(i).(j) -. (f *. a.(col).(j))
        done;
        b.(i) <- b.(i) -. (f *. b.(col))
      done
  done;
  let x = Array.make m 0.0 in
  for i = m - 1 downto 0 do
    let s = ref b.(i) in
    for j = i + 1 to m - 1 do
      s := !s -. (a.(i).(j) *. x.(j))
    done;
    x.(i) <- (if Float.abs a.(i).(i) > 1e-14 then !s /. a.(i).(i) else 0.0)
  done;
  x

let polynomial ~degree pts =
  assert (List.length pts > degree);
  let pts = Array.of_list pts in
  let n = Array.length pts in
  let design =
    Array.init n (fun k ->
        let x, _ = pts.(k) in
        Array.init (degree + 1) (fun i -> Float.pow x (float_of_int i)))
  in
  let target = Array.map snd pts in
  solve_normal design target

let eval_poly c x =
  let acc = ref 0.0 in
  for i = Array.length c - 1 downto 0 do
    acc := (!acc *. x) +. c.(i)
  done;
  !acc

let linear pts =
  let c = polynomial ~degree:1 pts in
  (c.(1), c.(0))

let inverse_plus_const pts =
  let transformed = List.map (fun (x, y) -> (1.0 /. x, y)) pts in
  let slope, intercept = linear transformed in
  (slope, intercept)

let eval_exact_poly c x =
  let acc = ref Q.zero in
  for i = Array.length c - 1 downto 0 do
    acc := Q.add (Q.mul !acc x) c.(i)
  done;
  !acc

let exact_polynomial ~degree pts =
  assert (List.length pts >= degree + 1);
  let base = List.filteri (fun i _ -> i <= degree) pts in
  let vandermonde =
    Mat.of_rows
      (Array.of_list
         (List.map
            (fun (x, _) ->
              Array.init (degree + 1) (fun i ->
                  let rec pow acc k = if k = 0 then acc else pow (Q.mul acc x) (k - 1) in
                  pow Q.one i))
            base))
  in
  let rhs = Vec.of_list (List.map snd base) in
  match Mat.solve vandermonde rhs with
  | None -> None
  | Some sol ->
    let coeffs = Vec.to_array sol in
    (* every extra point must be consistent with the interpolant *)
    let ok =
      List.for_all
        (fun (x, y) -> Q.equal (eval_exact_poly coeffs x) y)
        pts
    in
    if ok then Some coeffs else None
