(** Matrices of exact rationals: elimination, solving, inversion.

    Matrices are immutable from the outside; all operations return fresh
    values. *)

type t

val make : int -> int -> Q.t -> t
val zero : int -> int -> t
val identity : int -> t
val of_rows : Q.t array array -> t
val of_int_rows : int list list -> t
val of_vec_rows : Vec.t list -> t

val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> Q.t
val row : t -> int -> Vec.t
val col : t -> int -> Vec.t
val transpose : t -> t
val mul : t -> t -> t
val mul_vec : t -> Vec.t -> Vec.t
val equal : t -> t -> bool

val rank : t -> int

val solve : t -> Vec.t -> Vec.t option
(** [solve a b] is a solution [x] of [a x = b], or [None] if the system is
    inconsistent.  Underdetermined systems return one particular solution. *)

val inverse : t -> t option
(** Inverse of a square matrix, [None] if singular. *)

val nullspace : t -> Vec.t list
(** A basis of the right nullspace. *)

val rref : t -> t
(** Reduced row-echelon form. *)

val pp : Format.formatter -> t -> unit
