type t = Q.t array

let of_array a = Array.copy a
let of_list = Array.of_list
let of_ints l = Array.of_list (List.map Q.of_int l)
let make n q = Array.make n q
let zero n = make n Q.zero

let unit n i =
  let v = Array.make n Q.zero in
  v.(i) <- Q.one;
  v

let dim = Array.length
let get v i = v.(i)
let to_array = Array.copy
let to_list = Array.to_list

let add a b =
  assert (dim a = dim b);
  Array.map2 Q.add a b

let sub a b =
  assert (dim a = dim b);
  Array.map2 Q.sub a b

let neg = Array.map Q.neg
let scale q = Array.map (Q.mul q)

let dot a b =
  assert (dim a = dim b);
  let acc = ref Q.zero in
  for i = 0 to dim a - 1 do
    acc := Q.add !acc (Q.mul a.(i) b.(i))
  done;
  !acc

let map = Array.map
let equal a b = dim a = dim b && Array.for_all2 Q.equal a b
let is_zero = Array.for_all Q.is_zero
let concat = Array.append
let slice v pos len = Array.sub v pos len

let pp ppf v =
  Format.fprintf ppf "[@[%a@]]"
    (Format.pp_print_array ~pp_sep:(fun f () -> Format.fprintf f ";@ ") Q.pp)
    v
