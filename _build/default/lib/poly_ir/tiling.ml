type nest_report = {
  nest_root : string;
  band : int;
  parallel : bool;
  n_deps : int;
}

type report = { tiled : Ir.t; nests : nest_report list }

(* the maximal perfect band from the root of a nest: consecutive loops each
   containing exactly one item which is again a loop *)
let rec perfect_band (l : Ir.loop) =
  match l.Ir.body with
  | [ Ir.Loop inner ] -> l :: perfect_band inner
  | _ -> [ l ]

(* statements (by name) contained in an item *)
let rec stmt_names = function
  | Ir.Stmt s -> [ s.Ir.stmt_name ]
  | Ir.Loop l -> List.concat_map stmt_names l.Ir.body
  | Ir.If b ->
    List.concat_map stmt_names b.Ir.then_
    @ List.concat_map stmt_names b.Ir.else_

(* dependences whose endpoints are both inside the given nest *)
let deps_of_nest all_deps names =
  List.filter
    (fun (d : Dependence.t) ->
      List.mem d.Dependence.src.Scop.stmt.Ir.stmt_name names
      && List.mem d.Dependence.dst.Scop.stmt.Ir.stmt_name names)
    all_deps

(* rewrite band loops l1..lb into tile loops (step T from 0) wrapping point
   loops with max/min bounds *)
let tile_band tile_size band innermost_body =
  let fresh_tile_var (l : Ir.loop) = l.Ir.var ^ "t" in
  (* point loops, innermost outwards *)
  let point_loops =
    List.fold_right
      (fun (l : Ir.loop) body ->
        let vt = fresh_tile_var l in
        [
          Ir.loop_minmax l.Ir.var
            ~lo:(Ir.aff_var vt :: l.Ir.lo)
            ~hi:(Ir.aff_add (Ir.aff_var vt) (Ir.aff_const tile_size) :: l.Ir.hi)
            ~step:l.Ir.step body;
        ])
      band innermost_body
  in
  (* tile loops, innermost outwards; lower bound 0 (cf. module doc) *)
  List.fold_right
    (fun (l : Ir.loop) body ->
      let vt = fresh_tile_var l in
      [
        Ir.loop_minmax vt ~lo:[ Ir.aff_const 0 ] ~hi:l.Ir.hi ~step:tile_size
          body;
      ])
    band point_loops
  |> List.hd

let mark_parallel item =
  match item with
  | Ir.Loop l -> Ir.Loop { l with Ir.parallel = true }
  | i -> i

let tile ?(tile_size = 32) ?(legality_sizes = [ 6; 9 ]) prog =
  let scop = Scop.extract prog in
  let dep_samples =
    List.map
      (fun n ->
        let pv = List.map (fun p -> (p, n)) prog.Ir.params in
        Dependence.analyze scop ~param_values:pv)
      (if prog.Ir.params = [] then [ 0 ] else legality_sizes)
  in
  let dep_samples =
    match dep_samples with [] -> [ [] ] | l -> l
  in
  let reports = ref [] in
  let transform_top = function
    | Ir.Stmt s -> Ir.Stmt s
    | Ir.If b -> Ir.If b (* top-level branches are left untiled *)
    | Ir.Loop root ->
      let band = perfect_band root in
      let names = stmt_names (Ir.Loop root) in
      let nest_deps = List.map (fun deps -> deps_of_nest deps names) dep_samples in
      (* hoisting tile loops above the band requires the band's bounds to
         be free of loop variables (rectangular band); triangular bands are
         left to the point loops *)
      let rect_prefix =
        let rec go = function
          | [] -> 0
          | (l : Ir.loop) :: rest ->
            let no_vars a = a.Ir.var_coefs = [] in
            if List.for_all no_vars l.Ir.lo && List.for_all no_vars l.Ir.hi
            then 1 + go rest
            else 0
        in
        go band
      in
      let b =
        List.fold_left
          (fun acc deps -> min acc (Dependence.permutable_prefix deps))
          (min (List.length band) rect_prefix)
          nest_deps
      in
      let parallel0 =
        List.for_all (fun deps -> Dependence.loop_parallel deps 0) nest_deps
      in
      let n_deps = List.length (List.hd nest_deps) in
      if b < 2 then begin
        (* untiled; still mark the outer loop parallel when legal *)
        reports :=
          { nest_root = root.Ir.var; band = 0; parallel = parallel0; n_deps }
          :: !reports;
        if parallel0 then mark_parallel (Ir.Loop root) else Ir.Loop root
      end
      else begin
        let tiled_band = List.filteri (fun i _ -> i < b) band in
        let inner_body =
          (List.nth band (b - 1)).Ir.body
        in
        let tiled = tile_band tile_size tiled_band inner_body in
        reports :=
          { nest_root = root.Ir.var; band = b; parallel = parallel0; n_deps }
          :: !reports;
        if parallel0 then mark_parallel tiled else tiled
      end
  in
  let body = List.map transform_top prog.Ir.body in
  let tiled = { prog with Ir.body } in
  (match Ir.validate tiled with
  | Ok () -> ()
  | Error m -> invalid_arg ("Tiling produced an invalid program: " ^ m));
  { tiled; nests = List.rev !reports }

let tile_program ?tile_size prog = (tile ?tile_size prog).tiled

let pp_report ppf r =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun n ->
      Format.fprintf ppf "nest %s: band=%d%s deps=%d@," n.nest_root n.band
        (if n.parallel then " parallel" else "")
        n.n_deps)
    r.nests;
  Format.fprintf ppf "@]"
