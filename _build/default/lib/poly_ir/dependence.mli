(** Polyhedral dependence analysis.

    Dependences between statement instances are computed exactly from the
    extracted SCoP: two accesses conflict when they touch the same array
    element, at least one writes, and the source instance is scheduled
    before the destination (by the 2d+1 order).

    Emptiness and distance-set queries are evaluated at concrete parameter
    values supplied by the caller (the kernels evaluated in the paper have
    quasi-uniform dependences, for which sampled sizes are decisive; this
    is our stand-in for isl's parametric emptiness test). *)

open Presburger

type kind = Raw | War | Waw

type t = {
  kind : kind;
  src : Scop.stmt_info;
  dst : Scop.stmt_info;
  src_access : Ir.access;
  dst_access : Ir.access;
  common : int;  (** loops shared by source and destination *)
  rel : Bset.t list;
      (** non-empty disjuncts of the dependence relation
          [src iteration -> dst iteration], parameters fixed *)
}

val analyze : Scop.t -> param_values:(string * int) list -> t list
(** All non-empty dependences of the program at the given sizes. *)

val distance_set : t -> Pset.t
(** The set of distance vectors [j − i] projected on the [common] loops. *)

val carried_at : t -> int -> bool
(** [carried_at d k]: some instance pair has [δ_0 = … = δ_(k-1) = 0] and
    [δ_k ≠ 0] (the dependence is carried by loop [k] of the common nest).
    [k] must be [< common]. *)

val permutable_prefix : t list -> int
(** Length of the longest loop-band prefix [0 .. b-1] such that every
    dependence distance is non-negative in each of those dimensions — the
    Pluto full-permutability condition for rectangular tiling. The
    result is capped by the smallest [common] among dependences that have
    common loops. *)

val loop_parallel : t list -> int -> bool
(** [loop_parallel deps k]: no dependence is carried at level [k]
    (OpenMP-parallelism test for the loop at depth [k]). *)

val pp_kind : Format.formatter -> kind -> unit
val pp : Format.formatter -> t -> unit
