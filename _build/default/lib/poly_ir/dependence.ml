open Presburger

type kind = Raw | War | Waw

type t = {
  kind : kind;
  src : Scop.stmt_info;
  dst : Scop.stmt_info;
  src_access : Ir.access;
  dst_access : Ir.access;
  common : int;
  rel : Bset.t list;
}

let fix_info_domain (info : Scop.stmt_info) ~param_values =
  let sp = Bset.space info.Scop.domain in
  let values =
    Array.map
      (fun p ->
        match List.assoc_opt p param_values with
        | Some v -> v
        | None -> invalid_arg ("Dependence: missing parameter " ^ p))
      sp.Space.params
  in
  Bset.fix_params info.Scop.domain values

(* combined relation space: ins = src iters, outs = dst iters (params
   already fixed); divs = src divs then dst divs *)
let combined_universe src_dom dst_dom =
  let ds = Space.n_outs (Bset.space src_dom) in
  let dt = Space.n_outs (Bset.space dst_dom) in
  let dvs = Bset.n_div src_dom and dvt = Bset.n_div dst_dom in
  let space =
    Space.map_space ~in_name:"Src" ~out_name:"Dst"
      (List.init ds (Printf.sprintf "i%d"))
      (List.init dt (Printf.sprintf "j%d"))
  in
  let total = ds + dt + dvs + dvt in
  let pa =
    Poly.remap src_dom.Bset.poly total (fun i ->
        if i < ds then i else ds + dt + (i - ds))
  in
  let pb =
    Poly.remap dst_dom.Bset.poly total (fun i ->
        if i < dt then ds + i else ds + dt + dvs + (i - dt))
  in
  Bset.of_poly space ~n_div:(dvs + dvt) (Poly.append pa pb)

(* affine index expression as Bset.aff over the combined space *)
let index_aff b (info : Scop.stmt_info) ~side ~param_values (a : Ir.aff) =
  let pos i = match side with `Src -> Bset.in_pos b i | `Dst -> Bset.out_pos b i in
  let var_col v =
    let rec idx k = function
      | [] -> invalid_arg ("Dependence: unbound variable " ^ v)
      | w :: _ when String.equal w v -> k
      | _ :: r -> idx (k + 1) r
    in
    pos (idx 0 info.Scop.iter_vars)
  in
  let const =
    List.fold_left
      (fun acc (p, c) ->
        match List.assoc_opt p param_values with
        | Some v -> acc + (c * v)
        | None -> invalid_arg ("Dependence: missing parameter " ^ p))
      a.Ir.const a.Ir.param_coefs
  in
  { Bset.coefs = List.map (fun (v, c) -> (c, var_col v)) a.Ir.var_coefs; const }

let aff_sub (a : Bset.aff) (b : Bset.aff) =
  {
    Bset.coefs = a.Bset.coefs @ List.map (fun (c, v) -> (-c, v)) b.Bset.coefs;
    const = a.Bset.const - b.Bset.const;
  }

(* order disjuncts: src instance scheduled strictly before dst instance *)
let order_disjuncts b (src : Scop.stmt_info) (dst : Scop.stmt_info) common =
  let eq_prefix b k =
    let rec go b j =
      if j = k then b
      else
        go
          (Bset.add_eq b
             {
               Bset.coefs = [ (1, Bset.in_pos b j); (-1, Bset.out_pos b j) ];
               const = 0;
             })
          (j + 1)
    in
    go b 0
  in
  let carried k =
    (* i_0..i_(k-1) = j_0..j_(k-1), i_k < j_k *)
    Bset.add_ge (eq_prefix b k)
      {
        Bset.coefs = [ (1, Bset.out_pos b k); (-1, Bset.in_pos b k) ];
        const = -1;
      }
  in
  let loop_disjuncts = List.init common carried in
  (* textual order at the split level: all common dims equal, and the
     source's position constant is smaller *)
  let beta_s = List.nth src.Scop.beta common
  and beta_t = List.nth dst.Scop.beta common in
  if beta_s < beta_t then eq_prefix b common :: loop_disjuncts
  else loop_disjuncts

let classify (a : Ir.access) (b : Ir.access) =
  match (a.Ir.kind, b.Ir.kind) with
  | Ir.Write, Ir.Read -> Some Raw
  | Ir.Read, Ir.Write -> Some War
  | Ir.Write, Ir.Write -> Some Waw
  | Ir.Read, Ir.Read -> None

let analyze (scop : Scop.t) ~param_values =
  let infos = Array.of_list scop.Scop.stmt_infos in
  let fixed = Array.map (fun i -> fix_info_domain i ~param_values) infos in
  let deps = ref [] in
  Array.iteri
    (fun si src ->
      Array.iteri
        (fun ti dst ->
          let common = Scop.common_depth src dst in
          List.iter
            (fun (sa, _) ->
              List.iter
                (fun (da, _) ->
                  if String.equal sa.Ir.array da.Ir.array then
                    match classify sa da with
                    | None -> ()
                    | Some kind ->
                      let b0 = combined_universe fixed.(si) fixed.(ti) in
                      (* same element *)
                      let b0 =
                        List.fold_left2
                          (fun b ia id ->
                            let asrc =
                              index_aff b src ~side:`Src ~param_values ia
                            in
                            let adst =
                              index_aff b dst ~side:`Dst ~param_values id
                            in
                            Bset.add_eq b (aff_sub asrc adst))
                          b0 sa.Ir.indices da.Ir.indices
                      in
                      let disjuncts = order_disjuncts b0 src dst common in
                      let nonempty =
                        List.filter (fun d -> not (Bset.is_empty d)) disjuncts
                      in
                      if nonempty <> [] then
                        deps :=
                          {
                            kind;
                            src;
                            dst;
                            src_access = sa;
                            dst_access = da;
                            common;
                            rel = nonempty;
                          }
                          :: !deps)
                dst.Scop.access_maps)
            src.Scop.access_maps)
        infos)
    infos;
  List.rev !deps

(* restrict a relation disjunct to the first [k] input/output dims by
   pushing the deeper dims into the div block, then take deltas *)
let restrict_to_common (b : Bset.t) k =
  let sp = Bset.space b in
  let ni = Space.n_ins sp and no = Space.n_outs sp in
  let nd = Bset.n_div b in
  let extra = ni - k + (no - k) in
  let total = k + k + extra + nd in
  let perm i =
    if i < k then i (* kept ins *)
    else if i < ni then k + k + (i - k) (* dropped ins -> divs *)
    else if i < ni + k then k + (i - ni) (* kept outs *)
    else if i < ni + no then k + k + (ni - k) + (i - ni - k) (* dropped outs *)
    else k + k + extra + (i - ni - no)
  in
  let space =
    Space.map_space ~in_name:"Src" ~out_name:"Dst"
      (List.init k (Printf.sprintf "i%d"))
      (List.init k (Printf.sprintf "j%d"))
  in
  Bset.of_poly space ~n_div:(extra + nd) (Poly.remap b.Bset.poly total perm)

let distance_set d =
  let k = d.common in
  let space = Space.set_space ~name:"delta" (List.init k (Printf.sprintf "d%d")) in
  if k = 0 then Pset.empty space
  else begin
    let ds =
      List.map (fun b -> Bset.deltas (restrict_to_common b k)) d.rel
    in
    match ds with
    | [] -> Pset.empty space
    | b :: _ -> Pset.of_bsets (Bset.space b) ds
  end

let carried_at d k =
  assert (k < d.common);
  let delta = distance_set d in
  (* δ_0..δ_(k-1) = 0 and δ_k != 0 *)
  let constrain (b : Bset.t) =
    let b =
      List.fold_left
        (fun b j -> Bset.add_eq b { Bset.coefs = [ (1, Bset.out_pos b j) ]; const = 0 })
        b (List.init k Fun.id)
    in
    let pos = Bset.add_ge b { Bset.coefs = [ (1, Bset.out_pos b k) ]; const = -1 } in
    let neg = Bset.add_ge b { Bset.coefs = [ (-1, Bset.out_pos b k) ]; const = -1 } in
    (not (Bset.is_empty pos)) || not (Bset.is_empty neg)
  in
  List.exists constrain (Pset.disjuncts delta)

let nonneg_at d k =
  if k >= d.common then true
  else begin
    let delta = distance_set d in
    List.for_all
      (fun b ->
        let witness =
          Bset.add_ge b { Bset.coefs = [ (-1, Bset.out_pos b k) ]; const = -1 }
        in
        Bset.is_empty witness)
      (Pset.disjuncts delta)
  end

let permutable_prefix deps =
  let depth =
    List.fold_left
      (fun acc d -> if d.common > 0 then min acc d.common else acc)
      max_int deps
  in
  let depth = if depth = max_int then 0 else depth in
  let rec go k =
    if k >= depth then k
    else if List.for_all (fun d -> nonneg_at d k) deps then go (k + 1)
    else k
  in
  go 0

let loop_parallel deps k =
  List.for_all (fun d -> k >= d.common || not (carried_at d k)) deps

let pp_kind ppf = function
  | Raw -> Format.fprintf ppf "RAW"
  | War -> Format.fprintf ppf "WAR"
  | Waw -> Format.fprintf ppf "WAW"

let pp ppf d =
  Format.fprintf ppf "%a %s[%s] -> %s[%s] on %s (common=%d, %d disjunct(s))"
    pp_kind d.kind d.src.Scop.stmt.Ir.stmt_name
    (String.concat "," d.src.Scop.iter_vars)
    d.dst.Scop.stmt.Ir.stmt_name
    (String.concat "," d.dst.Scop.iter_vars)
    d.src_access.Ir.array d.common (List.length d.rel)
