type array_layout = {
  decl : Ir.array_decl;
  extents : int array;
  strides : int array;
  base : int;
  size_bytes : int;
}

type t = {
  arrays : (string * array_layout) list;
  footprint : int;
  align : int;
}

let eval_aff (a : Ir.aff) ~vars ~params =
  List.fold_left (fun acc (v, c) -> acc + (c * vars v)) a.Ir.const a.Ir.var_coefs
  + List.fold_left (fun acc (p, c) -> acc + (c * params p)) 0 a.Ir.param_coefs

let of_program ?(align = 64) prog ~param_values =
  let params p =
    match List.assoc_opt p param_values with
    | Some v -> v
    | None -> invalid_arg ("Layout: missing parameter " ^ p)
  in
  let no_vars v = invalid_arg ("Layout: loop variable in array extent: " ^ v) in
  let next_base = ref 0 in
  let arrays =
    List.map
      (fun (d : Ir.array_decl) ->
        let extents =
          Array.of_list
            (List.map (fun e -> eval_aff e ~vars:no_vars ~params) d.Ir.extents)
        in
        Array.iter
          (fun e ->
            if e <= 0 then
              invalid_arg
                (Printf.sprintf "Layout: non-positive extent %d for array %s" e
                   d.Ir.array_name))
          extents;
        let n = Array.length extents in
        let strides = Array.make n 1 in
        for i = n - 2 downto 0 do
          strides.(i) <- strides.(i + 1) * extents.(i + 1)
        done;
        let elems = if n = 0 then 1 else strides.(0) * extents.(0) in
        let size_bytes = elems * d.Ir.elem_size in
        let base = !next_base in
        next_base := (base + size_bytes + align - 1) / align * align;
        (d.Ir.array_name, { decl = d; extents; strides; base; size_bytes }))
      prog.Ir.arrays
  in
  { arrays; footprint = !next_base; align }

let find t name =
  match List.assoc_opt name t.arrays with
  | Some a -> a
  | None -> invalid_arg ("Layout: unknown array " ^ name)

let linear_index al idx =
  assert (Array.length idx = Array.length al.extents);
  let acc = ref 0 in
  for i = 0 to Array.length idx - 1 do
    assert (idx.(i) >= 0 && idx.(i) < al.extents.(i));
    acc := !acc + (idx.(i) * al.strides.(i))
  done;
  !acc

let address al idx = al.base + (linear_index al idx * al.decl.Ir.elem_size)
