(** Concrete memory layout of a program's arrays at fixed parameter values.

    Arrays are laid out row-major, packed sequentially in declaration order,
    each base aligned to [align] bytes (default 64, one cache line), mirroring
    what the paper's generated LLVM-IR binaries see. *)

type array_layout = {
  decl : Ir.array_decl;
  extents : int array;  (** evaluated dimension sizes *)
  strides : int array;  (** row-major element strides *)
  base : int;  (** byte address of element 0 *)
  size_bytes : int;
}

type t = {
  arrays : (string * array_layout) list;
  footprint : int;  (** total bytes *)
  align : int;
}

val of_program : ?align:int -> Ir.t -> param_values:(string * int) list -> t
(** Raises [Invalid_argument] on a missing parameter value or a
    non-positive extent. *)

val find : t -> string -> array_layout
val address : array_layout -> int array -> int
(** Byte address of the element at the given index vector. *)

val linear_index : array_layout -> int array -> int
(** Row-major element offset (bounds-checked with [assert]). *)

val eval_aff : Ir.aff -> vars:(string -> int) -> params:(string -> int) -> int
(** Evaluate an affine expression with the given environments. *)
