(** The affine loop-nest intermediate representation.

    This is the program form on which PolyUFC operates: a sequence of
    (possibly imperfectly nested) affine [for] loops whose bodies are
    statements with affine array accesses — the same information content as
    MLIR's [affine] dialect restricted to the paper's program class
    (Sec. II-A).  The polyhedral representation (domains, access relations,
    schedules) is {e extracted} from this AST by {!Scop}. *)

type aff = {
  var_coefs : (string * int) list;  (** coefficients on loop variables *)
  param_coefs : (string * int) list;  (** coefficients on program parameters *)
  const : int;
}
(** An affine expression over enclosing loop variables and parameters. *)

val aff_const : int -> aff
val aff_var : string -> aff
val aff_param : string -> aff
val aff_add : aff -> aff -> aff
val aff_sub : aff -> aff -> aff
val aff_scale : int -> aff -> aff
val aff_equal : aff -> aff -> bool

type access_kind = Read | Write

type access = {
  array : string;
  indices : aff list;
  kind : access_kind;
}

type binop = Add | Sub | Mul | Div | Max | Min

type expr =
  | Load of access  (** [access.kind] must be [Read] *)
  | Const of float
  | Bin of binop * expr * expr
  | Neg of expr
  | Sqrt of expr
  | Exp of expr

type stmt = {
  stmt_name : string;
  target : access;  (** the written element; [kind] must be [Write] *)
  rhs : expr;
}

type cond = {
  cond_aff : aff;
  cond_eq : bool;  (** [true]: [aff = 0]; [false]: [aff >= 0] *)
}
(** One affine guard; a branch carries a conjunction of these. *)

type item =
  | Loop of loop
  | Stmt of stmt
  | If of branch

and loop = {
  var : string;
  lo : aff list;  (** inclusive lower bound: [max] of the list (non-empty) *)
  hi : aff list;  (** exclusive upper bound: [min] of the list (non-empty) *)
  step : int;  (** positive *)
  parallel : bool;  (** marked parallel (OpenMP-style) *)
  body : item list;
}

and branch = {
  conds : cond list;  (** conjunction; must be non-empty *)
  then_ : item list;
  else_ : item list;  (** executed when some condition fails *)
}

type array_decl = {
  array_name : string;
  extents : aff list;  (** one per dimension; parameters allowed *)
  elem_size : int;  (** bytes per element *)
}

type t = {
  prog_name : string;
  params : string list;
  arrays : array_decl list;
  body : item list;
}

val loop :
  ?step:int -> ?parallel:bool -> string -> lo:aff -> hi:aff -> item list -> item
(** Loop with single-expression bounds (the common case). *)

val loop_minmax :
  ?step:int ->
  ?parallel:bool ->
  string ->
  lo:aff list ->
  hi:aff list ->
  item list ->
  item
(** Loop with [max]-of-list lower and [min]-of-list upper bounds, as
    produced by tiling. *)

val if_ : ?else_:item list -> cond list -> item list -> item
(** Affine branch (Sec. II-A: conditions are conjunctions over iterators
    and parameters, independent of the data). *)

val cond_ge : aff -> cond
(** [aff >= 0]. *)

val cond_eq : aff -> cond

val read : string -> aff list -> expr
val write : string -> aff list -> access
val assign : string -> target:access -> expr -> item

val flops_of_expr : expr -> int
(** Arithmetic-operation count under the paper's unitary model
    (footnote 13): every [Bin], [Neg], [Sqrt], [Exp] counts 1. *)

val accesses_of_stmt : stmt -> access list
(** All accesses of a statement: reads of the right-hand side in evaluation
    order, then the write of the target. *)

val find_array : t -> string -> array_decl
(** Raises [Not_found]. *)

val stmts : t -> stmt list
(** All statements in program order. *)

val loop_depth : t -> int
(** Maximum loop nesting depth. *)

val validate : t -> (unit, string) result
(** Structural checks: loop variables unique on each path, accessed arrays
    declared, access ranks match declarations, variables in affine
    expressions in scope, statement names unique. *)

val map_items : (item -> item) -> t -> t
(** Bottom-up rewrite of every item. *)

val pp : Format.formatter -> t -> unit
(** Pretty-print in a C-like surface syntax (re-parsable by Polylang). *)

val pp_aff : Format.formatter -> aff -> unit
val pp_access : Format.formatter -> access -> unit
val pp_expr : Format.formatter -> expr -> unit
val pp_item : Format.formatter -> item -> unit
