lib/poly_ir/tiling.ml: Dependence Format Ir List Scop
