lib/poly_ir/layout.ml: Array Ir List Printf
