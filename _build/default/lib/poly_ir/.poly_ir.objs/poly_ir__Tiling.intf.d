lib/poly_ir/tiling.mli: Format Ir
