lib/poly_ir/dependence.mli: Bset Format Ir Presburger Pset Scop
