lib/poly_ir/layout.mli: Ir
