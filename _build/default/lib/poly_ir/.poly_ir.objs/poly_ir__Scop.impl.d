lib/poly_ir/scop.ml: Array Bset Count Format Ir List Presburger Printf Space String
