lib/poly_ir/interp.ml: Array Float Ir Layout List
