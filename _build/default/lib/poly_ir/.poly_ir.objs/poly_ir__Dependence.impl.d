lib/poly_ir/dependence.ml: Array Bset Format Fun Ir List Poly Presburger Printf Pset Scop Space String
