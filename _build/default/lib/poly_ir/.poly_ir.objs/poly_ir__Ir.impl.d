lib/poly_ir/ir.ml: Float Format Hashtbl List Option Result String
