lib/poly_ir/ir.mli: Format
