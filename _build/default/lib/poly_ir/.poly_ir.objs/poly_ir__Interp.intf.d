lib/poly_ir/interp.mli: Ir Layout
