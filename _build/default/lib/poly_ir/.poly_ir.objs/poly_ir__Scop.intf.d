lib/poly_ir/scop.mli: Bset Count Format Ir Presburger
