type aff = {
  var_coefs : (string * int) list;
  param_coefs : (string * int) list;
  const : int;
}

let simplify a =
  let merge l =
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun (v, c) ->
        Hashtbl.replace tbl v (c + Option.value ~default:0 (Hashtbl.find_opt tbl v)))
      l;
    (* keep first-occurrence order for stable printing *)
    let seen = Hashtbl.create 8 in
    List.filter_map
      (fun (v, _) ->
        if Hashtbl.mem seen v then None
        else begin
          Hashtbl.add seen v ();
          let c = Hashtbl.find tbl v in
          if c = 0 then None else Some (v, c)
        end)
      l
  in
  { a with var_coefs = merge a.var_coefs; param_coefs = merge a.param_coefs }

let aff_const n = { var_coefs = []; param_coefs = []; const = n }
let aff_var v = { var_coefs = [ (v, 1) ]; param_coefs = []; const = 0 }
let aff_param p = { var_coefs = []; param_coefs = [ (p, 1) ]; const = 0 }

let aff_add a b =
  simplify
    {
      var_coefs = a.var_coefs @ b.var_coefs;
      param_coefs = a.param_coefs @ b.param_coefs;
      const = a.const + b.const;
    }

let aff_scale k a =
  simplify
    {
      var_coefs = List.map (fun (v, c) -> (v, k * c)) a.var_coefs;
      param_coefs = List.map (fun (v, c) -> (v, k * c)) a.param_coefs;
      const = k * a.const;
    }

let aff_sub a b = aff_add a (aff_scale (-1) b)

let aff_equal a b =
  let d = simplify (aff_sub a b) in
  d.var_coefs = [] && d.param_coefs = [] && d.const = 0

type access_kind = Read | Write
type access = { array : string; indices : aff list; kind : access_kind }
type binop = Add | Sub | Mul | Div | Max | Min

type expr =
  | Load of access
  | Const of float
  | Bin of binop * expr * expr
  | Neg of expr
  | Sqrt of expr
  | Exp of expr

type stmt = { stmt_name : string; target : access; rhs : expr }
type cond = { cond_aff : aff; cond_eq : bool }
type item = Loop of loop | Stmt of stmt | If of branch

and loop = {
  var : string;
  lo : aff list;
  hi : aff list;
  step : int;
  parallel : bool;
  body : item list;
}

and branch = { conds : cond list; then_ : item list; else_ : item list }

type array_decl = { array_name : string; extents : aff list; elem_size : int }

type t = {
  prog_name : string;
  params : string list;
  arrays : array_decl list;
  body : item list;
}

let loop_minmax ?(step = 1) ?(parallel = false) var ~lo ~hi body =
  assert (step > 0 && lo <> [] && hi <> []);
  Loop { var; lo; hi; step; parallel; body }

let loop ?step ?parallel var ~lo ~hi body =
  loop_minmax ?step ?parallel var ~lo:[ lo ] ~hi:[ hi ] body

let if_ ?(else_ = []) conds then_ =
  assert (conds <> []);
  If { conds; then_; else_ }

let cond_ge a = { cond_aff = a; cond_eq = false }
let cond_eq a = { cond_aff = a; cond_eq = true }

let read array indices = Load { array; indices; kind = Read }
let write array indices = { array; indices; kind = Write }

let assign name ~target rhs =
  assert (target.kind = Write);
  Stmt { stmt_name = name; target; rhs }

let rec flops_of_expr = function
  | Load _ | Const _ -> 0
  | Bin (_, a, b) -> 1 + flops_of_expr a + flops_of_expr b
  | Neg e | Sqrt e | Exp e -> 1 + flops_of_expr e

let rec loads_of_expr = function
  | Load a -> [ a ]
  | Const _ -> []
  | Bin (_, a, b) -> loads_of_expr a @ loads_of_expr b
  | Neg e | Sqrt e | Exp e -> loads_of_expr e

let accesses_of_stmt s = loads_of_expr s.rhs @ [ s.target ]

let find_array t name =
  List.find (fun a -> a.array_name = name) t.arrays

let rec stmts_of_items items =
  List.concat_map
    (function
      | Stmt s -> [ s ]
      | Loop l -> stmts_of_items l.body
      | If b -> stmts_of_items b.then_ @ stmts_of_items b.else_)
    items

let stmts t = stmts_of_items t.body

let loop_depth t =
  let rec depth items =
    List.fold_left
      (fun acc -> function
        | Stmt _ -> acc
        | Loop l -> max acc (1 + depth l.body)
        | If b -> max acc (max (depth b.then_) (depth b.else_)))
      0 items
  in
  depth t.body

let validate t =
  let ( let* ) r f = Result.bind r f in
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  let check_aff vars a =
    let bad =
      List.find_opt (fun (v, _) -> not (List.mem v vars)) a.var_coefs
    in
    let badp =
      List.find_opt (fun (p, _) -> not (List.mem p t.params)) a.param_coefs
    in
    match (bad, badp) with
    | Some (v, _), _ -> err "loop variable '%s' not in scope" v
    | _, Some (p, _) -> err "unknown parameter '%s'" p
    | None, None -> Ok ()
  in
  let check_access vars (a : access) =
    match List.find_opt (fun d -> d.array_name = a.array) t.arrays with
    | None -> err "array '%s' not declared" a.array
    | Some d ->
      if List.length a.indices <> List.length d.extents then
        err "array '%s': rank mismatch (%d indices, %d dims)" a.array
          (List.length a.indices) (List.length d.extents)
      else
        List.fold_left
          (fun acc idx -> let* () = acc in check_aff vars idx)
          (Ok ()) a.indices
  in
  let rec check_items vars seen_names = function
    | [] -> Ok seen_names
    | Stmt s :: rest ->
      if List.mem s.stmt_name seen_names then
        err "duplicate statement name '%s'" s.stmt_name
      else
        let* () =
          List.fold_left
            (fun acc a -> let* () = acc in check_access vars a)
            (Ok ()) (accesses_of_stmt s)
        in
        check_items vars (s.stmt_name :: seen_names) rest
    | If b :: rest ->
      if b.conds = [] then err "empty branch condition"
      else
        let* () =
          List.fold_left
            (fun acc c -> let* () = acc in check_aff vars c.cond_aff)
            (Ok ()) b.conds
        in
        let* seen = check_items vars seen_names b.then_ in
        let* seen = check_items vars seen b.else_ in
        check_items vars seen rest
    | Loop l :: rest ->
      if List.mem l.var vars then err "shadowed loop variable '%s'" l.var
      else if l.step <= 0 then err "loop '%s': non-positive step" l.var
      else if l.lo = [] || l.hi = [] then err "loop '%s': empty bound list" l.var
      else if l.step > 1 && List.length l.lo > 1 then
        err "loop '%s': strided loop needs a single lower bound" l.var
      else
        let check_affs affs =
          List.fold_left
            (fun acc a -> let* () = acc in check_aff vars a)
            (Ok ()) affs
        in
        let* () = check_affs l.lo in
        let* () = check_affs l.hi in
        let* seen = check_items (l.var :: vars) seen_names l.body in
        check_items vars seen rest
  in
  let* _ = check_items [] [] t.body in
  Ok ()

let rec map_item f = function
  | Stmt s -> f (Stmt s)
  | Loop l -> f (Loop { l with body = List.map (map_item f) l.body })
  | If b ->
    f
      (If
         {
           b with
           then_ = List.map (map_item f) b.then_;
           else_ = List.map (map_item f) b.else_;
         })

let map_items f t = { t with body = List.map (map_item f) t.body }

(* ---------- printing ---------- *)

let pp_aff ppf a =
  let a = simplify a in
  let terms =
    List.map (fun (v, c) -> (c, v)) a.var_coefs
    @ List.map (fun (p, c) -> (c, p)) a.param_coefs
  in
  let printed = ref false in
  List.iter
    (fun (c, v) ->
      if !printed then
        Format.fprintf ppf (if c >= 0 then " + " else " - ")
      else if c < 0 then Format.fprintf ppf "-";
      let ac = abs c in
      if ac = 1 then Format.fprintf ppf "%s" v
      else Format.fprintf ppf "%d*%s" ac v;
      printed := true)
    terms;
  if a.const <> 0 || not !printed then
    if !printed then
      Format.fprintf ppf
        (if a.const >= 0 then " + %d" else " - %d")
        (abs a.const)
    else Format.fprintf ppf "%d" a.const

let pp_access ppf (a : access) =
  Format.fprintf ppf "%s%a" a.array
    (fun ppf -> List.iter (fun i -> Format.fprintf ppf "[%a]" pp_aff i))
    a.indices

let binop_str = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/"
  | Max -> "max" | Min -> "min"

let rec pp_expr ppf = function
  | Load a -> pp_access ppf a
  | Const f ->
    if Float.is_integer f && Float.abs f < 1e9 then
      Format.fprintf ppf "%.1f" f
    else Format.fprintf ppf "%g" f
  | Bin (((Max | Min) as op), a, b) ->
    Format.fprintf ppf "%s(%a, %a)" (binop_str op) pp_expr a pp_expr b
  | Bin (op, a, b) ->
    Format.fprintf ppf "(%a %s %a)" pp_expr a (binop_str op) pp_expr b
  | Neg e -> Format.fprintf ppf "(-%a)" pp_expr e
  | Sqrt e -> Format.fprintf ppf "sqrt(%a)" pp_expr e
  | Exp e -> Format.fprintf ppf "exp(%a)" pp_expr e

let pp_cond ppf c =
  Format.fprintf ppf "%a %s 0" pp_aff c.cond_aff (if c.cond_eq then "==" else ">=")

let rec pp_item ppf = function
  | If b ->
    Format.fprintf ppf "@[<v 2>if (%a) {@,%a@]@,}"
      (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f " && ") pp_cond)
      b.conds
      (Format.pp_print_list pp_item)
      b.then_;
    if b.else_ <> [] then
      Format.fprintf ppf "@[<v 2> else {@,%a@]@,}"
        (Format.pp_print_list pp_item)
        b.else_
  | Stmt s ->
    Format.fprintf ppf "@[<h>%a = %a;  // %s@]" pp_access s.target pp_expr
      s.rhs s.stmt_name
  | Loop l ->
    let pp_bound kw ppf = function
      | [ a ] -> pp_aff ppf a
      | affs ->
        Format.fprintf ppf "%s(%a)" kw
          (Format.pp_print_list
             ~pp_sep:(fun f () -> Format.fprintf f ", ")
             pp_aff)
          affs
    in
    Format.fprintf ppf "@[<v 2>%sfor (%s = %a; %s < %a; %s += %d) {@,%a@]@,}"
      (if l.parallel then "parallel " else "")
      l.var (pp_bound "max") l.lo l.var (pp_bound "min") l.hi l.var l.step
      (Format.pp_print_list pp_item)
      l.body

let pp ppf t =
  Format.fprintf ppf "@[<v>program %s" t.prog_name;
  if t.params <> [] then
    Format.fprintf ppf " [%s]" (String.concat ", " t.params);
  Format.fprintf ppf "@,";
  List.iter
    (fun d ->
      Format.fprintf ppf "array %s%a : %d bytes@," d.array_name
        (fun ppf ->
          List.iter (fun e -> Format.fprintf ppf "[%a]" pp_aff e))
        d.extents d.elem_size)
    t.arrays;
  Format.pp_print_list pp_item ppf t.body;
  Format.fprintf ppf "@]"
