(** Loop tiling and parallelization — the Pluto substitute.

    Rectangular tiling of the outermost fully-permutable band of each
    top-level loop nest (paper baseline: Pluto v0.11.4, default tile size
    32), with OpenMP-style parallel marking of the outermost tile loop when
    no dependence is carried there.

    Legality is the standard condition: a band of loops may be tiled iff
    every dependence distance is non-negative in each band dimension (full
    permutability).  Bands that fail shrink to their largest permutable
    prefix; bands of length < 2 are left untiled (tiling a single loop has
    no locality benefit).

    Assumption (satisfied by all paper benchmarks): loop lower bounds are
    non-negative, so tile loops may start at 0. *)

type nest_report = {
  nest_root : string;  (** variable of the outermost loop of the nest *)
  band : int;  (** loops actually tiled *)
  parallel : bool;  (** outermost (tile) loop marked parallel *)
  n_deps : int;
}

type report = { tiled : Ir.t; nests : nest_report list }

val tile :
  ?tile_size:int ->
  ?legality_sizes:int list ->
  Ir.t ->
  report
(** [tile prog] tiles every top-level nest.  Dependences are tested at the
    given sample sizes for each parameter (default [[6; 9]]); a nest is
    transformed only if legal at all samples. *)

val tile_program : ?tile_size:int -> Ir.t -> Ir.t
(** Convenience: [ (tile prog).tiled ]. *)

val pp_report : Format.formatter -> report -> unit
