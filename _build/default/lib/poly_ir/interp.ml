type callbacks = {
  on_access :
    stmt:string -> array:string -> addr:int -> bytes:int -> is_write:bool -> unit;
  on_stmt : stmt:string -> flops:int -> unit;
  on_loop_enter : var:string -> depth:int -> parallel:bool -> unit;
  on_loop_exit : var:string -> depth:int -> unit;
}

let null_callbacks =
  {
    on_access = (fun ~stmt:_ ~array:_ ~addr:_ ~bytes:_ ~is_write:_ -> ());
    on_stmt = (fun ~stmt:_ ~flops:_ -> ());
    on_loop_enter = (fun ~var:_ ~depth:_ ~parallel:_ -> ());
    on_loop_exit = (fun ~var:_ ~depth:_ -> ());
  }

let with_access f = { null_callbacks with on_access = f }

type result = {
  layout : Layout.t;
  values : (string * float array) list;
  instances : int;
  flops : int;
  accesses : int;
}

let default_init _name idx =
  (* deterministic, size-independent pattern in (0, 2] *)
  float_of_int ((idx * 16807 mod 97) + 1) /. 48.5

(* compile an affine expression into a closure over the loop-variable
   stack; variable name -> stack slot resolved at compile time *)
let compile_aff (a : Ir.aff) ~slot_of ~param =
  let vterms =
    List.map (fun (v, c) -> (slot_of v, c)) a.Ir.var_coefs
  in
  let pconst =
    List.fold_left (fun acc (p, c) -> acc + (c * param p)) a.Ir.const a.Ir.param_coefs
  in
  match vterms with
  | [] -> fun _stack -> pconst
  | [ (s, c) ] -> fun stack -> (c * stack.(s)) + pconst
  | terms ->
    fun stack ->
      List.fold_left (fun acc (s, c) -> acc + (c * stack.(s))) pconst terms

let run ?(compute = true) ?(init = default_init) prog ~param_values cb =
  (match Ir.validate prog with
  | Ok () -> ()
  | Error m -> invalid_arg ("Interp.run: " ^ m));
  let layout = Layout.of_program prog ~param_values in
  let param p =
    match List.assoc_opt p param_values with
    | Some v -> v
    | None -> invalid_arg ("Interp: missing parameter " ^ p)
  in
  let storages =
    if not compute then []
    else
      List.map
        (fun (name, (al : Layout.array_layout)) ->
          let elems = al.Layout.size_bytes / al.Layout.decl.Ir.elem_size in
          (name, Array.init elems (init name)))
        layout.Layout.arrays
  in
  let storage name =
    match List.assoc_opt name storages with
    | Some a -> a
    | None -> invalid_arg ("Interp: no storage for " ^ name)
  in
  let instances = ref 0 and flops = ref 0 and accesses = ref 0 in
  let max_depth =
    let rec d = function
      | Ir.Stmt _ -> 0
      | Ir.Loop l -> 1 + List.fold_left (fun a i -> max a (d i)) 0 l.Ir.body
      | Ir.If b ->
        max
          (List.fold_left (fun a i -> max a (d i)) 0 b.Ir.then_)
          (List.fold_left (fun a i -> max a (d i)) 0 b.Ir.else_)
    in
    List.fold_left (fun a i -> max a (d i)) 0 prog.Ir.body
  in
  let stack = Array.make (max 1 max_depth) 0 in
  (* compile the program into closures over [stack] *)
  let rec compile_items scope depth items =
    let compiled = List.map (compile_item scope depth) items in
    fun () -> List.iter (fun f -> f ()) compiled
  and compile_item scope depth = function
    | Ir.If b ->
      let slot_of v =
        match List.assoc_opt v scope with
        | Some s -> s
        | None -> invalid_arg ("Interp: unbound variable " ^ v)
      in
      let conds =
        List.map
          (fun (c : Ir.cond) ->
            (compile_aff c.Ir.cond_aff ~slot_of ~param, c.Ir.cond_eq))
          b.Ir.conds
      in
      let then_ = compile_items scope depth b.Ir.then_ in
      let else_ = compile_items scope depth b.Ir.else_ in
      fun () ->
        let taken =
          List.for_all
            (fun (f, eq) ->
              let v = f stack in
              if eq then v = 0 else v >= 0)
            conds
        in
        if taken then then_ () else else_ ()
    | Ir.Loop l ->
      let slot_of v =
        match List.assoc_opt v scope with
        | Some s -> s
        | None -> invalid_arg ("Interp: unbound variable " ^ v)
      in
      let los = List.map (compile_aff ~slot_of ~param) l.Ir.lo in
      let his = List.map (compile_aff ~slot_of ~param) l.Ir.hi in
      let slot = depth in
      let body = compile_items ((l.Ir.var, slot) :: scope) (depth + 1) l.Ir.body in
      let step = l.Ir.step in
      let var = l.Ir.var and parallel = l.Ir.parallel in
      fun () ->
        let lo =
          List.fold_left (fun acc f -> max acc (f stack)) min_int los
        in
        let hi = List.fold_left (fun acc f -> min acc (f stack)) max_int his in
        cb.on_loop_enter ~var ~depth ~parallel;
        let i = ref lo in
        while !i < hi do
          stack.(slot) <- !i;
          body ();
          i := !i + step
        done;
        cb.on_loop_exit ~var ~depth
    | Ir.Stmt s ->
      let slot_of v =
        match List.assoc_opt v scope with
        | Some sl -> sl
        | None -> invalid_arg ("Interp: unbound variable " ^ v)
      in
      let name = s.Ir.stmt_name in
      let stmt_flops = Ir.flops_of_expr s.Ir.rhs in
      (* compile an access into (element-offset closure, layout) *)
      let compile_access (a : Ir.access) =
        let al = Layout.find layout a.Ir.array in
        let idxs =
          Array.of_list (List.map (compile_aff ~slot_of ~param) a.Ir.indices)
        in
        let strides = al.Layout.strides in
        let offset stack =
          let acc = ref 0 in
          for i = 0 to Array.length idxs - 1 do
            acc := !acc + (idxs.(i) stack * strides.(i))
          done;
          !acc
        in
        (al, offset)
      in
      let emit (al : Layout.array_layout) off is_write =
        incr accesses;
        cb.on_access ~stmt:name ~array:al.Layout.decl.Ir.array_name
          ~addr:(al.Layout.base + (off * al.Layout.decl.Ir.elem_size))
          ~bytes:al.Layout.decl.Ir.elem_size ~is_write
      in
      if compute then begin
        let rec compile_expr = function
          | Ir.Const f -> fun _ -> f
          | Ir.Load a ->
            let al, offset = compile_access a in
            let arr = storage a.Ir.array in
            fun stack ->
              let off = offset stack in
              emit al off false;
              arr.(off)
          | Ir.Bin (op, x, y) ->
            let fx = compile_expr x and fy = compile_expr y in
            let g =
              match op with
              | Ir.Add -> ( +. )
              | Ir.Sub -> ( -. )
              | Ir.Mul -> ( *. )
              | Ir.Div -> ( /. )
              | Ir.Max -> Float.max
              | Ir.Min -> Float.min
            in
            (* force left-to-right evaluation so the access stream matches
               scanning mode (OCaml applications evaluate right-to-left) *)
            fun stack ->
              let a = fx stack in
              let b = fy stack in
              g a b
          | Ir.Neg e ->
            let fe = compile_expr e in
            fun stack -> -.fe stack
          | Ir.Sqrt e ->
            let fe = compile_expr e in
            fun stack -> Float.sqrt (fe stack)
          | Ir.Exp e ->
            let fe = compile_expr e in
            fun stack -> Float.exp (fe stack)
        in
        let frhs = compile_expr s.Ir.rhs in
        let tal, toffset = compile_access s.Ir.target in
        let tarr = storage s.Ir.target.Ir.array in
        fun () ->
          incr instances;
          flops := !flops + stmt_flops;
          cb.on_stmt ~stmt:name ~flops:stmt_flops;
          let v = frhs stack in
          let off = toffset stack in
          emit tal off true;
          tarr.(off) <- v
      end
      else begin
        (* scanning mode: same access stream, no values *)
        let reads =
          List.filter_map
            (function
              | Ir.Load a -> Some (compile_access a)
              | _ -> None)
            (let rec loads = function
               | Ir.Load a -> [ Ir.Load a ]
               | Ir.Const _ -> []
               | Ir.Bin (_, x, y) -> loads x @ loads y
               | Ir.Neg e | Ir.Sqrt e | Ir.Exp e -> loads e
             in
             loads s.Ir.rhs)
        in
        let tal, toffset = compile_access s.Ir.target in
        fun () ->
          incr instances;
          flops := !flops + stmt_flops;
          cb.on_stmt ~stmt:name ~flops:stmt_flops;
          List.iter (fun (al, offset) -> emit al (offset stack) false) reads;
          emit tal (toffset stack) true
      end
  in
  let main = compile_items [] 0 prog.Ir.body in
  main ();
  {
    layout;
    values = storages;
    instances = !instances;
    flops = !flops;
    accesses = !accesses;
  }

let array_value r name idx =
  let al = Layout.find r.layout name in
  match List.assoc_opt name r.values with
  | None -> invalid_arg "Interp.array_value: no values (compute:false run?)"
  | Some arr -> arr.(Layout.linear_index al idx)
