(** Reference interpreter / instance enumerator for the loop AST.

    Two uses:
    - {e static scanning} ([compute:false]): walk every statement instance
      in schedule order and report its memory accesses — this is the
      enumeration backend of PolyUFC-CM (the counting step the paper
      delegates to barvinok happens over exactly this instance stream);
    - {e execution} ([compute:true], the default): additionally allocate
      the arrays and evaluate statement right-hand sides, providing
      reference results and the address trace consumed by the hardware
      simulator.

    Loop variables follow the AST order; [parallel] loops are executed
    sequentially (the simulator and the cache model apply the paper's
    thread-sharing heuristic instead of interleaving threads). *)

type callbacks = {
  on_access :
    stmt:string -> array:string -> addr:int -> bytes:int -> is_write:bool -> unit;
  on_stmt : stmt:string -> flops:int -> unit;
  on_loop_enter : var:string -> depth:int -> parallel:bool -> unit;
  on_loop_exit : var:string -> depth:int -> unit;
}

val null_callbacks : callbacks
val with_access :
  (stmt:string -> array:string -> addr:int -> bytes:int -> is_write:bool -> unit) ->
  callbacks

type result = {
  layout : Layout.t;
  values : (string * float array) list;
      (** flattened array contents; empty when [compute:false] *)
  instances : int;  (** executed statement instances *)
  flops : int;  (** total arithmetic ops (unitary model) *)
  accesses : int;  (** total access events *)
}

val run :
  ?compute:bool ->
  ?init:(string -> int -> float) ->
  Ir.t ->
  param_values:(string * int) list ->
  callbacks ->
  result
(** [init array_name linear_index] provides initial element values
    (default: a deterministic pseudo-random pattern). *)

val array_value : result -> string -> int array -> float
(** Element of a result array by index vector. *)
