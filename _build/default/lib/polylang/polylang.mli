(** The affine input language — PolyUFC's front door.

    The paper compiles C/C++ via Polygeist's [cgeist]; this module plays
    that role for a small C-like language covering exactly the affine
    program class of Sec. II-A.  Example:

    {v
    program gemm(n) {
      arrays { A[n][n] : f64; B[n][n] : f64; C[n][n] : f64; }
      for (i = 0; i < n; i++) {
        for (j = 0; j < n; j++) {
          C[i][j] = 0.0;
          for (k = 0; k < n; k++) {
            C[i][j] = C[i][j] + A[i][k] * B[k][j];
          }
        }
      }
    }
    v}

    Loop bounds accept [max(a, b, …)] on the lower side and [min(…)] on the
    upper side, strides ([i += 8]), and a [parallel for] marker.  Statement
    names are auto-generated ([S0], [S1], …) in textual order.  Element
    types [f64], [f32], [i64], [i32] fix the element size. *)

exception Parse_error of string

val parse : string -> Poly_ir.Ir.t
(** Parse and validate a program.  Raises {!Parse_error} on syntax errors
    and on validation failures (undeclared arrays, shadowed variables,
    non-affine indices…). *)

val parse_file : string -> Poly_ir.Ir.t

val to_string : Poly_ir.Ir.t -> string
(** Print a program back to (re-parsable) surface syntax. *)
