lib/cache_model/lru.ml: Array Hashtbl
