lib/cache_model/lru.mli:
