lib/cache_model/model.ml: Array Bset Count Float Format Hashtbl Hwsim Interp Ir Layout List Lru Poly Poly_ir Presburger Scop Space String
