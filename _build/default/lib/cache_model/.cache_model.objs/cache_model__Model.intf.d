lib/cache_model/model.mli: Format Hwsim Poly_ir Presburger
