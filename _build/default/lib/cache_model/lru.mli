(** Bounded LRU set with O(1) touch — the reuse-distance kernel of
    PolyUFC-CM.

    A set of at most [capacity] integer keys ordered by recency.  [touch]
    reports whether the key was present (reuse distance < capacity) and
    evicts the least-recently-used key on overflow.  This implements the
    paper's "fully-associative behaviour within each cache set": a line
    hits iff fewer than [k] distinct lines of the same set intervened since
    its last use. *)

type t

val create : capacity:int -> t
val capacity : t -> int
val size : t -> int

val touch : t -> int -> bool
(** [touch t key]: [true] if [key] was present (it is refreshed to
    most-recent); [false] if absent (it is inserted, evicting the LRU entry
    when full). *)

val mem : t -> int -> bool
val clear : t -> unit
