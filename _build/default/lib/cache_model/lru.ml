(* doubly-linked list over an arena of preallocated nodes; index 0 is a
   sentinel whose [next] is the MRU and [prev] the LRU *)

type t = {
  capacity : int;
  keys : int array;  (* arena: key stored at each node, 1-based *)
  next : int array;
  prev : int array;
  index : (int, int) Hashtbl.t;  (* key -> node *)
  mutable used : int;  (* nodes in use (also next free node - 1) *)
}

let create ~capacity =
  assert (capacity > 0);
  let n = capacity + 1 in
  let t =
    {
      capacity;
      keys = Array.make n min_int;
      next = Array.make n 0;
      prev = Array.make n 0;
      index = Hashtbl.create (min capacity 4096);
      used = 0;
    }
  in
  t.next.(0) <- 0;
  t.prev.(0) <- 0;
  t

let capacity t = t.capacity
let size t = t.used

let unlink t node =
  let p = t.prev.(node) and n = t.next.(node) in
  t.next.(p) <- n;
  t.prev.(n) <- p

let link_front t node =
  let first = t.next.(0) in
  t.next.(0) <- node;
  t.prev.(node) <- 0;
  t.next.(node) <- first;
  t.prev.(first) <- node

let touch t key =
  match Hashtbl.find_opt t.index key with
  | Some node ->
    unlink t node;
    link_front t node;
    true
  | None ->
    let node =
      if t.used < t.capacity then begin
        t.used <- t.used + 1;
        t.used
      end
      else begin
        (* evict the LRU node *)
        let lru = t.prev.(0) in
        Hashtbl.remove t.index t.keys.(lru);
        unlink t lru;
        lru
      end
    in
    t.keys.(node) <- key;
    Hashtbl.replace t.index key node;
    link_front t node;
    false

let mem t key = Hashtbl.mem t.index key

let clear t =
  Hashtbl.reset t.index;
  t.used <- 0;
  t.next.(0) <- 0;
  t.prev.(0) <- 0
