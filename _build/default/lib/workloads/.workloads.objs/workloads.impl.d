lib/workloads/workloads.ml: Dialect List Lower Mlir_lite Poly_ir Polybench Polylang Roofline String
