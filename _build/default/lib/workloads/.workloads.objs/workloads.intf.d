lib/workloads/workloads.mli: Mlir_lite Poly_ir Roofline
