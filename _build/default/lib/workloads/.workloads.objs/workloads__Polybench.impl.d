lib/workloads/polybench.ml:
